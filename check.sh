#!/usr/bin/env bash
# Tier-1 verification gate for the EasyBO workspace.
#
# Run from the repository root before merging anything:
#
#   ./check.sh
#
# Passes iff the release build, the full test suite, formatting, and
# clippy (warnings denied) all pass. CI runs exactly this script.

set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> fault-injection chaos suite (PROPTEST_CASES=64)"
PROPTEST_CASES=64 cargo test -q -p easybo-integration --test fault_injection

echo "==> kill-and-resume chaos suite (PROPTEST_CASES=64)"
PROPTEST_CASES=64 cargo test -q -p easybo-integration --test resume

echo "==> algorithm-portfolio acceptance matrix (PROPTEST_CASES=64)"
PROPTEST_CASES=64 cargo test -q -p easybo-integration --test portfolio

echo "==> zero-alloc discipline of the disabled telemetry/span path"
cargo test -q -p easybo-integration --test telemetry_alloc

echo "==> introspection suite: span tracing, scrape endpoint, report gate (PROPTEST_CASES=64)"
PROPTEST_CASES=64 cargo test -q -p easybo-integration --test introspection

echo "==> service wire-protocol chaos suite (PROPTEST_CASES=64)"
PROPTEST_CASES=64 cargo test -q -p easybo-integration --test service

echo "==> scenario zoo acceptance suite (PROPTEST_CASES=64)"
PROPTEST_CASES=64 cargo test -q -p easybo-integration --test scenario

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo bench --no-run (incremental factorization bench must compile)"
cargo bench -p easybo-bench --bench incremental --no-run
cargo bench --workspace --no-run

echo "==> all checks passed"
