#!/bin/sh
# Regenerates every table and figure of the paper into bench_output.txt.
# table1_opamp/table2_class_e also emit the literature-portfolio rows
# (EpsGreedy-B, PessBO-B, StdBO-B) next to the paper's own ablations;
# see EXPERIMENTS.md "Widened Table I: the literature portfolio".
set -x
export EASYBO_REPS=${EASYBO_REPS:-5}
cargo bench -p easybo-bench --bench fig2_acquisition
cargo bench -p easybo-bench --bench fig1_schedule
cargo bench -p easybo-bench --bench table1_opamp
cargo bench -p easybo-bench --bench fig4_opamp_trace
cargo bench -p easybo-bench --bench table2_class_e
cargo bench -p easybo-bench --bench fig6_class_e_trace
cargo bench -p easybo-bench --bench micro
cargo bench -p easybo-bench --bench hotpath
cargo bench -p easybo-bench --bench incremental
cargo bench -p easybo-bench --bench faults
cargo bench -p easybo-bench --bench checkpoint
cargo bench -p easybo-bench --bench spans
cargo bench -p easybo-bench --bench service
cargo bench -p easybo-bench --bench scenario
