//! The constrained sizing scenario zoo: parameter-linked, spec-driven,
//! multi-corner briefs run end-to-end through asynchronous EasyBO.
//!
//! Two scenarios from the zoo:
//!
//! * **matched op-amp** — the symmetric pairs of the two-stage Miller
//!   op-amp are *equality-linked* (`w1b = w1a`, …), so the optimizer
//!   searches 10 dimensions instead of 14 and matching holds exactly;
//!   gain and phase-margin specs gate feasibility.
//! * **multi-corner LDO** — every candidate sizing is re-simulated at
//!   the `tt/ss/ff` PVT corners through the executor fan-out, and the
//!   specs must hold at the *worst* corner.
//!
//! ```sh
//! cargo run --release -p easybo-integration --example scenario_zoo
//! ```

use easybo_scenario::{zoo, Scenario};
use easybo_telemetry::{Event, Telemetry};

fn run(scenario: &Scenario, evals: usize, seed: u64) -> Result<(), Box<dyn std::error::Error>> {
    println!(
        "=== {} ===\n  raw params: {}  searched: {}  corners: {:?}  specs: {:?}",
        scenario.name(),
        scenario.space().raw_dim(),
        scenario.space().reduced_dim(),
        scenario
            .corners()
            .iter()
            .map(|c| c.name)
            .collect::<Vec<_>>(),
        scenario
            .specs()
            .iter()
            .map(|s| s.name())
            .collect::<Vec<_>>(),
    );

    let (telemetry, recorder) = Telemetry::recording();
    let mut opt = scenario.optimizer();
    opt.batch_size(4)
        .initial_points(16)
        .max_evals(evals)
        .seed(seed)
        .telemetry(telemetry);
    let outcome = scenario.run_with(&opt)?;

    println!(
        "  best feasible worst-corner FOM: {:.3}",
        outcome.result.best_value
    );
    for (corner, fom) in &outcome.corner_foms {
        println!("    fom@{corner}: {fom:.3}");
    }
    for (spec, slack) in scenario.specs().iter().zip(&outcome.best_slacks) {
        println!("    {}: worst-corner slack {:+.3}", spec.name(), slack);
        assert!(*slack >= 0.0, "incumbent must satisfy every spec");
    }
    for (name, value) in scenario.space().names().iter().zip(&outcome.best_full) {
        println!("    {name:>8} = {value:.4e}");
    }

    let events = recorder.events();
    let violations = events
        .iter()
        .filter(|e| matches!(e.event, Event::SpecViolated { .. }))
        .count();
    let incumbents = events
        .iter()
        .filter(|e| matches!(e.event, Event::FeasibleIncumbent { .. }))
        .count();
    println!("  telemetry: {violations} spec violations, {incumbents} feasible incumbents\n");
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    run(&zoo::matched_opamp(), 60, 17)?;
    run(&zoo::multicorner_ldo(), 60, 21)?;
    Ok(())
}
