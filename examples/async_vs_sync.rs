//! Demonstrates the paper's core scheduling claim (§III-A, Fig. 1): with
//! heterogeneous simulation times, asynchronous batching finishes the same
//! number of simulations sooner than a synchronous barrier — and the gap
//! widens with the batch size.
//!
//! ```sh
//! cargo run --release -p easybo-integration --example async_vs_sync
//! ```

use easybo::policies::{EasyBoAsyncPolicy, EasyBoSyncPolicy};
use easybo_circuits::opamp::TwoStageOpAmp;
use easybo_circuits::Circuit;
use easybo_exec::{CostedFunction, SimTimeModel, VirtualExecutor};
use easybo_opt::sampling;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let amp = TwoStageOpAmp::new();
    let bounds = amp.bounds().clone();
    let time = SimTimeModel::new(&bounds, 38.7, 0.25, 3);
    let bb = CostedFunction::new("opamp", bounds.clone(), time, move |x: &[f64]| amp.fom(x));
    let evals = 150;

    println!("op-amp, {evals} simulations per run, sync barrier vs async issue\n");
    println!(
        "{:>5} {:>12} {:>12} {:>10} {:>12} {:>12}",
        "B", "sync_time", "async_time", "saved", "sync_util", "async_util"
    );
    for batch in [2usize, 5, 10, 15] {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let init = sampling::latin_hypercube(&bounds, 20, &mut rng);
        let exec = VirtualExecutor::new(batch);

        let mut sync_policy = EasyBoSyncPolicy::new(bounds.clone(), true, 5);
        let sync = exec.run_sync(&bb, &init, evals, &mut sync_policy);

        let mut async_policy = EasyBoAsyncPolicy::new(bounds.clone(), true, 5);
        let asyn = exec.run_async(&bb, &init, evals, &mut async_policy);

        println!(
            "{:>5} {:>11.0}s {:>11.0}s {:>9.1}% {:>11.1}% {:>11.1}%",
            batch,
            sync.total_time(),
            asyn.total_time(),
            100.0 * (sync.total_time() - asyn.total_time()) / sync.total_time(),
            100.0 * sync.schedule.utilization(),
            100.0 * asyn.schedule.utilization()
        );
        assert!(asyn.total_time() <= sync.total_time());
    }
    println!("\n(the async advantage grows with B: more workers, more barrier waste)");
    Ok(())
}
