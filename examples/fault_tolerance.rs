//! Fault tolerance: survive a flaky simulator pool without poisoning
//! the surrogate.
//!
//! ```sh
//! cargo run --release -p easybo-integration --example fault_tolerance
//! ```
//!
//! Wraps the quickstart objective in a seeded `FaultyBlackBox` where
//! 20% of simulations crash outright and another 10% return NaN, then
//! runs the same optimization twice: once in the default
//! compatibility mode (failures recorded raw — the GP chokes on the
//! garbage) and once with a `RetryPolicy` (failed attempts requeued
//! with backoff, non-finite observations dropped).

use easybo::{EasyBo, FailureAction, FaultPlan, FaultyBlackBox, RetryPolicy, Telemetry};
use easybo_exec::{BlackBox, CostedFunction, SimTimeModel};
use easybo_opt::Bounds;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let bounds = Bounds::new(vec![(-3.0, 3.0), (-3.0, 3.0)])?;

    // The quickstart two-peak objective, with a simulation-time model
    // (~50 virtual seconds per evaluation) so retries have a cost.
    let time = SimTimeModel::new(&bounds, 50.0, 0.4, 3);
    let clean = CostedFunction::new("two_peaks", bounds.clone(), time, |x: &[f64]| {
        0.8 * (-((x[0] + 1.0).powi(2) + (x[1] - 1.0).powi(2))).exp()
            + (-((x[0] - 1.5).powi(2) + (x[1] + 0.5).powi(2))).exp()
    });

    // A hostile simulator pool: 20% hard crashes, 10% NaN/Inf figures
    // of merit, all drawn deterministically from (seed, task, attempt).
    let plan = FaultPlan {
        seed: 42,
        fail_rate: 0.2,
        nonfinite_rate: 0.1,
        ..FaultPlan::default()
    };
    let faulty = FaultyBlackBox::new(clean, plan);

    // Robust mode: up to 4 attempts per task, exponential backoff
    // starting at 10 virtual seconds, exhausted tasks dropped so the
    // GP never sees a non-finite observation.
    let retry = RetryPolicy::default()
        .max_attempts(4)
        .backoff(10.0, 2.0)
        .on_exhausted(FailureAction::Drop);

    let telemetry = Telemetry::new();
    let result = EasyBo::new(faulty.bounds().clone())
        .batch_size(4)
        .initial_points(12)
        .max_evals(60)
        .seed(7)
        .retry_policy(retry)
        .telemetry(telemetry.clone())
        .run_blackbox(&faulty)?;

    let summary = telemetry.summary().expect("telemetry is enabled");
    println!("best value: {:.4}", result.best_value);
    println!(
        "best point: ({:.3}, {:.3})  [true optimum: (1.5, -0.5)]",
        result.best_x[0], result.best_x[1]
    );
    println!(
        "evaluations committed: {}, attempts failed: {}, retried: {}",
        result.data.len(),
        summary.evals_failed,
        summary.evals_retried,
    );
    println!(
        "virtual wall-clock: {:.0}s (retries cost simulation time, not correctness)",
        result.trace.total_time()
    );

    // The invariant the whole layer exists for: despite a 30% combined
    // fault rate the surrogate only ever saw finite observations, and
    // the optimizer still found the taller peak.
    assert!(result.data.ys().iter().all(|y| y.is_finite()));
    assert!(result.best_value > 0.9, "chaos must not stop convergence");
    Ok(())
}
