//! Size the two-stage operational amplifier with EasyBO — the paper's
//! first benchmark (§IV-A) as a worked example.
//!
//! Optimizes `FOM = 1.2·GAIN + 10·UGF + 1.6·PM` (Eq. 10) over the 10
//! design variables, then prints the winning design's operating point and
//! compares against plain random search at the same budget.
//!
//! ```sh
//! cargo run --release -p easybo-integration --example opamp_sizing
//! ```

use easybo::EasyBo;
use easybo_circuits::opamp::TwoStageOpAmp;
use easybo_circuits::Circuit;
use easybo_opt::sampling;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let amp = TwoStageOpAmp::new();
    let bounds = amp.bounds().clone();
    let budget = 150;

    println!("sizing the two-stage op-amp: 10 variables, {budget} simulations, batch size 5\n");

    let amp_for_opt = amp.clone();
    let result = EasyBo::new(bounds.clone())
        .batch_size(5)
        .initial_points(20)
        .max_evals(budget)
        .seed(2024)
        .run(move |x| amp_for_opt.fom(x))?;

    let analysis = amp.analyze(&result.best_x);
    println!("EasyBO best FOM: {:.2}", result.best_value);
    println!("  gain:          {:.1} dB", analysis.gain_db);
    println!("  UGF:           {:.1} MHz", analysis.ugf_hz / 1e6);
    println!("  phase margin:  {:.1} deg", analysis.pm_deg);
    println!("  tail current:  {:.1} uA", analysis.i_tail * 1e6);
    println!(
        "  headroom:      {}",
        if analysis.headroom_violation == 0.0 {
            "all devices saturated"
        } else {
            "VIOLATED"
        }
    );

    // Baseline: pure random search with the same simulation budget.
    let mut rng = rand::rngs::StdRng::seed_from_u64(2024);
    let random_best = sampling::uniform(&bounds, budget, &mut rng)
        .iter()
        .map(|x| amp.fom(x))
        .fold(f64::NEG_INFINITY, f64::max);
    println!("\nrandom search best FOM at the same budget: {random_best:.2}");
    println!(
        "EasyBO advantage: {:+.1}%",
        100.0 * (result.best_value - random_best) / random_best.abs()
    );

    assert!(
        result.best_value > random_best,
        "model-based search should beat random sampling"
    );
    Ok(())
}
