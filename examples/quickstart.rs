//! Quickstart: maximize a black-box function with EasyBO in a dozen lines.
//!
//! ```sh
//! cargo run --release -p easybo-integration --example quickstart
//! ```

use easybo::EasyBo;
use easybo_opt::Bounds;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 2-d design space.
    let bounds = Bounds::new(vec![(-3.0, 3.0), (-3.0, 3.0)])?;

    // An expensive black box (here: a cheap stand-in with two peaks; the
    // taller one is at (1.5, -0.5)).
    let objective = |x: &[f64]| {
        0.8 * (-((x[0] + 1.0).powi(2) + (x[1] - 1.0).powi(2))).exp()
            + (-((x[0] - 1.5).powi(2) + (x[1] + 0.5).powi(2))).exp()
    };

    // Asynchronous batch Bayesian optimization, 4 parallel workers,
    // 60 evaluations total (12 initial Latin-hypercube points).
    let result = EasyBo::new(bounds)
        .batch_size(4)
        .initial_points(12)
        .max_evals(60)
        .seed(7)
        .run(objective)?;

    println!("best value: {:.4}", result.best_value);
    println!(
        "best point: ({:.3}, {:.3})  [true optimum: (1.5, -0.5)]",
        result.best_x[0], result.best_x[1]
    );
    println!(
        "evaluations: {}, virtual wall-clock: {:.0}s, worker utilization: {:.1}%",
        result.data.len(),
        result.trace.total_time(),
        100.0 * result.schedule.utilization()
    );

    assert!(result.best_value > 0.95, "should find the taller peak");
    Ok(())
}
