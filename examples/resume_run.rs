//! Kill and resume: a run dies mid-flight and a fresh process finishes
//! it from the last snapshot, byte-identical to never having died.
//!
//! ```sh
//! cargo run --release -p easybo-integration --example resume_run
//! ```
//!
//! Three acts:
//! 1. an uninterrupted baseline run (the ground truth);
//! 2. the same run with checkpointing on, killed after 14 of 40
//!    evaluations via the built-in fault injector `abort_after_evals`
//!    (same effect as `kill -9` between two completions);
//! 3. a *fresh* optimizer — same configuration, no shared memory —
//!    resuming from the snapshot and running to completion.
//!
//! The resumed run's best-so-far trace CSV must equal the baseline's
//! byte for byte: in-flight simulations recorded in the snapshot are
//! re-issued at their recorded start times, the policy's RNG stream and
//! GP factorization continue exactly where they stopped.

use easybo::{EasyBo, Telemetry};
use easybo_opt::Bounds;

fn objective(x: &[f64]) -> f64 {
    0.8 * (-((x[0] + 1.0).powi(2) + (x[1] - 1.0).powi(2))).exp()
        + (-((x[0] - 1.5).powi(2) + (x[1] + 0.5).powi(2))).exp()
}

/// Same configuration every time — `resume` fingerprints it and refuses
/// snapshots from a different setup.
fn configure() -> Result<EasyBo, Box<dyn std::error::Error>> {
    let bounds = Bounds::new(vec![(-3.0, 3.0), (-3.0, 3.0)])?;
    let mut opt = EasyBo::new(bounds);
    opt.batch_size(4).initial_points(10).max_evals(40).seed(7);
    Ok(opt)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let snap = std::env::temp_dir().join(format!("easybo-example-{}.snap", std::process::id()));

    // Act 1 — the uninterrupted run.
    let baseline = configure()?.run(objective)?;
    println!(
        "baseline:  {} evals, best {:.4} at ({:.3}, {:.3})",
        baseline.data.len(),
        baseline.best_value,
        baseline.best_x[0],
        baseline.best_x[1]
    );

    // Act 2 — same run, snapshot every 3 completions, killed at 14/40.
    let (telemetry, recorder) = Telemetry::recording();
    let mut doomed = configure()?;
    doomed
        .telemetry(telemetry)
        .checkpoint_to(&snap)
        .checkpoint_every(3)
        .abort_after_evals(14);
    let err = doomed.run(objective).unwrap_err();
    let checkpoints = recorder
        .events()
        .iter()
        .filter(|e| e.event.kind() == "CheckpointWritten")
        .count();
    println!("killed:    {err}");
    println!("           {checkpoints} checkpoints written, last one survives the crash");

    // Act 3 — a fresh process picks up the snapshot and finishes.
    let resumed = configure()?.resume(&snap, objective)?;
    std::fs::remove_file(&snap).ok();
    println!(
        "resumed:   {} evals, best {:.4} at ({:.3}, {:.3})",
        resumed.data.len(),
        resumed.best_value,
        resumed.best_x[0],
        resumed.best_x[1]
    );

    // The headline invariant: dying was a non-event.
    assert_eq!(resumed.trace.to_csv(), baseline.trace.to_csv());
    assert_eq!(resumed.data, baseline.data);
    assert_eq!(resumed.best_x, baseline.best_x);
    println!("trace CSV, dataset, and optimum are byte-identical to the baseline");
    Ok(())
}
