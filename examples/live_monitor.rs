//! Live monitoring: watch a run through the std-only scrape endpoint
//! and export a Chrome trace of its phase spans.
//!
//! ```sh
//! cargo run --release -p easybo-integration --example live_monitor
//! ```
//!
//! Binds a `ScrapeServer` on a loopback port, registers the run's
//! telemetry handle on its `StatusBoard`, and optimizes while the
//! endpoint is live. Any Prometheus scraper (or plain `curl`) can poll
//! `/metrics` and `/sessions` mid-run; this example polls once itself
//! so it stays self-contained. Afterwards it prints the hierarchical
//! span tree and writes `easybo_trace.json` — open it at
//! `chrome://tracing` or <https://ui.perfetto.dev>.

use std::io::{Read, Write};
use std::net::TcpStream;

use easybo::{
    chrome_trace_json, render_span_tree, span_tree, EasyBo, ScrapeServer, StatusBoard, Telemetry,
};
use easybo_opt::Bounds;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A recording handle: the run's events feed both the scrape
    // endpoint (live counters/gauges) and the post-run trace export.
    let (telemetry, recorder) = Telemetry::recording();

    let board = StatusBoard::new();
    board.register("quickstart", telemetry.clone());
    let server = ScrapeServer::with_board("127.0.0.1:0", board)?;
    let addr = server.local_addr();
    println!("scrape endpoint live at http://{addr}/metrics");
    println!("  (try: curl http://{addr}/metrics | grep easybo_session)");

    // The quickstart objective, instrumented end to end.
    let bounds = Bounds::new(vec![(-3.0, 3.0), (-3.0, 3.0)])?;
    let mut opt = EasyBo::new(bounds);
    opt.batch_size(5)
        .initial_points(8)
        .max_evals(40)
        .seed(7)
        .telemetry(telemetry.clone());
    let result = opt.run(|x: &[f64]| {
        0.8 * (-((x[0] + 1.0).powi(2) + (x[1] - 1.0).powi(2))).exp()
            + (-((x[0] - 1.5).powi(2) + (x[1] + 0.5).powi(2))).exp()
    })?;
    telemetry.flush();
    println!(
        "\nbest FOM {:.6} at x = {:?}",
        result.best_value, result.best_x
    );

    // One scrape, exactly as curl would issue it.
    let mut stream = TcpStream::connect(addr)?;
    write!(stream, "GET /metrics HTTP/1.1\r\nHost: local\r\n\r\n")?;
    let mut response = String::new();
    stream.read_to_string(&mut response)?;
    let body = response.split("\r\n\r\n").nth(1).unwrap_or_default();
    println!("\nscrape sample (session series):");
    for line in body.lines().filter(|l| l.starts_with("easybo_session")) {
        println!("  {line}");
    }

    // The span tree: where the run clock went, hierarchically.
    let events = recorder.events();
    let tree = render_span_tree(&span_tree(&events));
    println!("\nspan tree (first 20 lines):");
    for line in tree.lines().take(20) {
        println!("  {line}");
    }

    let trace_path = std::env::temp_dir().join("easybo_trace.json");
    std::fs::write(&trace_path, chrome_trace_json(&events))?;
    println!("\nwrote Chrome trace to {}", trace_path.display());
    println!("open chrome://tracing (or https://ui.perfetto.dev) and load it");

    server.shutdown();
    Ok(())
}
