//! Two-process optimization service: a server drives several op-amp
//! sizing sessions over TCP while separate worker *processes* run the
//! simulations — the paper's asynchronous batch architecture with the
//! simulator pool genuinely out of process.
//!
//! ```sh
//! cargo run --release -p easybo-integration --example serve_sessions
//! ```
//!
//! The parent process binds a loopback `ServiceServer`, opens two
//! sessions (same circuit, different seeds) under a residency budget
//! of one — so the sessions take turns being resident, checkpointed to
//! `easybo-persist` snapshots in between — then re-spawns its own
//! binary twice with `--worker <addr>`. Each child connects as a
//! remote worker, evaluates dispatched points against its local op-amp
//! model, and reports results until the server says `Bye`.
//!
//! The punchline: each session's trace is byte-identical to a clean
//! in-process `run_async_resilient` with the same configuration —
//! sockets, process boundaries, leases, and eviction are all invisible
//! to the optimization trajectory.

use std::sync::{Arc, Mutex, PoisonError};

use easybo::EasyBo;
use easybo_circuits::opamp::TwoStageOpAmp;
use easybo_circuits::Circuit;
use easybo_exec::{CostedFunction, SimTimeModel, VirtualExecutor};
use easybo_service::{ServiceServer, SessionManager, SessionSpec, WorkerClient};
use easybo_telemetry::Telemetry;

const BATCH: usize = 4;
const MAX_EVALS: usize = 16;

fn opamp_blackbox() -> CostedFunction<impl Fn(&[f64]) -> f64 + Send + Sync> {
    let amp = TwoStageOpAmp::new();
    let bounds = amp.bounds().clone();
    let time = SimTimeModel::new(&bounds, 38.7, 0.25, 2020);
    CostedFunction::new("two-stage-opamp", bounds, time, move |x: &[f64]| amp.fom(x))
}

fn optimizer(seed: u64) -> EasyBo {
    let mut opt = EasyBo::new(TwoStageOpAmp::new().bounds().clone());
    opt.batch_size(BATCH)
        .initial_points(6)
        .max_evals(MAX_EVALS)
        .seed(seed);
    opt
}

fn spec_for(seed: u64) -> SessionSpec {
    let opt = optimizer(seed);
    let factory = opt.clone();
    SessionSpec {
        bench: "two-stage-opamp".to_string(),
        workers: BATCH,
        max_evals: MAX_EVALS,
        init: opt.initial_design_points(),
        retry: opt.retry().clone(),
        fingerprint: opt.config_fingerprint(),
        policy: Box::new(move || Box::new(factory.build_async_policy())),
    }
}

fn lock(m: &Arc<Mutex<SessionManager>>) -> std::sync::MutexGuard<'_, SessionManager> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Child-process entry: connect to the server and evaluate until `Bye`.
fn worker_main(addr: &str) -> Result<(), Box<dyn std::error::Error>> {
    let mut worker = WorkerClient::connect(addr.parse()?);
    worker.register("two-stage-opamp", Box::new(opamp_blackbox()));
    let summary = worker.run()?;
    println!(
        "[worker {}] evaluated {} points ({} accepted, {} stale)",
        std::process::id(),
        summary.evaluated,
        summary.accepted,
        summary.stale
    );
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().collect();
    if args.len() == 3 && args[1] == "--worker" {
        return worker_main(&args[2]);
    }

    let seeds = [11u64, 12];

    // Residency budget of one: with two live sessions the manager must
    // continually evict one to a snapshot and rehydrate it later.
    let mut server = ServiceServer::start(SessionManager::new(1), "127.0.0.1:0", None)?;
    let manager = server.manager();
    let ids: Vec<u64> = seeds
        .iter()
        .map(|&seed| lock(&manager).open_session(spec_for(seed)))
        .collect();
    let addr = server.local_addr();
    println!("server listening on {addr}; spawning 2 worker processes");

    let exe = std::env::current_exe()?;
    let children: Vec<std::process::Child> = (0..2)
        .map(|_| {
            std::process::Command::new(&exe)
                .arg("--worker")
                .arg(addr.to_string())
                .spawn()
        })
        .collect::<Result<_, _>>()?;
    for mut child in children {
        let status = child.wait()?;
        assert!(status.success(), "worker process failed: {status}");
    }
    server.stop();

    let mut m = lock(&manager);
    let stats = m.stats();
    println!(
        "server stats: {} asks, {} tells, {} evictions, {} rehydrations",
        stats.asks, stats.tells, stats.evictions, stats.rehydrations
    );

    // Every session must match its clean in-process baseline exactly.
    let bb = opamp_blackbox();
    for (&seed, &id) in seeds.iter().zip(&ids) {
        let served = m.take_result(id).expect("session finished");
        let opt = optimizer(seed);
        let baseline = VirtualExecutor::new(BATCH).run_async_resilient(
            &bb,
            &opt.initial_design_points(),
            MAX_EVALS,
            &mut opt.build_async_policy(),
            opt.retry(),
            &Telemetry::disabled(),
        );
        assert_eq!(
            served.trace.to_csv(),
            baseline.trace.to_csv(),
            "seed {seed}: served trace diverged from the in-process run"
        );
        println!(
            "session {id} (seed {seed}): best FOM {:.6} over {} evaluations — \
             trace byte-identical to the in-process run",
            served.best_value(),
            served.data.len()
        );
    }
    println!("two processes, one trajectory: the wire changed nothing");
    Ok(())
}
