//! Design the class-E power amplifier with EasyBO — the paper's second
//! benchmark (§IV-B) — on the *threaded* executor, the production path
//! where each simulation really runs on its own OS thread.
//!
//! Optimizes `FOM = 3·PAE + Pout` (Eq. 11) over the 12 design variables and
//! reports the winning operating point.
//!
//! ```sh
//! cargo run --release -p easybo-integration --example class_e_design
//! ```

use easybo::EasyBo;
use easybo_circuits::class_e::ClassEPa;
use easybo_circuits::Circuit;
use easybo_exec::{CostedFunction, SimTimeModel};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let pa = ClassEPa::new();
    let bounds = pa.bounds().clone();

    // Pretend each "simulation" takes ~52.7 virtual seconds with ±25%
    // spread (the paper's HSPICE profile); the threaded executor sleeps
    // 20 microseconds per virtual second so the demo finishes instantly
    // while still exercising genuinely concurrent evaluation.
    let time = SimTimeModel::new(&bounds, 52.7, 0.25, 7);
    let pa_for_opt = pa.clone();
    let bb = CostedFunction::new("class-e-pa", bounds.clone(), time, move |x: &[f64]| {
        pa_for_opt.fom(x)
    });

    println!("designing the class-E PA: 12 variables, 200 simulations, 8 worker threads\n");
    let result = EasyBo::new(bounds)
        .batch_size(8)
        .initial_points(20)
        .max_evals(200)
        .seed(11)
        .run_threaded(&bb, 2e-5)?;

    let analysis = pa.analyze(&result.best_x);
    println!("EasyBO best FOM: {:.3}", result.best_value);
    println!("  PAE:              {:.1} %", analysis.pae * 100.0);
    println!("  output power:     {:.2} W", analysis.pout_w);
    println!(
        "  drain efficiency: {:.1} %",
        analysis.drain_efficiency * 100.0
    );
    println!("  switch Ron:       {:.2} ohm", analysis.ron);
    println!("  peak drain volts: {:.2} V", analysis.v_peak);
    println!(
        "\nreal elapsed: {:.2}s across {} threads (utilization {:.1}%)",
        result.trace.total_time(),
        result.schedule.workers(),
        100.0 * result.schedule.utilization()
    );

    assert!(result.best_value > 2.0, "a working class-E design exists");
    Ok(())
}
