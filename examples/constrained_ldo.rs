//! Constrained sizing — the extension the paper defers to future work:
//! optimize an LDO's quality figure subject to an explicit stability
//! specification (phase margin ≥ 50°), using probability-of-feasibility
//! weighted EasyBO.
//!
//! ```sh
//! cargo run --release -p easybo-integration --example constrained_ldo
//! ```

use easybo::{ConstrainedProblem, EasyBo};
use easybo_circuits::ldo::Ldo;
use easybo_circuits::Circuit;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let ldo = Ldo::new();
    let bounds = ldo.bounds().clone();

    // Objective: the LDO quality figure *without* its built-in stability
    // credit — stability is enforced as a hard constraint instead.
    let ldo_obj = ldo.clone();
    let objective = move |x: &[f64]| {
        let a = ldo_obj.analyze(x);
        -20.0 * a.dropout_v - 0.5 * a.load_reg_mv - 0.05 * a.droop_mv - 50.0 * (a.i_q_a * 1e3)
    };
    // Constraint: phase margin at least 50 degrees (c(x) >= 0 convention).
    let ldo_pm = ldo.clone();
    let stability = move |x: &[f64]| ldo_pm.analyze(x).pm_deg - 50.0;

    let problem = ConstrainedProblem::new(&objective).subject_to(&stability);

    println!("constrained LDO sizing: maximize quality s.t. PM >= 50 deg\n");
    let mut opt = EasyBo::new(bounds);
    opt.batch_size(4).initial_points(16).max_evals(80).seed(21);
    let result = opt.run_constrained(&problem)?;

    let a = ldo.analyze(&result.best_x);
    println!("best feasible quality: {:.2}", result.best_value);
    println!("  dropout:        {:.0} mV", a.dropout_v * 1e3);
    println!("  load regulation:{:.2} mV", a.load_reg_mv);
    println!("  transient droop:{:.1} mV", a.droop_mv);
    println!("  quiescent:      {:.1} uA", a.i_q_a * 1e6);
    println!("  phase margin:   {:.1} deg (constraint: >= 50)", a.pm_deg);

    assert!(a.pm_deg >= 50.0, "incumbent must satisfy the spec");
    Ok(())
}
