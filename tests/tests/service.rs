//! Acceptance suite for the `easybo-service` TCP session service.
//!
//! The headline contract: an optimization run served over a *real*
//! socket pair — to remote workers whose links drop, duplicate,
//! reorder, stall, and kill frames — finishes with a trace, dataset,
//! and schedule byte-identical to a clean in-process
//! `run_async_resilient` over the same black box. Plus protocol
//! conformance properties over the frame/message codecs, a committed
//! golden fixture pinning wire format v2, and a session-manager
//! invariants property pinning the lease conservation law and the
//! residency bound under arbitrary interleavings.

use std::net::SocketAddr;
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

use easybo::{Algorithm, EasyBo, Parallelism};
use easybo_circuits::opamp::TwoStageOpAmp;
use easybo_circuits::Circuit;
use easybo_exec::{
    AsyncPolicy, BlackBox, BusyPoint, CostedFunction, Dataset, EvalOutcome, FaultPlan,
    FaultyBlackBox, RetryPolicy, RunResult, SimTimeModel, VirtualExecutor,
};
use easybo_opt::{sampling, Bounds};
use easybo_persist::decode_snapshot;
use easybo_service::{
    decode_frame, decode_message, encode_frame, encode_message, exemplar_messages, read_frame,
    write_frame, Message, OpenRequest, Role, ServiceClient, ServiceServer, SessionFactory,
    SessionManager, SessionSpec, WireError, WireFaultPlan, WorkerClient, PROTOCOL_VERSION,
};
use easybo_telemetry::Telemetry;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

// ---------------------------------------------------------------------
// Shared helpers.
// ---------------------------------------------------------------------

fn lock(m: &Arc<Mutex<SessionManager>>) -> std::sync::MutexGuard<'_, SessionManager> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// The paper's 10-d two-stage op-amp with a seeded simulation-time
/// model — the same black box lives on the manager's baseline side and
/// in every remote worker's registry; purity makes the copies agree.
fn opamp_blackbox() -> CostedFunction<impl Fn(&[f64]) -> f64 + Send + Sync> {
    let amp = TwoStageOpAmp::new();
    let bounds = amp.bounds().clone();
    let time = SimTimeModel::new(&bounds, 38.7, 0.25, 2020);
    CostedFunction::new("two-stage-opamp", bounds, time, move |x: &[f64]| amp.fom(x))
}

fn opamp_optimizer(seed: u64, batch: usize, max_evals: usize) -> EasyBo {
    let bounds = TwoStageOpAmp::new().bounds().clone();
    let mut opt = EasyBo::new(bounds);
    opt.batch_size(batch)
        .initial_points(6)
        .max_evals(max_evals)
        .seed(seed);
    opt
}

/// The uninterrupted in-process run every service run must reproduce.
fn in_process_baseline(
    opt: &EasyBo,
    batch: usize,
    max_evals: usize,
    bb: &dyn BlackBox,
) -> RunResult {
    VirtualExecutor::new(batch).run_async_resilient(
        bb,
        &opt.initial_design_points(),
        max_evals,
        &mut opt.build_async_policy(),
        opt.retry(),
        &Telemetry::disabled(),
    )
}

/// A [`SessionSpec`] that mirrors `opt`'s configuration exactly, so the
/// manager's decision stream matches the in-process run bit for bit.
fn spec_for(opt: &EasyBo, batch: usize, max_evals: usize, bench: &str) -> SessionSpec {
    let factory = opt.clone();
    SessionSpec {
        bench: bench.to_string(),
        workers: batch,
        max_evals,
        init: opt.initial_design_points(),
        retry: opt.retry().clone(),
        fingerprint: opt.config_fingerprint(),
        policy: Box::new(move || Box::new(factory.build_async_policy())),
    }
}

/// Spawns one worker thread per fault plan, joins them all, and
/// asserts every loop exited cleanly (server said `Bye`).
fn drive_workers<F>(addr: SocketAddr, plans: &[WireFaultPlan], register: F)
where
    F: Fn(&mut WorkerClient) + Send + Sync + Clone + 'static,
{
    let handles: Vec<_> = plans
        .iter()
        .map(|&plan| {
            let register = register.clone();
            std::thread::spawn(move || {
                let mut worker = WorkerClient::connect_with_chaos(addr, plan);
                register(&mut worker);
                worker.run()
            })
        })
        .collect();
    for h in handles {
        let summary = h
            .join()
            .expect("worker thread panicked")
            .expect("worker loop failed");
        assert!(summary.evaluated >= summary.accepted);
    }
}

fn assert_same_run(service: &RunResult, baseline: &RunResult, tag: &str) {
    assert_eq!(
        service.trace.to_csv(),
        baseline.trace.to_csv(),
        "trace diverged: {tag}"
    );
    assert_eq!(service.data, baseline.data, "dataset diverged: {tag}");
    assert_eq!(
        service.schedule, baseline.schedule,
        "schedule diverged: {tag}"
    );
}

/// Comparison for runs that were evicted and rehydrated mid-flight.
/// Same contract as in-process checkpoint/resume: the trajectory
/// (trace, dataset) and the executed spans are identical, but span
/// *insertion order* may differ — `to_parts` strips in-flight spans
/// and rehydration re-issues those attempts after the committed ones.
fn assert_same_resumed_run(service: &RunResult, baseline: &RunResult, tag: &str) {
    assert_eq!(
        service.trace.to_csv(),
        baseline.trace.to_csv(),
        "trace diverged: {tag}"
    );
    assert_eq!(service.data, baseline.data, "dataset diverged: {tag}");
    let sorted = |r: &RunResult| {
        let mut spans = r.schedule.spans().to_vec();
        spans.sort_by(|a, b| {
            (a.task, a.worker)
                .cmp(&(b.task, b.worker))
                .then(a.start.total_cmp(&b.start))
        });
        spans
    };
    assert_eq!(
        service.schedule.workers(),
        baseline.schedule.workers(),
        "worker count diverged: {tag}"
    );
    assert_eq!(
        sorted(service),
        sorted(baseline),
        "span contents diverged: {tag}"
    );
}

// ---------------------------------------------------------------------
// Satellite 1: seeded e2e runs through a loopback socket.
// ---------------------------------------------------------------------

/// Headline invariant: parallelism {1, 8} × chaos rates {0, 10, 30}%.
/// Every service run — real TCP, three remote workers, seeded
/// transport faults — must match the clean in-process trajectory byte
/// for byte.
#[test]
fn chaos_service_runs_reproduce_in_process_trajectories() {
    let max_evals = 16;
    for &batch in &[1usize, 8] {
        let opt = opamp_optimizer(11, batch, max_evals);
        let bb = opamp_blackbox();
        let baseline = in_process_baseline(&opt, batch, max_evals, &bb);
        for &rate in &[0.0, 0.1, 0.3] {
            let manager = SessionManager::new(4);
            let mut server =
                ServiceServer::start(manager, "127.0.0.1:0", None).expect("bind loopback");
            let id = lock(&server.manager()).open_session(spec_for(
                &opt,
                batch,
                max_evals,
                "two-stage-opamp",
            ));
            let plans: Vec<_> = (0..3)
                .map(|w| WireFaultPlan::chaos(rate, 0xC0FF_EE00 + w as u64))
                .collect();
            drive_workers(server.local_addr(), &plans, |w| {
                w.register("two-stage-opamp", Box::new(opamp_blackbox()));
            });
            server.stop();
            let result = lock(&server.manager())
                .take_result(id)
                .expect("session should have finished");
            assert_same_run(&result, &baseline, &format!("batch {batch} chaos {rate}"));
        }
    }
}

/// Chaos on the link *and* faults in the simulator: the retry/backoff
/// machinery (failed attempts, exponential delays) must thread through
/// the wire protocol without perturbing the trajectory.
#[test]
fn service_run_with_simulator_faults_and_retries_is_bit_identical() {
    let bounds = Bounds::unit_cube(1).unwrap();
    let mk_bb = || {
        let time = SimTimeModel::new(&bounds, 30.0, 0.4, 3);
        let inner = CostedFunction::new("toy-faulty", bounds.clone(), time, |x: &[f64]| {
            1.0 - (x[0] - 0.6).abs()
        });
        FaultyBlackBox::new(
            inner,
            FaultPlan {
                seed: 7,
                fail_rate: 0.25,
                ..FaultPlan::default()
            },
        )
    };
    let (batch, max_evals) = (4, 14);
    let mut opt = EasyBo::new(bounds.clone());
    opt.batch_size(batch)
        .initial_points(6)
        .max_evals(max_evals)
        .seed(2)
        .retry_policy(RetryPolicy::default().max_attempts(6).backoff(3.0, 2.0));
    let baseline = in_process_baseline(&opt, batch, max_evals, &mk_bb());

    let mut server = ServiceServer::start(SessionManager::new(2), "127.0.0.1:0", None).unwrap();
    let id = lock(&server.manager()).open_session(spec_for(&opt, batch, max_evals, "toy-faulty"));
    let plans = [
        WireFaultPlan::chaos(0.15, 41),
        WireFaultPlan::chaos(0.15, 42),
    ];
    let bounds_for_workers = bounds.clone();
    drive_workers(server.local_addr(), &plans, move |w| {
        let time = SimTimeModel::new(&bounds_for_workers, 30.0, 0.4, 3);
        let inner = CostedFunction::new(
            "toy-faulty",
            bounds_for_workers.clone(),
            time,
            |x: &[f64]| 1.0 - (x[0] - 0.6).abs(),
        );
        let faulty = FaultyBlackBox::new(
            inner,
            FaultPlan {
                seed: 7,
                fail_rate: 0.25,
                ..FaultPlan::default()
            },
        );
        w.register("toy-faulty", Box::new(faulty));
    });
    server.stop();
    let result = lock(&server.manager()).take_result(id).expect("finished");
    assert_same_run(&result, &baseline, "faulty blackbox with retries");
}

/// A worker that leases work and dies without reporting (plus
/// kill/drop-heavy links on the healthy workers) must not change the
/// trajectory: the dead connection's lease is reclaimed and re-leased,
/// and evaluation purity makes the replacement result identical.
#[test]
fn dead_workers_and_dropped_connections_do_not_perturb_the_run() {
    let (batch, max_evals) = (4, 12);
    let opt = opamp_optimizer(5, batch, max_evals);
    let bb = opamp_blackbox();
    let baseline = in_process_baseline(&opt, batch, max_evals, &bb);

    let mut server = ServiceServer::start(SessionManager::new(2), "127.0.0.1:0", None).unwrap();
    let id =
        lock(&server.manager()).open_session(spec_for(&opt, batch, max_evals, "two-stage-opamp"));

    // A rogue worker speaking the raw protocol: handshake, lease one
    // evaluation, then vanish without a TellResult.
    {
        let mut stream = std::net::TcpStream::connect(server.local_addr()).unwrap();
        write_frame(
            &mut stream,
            &encode_message(&Message::Hello {
                version: PROTOCOL_VERSION,
                role: Role::Worker,
            }),
        )
        .unwrap();
        let ack = decode_message(&read_frame(&mut stream).unwrap()).unwrap();
        assert!(matches!(ack, Message::HelloAck { version } if version == PROTOCOL_VERSION));
        write_frame(&mut stream, &encode_message(&Message::AskWork { req: 1 })).unwrap();
        let reply = decode_message(&read_frame(&mut stream).unwrap()).unwrap();
        assert!(
            matches!(reply, Message::Work { .. }),
            "rogue worker should have been leased work, got {reply:?}"
        );
        // Dropping the stream here abandons the lease.
    }

    // Wait for the server to notice the dead connection and reclaim.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let stats = lock(&server.manager()).stats();
        if stats.reclaimed >= 1 {
            break;
        }
        assert!(Instant::now() < deadline, "lease was never reclaimed");
        std::thread::sleep(Duration::from_millis(5));
    }

    // Healthy-ish workers on hostile links (drops + mid-frame kills).
    let hostile = WireFaultPlan {
        seed: 99,
        drop_rate: 0.08,
        dup_rate: 0.0,
        reorder_rate: 0.0,
        stall_rate: 0.0,
        kill_rate: 0.08,
    };
    let plans = [
        hostile,
        WireFaultPlan {
            seed: 100,
            ..hostile
        },
    ];
    drive_workers(server.local_addr(), &plans, |w| {
        w.register("two-stage-opamp", Box::new(opamp_blackbox()));
    });
    server.stop();
    let manager = server.manager();
    let mut m = lock(&manager);
    assert!(m.stats().reclaimed >= 1);
    let result = m.take_result(id).expect("finished");
    drop(m);
    assert_same_run(&result, &baseline, "dead worker + hostile links");
}

/// Admin-driven checkpoint → evict → rehydrate over the socket,
/// mid-run, with a durable snapshot written server-side. The resumed
/// session must finish exactly where the uninterrupted one does.
#[test]
fn socket_driven_evict_and_rehydrate_mid_run_preserves_the_trajectory() {
    let (batch, max_evals) = (4, 16);
    let opt = opamp_optimizer(23, batch, max_evals);
    let bb = opamp_blackbox();
    let baseline = in_process_baseline(&opt, batch, max_evals, &bb);

    let dir = std::env::temp_dir().join(format!("easybo-service-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let mut server =
        ServiceServer::start(SessionManager::new(4), "127.0.0.1:0", Some(dir.clone())).unwrap();
    let id =
        lock(&server.manager()).open_session(spec_for(&opt, batch, max_evals, "two-stage-opamp"));
    let addr = server.local_addr();

    let worker_handles: Vec<_> = (0..2)
        .map(|_| {
            std::thread::spawn(move || {
                let mut w = WorkerClient::connect(addr);
                w.register("two-stage-opamp", Box::new(opamp_blackbox()));
                w.run()
            })
        })
        .collect();

    let mut admin = ServiceClient::connect(addr, Role::Admin);
    // Wait until the run is genuinely mid-flight, then checkpoint and
    // evict it out from under the workers.
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let (_, _, _, _, tells) = admin.stats().expect("stats rpc");
        if tells >= 4 {
            break;
        }
        assert!(Instant::now() < deadline, "run never reached 4 tells");
        std::thread::sleep(Duration::from_millis(5));
    }
    let bytes = admin.checkpoint(id).expect("checkpoint rpc");
    assert!(bytes > 0, "checkpoint should report a non-empty snapshot");
    let snap_path = dir.join(format!("session_{id}.snap"));
    let on_disk = std::fs::read(&snap_path).expect("server should write the snapshot file");
    let snap = decode_snapshot(&on_disk).expect("durable snapshot decodes");
    assert_eq!(snap.config_fingerprint, opt.config_fingerprint());

    admin.evict(id).expect("evict rpc");
    // The next worker ask auto-rehydrates when residency frees up, so
    // an explicit rehydrate may find the session already resident —
    // both outcomes mean the session is running again.
    match admin.rehydrate(id) {
        Ok(()) | Err(WireError::Protocol(_)) => {}
        Err(e) => panic!("rehydrate rpc failed fatally: {e}"),
    }

    for h in worker_handles {
        h.join()
            .expect("worker panicked")
            .expect("worker loop failed");
    }
    server.stop();
    let manager = server.manager();
    let mut m = lock(&manager);
    assert!(m.stats().evictions >= 1);
    assert!(m.stats().rehydrations >= 1);
    let result = m.take_result(id).expect("finished");
    drop(m);
    std::fs::remove_dir_all(&dir).ok();
    assert_same_resumed_run(&result, &baseline, "socket evict/rehydrate mid-run");
}

/// Many sessions share one worker pool under a residency budget
/// smaller than the session count: LRU eviction plus ask-side
/// rehydration must drive every session to completion, each matching
/// its own in-process baseline, while memory residency stays bounded.
#[test]
fn many_sessions_share_the_pool_under_a_residency_budget() {
    let bounds = Bounds::unit_cube(2).unwrap();
    let mk_bb = || {
        let time = SimTimeModel::new(&bounds, 20.0, 0.3, 9);
        CostedFunction::new("toy-quadratic", bounds.clone(), time, |x: &[f64]| {
            (-((x[0] - 0.35).powi(2) + (x[1] - 0.65).powi(2))).exp()
        })
    };
    let (batch, max_evals) = (2, 10);
    let seeds = [20u64, 21, 22, 23, 24];

    let mut baselines = Vec::new();
    let mut opts = Vec::new();
    for &seed in &seeds {
        let mut opt = EasyBo::new(bounds.clone());
        opt.batch_size(batch)
            .initial_points(4)
            .max_evals(max_evals)
            .seed(seed);
        baselines.push(in_process_baseline(&opt, batch, max_evals, &mk_bb()));
        opts.push(opt);
    }

    let budget = 2;
    let mut server =
        ServiceServer::start(SessionManager::new(budget), "127.0.0.1:0", None).unwrap();
    let ids: Vec<u64> = opts
        .iter()
        .map(|opt| {
            let manager = server.manager();
            let mut m = lock(&manager);
            let id = m.open_session(spec_for(opt, batch, max_evals, "toy-quadratic"));
            assert!(
                m.resident_count() <= budget,
                "residency bound violated at open"
            );
            id
        })
        .collect();

    let bounds_for_workers = bounds.clone();
    let plans = [
        WireFaultPlan::clean(0),
        WireFaultPlan::clean(1),
        WireFaultPlan::clean(2),
    ];
    drive_workers(server.local_addr(), &plans, move |w| {
        let time = SimTimeModel::new(&bounds_for_workers, 20.0, 0.3, 9);
        let bb = CostedFunction::new(
            "toy-quadratic",
            bounds_for_workers.clone(),
            time,
            |x: &[f64]| (-((x[0] - 0.35).powi(2) + (x[1] - 0.65).powi(2))).exp(),
        );
        w.register("toy-quadratic", Box::new(bb));
    });
    server.stop();
    let manager = server.manager();
    let mut m = lock(&manager);
    assert!(m.all_done(), "every session should have drained");
    assert_eq!(m.finished_count(), seeds.len());
    // 5 opens into a budget of 2 force at least 3 evictions up front.
    assert!(m.stats().evictions >= 3, "stats: {:?}", m.stats());
    assert!(m.stats().rehydrations >= 3, "stats: {:?}", m.stats());
    for (i, id) in ids.iter().enumerate() {
        let result = m.take_result(*id).expect("finished");
        assert_same_resumed_run(
            &result,
            &baselines[i],
            &format!("session seed {}", seeds[i]),
        );
    }
}

// ---------------------------------------------------------------------
// Heterogeneous algorithm portfolio: three different policies, one
// shared pool, opened over the wire through the session factory.
// ---------------------------------------------------------------------

/// The session factory a deployment would install: algorithm keys
/// resolved through the [`Algorithm`] registry, benches from a fixed
/// local table, the initial design drawn server-side from the seed.
fn registry_factory() -> Arc<SessionFactory> {
    Arc::new(|open: &OpenRequest| {
        let algo = Algorithm::from_key(&open.algo)
            .ok_or_else(|| format!("unknown algorithm key '{}'", open.algo))?;
        let bounds = match open.bench.as_str() {
            "two-stage-opamp" => TwoStageOpAmp::new().bounds().clone(),
            other => return Err(format!("unknown bench '{other}'")),
        };
        if algo
            .async_policy(bounds.clone(), open.seed, Parallelism::sequential())
            .is_none()
        {
            return Err(format!(
                "algorithm '{}' has no asynchronous policy",
                open.algo
            ));
        }
        let mut rng = StdRng::seed_from_u64(open.seed);
        let init = sampling::latin_hypercube(&bounds, open.n_init, &mut rng);
        let seed = open.seed;
        Ok(SessionSpec {
            bench: open.bench.clone(),
            workers: open.workers,
            max_evals: open.max_evals,
            init,
            retry: RetryPolicy::none(),
            fingerprint: seed ^ ((algo.index() as u64) << 32),
            policy: Box::new(move || {
                algo.async_policy(bounds.clone(), seed, Parallelism::sequential())
                    .expect("async-capable checked at open")
            }),
        })
    })
}

/// The uninterrupted in-process run an `OpenSession`-opened session
/// must reproduce: same seed-derived initial design, same policy built
/// through the same registry call.
fn portfolio_baseline(
    algo: Algorithm,
    seed: u64,
    workers: usize,
    max_evals: usize,
    n_init: usize,
) -> RunResult {
    let bb = opamp_blackbox();
    let bounds = TwoStageOpAmp::new().bounds().clone();
    let mut rng = StdRng::seed_from_u64(seed);
    let init = sampling::latin_hypercube(&bounds, n_init, &mut rng);
    let mut policy = algo
        .async_policy(bounds, seed, Parallelism::sequential())
        .expect("async-capable");
    VirtualExecutor::new(workers).run_async_resilient(
        &bb,
        &init,
        max_evals,
        policy.as_mut(),
        &RetryPolicy::none(),
        &Telemetry::disabled(),
    )
}

/// Tentpole acceptance: three sessions running three *different*
/// algorithms (EasyBO, ε-greedy, pessimistic), opened over the wire
/// via `OpenSession`, share one budget-2 worker pool. Each trajectory
/// must be byte-identical to its own in-process baseline, including
/// across a mid-run admin evict/rehydrate of one of them.
#[test]
fn heterogeneous_algorithms_share_one_pool_via_open_session() {
    let (workers_per_session, max_evals, n_init) = (2usize, 10usize, 6usize);
    let cells = [
        (Algorithm::EasyBo, 31u64),
        (Algorithm::EpsGreedy, 32),
        (Algorithm::PessimisticBo, 33),
    ];
    let baselines: Vec<RunResult> = cells
        .iter()
        .map(|&(algo, seed)| portfolio_baseline(algo, seed, workers_per_session, max_evals, n_init))
        .collect();

    let mut server = ServiceServer::start_with_factory(
        SessionManager::new(2),
        "127.0.0.1:0",
        None,
        Some(registry_factory()),
    )
    .unwrap();
    let addr = server.local_addr();
    let mut admin = ServiceClient::connect(addr, Role::Admin);

    // Unknown keys are rejected with a wire error, not a hang or panic.
    match admin.open_session("two-stage-opamp", "no-such-algo", 1, 2, 4, 2) {
        Err(WireError::Protocol(msg)) => assert!(msg.contains("no-such-algo"), "got: {msg}"),
        other => panic!("expected protocol error, got {other:?}"),
    }
    // Sync-only algorithms have no async policy and are refused up front.
    match admin.open_session("two-stage-opamp", "pbo", 1, 2, 4, 2) {
        Err(WireError::Protocol(msg)) => assert!(msg.contains("pbo"), "got: {msg}"),
        other => panic!("expected protocol error, got {other:?}"),
    }

    let ids: Vec<u64> = cells
        .iter()
        .map(|&(algo, seed)| {
            admin
                .open_session(
                    "two-stage-opamp",
                    algo.key(),
                    seed,
                    workers_per_session,
                    max_evals,
                    n_init,
                )
                .expect("open session over the wire")
        })
        .collect();
    assert!(lock(&server.manager()).resident_count() <= 2);

    let worker_handles: Vec<_> = (0..3u64)
        .map(|w| {
            std::thread::spawn(move || {
                let mut worker =
                    WorkerClient::connect_with_chaos(addr, WireFaultPlan::chaos(0.1, 0xBABE + w));
                worker.register("two-stage-opamp", Box::new(opamp_blackbox()));
                worker.run()
            })
        })
        .collect();

    // Mid-run, force one session through an explicit evict/rehydrate
    // cycle on top of whatever the budget-2 LRU already does. The
    // budget may have beaten us to the evict (already evicted) or the
    // ask path to the rehydrate (already resident) — both arrive as
    // protocol errors and both mean the session cycled as intended.
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let (_, _, _, _, tells) = admin.stats().expect("stats rpc");
        if tells >= 4 {
            break;
        }
        assert!(Instant::now() < deadline, "pool never reached 4 tells");
        std::thread::sleep(Duration::from_millis(5));
    }
    match admin.evict(ids[1]) {
        Ok(()) | Err(WireError::Protocol(_)) => {}
        Err(e) => panic!("evict rpc failed fatally: {e}"),
    }
    match admin.rehydrate(ids[1]) {
        Ok(()) | Err(WireError::Protocol(_)) => {}
        Err(e) => panic!("rehydrate rpc failed fatally: {e}"),
    }

    for h in worker_handles {
        h.join()
            .expect("worker panicked")
            .expect("worker loop failed");
    }
    server.stop();
    let manager = server.manager();
    let mut m = lock(&manager);
    assert!(m.all_done(), "every session should have drained");
    assert!(m.stats().evictions >= 1, "stats: {:?}", m.stats());
    for (i, id) in ids.iter().enumerate() {
        let result = m.take_result(*id).expect("finished");
        assert_same_resumed_run(
            &result,
            &baselines[i],
            &format!("algorithm {}", cells[i].0.key()),
        );
    }
}

// ---------------------------------------------------------------------
// Satellite 2: protocol conformance + golden wire fixture.
// ---------------------------------------------------------------------

/// Deterministic value stream for property cases (the same splitmix64
/// idiom the resume suite uses).
struct Gen(u64);

impl Gen {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }

    fn bytes(&mut self, n: usize) -> Vec<u8> {
        (0..n).map(|_| (self.next() & 0xff) as u8).collect()
    }
}

proptest! {
    /// Frames round-trip over arbitrary payload bytes, both the buffer
    /// decoder and the streaming reader, including back-to-back frames.
    #[test]
    fn frame_codec_round_trips_any_payload(seed in 0u64..=u64::MAX) {
        let mut g = Gen(seed);
        let n = g.below(600);
        let payload = g.bytes(n);
        let frame = encode_frame(&payload);
        let (back, used) = decode_frame(&frame).unwrap();
        prop_assert_eq!(used, frame.len());
        prop_assert_eq!(&back, &payload);

        let mut cursor = std::io::Cursor::new(frame.clone());
        prop_assert_eq!(read_frame(&mut cursor).unwrap(), payload.clone());

        let mut two = frame.clone();
        two.extend_from_slice(&frame);
        let (first, consumed) = decode_frame(&two).unwrap();
        prop_assert_eq!(first, payload);
        let (second, _) = decode_frame(&two[consumed..]).unwrap();
        prop_assert_eq!(second, back);
    }

    /// Corruption never panics or hangs: a single bit flip anywhere in
    /// a frame is rejected, every truncation is rejected, and a
    /// garbage prefix reports `BadMagic`.
    #[test]
    fn corrupted_frames_are_rejected_with_structured_errors(seed in 0u64..=u64::MAX) {
        let mut g = Gen(seed ^ 0x5eed);
        let n = g.below(128);
        let payload = g.bytes(n);
        let frame = encode_frame(&payload);

        let bit = g.below(frame.len() * 8);
        let mut flipped = frame.clone();
        flipped[bit / 8] ^= 1 << (bit % 8);
        prop_assert!(decode_frame(&flipped).is_err(), "bit {} flip accepted", bit);

        let cut = g.below(frame.len());
        prop_assert!(decode_frame(&frame[..cut]).is_err(), "cut at {} accepted", cut);
        let mut cursor = std::io::Cursor::new(frame[..cut].to_vec());
        prop_assert!(read_frame(&mut cursor).is_err(), "stream cut at {} accepted", cut);

        let mut prefixed = vec![(g.next() & 0xff) as u8];
        prefixed.extend_from_slice(&frame);
        prop_assert!(
            matches!(decode_frame(&prefixed), Err(WireError::BadMagic { .. })),
            "garbage prefix not reported as BadMagic"
        );
    }

    /// The message codec is loss-free over full 64-bit value patterns
    /// (NaNs and infinities included) — compared as re-encoded bytes,
    /// which sidesteps NaN's `PartialEq` hole.
    #[test]
    fn message_codec_round_trips_full_bit_patterns(seed in 0u64..=u64::MAX) {
        let mut g = Gen(seed ^ 0x77);
        let x: Vec<f64> = (0..g.below(5)).map(|_| f64::from_bits(g.next())).collect();
        let outcome = match g.below(4) {
            0 => EvalOutcome::Ok,
            1 => EvalOutcome::Failed { reason: format!("f{}", g.next() & 0xffff) },
            2 => EvalOutcome::NonFinite,
            _ => EvalOutcome::TimedOut,
        };
        let messages = [
            Message::Work {
                req: g.next(),
                session: g.next(),
                task: g.below(1 << 20),
                attempt: 1 + g.below(8),
                worker: g.below(64),
                x,
                bench: format!("bench-{}", g.next() & 0xff),
            },
            Message::TellResult {
                req: g.next(),
                session: g.next(),
                task: g.below(1 << 20),
                attempt: 1 + g.below(8),
                value: f64::from_bits(g.next()),
                cost: f64::from_bits(g.next()),
                outcome,
            },
        ];
        for m in &messages {
            let bytes = encode_message(m);
            let back = decode_message(&bytes).unwrap();
            prop_assert_eq!(encode_message(&back), bytes);
        }
    }

    /// Arbitrary garbage fed straight to the message decoder returns a
    /// structured error (or happens to decode) — it never panics.
    #[test]
    fn message_decoder_never_panics_on_garbage(seed in 0u64..=u64::MAX) {
        let mut g = Gen(seed ^ 0xdead);
        let n = g.below(96);
        let junk = g.bytes(n);
        let _ = decode_message(&junk);
    }
}

/// Exhaustive single-bit-flip and truncation sweep over one frame of
/// every message variant: each mutation must surface as an `Err`, and
/// every truncated message payload must be rejected by the decoder.
#[test]
fn every_exemplar_frame_rejects_all_truncations_and_bit_flips() {
    for m in exemplar_messages() {
        let payload = encode_message(&m);
        let frame = encode_frame(&payload);
        for cut in 0..frame.len() {
            assert!(
                decode_frame(&frame[..cut]).is_err(),
                "truncation at {cut} accepted for {m:?}"
            );
        }
        for bit in 0..frame.len() * 8 {
            let mut bad = frame.clone();
            bad[bit / 8] ^= 1 << (bit % 8);
            assert!(
                decode_frame(&bad).is_err(),
                "bit flip at {bit} accepted for {m:?}"
            );
        }
        for cut in 0..payload.len() {
            assert!(
                decode_message(&payload[..cut]).is_err(),
                "payload truncation at {cut} accepted for {m:?}"
            );
        }
    }
}

/// Committed golden fixture: wire format v2 as bytes on disk — one
/// frame per message variant. Any drift in the frame header, the
/// message tags, or the field encodings fails here before it can break
/// a deployed worker fleet.
#[test]
fn golden_wire_format_v2_is_pinned_on_disk() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/data/golden_wire_v2.bin");
    let mut expected = Vec::new();
    for m in exemplar_messages() {
        expected.extend_from_slice(&encode_frame(&encode_message(&m)));
    }
    if std::env::var("EASYBO_REGEN_GOLDEN").is_ok() {
        std::fs::write(path, &expected).unwrap();
    }
    let committed = std::fs::read(path).unwrap_or_else(|e| {
        panic!(
            "missing golden wire fixture {path}: {e}; regenerate with \
             EASYBO_REGEN_GOLDEN=1 cargo test -p easybo-integration --test service golden"
        )
    });
    assert!(
        committed == expected,
        "wire encoding no longer matches the committed v{PROTOCOL_VERSION} fixture. If the \
         format change is intentional, bump easybo_service::PROTOCOL_VERSION and regenerate \
         the fixture with: EASYBO_REGEN_GOLDEN=1 cargo test -p easybo-integration --test \
         service golden"
    );
    let mut offset = 0;
    let mut decoded = Vec::new();
    while offset < committed.len() {
        let (payload, used) = decode_frame(&committed[offset..]).unwrap();
        decoded.push(decode_message(&payload).unwrap());
        offset += used;
    }
    assert_eq!(
        decoded,
        exemplar_messages(),
        "golden frames decode to the exemplars"
    );
}

// ---------------------------------------------------------------------
// Satellite 3: session-manager invariants under random interleavings.
// ---------------------------------------------------------------------

/// A deterministic, stateless policy: its proposal is a pure function
/// of the observed/busy counts, so eviction (which rebuilds the policy
/// fresh — `snapshot_state` is `None`) cannot perturb the replay.
struct SweepPolicy;

impl AsyncPolicy for SweepPolicy {
    fn select_next(&mut self, data: &Dataset, busy: &[BusyPoint]) -> Vec<f64> {
        let n = (data.len() + busy.len()) as f64;
        vec![(0.13 + 0.07 * n).fract()]
    }
}

fn toy_bb() -> CostedFunction<impl Fn(&[f64]) -> f64 + Send + Sync> {
    let bounds = Bounds::unit_cube(1).unwrap();
    let time = SimTimeModel::new(&bounds, 12.0, 0.3, 5);
    CostedFunction::new("toy", bounds, time, |x: &[f64]| 1.0 - (x[0] - 0.4).abs())
}

fn toy_spec(fingerprint: u64) -> SessionSpec {
    SessionSpec {
        bench: "toy".to_string(),
        workers: 2,
        max_evals: 6,
        init: vec![vec![0.2], vec![0.8]],
        retry: RetryPolicy::none(),
        fingerprint,
        policy: Box::new(|| Box::new(SweepPolicy)),
    }
}

macro_rules! assert_manager_invariants {
    ($m:expr) => {{
        let s = $m.stats();
        prop_assert!(
            s.asks == s.tells + s.reclaimed + $m.active_leases() as u64,
            "lease conservation violated: {:?} active={}",
            s,
            $m.active_leases()
        );
        prop_assert!(s.accepted >= s.tells, "accepted < tells: {:?}", s);
        prop_assert!(
            $m.resident_count() <= $m.resident_budget(),
            "residency bound violated: {} > {}",
            $m.resident_count(),
            $m.resident_budget()
        );
    }};
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The conservation law `asks == tells + reclaimed + active_leases`
    /// and the residency bound hold after *every* operation in a random
    /// interleaving of opens, asks, tells (including duplicates and
    /// late deliveries), connection deaths, evictions, rehydrations,
    /// and checkpoints — and the system can always drain to completion
    /// afterwards.
    #[test]
    fn manager_invariants_hold_under_random_interleavings(seed in 0u64..=u64::MAX) {
        let mut g = Gen(seed ^ 0xa5a5);
        let bb = toy_bb();
        let mut m = SessionManager::new(3);
        let mut known: Vec<u64> = Vec::new();
        let mut held: Vec<easybo_service::Work> = Vec::new();
        let mut last_told: Option<easybo_service::Work> = None;

        let steps = 20 + g.below(60);
        for _ in 0..steps {
            match g.below(8) {
                0 => {
                    if known.len() < 6 {
                        known.push(m.open_session(toy_spec(g.next())));
                    }
                }
                1 => {
                    let conn = 1 + g.below(3) as u64;
                    if let Some(w) = m.ask(conn) {
                        held.push(w);
                    }
                }
                2 => {
                    if !held.is_empty() {
                        let w = held.remove(g.below(held.len()));
                        let e = w.evaluate(&bb);
                        m.tell(9, w.session, w.task, w.attempt, e.value, e.cost, e.resolved_outcome());
                        last_told = Some(w);
                    }
                }
                3 => {
                    // Duplicate (possibly late) delivery of the most
                    // recent result; must never corrupt the counters.
                    if let Some(w) = &last_told {
                        let e = w.evaluate(&bb);
                        m.tell(9, w.session, w.task, w.attempt, e.value, e.cost, e.resolved_outcome());
                    }
                }
                4 => {
                    m.drop_connection(1 + g.below(3) as u64);
                }
                5 => {
                    if !known.is_empty() {
                        let id = known[g.below(known.len())];
                        let _ = m.evict(id);
                    }
                }
                6 => {
                    let evicted = m.evicted_ids();
                    if !evicted.is_empty() {
                        let _ = m.rehydrate(evicted[g.below(evicted.len())]);
                    }
                }
                _ => {
                    if !known.is_empty() {
                        let id = known[g.below(known.len())];
                        let _ = m.checkpoint(id);
                    }
                }
            }
            assert_manager_invariants!(m);
        }

        // Drain: deliver held results, serve fresh asks, pull evicted
        // sessions back in — until everything has finished.
        let mut guard = 0;
        while !m.all_done() {
            guard += 1;
            prop_assert!(guard < 10_000, "drain loop did not converge");
            if let Some(w) = held.pop() {
                let e = w.evaluate(&bb);
                m.tell(7, w.session, w.task, w.attempt, e.value, e.cost, e.resolved_outcome());
            } else if let Some(w) = m.ask(7) {
                let e = w.evaluate(&bb);
                m.tell(7, w.session, w.task, w.attempt, e.value, e.cost, e.resolved_outcome());
            } else if let Some(&id) = m.evicted_ids().first() {
                let _ = m.rehydrate(id);
            }
            assert_manager_invariants!(m);
        }
        prop_assert_eq!(m.active_leases(), 0);
        for id in &known {
            prop_assert!(m.take_result(*id).is_some(), "session {} never finished", id);
        }
    }
}

/// Residency never exceeds the budget no matter how many sessions are
/// opened, and the overflow is evicted — the memory-bound contract the
/// service bench measures at the 1000-session scale.
#[test]
fn residency_stays_bounded_as_sessions_pile_up() {
    let budget = 8;
    let mut m = SessionManager::new(budget);
    let mut ids = Vec::new();
    for i in 0..40u64 {
        ids.push(m.open_session(toy_spec(i)));
        assert!(m.resident_count() <= budget);
    }
    assert_eq!(m.resident_count() + m.evicted_count(), 40);
    assert!(m.stats().evictions >= 32);

    // The pool can still drain every one of them.
    let bb = toy_bb();
    let mut guard = 0;
    while !m.all_done() {
        guard += 1;
        assert!(guard < 50_000, "drain did not converge");
        if let Some(w) = m.ask(1) {
            let e = w.evaluate(&bb);
            m.tell(
                1,
                w.session,
                w.task,
                w.attempt,
                e.value,
                e.cost,
                e.resolved_outcome(),
            );
        } else if let Some(&id) = m.evicted_ids().first() {
            m.rehydrate(id).expect("rehydrate evicted session");
        }
    }
    assert_eq!(m.finished_count(), 40);
    for id in ids {
        assert!(m.take_result(id).is_some());
    }
}
