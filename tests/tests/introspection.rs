//! Live-introspection acceptance suite: hierarchical span tracing,
//! Chrome trace export, the std-only scrape endpoint, and multi-run
//! report aggregation with regression gating.
//!
//! The headline checks mirror the observability contract:
//!
//! * a seeded chaos run produces a Chrome trace that is byte-identical
//!   at compute parallelism 1 and 8 (spans are stamped with the run
//!   clock and allocated on the coordinator only);
//! * `GET /metrics` serves Prometheus text exposition in which every
//!   line parses;
//! * aggregated reports from repeated deterministic runs stay inside
//!   the committed baseline (`tests/data/report_baseline.json`).

use std::collections::BTreeSet;
use std::io::{Read, Write};
use std::net::TcpStream;

use easybo::{
    chrome_trace_json, gate, parse_baseline, render_span_tree, span_tree, EasyBo, FaultPlan,
    FaultyBlackBox, ReportSet, RetryPolicy, RunReport, ScrapeServer, StatusBoard, Telemetry,
};
use easybo_exec::{CostedFunction, SimTimeModel};
use easybo_opt::Bounds;
use easybo_telemetry::replay::parse_jsonl;
use easybo_telemetry::{to_json_line, Event, TimedEvent};
use proptest::prelude::*;

fn objective(x: &[f64]) -> f64 {
    (-((x[0] - 0.35).powi(2) + (x[1] - 0.65).powi(2))).exp()
}

fn toy_blackbox(seed: u64) -> CostedFunction<impl Fn(&[f64]) -> f64 + Send + Sync> {
    let bounds = Bounds::unit_cube(2).unwrap();
    let time = SimTimeModel::new(&bounds, 40.0, 0.3, seed);
    CostedFunction::new("toy", bounds, time, objective)
}

/// A seeded chaos run (failures + retries + checkpoints) with a
/// recording telemetry handle at the given compute parallelism.
/// Returns `(events, chrome_trace, rendered_span_tree)`.
fn chaos_run(parallelism: usize) -> (Vec<TimedEvent>, String, String) {
    let plan = FaultPlan {
        seed: 5,
        fail_rate: 0.2,
        ..FaultPlan::default()
    };
    let bb = FaultyBlackBox::new(toy_blackbox(7), plan);
    let ckpt = std::env::temp_dir().join(format!(
        "easybo-introspection-{}-k{parallelism}.snap",
        std::process::id()
    ));
    let (telemetry, recorder) = Telemetry::recording();
    let mut opt = EasyBo::new(Bounds::unit_cube(2).unwrap());
    opt.batch_size(4)
        .initial_points(6)
        .max_evals(20)
        .seed(3)
        .parallelism(parallelism)
        .retry_policy(RetryPolicy::default().max_attempts(6).backoff(5.0, 2.0))
        .checkpoint_to(&ckpt)
        .checkpoint_every(4)
        .telemetry(telemetry.clone());
    let result = opt.run_blackbox(&bb).expect("chaos run completes");
    assert!(result.best_value.is_finite());
    std::fs::remove_file(&ckpt).ok();
    telemetry.flush();
    let events = recorder.events();
    let trace = chrome_trace_json(&events);
    let tree = render_span_tree(&span_tree(&events));
    (events, trace, tree)
}

/// Acceptance: the chaos run's Chrome trace and span tree are
/// bit-identical across compute parallelism 1 vs 8, and the span tree
/// contains every instrumented phase.
#[test]
fn chaos_chrome_trace_is_identical_across_parallelism() {
    let (events, trace_k1, tree_k1) = chaos_run(1);
    let (_, trace_k8, tree_k8) = chaos_run(8);
    assert_eq!(trace_k1, trace_k8, "chrome trace must not depend on k");
    assert_eq!(tree_k1, tree_k8, "span tree must not depend on k");

    // The exporter emits valid JSON with the Chrome trace envelope.
    let parsed = easybo_telemetry::parse_json(&trace_k1).expect("trace is valid JSON");
    let trace_events = parsed
        .get("traceEvents")
        .and_then(|v| v.as_array())
        .expect("traceEvents array");
    assert!(trace_events.len() > 20);

    // Every instrumented phase shows up in the span tree.
    let names: BTreeSet<&str> = events
        .iter()
        .filter_map(|e| match &e.event {
            Event::SpanStart { name, .. } => Some(name.as_ref()),
            _ => None,
        })
        .collect();
    for phase in [
        "session_step",
        "gp_refit",
        "kernel_build",
        "cholesky",
        "lbfgs_restarts",
        "acquisition",
        "batch_predict",
        "nm_refine",
        "dispatch",
        "retry_backoff",
        "checkpoint",
        "snapshot_encode",
        "snapshot_fsync",
    ] {
        assert!(names.contains(phase), "missing phase span: {phase}");
        assert!(tree_k1.contains(phase), "span tree missing {phase}");
    }

    // Nesting: the GP phases sit under gp_refit under session_step.
    // (Steps serving the initial design never refit, so scan them all.)
    let roots = span_tree(&events);
    let refit = roots
        .iter()
        .filter(|n| n.name == "session_step")
        .flat_map(|n| &n.children)
        .find(|n| n.name == "gp_refit")
        .expect("gp_refit nested under session_step");
    assert!(refit.children.iter().any(|n| n.name == "kernel_build"));
    assert!(refit.children.iter().any(|n| n.name == "cholesky"));
}

/// The span stream survives the JSONL round trip byte-for-byte.
#[test]
fn chaos_span_stream_replays_from_jsonl() {
    let (events, _, _) = chaos_run(1);
    let jsonl = events
        .iter()
        .map(to_json_line)
        .collect::<Vec<_>>()
        .join("\n");
    let back = parse_jsonl(&jsonl).expect("replays");
    assert_eq!(events, back);
}

/// One HTTP GET against a `ScrapeServer`, returning (status line, body).
fn http_get(addr: std::net::SocketAddr, path: &str) -> (String, String) {
    let mut stream = TcpStream::connect(addr).expect("connects");
    write!(stream, "GET {path} HTTP/1.1\r\nHost: test\r\n\r\n").expect("writes");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("reads");
    let (head, body) = response.split_once("\r\n\r\n").expect("has header block");
    let status = head.lines().next().unwrap_or_default().to_string();
    (status, body.to_string())
}

/// Acceptance: `/metrics` serves Prometheus text exposition v0.0.4 in
/// which every line is either a comment or `name{labels} value` with a
/// parsable finite value.
#[test]
fn scrape_endpoint_serves_valid_prometheus_exposition() {
    let (telemetry, _recorder) = Telemetry::recording();
    let mut opt = EasyBo::new(Bounds::unit_cube(2).unwrap());
    opt.batch_size(4)
        .initial_points(6)
        .max_evals(16)
        .seed(9)
        .telemetry(telemetry.clone());
    opt.run(objective).expect("runs");
    telemetry.flush();

    let board = StatusBoard::new();
    board.register("toy-run", telemetry);
    let server = ScrapeServer::with_board("127.0.0.1:0", board).expect("binds");
    let addr = server.local_addr();

    let (status, body) = http_get(addr, "/metrics");
    assert!(status.contains("200"), "bad status: {status}");
    assert!(!body.is_empty());
    let mut samples = 0usize;
    for line in body.lines() {
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix('#') {
            let mut parts = comment.split_whitespace();
            let keyword = parts.next().expect("comment keyword");
            assert!(
                keyword == "TYPE" || keyword == "HELP",
                "bad comment line: {line}"
            );
            assert!(parts.next().is_some(), "comment missing metric: {line}");
            continue;
        }
        // Sample line: name{labels} value — split on the LAST space so
        // label values may contain spaces.
        let (series, value) = line.rsplit_once(' ').expect("sample has value");
        let value: f64 = value
            .parse()
            .unwrap_or_else(|_| panic!("bad value: {line}"));
        assert!(value.is_finite(), "non-finite sample escaped: {line}");
        let name = series.split('{').next().expect("series name");
        assert!(
            !name.is_empty()
                && name
                    .chars()
                    .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
            "invalid metric name: {line}"
        );
        assert!(name.starts_with("easybo_"), "unprefixed metric: {line}");
        if let Some(rest) = series.strip_prefix(name) {
            if !rest.is_empty() {
                assert!(
                    rest.starts_with('{') && rest.ends_with('}'),
                    "malformed labels: {line}"
                );
                assert!(
                    rest.contains("session=\"toy-run\""),
                    "missing label: {line}"
                );
            }
        }
        samples += 1;
    }
    assert!(samples >= 10, "expected a real exposition, got {samples}");
    assert!(body.contains("easybo_session_evals_finished"));
    assert!(body.contains("easybo_session_best_fom"));
    assert!(body.contains("easybo_session_spans"));

    // The JSON snapshot endpoint parses and names the session.
    let (status, body) = http_get(addr, "/sessions");
    assert!(status.contains("200"), "bad status: {status}");
    let parsed = easybo_telemetry::parse_json(&body).expect("valid JSON");
    let sessions = parsed
        .get("sessions")
        .and_then(|v| v.as_array())
        .expect("sessions array");
    assert_eq!(sessions.len(), 1);
    assert_eq!(
        sessions[0].get("name").and_then(|v| v.as_str()),
        Some("toy-run")
    );

    let (status, _) = http_get(addr, "/nope");
    assert!(status.contains("404"), "bad status: {status}");
    server.shutdown();
}

/// One deterministic instrumented run for the aggregation suite.
fn report_run(seed: u64) -> RunReport {
    let (telemetry, _recorder) = Telemetry::recording();
    let mut opt = EasyBo::new(Bounds::unit_cube(2).unwrap());
    opt.batch_size(4)
        .initial_points(6)
        .max_evals(20)
        .seed(seed)
        .telemetry(telemetry);
    opt.run(objective).expect("runs").report
}

fn report_set() -> ReportSet {
    ReportSet::from_reports((1..=4).map(report_run).collect())
}

const BASELINE_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/data/report_baseline.json");

/// Acceptance: the aggregated report of four seeded runs stays inside
/// the committed baseline; a perturbed baseline is caught.
#[test]
fn aggregated_reports_pass_the_committed_regression_gate() {
    let aggregate = report_set().aggregate();
    assert_eq!(aggregate.runs, 4);

    let text = std::fs::read_to_string(BASELINE_PATH).expect("committed baseline");
    let baseline = parse_baseline(&text).expect("baseline parses");
    assert!(!baseline.is_empty());
    let regressions = gate(&aggregate, &baseline);
    assert!(
        regressions.is_empty(),
        "regressions vs committed baseline:\n{}",
        regressions
            .iter()
            .map(|r| r.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );

    // The gate has teeth: shifting a bound flags the metric, and a
    // baseline metric the aggregate lacks is reported as missing.
    let mut poisoned = baseline.clone();
    if let Some(b) = poisoned.get_mut("completed") {
        b.mean += 10.0 * (b.tol + 1.0);
    }
    poisoned.insert(
        "no_such_metric".into(),
        easybo::GateBound {
            mean: 1.0,
            tol: 0.1,
        },
    );
    let caught = gate(&aggregate, &poisoned);
    assert!(caught.iter().any(|r| r.metric == "completed"));
    assert!(caught
        .iter()
        .any(|r| r.metric == "no_such_metric" && r.actual.is_nan()));

    // And the aggregate itself round-trips through its JSON form.
    let back = easybo::parse_aggregate(&aggregate.to_json()).expect("round-trips");
    assert_eq!(back.runs, aggregate.runs);
    assert_eq!(
        back.metric("completed").map(|s| s.mean),
        aggregate.metric("completed").map(|s| s.mean)
    );
}

/// Regenerates `tests/data/report_baseline.json` from the current
/// deterministic runs. Run manually after an intentional change:
///
/// ```text
/// cargo test -p easybo-integration --test introspection -- --ignored regenerate
/// ```
#[test]
#[ignore = "writes the committed baseline; run explicitly after intentional changes"]
fn regenerate_report_baseline() {
    let aggregate = report_set().aggregate();
    let mut out = String::from("{\n");
    let mut first = true;
    for (name, stat) in &aggregate.metrics {
        // Only deterministic metrics belong in the gate: anything
        // wall-clock-derived varies run to run and host to host.
        if matches!(
            name.as_str(),
            "gp_fit_share" | "acq_share" | "checkpoint_share"
        ) {
            continue;
        }
        if !first {
            out.push_str(",\n");
        }
        first = false;
        // Deterministic metrics gate tightly around the observed mean.
        let tol = (stat.mean.abs() * 1e-9).max(1e-9);
        out.push_str(&format!(
            "  \"{name}\": {{\"mean\": {}, \"tol\": {}}}",
            stat.mean, tol
        ));
    }
    out.push_str("\n}\n");
    std::fs::write(BASELINE_PATH, out).expect("writes baseline");
}

/// Satellite: checkpoint encode/fsync histograms surface in the report.
#[test]
fn checkpoint_histograms_surface_in_the_run_report() {
    let ckpt = std::env::temp_dir().join(format!(
        "easybo-introspection-hist-{}.snap",
        std::process::id()
    ));
    let (telemetry, _recorder) = Telemetry::recording();
    let mut opt = EasyBo::new(Bounds::unit_cube(2).unwrap());
    opt.batch_size(4)
        .initial_points(6)
        .max_evals(16)
        .seed(21)
        .checkpoint_to(&ckpt)
        .checkpoint_every(2)
        .telemetry(telemetry);
    let report = opt.run(objective).expect("runs").report;
    std::fs::remove_file(&ckpt).ok();

    let summary = report.summary.as_ref().expect("telemetry summary");
    assert!(summary.checkpoints_written > 0);
    let encode = report.snapshot_encode.as_ref().expect("encode histogram");
    let fsync = report.snapshot_fsync.as_ref().expect("fsync histogram");
    assert_eq!(encode.count, summary.checkpoints_written as u64);
    assert_eq!(fsync.count, summary.checkpoints_written as u64);
    assert!(encode.mean().expect("nonempty") > 0.0);
    assert!(fsync.mean().expect("nonempty") > 0.0);
    let share = report.checkpoint_share.expect("checkpoint share");
    assert!(share >= 0.0);
    let rendered = report.to_string();
    assert!(rendered.contains("checkpoints"), "report: {rendered}");
}

/// A run without checkpointing leaves the checkpoint fields empty.
#[test]
fn reports_without_checkpoints_omit_the_histograms() {
    let report = report_run(33);
    assert!(report.snapshot_encode.is_none());
    assert!(report.snapshot_fsync.is_none());
    assert!(report.checkpoint_share.is_none());
}

proptest! {
    /// Property: any well-formed span event stream survives the JSONL
    /// round trip (shortest-roundtrip floats, restricted names).
    #[test]
    fn span_jsonl_roundtrip(
        entries in proptest::collection::vec(
            (0u64..10_000, 0u64..10_000, 0usize..4, 0f64..1e6, 0u64..2),
            0..40,
        )
    ) {
        const NAMES: [&str; 4] = ["session_step", "gp_refit", "acquisition", "dispatch"];
        let events: Vec<TimedEvent> = entries
            .iter()
            .map(|&(id, parent, name_ix, time, end)| TimedEvent {
                time,
                event: if end == 1 {
                    Event::SpanEnd { id }
                } else {
                    Event::SpanStart {
                        id,
                        parent,
                        name: NAMES[name_ix].into(),
                    }
                },
            })
            .collect();
        let jsonl = events
            .iter()
            .map(to_json_line)
            .collect::<Vec<_>>()
            .join("\n");
        let back = parse_jsonl(&jsonl).expect("replays");
        prop_assert_eq!(events, back);
    }
}

/// Malformed span lines are rejected, not silently skipped.
#[test]
fn malformed_span_lines_are_rejected() {
    for line in [
        r#"{"t":1.0,"event":"SpanStart","id":7,"name":"x"}"#, // missing parent
        r#"{"t":1.0,"event":"SpanStart","parent":0,"name":"x"}"#, // missing id
        r#"{"t":1.0,"event":"SpanStart","id":7,"parent":0}"#, // missing name
        r#"{"t":1.0,"event":"SpanEnd"}"#,                     // missing id
        r#"{"t":1.0,"event":"SpanEnd","id":not_a_number}"#,   // garbage id
        r#"{"t":1.0,"event":"SpanSideways","id":7}"#,         // unknown kind
    ] {
        assert!(
            parse_jsonl(line).is_err(),
            "malformed line accepted: {line}"
        );
    }
}
