//! Acceptance suite for the constrained sizing scenario zoo.
//!
//! Three pillars:
//!
//! 1. **Projection properties** — the reduced↔full parameter projection
//!    round-trips bitwise, linked parameters satisfy their expressions
//!    exactly, and free parameters stay inside their bounds, over
//!    randomly generated link structures.
//! 2. **Chaos matrix** — the constrained matched-op-amp scenario is
//!    bit-identical across parallelism {1, 8} at fault rates {0%, 30%},
//!    and the multi-corner LDO survives kill/resume with byte-identical
//!    traces.
//! 3. **Format pinning** — the versioned constrained-policy state blob
//!    (`CNST` v1) keeps restoring from its committed golden bytes, and
//!    constrained snapshots are fingerprint-isolated from plain ones.

use easybo::{
    ConstrainedProblem, EasyBo, EasyBoError, FaultPlan, FaultyBlackBox, RetryPolicy, Telemetry,
};
use easybo_exec::{AsyncPolicy, Dataset};
use easybo_opt::Bounds;
use easybo_scenario::{zoo, Link, ParamSpace, Scenario, ScenarioOutcome};
use proptest::prelude::*;

fn tmp(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!(
        "easybo-scenario-{}-{name}.snap",
        std::process::id()
    ))
}

// ---------------------------------------------------------------------
// 1. Projection properties over random link structures.
// ---------------------------------------------------------------------

/// Name pool so generated spaces can use `&'static str` names.
const NAMES: [&str; 8] = ["p0", "p1", "p2", "p3", "p4", "p5", "p6", "p7"];

/// Builds a random space of `n` parameters over `[0, 1]`: `p0` is
/// always free (so every link is valid by construction), and each
/// later parameter is free, copied from `p0`, or scaled from `p0`
/// according to `kinds`/`factors`.
fn build_space(n: usize, kinds: &[u32], factors: &[f64]) -> ParamSpace {
    let mut space = ParamSpace::new(NAMES[..n].iter().map(|name| (*name, 0.0, 1.0)).collect());
    for i in 1..n {
        match kinds[i - 1] % 4 {
            2 => space = space.link(NAMES[i], "p0"),
            3 => space = space.link_scaled(NAMES[i], "p0", factors[i - 1]),
            _ => {}
        }
    }
    space
}

proptest! {
    /// Free coordinates pass through `to_full` and back **bitwise**.
    #[test]
    fn projection_round_trips_bitwise(
        n in 3usize..=8,
        kinds in proptest::collection::vec(0u32..4, 7..8),
        factors in proptest::collection::vec(0.5f64..4.0, 7..8),
        raw in proptest::collection::vec(0.0f64..1.0, 8..9),
    ) {
        let space = build_space(n, &kinds, &factors);
        let reduced = &raw[..space.reduced_dim()];
        let full = space.to_full(reduced);
        prop_assert_eq!(full.len(), space.raw_dim());
        let back = space.to_reduced(&full);
        prop_assert_eq!(back.len(), reduced.len());
        for (a, b) in back.iter().zip(reduced) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    /// Linked parameters satisfy their expressions exactly: `Copy`
    /// targets are bitwise equal to their source, `Scaled` targets are
    /// exactly `factor * source` (one IEEE multiplication, no drift).
    #[test]
    fn links_hold_bitwise(
        n in 3usize..=8,
        kinds in proptest::collection::vec(0u32..4, 7..8),
        factors in proptest::collection::vec(0.5f64..4.0, 7..8),
        raw in proptest::collection::vec(0.0f64..1.0, 8..9),
    ) {
        let space = build_space(n, &kinds, &factors);
        let full = space.to_full(&raw[..space.reduced_dim()]);
        for (i, link) in space.links().iter().enumerate() {
            match *link {
                Link::Free => {}
                Link::Copy(s) => prop_assert_eq!(full[i].to_bits(), full[s].to_bits()),
                Link::Scaled(s, k) => {
                    prop_assert_eq!(full[i].to_bits(), (k * full[s]).to_bits())
                }
            }
        }
    }

    /// In-bounds reduced points project to in-bounds free parameters,
    /// and the reduced space is strictly smaller whenever a link exists.
    #[test]
    fn bounds_and_dimensionality_are_preserved(
        n in 3usize..=8,
        kinds in proptest::collection::vec(0u32..4, 7..8),
        factors in proptest::collection::vec(0.5f64..4.0, 7..8),
        raw in proptest::collection::vec(0.0f64..1.0, 8..9),
    ) {
        let space = build_space(n, &kinds, &factors);
        let reduced = &raw[..space.reduced_dim()];
        prop_assert!(space.reduced_bounds().contains(reduced));
        let full = space.to_full(reduced);
        for &i in &space.free_indices() {
            prop_assert!((0.0..=1.0).contains(&full[i]));
        }
        let n_links = space.links().iter().filter(|l| **l != Link::Free).count();
        prop_assert_eq!(space.reduced_dim(), space.raw_dim() - n_links);
        if n_links > 0 {
            prop_assert!(space.reduced_dim() < space.raw_dim());
        }
    }
}

// ---------------------------------------------------------------------
// 2. Chaos matrix: parallelism × faults, kill/resume.
// ---------------------------------------------------------------------

/// Runs the matched-op-amp scenario with the given thread-count and
/// fault rate (faults injected *around* the whole corner fan-out, with
/// retries to absorb them).
fn chaotic_opamp_run(parallelism: usize, fail_rate: f64) -> easybo::OptimizationResult {
    let scenario = zoo::matched_opamp();
    let objective = |x: &[f64]| scenario.worst_fom(x);
    let c0 = |x: &[f64]| scenario.spec_slack(x, 0);
    let c1 = |x: &[f64]| scenario.spec_slack(x, 1);
    let problem = ConstrainedProblem::new(&objective)
        .subject_to_named(scenario.specs()[0].name(), &c0)
        .subject_to_named(scenario.specs()[1].name(), &c1);

    let mut opt = scenario.optimizer();
    opt.batch_size(3)
        .initial_points(6)
        .max_evals(12)
        .seed(13)
        .parallelism(parallelism);
    if fail_rate > 0.0 {
        opt.retry_policy(RetryPolicy::default().max_attempts(8).backoff(3.0, 2.0));
        let bb = FaultyBlackBox::new(
            scenario.blackbox(),
            FaultPlan {
                seed: 29,
                fail_rate,
                ..FaultPlan::default()
            },
        );
        opt.run_constrained_blackbox(&problem, &bb).unwrap()
    } else {
        opt.run_constrained_blackbox(&problem, &scenario.blackbox())
            .unwrap()
    }
}

/// Parallelism {1, 8} × fault {0%, 30%}: within each fault rate the
/// trace CSV and dataset must be byte-for-byte identical across the
/// thread-count knob.
#[test]
fn constrained_opamp_is_bit_identical_across_parallelism_and_faults() {
    for &fail_rate in &[0.0, 0.3] {
        let base = chaotic_opamp_run(1, fail_rate);
        let wide = chaotic_opamp_run(8, fail_rate);
        assert_eq!(
            base.trace.to_csv(),
            wide.trace.to_csv(),
            "trace diverged at fail_rate {fail_rate}"
        );
        assert_eq!(base.data, wide.data, "dataset diverged at {fail_rate}");
        assert_eq!(base.best_x, wide.best_x);
        assert!(base.trace.to_csv().lines().count() > 1, "run did something");
    }
}

fn ldo_outcome(opt: &EasyBo, scenario: &Scenario) -> ScenarioOutcome {
    scenario.run_with(opt).unwrap()
}

/// Kill the multi-corner LDO scenario mid-run, resume from the
/// checkpoint, and require the stitched run to be byte-identical to the
/// uninterrupted baseline.
#[test]
fn multicorner_ldo_survives_kill_and_resume_byte_identically() {
    let scenario = zoo::multicorner_ldo();
    let mut opt = scenario.optimizer();
    opt.batch_size(4).initial_points(6).max_evals(14).seed(5);
    let baseline = ldo_outcome(&opt, &scenario);

    for kill in [7usize, 11] {
        let path = tmp(&format!("ldo-kill-{kill}"));
        let mut killed = opt.clone();
        killed
            .checkpoint_to(&path)
            .checkpoint_every(1)
            .abort_after_evals(kill);
        let err = scenario.run_with(&killed).unwrap_err();
        assert!(
            matches!(err, EasyBoError::Opt(_)),
            "kill should abort: {err}"
        );

        let resumed = scenario.resume_with(&opt, &path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(
            resumed.result.trace.to_csv(),
            baseline.result.trace.to_csv(),
            "trace diverged after kill at {kill}"
        );
        assert_eq!(resumed.result.data, baseline.result.data);
        assert_eq!(resumed.best_full, baseline.best_full);
        assert_eq!(resumed.best_slacks, baseline.best_slacks);
        assert_eq!(resumed.corner_foms, baseline.corner_foms);
    }
}

/// A constrained checkpoint must not resume as a plain run (and vice
/// versa): the `CNST` fingerprint keeps the two snapshot families apart.
#[test]
fn constrained_snapshots_are_fingerprint_isolated() {
    let scenario = zoo::multicorner_ldo();
    let mut opt = scenario.optimizer();
    opt.batch_size(4).initial_points(6).max_evals(14).seed(6);

    let path = tmp("fingerprint");
    let mut killed = opt.clone();
    killed
        .checkpoint_to(&path)
        .checkpoint_every(1)
        .abort_after_evals(8);
    let _ = scenario.run_with(&killed).unwrap_err();

    // Plain resume against the constrained snapshot: config mismatch.
    let err = opt.resume_from(&path, &scenario.blackbox()).unwrap_err();
    assert!(
        matches!(err, EasyBoError::Persist(_)),
        "plain resume must reject a constrained snapshot, got {err}"
    );
    assert!(
        err.to_string().contains("fingerprint"),
        "rejection should name the fingerprint mismatch: {err}"
    );
    std::fs::remove_file(&path).ok();
}

/// End-to-end acceptance: both zoo scenarios run through the async
/// optimizer, search strictly fewer dimensions than the raw parameter
/// count (where links exist), report a best *feasible* design, and
/// surface the feasibility split in the run report.
#[test]
fn zoo_scenarios_run_end_to_end_with_feasible_incumbents() {
    let (telemetry, _recorder) = Telemetry::recording();
    let opamp = zoo::matched_opamp();
    assert!(opamp.space().reduced_dim() < opamp.space().raw_dim());
    let mut opt = opamp.optimizer();
    opt.batch_size(4)
        .initial_points(10)
        .max_evals(24)
        .seed(3)
        .telemetry(telemetry);
    let outcome = opamp.run_with(&opt).unwrap();
    assert!(outcome.best_slacks.iter().all(|s| *s >= 0.0));
    assert_eq!(outcome.best_full.len(), 14);
    assert_eq!(outcome.result.best_x.len(), 10);
    // The linked halves are bitwise equal in the reported raw design.
    assert_eq!(
        outcome.best_full[0].to_bits(),
        outcome.best_full[2].to_bits()
    );
    assert_eq!(
        outcome.best_full[1].to_bits(),
        outcome.best_full[3].to_bits()
    );
    let frac = outcome
        .result
        .report
        .feasible_fraction
        .expect("feasibility counters attached");
    assert!((0.0..=1.0).contains(&frac));

    let ldo = zoo::multicorner_ldo();
    let mut opt = ldo.optimizer();
    opt.batch_size(4).initial_points(8).max_evals(16).seed(2);
    let outcome = ldo.run_with(&opt).unwrap();
    assert!(outcome.best_slacks.iter().all(|s| *s >= 0.0));
    // Worst-case aggregation: the reported best value is the minimum
    // corner FOM of the incumbent.
    let min_corner = outcome
        .corner_foms
        .iter()
        .map(|(_, f)| *f)
        .fold(f64::INFINITY, f64::min);
    assert_eq!(outcome.result.best_value, min_corner);
}

// ---------------------------------------------------------------------
// 3. Golden file: constrained policy blob (CNST v1) as committed bytes.
// ---------------------------------------------------------------------

/// Deterministic observations feeding the golden constrained policy.
fn golden_dataset() -> Dataset {
    let mut data = Dataset::new();
    data.push(vec![0.25, 0.75], -0.5);
    data.push(vec![0.5, 0.5], 0.125);
    data.push(vec![0.125, 0.625], 0.75);
    data.push(vec![0.9, 0.1], -1.5);
    data
}

/// The committed `tests/data/golden_cnst_v1.blob` must keep restoring
/// for as long as the CNST format stays at version 1, and re-snapshot
/// to the exact committed bytes. Regenerate (after an *intentional*
/// format change, with a version bump) via:
/// `EASYBO_REGEN_GOLDEN=1 cargo test -p easybo-integration --test scenario golden`.
#[test]
fn golden_cnst_v1_blob_still_restores() {
    let path = std::path::Path::new(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/data/golden_cnst_v1.blob"
    ));
    let objective = |x: &[f64]| -(x[0] - 0.3).powi(2) - (x[1] - 0.6).powi(2);
    let constraint = |x: &[f64]| x[0] + x[1] - 0.4;
    let problem = ConstrainedProblem::new(&objective).subject_to_named("sum>=0.4", &constraint);
    let mut opt = EasyBo::new(Bounds::unit_cube(2).unwrap());
    opt.seed(42);

    if std::env::var("EASYBO_REGEN_GOLDEN").is_ok() {
        let mut policy = opt.build_constrained_policy(&problem);
        let _ = policy.select_next(&golden_dataset(), &[]);
        std::fs::write(path, policy.snapshot_state().expect("constrained blob")).unwrap();
    }

    let blob = std::fs::read(path).expect("committed golden CNST blob");
    let mut restored = opt.build_constrained_policy(&problem);
    restored.restore_state(&blob).unwrap_or_else(|e| {
        panic!(
            "the committed golden CNST v1 blob no longer restores: {e}\n\
             If the constrained-state layout changed intentionally, bump \
             CONSTRAINED_BLOB_VERSION, keep a migration for blobs written \
             by older builds, and regenerate this fixture with \
             EASYBO_REGEN_GOLDEN=1 cargo test -p easybo-integration --test \
             scenario golden"
        )
    });
    // The codec round-trips: a fresh snapshot of the restored policy is
    // byte-identical to the committed fixture.
    assert_eq!(
        restored.snapshot_state().expect("constrained blob"),
        blob,
        "golden CNST blob round trip is not byte-identical"
    );
}

/// Bit flips anywhere in the constrained blob must be detected, never a
/// panic or a silently wrong restore.
#[test]
fn corrupted_cnst_blobs_are_rejected_loudly() {
    let objective = |x: &[f64]| -x[0];
    let constraint = |x: &[f64]| x[1] - 0.2;
    let problem = ConstrainedProblem::new(&objective).subject_to(&constraint);
    let mut opt = EasyBo::new(Bounds::unit_cube(2).unwrap());
    opt.seed(7);
    let mut policy = opt.build_constrained_policy(&problem);
    let _ = policy.select_next(&golden_dataset(), &[]);
    let blob = policy.snapshot_state().unwrap();

    for idx in [0usize, 4, blob.len() / 2, blob.len() - 1] {
        let mut bad = blob.clone();
        bad[idx] ^= 0x20;
        let mut target = opt.build_constrained_policy(&problem);
        // Either an explicit decode error or (for payload-interior
        // flips) a value-level mismatch is acceptable; silent success
        // restoring *different* state is not. A flipped byte that
        // decodes identically is impossible because every field is
        // length-checked and the tail must be fully consumed.
        if target.restore_state(&bad).is_ok() {
            assert_ne!(
                target.snapshot_state().unwrap(),
                blob,
                "corrupted blob silently restored as the original"
            );
        }
    }
}
