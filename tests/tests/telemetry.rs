//! Cross-crate telemetry integration tests: the event stream emitted by
//! a run must be a faithful, replayable record of that run.
//!
//! The headline acceptance check is exact reconstruction: a JSONL sink
//! attached to an optimizer run yields events from which
//! `replay::best_so_far_csv` regenerates `RunTrace::to_csv()`
//! byte-for-byte (the paper's Fig. 4/6 trace format).

use std::io::Write;
use std::sync::{Arc, Mutex};

use easybo::EasyBo;
use easybo_exec::{
    AsyncPolicy, BusyPoint, CostedFunction, Dataset, SimTimeModel, SyncBatchPolicy,
    ThreadedExecutor, VirtualExecutor,
};
use easybo_opt::Bounds;
use easybo_telemetry::replay::{best_so_far_csv, parse_jsonl};
use easybo_telemetry::{Event, JsonlSink, Telemetry, TimedEvent};

/// `Write` target shareable between a `JsonlSink` (owned by the
/// telemetry handle) and the test that wants to read it back.
#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl SharedBuf {
    fn contents(&self) -> String {
        String::from_utf8(self.0.lock().unwrap().clone()).expect("utf8 jsonl")
    }
}

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

fn toy_blackbox() -> CostedFunction<impl Fn(&[f64]) -> f64 + Send + Sync> {
    let bounds = Bounds::unit_cube(2).unwrap();
    let time = SimTimeModel::new(&bounds, 50.0, 0.4, 11);
    CostedFunction::new("toy", bounds, time, |x: &[f64]| {
        -(x[0] - 0.3).powi(2) - (x[1] - 0.6).powi(2)
    })
}

struct Walker(f64);
impl AsyncPolicy for Walker {
    fn select_next(&mut self, _d: &Dataset, _b: &[BusyPoint]) -> Vec<f64> {
        self.0 = (self.0 + 0.17) % 1.0;
        vec![self.0, 1.0 - self.0]
    }
}
impl SyncBatchPolicy for Walker {
    fn select_batch(&mut self, d: &Dataset, batch_size: usize) -> Vec<Vec<f64>> {
        (0..batch_size)
            .map(|_| AsyncPolicy::select_next(self, d, &[]))
            .collect()
    }
}

fn init_points() -> Vec<Vec<f64>> {
    vec![
        vec![0.1, 0.9],
        vec![0.5, 0.5],
        vec![0.9, 0.1],
        vec![0.3, 0.2],
    ]
}

/// The tentpole acceptance criterion: a full optimizer run (GP refits,
/// acquisition events and all) through the virtual executor, recorded to
/// JSONL, reconstructs the run trace CSV *exactly*.
#[test]
fn jsonl_reconstruction_equals_trace_csv_for_full_optimizer_run() {
    let buf = SharedBuf::default();
    let telemetry = Telemetry::new();
    telemetry.add_sink(JsonlSink::new(buf.clone()));

    let bounds = Bounds::new(vec![(-2.0, 2.0), (-2.0, 2.0)]).unwrap();
    let mut opt = EasyBo::new(bounds);
    opt.batch_size(3)
        .max_evals(14)
        .initial_points(6)
        .seed(5)
        .telemetry(telemetry);
    let result = opt
        .run(|x| -(x[0].powi(2) + x[1].powi(2)))
        .expect("run succeeds");

    let events = parse_jsonl(&buf.contents()).expect("valid jsonl");
    // The stream carries more than evaluations: refits and acquisition
    // optimizations from inside the policy must be interleaved.
    assert!(
        events
            .iter()
            .any(|e| matches!(e.event, Event::GpRefit { .. })),
        "expected GpRefit events in the stream"
    );
    assert!(
        events
            .iter()
            .any(|e| matches!(e.event, Event::AcqOptimized { .. })),
        "expected AcqOptimized events in the stream"
    );
    assert_eq!(best_so_far_csv(&events), result.trace.to_csv());

    // The end-of-run report mirrors the schedule.
    assert_eq!(result.report.completed, 14);
    assert!(result.report.workers >= 1);
    assert!((result.report.utilization - result.schedule.utilization()).abs() < 1e-12);
}

#[test]
fn jsonl_reconstruction_equals_trace_csv_for_sync_executor() {
    let buf = SharedBuf::default();
    let telemetry = Telemetry::new();
    telemetry.add_sink(JsonlSink::new(buf.clone()));

    let bb = toy_blackbox();
    let result = VirtualExecutor::new(3).run_sync_with(
        &bb,
        &init_points(),
        13,
        &mut Walker(0.0),
        &telemetry,
    );
    telemetry.flush();

    let events = parse_jsonl(&buf.contents()).expect("valid jsonl");
    assert_eq!(best_so_far_csv(&events), result.trace.to_csv());
}

#[test]
fn jsonl_reconstruction_equals_trace_csv_for_threaded_executor() {
    let buf = SharedBuf::default();
    let telemetry = Telemetry::new();
    telemetry.add_sink(JsonlSink::new(buf.clone()));

    let bb = toy_blackbox();
    let result = ThreadedExecutor::new(3, 1e-5)
        .run_async_with(&bb, &init_points(), 11, &mut Walker(0.0), &telemetry)
        .expect("threaded run succeeds");
    telemetry.flush();

    // `EvalFinished` is stamped with the same (monotone-clamped) time
    // `trace.record` uses, so reconstruction is exact even with real
    // threads finishing out of order.
    let events = parse_jsonl(&buf.contents()).expect("valid jsonl");
    assert_eq!(best_so_far_csv(&events), result.trace.to_csv());
}

fn spans_by_task(
    schedule: &easybo_exec::Schedule,
) -> std::collections::HashMap<usize, (usize, f64, f64)> {
    schedule
        .spans()
        .iter()
        .map(|s| (s.task, (s.worker, s.start, s.end)))
        .collect()
}

/// `(worker, event time)` for the start and finish of one task.
type TaskTimes = (Option<(usize, f64)>, Option<(usize, f64)>);

fn events_by_task(events: &[TimedEvent]) -> std::collections::HashMap<usize, TaskTimes> {
    let mut map: std::collections::HashMap<usize, TaskTimes> = std::collections::HashMap::new();
    for ev in events {
        match ev.event {
            Event::EvalStarted { task, worker } => {
                map.entry(task).or_default().0 = Some((worker, ev.time));
            }
            Event::EvalFinished { task, worker, .. } => {
                map.entry(task).or_default().1 = Some((worker, ev.time));
            }
            _ => {}
        }
    }
    map
}

/// Under the virtual executor the event stream must agree with the
/// schedule span-for-span: same worker, start and end times.
#[test]
fn virtual_event_ordering_matches_schedule_spans() {
    let (telemetry, recorder) = Telemetry::recording();
    let bb = toy_blackbox();
    let result = VirtualExecutor::new(3).run_async_with(
        &bb,
        &init_points(),
        12,
        &mut Walker(0.0),
        &telemetry,
    );

    let spans = spans_by_task(&result.schedule);
    let observed = events_by_task(&recorder.events());
    assert_eq!(spans.len(), 12);
    assert_eq!(observed.len(), 12);
    for (task, &(worker, start, end)) in &spans {
        let (started, finished) = observed[task];
        let (sw, st) = started.expect("EvalStarted for every span");
        let (fw, ft) = finished.expect("EvalFinished for every span");
        assert_eq!(sw, worker, "task {task} started on wrong worker");
        assert_eq!(fw, worker, "task {task} finished on wrong worker");
        assert_eq!(st, start, "task {task} start time mismatch");
        assert_eq!(ft, end, "task {task} finish time mismatch");
    }
}

/// Under the threaded executor `EvalStarted` must carry the exact span
/// start (the worker stamps both), and `EvalFinished` may only be
/// clamped *forward* relative to the span end.
#[test]
fn threaded_event_ordering_matches_schedule_spans() {
    let (telemetry, recorder) = Telemetry::recording();
    let bb = toy_blackbox();
    let result = ThreadedExecutor::new(3, 1e-5)
        .run_async_with(&bb, &init_points(), 10, &mut Walker(0.0), &telemetry)
        .expect("threaded run succeeds");

    let spans = spans_by_task(&result.schedule);
    let observed = events_by_task(&recorder.events());
    assert_eq!(spans.len(), 10);
    assert_eq!(observed.len(), 10);
    for (task, &(worker, start, end)) in &spans {
        let (started, finished) = observed[task];
        let (sw, st) = started.expect("EvalStarted for every span");
        let (fw, ft) = finished.expect("EvalFinished for every span");
        assert_eq!(sw, worker, "task {task} started on wrong worker");
        assert_eq!(fw, worker, "task {task} finished on wrong worker");
        assert_eq!(st, start, "task {task} start time mismatch");
        assert!(
            ft >= end && ft >= st,
            "task {task}: finish event at {ft} vs span [{start}, {end}]"
        );
    }
}

/// Regression for the busy-set fix: in-flight points are keyed by task
/// id, so several workers evaluating the *same* `x` stay individually
/// tracked. With the old `x`-keyed removal, one completion wiped every
/// duplicate and the policy saw an empty busy set.
#[test]
fn duplicate_x_busy_points_are_removed_one_at_a_time() {
    struct SamePoint {
        busy_seen: Vec<usize>,
    }
    impl AsyncPolicy for SamePoint {
        fn select_next(&mut self, _d: &Dataset, b: &[BusyPoint]) -> Vec<f64> {
            self.busy_seen.push(b.len());
            vec![0.42, 0.42]
        }
    }

    let bb = toy_blackbox();
    let mut policy = SamePoint {
        busy_seen: Vec::new(),
    };
    // Distinct initial points desynchronize the three workers; every
    // proposal afterwards is the identical duplicate point.
    let result = VirtualExecutor::new(3).run_async(
        &bb,
        &[vec![0.1, 0.9], vec![0.5, 0.5], vec![0.9, 0.1]],
        12,
        &mut policy,
    );
    assert_eq!(result.data.len(), 12);
    assert_eq!(policy.busy_seen.len(), 9);
    // At every selection exactly the other two workers are in flight —
    // even once all in-flight points share the same coordinates.
    assert!(
        policy.busy_seen.iter().all(|&n| n == 2),
        "busy counts seen by the policy: {:?}",
        policy.busy_seen
    );
}

/// The run report attached to `OptimizationResult` aggregates the
/// summary sensibly: shares within [0, 1], idle fraction consistent
/// with utilization.
#[test]
fn run_report_shares_are_consistent() {
    let telemetry = Telemetry::new();
    let bounds = Bounds::unit_cube(2).unwrap();
    let mut opt = EasyBo::new(bounds);
    opt.batch_size(2)
        .max_evals(12)
        .initial_points(5)
        .seed(3)
        .telemetry(telemetry);
    let result = opt
        .run(|x| -(x[0] - 0.4).powi(2) - (x[1] - 0.5).powi(2))
        .expect("run succeeds");

    let r = &result.report;
    assert!(r.utilization > 0.0 && r.utilization <= 1.0 + 1e-12);
    assert!((r.idle_fraction - (1.0 - r.utilization)).abs() < 1e-9);
    assert!(r.gp_fit_share.expect("telemetry was enabled") >= 0.0);
    assert!(r.acq_share.expect("telemetry was enabled") >= 0.0);
    assert!(r.makespan > 0.0);
    let s = r.summary.as_ref().expect("telemetry was enabled");
    assert_eq!(s.evals_finished, 12);
    assert!(s.gp_refits > 0);
    assert!(s.acq_optimizations > 0);
    // The Display form is the human entry point; it should mention the
    // headline numbers.
    let text = format!("{r}");
    assert!(text.contains("utilization"), "report text: {text}");
}
