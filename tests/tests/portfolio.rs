//! Acceptance matrix for the whole `Algorithm` registry — every
//! variant, including the async portfolio from the literature
//! (ε-greedy, pessimistic hallucination, plain-EI standard), runs the
//! seeded op-amp bench at parallelism {1, 8} × chaos {0, 30}% and must
//! produce bit-identical trace CSVs across thread counts. A
//! registry-wide property extends the attempt conservation law
//! (#issued == #finished + #failed) over every algorithm and random
//! fault regimes.

use easybo::{
    Algorithm, AlgorithmMode, FailureAction, FaultPlan, FaultyBlackBox, Parallelism, RetryPolicy,
    RunSetup, Telemetry,
};
use easybo_circuits::opamp::TwoStageOpAmp;
use easybo_circuits::Circuit;
use easybo_exec::{CostedFunction, SimTimeModel};
use easybo_opt::Bounds;
use proptest::prelude::*;

/// The paper's 10-d two-stage op-amp with a seeded simulation-time
/// model — the same seeded bench Table I runs.
fn opamp_blackbox() -> CostedFunction<impl Fn(&[f64]) -> f64 + Send + Sync> {
    let amp = TwoStageOpAmp::new();
    let bounds = amp.bounds().clone();
    let time = SimTimeModel::new(&bounds, 38.7, 0.25, 2020);
    CostedFunction::new("two-stage-opamp", bounds, time, move |x: &[f64]| amp.fom(x))
}

/// A cheap 2-d peak for the registry-wide property, where per-case
/// cost matters more than dimensionality.
fn toy_peak(seed: u64) -> CostedFunction<impl Fn(&[f64]) -> f64 + Send + Sync> {
    let bounds = Bounds::unit_cube(2).unwrap();
    let time = SimTimeModel::new(&bounds, 25.0, 0.3, seed);
    CostedFunction::new("toy-peak", bounds, time, |x: &[f64]| {
        (-((x[0] - 0.3).powi(2) + (x[1] - 0.7).powi(2))).exp()
    })
}

/// Chaos tailored to what each algorithm's driver can absorb: the
/// resilient async drivers take outright simulator failures (and retry
/// them), while the sync-batch and evolutionary drivers have no retry
/// machinery, so their chaos is stragglers only — slowdowns, never
/// failures.
fn plan_for(mode: AlgorithmMode, rate: f64, seed: u64) -> (FaultPlan, RetryPolicy) {
    match mode {
        AlgorithmMode::Sequential | AlgorithmMode::AsyncBatch => (
            FaultPlan {
                seed,
                fail_rate: rate,
                straggler_rate: rate,
                straggler_factor: 4.0,
                ..FaultPlan::default()
            },
            RetryPolicy::default()
                .max_attempts(6)
                .backoff(2.0, 2.0)
                .on_exhausted(FailureAction::Drop),
        ),
        AlgorithmMode::SyncBatch | AlgorithmMode::Evolutionary => (
            FaultPlan {
                seed,
                straggler_rate: rate,
                straggler_factor: 4.0,
                ..FaultPlan::default()
            },
            RetryPolicy::none(),
        ),
    }
}

fn count_kind(events: &[easybo_telemetry::TimedEvent], kind: &str) -> usize {
    events.iter().filter(|e| e.event.kind() == kind).count()
}

/// Headline matrix: every registry variant × chaos {0, 30}% must give
/// byte-identical traces, datasets, and schedules at parallelism 1 and
/// 8 — the thread knob tunes speed, never the trajectory.
#[test]
fn every_algorithm_is_thread_count_invariant_under_chaos() {
    for algo in Algorithm::all() {
        for &rate in &[0.0, 0.3] {
            let run = |parallelism: Parallelism| {
                let (plan, retry) = plan_for(algo.mode(), rate, 0xC4A0 ^ algo.index() as u64);
                let bb = FaultyBlackBox::new(opamp_blackbox(), plan);
                let mut setup = RunSetup::new(3, 12, 6, 200, 7);
                setup.parallelism = parallelism;
                setup.retry = retry;
                algo.run_with(&bb, &setup)
            };
            let seq = run(Parallelism::sequential());
            let par = run(Parallelism::new(8));
            let tag = format!("{} chaos {rate}", algo.key());
            assert_eq!(
                seq.trace.to_csv(),
                par.trace.to_csv(),
                "trace diverged across thread counts: {tag}"
            );
            assert_eq!(seq.data, par.data, "dataset diverged: {tag}");
            assert_eq!(
                seq.schedule.to_csv(),
                par.schedule.to_csv(),
                "schedule diverged: {tag}"
            );
            assert!(
                seq.data.ys().iter().all(|y| y.is_finite()),
                "non-finite observation survived: {tag}"
            );
        }
    }
}

/// The new portfolio members must emit a non-empty best-so-far trace on
/// the op-amp bench — the rows Table I summarizes exist and carry data.
#[test]
fn portfolio_algorithms_emit_table_rows_on_the_opamp() {
    for algo in [
        Algorithm::EpsGreedy,
        Algorithm::PessimisticBo,
        Algorithm::StandardBo,
    ] {
        let bb = opamp_blackbox();
        let r = algo.run(&bb, 3, 14, 6, 0, 11);
        assert_eq!(r.data.len(), 14, "{} must spend its budget", algo.key());
        assert!(
            !r.trace.points().is_empty(),
            "{} produced an empty trace",
            algo.key()
        );
        assert!(r.trace.points().iter().all(|p| p.value.is_finite()));
        assert!(!algo.label(3).is_empty());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Registry-wide conservation law: for every algorithm under a
    /// random fault regime, the executor drains — #QueryIssued ==
    /// #EvalFinished + #EvalFailed — and the surrogate only ever sees
    /// finite observations. Metaheuristics drive their own loop and
    /// emit no executor events, so they satisfy the law as 0 == 0.
    #[test]
    fn whole_registry_conserves_attempts_under_chaos(
        seed in 0u64..500,
        idx in 0usize..Algorithm::COUNT,
        rate in 0.0f64..0.35,
    ) {
        let algo = Algorithm::all()[idx];
        let (plan, retry) = plan_for(algo.mode(), rate, seed);
        let bb = FaultyBlackBox::new(toy_peak(seed), plan);
        let (telemetry, recorder) = Telemetry::recording();
        let mut setup = RunSetup::new(2, 10, 4, 60, seed ^ 0x51);
        setup.retry = retry;
        setup.telemetry = telemetry;
        let r = algo.run_with(&bb, &setup);
        let events = recorder.events();
        let issued = count_kind(&events, "QueryIssued");
        let finished = count_kind(&events, "EvalFinished");
        let failed = count_kind(&events, "EvalFailed");
        prop_assert!(
            issued == finished + failed,
            "conservation violated for {}: issued {} finished {} failed {}",
            algo.key(), issued, finished, failed
        );
        if matches!(algo.mode(), AlgorithmMode::Evolutionary) {
            prop_assert!(issued == 0, "{} should emit no executor events", algo.key());
        } else {
            prop_assert!(issued > 0, "{} emitted no executor events", algo.key());
        }
        prop_assert!(
            r.data.ys().iter().all(|y| y.is_finite()),
            "non-finite observation for {}", algo.key()
        );
    }
}
