//! End-to-end integration tests: the full EasyBO pipeline against
//! synthetic benchmarks with known optima and against the circuit models.

use easybo::{Algorithm, EasyBo};
use easybo_circuits::testfns::{SyntheticCircuit, TestFunction};
use easybo_circuits::{opamp::TwoStageOpAmp, Circuit};
use easybo_exec::{BlackBox, CostedFunction, SimTimeModel};
use easybo_opt::sampling;
use rand::SeedableRng;

fn blackbox_for(circuit: &SyntheticCircuit, seed: u64) -> impl BlackBox + '_ {
    let bounds = circuit.bounds().clone();
    let time = SimTimeModel::new(&bounds, 10.0, 0.2, seed);
    CostedFunction::new(
        circuit.name().to_string(),
        bounds,
        time,
        move |x: &[f64]| circuit.fom(x),
    )
}

#[test]
fn easybo_solves_branin_to_tolerance() {
    let branin = SyntheticCircuit::new(TestFunction::Branin);
    let r = EasyBo::new(branin.bounds().clone())
        .batch_size(4)
        .initial_points(12)
        .max_evals(60)
        .seed(5)
        .run(|x| branin.fom(x))
        .expect("run succeeds");
    // Branin's global max is ≈ -0.3979; get within 0.2.
    assert!(
        r.best_value > branin.global_max() - 0.2,
        "best {} vs optimum {}",
        r.best_value,
        branin.global_max()
    );
}

#[test]
fn easybo_makes_strong_progress_on_hartmann6() {
    let h6 = SyntheticCircuit::new(TestFunction::Hartmann6);
    let r = EasyBo::new(h6.bounds().clone())
        .batch_size(5)
        .initial_points(20)
        .max_evals(100)
        .seed(3)
        .run(|x| h6.fom(x))
        .expect("run succeeds");
    // Global max 3.322; random search at this budget averages ~1.7.
    assert!(r.best_value > 2.4, "best {}", r.best_value);
}

#[test]
fn full_algorithm_matrix_runs_on_synthetic_circuit() {
    let ackley = SyntheticCircuit::new(TestFunction::Ackley(3));
    let bb = blackbox_for(&ackley, 1);
    for algo in Algorithm::all() {
        let r = algo.run(&bb, 3, 30, 10, 100, 2);
        assert!(
            r.best_value().is_finite(),
            "{algo:?} produced a non-finite best"
        );
        // Ackley max is 0; random points on [-32.768, 32.768]^3 average
        // around -21, so clearing -20 shows the machinery functions. (pBO's
        // uniform weight grid genuinely struggles here — the weakness the
        // paper fixes — so the bar is deliberately loose.)
        assert!(r.best_value() > -20.0, "{algo:?}: {}", r.best_value());
    }
}

#[test]
fn easybo_beats_random_search_on_opamp() {
    // Compare mean-of-3-seeds to keep the test statistically meaningful on
    // the hard 10-d landscape.
    let amp = TwoStageOpAmp::new();
    let bounds = amp.bounds().clone();
    let budget = 90;
    let seeds = [17u64, 18, 19];
    let mut bo_sum = 0.0;
    let mut random_sum = 0.0;
    for &seed in &seeds {
        let amp2 = amp.clone();
        let r = EasyBo::new(bounds.clone())
            .batch_size(5)
            .initial_points(15)
            .max_evals(budget)
            .seed(seed)
            .run(move |x| amp2.fom(x))
            .expect("run succeeds");
        bo_sum += r.best_value;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        random_sum += sampling::uniform(&bounds, budget, &mut rng)
            .iter()
            .map(|x| amp.fom(x))
            .fold(f64::NEG_INFINITY, f64::max);
    }
    assert!(
        bo_sum > random_sum,
        "EasyBO mean {} vs random mean {}",
        bo_sum / 3.0,
        random_sum / 3.0
    );
}

#[test]
fn optimization_results_are_reproducible_across_processes() {
    // Fixed seed, fixed budget: byte-identical results (this is the
    // determinism the benchmark harness relies on).
    let branin = SyntheticCircuit::new(TestFunction::Branin);
    let run = || {
        EasyBo::new(branin.bounds().clone())
            .batch_size(3)
            .initial_points(8)
            .max_evals(25)
            .seed(99)
            .run(|x| branin.fom(x))
            .expect("run succeeds")
    };
    let a = run();
    let b = run();
    assert_eq!(a.best_x, b.best_x);
    assert_eq!(a.best_value, b.best_value);
    assert_eq!(a.data, b.data);
}

#[test]
fn trace_is_consistent_with_data() {
    let levy = SyntheticCircuit::new(TestFunction::Levy(2));
    let r = EasyBo::new(levy.bounds().clone())
        .batch_size(3)
        .initial_points(6)
        .max_evals(20)
        .seed(8)
        .run(|x| levy.fom(x))
        .expect("run succeeds");
    assert_eq!(r.trace.len(), r.data.len());
    assert_eq!(r.trace.final_best(), Some(r.best_value));
    // Best-so-far is monotone.
    let mut prev = f64::NEG_INFINITY;
    for p in r.trace.points() {
        assert!(p.best_so_far >= prev);
        prev = p.best_so_far;
    }
}
