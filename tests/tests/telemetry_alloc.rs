//! Allocation discipline of the disabled telemetry handle.
//!
//! The acceptance criterion for the observability layer is that leaving
//! telemetry off costs nothing on hot paths: every call on a disabled
//! handle must be a branch on an `Option`, with **zero heap
//! allocations** — no event construction, no boxed sinks, no metric
//! lookups. This test binary installs a counting global allocator
//! (which is why it lives alone in its own file) and measures exactly
//! that.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

use easybo_telemetry::{Event, Telemetry};

struct CountingAlloc;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn allocations() -> usize {
    ALLOCATIONS.load(Ordering::Relaxed)
}

// One #[test] only: the test harness runs tests in parallel threads and
// the allocation counter is process-global, so a second concurrently
// running test would break the zero-delta assertion.
#[test]
fn disabled_handle_never_allocates_on_the_hot_path() {
    let telemetry = Telemetry::disabled();
    let counter = telemetry.counter("gp_nll_evals"); // None when disabled

    // Warm up once so any lazy formatting machinery outside telemetry
    // is excluded from the measurement window.
    telemetry.emit_with(|| unreachable!("disabled: closure must not run"));

    let before = allocations();
    for i in 0..10_000u64 {
        telemetry.set_now(i as f64);
        telemetry.emit_with(|| Event::QueryIssued {
            task: i as usize,
            worker: 0,
        });
        telemetry.emit_at_with(i as f64, || Event::GpRefit {
            n: 100,
            // A disabled handle must never run this closure, so the
            // allocation inside is never reached.
            hyperparams: vec![0.0; 16],
            duration: 0.1,
        });
        telemetry.incr("gp_kernel_evals", 3);
        telemetry.gauge_set("run_utilization", 0.5);
        telemetry.observe("queue_wait_s", 0.1);
        if let Some(c) = &counter {
            c.incr();
        }
        let _timer = telemetry.timer("gp_fit_s");
        // Spans must short-circuit before touching the TLS parent
        // stack, id counter, or event pipeline.
        let _outer = telemetry.span("session_step");
        let _inner = telemetry.span("gp_refit");
    }
    let after = allocations();
    assert_eq!(
        after - before,
        0,
        "disabled telemetry allocated on the hot path"
    );

    // Counter-check in the same test (see note above): a live handle
    // through the identical API *does* allocate and does record, so the
    // zero-delta above is measuring a real code path, not a dead API.
    let (telemetry, recorder) = Telemetry::recording();
    let before = allocations();
    telemetry.emit(Event::PseudoPointAdded { count: 2 });
    assert!(allocations() > before, "recording should allocate");
    assert_eq!(recorder.events().len(), 1);
}
