//! Cross-crate integration of the surrogate stack: GP quality on real
//! circuit response surfaces, and the pseudo-point machinery the EasyBO
//! penalization depends on.

use easybo_circuits::{class_e::ClassEPa, opamp::TwoStageOpAmp, Circuit};
use easybo_gp::{Gp, GpConfig};
use easybo_opt::{sampling, Bounds};
use rand::SeedableRng;

/// Fits a GP to circuit data in unit coordinates; returns (gp, test set).
fn fit_circuit_gp(
    circuit: &dyn Circuit,
    n_train: usize,
    n_test: usize,
    seed: u64,
) -> (Gp, Vec<(Vec<f64>, f64)>) {
    let bounds = circuit.bounds().clone();
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let train = sampling::latin_hypercube(&bounds, n_train, &mut rng);
    let xs: Vec<Vec<f64>> = train.iter().map(|x| bounds.to_unit(x)).collect();
    let ys: Vec<f64> = train.iter().map(|x| circuit.fom(x)).collect();
    let gp = Gp::fit(xs, ys, GpConfig::default()).expect("GP fits circuit data");
    let test: Vec<(Vec<f64>, f64)> = sampling::uniform(&bounds, n_test, &mut rng)
        .into_iter()
        .map(|x| (bounds.to_unit(&x), circuit.fom(&x)))
        .collect();
    (gp, test)
}

fn rmse(gp: &Gp, test: &[(Vec<f64>, f64)]) -> f64 {
    let se: f64 = test
        .iter()
        .map(|(u, y)| (gp.predict(u).mean - y).powi(2))
        .sum();
    (se / test.len() as f64).sqrt()
}

#[test]
fn gp_accuracy_improves_with_training_data_on_opamp() {
    let amp = TwoStageOpAmp::new();
    let (gp_small, test) = fit_circuit_gp(&amp, 25, 60, 42);
    let (gp_large, _) = fit_circuit_gp(&amp, 100, 60, 42);
    let e_small = rmse(&gp_small, &test);
    let e_large = rmse(&gp_large, &test);
    assert!(
        e_large < e_small,
        "more data should reduce RMSE: {e_small} -> {e_large}"
    );
}

#[test]
fn gp_beats_constant_predictor_on_class_e() {
    let pa = ClassEPa::new();
    let (gp, test) = fit_circuit_gp(&pa, 120, 60, 7);
    let mean_y = easybo_linalg::mean(&test.iter().map(|&(_, y)| y).collect::<Vec<_>>());
    let e_gp = rmse(&gp, &test);
    let e_const =
        (test.iter().map(|(_, y)| (mean_y - y).powi(2)).sum::<f64>() / test.len() as f64).sqrt();
    assert!(
        e_gp < e_const,
        "GP RMSE {e_gp} should beat constant predictor {e_const}"
    );
}

#[test]
fn uncertainty_is_calibrated_enough_for_ucb() {
    // At least ~60% of held-out values should fall inside the 2-sigma band
    // (a loose calibration floor; exact GPs on deterministic functions are
    // often overconfident in sparse regions).
    let amp = TwoStageOpAmp::new();
    let (gp, test) = fit_circuit_gp(&amp, 80, 80, 3);
    let covered = test
        .iter()
        .filter(|(u, y)| {
            let p = gp.predict(u);
            (y - p.mean).abs() <= 2.0 * p.std() + 1e-9
        })
        .count();
    let frac = covered as f64 / test.len() as f64;
    assert!(frac > 0.6, "2-sigma coverage only {frac}");
}

#[test]
fn augmentation_chain_matches_batch_augmentation() {
    // Augmenting one-by-one must equal augmenting all at once: the
    // incremental Cholesky path vs the repeated path.
    let bounds = Bounds::unit_cube(3).expect("cube");
    let mut rng = rand::rngs::StdRng::seed_from_u64(4);
    let xs = sampling::latin_hypercube(&bounds, 15, &mut rng);
    let ys: Vec<f64> = xs.iter().map(|p| p.iter().sum()).collect();
    let gp = Gp::fit(xs, ys, GpConfig::default()).expect("fits");
    let busy = sampling::uniform(&bounds, 3, &mut rng);

    let all_at_once = gp.augment(&busy).expect("augments");
    let mut chained = gp.clone();
    for b in &busy {
        chained = chained.augment(std::slice::from_ref(b)).expect("augments");
    }
    for q in sampling::uniform(&bounds, 10, &mut rng) {
        let a = all_at_once.predict(&q);
        let c = chained.predict(&q);
        assert!((a.mean - c.mean).abs() < 1e-6, "{} vs {}", a.mean, c.mean);
        assert!(
            (a.variance - c.variance).abs() < 1e-6,
            "{} vs {}",
            a.variance,
            c.variance
        );
    }
}

#[test]
fn hallucination_never_increases_variance_anywhere() {
    let bounds = Bounds::unit_cube(2).expect("cube");
    let mut rng = rand::rngs::StdRng::seed_from_u64(5);
    let xs = sampling::latin_hypercube(&bounds, 12, &mut rng);
    let ys: Vec<f64> = xs.iter().map(|p| (4.0 * p[0]).sin() + p[1]).collect();
    let gp = Gp::fit(xs, ys, GpConfig::default()).expect("fits");
    let busy = sampling::uniform(&bounds, 4, &mut rng);
    let aug = gp.augment(&busy).expect("augments");
    for q in sampling::uniform(&bounds, 50, &mut rng) {
        let v0 = gp.predict(&q).variance;
        let v1 = aug.predict(&q).variance;
        assert!(
            v1 <= v0 + 1e-9,
            "conditioning on more points cannot raise variance: {v0} -> {v1} at {q:?}"
        );
    }
}
