//! Determinism guarantees of the parallel hot path: the `Parallelism` knob
//! must change wall-clock time only, never results. Multi-start acquisition
//! maximization and L-BFGS hyperparameter training are checked for
//! bit-identical outputs at k ∈ {1, 2, 8}, and the batched GP posterior is
//! property-tested against the scalar `predict` path (including on
//! pseudo-point-augmented models, the posterior the EasyBO penalization
//! actually evaluates).

use easybo_gp::{Gp, GpConfig, KernelFamily, TrainConfig};
use easybo_opt::{sampling, Bounds, MultiStartMaximizer, Parallelism};
use proptest::prelude::*;
use rand::SeedableRng;

/// Deterministic pseudo-random training data in `d` dimensions.
fn training_data(n: usize, d: usize, seed: u64) -> (Vec<Vec<f64>>, Vec<f64>) {
    let bounds = Bounds::unit_cube(d).expect("cube");
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let xs = sampling::latin_hypercube(&bounds, n, &mut rng);
    let ys = xs
        .iter()
        .map(|p| {
            p.iter()
                .enumerate()
                .map(|(i, v)| ((i + 1) as f64 * v * 3.0).sin())
                .sum()
        })
        .collect();
    (xs, ys)
}

/// A deterministic multi-modal objective with enough structure that the
/// probe ranking and refinement starts actually differ between runs that
/// diverge anywhere.
fn rastrigin_like(p: &[f64]) -> f64 {
    -p.iter()
        .map(|v| (v - 0.37) * (v - 0.37) - 0.08 * (14.0 * v).cos())
        .sum::<f64>()
}

#[test]
fn multistart_optimum_is_bit_identical_across_parallelism() {
    let bounds = Bounds::unit_cube(5).expect("cube");
    let ms = MultiStartMaximizer::new(96, 4, 60);
    let reference = ms.maximize_batched(
        &bounds,
        &mut rand::rngs::StdRng::seed_from_u64(11),
        Parallelism::sequential(),
        &rastrigin_like,
    );
    for k in [1usize, 2, 8] {
        let got = ms.maximize_batched(
            &bounds,
            &mut rand::rngs::StdRng::seed_from_u64(11),
            Parallelism::new(k),
            &rastrigin_like,
        );
        assert_eq!(got.x, reference.x, "argmax differs at k={k}");
        assert_eq!(
            got.value.to_bits(),
            reference.value.to_bits(),
            "value differs at k={k}"
        );
    }
}

#[test]
fn trained_hyperparameters_are_bit_identical_across_parallelism() {
    let (xs, ys) = training_data(40, 3, 123);
    let fit = |k: usize| {
        let config = GpConfig {
            kernel: KernelFamily::Matern52,
            train: TrainConfig {
                restarts: 3,
                parallelism: Parallelism::new(k),
                ..TrainConfig::default()
            },
            ..GpConfig::default()
        };
        Gp::fit(xs.clone(), ys.clone(), config).expect("fits")
    };
    let reference = fit(1);
    for k in [2usize, 8] {
        let got = fit(k);
        assert_eq!(
            got.theta()
                .iter()
                .map(|v| v.to_bits())
                .collect::<Vec<u64>>(),
            reference
                .theta()
                .iter()
                .map(|v| v.to_bits())
                .collect::<Vec<u64>>(),
            "theta differs at k={k}"
        );
        assert_eq!(
            got.log_noise().to_bits(),
            reference.log_noise().to_bits(),
            "log-noise differs at k={k}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// `predict_batch` agrees with per-point `predict` to 1e-12 absolute,
    /// for every kernel family.
    #[test]
    fn predict_batch_matches_scalar_predictions(seed in 0u64..40, d in 1usize..4) {
        let (xs, ys) = training_data(15, d, seed);
        for fam in [
            KernelFamily::SquaredExponential,
            KernelFamily::Matern52,
            KernelFamily::Matern32,
            KernelFamily::RationalQuadratic,
        ] {
            let mut theta = vec![-0.7; d + 1];
            theta[d] = 0.1;
            let gp = Gp::fit_with_params(
                xs.clone(), ys.clone(), fam, theta, (1e-6f64).ln(),
            ).expect("fits");
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0x9999);
            let bounds = Bounds::unit_cube(d).expect("cube");
            let queries = sampling::uniform(&bounds, 32, &mut rng);
            let batch = gp.predict_batch(&queries);
            prop_assert_eq!(batch.len(), queries.len());
            for (q, b) in queries.iter().zip(&batch) {
                let s = gp.predict(q);
                prop_assert!(
                    (b.mean - s.mean).abs() <= 1e-12,
                    "{fam:?} mean: {} vs {}", b.mean, s.mean
                );
                prop_assert!(
                    (b.variance - s.variance).abs() <= 1e-12,
                    "{fam:?} var: {} vs {}", b.variance, s.variance
                );
            }
        }
    }

    /// The same agreement must hold on pseudo-point-augmented GPs — the
    /// posterior the Eq. 9 penalization evaluates in the hot loop.
    #[test]
    fn predict_batch_matches_scalar_on_augmented_gp(seed in 0u64..40) {
        let d = 2;
        let (xs, ys) = training_data(12, d, seed);
        let gp = Gp::fit(xs, ys, GpConfig::default()).expect("fits");
        let busy = vec![vec![0.15, 0.9], vec![0.66, 0.31], vec![0.42, 0.42]];
        let aug = gp.augment(&busy).expect("augments");
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0x5a5a);
        let bounds = Bounds::unit_cube(d).expect("cube");
        let queries = sampling::uniform(&bounds, 24, &mut rng);
        let batch = aug.predict_batch(&queries);
        for (q, b) in queries.iter().zip(&batch) {
            let s = aug.predict(q);
            prop_assert!((b.mean - s.mean).abs() <= 1e-12);
            prop_assert!((b.variance - s.variance).abs() <= 1e-12);
        }
    }
}
