//! Integration tests for the paper's *qualitative claims*, at reduced
//! scale: these are the properties the full benchmark harness measures at
//! paper scale (see EXPERIMENTS.md).

use easybo::Algorithm;
use easybo_circuits::{opamp::TwoStageOpAmp, Circuit};
use easybo_exec::{BlackBox, CostedFunction, SimTimeModel};
use easybo_linalg::{mean, sample_std};

fn opamp_bb() -> CostedFunction<impl Fn(&[f64]) -> f64 + Send + Sync> {
    let amp = TwoStageOpAmp::new();
    let bounds = amp.bounds().clone();
    let time = SimTimeModel::new(&bounds, 38.7, 0.25, 7);
    CostedFunction::new("opamp", bounds, time, move |x: &[f64]| amp.fom(x))
}

fn finals(algo: Algorithm, bb: &dyn BlackBox, batch: usize, reps: usize) -> Vec<f64> {
    (0..reps)
        .map(|rep| {
            algo.run(bb, batch, 70, 15, 0, 1000 + rep as u64)
                .best_value()
        })
        .collect()
}

/// §III-A / Tables I-II: for a fixed simulation count, the asynchronous
/// driver finishes in less wall-clock than the synchronous one, at every
/// batch size, and the saving grows with B.
#[test]
fn async_saves_wall_clock_at_every_batch_size() {
    let bb = opamp_bb();
    let mut prev_saving = -1.0;
    for batch in [5usize, 15] {
        let sync = Algorithm::EasyBoSp.run(&bb, batch, 70, 15, 0, 3);
        let asyn = Algorithm::EasyBo.run(&bb, batch, 70, 15, 0, 3);
        let saving = (sync.total_time() - asyn.total_time()) / sync.total_time();
        assert!(
            saving > 0.0,
            "B={batch}: async {} vs sync {}",
            asyn.total_time(),
            sync.total_time()
        );
        assert!(
            saving > prev_saving,
            "saving should grow with batch size: {saving} after {prev_saving}"
        );
        prev_saving = saving;
    }
}

/// Tables I-II: EasyBO (penalized) is more *consistent* than the
/// unpenalized EasyBO-S — lower dispersion of final results across reps.
#[test]
fn penalization_reduces_result_dispersion() {
    let bb = opamp_bb();
    let reps = 6;
    let pen = finals(Algorithm::EasyBo, &bb, 10, reps);
    let unpen = finals(Algorithm::EasyBoS, &bb, 10, reps);
    let (m_pen, s_pen) = (mean(&pen), sample_std(&pen));
    let (m_unpen, s_unpen) = (mean(&unpen), sample_std(&unpen));
    // The paper's signature: comparable-or-better mean, smaller spread.
    // At reduced scale we accept either a smaller std or a higher worst.
    let worst_pen = pen.iter().cloned().fold(f64::INFINITY, f64::min);
    let worst_unpen = unpen.iter().cloned().fold(f64::INFINITY, f64::min);
    assert!(
        s_pen < s_unpen || worst_pen > worst_unpen,
        "penalized: mean {m_pen:.1} std {s_pen:.1} worst {worst_pen:.1}; \
         unpenalized: mean {m_unpen:.1} std {s_unpen:.1} worst {worst_unpen:.1}"
    );
}

/// §IV-A: BO reaches with ~10^2 simulations what DE needs ~10^4 for —
/// verify the *rate* relationship: DE at the same tiny budget loses badly.
#[test]
fn bo_is_more_sample_efficient_than_de() {
    let bb = opamp_bb();
    let bo = Algorithm::EasyBo.run(&bb, 5, 70, 15, 0, 5);
    let de_same_budget = Algorithm::De.run(&bb, 1, 0, 0, 70, 5);
    assert!(
        bo.best_value() > de_same_budget.best_value(),
        "BO {} vs DE {} at 70 evals",
        bo.best_value(),
        de_same_budget.best_value()
    );
}

/// Utilization: the async schedule keeps workers busier than the sync
/// schedule on the same workload (Fig. 1's quantitative content).
#[test]
fn async_utilization_dominates_sync() {
    let bb = opamp_bb();
    let sync = Algorithm::EasyBoSp.run(&bb, 10, 70, 15, 0, 9);
    let asyn = Algorithm::EasyBo.run(&bb, 10, 70, 15, 0, 9);
    assert!(
        asyn.schedule.utilization() > sync.schedule.utilization(),
        "async {} vs sync {}",
        asyn.schedule.utilization(),
        sync.schedule.utilization()
    );
    // Async keeps all workers saturated until the tail of the run.
    assert!(asyn.schedule.utilization() > 0.9);
}

/// Eq. 8: with λ = 0 the acquisition degenerates to pure exploitation —
/// every selection chases the posterior-mean maximizer, so the chosen
/// query points cluster tightly. λ = 6 keeps drawing exploratory weights,
/// spreading the queries. (Mechanism test of the κ-sampling design choice;
/// the outcome-level comparison runs at paper scale in the bench harness.)
#[test]
fn lambda_zero_collapses_query_diversity() {
    use easybo::policies::{AcqOptConfig, EasyBoAsyncPolicy};
    use easybo_exec::VirtualExecutor;
    use easybo_opt::sampling;
    use rand::SeedableRng;
    let bb = opamp_bb();
    let spread_for = |lambda: f64| -> f64 {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let init = sampling::latin_hypercube(bb.bounds(), 15, &mut rng);
        let mut p = EasyBoAsyncPolicy::with_configs(
            bb.bounds().clone(),
            false, // no penalization: isolate the weight effect
            lambda,
            1,
            Default::default(),
            AcqOptConfig::for_dim(10),
        );
        let r = VirtualExecutor::new(5).run_async(&bb, &init, 55, &mut p);
        // Mean pairwise distance (unit cube) of the BO-selected points.
        let units: Vec<Vec<f64>> = r.data.xs()[15..]
            .iter()
            .map(|x| bb.bounds().to_unit(x))
            .collect();
        let mut total = 0.0;
        let mut pairs = 0usize;
        for i in 0..units.len() {
            for j in (i + 1)..units.len() {
                total += units[i]
                    .iter()
                    .zip(&units[j])
                    .map(|(a, b)| (a - b) * (a - b))
                    .sum::<f64>()
                    .sqrt();
                pairs += 1;
            }
        }
        total / pairs as f64
    };
    let tight = spread_for(0.0);
    let diverse = spread_for(6.0);
    assert!(
        diverse > tight * 1.2,
        "lambda=6 spread {diverse} should clearly exceed lambda=0 spread {tight}"
    );
}
