//! Deterministic fault-injection ("chaos") suite: seeded failure
//! regimes driven through both executors and the full EasyBO stack,
//! asserting that the fault-tolerant evaluation layer keeps every
//! invariant the paper's happy path relies on — termination, a GP that
//! never sees non-finite observations, one retry event per requeue, and
//! bit-identical traces for identical seeds.

use easybo::EasyBo;
use easybo_exec::{
    AsyncPolicy, BlackBox, BusyPoint, CostedFunction, Dataset, FailureAction, FaultPlan,
    FaultyBlackBox, RetryPolicy, SimTimeModel, ThreadedExecutor, VirtualExecutor,
};
use easybo_opt::Bounds;
use easybo_telemetry::Telemetry;
use proptest::prelude::*;

/// Deterministic policy that walks the unit interval; keeps the chaos
/// tests independent of GP/acquisition behavior where that is not the
/// point of the scenario.
struct Walker(f64);

impl AsyncPolicy for Walker {
    fn select_next(&mut self, _d: &Dataset, _b: &[BusyPoint]) -> Vec<f64> {
        self.0 = (self.0 + 0.07) % 1.0;
        vec![self.0]
    }
}

fn toy_blackbox(seed: u64) -> CostedFunction<impl Fn(&[f64]) -> f64 + Send + Sync> {
    let bounds = Bounds::unit_cube(1).unwrap();
    let time = SimTimeModel::new(&bounds, 50.0, 0.4, seed);
    CostedFunction::new("toy", bounds, time, |x: &[f64]| 1.0 - (x[0] - 0.6).abs())
}

fn init_points(n: usize) -> Vec<Vec<f64>> {
    (0..n).map(|i| vec![(i as f64 + 0.5) / n as f64]).collect()
}

fn count_kind(events: &[easybo_telemetry::TimedEvent], kind: &str) -> usize {
    events.iter().filter(|e| e.event.kind() == kind).count()
}

/// Scenario 1 — outright simulator crashes: with retries enabled every
/// task eventually completes, the dataset stays finite and full-sized,
/// and exactly one `EvalRetried` event is emitted per requeue.
#[test]
fn injected_failures_are_retried_and_run_completes() {
    let plan = FaultPlan {
        seed: 11,
        fail_rate: 0.3,
        ..FaultPlan::default()
    };
    let bb = FaultyBlackBox::new(toy_blackbox(1), plan);
    let retry = RetryPolicy::default().max_attempts(8).backoff(5.0, 2.0);
    let (telemetry, recorder) = Telemetry::recording();
    let r = VirtualExecutor::new(4).run_async_resilient(
        &bb,
        &init_points(6),
        24,
        &mut Walker(0.0),
        &retry,
        &telemetry,
    );
    assert_eq!(r.data.len(), 24, "every task must eventually complete");
    assert!(r.data.ys().iter().all(|y| y.is_finite()));

    let events = recorder.events();
    let issued = count_kind(&events, "QueryIssued");
    let finished = count_kind(&events, "EvalFinished");
    let failed = count_kind(&events, "EvalFailed");
    let retried = count_kind(&events, "EvalRetried");
    assert!(failed > 0, "a 30% fail rate over 24 tasks must fire");
    // Every failed attempt was requeued (nothing exhausted 8 attempts),
    // and every requeue re-issues the query exactly once.
    assert_eq!(retried, failed);
    assert_eq!(issued, finished + failed);
    assert_eq!(finished, 24);
}

/// Scenario 2 — non-convergent simulations: NaN/±Inf figures of merit
/// must never reach the GP. With `FailureAction::Drop` the surrogate's
/// dataset contains only finite observations, end to end through the
/// full EasyBO optimizer.
#[test]
fn non_finite_foms_never_reach_the_gp() {
    let plan = FaultPlan {
        seed: 23,
        nonfinite_rate: 0.3,
        ..FaultPlan::default()
    };
    let bb = FaultyBlackBox::new(toy_blackbox(2), plan);
    let retry = RetryPolicy::default()
        .max_attempts(2)
        .backoff(1.0, 2.0)
        .on_exhausted(FailureAction::Drop);
    let r = EasyBo::new(bb.bounds().clone())
        .batch_size(3)
        .initial_points(8)
        .max_evals(30)
        .seed(5)
        .retry_policy(retry)
        .run_blackbox(&bb)
        .expect("run survives non-finite FOMs");
    assert!(!r.data.is_empty());
    assert!(r.data.len() <= 30, "dropped tasks shrink the dataset");
    assert!(
        r.data.ys().iter().all(|y| y.is_finite()),
        "a non-finite observation reached the surrogate"
    );
    assert!(r.best_value.is_finite());
}

/// Scenario 3 — hangs: a hung evaluation (cost 1e9) must be abandoned
/// at the per-attempt timeout, bounding the makespan; the abandoned
/// spans are flagged failed with length exactly the timeout.
#[test]
fn timeouts_abandon_hung_tasks() {
    let plan = FaultPlan {
        seed: 31,
        hang_rate: 0.35,
        ..FaultPlan::default()
    };
    let bb = FaultyBlackBox::new(toy_blackbox(3), plan);
    let retry = RetryPolicy::default()
        .max_attempts(6)
        .backoff(1.0, 2.0)
        .timeout(200.0);
    let r = VirtualExecutor::new(3).run_async_resilient(
        &bb,
        &init_points(5),
        18,
        &mut Walker(0.0),
        &retry,
        &Telemetry::disabled(),
    );
    assert_eq!(r.data.len(), 18);
    // 18 tasks at ≤ ~140s each plus a handful of 200s abandonments: a
    // hang surviving to completion would cost 1e9 on its own.
    assert!(
        r.schedule.makespan() < 1e5,
        "makespan {} not bounded by the timeout",
        r.schedule.makespan()
    );
    let abandoned: Vec<_> = r.schedule.spans().iter().filter(|s| s.failed).collect();
    assert!(!abandoned.is_empty(), "a 35% hang rate must fire");
    for span in abandoned {
        assert!(
            (span.end - span.start - 200.0).abs() < 1e-9,
            "abandoned span length {} != timeout",
            span.end - span.start
        );
    }
    assert!(r.schedule.failed_time() > 0.0);
    assert!(r.schedule.utilization() < 1.0);
}

/// Scenario 4 — stragglers: uniformly 4× slower evaluations change the
/// clock but not the observations; the best-so-far curve is identical
/// point-for-point with time stretched by exactly the factor.
#[test]
fn stragglers_only_slow_the_run() {
    let clean_bb = FaultyBlackBox::new(toy_blackbox(4), FaultPlan::none(47));
    let slow_plan = FaultPlan {
        seed: 47,
        straggler_rate: 1.0,
        straggler_factor: 4.0,
        ..FaultPlan::default()
    };
    let slow_bb = FaultyBlackBox::new(toy_blackbox(4), slow_plan);
    let run = |bb: &FaultyBlackBox<_>| {
        VirtualExecutor::new(3).run_async_resilient(
            bb,
            &init_points(4),
            15,
            &mut Walker(0.0),
            &RetryPolicy::default(),
            &Telemetry::disabled(),
        )
    };
    let clean = run(&clean_bb);
    let slow = run(&slow_bb);
    assert_eq!(clean.data, slow.data, "stragglers must not change values");
    assert!((slow.schedule.makespan() - 4.0 * clean.schedule.makespan()).abs() < 1e-9);
    for (c, s) in clean.trace.points().iter().zip(slow.trace.points()) {
        assert_eq!(c.value, s.value);
        assert!((s.time - 4.0 * c.time).abs() < 1e-9);
    }
}

/// Scenario 5 — panicking black boxes on real threads: `catch_unwind`
/// contains the panic, the attempt is retried, and the run completes
/// with a full, finite dataset.
#[test]
fn worker_panics_are_contained() {
    let plan = FaultPlan {
        seed: 53,
        panic_rate: 0.3,
        ..FaultPlan::default()
    };
    let bb = FaultyBlackBox::new(toy_blackbox(5), plan);
    let retry = RetryPolicy::default().max_attempts(8).backoff(0.0, 1.0);
    let (telemetry, recorder) = Telemetry::recording();
    let r = ThreadedExecutor::new(3, 0.0)
        .run_async_resilient(
            &bb,
            &init_points(4),
            16,
            &mut Walker(0.0),
            &retry,
            &telemetry,
        )
        .expect("panics must not kill the run");
    assert_eq!(r.data.len(), 16);
    assert!(r.data.ys().iter().all(|y| y.is_finite()));
    let events = recorder.events();
    assert!(
        count_kind(&events, "EvalFailed") > 0,
        "a 30% panic rate over 16 tasks must fire"
    );
    assert_eq!(
        count_kind(&events, "EvalFailed"),
        count_kind(&events, "EvalRetried"),
        "every contained panic must be requeued"
    );
}

/// Scenario 6 — worker death: a scheduled crash kills one thread for
/// good; its task fails over to the survivors, a `WorkerCrashed` event
/// is emitted, and the run still completes.
#[test]
fn worker_crash_fails_over_to_surviving_workers() {
    let plan = FaultPlan {
        crash_after: vec![Some(0), None, None],
        ..FaultPlan::default()
    };
    let bb = FaultyBlackBox::new(toy_blackbox(6), plan);
    let retry = RetryPolicy::default().max_attempts(4).backoff(0.0, 1.0);
    let (telemetry, recorder) = Telemetry::recording();
    let r = ThreadedExecutor::new(3, 1e-5)
        .run_async_resilient(
            &bb,
            &init_points(3),
            12,
            &mut Walker(0.0),
            &retry,
            &telemetry,
        )
        .expect("survivors must finish the run");
    assert_eq!(r.data.len(), 12);
    assert!(r.data.ys().iter().all(|y| y.is_finite()));
    let events = recorder.events();
    assert_eq!(count_kind(&events, "WorkerCrashed"), 1);
    assert_eq!(telemetry.summary().expect("enabled").worker_crashes, 1);
}

/// Scenario 6b — total loss: when the only worker dies the executor
/// must return a structured error instead of deadlocking (the
/// regression this layer was built to prevent), and the high-level API
/// must surface it as a configuration-layer error.
#[test]
fn all_workers_dead_is_a_structured_error_not_a_deadlock() {
    let plan = FaultPlan {
        crash_after: vec![Some(1)],
        ..FaultPlan::default()
    };
    let bb = FaultyBlackBox::new(toy_blackbox(7), plan);
    let err = EasyBo::new(bb.bounds().clone())
        .batch_size(1)
        .initial_points(2)
        .max_evals(10)
        .run_threaded(&bb, 0.0)
        .expect_err("a dead pool cannot finish");
    assert!(
        err.to_string().contains("executor failure"),
        "unexpected error: {err}"
    );
}

/// Fixed-seed chaos reproducibility: the whole stack (EasyBO policy +
/// GP + fault injection + retry layer) must produce bit-identical
/// RunTrace CSVs for the same seed — across repeated runs and across
/// the training/acquisition parallelism knob.
#[test]
fn fixed_seed_chaos_is_bit_identical() {
    let run = |parallelism: usize| {
        let plan = FaultPlan {
            seed: 99,
            fail_rate: 0.15,
            nonfinite_rate: 0.1,
            straggler_rate: 0.1,
            ..FaultPlan::default()
        };
        let bb = FaultyBlackBox::new(toy_blackbox(8), plan);
        let retry = RetryPolicy::default().max_attempts(3).backoff(10.0, 2.0);
        let r = EasyBo::new(bb.bounds().clone())
            .batch_size(3)
            .initial_points(8)
            .max_evals(24)
            .seed(17)
            .parallelism(parallelism)
            .retry_policy(retry)
            .run_blackbox(&bb)
            .expect("chaos run completes");
        (r.trace.to_csv(), r.data, r.best_x.clone(), r.best_value)
    };
    let (csv_a, data_a, x_a, v_a) = run(1);
    let (csv_b, data_b, x_b, v_b) = run(1);
    assert_eq!(csv_a, csv_b, "same seed must reproduce the trace CSV");
    assert_eq!(data_a, data_b);
    assert_eq!(x_a, x_b);
    assert_eq!(v_a, v_b);
    let (csv_p, data_p, x_p, v_p) = run(4);
    assert_eq!(csv_a, csv_p, "parallelism must not change the trace CSV");
    assert_eq!(data_a, data_p);
    assert_eq!(x_a, x_p);
    assert_eq!(v_a, v_p);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Chaos property: under random mixed fault regimes the run always
    /// terminates, attempts are conserved (#QueryIssued == #EvalFinished
    /// + #EvalFailed on the drained virtual executor), the dataset never
    /// carries a non-finite observation under `Drop`, and the committed
    /// dataset never exceeds the task budget.
    #[test]
    fn chaos_terminates_and_conserves_attempts(
        seed in 0u64..1000,
        fail in 0.0f64..0.4,
        nonfinite in 0.0f64..0.3,
        hang in 0.0f64..0.2,
        workers in 1usize..6,
    ) {
        let plan = FaultPlan {
            seed,
            fail_rate: fail,
            nonfinite_rate: nonfinite,
            hang_rate: hang,
            ..FaultPlan::default()
        };
        let bb = FaultyBlackBox::new(toy_blackbox(seed), plan);
        let retry = RetryPolicy::default()
            .max_attempts(3)
            .backoff(2.0, 2.0)
            .timeout(300.0)
            .on_exhausted(FailureAction::Drop);
        let (telemetry, recorder) = Telemetry::recording();
        let r = VirtualExecutor::new(workers).run_async_resilient(
            &bb,
            &init_points(4),
            16,
            &mut Walker(0.0),
            &retry,
            &telemetry,
        );
        prop_assert!(r.data.len() <= 16);
        prop_assert!(r.data.ys().iter().all(|y| y.is_finite()));
        let events = recorder.events();
        let issued = count_kind(&events, "QueryIssued");
        let finished = count_kind(&events, "EvalFinished");
        let failed = count_kind(&events, "EvalFailed");
        let retried = count_kind(&events, "EvalRetried");
        // The virtual executor drains its event heap: no attempt is
        // still in flight at termination.
        prop_assert_eq!(issued, finished + failed);
        // A retry re-issues exactly once; failures that exhausted their
        // attempts were dropped without a new issue.
        prop_assert!(retried <= failed);
        prop_assert_eq!(finished, r.data.len());
        prop_assert_eq!(telemetry.summary().expect("enabled").evals_failed, failed);
        prop_assert_eq!(telemetry.summary().expect("enabled").evals_retried, retried);
    }

    /// Identical seeds must reproduce identical traces regardless of the
    /// virtual worker count being varied *elsewhere*: for a fixed plan
    /// and fixed worker count, two runs are byte-identical.
    #[test]
    fn seeded_chaos_traces_are_byte_identical(seed in 0u64..500, workers in 1usize..5) {
        let run = || {
            let plan = FaultPlan {
                seed,
                fail_rate: 0.25,
                nonfinite_rate: 0.15,
                ..FaultPlan::default()
            };
            let bb = FaultyBlackBox::new(toy_blackbox(seed ^ 0xabc), plan);
            let retry = RetryPolicy::default().max_attempts(4).backoff(3.0, 2.0);
            VirtualExecutor::new(workers).run_async_resilient(
                &bb,
                &init_points(3),
                12,
                &mut Walker(0.0),
                &retry,
                &Telemetry::disabled(),
            )
        };
        let a = run();
        let b = run();
        prop_assert_eq!(a.trace.to_csv(), b.trace.to_csv());
        prop_assert_eq!(a.schedule.to_csv(), b.schedule.to_csv());
        prop_assert_eq!(a.data, b.data);
    }
}
