//! Kill-and-resume determinism suite for the checkpoint subsystem.
//!
//! The headline invariant: a run killed at an *arbitrary* point and
//! resumed from its last snapshot produces a final best-so-far trace
//! byte-identical to the uninterrupted run — across seeds, kill points,
//! and parallelism levels, with and without fault injection. Plus
//! property tests over the snapshot codec and a committed golden file
//! pinning format version 1 on disk.

use easybo::{Algorithm, EasyBo, EasyBoError, Parallelism, Telemetry};
use easybo_exec::{
    AsyncPolicy, CostedFunction, Dataset, FaultPlan, FaultyBlackBox, HookAction, InFlightTask,
    PendingBackoff, RetryPolicy, SessionParts, SessionState, SimTimeModel, TaskSpan,
    VirtualExecutor,
};
use easybo_opt::{sampling, Bounds};
use easybo_persist::{
    decode_session, decode_snapshot, encode_session, encode_snapshot, load_snapshot, save_snapshot,
    RunSnapshot,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn tmp(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("easybo-resume-{}-{name}.snap", std::process::id()))
}

fn objective(x: &[f64]) -> f64 {
    (-((x[0] - 0.35).powi(2) + (x[1] - 0.65).powi(2))).exp()
}

fn optimizer(seed: u64, batch: usize) -> EasyBo {
    let bounds = Bounds::unit_cube(2).unwrap();
    let mut opt = EasyBo::new(bounds);
    opt.batch_size(batch)
        .initial_points(6)
        .max_evals(18)
        .seed(seed);
    opt
}

/// Headline invariant: seeds {0, 1, 2} × kill points {early, mid, late}
/// × parallelism {1, 8}. Every resumed run's trace CSV must be
/// byte-identical to the uninterrupted baseline's.
#[test]
fn killed_and_resumed_runs_reproduce_uninterrupted_traces() {
    for &batch in &[1usize, 8] {
        for seed in 0..3u64 {
            let baseline = optimizer(seed, batch).run(objective).unwrap();
            for &(label, kill) in &[("early", 7usize), ("mid", 12), ("late", 16)] {
                let path = tmp(&format!("headline-{batch}-{seed}-{label}"));
                let mut killed = optimizer(seed, batch);
                killed
                    .checkpoint_to(&path)
                    .checkpoint_every(2)
                    .abort_after_evals(kill);
                let err = killed.run(objective).unwrap_err();
                assert!(
                    matches!(err, EasyBoError::Opt(_)),
                    "kill should abort: {err}"
                );

                let resumed = optimizer(seed, batch).resume(&path, objective).unwrap();
                std::fs::remove_file(&path).ok();

                let tag = format!("seed {seed} batch {batch} kill {label}");
                assert_eq!(
                    resumed.trace.to_csv(),
                    baseline.trace.to_csv(),
                    "trace diverged: {tag}"
                );
                assert_eq!(resumed.data, baseline.data, "dataset diverged: {tag}");
                assert_eq!(resumed.best_x, baseline.best_x, "best diverged: {tag}");
            }
        }
    }
}

/// Checkpointing disabled (the default) uses the legacy entry point;
/// enabling it must not perturb the trajectory either — the hook is a
/// pure observer. Both must match bit for bit.
#[test]
fn checkpointing_never_perturbs_the_run() {
    let plain = optimizer(1, 8).run(objective).unwrap();
    let path = tmp("observer");
    let mut ckpt = optimizer(1, 8);
    ckpt.checkpoint_to(&path).checkpoint_every(1);
    let with_ckpt = ckpt.run(objective).unwrap();
    std::fs::remove_file(&path).ok();
    assert_eq!(plain.data, with_ckpt.data);
    assert_eq!(plain.trace.to_csv(), with_ckpt.trace.to_csv());
    assert_eq!(plain.schedule, with_ckpt.schedule);
}

/// Chaos variant: injected failures + a real retry policy, killed
/// mid-run with backoffs and in-flight retries pending. Resume must
/// splice the interrupted retry machinery back together bit-for-bit.
#[test]
fn kill_and_resume_with_faults_and_retries_is_bit_identical() {
    let bounds = Bounds::unit_cube(1).unwrap();
    let mk_bb = || {
        let time = SimTimeModel::new(&bounds, 30.0, 0.4, 3);
        let inner = CostedFunction::new("toy", bounds.clone(), time, |x: &[f64]| {
            1.0 - (x[0] - 0.6).abs()
        });
        FaultyBlackBox::new(
            inner,
            FaultPlan {
                seed: 7,
                fail_rate: 0.25,
                ..FaultPlan::default()
            },
        )
    };
    let mut opt = EasyBo::new(bounds.clone());
    opt.batch_size(4)
        .initial_points(6)
        .max_evals(20)
        .seed(2)
        .retry_policy(RetryPolicy::default().max_attempts(6).backoff(3.0, 2.0));
    let baseline = opt.run_blackbox(&mk_bb()).unwrap();

    let path = tmp("chaos");
    let mut killed = opt.clone();
    killed
        .checkpoint_to(&path)
        .checkpoint_every(1)
        .abort_after_evals(9);
    let _ = killed.run_blackbox(&mk_bb()).unwrap_err();

    let resumed = opt.resume_from(&path, &mk_bb()).unwrap();
    std::fs::remove_file(&path).ok();
    assert_eq!(resumed.trace.to_csv(), baseline.trace.to_csv());
    assert_eq!(resumed.data, baseline.data);
}

/// Threaded executor: real-time scheduling is not bit-reproducible, so
/// the contract is no lost work — every checkpointed observation
/// survives the splice verbatim and the budget completes exactly once.
#[test]
fn threaded_kill_and_resume_loses_no_work() {
    let bounds = Bounds::unit_cube(2).unwrap();
    let time = SimTimeModel::new(&bounds, 5.0, 0.2, 0);
    let bb = CostedFunction::new("toy", bounds.clone(), time, objective);
    let mut opt = EasyBo::new(bounds);
    opt.batch_size(3).initial_points(6).max_evals(16).seed(3);

    let path = tmp("threaded");
    let mut killed = opt.clone();
    killed
        .checkpoint_to(&path)
        .checkpoint_every(1)
        .abort_after_evals(8);
    let err = killed.run_threaded(&bb, 0.0).unwrap_err();
    assert!(matches!(err, EasyBoError::Opt(_)), "{err}");

    let snap = load_snapshot(&path).unwrap();
    let preserved = snap.session.observations.clone();
    assert!(
        preserved.len() >= 8,
        "checkpoint too stale: {}",
        preserved.len()
    );

    let r = opt.resume_threaded(&path, &bb, 0.0).unwrap();
    std::fs::remove_file(&path).ok();
    assert_eq!(r.data.len(), 16);
    for (i, (x, y)) in preserved.iter().enumerate() {
        assert_eq!(r.data.xs()[i], *x, "observation {i} lost or reordered");
        assert_eq!(r.data.ys()[i].to_bits(), y.to_bits());
    }
}

/// Telemetry contract: checkpoints emit `CheckpointWritten` + counter,
/// resume emits exactly one `RunResumed` + counter.
#[test]
fn checkpoint_and_resume_emit_telemetry() {
    let path = tmp("telemetry");
    let (tel, recorder) = Telemetry::recording();
    let mut opt = optimizer(4, 4);
    opt.telemetry(tel)
        .checkpoint_to(&path)
        .checkpoint_every(3)
        .abort_after_evals(10);
    let _ = opt.run(objective).unwrap_err();
    let events = recorder.events();
    let written = events
        .iter()
        .filter(|e| e.event.kind() == "CheckpointWritten")
        .count();
    assert!(written >= 2, "expected several checkpoints, saw {written}");

    let (tel2, rec2) = Telemetry::recording();
    let mut resumer = optimizer(4, 4);
    resumer.telemetry(tel2);
    let r = resumer.resume(&path, objective).unwrap();
    std::fs::remove_file(&path).ok();
    assert_eq!(r.data.len(), 18);
    let events2 = rec2.events();
    assert_eq!(
        events2
            .iter()
            .filter(|e| e.event.kind() == "RunResumed")
            .count(),
        1
    );
    let summary = r.report.summary.expect("telemetry was attached");
    assert_eq!(summary.resumes, 1);
}

// ---------------------------------------------------------------------
// Portfolio policies: kill/resume byte-identity and blob format pins.
// ---------------------------------------------------------------------

/// The three literature policies under the raw session driver:
/// checkpoint every observation, kill mid-run, rebuild a same-config
/// replacement policy, overwrite its mutable state from the snapshot
/// blob, and resume. The resumed trajectory must be byte-identical to
/// the uninterrupted run — the same contract the EasyBO policy already
/// honors, now holding for every member of the async portfolio. Kill
/// points sit early enough that a hyperparameter retrain happens
/// *after* the resume, proving the warm-start vector and retrain
/// schedule survive the round trip.
#[test]
fn portfolio_policies_kill_and_resume_bit_identical() {
    let bounds = Bounds::unit_cube(2).unwrap();
    let time = SimTimeModel::new(&bounds, 12.0, 0.3, 5);
    let bb = CostedFunction::new("toy", bounds.clone(), time, objective);
    let init = sampling::latin_hypercube(&bounds, 6, &mut StdRng::seed_from_u64(77));
    let (batch, max_evals) = (4usize, 16usize);
    let retry = RetryPolicy::none();
    let tel = Telemetry::disabled();
    let build = |algo: Algorithm, seed: u64| {
        algo.async_policy(bounds.clone(), seed, Parallelism::sequential())
            .expect("portfolio algorithms expose an async policy")
    };

    for (algo, kill_at) in [
        (Algorithm::StandardBo, 8usize),
        (Algorithm::PessimisticBo, 9),
        (Algorithm::EpsGreedy, 10),
    ] {
        let mut p0 = build(algo, 77);
        let baseline = VirtualExecutor::new(batch)
            .run_session_resilient(&bb, &init, max_evals, p0.as_mut(), &retry, &tel, None)
            .expect("uninterrupted run completes");

        // Kill: snapshot after every observation, stop at `kill_at`.
        let mut latest: Option<Vec<u8>> = None;
        {
            let mut p1 = build(algo, 77);
            let mut hook = |session: &SessionState, policy: &dyn AsyncPolicy, _now: f64| {
                if session.completed() >= kill_at {
                    return HookAction::Stop {
                        reason: "injected kill".to_string(),
                    };
                }
                latest = Some(encode_snapshot(&RunSnapshot {
                    config_fingerprint: 42,
                    session: session.to_parts(),
                    policy: policy.snapshot_state(),
                }));
                HookAction::Continue
            };
            VirtualExecutor::new(batch)
                .run_session_resilient(
                    &bb,
                    &init,
                    max_evals,
                    p1.as_mut(),
                    &retry,
                    &tel,
                    Some(&mut hook),
                )
                .expect_err("the kill hook must abort the run");
        }
        let bytes = latest.expect("at least one checkpoint before the kill");
        let snap = decode_snapshot(&bytes).expect("snapshot decodes");

        // Resume: a fresh policy rebuilt from the *same* configuration
        // (seed included — config is re-derived by the resuming
        // optimizer and guarded by the snapshot fingerprint), with all
        // mutable state — RNG stream, counters, GP factorization,
        // warm-start vector — overwritten from the blob.
        let mut p2 = build(algo, 77);
        let blob = snap.policy.as_ref().expect("portfolio policies snapshot");
        p2.restore_state(blob).expect("blob restores");
        let session = SessionState::from_parts(snap.session);
        let resumed = VirtualExecutor::new(batch)
            .resume_session_resilient(&bb, session, p2.as_mut(), &retry, &tel, None)
            .expect("resumed run completes");

        let tag = algo.key();
        assert_eq!(
            resumed.trace.to_csv(),
            baseline.trace.to_csv(),
            "trace diverged after kill/resume: {tag}"
        );
        assert_eq!(resumed.data, baseline.data, "dataset diverged: {tag}");
    }
}

/// Pins each new policy's blob layout: the leading four-byte kind tag,
/// the versioned-format failure message for an unsupported version, and
/// by-name refusal of a foreign policy's blob.
#[test]
fn portfolio_policy_blobs_pin_their_versioned_format() {
    let bounds = Bounds::unit_cube(2).unwrap();
    let cases: [(Algorithm, [u8; 4], &str); 3] = [
        (Algorithm::EpsGreedy, *b"EPSG", "eps-greedy"),
        (Algorithm::PessimisticBo, *b"PESS", "pessimistic"),
        (Algorithm::StandardBo, *b"STDB", "standard-acquisition"),
    ];
    for (algo, tag, name) in cases {
        let mut p = algo
            .async_policy(bounds.clone(), 7, Parallelism::sequential())
            .unwrap();
        let mut data = Dataset::new();
        for i in 0..5 {
            data.push(vec![i as f64 / 5.0, 1.0 - i as f64 / 5.0], (i as f64).sin());
        }
        let _ = p.select_next(&data, &[]);
        let blob = p.snapshot_state().expect("snapshots supported");
        assert_eq!(&blob[..4], &tag, "kind tag drifted for {name}");

        // An unsupported version must fail with the pinned message.
        let mut bad = blob.clone();
        bad[4..8].copy_from_slice(&99u32.to_le_bytes());
        let err = p.restore_state(&bad).expect_err("version 99 accepted");
        assert!(
            err.contains(&format!("{name} policy blob version 99 is not supported")),
            "unexpected version-mismatch message for {name}: {err}"
        );

        // A different policy's blob is refused, naming this policy.
        let donor = match algo {
            Algorithm::EpsGreedy => Algorithm::PessimisticBo,
            _ => Algorithm::EpsGreedy,
        };
        let foreign = donor
            .async_policy(bounds.clone(), 7, Parallelism::sequential())
            .unwrap()
            .snapshot_state()
            .expect("snapshots supported");
        let err = p
            .restore_state(&foreign)
            .expect_err("foreign blob accepted");
        assert!(
            err.contains(&format!("not a {name} policy blob")),
            "unexpected foreign-blob message for {name}: {err}"
        );
    }
}

proptest! {
    /// Snapshot blobs round-trip through a wrong-seed replacement for
    /// every portfolio policy: after restoring, the clone reproduces
    /// the donor's next decision bit for bit.
    #[test]
    fn portfolio_policy_blobs_restore_the_decision_stream(seed in 0u64..500) {
        for algo in [
            Algorithm::EpsGreedy,
            Algorithm::PessimisticBo,
            Algorithm::StandardBo,
        ] {
            let bounds = Bounds::unit_cube(2).unwrap();
            let mut donor = algo
                .async_policy(bounds.clone(), seed, Parallelism::sequential())
                .unwrap();
            let mut g = Gen(seed ^ 0xf00d);
            let mut data = Dataset::new();
            for _ in 0..6 {
                let x = vec![
                    g.below(1000) as f64 / 1000.0,
                    g.below(1000) as f64 / 1000.0,
                ];
                let y = objective(&x);
                data.push(x, y);
            }
            // Advance the donor so its RNG/counters are mid-stream.
            let q = donor.select_next(&data, &[]);
            data.push(q.clone(), objective(&q));
            let blob = donor.snapshot_state().expect("snapshots supported");
            let mut clone = algo
                .async_policy(bounds, seed ^ 0xdead_beef, Parallelism::sequential())
                .unwrap();
            clone.restore_state(&blob).expect("blob restores");
            let a = donor.select_next(&data, &[]);
            let b = clone.select_next(&data, &[]);
            prop_assert!(
                a.len() == b.len()
                    && a.iter().zip(&b).all(|(x, y)| x.to_bits() == y.to_bits()),
                "decision diverged for {}: {:?} vs {:?}",
                algo.key(), a, b
            );
        }
    }
}

// ---------------------------------------------------------------------
// Property tests: the snapshot codec is the identity on bytes.
// ---------------------------------------------------------------------

/// Splitmix64 stream used to build adversarial session states: every
/// `f64` field gets a *full-bit-pattern* value, so NaN payloads,
/// infinities, subnormals and negative zero all flow through the codec.
struct Gen(u64);

impl Gen {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn f64(&mut self) -> f64 {
        f64::from_bits(self.next())
    }

    fn below(&mut self, n: u64) -> usize {
        (self.next() % n) as usize
    }

    fn x(&mut self) -> Vec<f64> {
        (0..self.below(4)).map(|_| self.f64()).collect()
    }
}

fn random_parts(g: &mut Gen) -> SessionParts {
    SessionParts {
        workers: 1 + g.below(8),
        max_evals: g.below(64),
        issued: g.below(64),
        resolved: g.below(64),
        clock: g.f64(),
        pending: (0..g.below(5)).map(|_| g.x()).collect(),
        observations: (0..g.below(6)).map(|_| (g.x(), g.f64())).collect(),
        trace: (0..g.below(6)).map(|_| (g.f64(), g.f64())).collect(),
        spans: (0..g.below(6))
            .map(|_| TaskSpan {
                worker: g.below(8),
                task: g.below(64),
                start: g.f64(),
                end: g.f64(),
                failed: g.next() & 1 == 1,
            })
            .collect(),
        inflight: (0..g.below(4))
            .map(|_| InFlightTask {
                task: g.below(64),
                attempt: 1 + g.below(4),
                x: g.x(),
                started: if g.next() & 1 == 1 {
                    Some((g.below(8), g.f64()))
                } else {
                    None
                },
            })
            .collect(),
        backoffs: (0..g.below(4))
            .map(|_| PendingBackoff {
                due: g.f64(),
                worker: g.below(8),
                task: g.below(64),
                attempt: 1 + g.below(4),
                x: g.x(),
            })
            .collect(),
    }
}

proptest! {
    /// `encode(decode(encode(s))) == encode(s)` over randomized session
    /// states — comparing bytes sidesteps NaN's `PartialEq` hole while
    /// still proving the codec loses nothing.
    #[test]
    fn session_encoding_round_trips(seed in 0u64..=u64::MAX) {
        let parts = random_parts(&mut Gen(seed));
        let bytes = encode_session(&parts);
        let back = decode_session(&bytes).unwrap();
        prop_assert_eq!(encode_session(&back), bytes);
    }

    /// The full container (magic, version, CRC-checked sections, opaque
    /// policy blob) round-trips byte-exactly too.
    #[test]
    fn snapshot_container_round_trips(seed in 0u64..=u64::MAX) {
        let mut g = Gen(seed ^ 0xabcd);
        let policy = if g.next() & 1 == 1 {
            Some((0..g.below(64)).map(|_| (g.next() & 0xff) as u8).collect())
        } else {
            None
        };
        let snap = RunSnapshot {
            config_fingerprint: g.next(),
            session: random_parts(&mut g),
            policy,
        };
        let bytes = encode_snapshot(&snap);
        let back = decode_snapshot(&bytes).unwrap();
        prop_assert_eq!(encode_snapshot(&back), bytes);
    }
}

// ---------------------------------------------------------------------
// Golden file: format version 1 as committed bytes on disk.
// ---------------------------------------------------------------------

/// Deterministic, NaN-free snapshot used for the on-disk golden fixture.
fn golden_snapshot() -> RunSnapshot {
    RunSnapshot {
        config_fingerprint: 0x00c0_ffee_1234_abcd,
        session: SessionParts {
            workers: 3,
            max_evals: 12,
            issued: 7,
            resolved: 5,
            clock: 41.25,
            pending: vec![vec![0.1, 0.9]],
            observations: vec![
                (vec![0.25, 0.75], -0.5),
                (vec![0.5, 0.5], 0.125),
                (vec![0.125, 0.625], 0.75),
                (vec![0.3, 0.2], -1.5),
                (vec![0.9, 0.1], 0.0625),
            ],
            trace: vec![(10.0, -0.5), (20.5, 0.125), (30.75, 0.75)],
            spans: vec![
                TaskSpan {
                    worker: 0,
                    task: 0,
                    start: 0.0,
                    end: 10.0,
                    failed: false,
                },
                TaskSpan {
                    worker: 1,
                    task: 1,
                    start: 0.0,
                    end: 20.5,
                    failed: false,
                },
                TaskSpan {
                    worker: 2,
                    task: 2,
                    start: 0.0,
                    end: 15.0,
                    failed: true,
                },
            ],
            inflight: vec![
                InFlightTask {
                    task: 5,
                    attempt: 1,
                    x: vec![0.4, 0.6],
                    started: Some((2, 30.75)),
                },
                InFlightTask {
                    task: 6,
                    attempt: 2,
                    x: vec![0.7, 0.3],
                    started: None,
                },
            ],
            backoffs: vec![PendingBackoff {
                due: 55.5,
                worker: 1,
                task: 4,
                attempt: 3,
                x: vec![0.2, 0.8],
            }],
        },
        policy: Some(vec![1, 0, 0, 0, 0xde, 0xad, 0xbe, 0xef]),
    }
}

/// The committed `tests/data/golden_v1.snap` must keep decoding for as
/// long as `FORMAT_VERSION` stays 1. Regenerate (after an *intentional*
/// layout change, together with a version bump and a migration) with:
/// `EASYBO_REGEN_GOLDEN=1 cargo test -p easybo-integration --test resume golden`.
#[test]
fn golden_v1_snapshot_still_decodes() {
    let path = std::path::Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/data/golden_v1.snap"));
    let golden = golden_snapshot();
    if std::env::var("EASYBO_REGEN_GOLDEN").is_ok() {
        save_snapshot(path, &golden).unwrap();
    }
    let loaded = load_snapshot(path).unwrap_or_else(|e| {
        panic!(
            "the committed golden v1 snapshot no longer decodes: {e}\n\
             If the snapshot layout changed intentionally, bump the format \
             version (easybo_persist::FORMAT_VERSION), keep a migration for \
             files written by older builds, and regenerate this fixture with \
             EASYBO_REGEN_GOLDEN=1 cargo test -p easybo-integration --test \
             resume golden"
        )
    });
    assert_eq!(
        loaded, golden,
        "golden v1 snapshot decoded to different contents"
    );
}

/// Bit flips anywhere in a snapshot must be *detected* — never a panic,
/// never a silently wrong resume.
#[test]
fn corrupted_snapshots_are_rejected_loudly() {
    let bytes = encode_snapshot(&golden_snapshot());
    for idx in [8, 12, bytes.len() / 2, bytes.len() - 1] {
        let mut bad = bytes.clone();
        bad[idx] ^= 0x40;
        assert!(
            decode_snapshot(&bad).is_err(),
            "flip at byte {idx} went undetected"
        );
    }
    assert!(decode_snapshot(&bytes[..bytes.len() - 5]).is_err());
}
