//! Property-based cross-crate invariants: randomized checks of the
//! mathematical contracts the EasyBO stack depends on.

use easybo_exec::{CostedFunction, Dataset, SimTimeModel, VirtualExecutor};
use easybo_gp::{Gp, GpConfig, KernelFamily};
use easybo_opt::{sampling, Bounds};
use proptest::prelude::*;
use rand::SeedableRng;

/// Builds deterministic pseudo-random training data in `d` dimensions.
fn training_data(n: usize, d: usize, seed: u64) -> (Vec<Vec<f64>>, Vec<f64>) {
    let bounds = Bounds::unit_cube(d).expect("cube");
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let xs = sampling::latin_hypercube(&bounds, n, &mut rng);
    let ys = xs
        .iter()
        .map(|p| {
            p.iter()
                .enumerate()
                .map(|(i, v)| ((i + 1) as f64 * v * 3.0).sin())
                .sum()
        })
        .collect();
    (xs, ys)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The GP posterior must (nearly) interpolate its own training data
    /// when the noise floor is tiny, for every kernel family.
    #[test]
    fn gp_interpolates_training_data(seed in 0u64..50, d in 1usize..4) {
        let (xs, ys) = training_data(10, d, seed);
        for fam in [
            KernelFamily::SquaredExponential,
            KernelFamily::Matern52,
            KernelFamily::Matern32,
        ] {
            let mut theta = vec![-1.0; d + 1];
            theta[d] = 0.0;
            let gp = Gp::fit_with_params(
                xs.clone(), ys.clone(), fam, theta, (1e-8f64).ln(),
            ).expect("fits");
            for (x, y) in xs.iter().zip(ys.iter()) {
                let p = gp.predict(x);
                prop_assert!(
                    (p.mean - y).abs() < 0.05 * (1.0 + y.abs()),
                    "{fam:?}: {} vs {y}", p.mean
                );
            }
        }
    }

    /// Posterior variance never exceeds the prior variance and never goes
    /// negative, anywhere.
    #[test]
    fn gp_variance_is_bounded(seed in 0u64..50) {
        let (xs, ys) = training_data(12, 2, seed);
        let gp = Gp::fit(xs, ys, GpConfig::default()).expect("fits");
        let prior_var = gp.kernel().eval(gp.theta(), &[0.5, 0.5], &[0.5, 0.5])
            * gp.scaler().std() * gp.scaler().std();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 77);
        let bounds = Bounds::new(vec![(-1.0, 2.0); 2]).expect("box");
        for q in sampling::uniform(&bounds, 40, &mut rng) {
            let v = gp.predict(&q).variance;
            prop_assert!(v >= 0.0, "negative variance {v} at {q:?}");
            prop_assert!(v <= prior_var * 1.001, "{v} exceeds prior {prior_var}");
        }
    }

    /// Virtual executor conservation: total busy time equals the sum of the
    /// per-evaluation costs, and the async makespan is bounded by
    /// [sum/B, sum] for B workers.
    #[test]
    fn executor_time_conservation(seed in 0u64..100, workers in 1usize..6) {
        let bounds = Bounds::unit_cube(1).expect("cube");
        let time = SimTimeModel::new(&bounds, 10.0, 0.3, seed);
        let costs = std::cell::RefCell::new(Vec::<f64>::new());
        let bb = CostedFunction::new("toy", bounds.clone(), time.clone(), |x: &[f64]| x[0]);
        // Capture the true costs by replaying the time model.
        struct Walk(f64);
        impl easybo_exec::AsyncPolicy for Walk {
            fn select_next(&mut self, _d: &Dataset, _b: &[easybo_exec::BusyPoint]) -> Vec<f64> {
                self.0 = (self.0 + 0.37) % 1.0;
                vec![self.0]
            }
        }
        let r = VirtualExecutor::new(workers).run_async(&bb, &[vec![0.1]], 12, &mut Walk(0.0));
        for x in r.data.xs() {
            costs.borrow_mut().push(time.cost(x));
        }
        let total: f64 = costs.borrow().iter().sum();
        prop_assert!((r.schedule.busy_time() - total).abs() < 1e-6);
        prop_assert!(r.total_time() <= total + 1e-9);
        prop_assert!(r.total_time() >= total / workers as f64 - 1e-9);
    }

    /// Attempt conservation under fault injection: every issued query is
    /// accounted for — it either finished or failed, with nothing left in
    /// flight once the virtual executor drains its event heap — and the
    /// policy never sees more busy points than there are workers.
    #[test]
    fn attempts_are_conserved_and_busy_points_bounded(
        seed in 0u64..200, workers in 1usize..6, fail in 0.0f64..0.5
    ) {
        use easybo_exec::{FailureAction, FaultPlan, FaultyBlackBox, RetryPolicy};
        use easybo_telemetry::Telemetry;

        let bounds = Bounds::unit_cube(1).expect("cube");
        let time = SimTimeModel::new(&bounds, 20.0, 0.3, seed);
        let inner = CostedFunction::new("toy", bounds, time, |x: &[f64]| x[0]);
        let plan = FaultPlan { seed, fail_rate: fail, ..FaultPlan::default() };
        let bb = FaultyBlackBox::new(inner, plan);

        /// Policy that records the largest busy set it was ever shown.
        struct Spy { next: f64, max_busy: usize }
        impl easybo_exec::AsyncPolicy for Spy {
            fn select_next(&mut self, _d: &Dataset, b: &[easybo_exec::BusyPoint]) -> Vec<f64> {
                self.max_busy = self.max_busy.max(b.len());
                self.next = (self.next + 0.29) % 1.0;
                vec![self.next]
            }
        }

        let retry = RetryPolicy::default()
            .max_attempts(3)
            .backoff(1.0, 2.0)
            .on_exhausted(FailureAction::Drop);
        let (telemetry, recorder) = Telemetry::recording();
        let mut spy = Spy { next: 0.0, max_busy: 0 };
        let r = VirtualExecutor::new(workers).run_async_resilient(
            &bb, &[vec![0.5]], 14, &mut spy, &retry, &telemetry,
        );

        let events = recorder.events();
        let count = |kind: &str| events.iter().filter(|e| e.event.kind() == kind).count();
        // Conservation: with `Drop`, each attempt resolves as exactly one
        // of finished/failed and in-flight-at-termination is zero.
        prop_assert_eq!(count("QueryIssued"), count("EvalFinished") + count("EvalFailed"));
        prop_assert_eq!(count("EvalFinished"), r.data.len());
        // The policy is only consulted when a worker idles, so at most
        // workers - 1 other points can be pending at selection time.
        prop_assert!(
            spy.max_busy <= workers,
            "policy saw {} busy points with {} workers", spy.max_busy, workers
        );
    }

    /// Latin hypercube designs are always one-point-per-stratum, for any
    /// size and dimension.
    #[test]
    fn lhs_stratification_holds(n in 1usize..40, d in 1usize..8, seed in 0u64..100) {
        let bounds = Bounds::unit_cube(d).expect("cube");
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let pts = sampling::latin_hypercube(&bounds, n, &mut rng);
        prop_assert_eq!(pts.len(), n);
        for dim in 0..d {
            let mut hits = vec![false; n];
            for p in &pts {
                let s = ((p[dim] * n as f64) as usize).min(n - 1);
                prop_assert!(!hits[s], "stratum {s} of dim {dim} double-hit");
                hits[s] = true;
            }
        }
    }

    /// Augmenting a GP with hallucinated points never increases the
    /// predictive variance anywhere (information monotonicity).
    #[test]
    fn hallucination_monotonicity(seed in 0u64..40, n_busy in 1usize..5) {
        let (xs, ys) = training_data(10, 2, seed);
        let gp = Gp::fit(xs, ys, GpConfig::default()).expect("fits");
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 3);
        let cube = Bounds::unit_cube(2).expect("cube");
        let busy = sampling::uniform(&cube, n_busy, &mut rng);
        let aug = gp.augment(&busy).expect("augments");
        for q in sampling::uniform(&cube, 20, &mut rng) {
            let v0 = gp.predict(&q).variance;
            let v1 = aug.predict(&q).variance;
            prop_assert!(v1 <= v0 + 1e-9, "variance rose: {v0} -> {v1}");
        }
    }

    /// The weighted acquisition is monotone in w between its endpoints:
    /// α(x, w) is a convex combination, so it is bounded by μ and σ.
    #[test]
    fn weighted_acquisition_is_convex_combination(
        seed in 0u64..40, w in 0.0..1.0f64
    ) {
        let (xs, ys) = training_data(8, 1, seed);
        let gp = Gp::fit(xs, ys, GpConfig::default()).expect("fits");
        for qx in [0.1, 0.5, 0.9, 1.4] {
            let q = [qx];
            let (mu, var) = gp.predict_standardized(&q);
            let sigma = var.max(0.0).sqrt();
            let a = easybo::acquisition::weighted(&gp, &q, w);
            let lo = mu.min(sigma) - 1e-12;
            let hi = mu.max(sigma) + 1e-12;
            prop_assert!(a >= lo && a <= hi, "α({qx}, {w}) = {a} outside [{lo}, {hi}]");
        }
    }
}

/// Determinism across the whole stack: the same seed must give the same
/// run at every layer (non-proptest because it is a single scenario).
#[test]
fn full_stack_determinism() {
    use easybo::Algorithm;
    let bounds = Bounds::unit_cube(3).expect("cube");
    let time = SimTimeModel::new(&bounds, 20.0, 0.25, 5);
    let bb = CostedFunction::new("det", bounds, time, |x: &[f64]| {
        -(x[0] - 0.3f64).powi(2) - (x[1] - 0.7f64).powi(2) - x[2]
    });
    for algo in [Algorithm::EasyBo, Algorithm::Phcbo, Algorithm::Ts] {
        let a = algo.run(&bb, 3, 20, 8, 0, 123);
        let b = algo.run(&bb, 3, 20, 8, 0, 123);
        assert_eq!(a.data, b.data, "{algo:?} not deterministic");
        assert_eq!(a.trace, b.trace, "{algo:?} trace not deterministic");
    }
}
