//! Incremental-factorization acceptance suite.
//!
//! The headline contracts of the cached-covariance hot path:
//!
//! * on a seeded op-amp run the penalization inner loop never triggers a
//!   full refactorization — `cholesky` spans appear only on hyperparameter
//!   retrains, while per-tell appends and pseudo-point pushes/pops show up
//!   as `cholesky_update` / `cholesky_downdate` work;
//! * the incremental path is a pure performance change: a run with
//!   `incremental_gp(false)` (legacy clone-and-refactorize) reproduces the
//!   incremental run's entire trajectory bit for bit.

use std::collections::BTreeMap;

use easybo::{EasyBo, Telemetry};
use easybo_circuits::opamp::TwoStageOpAmp;
use easybo_circuits::Circuit;
use easybo_exec::{BlackBox, CostedFunction, SimTimeModel};
use easybo_telemetry::Event;

/// The paper's 10-d two-stage op-amp with a seeded simulation-time model.
fn opamp_blackbox() -> CostedFunction<impl Fn(&[f64]) -> f64 + Send + Sync> {
    let amp = TwoStageOpAmp::new();
    let bounds = amp.bounds().clone();
    let time = SimTimeModel::new(&bounds, 38.7, 0.25, 2020);
    CostedFunction::new("two-stage-opamp", bounds, time, move |x: &[f64]| amp.fom(x))
}

/// Seeded op-amp run; returns `(result, span-name counts, counters)`.
fn instrumented_opamp_run() -> (
    easybo::OptimizationResult,
    BTreeMap<String, usize>,
    BTreeMap<String, u64>,
) {
    let bb = opamp_blackbox();
    let (telemetry, recorder) = Telemetry::recording();
    let mut opt = EasyBo::new(bb.bounds().clone());
    opt.batch_size(4)
        .initial_points(6)
        .max_evals(18)
        .seed(11)
        .telemetry(telemetry.clone());
    let result = opt.run_blackbox(&bb).expect("op-amp run completes");
    telemetry.flush();
    let mut spans: BTreeMap<String, usize> = BTreeMap::new();
    for ev in recorder.events() {
        if let Event::SpanStart { name, .. } = &ev.event {
            *spans.entry(name.to_string()).or_default() += 1;
        }
    }
    let metrics = telemetry.metrics_snapshot().expect("metrics enabled");
    let counters: BTreeMap<String, u64> = ["cholesky_update", "cholesky_downdate"]
        .iter()
        .map(|&k| (k.to_string(), metrics.counter(k)))
        .collect();
    (result, spans, counters)
}

/// Acceptance: the pseudo-point inner loop never calls the full
/// factorization — `cholesky` spans fire exactly once per hyperparameter
/// retrain, and all other factor work is rank-1 updates/downdates.
#[test]
fn opamp_run_factorizes_only_on_retrains() {
    let (result, spans, counters) = instrumented_opamp_run();
    let summary = result.report.summary.as_ref().expect("telemetry summary");

    let full = spans.get("cholesky").copied().unwrap_or(0);
    assert_eq!(
        full, summary.gp_refits,
        "full factorizations must be exactly one per retrain \
         (got {full} cholesky spans for {} refits)",
        summary.gp_refits
    );

    // Pseudo-point pushes and pops ran on the factor stack.
    let updates = counters["cholesky_update"];
    let downdates = counters["cholesky_downdate"];
    assert!(updates > 0, "expected rank-1 updates, got none");
    assert!(downdates > 0, "expected rank-1 downdates, got none");
    // Every pseudo-point push is popped again; appends are never popped.
    assert_eq!(
        downdates as usize, summary.pseudo_points,
        "each hallucinated pseudo-point is one downdate"
    );
    assert!(
        updates > downdates,
        "appends mean more updates ({updates}) than downdates ({downdates})"
    );
    // The rank-1 spans surface alongside the counters.
    assert_eq!(spans.get("cholesky_update").copied().unwrap_or(0), {
        updates as usize
    });
    assert_eq!(
        spans.get("cholesky_downdate").copied().unwrap_or(0),
        downdates as usize
    );

    // The run report mines the same numbers for the regression gate.
    assert_eq!(result.report.cholesky_updates, Some(updates));
    assert_eq!(result.report.cholesky_downdates, Some(downdates));
    assert_eq!(result.report.gp_factorizations, Some(full as u64));
    let share = result
        .report
        .incremental_update_share
        .expect("share populated");
    assert!(
        share > 0.5,
        "most factor work should be rank-1 updates, share = {share}"
    );
}

/// Runs the seeded op-amp problem with the incremental path on or off.
fn opamp_trajectory(incremental: bool) -> easybo::OptimizationResult {
    let bb = opamp_blackbox();
    let mut opt = EasyBo::new(bb.bounds().clone());
    opt.batch_size(4)
        .initial_points(6)
        .max_evals(18)
        .seed(11)
        .incremental_gp(incremental);
    opt.run_blackbox(&bb).expect("op-amp run completes")
}

/// Acceptance: the incremental factor path changes wall-clock only — the
/// legacy clone-and-refactorize run reproduces every query, observation,
/// and trace point bit for bit. (Exact equality, no tolerance: both paths
/// perform identical floating-point operations in identical order.)
#[test]
fn incremental_toggle_is_bit_identical_on_the_opamp() {
    let fast = opamp_trajectory(true);
    let legacy = opamp_trajectory(false);

    assert_eq!(fast.data.len(), legacy.data.len());
    for (i, (a, b)) in fast.data.xs().iter().zip(legacy.data.xs()).enumerate() {
        assert_eq!(a.len(), b.len());
        for (va, vb) in a.iter().zip(b) {
            assert_eq!(va.to_bits(), vb.to_bits(), "query {i} diverged");
        }
    }
    for (i, (a, b)) in fast.data.ys().iter().zip(legacy.data.ys()).enumerate() {
        assert_eq!(a.to_bits(), b.to_bits(), "observation {i} diverged");
    }
    assert_eq!(fast.best_value.to_bits(), legacy.best_value.to_bits());
    assert_eq!(fast.best_x.len(), legacy.best_x.len());
    for (va, vb) in fast.best_x.iter().zip(&legacy.best_x) {
        assert_eq!(va.to_bits(), vb.to_bits());
    }
    assert_eq!(fast.trace.points().len(), legacy.trace.points().len());
    for (a, b) in fast.trace.points().iter().zip(legacy.trace.points()) {
        assert_eq!(a.time.to_bits(), b.time.to_bits());
        assert_eq!(a.best_so_far.to_bits(), b.best_so_far.to_bits());
    }
}
