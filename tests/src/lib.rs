//! Integration test crate for the EasyBO workspace; see `tests/` files.
