//! Unbounded MPMC channel with crossbeam-style disconnect semantics.

use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

struct Inner<T> {
    queue: Mutex<VecDeque<T>>,
    ready: Condvar,
    senders: AtomicUsize,
    receivers: AtomicUsize,
}

/// Sending half; clonable. The channel disconnects when all senders drop.
pub struct Sender<T> {
    inner: Arc<Inner<T>>,
}

/// Receiving half; clonable. `send` fails once all receivers drop.
pub struct Receiver<T> {
    inner: Arc<Inner<T>>,
}

/// Error returned by [`Sender::send`] when all receivers are gone;
/// carries the unsent message like crossbeam's.
#[derive(PartialEq, Eq, Clone, Copy)]
pub struct SendError<T>(pub T);

/// Error returned by [`Receiver::recv`] when the channel is empty and
/// all senders are gone.
#[derive(Debug, PartialEq, Eq, Clone, Copy)]
pub struct RecvError;

impl<T> fmt::Debug for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SendError(..)")
    }
}

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("sending on a disconnected channel")
    }
}

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("receiving on an empty and disconnected channel")
    }
}

/// Error returned by [`Receiver::recv_timeout`], mirroring crossbeam's.
#[derive(Debug, PartialEq, Eq, Clone, Copy)]
pub enum RecvTimeoutError {
    /// The deadline passed with no message available.
    Timeout,
    /// The channel is empty and every sender has dropped.
    Disconnected,
}

impl fmt::Display for RecvTimeoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecvTimeoutError::Timeout => f.write_str("timed out waiting on channel"),
            RecvTimeoutError::Disconnected => {
                f.write_str("receiving on an empty and disconnected channel")
            }
        }
    }
}

impl<T: Send> std::error::Error for SendError<T> {}
impl std::error::Error for RecvError {}
impl std::error::Error for RecvTimeoutError {}

/// Creates an unbounded channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    let inner = Arc::new(Inner {
        queue: Mutex::new(VecDeque::new()),
        ready: Condvar::new(),
        senders: AtomicUsize::new(1),
        receivers: AtomicUsize::new(1),
    });
    (
        Sender {
            inner: Arc::clone(&inner),
        },
        Receiver { inner },
    )
}

impl<T> Sender<T> {
    /// Enqueues a message, failing only if every receiver has dropped.
    pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
        if self.inner.receivers.load(Ordering::Acquire) == 0 {
            return Err(SendError(msg));
        }
        let mut queue = self.inner.queue.lock().unwrap();
        queue.push_back(msg);
        drop(queue);
        self.inner.ready.notify_one();
        Ok(())
    }
}

impl<T> Receiver<T> {
    /// Blocks until a message arrives or every sender has dropped.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut queue = self.inner.queue.lock().unwrap();
        loop {
            if let Some(msg) = queue.pop_front() {
                return Ok(msg);
            }
            if self.inner.senders.load(Ordering::Acquire) == 0 {
                return Err(RecvError);
            }
            queue = self.inner.ready.wait(queue).unwrap();
        }
    }

    /// Blocks until a message arrives, every sender drops, or `timeout`
    /// elapses, whichever comes first.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut queue = self.inner.queue.lock().unwrap();
        loop {
            if let Some(msg) = queue.pop_front() {
                return Ok(msg);
            }
            if self.inner.senders.load(Ordering::Acquire) == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            let (q, _) = self
                .inner
                .ready
                .wait_timeout(queue, deadline - now)
                .unwrap();
            queue = q;
        }
    }

    /// Returns a message if one is immediately available.
    pub fn try_recv(&self) -> Result<T, RecvError> {
        let mut queue = self.inner.queue.lock().unwrap();
        match queue.pop_front() {
            Some(msg) => Ok(msg),
            None => Err(RecvError),
        }
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.inner.senders.fetch_add(1, Ordering::Release);
        Sender {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.inner.receivers.fetch_add(1, Ordering::Release);
        Receiver {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        if self.inner.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
            // Last sender gone: wake all blocked receivers so they can
            // observe the disconnect.
            self.inner.ready.notify_all();
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        self.inner.receivers.fetch_sub(1, Ordering::AcqRel);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn fifo_within_single_producer() {
        let (tx, rx) = unbounded();
        for i in 0..10 {
            tx.send(i).unwrap();
        }
        for i in 0..10 {
            assert_eq!(rx.recv(), Ok(i));
        }
    }

    #[test]
    fn recv_errors_after_all_senders_drop() {
        let (tx, rx) = unbounded::<u32>();
        let tx2 = tx.clone();
        tx.send(1).unwrap();
        drop(tx);
        drop(tx2);
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn send_errors_after_all_receivers_drop() {
        let (tx, rx) = unbounded::<u32>();
        drop(rx);
        assert_eq!(tx.send(5), Err(SendError(5)));
    }

    #[test]
    fn recv_timeout_times_out_then_delivers() {
        let (tx, rx) = unbounded::<u32>();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(RecvTimeoutError::Timeout)
        );
        tx.send(7).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(5)), Ok(7));
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn cross_thread_traffic_drains_fully() {
        let (job_tx, job_rx) = unbounded::<u32>();
        let (res_tx, res_rx) = unbounded::<u32>();
        let workers: Vec<_> = (0..4)
            .map(|_| {
                let rx = job_rx.clone();
                let tx = res_tx.clone();
                thread::spawn(move || {
                    while let Ok(j) = rx.recv() {
                        tx.send(j * 2).unwrap();
                    }
                })
            })
            .collect();
        drop(job_rx);
        drop(res_tx);
        for i in 0..100 {
            job_tx.send(i).unwrap();
        }
        drop(job_tx);
        let mut out: Vec<_> = (0..100).map(|_| res_rx.recv().unwrap()).collect();
        assert_eq!(res_rx.recv(), Err(RecvError));
        out.sort_unstable();
        assert_eq!(out, (0..100).map(|i| i * 2).collect::<Vec<_>>());
        for w in workers {
            w.join().unwrap();
        }
    }
}
