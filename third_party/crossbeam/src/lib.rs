//! Hermetic stand-in for the `crossbeam` crate.
//!
//! Offline replacement implementing the surface the EasyBO workspace
//! uses: [`channel::unbounded`] MPMC channels with disconnect semantics,
//! and [`scope`] for borrowing scoped threads. Channels are a
//! `Mutex<VecDeque>` + `Condvar` (adequate for the executor's
//! coarse-grained job traffic); `scope` wraps [`std::thread::scope`].

pub mod channel;

use std::thread;

/// Scope handle passed to the [`scope`] closure; spawns scoped threads.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope thread::Scope<'scope, 'env>,
}

/// Placeholder passed to spawned closures (crossbeam passes a scope for
/// nested spawning; the workspace never uses it).
pub struct SpawnScope;

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a scoped thread; joined automatically when the scope ends.
    pub fn spawn<F, T>(&self, f: F) -> thread::ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&SpawnScope) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        self.inner.spawn(move || f(&SpawnScope))
    }
}

/// Creates a scope for spawning threads that may borrow from the caller.
///
/// All spawned threads are joined before this returns. Unlike upstream
/// crossbeam (which returns `Err` on child panic), an unjoined child
/// panic propagates as a panic from this call — the workspace treats
/// both as fatal via `.expect`, so behavior is equivalent in practice.
pub fn scope<'env, F, R>(f: F) -> thread::Result<R>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(thread::scope(|s| f(&Scope { inner: s })))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = vec![1u64, 2, 3, 4];
        let total: u64 = scope(|s| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|c| s.spawn(move |_| c.iter().sum::<u64>()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        })
        .unwrap();
        assert_eq!(total, 10);
    }
}
