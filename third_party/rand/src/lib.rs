//! Hermetic stand-in for the `rand` crate.
//!
//! This workspace builds in an offline environment with no crates.io
//! access, so the external `rand` dependency is replaced by this small,
//! self-contained implementation of exactly the API surface the EasyBO
//! crates use: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`],
//! [`Rng::gen_range`] over numeric ranges, [`Rng::gen`] for floats, and
//! [`seq::SliceRandom::shuffle`].
//!
//! The generator is xoshiro256** seeded via splitmix64 — deterministic,
//! high quality for simulation purposes, and stable across platforms.
//! Streams differ from upstream `rand` (which uses ChaCha12 for
//! `StdRng`), so seeded results differ from runs against crates.io
//! `rand`, but remain reproducible within this repository.

pub mod rngs;
pub mod seq;

/// Core source of randomness: a stream of `u64`s.
pub trait RngCore {
    /// Next raw 64-bit value from the stream.
    fn next_u64(&mut self) -> u64;

    /// Uniform `f64` in `[0, 1)` using the top 53 bits.
    fn next_f64(&mut self) -> f64 {
        const SCALE: f64 = 1.0 / (1u64 << 53) as f64;
        ((self.next_u64() >> 11) as f64) * SCALE
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (splitmix64 expansion).
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value whose type implements the [`Standard`]
    /// distribution (e.g. `rng.gen::<f64>()` for uniform `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from a range, e.g. `rng.gen_range(0.0..1.0)`,
    /// `rng.gen_range(0.0..=lambda)`, or `rng.gen_range(0..n)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty, matching upstream `rand`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types samplable by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from the standard distribution for `Self`.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_f64()
    }
}

impl Standard for f32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        const SCALE: f32 = 1.0 / (1u32 << 24) as f32;
        ((rng.next_u64() >> 40) as f32) * SCALE
    }
}

impl Standard for u64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let v = self.start + rng.next_f64() * (self.end - self.start);
        // Guard against rounding up to the exclusive endpoint.
        if v < self.end {
            v
        } else {
            self.start
        }
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        lo + rng.next_f64() * (hi - lo)
    }
}

impl SampleRange<f32> for core::ops::Range<f32> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        let v = self.start + (rng.next_f64() as f32) * (self.end - self.start);
        if v < self.end {
            v
        } else {
            self.start
        }
    }
}

/// Unbiased integer in `[0, span)` by rejection sampling.
fn uniform_below<R: Rng + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    let limit = u64::MAX - u64::MAX % span;
    loop {
        let v = rng.next_u64();
        if v < limit {
            return v % span;
        }
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }

        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_below(rng, span + 1) as $t)
            }
        }
    )*};
}

impl_int_range!(usize, u64, u32, i64, i32);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn float_ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(-2.0..3.5);
            assert!((-2.0..3.5).contains(&v));
            let w: f64 = rng.gen_range(0.0..=1.25);
            assert!((0.0..=1.25).contains(&w));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn int_ranges_cover_all_values() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..100 {
            let v = rng.gen_range(-3i64..=3);
            assert!((-3..=3).contains(&v));
        }
    }
}
