//! Slice helpers mirroring `rand::seq`.

use crate::Rng;

/// In-place randomization of slices, mirroring `rand::seq::SliceRandom`.
pub trait SliceRandom {
    /// Fisher–Yates shuffle.
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.gen_range(0..=i);
            self.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>(), "seed 11 should permute");
    }
}
