//! Concrete generators. `StdRng` here is xoshiro256** (not upstream's
//! ChaCha12), chosen for a dependency-free, fast, well-tested stream.

use crate::{RngCore, SeedableRng};

/// Deterministic pseudo-random generator (xoshiro256**).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl StdRng {
    /// Captures the exact xoshiro256** state. Feeding the result to
    /// [`StdRng::from_state`] yields a generator that continues the
    /// stream bit-for-bit — the primitive behind checkpoint/resume.
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Rebuilds a generator from a captured state.
    ///
    /// The all-zero state (a fixed point of xoshiro that no seeded
    /// generator can reach) is mapped to the same fallback state
    /// `seed_from_u64` uses, so the result is always a valid stream.
    pub fn from_state(s: [u64; 4]) -> Self {
        if s == [0, 0, 0, 0] {
            return StdRng {
                s: [0x9e37_79b9_7f4a_7c15, 1, 2, 3],
            };
        }
        StdRng { s }
    }
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut sm);
        }
        // All-zero state is the one degenerate case for xoshiro.
        if s == [0, 0, 0, 0] {
            s = [0x9e37_79b9_7f4a_7c15, 1, 2, 3];
        }
        StdRng { s }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn state_round_trip_is_identity() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..17 {
            rng.next_u64();
        }
        let restored = StdRng::from_state(rng.state());
        assert_eq!(restored, rng);
        assert_eq!(restored.state(), rng.state());
    }

    #[test]
    fn restored_rng_continues_the_stream_exactly() {
        for seed in [0u64, 1, 7, 0xdead_beef] {
            let mut original = StdRng::seed_from_u64(seed);
            for _ in 0..29 {
                original.next_u64();
            }
            let snapshot = original.state();
            let tail: Vec<u64> = (0..64).map(|_| original.next_u64()).collect();
            let mut resumed = StdRng::from_state(snapshot);
            let resumed_tail: Vec<u64> = (0..64).map(|_| resumed.next_u64()).collect();
            assert_eq!(tail, resumed_tail, "seed {seed}");
        }
    }

    #[test]
    fn all_zero_state_maps_to_the_seeding_fallback() {
        let fallback = StdRng::from_state([0, 0, 0, 0]);
        assert_ne!(fallback.state(), [0, 0, 0, 0]);
        // Must still be a functioning generator.
        let mut rng = fallback.clone();
        assert_ne!(rng.next_u64(), rng.next_u64());
    }

    #[test]
    fn state_does_not_advance_the_generator() {
        let mut rng = StdRng::seed_from_u64(3);
        let before = rng.state();
        let _ = rng.state();
        assert_eq!(rng.state(), before);
        let expected = StdRng::from_state(before).next_u64();
        assert_eq!(rng.next_u64(), expected);
    }
}
