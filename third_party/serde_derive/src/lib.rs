//! No-op `Serialize`/`Deserialize` derives for the hermetic serde
//! stand-in: they accept the annotated item and emit nothing, so
//! existing `#[derive(Serialize, Deserialize)]` attributes compile
//! without generating serialization code.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
