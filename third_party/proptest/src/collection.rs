//! Collection strategies, mirroring `proptest::collection`.

use crate::{Strategy, TestRng};

/// Strategy producing `Vec`s of values from an element strategy.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    len: core::ops::Range<usize>,
}

/// `vec(element, len_range)`: vectors with length drawn from
/// `len_range` and elements from `element`.
pub fn vec<S: Strategy>(element: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, len }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        let n = self.len.clone().sample(rng);
        (0..n).map(|_| self.element.sample(rng)).collect()
    }
}
