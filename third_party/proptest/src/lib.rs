//! Hermetic stand-in for the `proptest` crate.
//!
//! Offline replacement implementing the surface the EasyBO workspace
//! uses: the [`proptest!`] macro over `arg in strategy` bindings,
//! [`prop_assert!`]/[`prop_assert_eq!`], [`ProptestConfig::with_cases`],
//! numeric-range strategies, and [`collection::vec`].
//!
//! Semantics vs. upstream: inputs are random (deterministically seeded
//! per test name so failures reproduce) but there is **no shrinking** —
//! a failing case reports the case number and message only. That is
//! sufficient for the repository's invariant checks.

use std::fmt;

pub mod collection;

/// Per-block configuration, mirroring `proptest::test_runner::ProptestConfig`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property is checked against.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; 64 keeps the workspace's many
        // property blocks fast while still exercising the invariants.
        ProptestConfig { cases: 64 }
    }
}

/// Failure raised by `prop_assert!` family; aborts the current case.
#[derive(Debug, Clone)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    /// Builds a failure with the given message.
    pub fn fail(msg: String) -> Self {
        TestCaseError(msg)
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Deterministic per-test input generator (splitmix64 stream keyed by
/// test path and case index).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the generator for `case` of the test named `name`.
    pub fn for_case(name: &str, case: u32) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325; // FNV-1a offset basis
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng {
            state: h ^ ((case as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)),
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        const SCALE: f64 = 1.0 / (1u64 << 53) as f64;
        ((self.next_u64() >> 11) as f64) * SCALE
    }

    /// Uniform integer in `[0, span)`.
    pub fn below(&mut self, span: u64) -> u64 {
        assert!(span > 0, "cannot sample empty range");
        let limit = u64::MAX - u64::MAX % span;
        loop {
            let v = self.next_u64();
            if v < limit {
                return v % span;
            }
        }
    }
}

/// Value generator, mirroring `proptest::strategy::Strategy` minus
/// shrinking.
pub trait Strategy {
    /// Type of generated values.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

impl Strategy for core::ops::Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let v = self.start + rng.next_f64() * (self.end - self.start);
        if v < self.end {
            v
        } else {
            self.start
        }
    }
}

impl Strategy for core::ops::RangeInclusive<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        lo + rng.next_f64() * (hi - lo)
    }
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }

        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(rng.below(span + 1) as $t)
            }
        }
    )*};
}

impl_int_strategy!(usize, u64, u32, i64, i32);

macro_rules! impl_tuple_strategy {
    ($($S:ident . $idx:tt),+) => {
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A.0, B.1);
impl_tuple_strategy!(A.0, B.1, C.2);
impl_tuple_strategy!(A.0, B.1, C.2, D.3);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4);

/// Common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy, TestCaseError,
    };
}

/// Runs `cases` random cases of a property; used by [`proptest!`].
///
/// Like upstream proptest, the `PROPTEST_CASES` environment variable
/// overrides the per-block configuration — CI pins it so chaos suites
/// run a fixed, reproducible number of cases.
pub fn run_cases<F>(name: &str, config: &ProptestConfig, mut case: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    let cases = std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse::<u32>().ok())
        .unwrap_or(config.cases);
    for i in 0..cases {
        let mut rng = TestRng::for_case(name, i);
        if let Err(e) = case(&mut rng) {
            panic!("property {name} failed at case {i}/{cases}: {e}");
        }
    }
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a test that samples its arguments per case.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let full_name = concat!(module_path!(), "::", stringify!($name));
            $crate::run_cases(full_name, &config, |__rng| {
                $(let $arg = $crate::Strategy::sample(&($strat), __rng);)+
                $body
                ::std::result::Result::Ok(())
            });
        }
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
}

/// Asserts a condition inside a property, failing the current case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a property, failing the current case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respected(a in -5.0..5.0f64, n in 1usize..10, s in 0u64..100) {
            prop_assert!((-5.0..5.0).contains(&a));
            prop_assert!((1..10).contains(&n));
            prop_assert!(s < 100, "seed {s} out of range");
        }

        #[test]
        fn vec_strategy_lengths(xs in crate::collection::vec(-1.0..1.0f64, 2..7)) {
            prop_assert!(xs.len() >= 2 && xs.len() < 7);
            for x in &xs {
                prop_assert!((-1.0..1.0).contains(x));
            }
        }
    }

    #[test]
    fn deterministic_between_runs() {
        let mut a = TestRng::for_case("t", 3);
        let mut b = TestRng::for_case("t", 3);
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failing_property_panics() {
        crate::run_cases(
            "always_fails",
            &ProptestConfig::with_cases(1),
            |_rng| -> Result<(), TestCaseError> {
                prop_assert!(false, "forced failure");
                Ok(())
            },
        );
    }
}
