//! Hermetic stand-in for the `serde` crate.
//!
//! The EasyBO workspace derives `Serialize`/`Deserialize` on config and
//! result types but never actually serializes through serde (telemetry
//! writes JSONL/CSV by hand). In this offline environment the real
//! serde is unavailable, so this stub provides marker traits plus no-op
//! derive macros — enough for every `#[derive(Serialize, Deserialize)]`
//! in the tree to compile unchanged.

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
