//! Hermetic stand-in for the `criterion` crate.
//!
//! Offline replacement implementing the surface the EasyBO bench
//! targets use: [`Criterion::bench_function`], [`Bencher::iter`] /
//! [`Bencher::iter_batched`], [`BatchSize`], [`black_box`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros. Measurement is a
//! simple mean/min over `sample_size` timed samples (no outlier
//! analysis, no HTML reports) printed to stdout — enough to compare
//! relative costs, which is all the workspace's acceptance criteria
//! need.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` amortizes setup cost; all variants behave the
/// same here (setup is always excluded from timing).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small routine input.
    SmallInput,
    /// Large routine input.
    LargeInput,
    /// Fresh setup per iteration.
    PerIteration,
}

/// Benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets how many timed samples each benchmark collects.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Runs one benchmark, printing mean and min time per iteration.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            sample_size: self.sample_size,
        };
        f(&mut bencher);
        let per_iter: Vec<f64> = bencher
            .samples
            .iter()
            .map(|(elapsed, iters)| elapsed.as_secs_f64() / (*iters as f64).max(1.0))
            .collect();
        let mean = per_iter.iter().sum::<f64>() / per_iter.len().max(1) as f64;
        let min = per_iter.iter().cloned().fold(f64::INFINITY, f64::min);
        println!(
            "bench {id:<40} mean {:>12}  min {:>12}  ({} samples)",
            format_time(mean),
            format_time(min),
            per_iter.len()
        );
        self
    }
}

fn format_time(secs: f64) -> String {
    if !secs.is_finite() {
        "n/a".to_string()
    } else if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} us", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Collects timed samples for one benchmark.
pub struct Bencher {
    /// `(elapsed, iterations)` per sample.
    samples: Vec<(Duration, u64)>,
    sample_size: usize,
}

impl Bencher {
    /// Calibrates an iteration count (~5 ms per sample, capped) then
    /// times `sample_size` samples of the routine.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Warm up and calibrate.
        let t0 = Instant::now();
        black_box(routine());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let per_sample = (Duration::from_millis(5).as_nanos() / once.as_nanos()).clamp(1, 10_000);
        let iters = per_sample as u64;
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            self.samples.push((start.elapsed(), iters));
        }
    }

    /// Times `routine` on inputs produced by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push((start.elapsed(), 1));
        }
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $cfg;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench entry point, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trivial(c: &mut Criterion) {
        c.bench_function("trivial_add", |b| b.iter(|| black_box(1u64) + 1));
        c.bench_function("batched_sum", |b| {
            b.iter_batched(
                || vec![1u64; 64],
                |v| v.iter().sum::<u64>(),
                BatchSize::SmallInput,
            )
        });
    }

    #[test]
    fn bench_harness_runs() {
        let mut c = Criterion::default().sample_size(3);
        trivial(&mut c);
    }
}
