//! Space-filling designs: Latin hypercube, Sobol and plain uniform sampling.
//!
//! Bayesian optimization quality is sensitive to the initial design; the
//! paper seeds every BO run with 20 random points. We provide Latin
//! hypercube sampling (used as the default initial design) plus a
//! direction-number-free Sobol implementation (Gray-code construction with
//! the classic Joe–Kuo style primitive polynomials for up to 16 dimensions)
//! for low-discrepancy sweeps.

use rand::seq::SliceRandom;
use rand::Rng;

use crate::Bounds;

/// Draws `n` uniform random points inside `bounds`.
///
/// # Example
///
/// ```
/// use easybo_opt::{Bounds, sampling};
/// use rand::SeedableRng;
///
/// # fn main() -> Result<(), easybo_opt::OptError> {
/// let b = Bounds::unit_cube(3)?;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let pts = sampling::uniform(&b, 10, &mut rng);
/// assert_eq!(pts.len(), 10);
/// assert!(pts.iter().all(|p| b.contains(p)));
/// # Ok(())
/// # }
/// ```
pub fn uniform<R: Rng + ?Sized>(bounds: &Bounds, n: usize, rng: &mut R) -> Vec<Vec<f64>> {
    (0..n).map(|_| bounds.sample_uniform(rng)).collect()
}

/// Latin hypercube sample of `n` points inside `bounds`.
///
/// Each dimension is divided into `n` equal strata; every stratum is hit
/// exactly once, with a uniform jitter inside each cell and an independent
/// random permutation per dimension.
///
/// # Example
///
/// ```
/// use easybo_opt::{Bounds, sampling};
/// use rand::SeedableRng;
///
/// # fn main() -> Result<(), easybo_opt::OptError> {
/// let b = Bounds::unit_cube(2)?;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let pts = sampling::latin_hypercube(&b, 5, &mut rng);
/// // One point per stratum in every dimension.
/// for d in 0..2 {
///     let mut strata: Vec<usize> = pts.iter().map(|p| (p[d] * 5.0) as usize).collect();
///     strata.sort_unstable();
///     assert_eq!(strata, vec![0, 1, 2, 3, 4]);
/// }
/// # Ok(())
/// # }
/// ```
pub fn latin_hypercube<R: Rng + ?Sized>(bounds: &Bounds, n: usize, rng: &mut R) -> Vec<Vec<f64>> {
    if n == 0 {
        return Vec::new();
    }
    let d = bounds.dim();
    // For each dimension, a permutation of the strata 0..n.
    let mut strata: Vec<Vec<usize>> = Vec::with_capacity(d);
    for _ in 0..d {
        let mut perm: Vec<usize> = (0..n).collect();
        perm.shuffle(rng);
        strata.push(perm);
    }
    (0..n)
        .map(|i| {
            let unit: Vec<f64> = (0..d)
                .map(|j| (strata[j][i] as f64 + rng.gen::<f64>()) / n as f64)
                .collect();
            bounds.from_unit(&unit)
        })
        .collect()
}

/// Maximum dimension supported by [`SobolSequence`].
pub const SOBOL_MAX_DIM: usize = 16;

/// Primitive polynomial degrees for Sobol dimensions 2..=16
/// (dimension 1 is the van der Corput sequence).
const SOBOL_POLY_DEG: [u32; 15] = [1, 2, 3, 3, 4, 4, 5, 5, 5, 5, 5, 5, 6, 6, 6];
/// Encoded primitive polynomial coefficients a_1..a_{deg-1} for each row of
/// `SOBOL_POLY_DEG` (standard Joe–Kuo table, first 16 dimensions).
const SOBOL_POLY_A: [u32; 15] = [0, 1, 1, 2, 1, 4, 2, 4, 7, 11, 13, 14, 1, 13, 16];
/// Initial direction numbers m_1..m_deg per dimension (Joe–Kuo new-joe-kuo-6).
const SOBOL_M_INIT: [&[u32]; 15] = [
    &[1],
    &[1, 3],
    &[1, 3, 1],
    &[1, 1, 1],
    &[1, 1, 3, 3],
    &[1, 3, 5, 13],
    &[1, 1, 5, 5, 17],
    &[1, 1, 5, 5, 5],
    &[1, 1, 7, 11, 19],
    &[1, 1, 5, 1, 1],
    &[1, 1, 1, 3, 11],
    &[1, 3, 5, 5, 31],
    &[1, 3, 3, 9, 7, 49],
    &[1, 1, 1, 15, 21, 21],
    &[1, 3, 1, 13, 27, 49],
];

/// A Sobol low-discrepancy sequence over the unit cube, using the Gray-code
/// construction (Antonov–Saleev).
///
/// # Example
///
/// ```
/// use easybo_opt::sampling::SobolSequence;
///
/// let mut sobol = SobolSequence::new(2).expect("dim <= 16");
/// let first: Vec<Vec<f64>> = (0..4).map(|_| sobol.next_point()).collect();
/// // The first Sobol point is the origin-adjacent 0.5-centered point set.
/// assert_eq!(first[0], vec![0.5, 0.5]);
/// ```
#[derive(Debug, Clone)]
pub struct SobolSequence {
    dim: usize,
    /// direction numbers, 32 per dimension, as 32-bit fixed-point fractions.
    v: Vec<[u32; 32]>,
    /// current XOR state per dimension.
    state: Vec<u32>,
    /// index of the next point (0-based; point 0 is returned as all-0.5 by
    /// convention of skipping the origin).
    index: u64,
}

impl SobolSequence {
    /// Creates a Sobol sequence of dimension `dim`.
    ///
    /// Returns `None` if `dim == 0` or `dim > SOBOL_MAX_DIM`.
    pub fn new(dim: usize) -> Option<Self> {
        if dim == 0 || dim > SOBOL_MAX_DIM {
            return None;
        }
        let mut v = Vec::with_capacity(dim);
        // Dimension 1: van der Corput, m_k = 1 for all k.
        let mut v0 = [0u32; 32];
        for (k, slot) in v0.iter_mut().enumerate() {
            *slot = 1u32 << (31 - k);
        }
        v.push(v0);
        for d in 1..dim {
            let deg = SOBOL_POLY_DEG[d - 1] as usize;
            let a = SOBOL_POLY_A[d - 1];
            let m_init = SOBOL_M_INIT[d - 1];
            let mut m = [0u64; 32];
            for k in 0..deg {
                m[k] = m_init[k] as u64;
            }
            for k in deg..32 {
                // Recurrence: m_k = 2 a_1 m_{k-1} XOR 4 a_2 m_{k-2} XOR ...
                //             XOR 2^deg m_{k-deg} XOR m_{k-deg}
                let mut val = m[k - deg] ^ (m[k - deg] << deg);
                for j in 1..deg {
                    if (a >> (deg - 1 - j)) & 1 == 1 {
                        val ^= m[k - j] << j;
                    }
                }
                m[k] = val;
            }
            let mut vd = [0u32; 32];
            for k in 0..32 {
                vd[k] = (m[k] as u32) << (31 - k);
            }
            v.push(vd);
        }
        Some(SobolSequence {
            dim,
            v,
            state: vec![0; dim],
            index: 0,
        })
    }

    /// Dimension of the sequence.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Returns the next point of the sequence in `[0, 1)^dim`.
    ///
    /// Uses the Antonov–Saleev Gray-code recurrence
    /// `state_n = state_{n-1} XOR v[ctz(n)]`, skipping the all-zero origin,
    /// so the first emitted point is `(0.5, ..., 0.5)`.
    pub fn next_point(&mut self) -> Vec<f64> {
        self.index += 1;
        let c = self.index.trailing_zeros() as usize;
        for d in 0..self.dim {
            self.state[d] ^= self.v[d][c];
        }
        self.state
            .iter()
            .map(|&s| s as f64 / (1u64 << 32) as f64)
            .collect()
    }

    /// Generates `n` points mapped into `bounds`.
    ///
    /// # Panics
    ///
    /// Panics if `bounds.dim() != self.dim()`.
    pub fn sample(&mut self, bounds: &Bounds, n: usize) -> Vec<Vec<f64>> {
        assert_eq!(bounds.dim(), self.dim, "Sobol dimension mismatch");
        (0..n)
            .map(|_| bounds.from_unit(&self.next_point()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(12345)
    }

    #[test]
    fn uniform_count_and_containment() {
        let b = Bounds::new(vec![(0.0, 1.0), (-5.0, 5.0)]).unwrap();
        let pts = uniform(&b, 50, &mut rng());
        assert_eq!(pts.len(), 50);
        assert!(pts.iter().all(|p| b.contains(p)));
    }

    #[test]
    fn lhs_stratification_in_every_dimension() {
        let b = Bounds::unit_cube(4).unwrap();
        let n = 16;
        let pts = latin_hypercube(&b, n, &mut rng());
        assert_eq!(pts.len(), n);
        for d in 0..4 {
            let mut hits = vec![false; n];
            for p in &pts {
                let s = ((p[d] * n as f64) as usize).min(n - 1);
                assert!(!hits[s], "stratum {s} in dim {d} hit twice");
                hits[s] = true;
            }
            assert!(hits.iter().all(|&h| h));
        }
    }

    #[test]
    fn lhs_respects_bounds() {
        let b = Bounds::new(vec![(10.0, 20.0), (-3.0, -2.0)]).unwrap();
        let pts = latin_hypercube(&b, 9, &mut rng());
        assert!(pts.iter().all(|p| b.contains(p)));
    }

    #[test]
    fn lhs_zero_points() {
        let b = Bounds::unit_cube(2).unwrap();
        assert!(latin_hypercube(&b, 0, &mut rng()).is_empty());
    }

    #[test]
    fn sobol_dimension_limits() {
        assert!(SobolSequence::new(0).is_none());
        assert!(SobolSequence::new(SOBOL_MAX_DIM).is_some());
        assert!(SobolSequence::new(SOBOL_MAX_DIM + 1).is_none());
    }

    #[test]
    fn sobol_first_point_is_half() {
        let mut s = SobolSequence::new(3).unwrap();
        assert_eq!(s.next_point(), vec![0.5, 0.5, 0.5]);
    }

    #[test]
    fn sobol_points_distinct_and_in_unit_cube() {
        let mut s = SobolSequence::new(5).unwrap();
        let mut seen = std::collections::HashSet::new();
        for _ in 0..256 {
            let p = s.next_point();
            assert!(p.iter().all(|&v| (0.0..1.0).contains(&v)), "{p:?}");
            let key: Vec<u64> = p.iter().map(|v| v.to_bits()).collect();
            assert!(seen.insert(key), "duplicate Sobol point {p:?}");
        }
    }

    #[test]
    fn sobol_low_discrepancy_beats_worst_case() {
        // In 1-d, the first 2^k Sobol points are exactly the dyadic grid; the
        // empirical CDF error should be below 2/n.
        let mut s = SobolSequence::new(1).unwrap();
        let n = 64;
        let mut pts: Vec<f64> = (0..n).map(|_| s.next_point()[0]).collect();
        pts.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for (i, p) in pts.iter().enumerate() {
            let cdf = (i + 1) as f64 / n as f64;
            assert!((cdf - p).abs() <= 2.0 / n as f64, "i={i} p={p}");
        }
    }

    #[test]
    fn sobol_sample_maps_to_bounds() {
        let b = Bounds::new(vec![(100.0, 200.0), (0.0, 1.0)]).unwrap();
        let mut s = SobolSequence::new(2).unwrap();
        let pts = s.sample(&b, 10);
        assert_eq!(pts.len(), 10);
        assert!(pts.iter().all(|p| b.contains(p)));
    }

    #[test]
    fn sobol_2d_balance() {
        // First 2^k points of a 2-d Sobol sequence put exactly n/4 points in
        // each quadrant.
        let mut s = SobolSequence::new(2).unwrap();
        let n = 64;
        let mut quad = [0usize; 4];
        for _ in 0..n {
            let p = s.next_point();
            let q = (p[0] >= 0.5) as usize * 2 + (p[1] >= 0.5) as usize;
            quad[q] += 1;
        }
        assert_eq!(quad, [16, 16, 16, 16]);
    }
}
