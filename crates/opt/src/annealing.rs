//! Simulated annealing — the other classic simulation-based sizing family
//! the paper's introduction surveys (refs. \[10\]–\[12\], e.g. ANACONDA-style
//! stochastic pattern search ancestors).
//!
//! Standard Metropolis annealing with a geometric cooling schedule and
//! per-dimension Gaussian proposal steps that shrink with temperature.

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::{Bounds, OptError};

/// Configuration for [`SimulatedAnnealing`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SaConfig {
    /// Initial temperature, in units of objective spread (default 1.0).
    pub t_initial: f64,
    /// Final temperature (default 1e-3).
    pub t_final: f64,
    /// Initial proposal step, as a fraction of each bound width
    /// (default 0.25); cools proportionally with temperature.
    pub step_fraction: f64,
    /// Total objective-evaluation budget (default 10000).
    pub max_evals: usize,
}

impl Default for SaConfig {
    fn default() -> Self {
        SaConfig {
            t_initial: 1.0,
            t_final: 1e-3,
            step_fraction: 0.25,
            max_evals: 10_000,
        }
    }
}

impl SaConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`OptError::InvalidConfig`] for non-positive temperatures,
    /// `t_final >= t_initial`, a step fraction outside `(0, 1]`, or a zero
    /// budget.
    pub fn validate(&self) -> crate::Result<()> {
        if !(self.t_initial > 0.0 && self.t_final > 0.0 && self.t_final < self.t_initial) {
            return Err(OptError::InvalidConfig {
                parameter: "t_initial/t_final",
                reason: format!(
                    "need 0 < t_final < t_initial, got {} and {}",
                    self.t_final, self.t_initial
                ),
            });
        }
        if !(self.step_fraction > 0.0 && self.step_fraction <= 1.0) {
            return Err(OptError::InvalidConfig {
                parameter: "step_fraction",
                reason: format!("must be in (0, 1], got {}", self.step_fraction),
            });
        }
        if self.max_evals < 2 {
            return Err(OptError::InvalidConfig {
                parameter: "max_evals",
                reason: "must be at least 2".into(),
            });
        }
        Ok(())
    }
}

/// Outcome of a simulated-annealing run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SaReport {
    /// Best design found.
    pub x: Vec<f64>,
    /// Objective value at `x` (maximization).
    pub value: f64,
    /// Objective evaluations used.
    pub evals: usize,
    /// Best-so-far value after each evaluation.
    pub history: Vec<f64>,
}

/// Metropolis simulated-annealing **maximizer**.
///
/// The acceptance temperature is scaled adaptively by the running estimate
/// of the objective's spread, so `t_initial = 1` means "accept downhill
/// moves about one spread large" at the start.
///
/// # Example
///
/// ```
/// use easybo_opt::{Bounds, annealing::{SaConfig, SimulatedAnnealing}};
/// use rand::SeedableRng;
///
/// # fn main() -> Result<(), easybo_opt::OptError> {
/// let bounds = Bounds::new(vec![(-5.0, 5.0); 2])?;
/// let sa = SimulatedAnnealing::new(SaConfig { max_evals: 4000, ..Default::default() })?;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(2);
/// let report = sa.maximize(&bounds, &mut rng, |x| -(x[0] * x[0] + x[1] * x[1]));
/// assert!(report.value > -0.05);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SimulatedAnnealing {
    config: SaConfig,
}

impl SimulatedAnnealing {
    /// Creates a simulated-annealing optimizer.
    ///
    /// # Errors
    ///
    /// Returns [`OptError::InvalidConfig`] if the configuration is invalid;
    /// see [`SaConfig::validate`].
    pub fn new(config: SaConfig) -> crate::Result<Self> {
        config.validate()?;
        Ok(SimulatedAnnealing { config })
    }

    /// The active configuration.
    pub fn config(&self) -> &SaConfig {
        &self.config
    }

    /// Maximizes `f` over `bounds` within the evaluation budget.
    /// Non-finite objective values are treated as `-inf`.
    pub fn maximize<R, F>(&self, bounds: &Bounds, rng: &mut R, mut f: F) -> SaReport
    where
        R: Rng + ?Sized,
        F: FnMut(&[f64]) -> f64,
    {
        let c = &self.config;
        let d = bounds.dim();
        let widths = bounds.widths();
        let n = c.max_evals;
        // Geometric cooling: T_k = T0 * (Tf/T0)^(k/n).
        let cool = (c.t_final / c.t_initial).powf(1.0 / n as f64);

        let mut history = Vec::with_capacity(n);
        let safe = |v: f64| if v.is_finite() { v } else { f64::NEG_INFINITY };

        let mut current = bounds.sample_uniform(rng);
        let mut current_v = safe(f(&current));
        let mut best = current.clone();
        let mut best_v = current_v;
        history.push(best_v);
        let mut evals = 1usize;

        // Running spread estimate for temperature scaling.
        let mut spread = 1.0f64;
        let mut seen_lo = current_v;
        let mut seen_hi = current_v;
        let mut temp = c.t_initial;

        while evals < n {
            temp *= cool;
            let frac = c.step_fraction * (temp / c.t_initial).max(0.02);
            let proposal: Vec<f64> = (0..d)
                .map(|j| {
                    let step = gaussian(rng) * widths[j] * frac;
                    (current[j] + step).clamp(bounds.pair(j).0, bounds.pair(j).1)
                })
                .collect();
            let v = safe(f(&proposal));
            evals += 1;
            if v.is_finite() {
                seen_lo = seen_lo.min(v);
                seen_hi = seen_hi.max(v);
                spread = (seen_hi - seen_lo).max(1e-12);
            }
            let accept = v >= current_v || {
                let delta = (v - current_v) / spread; // negative
                rng.gen::<f64>() < (delta / temp.max(1e-12)).exp()
            };
            if accept {
                current = proposal;
                current_v = v;
            }
            if v > best_v {
                best_v = v;
                best = current.clone();
            }
            history.push(best_v);
        }

        SaReport {
            x: best,
            value: best_v,
            evals,
            history,
        }
    }
}

/// Box–Muller standard normal draw.
fn gaussian<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(1e-12..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    #[test]
    fn maximizes_negative_sphere() {
        let bounds = Bounds::new(vec![(-5.0, 5.0); 2]).unwrap();
        let sa = SimulatedAnnealing::new(SaConfig {
            max_evals: 6000,
            ..Default::default()
        })
        .unwrap();
        let r = sa.maximize(&bounds, &mut rng(1), |x| {
            -x.iter().map(|v| v * v).sum::<f64>()
        });
        assert!(r.value > -0.02, "best {}", r.value);
    }

    #[test]
    fn budget_and_history() {
        let bounds = Bounds::new(vec![(0.0, 1.0)]).unwrap();
        let sa = SimulatedAnnealing::new(SaConfig {
            max_evals: 99,
            ..Default::default()
        })
        .unwrap();
        let r = sa.maximize(&bounds, &mut rng(2), |x| x[0]);
        assert_eq!(r.evals, 99);
        assert_eq!(r.history.len(), 99);
        for w in r.history.windows(2) {
            assert!(w[1] >= w[0]);
        }
    }

    #[test]
    fn proposals_respect_bounds() {
        let bounds = Bounds::new(vec![(2.0, 3.0), (-7.0, -6.0)]).unwrap();
        let sa = SimulatedAnnealing::new(SaConfig {
            max_evals: 500,
            ..Default::default()
        })
        .unwrap();
        let mut violations = 0;
        let _ = sa.maximize(&bounds, &mut rng(3), |x| {
            if !bounds.contains(x) {
                violations += 1;
            }
            -x[0] * x[1]
        });
        assert_eq!(violations, 0);
    }

    #[test]
    fn crosses_barrier_on_bimodal() {
        // Start anywhere; the global peak at x = 0.8 is separated from a
        // local one at x = 0.2 by a valley. SA should land globally.
        let bounds = Bounds::new(vec![(0.0, 1.0)]).unwrap();
        let sa = SimulatedAnnealing::new(SaConfig {
            max_evals: 5000,
            ..Default::default()
        })
        .unwrap();
        let f = |x: &[f64]| {
            0.6 * (-200.0 * (x[0] - 0.2f64).powi(2)).exp()
                + (-200.0 * (x[0] - 0.8f64).powi(2)).exp()
        };
        let r = sa.maximize(&bounds, &mut rng(4), f);
        assert!((r.x[0] - 0.8).abs() < 0.05, "landed at {}", r.x[0]);
    }

    #[test]
    fn handles_nan_objective() {
        let bounds = Bounds::new(vec![(-1.0, 1.0)]).unwrap();
        let sa = SimulatedAnnealing::new(SaConfig {
            max_evals: 400,
            ..Default::default()
        })
        .unwrap();
        let r = sa.maximize(&bounds, &mut rng(5), |x| {
            if x[0] < 0.0 {
                f64::NAN
            } else {
                x[0]
            }
        });
        assert!(r.value.is_finite());
        assert!(r.value > 0.5);
    }

    #[test]
    fn rejects_bad_config() {
        assert!(SimulatedAnnealing::new(SaConfig {
            t_initial: 0.0,
            ..Default::default()
        })
        .is_err());
        assert!(SimulatedAnnealing::new(SaConfig {
            t_final: 2.0,
            t_initial: 1.0,
            ..Default::default()
        })
        .is_err());
        assert!(SimulatedAnnealing::new(SaConfig {
            step_fraction: 0.0,
            ..Default::default()
        })
        .is_err());
        assert!(SimulatedAnnealing::new(SaConfig {
            max_evals: 1,
            ..Default::default()
        })
        .is_err());
    }
}
