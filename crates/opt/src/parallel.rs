//! Deterministic structured parallelism for the optimization hot paths.
//!
//! Everything here is built around one invariant: **the result of a
//! parallel computation must be bit-identical to the sequential one.**
//! [`parallel_map`] only changes *where* independent work items run, never
//! their inputs or the order results are consumed in, and [`split_seeds`]
//! derives per-task RNG seeds as a pure function of the caller's seed so a
//! fan-out is reproducible regardless of how it is scheduled.

use serde::{Deserialize, Serialize};

/// Worker-thread budget for the parallel hot paths (acquisition probe
/// scoring, Nelder–Mead refinement starts, L-BFGS training restarts).
///
/// The default is the number of available cores; [`Parallelism::sequential`]
/// (`1`) selects the legacy single-threaded path. Any setting produces
/// bit-identical results — the knob trades wall-clock time only.
///
/// # Example
///
/// ```
/// use easybo_opt::Parallelism;
///
/// assert_eq!(Parallelism::sequential().threads(), 1);
/// assert_eq!(Parallelism::new(0).threads(), 1); // clamped up
/// assert!(Parallelism::default().threads() >= 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Parallelism(usize);

impl Parallelism {
    /// A budget of `threads` workers; zero is clamped up to 1.
    pub fn new(threads: usize) -> Self {
        Parallelism(threads.max(1))
    }

    /// The legacy sequential path (one worker, no threads spawned).
    pub const fn sequential() -> Self {
        Parallelism(1)
    }

    /// One worker per available hardware thread (falls back to 1 when the
    /// platform cannot report its parallelism).
    pub fn available() -> Self {
        Parallelism(
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
        )
    }

    /// The worker-thread budget (always ≥ 1).
    pub fn threads(self) -> usize {
        self.0
    }

    /// Whether this budget runs on the calling thread only.
    pub fn is_sequential(self) -> bool {
        self.0 <= 1
    }
}

impl Default for Parallelism {
    fn default() -> Self {
        Parallelism::available()
    }
}

impl From<usize> for Parallelism {
    fn from(threads: usize) -> Self {
        Parallelism::new(threads)
    }
}

/// Maps `f(index, item)` over `items`, fanning contiguous chunks out to
/// scoped worker threads, and returns the outputs **in input order**.
///
/// Because every item is processed independently with its original index and
/// the output order is fixed, the result is bit-identical to the sequential
/// map for any `parallelism` — a deterministic fan-out, not a reduction
/// whose shape depends on thread timing. With a sequential budget (or a
/// trivially small input) no threads are spawned at all.
pub fn parallel_map<T, U, F>(parallelism: Parallelism, items: Vec<T>, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(usize, T) -> U + Sync,
{
    let n = items.len();
    let workers = parallelism.threads().min(n);
    if workers <= 1 {
        return items
            .into_iter()
            .enumerate()
            .map(|(i, t)| f(i, t))
            .collect();
    }
    let chunk = n.div_ceil(workers);
    let mut inputs: Vec<Option<T>> = items.into_iter().map(Some).collect();
    let mut outputs: Vec<Option<U>> = (0..n).map(|_| None).collect();
    let f = &f;
    std::thread::scope(|scope| {
        for (ci, (ins, outs)) in inputs
            .chunks_mut(chunk)
            .zip(outputs.chunks_mut(chunk))
            .enumerate()
        {
            scope.spawn(move || {
                for (off, (i, o)) in ins.iter_mut().zip(outs.iter_mut()).enumerate() {
                    let item = i.take().expect("input taken once");
                    *o = Some(f(ci * chunk + off, item));
                }
            });
        }
    });
    outputs
        .into_iter()
        .map(|o| o.expect("every chunk filled its outputs"))
        .collect()
}

/// Splits a caller seed into `n` decorrelated per-task seeds with a
/// splitmix64 stream — the standard way to hand each member of a parallel
/// fan-out its own RNG without any sequential draw dependence.
///
/// Pure function of `(seed, n)`: the i-th returned seed never depends on how
/// many tasks run concurrently or in what order they are scheduled.
pub fn split_seeds(seed: u64, n: usize) -> Vec<u64> {
    let mut state = seed;
    (0..n)
        .map(|_| {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallelism_clamps_and_reports() {
        assert_eq!(Parallelism::new(0).threads(), 1);
        assert_eq!(Parallelism::new(8).threads(), 8);
        assert!(Parallelism::sequential().is_sequential());
        assert!(!Parallelism::new(2).is_sequential());
        assert_eq!(Parallelism::from(3), Parallelism::new(3));
        assert!(Parallelism::available().threads() >= 1);
    }

    #[test]
    fn parallel_map_preserves_order_and_indices() {
        let items: Vec<usize> = (0..23).collect();
        let expect: Vec<usize> = items.iter().map(|&v| v * 10).collect();
        for k in [1usize, 2, 3, 8, 64] {
            let got = parallel_map(Parallelism::new(k), items.clone(), |i, v| {
                assert_eq!(i, v, "index must match the item's input position");
                v * 10
            });
            assert_eq!(got, expect, "k = {k}");
        }
    }

    #[test]
    fn parallel_map_handles_empty_and_single() {
        let empty: Vec<u32> = parallel_map(Parallelism::new(4), Vec::new(), |_, v| v);
        assert!(empty.is_empty());
        let one = parallel_map(Parallelism::new(4), vec![7], |i, v: i32| v + i as i32);
        assert_eq!(one, vec![7]);
    }

    #[test]
    fn parallel_map_moves_non_copy_items() {
        let items = vec![vec![1.0, 2.0], vec![3.0]];
        let sums = parallel_map(Parallelism::new(2), items, |_, v| v.iter().sum::<f64>());
        assert_eq!(sums, vec![3.0, 3.0]);
    }

    #[test]
    fn split_seeds_is_pure_and_decorrelated() {
        let a = split_seeds(42, 8);
        let b = split_seeds(42, 8);
        assert_eq!(a, b, "same seed, same stream");
        // Prefix property: asking for fewer seeds yields a prefix.
        assert_eq!(&a[..3], split_seeds(42, 3).as_slice());
        // Different caller seeds diverge everywhere.
        let c = split_seeds(43, 8);
        assert!(a.iter().zip(&c).all(|(x, y)| x != y));
        // No duplicates within a stream.
        for i in 0..a.len() {
            for j in (i + 1)..a.len() {
                assert_ne!(a[i], a[j]);
            }
        }
    }
}
