//! Adam first-order optimizer for smooth unconstrained (or box-clamped)
//! minimization; used to train GP hyperparameters from analytic gradients.

use serde::{Deserialize, Serialize};

use crate::OptError;

/// Configuration for [`Adam`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdamConfig {
    /// Step size (default 0.05 — tuned for log-hyperparameter training).
    pub learning_rate: f64,
    /// First-moment decay (default 0.9).
    pub beta1: f64,
    /// Second-moment decay (default 0.999).
    pub beta2: f64,
    /// Numerical fuzz in the denominator (default 1e-8).
    pub epsilon: f64,
    /// Maximum number of iterations (default 200).
    pub max_iters: usize,
    /// Stop when the gradient infinity-norm drops below this (default 1e-6).
    pub grad_tol: f64,
}

impl Default for AdamConfig {
    fn default() -> Self {
        AdamConfig {
            learning_rate: 0.05,
            beta1: 0.9,
            beta2: 0.999,
            epsilon: 1e-8,
            max_iters: 200,
            grad_tol: 1e-6,
        }
    }
}

impl AdamConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`OptError::InvalidConfig`] for non-positive learning rate,
    /// betas outside `(0, 1)`, or zero iterations.
    pub fn validate(&self) -> crate::Result<()> {
        if !(self.learning_rate > 0.0 && self.learning_rate.is_finite()) {
            return Err(OptError::InvalidConfig {
                parameter: "learning_rate",
                reason: format!("must be positive and finite, got {}", self.learning_rate),
            });
        }
        for (name, b) in [("beta1", self.beta1), ("beta2", self.beta2)] {
            if !(0.0..1.0).contains(&b) {
                return Err(OptError::InvalidConfig {
                    parameter: name,
                    reason: format!("must be in [0, 1), got {b}"),
                });
            }
        }
        if self.max_iters == 0 {
            return Err(OptError::InvalidConfig {
                parameter: "max_iters",
                reason: "must be at least 1".into(),
            });
        }
        Ok(())
    }
}

/// The Adam optimizer (Kingma & Ba, 2015) for **minimization** of a smooth
/// function given a value-and-gradient oracle.
///
/// # Example
///
/// ```
/// use easybo_opt::{Adam, AdamConfig};
///
/// # fn main() -> Result<(), easybo_opt::OptError> {
/// let adam = Adam::new(AdamConfig { max_iters: 500, ..Default::default() })?;
/// // Minimize (x-1)^2 + (y+2)^2.
/// let (x, f) = adam.minimize(vec![0.0, 0.0], |x, grad| {
///     grad[0] = 2.0 * (x[0] - 1.0);
///     grad[1] = 2.0 * (x[1] + 2.0);
///     (x[0] - 1.0).powi(2) + (x[1] + 2.0).powi(2)
/// });
/// assert!((x[0] - 1.0).abs() < 1e-2 && (x[1] + 2.0).abs() < 1e-2);
/// assert!(f < 1e-3);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Adam {
    config: AdamConfig,
}

impl Adam {
    /// Creates an Adam optimizer.
    ///
    /// # Errors
    ///
    /// Returns [`OptError::InvalidConfig`] if the configuration is invalid;
    /// see [`AdamConfig::validate`].
    pub fn new(config: AdamConfig) -> crate::Result<Self> {
        config.validate()?;
        Ok(Adam { config })
    }

    /// The active configuration.
    pub fn config(&self) -> &AdamConfig {
        &self.config
    }

    /// Minimizes `f`, which must write the gradient into its second argument
    /// and return the objective value. Returns the best `(x, f(x))` seen.
    ///
    /// Non-finite objective values abort the run and return the best finite
    /// iterate found so far.
    pub fn minimize<F>(&self, x0: Vec<f64>, mut f: F) -> (Vec<f64>, f64)
    where
        F: FnMut(&[f64], &mut [f64]) -> f64,
    {
        let n = x0.len();
        let mut x = x0;
        let mut m = vec![0.0; n];
        let mut v = vec![0.0; n];
        let mut grad = vec![0.0; n];
        let mut best_x = x.clone();
        let mut best_f = f64::INFINITY;
        let c = &self.config;
        for t in 1..=c.max_iters {
            let fx = f(&x, &mut grad);
            if fx.is_finite() && fx < best_f {
                best_f = fx;
                best_x.copy_from_slice(&x);
            }
            if !fx.is_finite() || grad.iter().any(|g| !g.is_finite()) {
                break;
            }
            let gmax = grad.iter().fold(0.0f64, |a, &g| a.max(g.abs()));
            if gmax < c.grad_tol {
                break;
            }
            let b1t = 1.0 - c.beta1.powi(t as i32);
            let b2t = 1.0 - c.beta2.powi(t as i32);
            for i in 0..n {
                m[i] = c.beta1 * m[i] + (1.0 - c.beta1) * grad[i];
                v[i] = c.beta2 * v[i] + (1.0 - c.beta2) * grad[i] * grad[i];
                let mhat = m[i] / b1t;
                let vhat = v[i] / b2t;
                x[i] -= c.learning_rate * mhat / (vhat.sqrt() + c.epsilon);
            }
        }
        // Final evaluation in case the last step improved.
        let fx = f(&x, &mut grad);
        if fx.is_finite() && fx < best_f {
            best_f = fx;
            best_x.copy_from_slice(&x);
        }
        (best_x, best_f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quadratic(center: &[f64]) -> impl FnMut(&[f64], &mut [f64]) -> f64 + '_ {
        move |x, grad| {
            let mut fx = 0.0;
            for i in 0..x.len() {
                let d = x[i] - center[i];
                fx += d * d;
                grad[i] = 2.0 * d;
            }
            fx
        }
    }

    #[test]
    fn converges_on_quadratic() {
        let adam = Adam::new(AdamConfig {
            max_iters: 2000,
            ..Default::default()
        })
        .unwrap();
        let center = [3.0, -1.0, 0.5];
        let (x, fval) = adam.minimize(vec![0.0; 3], quadratic(&center));
        for i in 0..3 {
            assert!((x[i] - center[i]).abs() < 1e-2, "dim {i}: {}", x[i]);
        }
        assert!(fval < 1e-3);
    }

    #[test]
    fn stops_on_small_gradient() {
        let adam = Adam::new(AdamConfig::default()).unwrap();
        let mut calls = 0usize;
        // Start exactly at the optimum: should stop after one gradient check.
        let (_, fval) = adam.minimize(vec![1.0], |x, g| {
            calls += 1;
            g[0] = 2.0 * (x[0] - 1.0);
            (x[0] - 1.0).powi(2)
        });
        assert_eq!(fval, 0.0);
        assert!(calls <= 2, "expected early stop, got {calls} calls");
    }

    #[test]
    fn survives_non_finite_objective() {
        let adam = Adam::new(AdamConfig::default()).unwrap();
        let (x, fval) = adam.minimize(vec![0.5], |x, g| {
            g[0] = 1.0;
            if x[0] < 0.4 {
                f64::NAN
            } else {
                x[0]
            }
        });
        assert!(fval.is_finite());
        assert!(!x[0].is_nan());
    }

    #[test]
    fn rejects_bad_config() {
        assert!(Adam::new(AdamConfig {
            learning_rate: 0.0,
            ..Default::default()
        })
        .is_err());
        assert!(Adam::new(AdamConfig {
            beta1: 1.0,
            ..Default::default()
        })
        .is_err());
        assert!(Adam::new(AdamConfig {
            max_iters: 0,
            ..Default::default()
        })
        .is_err());
    }

    #[test]
    fn handles_rosenbrock_descent() {
        // Rosenbrock is hard for plain gradient descent; Adam should at least
        // reach the parabolic valley (f < 1 from a poor start).
        let adam = Adam::new(AdamConfig {
            max_iters: 3000,
            learning_rate: 0.02,
            ..Default::default()
        })
        .unwrap();
        let (x, fval) = adam.minimize(vec![-1.2, 1.0], |x, g| {
            let (a, b) = (x[0], x[1]);
            g[0] = -2.0 * (1.0 - a) - 400.0 * a * (b - a * a);
            g[1] = 200.0 * (b - a * a);
            (1.0 - a).powi(2) + 100.0 * (b - a * a).powi(2)
        });
        assert!(fval < 1.0, "f = {fval} at {x:?}");
    }
}
