use std::error::Error;
use std::fmt;

/// Error type for design-space and optimizer construction.
#[derive(Debug, Clone, PartialEq)]
pub enum OptError {
    /// A bound pair had `lower >= upper` or a non-finite endpoint.
    InvalidBounds {
        /// Dimension index of the offending pair.
        dim: usize,
        /// Lower endpoint supplied.
        lower: f64,
        /// Upper endpoint supplied.
        upper: f64,
    },
    /// A zero-dimensional design space was requested.
    EmptySpace,
    /// A point had the wrong dimensionality for the space it was used with.
    DimensionMismatch {
        /// Dimensionality of the space.
        expected: usize,
        /// Dimensionality of the point.
        actual: usize,
    },
    /// An optimizer configuration parameter was out of range.
    InvalidConfig {
        /// Name of the offending parameter.
        parameter: &'static str,
        /// Why it was rejected.
        reason: String,
    },
    /// An executor could not finish the run (e.g. every worker thread
    /// died or the evaluation channels were severed).
    ExecutorFailure {
        /// What went wrong.
        reason: String,
    },
}

impl fmt::Display for OptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OptError::InvalidBounds { dim, lower, upper } => {
                write!(f, "invalid bounds in dimension {dim}: [{lower}, {upper}]")
            }
            OptError::EmptySpace => write!(f, "design space must have at least one dimension"),
            OptError::DimensionMismatch { expected, actual } => {
                write!(
                    f,
                    "dimension mismatch: space is {expected}-d, point is {actual}-d"
                )
            }
            OptError::InvalidConfig { parameter, reason } => {
                write!(f, "invalid configuration for `{parameter}`: {reason}")
            }
            OptError::ExecutorFailure { reason } => {
                write!(f, "executor failure: {reason}")
            }
        }
    }
}

impl Error for OptError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = OptError::InvalidBounds {
            dim: 2,
            lower: 1.0,
            upper: 0.0,
        };
        assert!(e.to_string().contains("dimension 2"));
        assert!(OptError::EmptySpace.to_string().contains("at least one"));
        let d = OptError::DimensionMismatch {
            expected: 3,
            actual: 2,
        };
        assert!(d.to_string().contains("3-d"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<OptError>();
    }
}
