//! Bounded Nelder–Mead simplex search, used as the derivative-free local
//! refinement stage of the multi-start acquisition maximizer.

use serde::{Deserialize, Serialize};

use crate::{Bounds, OptError};

/// Configuration for [`NelderMead`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NelderMeadConfig {
    /// Maximum number of objective evaluations (default 200).
    pub max_evals: usize,
    /// Stop when the simplex function-value spread drops below this
    /// (default 1e-10).
    pub f_tol: f64,
    /// Initial simplex edge, as a fraction of each bound width (default 0.05).
    pub initial_step: f64,
    /// Reflection coefficient (default 1.0).
    pub alpha: f64,
    /// Expansion coefficient (default 2.0).
    pub gamma: f64,
    /// Contraction coefficient (default 0.5).
    pub rho: f64,
    /// Shrink coefficient (default 0.5).
    pub sigma: f64,
}

impl Default for NelderMeadConfig {
    fn default() -> Self {
        NelderMeadConfig {
            max_evals: 200,
            f_tol: 1e-10,
            initial_step: 0.05,
            alpha: 1.0,
            gamma: 2.0,
            rho: 0.5,
            sigma: 0.5,
        }
    }
}

impl NelderMeadConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`OptError::InvalidConfig`] for zero evaluations or a
    /// non-positive initial step.
    pub fn validate(&self) -> crate::Result<()> {
        if self.max_evals == 0 {
            return Err(OptError::InvalidConfig {
                parameter: "max_evals",
                reason: "must be at least 1".into(),
            });
        }
        if !(self.initial_step > 0.0 && self.initial_step <= 1.0) {
            return Err(OptError::InvalidConfig {
                parameter: "initial_step",
                reason: format!("must be in (0, 1], got {}", self.initial_step),
            });
        }
        Ok(())
    }
}

/// Bounded Nelder–Mead simplex **minimizer**.
///
/// All candidate points are clamped to the box before evaluation, which is
/// the pragmatic standard for bound-constrained simplex search.
///
/// # Example
///
/// ```
/// use easybo_opt::{Bounds, NelderMead, NelderMeadConfig};
///
/// # fn main() -> Result<(), easybo_opt::OptError> {
/// let bounds = Bounds::new(vec![(-5.0, 5.0), (-5.0, 5.0)])?;
/// let nm = NelderMead::new(NelderMeadConfig::default())?;
/// let (x, f) = nm.minimize(&bounds, vec![4.0, -4.0], |p| {
///     (p[0] - 1.0).powi(2) + (p[1] - 2.0).powi(2)
/// });
/// assert!(f < 1e-6);
/// assert!((x[0] - 1.0).abs() < 1e-3);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct NelderMead {
    config: NelderMeadConfig,
}

impl NelderMead {
    /// Creates a Nelder–Mead optimizer.
    ///
    /// # Errors
    ///
    /// Returns [`OptError::InvalidConfig`] if the configuration is invalid;
    /// see [`NelderMeadConfig::validate`].
    pub fn new(config: NelderMeadConfig) -> crate::Result<Self> {
        config.validate()?;
        Ok(NelderMead { config })
    }

    /// The active configuration.
    pub fn config(&self) -> &NelderMeadConfig {
        &self.config
    }

    /// Minimizes `f` over `bounds` starting from `x0`.
    ///
    /// Returns the best `(x, f(x))` found. Non-finite objective values are
    /// treated as `+inf` so the simplex walks away from them.
    ///
    /// # Panics
    ///
    /// Panics if `x0.len() != bounds.dim()`.
    pub fn minimize<F>(&self, bounds: &Bounds, x0: Vec<f64>, mut f: F) -> (Vec<f64>, f64)
    where
        F: FnMut(&[f64]) -> f64,
    {
        let n = bounds.dim();
        assert_eq!(x0.len(), n, "start point dimension mismatch");
        let c = &self.config;
        let mut evals = 0usize;
        let eval = |p: &[f64], f: &mut F, evals: &mut usize| -> f64 {
            *evals += 1;
            let v = f(p);
            if v.is_finite() {
                v
            } else {
                f64::INFINITY
            }
        };

        // Initial simplex: x0 plus a step along each axis (flipped if it
        // would leave the box).
        let widths = bounds.widths();
        let x0 = bounds.clamp(&x0);
        let mut simplex: Vec<(Vec<f64>, f64)> = Vec::with_capacity(n + 1);
        let f0 = eval(&x0, &mut f, &mut evals);
        simplex.push((x0.clone(), f0));
        for i in 0..n {
            let mut p = x0.clone();
            let step = c.initial_step * widths[i];
            let (lo, hi) = bounds.pair(i);
            p[i] = if p[i] + step <= hi {
                p[i] + step
            } else {
                (p[i] - step).max(lo)
            };
            let fp = eval(&p, &mut f, &mut evals);
            simplex.push((p, fp));
        }

        while evals < c.max_evals {
            simplex.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
            let f_best = simplex[0].1;
            let f_worst = simplex[n].1;
            // Converge only when BOTH the function spread and the simplex
            // diameter are small: an equal-valued simplex straddling a
            // minimum must keep contracting.
            if (f_worst - f_best).abs() <= c.f_tol * (1.0 + f_best.abs()) {
                let mut diam = 0.0f64;
                for i in 0..n {
                    let lo = simplex
                        .iter()
                        .map(|(p, _)| p[i])
                        .fold(f64::INFINITY, f64::min);
                    let hi = simplex
                        .iter()
                        .map(|(p, _)| p[i])
                        .fold(f64::NEG_INFINITY, f64::max);
                    diam = diam.max((hi - lo) / widths[i]);
                }
                if diam <= 1e-8 {
                    break;
                }
            }
            // Centroid of all but the worst.
            let mut centroid = vec![0.0; n];
            for (p, _) in simplex.iter().take(n) {
                for i in 0..n {
                    centroid[i] += p[i] / n as f64;
                }
            }
            let worst = simplex[n].clone();
            let reflect: Vec<f64> = bounds.clamp(
                &(0..n)
                    .map(|i| centroid[i] + c.alpha * (centroid[i] - worst.0[i]))
                    .collect::<Vec<_>>(),
            );
            let f_r = eval(&reflect, &mut f, &mut evals);

            if f_r < simplex[0].1 {
                // Try expansion.
                let expand: Vec<f64> = bounds.clamp(
                    &(0..n)
                        .map(|i| centroid[i] + c.gamma * (reflect[i] - centroid[i]))
                        .collect::<Vec<_>>(),
                );
                let f_e = eval(&expand, &mut f, &mut evals);
                simplex[n] = if f_e < f_r {
                    (expand, f_e)
                } else {
                    (reflect, f_r)
                };
            } else if f_r < simplex[n - 1].1 {
                simplex[n] = (reflect, f_r);
            } else {
                // Contraction (outside if the reflection improved the worst,
                // inside otherwise).
                let toward = if f_r < worst.1 { &reflect } else { &worst.0 };
                let contract: Vec<f64> = bounds.clamp(
                    &(0..n)
                        .map(|i| centroid[i] + c.rho * (toward[i] - centroid[i]))
                        .collect::<Vec<_>>(),
                );
                let f_c = eval(&contract, &mut f, &mut evals);
                if f_c < worst.1.min(f_r) {
                    simplex[n] = (contract, f_c);
                } else {
                    // Shrink toward the best vertex.
                    let best = simplex[0].0.clone();
                    for vertex in simplex.iter_mut().skip(1) {
                        for (vi, &bi) in vertex.0.iter_mut().zip(&best) {
                            *vi = bi + c.sigma * (*vi - bi);
                        }
                        vertex.1 = eval(&vertex.0, &mut f, &mut evals);
                        if evals >= c.max_evals {
                            break;
                        }
                    }
                }
            }
        }
        simplex.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
        simplex.swap_remove(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nm(max_evals: usize) -> NelderMead {
        NelderMead::new(NelderMeadConfig {
            max_evals,
            ..Default::default()
        })
        .unwrap()
    }

    #[test]
    fn minimizes_shifted_sphere() {
        let b = Bounds::new(vec![(-10.0, 10.0); 3]).unwrap();
        let (x, fval) = nm(600).minimize(&b, vec![8.0, 8.0, 8.0], |p| {
            p.iter()
                .zip([1.0, -2.0, 3.0])
                .map(|(v, c)| (v - c) * (v - c))
                .sum()
        });
        assert!(fval < 1e-6, "f = {fval}");
        assert!((x[0] - 1.0).abs() < 1e-2);
        assert!((x[1] + 2.0).abs() < 1e-2);
        assert!((x[2] - 3.0).abs() < 1e-2);
    }

    #[test]
    fn respects_bounds_when_optimum_outside() {
        let b = Bounds::new(vec![(0.0, 1.0)]).unwrap();
        // True optimum at x = 2, outside the box: should converge to x = 1.
        let (x, _) = nm(200).minimize(&b, vec![0.5], |p| (p[0] - 2.0).powi(2));
        assert!((x[0] - 1.0).abs() < 1e-6, "x = {}", x[0]);
        assert!(b.contains(&x));
    }

    #[test]
    fn handles_nan_regions() {
        let b = Bounds::new(vec![(-2.0, 2.0)]).unwrap();
        let (x, fval) = nm(200).minimize(&b, vec![1.5], |p| {
            if p[0] < -1.0 {
                f64::NAN
            } else {
                (p[0] - 0.5).powi(2)
            }
        });
        assert!(fval < 1e-6);
        assert!((x[0] - 0.5).abs() < 1e-2);
    }

    #[test]
    fn start_outside_bounds_is_clamped() {
        let b = Bounds::new(vec![(0.0, 1.0), (0.0, 1.0)]).unwrap();
        let (x, _) = nm(200).minimize(&b, vec![5.0, -5.0], |p| p[0] * p[0] + p[1] * p[1]);
        assert!(b.contains(&x));
    }

    #[test]
    fn eval_budget_is_respected() {
        let b = Bounds::new(vec![(-1.0, 1.0); 4]).unwrap();
        let mut count = 0usize;
        let _ = nm(50).minimize(&b, vec![0.9; 4], |p| {
            count += 1;
            p.iter().map(|v| v * v).sum()
        });
        // Simplex setup is n+1 evals; shrink steps may add a few beyond the
        // check, but never more than one simplex worth.
        assert!(count <= 50 + 5, "used {count} evaluations");
    }

    #[test]
    fn rejects_bad_config() {
        assert!(NelderMead::new(NelderMeadConfig {
            max_evals: 0,
            ..Default::default()
        })
        .is_err());
        assert!(NelderMead::new(NelderMeadConfig {
            initial_step: 0.0,
            ..Default::default()
        })
        .is_err());
    }
}
