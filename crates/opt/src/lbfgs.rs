//! Limited-memory BFGS with Armijo backtracking line search, for smooth
//! minimization with analytic gradients (GP hyperparameter training).

use std::collections::VecDeque;

use serde::{Deserialize, Serialize};

use crate::OptError;

/// Configuration for [`Lbfgs`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LbfgsConfig {
    /// History size `m` (default 8).
    pub memory: usize,
    /// Maximum number of outer iterations (default 100).
    pub max_iters: usize,
    /// Stop when the gradient infinity-norm drops below this (default 1e-7).
    pub grad_tol: f64,
    /// Armijo sufficient-decrease constant (default 1e-4).
    pub armijo_c: f64,
    /// Line-search backtracking factor (default 0.5).
    pub backtrack: f64,
    /// Maximum line-search trials per iteration (default 30).
    pub max_line_search: usize,
}

impl Default for LbfgsConfig {
    fn default() -> Self {
        LbfgsConfig {
            memory: 8,
            max_iters: 100,
            grad_tol: 1e-7,
            armijo_c: 1e-4,
            backtrack: 0.5,
            max_line_search: 30,
        }
    }
}

impl LbfgsConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`OptError::InvalidConfig`] for zero memory/iterations or a
    /// backtracking factor outside `(0, 1)`.
    pub fn validate(&self) -> crate::Result<()> {
        if self.memory == 0 {
            return Err(OptError::InvalidConfig {
                parameter: "memory",
                reason: "must be at least 1".into(),
            });
        }
        if self.max_iters == 0 {
            return Err(OptError::InvalidConfig {
                parameter: "max_iters",
                reason: "must be at least 1".into(),
            });
        }
        if !(self.backtrack > 0.0 && self.backtrack < 1.0) {
            return Err(OptError::InvalidConfig {
                parameter: "backtrack",
                reason: format!("must be in (0, 1), got {}", self.backtrack),
            });
        }
        Ok(())
    }
}

/// Limited-memory BFGS minimizer.
///
/// Uses the classic two-loop recursion with `(s, y)` curvature pairs and an
/// Armijo backtracking line search. Falls back to steepest descent whenever
/// the curvature condition `s^T y > 0` fails.
///
/// # Example
///
/// ```
/// use easybo_opt::{Lbfgs, LbfgsConfig};
///
/// # fn main() -> Result<(), easybo_opt::OptError> {
/// let lbfgs = Lbfgs::new(LbfgsConfig::default())?;
/// // Minimize the 2-d Rosenbrock function.
/// let (x, f) = lbfgs.minimize(vec![-1.2, 1.0], |x, g| {
///     let (a, b) = (x[0], x[1]);
///     g[0] = -2.0 * (1.0 - a) - 400.0 * a * (b - a * a);
///     g[1] = 200.0 * (b - a * a);
///     (1.0 - a).powi(2) + 100.0 * (b - a * a).powi(2)
/// });
/// assert!(f < 1e-8);
/// assert!((x[0] - 1.0).abs() < 1e-3);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Lbfgs {
    config: LbfgsConfig,
}

impl Lbfgs {
    /// Creates an L-BFGS optimizer.
    ///
    /// # Errors
    ///
    /// Returns [`OptError::InvalidConfig`] if the configuration is invalid;
    /// see [`LbfgsConfig::validate`].
    pub fn new(config: LbfgsConfig) -> crate::Result<Self> {
        config.validate()?;
        Ok(Lbfgs { config })
    }

    /// The active configuration.
    pub fn config(&self) -> &LbfgsConfig {
        &self.config
    }

    /// Minimizes `f`, which must write the gradient into its second argument
    /// and return the objective value. Returns the best `(x, f(x))` seen.
    pub fn minimize<F>(&self, x0: Vec<f64>, mut f: F) -> (Vec<f64>, f64)
    where
        F: FnMut(&[f64], &mut [f64]) -> f64,
    {
        let n = x0.len();
        let c = &self.config;
        let mut x = x0;
        let mut grad = vec![0.0; n];
        let mut fx = f(&x, &mut grad);
        if !fx.is_finite() {
            return (x, fx);
        }
        let mut best_x = x.clone();
        let mut best_f = fx;
        // (s, y, rho) curvature pairs, newest at the back.
        let mut pairs: VecDeque<(Vec<f64>, Vec<f64>, f64)> = VecDeque::new();

        for _ in 0..c.max_iters {
            let gmax = grad.iter().fold(0.0f64, |a, &g| a.max(g.abs()));
            if gmax < c.grad_tol || !gmax.is_finite() {
                break;
            }
            // Two-loop recursion: direction = -H grad.
            let mut q = grad.clone();
            let mut alphas = Vec::with_capacity(pairs.len());
            for (s, y, rho) in pairs.iter().rev() {
                let alpha = rho * dot(s, &q);
                axpy(&mut q, -alpha, y);
                alphas.push(alpha);
            }
            // Initial Hessian scaling gamma = s^T y / y^T y of the newest pair.
            if let Some((s, y, _)) = pairs.back() {
                let gamma = dot(s, y) / dot(y, y).max(1e-300);
                for qi in q.iter_mut() {
                    *qi *= gamma;
                }
            }
            for ((s, y, rho), alpha) in pairs.iter().zip(alphas.iter().rev()) {
                let beta = rho * dot(y, &q);
                axpy(&mut q, alpha - beta, s);
            }
            let mut dir: Vec<f64> = q.iter().map(|v| -v).collect();
            let mut dg = dot(&dir, &grad);
            if dg >= 0.0 || !dg.is_finite() {
                // Not a descent direction: reset to steepest descent.
                pairs.clear();
                dir = grad.iter().map(|g| -g).collect();
                dg = -dot(&grad, &grad);
                if dg == 0.0 {
                    break;
                }
            }

            // Weak-Wolfe bracketing line search (Lewis–Overton bisection).
            // The curvature condition guarantees s^T y > 0, which keeps the
            // quasi-Newton history valid — Armijo alone does not.
            let c2 = 0.9;
            let mut lo = 0.0f64;
            let mut hi = f64::INFINITY;
            let mut step = if pairs.is_empty() {
                // First iteration is raw steepest descent; temper the step so
                // a huge gradient does not launch the search into the void.
                1.0 / (1.0 + (-dg).sqrt())
            } else {
                1.0
            };
            let mut new_x = x.clone();
            let mut new_grad = vec![0.0; n];
            let mut new_f = f64::INFINITY;
            // Best Armijo-satisfying fallback if Wolfe is never satisfied.
            let mut fallback: Option<(Vec<f64>, Vec<f64>, f64)> = None;
            let mut ok = false;
            for _ in 0..c.max_line_search {
                for i in 0..n {
                    new_x[i] = x[i] + step * dir[i];
                }
                new_f = f(&new_x, &mut new_grad);
                let armijo = new_f.is_finite() && new_f <= fx + c.armijo_c * step * dg;
                if !armijo {
                    hi = step;
                    step = 0.5 * (lo + hi);
                } else if dot(&new_grad, &dir) < c2 * dg {
                    fallback = Some((new_x.clone(), new_grad.clone(), new_f));
                    lo = step;
                    step = if hi.is_finite() {
                        0.5 * (lo + hi)
                    } else {
                        2.0 * lo
                    };
                } else {
                    ok = true;
                    break;
                }
            }
            if !ok {
                match fallback {
                    Some((fx_, fg_, ff_)) => {
                        new_x = fx_;
                        new_grad = fg_;
                        new_f = ff_;
                    }
                    None => break,
                }
            }

            // Update curvature history.
            let s: Vec<f64> = new_x.iter().zip(x.iter()).map(|(a, b)| a - b).collect();
            let y: Vec<f64> = new_grad
                .iter()
                .zip(grad.iter())
                .map(|(a, b)| a - b)
                .collect();
            let sy = dot(&s, &y);
            if sy > 1e-12 * norm(&s) * norm(&y) {
                if pairs.len() == c.memory {
                    pairs.pop_front();
                }
                pairs.push_back((s, y.clone(), 1.0 / sy));
            }
            x = new_x.clone();
            grad = new_grad.clone();
            fx = new_f;
            if fx < best_f {
                best_f = fx;
                best_x.copy_from_slice(&x);
            }
        }
        (best_x, best_f)
    }
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b.iter()).map(|(x, y)| x * y).sum()
}

fn norm(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

fn axpy(dst: &mut [f64], alpha: f64, src: &[f64]) {
    for (d, s) in dst.iter_mut().zip(src.iter()) {
        *d += alpha * s;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solves_quadratic_exactly() {
        let lbfgs = Lbfgs::new(LbfgsConfig::default()).unwrap();
        let (x, fval) = lbfgs.minimize(vec![10.0, -7.0], |x, g| {
            g[0] = 2.0 * (x[0] - 4.0);
            g[1] = 8.0 * (x[1] - 1.0);
            (x[0] - 4.0).powi(2) + 4.0 * (x[1] - 1.0).powi(2)
        });
        assert!(fval < 1e-12);
        assert!((x[0] - 4.0).abs() < 1e-6);
        assert!((x[1] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn solves_rosenbrock() {
        let lbfgs = Lbfgs::new(LbfgsConfig {
            max_iters: 300,
            ..Default::default()
        })
        .unwrap();
        let (x, fval) = lbfgs.minimize(vec![-1.2, 1.0], |x, g| {
            let (a, b) = (x[0], x[1]);
            g[0] = -2.0 * (1.0 - a) - 400.0 * a * (b - a * a);
            g[1] = 200.0 * (b - a * a);
            (1.0 - a).powi(2) + 100.0 * (b - a * a).powi(2)
        });
        assert!(fval < 1e-10, "f = {fval}");
        assert!((x[0] - 1.0).abs() < 1e-4);
        assert!((x[1] - 1.0).abs() < 1e-4);
    }

    #[test]
    fn beats_adam_on_ill_conditioned_quadratic() {
        let hessian_diag = [1.0, 100.0, 10000.0];
        let obj = |x: &[f64], g: &mut [f64]| {
            let mut fx = 0.0;
            for i in 0..3 {
                fx += 0.5 * hessian_diag[i] * x[i] * x[i];
                g[i] = hessian_diag[i] * x[i];
            }
            fx
        };
        let lbfgs = Lbfgs::new(LbfgsConfig::default()).unwrap();
        let (_, f_lbfgs) = lbfgs.minimize(vec![1.0; 3], obj);
        assert!(f_lbfgs < 1e-10, "lbfgs stalled at {f_lbfgs}");
    }

    #[test]
    fn starts_at_optimum() {
        let lbfgs = Lbfgs::new(LbfgsConfig::default()).unwrap();
        let (x, fval) = lbfgs.minimize(vec![0.0], |x, g| {
            g[0] = 2.0 * x[0];
            x[0] * x[0]
        });
        assert_eq!(fval, 0.0);
        assert_eq!(x[0], 0.0);
    }

    #[test]
    fn returns_start_on_nan_objective() {
        let lbfgs = Lbfgs::new(LbfgsConfig::default()).unwrap();
        let (x, fval) = lbfgs.minimize(vec![1.0], |_, g| {
            g[0] = 0.0;
            f64::NAN
        });
        assert_eq!(x, vec![1.0]);
        assert!(fval.is_nan());
    }

    #[test]
    fn rejects_bad_config() {
        assert!(Lbfgs::new(LbfgsConfig {
            memory: 0,
            ..Default::default()
        })
        .is_err());
        assert!(Lbfgs::new(LbfgsConfig {
            backtrack: 1.0,
            ..Default::default()
        })
        .is_err());
    }
}
