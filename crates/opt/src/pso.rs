//! Particle swarm optimization — one of the classic simulation-based
//! sizing algorithms the paper's introduction surveys (refs. \[14\]–\[17\]).
//!
//! Standard global-best PSO with inertia weight and velocity clamping.

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::{Bounds, OptError};

/// Configuration for [`ParticleSwarm`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PsoConfig {
    /// Swarm size (default 30; at least 2).
    pub particles: usize,
    /// Inertia weight ω (default 0.72).
    pub inertia: f64,
    /// Cognitive coefficient c₁ (default 1.49).
    pub cognitive: f64,
    /// Social coefficient c₂ (default 1.49).
    pub social: f64,
    /// Velocity clamp as a fraction of each bound width (default 0.5).
    pub max_velocity: f64,
    /// Total objective-evaluation budget, including the initial swarm
    /// (default 10000).
    pub max_evals: usize,
}

impl Default for PsoConfig {
    fn default() -> Self {
        PsoConfig {
            particles: 30,
            inertia: 0.72,
            cognitive: 1.49,
            social: 1.49,
            max_velocity: 0.5,
            max_evals: 10_000,
        }
    }
}

impl PsoConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`OptError::InvalidConfig`] for a swarm below 2, non-positive
    /// coefficients, a velocity clamp outside `(0, 1]`, or a budget smaller
    /// than the swarm.
    pub fn validate(&self) -> crate::Result<()> {
        if self.particles < 2 {
            return Err(OptError::InvalidConfig {
                parameter: "particles",
                reason: format!("must be at least 2, got {}", self.particles),
            });
        }
        if !(self.inertia > 0.0 && self.inertia < 1.0) {
            return Err(OptError::InvalidConfig {
                parameter: "inertia",
                reason: format!("must be in (0, 1), got {}", self.inertia),
            });
        }
        for (name, v) in [("cognitive", self.cognitive), ("social", self.social)] {
            if v <= 0.0 {
                return Err(OptError::InvalidConfig {
                    parameter: name,
                    reason: format!("must be positive, got {v}"),
                });
            }
        }
        if !(self.max_velocity > 0.0 && self.max_velocity <= 1.0) {
            return Err(OptError::InvalidConfig {
                parameter: "max_velocity",
                reason: format!("must be in (0, 1], got {}", self.max_velocity),
            });
        }
        if self.max_evals < self.particles {
            return Err(OptError::InvalidConfig {
                parameter: "max_evals",
                reason: format!(
                    "budget {} smaller than swarm {}",
                    self.max_evals, self.particles
                ),
            });
        }
        Ok(())
    }
}

/// Outcome of a PSO run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PsoReport {
    /// Best design found.
    pub x: Vec<f64>,
    /// Objective value at `x` (maximization).
    pub value: f64,
    /// Objective evaluations used.
    pub evals: usize,
    /// Best-so-far value after each evaluation.
    pub history: Vec<f64>,
}

/// Global-best particle swarm **maximizer**.
///
/// # Example
///
/// ```
/// use easybo_opt::{Bounds, pso::{ParticleSwarm, PsoConfig}};
/// use rand::SeedableRng;
///
/// # fn main() -> Result<(), easybo_opt::OptError> {
/// let bounds = Bounds::new(vec![(-5.0, 5.0); 2])?;
/// let pso = ParticleSwarm::new(PsoConfig { max_evals: 3000, ..Default::default() })?;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let report = pso.maximize(&bounds, &mut rng, |x| -(x[0] * x[0] + x[1] * x[1]));
/// assert!(report.value > -1e-3);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ParticleSwarm {
    config: PsoConfig,
}

impl ParticleSwarm {
    /// Creates a PSO optimizer.
    ///
    /// # Errors
    ///
    /// Returns [`OptError::InvalidConfig`] if the configuration is invalid;
    /// see [`PsoConfig::validate`].
    pub fn new(config: PsoConfig) -> crate::Result<Self> {
        config.validate()?;
        Ok(ParticleSwarm { config })
    }

    /// The active configuration.
    pub fn config(&self) -> &PsoConfig {
        &self.config
    }

    /// Maximizes `f` over `bounds` within the evaluation budget.
    /// Non-finite objective values are treated as `-inf`.
    pub fn maximize<R, F>(&self, bounds: &Bounds, rng: &mut R, mut f: F) -> PsoReport
    where
        R: Rng + ?Sized,
        F: FnMut(&[f64]) -> f64,
    {
        let c = &self.config;
        let d = bounds.dim();
        let widths = bounds.widths();
        let vmax: Vec<f64> = widths.iter().map(|w| w * c.max_velocity).collect();

        let mut evals = 0usize;
        let mut history = Vec::with_capacity(c.max_evals);
        let mut gbest_x = bounds.center();
        let mut gbest_v = f64::NEG_INFINITY;

        let eval = |x: &[f64],
                    f: &mut F,
                    evals: &mut usize,
                    history: &mut Vec<f64>,
                    gbest_x: &mut Vec<f64>,
                    gbest_v: &mut f64|
         -> f64 {
            *evals += 1;
            let raw = f(x);
            let v = if raw.is_finite() {
                raw
            } else {
                f64::NEG_INFINITY
            };
            if v > *gbest_v {
                *gbest_v = v;
                gbest_x.clear();
                gbest_x.extend_from_slice(x);
            }
            history.push(*gbest_v);
            v
        };

        // Initialize swarm.
        let mut pos: Vec<Vec<f64>> = (0..c.particles)
            .map(|_| bounds.sample_uniform(rng))
            .collect();
        let mut vel: Vec<Vec<f64>> = (0..c.particles)
            .map(|_| (0..d).map(|j| rng.gen_range(-vmax[j]..vmax[j])).collect())
            .collect();
        let mut pbest: Vec<Vec<f64>> = pos.clone();
        let mut pbest_v: Vec<f64> = pos
            .iter()
            .map(|x| {
                eval(
                    x,
                    &mut f,
                    &mut evals,
                    &mut history,
                    &mut gbest_x,
                    &mut gbest_v,
                )
            })
            .collect();

        'outer: loop {
            for i in 0..c.particles {
                if evals >= c.max_evals {
                    break 'outer;
                }
                for j in 0..d {
                    let r1: f64 = rng.gen();
                    let r2: f64 = rng.gen();
                    vel[i][j] = c.inertia * vel[i][j]
                        + c.cognitive * r1 * (pbest[i][j] - pos[i][j])
                        + c.social * r2 * (gbest_x[j] - pos[i][j]);
                    vel[i][j] = vel[i][j].clamp(-vmax[j], vmax[j]);
                    pos[i][j] += vel[i][j];
                    // Reflect at the walls (kills boundary sticking).
                    let (lo, hi) = bounds.pair(j);
                    if pos[i][j] < lo {
                        pos[i][j] = lo + (lo - pos[i][j]).min(hi - lo);
                        vel[i][j] = -vel[i][j];
                    } else if pos[i][j] > hi {
                        pos[i][j] = hi - (pos[i][j] - hi).min(hi - lo);
                        vel[i][j] = -vel[i][j];
                    }
                }
                let v = eval(
                    &pos[i],
                    &mut f,
                    &mut evals,
                    &mut history,
                    &mut gbest_x,
                    &mut gbest_v,
                );
                if v > pbest_v[i] {
                    pbest_v[i] = v;
                    pbest[i] = pos[i].clone();
                }
            }
        }

        PsoReport {
            x: gbest_x,
            value: gbest_v,
            evals,
            history,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    #[test]
    fn maximizes_negative_sphere() {
        let bounds = Bounds::new(vec![(-5.0, 5.0); 3]).unwrap();
        let pso = ParticleSwarm::new(PsoConfig {
            max_evals: 6000,
            ..Default::default()
        })
        .unwrap();
        let r = pso.maximize(&bounds, &mut rng(1), |x| {
            -x.iter().map(|v| v * v).sum::<f64>()
        });
        assert!(r.value > -1e-4, "best {}", r.value);
    }

    #[test]
    fn history_is_monotone_and_budget_respected() {
        let bounds = Bounds::new(vec![(0.0, 1.0); 2]).unwrap();
        let pso = ParticleSwarm::new(PsoConfig {
            particles: 10,
            max_evals: 137,
            ..Default::default()
        })
        .unwrap();
        let r = pso.maximize(&bounds, &mut rng(2), |x| x[0] * x[1]);
        assert_eq!(r.evals, 137);
        assert_eq!(r.history.len(), 137);
        for w in r.history.windows(2) {
            assert!(w[1] >= w[0]);
        }
    }

    #[test]
    fn positions_stay_in_bounds() {
        let bounds = Bounds::new(vec![(-1.0, 0.0), (10.0, 11.0)]).unwrap();
        let pso = ParticleSwarm::new(PsoConfig {
            max_evals: 500,
            ..Default::default()
        })
        .unwrap();
        let mut violations = 0;
        let _ = pso.maximize(&bounds, &mut rng(3), |x| {
            if !bounds.contains(x) {
                violations += 1;
            }
            x[0] + x[1]
        });
        assert_eq!(violations, 0);
    }

    #[test]
    fn escapes_local_optimum_on_multimodal() {
        // Two peaks, taller at (2, 2): PSO should find it from random start.
        let bounds = Bounds::new(vec![(-4.0, 4.0); 2]).unwrap();
        let pso = ParticleSwarm::new(PsoConfig {
            max_evals: 4000,
            ..Default::default()
        })
        .unwrap();
        let r = pso.maximize(&bounds, &mut rng(4), |x| {
            0.7 * (-((x[0] + 2.0).powi(2) + (x[1] + 2.0).powi(2))).exp()
                + (-((x[0] - 2.0).powi(2) + (x[1] - 2.0).powi(2))).exp()
        });
        assert!((r.x[0] - 2.0).abs() < 0.3, "{:?}", r.x);
        assert!((r.x[1] - 2.0).abs() < 0.3, "{:?}", r.x);
    }

    #[test]
    fn handles_nan_regions() {
        let bounds = Bounds::new(vec![(-1.0, 1.0)]).unwrap();
        let pso = ParticleSwarm::new(PsoConfig {
            max_evals: 400,
            ..Default::default()
        })
        .unwrap();
        let r = pso.maximize(&bounds, &mut rng(5), |x| {
            if x[0] < 0.0 {
                f64::NAN
            } else {
                1.0 - x[0]
            }
        });
        assert!(r.value > 0.9);
    }

    #[test]
    fn rejects_bad_config() {
        assert!(ParticleSwarm::new(PsoConfig {
            particles: 1,
            ..Default::default()
        })
        .is_err());
        assert!(ParticleSwarm::new(PsoConfig {
            inertia: 1.0,
            ..Default::default()
        })
        .is_err());
        assert!(ParticleSwarm::new(PsoConfig {
            cognitive: 0.0,
            ..Default::default()
        })
        .is_err());
        assert!(ParticleSwarm::new(PsoConfig {
            max_velocity: 0.0,
            ..Default::default()
        })
        .is_err());
        assert!(ParticleSwarm::new(PsoConfig {
            particles: 30,
            max_evals: 10,
            ..Default::default()
        })
        .is_err());
    }
}
