use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::OptError;

/// A box-constrained design space: independent `[lower, upper]` intervals
/// per dimension.
///
/// All optimizers and samplers in this workspace operate on `Bounds`. The
/// Gaussian process additionally uses [`Bounds::to_unit`] /
/// [`Bounds::from_unit`] to standardize inputs onto the unit cube.
///
/// # Example
///
/// ```
/// use easybo_opt::Bounds;
///
/// # fn main() -> Result<(), easybo_opt::OptError> {
/// let b = Bounds::new(vec![(0.0, 10.0), (-1.0, 1.0)])?;
/// let u = b.to_unit(&[5.0, 0.0]);
/// assert_eq!(u, vec![0.5, 0.5]);
/// assert_eq!(b.from_unit(&u), vec![5.0, 0.0]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Bounds {
    pairs: Vec<(f64, f64)>,
}

impl Bounds {
    /// Creates a design space from `(lower, upper)` pairs.
    ///
    /// # Errors
    ///
    /// * [`OptError::EmptySpace`] if `pairs` is empty.
    /// * [`OptError::InvalidBounds`] if any pair has `lower >= upper` or a
    ///   non-finite endpoint.
    pub fn new(pairs: Vec<(f64, f64)>) -> crate::Result<Self> {
        if pairs.is_empty() {
            return Err(OptError::EmptySpace);
        }
        for (i, &(lo, hi)) in pairs.iter().enumerate() {
            if !(lo.is_finite() && hi.is_finite()) || lo >= hi {
                return Err(OptError::InvalidBounds {
                    dim: i,
                    lower: lo,
                    upper: hi,
                });
            }
        }
        Ok(Bounds { pairs })
    }

    /// The `d`-dimensional unit cube `[0, 1]^d`.
    ///
    /// # Errors
    ///
    /// Returns [`OptError::EmptySpace`] if `dim == 0`.
    pub fn unit_cube(dim: usize) -> crate::Result<Self> {
        Bounds::new(vec![(0.0, 1.0); dim])
    }

    /// Number of dimensions.
    pub fn dim(&self) -> usize {
        self.pairs.len()
    }

    /// The `(lower, upper)` pair for dimension `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= dim()`.
    pub fn pair(&self, i: usize) -> (f64, f64) {
        self.pairs[i]
    }

    /// All `(lower, upper)` pairs.
    pub fn pairs(&self) -> &[(f64, f64)] {
        &self.pairs
    }

    /// Lower corner of the box.
    pub fn lower(&self) -> Vec<f64> {
        self.pairs.iter().map(|&(lo, _)| lo).collect()
    }

    /// Upper corner of the box.
    pub fn upper(&self) -> Vec<f64> {
        self.pairs.iter().map(|&(_, hi)| hi).collect()
    }

    /// Width of each interval.
    pub fn widths(&self) -> Vec<f64> {
        self.pairs.iter().map(|&(lo, hi)| hi - lo).collect()
    }

    /// Whether `x` lies inside the box (inclusive).
    ///
    /// Points of the wrong dimensionality are reported as outside rather
    /// than panicking, so this can be used for validation.
    pub fn contains(&self, x: &[f64]) -> bool {
        x.len() == self.dim()
            && x.iter()
                .zip(self.pairs.iter())
                .all(|(&v, &(lo, hi))| v >= lo && v <= hi)
    }

    /// Projects `x` onto the box, clamping each coordinate.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != dim()`.
    pub fn clamp(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.dim(), "clamp dimension mismatch");
        x.iter()
            .zip(self.pairs.iter())
            .map(|(&v, &(lo, hi))| v.clamp(lo, hi))
            .collect()
    }

    /// Maps a point from this box to the unit cube.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != dim()`.
    pub fn to_unit(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.dim(), "to_unit dimension mismatch");
        x.iter()
            .zip(self.pairs.iter())
            .map(|(&v, &(lo, hi))| (v - lo) / (hi - lo))
            .collect()
    }

    /// Maps a unit-cube point into this box.
    ///
    /// # Panics
    ///
    /// Panics if `u.len() != dim()`.
    pub fn from_unit(&self, u: &[f64]) -> Vec<f64> {
        assert_eq!(u.len(), self.dim(), "from_unit dimension mismatch");
        u.iter()
            .zip(self.pairs.iter())
            .map(|(&t, &(lo, hi))| lo + t * (hi - lo))
            .collect()
    }

    /// Draws one uniform random point inside the box.
    pub fn sample_uniform<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<f64> {
        self.pairs
            .iter()
            .map(|&(lo, hi)| rng.gen_range(lo..hi))
            .collect()
    }

    /// Center of the box.
    pub fn center(&self) -> Vec<f64> {
        self.pairs.iter().map(|&(lo, hi)| 0.5 * (lo + hi)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::SeedableRng;

    #[test]
    fn rejects_empty_and_inverted() {
        assert_eq!(Bounds::new(vec![]).unwrap_err(), OptError::EmptySpace);
        assert!(matches!(
            Bounds::new(vec![(1.0, 1.0)]),
            Err(OptError::InvalidBounds { dim: 0, .. })
        ));
        assert!(matches!(
            Bounds::new(vec![(0.0, 1.0), (2.0, -2.0)]),
            Err(OptError::InvalidBounds { dim: 1, .. })
        ));
        assert!(Bounds::new(vec![(0.0, f64::INFINITY)]).is_err());
    }

    #[test]
    fn accessors() {
        let b = Bounds::new(vec![(0.0, 2.0), (-1.0, 3.0)]).unwrap();
        assert_eq!(b.dim(), 2);
        assert_eq!(b.pair(1), (-1.0, 3.0));
        assert_eq!(b.lower(), vec![0.0, -1.0]);
        assert_eq!(b.upper(), vec![2.0, 3.0]);
        assert_eq!(b.widths(), vec![2.0, 4.0]);
        assert_eq!(b.center(), vec![1.0, 1.0]);
    }

    #[test]
    fn contains_and_clamp() {
        let b = Bounds::new(vec![(0.0, 1.0), (0.0, 1.0)]).unwrap();
        assert!(b.contains(&[0.0, 1.0]));
        assert!(!b.contains(&[1.1, 0.5]));
        assert!(!b.contains(&[0.5])); // wrong dim: outside, not panic
        assert_eq!(b.clamp(&[-0.5, 2.0]), vec![0.0, 1.0]);
    }

    #[test]
    fn unit_mapping_round_trip() {
        let b = Bounds::new(vec![(-10.0, 10.0), (5.0, 6.0)]).unwrap();
        let x = vec![3.0, 5.25];
        let u = b.to_unit(&x);
        assert!((u[0] - 0.65).abs() < 1e-15);
        assert!((u[1] - 0.25).abs() < 1e-15);
        let back = b.from_unit(&u);
        assert!((back[0] - x[0]).abs() < 1e-12);
        assert!((back[1] - x[1]).abs() < 1e-12);
    }

    #[test]
    fn uniform_samples_stay_inside() {
        let b = Bounds::new(vec![(-2.0, -1.0), (100.0, 101.0)]).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        for _ in 0..100 {
            assert!(b.contains(&b.sample_uniform(&mut rng)));
        }
    }

    proptest! {
        #[test]
        fn prop_round_trip(lo in -1e3..0.0f64, w in 0.1..1e3f64, t in 0.0..1.0f64) {
            let b = Bounds::new(vec![(lo, lo + w)]).unwrap();
            let x = vec![lo + t * w];
            let u = b.to_unit(&x);
            let back = b.from_unit(&u);
            prop_assert!((back[0] - x[0]).abs() < 1e-9 * (1.0 + x[0].abs()));
        }

        #[test]
        fn prop_clamp_idempotent(lo in -10.0..0.0f64, w in 0.1..10.0f64, v in -100.0..100.0f64) {
            let b = Bounds::new(vec![(lo, lo + w)]).unwrap();
            let once = b.clamp(&[v]);
            let twice = b.clamp(&once);
            prop_assert_eq!(&once, &twice);
            prop_assert!(b.contains(&once));
        }
    }
}
