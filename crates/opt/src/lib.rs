//! Design-space sampling and derivative-free/gradient optimizers for the
//! EasyBO stack.
//!
//! This crate supplies everything the Bayesian-optimization core needs to
//! (a) draw space-filling initial designs, (b) maximize acquisition
//! functions, and (c) run the paper's differential-evolution baseline:
//!
//! * [`Bounds`] — a box-constrained design space with unit-cube scaling.
//! * [`sampling`] — Latin hypercube, Sobol and uniform random designs.
//! * [`de`] — differential evolution (DE/rand/1/bin), the paper's DE baseline.
//! * [`pso`] / [`annealing`] / [`cmaes`] — the other classic simulation-based
//!   sizing algorithms the paper's introduction surveys (PSO, SA) plus
//!   CMA-ES as a modern representative.
//! * [`nelder_mead`] — bounded Nelder–Mead simplex local refinement.
//! * [`adam`] / [`lbfgs`] — first-order optimizers for smooth objectives
//!   (used for GP hyperparameter training).
//! * [`multistart`] — the random-restart acquisition maximizer.
//!
//! # Example
//!
//! ```
//! use easybo_opt::{Bounds, multistart::MultiStartMaximizer};
//! use rand::SeedableRng;
//!
//! # fn main() -> Result<(), easybo_opt::OptError> {
//! let bounds = Bounds::unit_cube(2)?;
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let maximizer = MultiStartMaximizer::new(256, 4, 60);
//! // Maximize a smooth unimodal function over the unit square.
//! let best = maximizer.maximize(&bounds, &mut rng, |x| {
//!     -((x[0] - 0.3).powi(2) + (x[1] - 0.7).powi(2))
//! });
//! assert!((best.x[0] - 0.3).abs() < 1e-3);
//! assert!((best.x[1] - 0.7).abs() < 1e-3);
//! # Ok(())
//! # }
//! ```

pub mod adam;
pub mod annealing;
pub mod bounds;
pub mod cmaes;
pub mod de;
pub mod error;
pub mod lbfgs;
pub mod multistart;
pub mod nelder_mead;
pub mod parallel;
pub mod pso;
pub mod sampling;

pub use adam::{Adam, AdamConfig};
pub use annealing::{SaConfig, SimulatedAnnealing};
pub use bounds::Bounds;
pub use cmaes::{CmaEs, CmaEsConfig};
pub use de::{DeConfig, DeReport, DifferentialEvolution};
pub use error::OptError;
pub use lbfgs::{Lbfgs, LbfgsConfig};
pub use multistart::{BatchObjective, MultiStartMaximizer, Optimum};
pub use nelder_mead::{NelderMead, NelderMeadConfig};
pub use parallel::{parallel_map, split_seeds, Parallelism};
pub use pso::{ParticleSwarm, PsoConfig};

/// Convenience result alias used across the crate.
pub type Result<T> = std::result::Result<T, OptError>;
