//! CMA-ES (covariance matrix adaptation evolution strategy) — a strong
//! modern representative of the simulation-based sizing family, provided
//! as an additional baseline beyond the paper's DE.
//!
//! This is the standard (µ/µ_w, λ) CMA-ES with cumulative step-size
//! adaptation, using a per-generation Cholesky factor of the covariance
//! both for sampling (`x = m + σ·A·z`) and for the σ-path whitening
//! (`A⁻¹·y ~ N(0, I)` for `y ~ N(0, C)`, so the path-norm statistics the
//! CSA rule relies on are exact).

use easybo_linalg::{Cholesky, Matrix, Vector};
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::{Bounds, OptError};

/// Configuration for [`CmaEs`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CmaEsConfig {
    /// Population size λ (0 ⇒ the standard `4 + ⌊3·ln d⌋`).
    pub population: usize,
    /// Initial step size as a fraction of the bound widths (default 0.3).
    pub sigma0: f64,
    /// Total objective-evaluation budget (default 10000).
    pub max_evals: usize,
}

impl Default for CmaEsConfig {
    fn default() -> Self {
        CmaEsConfig {
            population: 0,
            sigma0: 0.3,
            max_evals: 10_000,
        }
    }
}

impl CmaEsConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`OptError::InvalidConfig`] for a σ₀ outside `(0, 1]` or a
    /// budget below 4.
    pub fn validate(&self) -> crate::Result<()> {
        if !(self.sigma0 > 0.0 && self.sigma0 <= 1.0) {
            return Err(OptError::InvalidConfig {
                parameter: "sigma0",
                reason: format!("must be in (0, 1], got {}", self.sigma0),
            });
        }
        if self.max_evals < 4 {
            return Err(OptError::InvalidConfig {
                parameter: "max_evals",
                reason: "must be at least 4".into(),
            });
        }
        Ok(())
    }
}

/// Outcome of a CMA-ES run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CmaEsReport {
    /// Best design found.
    pub x: Vec<f64>,
    /// Objective value at `x` (maximization).
    pub value: f64,
    /// Objective evaluations used.
    pub evals: usize,
    /// Best-so-far value after each evaluation.
    pub history: Vec<f64>,
}

/// CMA-ES **maximizer** over a box-constrained space (candidates are
/// clamped to the box before evaluation).
///
/// # Example
///
/// ```
/// use easybo_opt::{Bounds, cmaes::{CmaEs, CmaEsConfig}};
/// use rand::SeedableRng;
///
/// # fn main() -> Result<(), easybo_opt::OptError> {
/// let bounds = Bounds::new(vec![(-5.0, 5.0); 2])?;
/// let cma = CmaEs::new(CmaEsConfig { max_evals: 2000, ..Default::default() })?;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(3);
/// let report = cma.maximize(&bounds, &mut rng, |x| -(x[0] * x[0] + x[1] * x[1]));
/// assert!(report.value > -1e-6);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CmaEs {
    config: CmaEsConfig,
}

impl CmaEs {
    /// Creates a CMA-ES optimizer.
    ///
    /// # Errors
    ///
    /// Returns [`OptError::InvalidConfig`] if the configuration is invalid;
    /// see [`CmaEsConfig::validate`].
    pub fn new(config: CmaEsConfig) -> crate::Result<Self> {
        config.validate()?;
        Ok(CmaEs { config })
    }

    /// The active configuration.
    pub fn config(&self) -> &CmaEsConfig {
        &self.config
    }

    /// Maximizes `f` over `bounds` within the evaluation budget.
    /// Non-finite objective values are treated as `-inf`.
    pub fn maximize<R, F>(&self, bounds: &Bounds, rng: &mut R, mut f: F) -> CmaEsReport
    where
        R: Rng + ?Sized,
        F: FnMut(&[f64]) -> f64,
    {
        let d = bounds.dim();
        let c = &self.config;
        // Work in unit-cube coordinates so sigma is dimensionless.
        let lambda = if c.population >= 4 {
            c.population
        } else {
            4 + (3.0 * (d as f64).ln()).floor() as usize
        };
        let mu = lambda / 2;
        // Log-decreasing recombination weights.
        let raw: Vec<f64> = (0..mu)
            .map(|i| ((lambda as f64 + 1.0) / 2.0).ln() - ((i + 1) as f64).ln())
            .collect();
        let wsum: f64 = raw.iter().sum();
        let weights: Vec<f64> = raw.iter().map(|w| w / wsum).collect();
        let mu_eff = 1.0 / weights.iter().map(|w| w * w).sum::<f64>();

        // Standard strategy constants.
        let dn = d as f64;
        let cc = (4.0 + mu_eff / dn) / (dn + 4.0 + 2.0 * mu_eff / dn);
        let cs = (mu_eff + 2.0) / (dn + mu_eff + 5.0);
        let c1 = 2.0 / ((dn + 1.3).powi(2) + mu_eff);
        let cmu =
            (1.0 - c1).min(2.0 * (mu_eff - 2.0 + 1.0 / mu_eff) / ((dn + 2.0).powi(2) + mu_eff));
        let damps = 1.0 + 2.0 * ((mu_eff - 1.0) / (dn + 1.0)).sqrt().max(0.0) + cs;
        let chi_n = dn.sqrt() * (1.0 - 1.0 / (4.0 * dn) + 1.0 / (21.0 * dn * dn));

        // State.
        let mut mean = Vector::from(vec![0.5; d]); // unit-cube center
        let mut sigma = c.sigma0;
        let mut cov = Matrix::identity(d);
        let mut pc = Vector::zeros(d);
        let mut ps = Vector::zeros(d);

        let mut evals = 0usize;
        let mut history = Vec::with_capacity(c.max_evals);
        let mut best_x = bounds.center();
        let mut best_v = f64::NEG_INFINITY;

        while evals < c.max_evals {
            let chol = match Cholesky::new(&cov) {
                Ok(ch) => ch,
                Err(_) => {
                    // Covariance degenerated: restart it.
                    cov = Matrix::identity(d);
                    Cholesky::new(&cov).expect("identity is SPD")
                }
            };
            let a = chol.factor().clone();

            // Sample, clamp, evaluate.
            let mut gen: Vec<(Vector, Vec<f64>, f64)> = Vec::with_capacity(lambda);
            for _ in 0..lambda {
                if evals >= c.max_evals {
                    break;
                }
                let z = Vector::from_iter((0..d).map(|_| gaussian(rng)));
                let mut y = Vector::zeros(d);
                for i in 0..d {
                    let mut acc = 0.0;
                    for k in 0..=i {
                        acc += a[(i, k)] * z[k];
                    }
                    y[i] = acc;
                }
                let u: Vec<f64> = (0..d)
                    .map(|i| (mean[i] + sigma * y[i]).clamp(0.0, 1.0))
                    .collect();
                let x = bounds.from_unit(&u);
                let raw = f(&x);
                let v = if raw.is_finite() {
                    raw
                } else {
                    f64::NEG_INFINITY
                };
                evals += 1;
                if v > best_v {
                    best_v = v;
                    best_x = x.clone();
                }
                history.push(best_v);
                // Store the *clamped* displacement so the update matches
                // what was actually evaluated.
                let y_eff = Vector::from_iter((0..d).map(|i| (u[i] - mean[i]) / sigma.max(1e-12)));
                gen.push((y_eff, u, v));
            }
            if gen.len() < 2 {
                break;
            }
            // Rank by fitness (maximization: best first).
            gen.sort_by(|p, q| q.2.total_cmp(&p.2));
            let mu_now = mu.min(gen.len());

            // Recombine.
            let old_mean = mean.clone();
            let mut y_w = Vector::zeros(d);
            for (i, w) in weights.iter().take(mu_now).enumerate() {
                y_w.axpy(*w, &gen[i].0);
            }
            for i in 0..d {
                mean[i] = (old_mean[i] + sigma * y_w[i]).clamp(0.0, 1.0);
            }

            // Step-size path (whitened displacement).
            let wz = chol.solve_lower(&y_w);
            let k_s = (cs * (2.0 - cs) * mu_eff).sqrt();
            for i in 0..d {
                ps[i] = (1.0 - cs) * ps[i] + k_s * wz[i];
            }
            sigma *= ((cs / damps) * (ps.norm() / chi_n - 1.0)).exp();
            sigma = sigma.clamp(1e-8, 1.0);

            // Covariance path and rank-1/rank-µ update.
            let hsig =
                ps.norm() / (1.0 - (1.0 - cs).powi(2)).sqrt() / chi_n < 1.4 + 2.0 / (dn + 1.0);
            let k_c = (cc * (2.0 - cc) * mu_eff).sqrt();
            for i in 0..d {
                pc[i] = (1.0 - cc) * pc[i] + if hsig { k_c * y_w[i] } else { 0.0 };
            }
            let mut new_cov = cov.scaled(1.0 - c1 - cmu);
            for i in 0..d {
                for j in 0..d {
                    new_cov[(i, j)] += c1 * pc[i] * pc[j];
                }
            }
            for (k, w) in weights.iter().take(mu_now).enumerate() {
                let yk = &gen[k].0;
                for i in 0..d {
                    for j in 0..d {
                        new_cov[(i, j)] += cmu * w * yk[i] * yk[j];
                    }
                }
            }
            cov = new_cov;
        }

        CmaEsReport {
            x: best_x,
            value: best_v,
            evals,
            history,
        }
    }
}

/// Box–Muller standard normal draw.
fn gaussian<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(1e-12..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    #[test]
    fn solves_sphere_precisely() {
        let bounds = Bounds::new(vec![(-5.0, 5.0); 4]).unwrap();
        let cma = CmaEs::new(CmaEsConfig {
            max_evals: 4000,
            ..Default::default()
        })
        .unwrap();
        let r = cma.maximize(&bounds, &mut rng(1), |x| {
            -x.iter().map(|v| v * v).sum::<f64>()
        });
        assert!(r.value > -1e-6, "best {}", r.value);
    }

    #[test]
    fn handles_rotated_ellipsoid() {
        // Strongly correlated quadratic: CMA-ES's home turf.
        let bounds = Bounds::new(vec![(-3.0, 3.0); 3]).unwrap();
        let cma = CmaEs::new(CmaEsConfig {
            max_evals: 6000,
            ..Default::default()
        })
        .unwrap();
        let r = cma.maximize(&bounds, &mut rng(2), |x| {
            let a = x[0] + 0.9 * x[1];
            let b = x[1] - 0.8 * x[2];
            let c = x[2] + 0.7 * x[0];
            -(25.0 * a * a + b * b + 9.0 * c * c)
        });
        assert!(r.value > -1e-3, "best {}", r.value);
    }

    #[test]
    fn budget_and_history_monotone() {
        let bounds = Bounds::new(vec![(0.0, 1.0); 2]).unwrap();
        let cma = CmaEs::new(CmaEsConfig {
            max_evals: 101,
            ..Default::default()
        })
        .unwrap();
        let r = cma.maximize(&bounds, &mut rng(3), |x| x[0] + x[1]);
        assert!(r.evals <= 101);
        assert_eq!(r.history.len(), r.evals);
        for w in r.history.windows(2) {
            assert!(w[1] >= w[0]);
        }
    }

    #[test]
    fn candidates_stay_in_bounds() {
        let bounds = Bounds::new(vec![(10.0, 11.0), (-2.0, -1.0)]).unwrap();
        let cma = CmaEs::new(CmaEsConfig {
            max_evals: 600,
            ..Default::default()
        })
        .unwrap();
        let mut violations = 0;
        let _ = cma.maximize(&bounds, &mut rng(4), |x| {
            if !bounds.contains(x) {
                violations += 1;
            }
            -(x[0] - 10.5f64).powi(2) - (x[1] + 1.5f64).powi(2)
        });
        assert_eq!(violations, 0);
    }

    #[test]
    fn survives_nan_objective() {
        let bounds = Bounds::new(vec![(-1.0, 1.0)]).unwrap();
        let cma = CmaEs::new(CmaEsConfig {
            max_evals: 300,
            ..Default::default()
        })
        .unwrap();
        let r = cma.maximize(&bounds, &mut rng(5), |x| {
            if x[0] < -0.5 {
                f64::NAN
            } else {
                -(x[0] - 0.3f64).powi(2)
            }
        });
        assert!(r.value > -0.01, "best {}", r.value);
    }

    #[test]
    fn default_population_scales_with_dimension() {
        // Indirect check: tiny budgets still produce at least one full
        // generation in low dimension.
        let bounds = Bounds::new(vec![(0.0, 1.0); 2]).unwrap();
        let cma = CmaEs::new(CmaEsConfig {
            max_evals: 8,
            ..Default::default()
        })
        .unwrap();
        let r = cma.maximize(&bounds, &mut rng(6), |x| x[0]);
        assert!(r.evals >= 4);
    }

    #[test]
    fn rejects_bad_config() {
        assert!(CmaEs::new(CmaEsConfig {
            sigma0: 0.0,
            ..Default::default()
        })
        .is_err());
        assert!(CmaEs::new(CmaEsConfig {
            max_evals: 3,
            ..Default::default()
        })
        .is_err());
    }
}
