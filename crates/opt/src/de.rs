//! Differential evolution (DE/rand/1/bin) — the paper's simulation-based
//! baseline (\[13\] in the reference list).
//!
//! The paper runs DE for 20000 (op-amp) / 15000 (class-E) simulations and
//! reports that BO-based methods reach better optima with orders of
//! magnitude fewer evaluations. This implementation is a faithful classic
//! DE with bounce-back bound handling and a maximum-evaluation budget.

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::{Bounds, OptError};

/// Configuration for [`DifferentialEvolution`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeConfig {
    /// Population size (default 40; clipped to at least 4).
    pub population: usize,
    /// Differential weight `F` in `(0, 2]` (default 0.6).
    pub weight: f64,
    /// Crossover probability `CR` in `[0, 1]` (default 0.9).
    pub crossover: f64,
    /// Total objective-evaluation budget, including the initial population
    /// (default 10000).
    pub max_evals: usize,
}

impl Default for DeConfig {
    fn default() -> Self {
        DeConfig {
            population: 40,
            weight: 0.6,
            crossover: 0.9,
            max_evals: 10_000,
        }
    }
}

impl DeConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`OptError::InvalidConfig`] for a population below 4, a
    /// weight outside `(0, 2]`, a crossover outside `[0, 1]`, or a budget
    /// smaller than the population.
    pub fn validate(&self) -> crate::Result<()> {
        if self.population < 4 {
            return Err(OptError::InvalidConfig {
                parameter: "population",
                reason: format!("must be at least 4, got {}", self.population),
            });
        }
        if !(self.weight > 0.0 && self.weight <= 2.0) {
            return Err(OptError::InvalidConfig {
                parameter: "weight",
                reason: format!("must be in (0, 2], got {}", self.weight),
            });
        }
        if !(0.0..=1.0).contains(&self.crossover) {
            return Err(OptError::InvalidConfig {
                parameter: "crossover",
                reason: format!("must be in [0, 1], got {}", self.crossover),
            });
        }
        if self.max_evals < self.population {
            return Err(OptError::InvalidConfig {
                parameter: "max_evals",
                reason: format!(
                    "budget {} smaller than population {}",
                    self.max_evals, self.population
                ),
            });
        }
        Ok(())
    }
}

/// Outcome of a DE run: the best point, its objective value, and the number
/// of objective evaluations consumed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeReport {
    /// Best design found.
    pub x: Vec<f64>,
    /// Objective value at `x` (maximization).
    pub value: f64,
    /// Objective evaluations actually used.
    pub evals: usize,
    /// Best-so-far value after each evaluation (for convergence plots).
    pub history: Vec<f64>,
}

/// Classic DE/rand/1/bin **maximizer** over a box-constrained space.
///
/// # Example
///
/// ```
/// use easybo_opt::{Bounds, DeConfig, DifferentialEvolution};
/// use rand::SeedableRng;
///
/// # fn main() -> Result<(), easybo_opt::OptError> {
/// let bounds = Bounds::new(vec![(-5.0, 5.0); 2])?;
/// let de = DifferentialEvolution::new(DeConfig {
///     max_evals: 4000,
///     ..Default::default()
/// })?;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(3);
/// // Maximize the negated sphere: optimum 0 at the origin.
/// let report = de.maximize(&bounds, &mut rng, |x| -(x[0] * x[0] + x[1] * x[1]));
/// assert!(report.value > -1e-4);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DifferentialEvolution {
    config: DeConfig,
}

impl DifferentialEvolution {
    /// Creates a DE optimizer.
    ///
    /// # Errors
    ///
    /// Returns [`OptError::InvalidConfig`] if the configuration is invalid;
    /// see [`DeConfig::validate`].
    pub fn new(config: DeConfig) -> crate::Result<Self> {
        config.validate()?;
        Ok(DifferentialEvolution { config })
    }

    /// The active configuration.
    pub fn config(&self) -> &DeConfig {
        &self.config
    }

    /// Maximizes `f` over `bounds` within the evaluation budget.
    ///
    /// Non-finite objective values are treated as `-inf`.
    pub fn maximize<R, F>(&self, bounds: &Bounds, rng: &mut R, mut f: F) -> DeReport
    where
        R: Rng + ?Sized,
        F: FnMut(&[f64]) -> f64,
    {
        let c = &self.config;
        let np = c.population;
        let d = bounds.dim();
        let mut evals = 0usize;
        let mut history = Vec::with_capacity(c.max_evals);
        let mut best_val = f64::NEG_INFINITY;
        let mut best_x = bounds.center();
        let eval = |x: &[f64],
                    f: &mut F,
                    evals: &mut usize,
                    history: &mut Vec<f64>,
                    best_val: &mut f64,
                    best_x: &mut Vec<f64>|
         -> f64 {
            *evals += 1;
            let raw = f(x);
            let v = if raw.is_finite() {
                raw
            } else {
                f64::NEG_INFINITY
            };
            if v > *best_val {
                *best_val = v;
                best_x.clear();
                best_x.extend_from_slice(x);
            }
            history.push(*best_val);
            v
        };

        // Initial population.
        let mut pop: Vec<Vec<f64>> = (0..np).map(|_| bounds.sample_uniform(rng)).collect();
        let mut fitness: Vec<f64> = pop
            .iter()
            .map(|x| {
                eval(
                    x,
                    &mut f,
                    &mut evals,
                    &mut history,
                    &mut best_val,
                    &mut best_x,
                )
            })
            .collect();

        'outer: loop {
            for i in 0..np {
                if evals >= c.max_evals {
                    break 'outer;
                }
                // Pick three distinct indices, all different from i.
                let (a, b, cc) = pick_three(np, i, rng);
                let jrand = rng.gen_range(0..d);
                let mut trial = pop[i].clone();
                for j in 0..d {
                    if j == jrand || rng.gen::<f64>() < c.crossover {
                        let v = pop[a][j] + c.weight * (pop[b][j] - pop[cc][j]);
                        let (lo, hi) = bounds.pair(j);
                        // Bounce-back: reflect out-of-bounds mutants between
                        // the base vector and the violated bound.
                        trial[j] = if v < lo {
                            lo + rng.gen::<f64>() * (pop[a][j] - lo).max(0.0)
                        } else if v > hi {
                            hi - rng.gen::<f64>() * (hi - pop[a][j]).max(0.0)
                        } else {
                            v
                        };
                    }
                }
                let ft = eval(
                    &trial,
                    &mut f,
                    &mut evals,
                    &mut history,
                    &mut best_val,
                    &mut best_x,
                );
                if ft >= fitness[i] {
                    pop[i] = trial;
                    fitness[i] = ft;
                }
            }
        }

        DeReport {
            x: best_x,
            value: best_val,
            evals,
            history,
        }
    }
}

/// Draws three distinct population indices, all different from `i`.
fn pick_three<R: Rng + ?Sized>(np: usize, i: usize, rng: &mut R) -> (usize, usize, usize) {
    debug_assert!(np >= 4);
    let mut pick = |exclude: &[usize]| loop {
        let k = rng.gen_range(0..np);
        if !exclude.contains(&k) {
            return k;
        }
    };
    let a = pick(&[i]);
    let b = pick(&[i, a]);
    let c = pick(&[i, a, b]);
    (a, b, c)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    #[test]
    fn maximizes_negative_sphere() {
        let bounds = Bounds::new(vec![(-5.0, 5.0); 3]).unwrap();
        let de = DifferentialEvolution::new(DeConfig {
            max_evals: 6000,
            ..Default::default()
        })
        .unwrap();
        let report = de.maximize(&bounds, &mut rng(1), |x| {
            -x.iter().map(|v| v * v).sum::<f64>()
        });
        assert!(report.value > -1e-6, "best = {}", report.value);
        assert!(report.evals <= 6000);
    }

    #[test]
    fn history_is_monotone_nondecreasing() {
        let bounds = Bounds::new(vec![(-2.0, 2.0); 2]).unwrap();
        let de = DifferentialEvolution::new(DeConfig {
            max_evals: 500,
            ..Default::default()
        })
        .unwrap();
        let report = de.maximize(&bounds, &mut rng(2), |x| -(x[0].powi(2) + x[1].powi(2)));
        assert_eq!(report.history.len(), report.evals);
        for w in report.history.windows(2) {
            assert!(w[1] >= w[0]);
        }
        assert_eq!(*report.history.last().unwrap(), report.value);
    }

    #[test]
    fn respects_budget_exactly() {
        let bounds = Bounds::new(vec![(0.0, 1.0)]).unwrap();
        let de = DifferentialEvolution::new(DeConfig {
            population: 10,
            max_evals: 57,
            ..Default::default()
        })
        .unwrap();
        let mut calls = 0usize;
        let report = de.maximize(&bounds, &mut rng(3), |x| {
            calls += 1;
            x[0]
        });
        assert_eq!(calls, 57);
        assert_eq!(report.evals, 57);
    }

    #[test]
    fn all_candidates_inside_bounds() {
        let bounds = Bounds::new(vec![(-1.0, 0.0), (10.0, 11.0)]).unwrap();
        let de = DifferentialEvolution::new(DeConfig {
            max_evals: 400,
            ..Default::default()
        })
        .unwrap();
        let mut violations = 0usize;
        let _ = de.maximize(&bounds, &mut rng(4), |x| {
            if !bounds.contains(x) {
                violations += 1;
            }
            x[0] + x[1]
        });
        assert_eq!(violations, 0);
    }

    #[test]
    fn finds_multimodal_peak() {
        // Rastrigin-style (negated): global max 0 at origin, many local traps.
        let bounds = Bounds::new(vec![(-5.12, 5.12); 2]).unwrap();
        let de = DifferentialEvolution::new(DeConfig {
            max_evals: 12_000,
            population: 30,
            ..Default::default()
        })
        .unwrap();
        let report = de.maximize(&bounds, &mut rng(5), |x| {
            -(20.0
                + x.iter()
                    .map(|v| v * v - 10.0 * (2.0 * std::f64::consts::PI * v).cos())
                    .sum::<f64>())
        });
        assert!(report.value > -1.0, "stuck at {}", report.value);
    }

    #[test]
    fn handles_nan_objective_regions() {
        let bounds = Bounds::new(vec![(-1.0, 1.0)]).unwrap();
        let de = DifferentialEvolution::new(DeConfig {
            max_evals: 300,
            ..Default::default()
        })
        .unwrap();
        let report = de.maximize(&bounds, &mut rng(6), |x| {
            if x[0] < 0.0 {
                f64::NAN
            } else {
                1.0 - x[0]
            }
        });
        assert!(report.value.is_finite());
        assert!(report.value > 0.9);
    }

    #[test]
    fn rejects_bad_config() {
        assert!(DifferentialEvolution::new(DeConfig {
            population: 3,
            ..Default::default()
        })
        .is_err());
        assert!(DifferentialEvolution::new(DeConfig {
            weight: 0.0,
            ..Default::default()
        })
        .is_err());
        assert!(DifferentialEvolution::new(DeConfig {
            crossover: 1.5,
            ..Default::default()
        })
        .is_err());
        assert!(DifferentialEvolution::new(DeConfig {
            population: 40,
            max_evals: 10,
            ..Default::default()
        })
        .is_err());
    }

    #[test]
    fn pick_three_distinct() {
        let mut r = rng(7);
        for i in 0..8 {
            let (a, b, c) = pick_three(8, i, &mut r);
            assert!(a != i && b != i && c != i);
            assert!(a != b && b != c && a != c);
        }
    }
}
