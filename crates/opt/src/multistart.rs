//! Multi-start acquisition maximizer: dense random probing followed by
//! Nelder–Mead refinement of the top seeds.
//!
//! Acquisition surfaces are cheap to evaluate (a GP posterior lookup) but
//! multimodal; the standard recipe — and the one used throughout this
//! reproduction — is to scatter a large number of probes, keep the best few,
//! and polish each with a local derivative-free search.

use easybo_telemetry::Telemetry;
use rand::Rng;

use crate::nelder_mead::{NelderMead, NelderMeadConfig};
use crate::parallel::{self, Parallelism};
use crate::sampling;
use crate::Bounds;

/// Result of a maximization: the argmax and the attained value.
#[derive(Debug, Clone, PartialEq)]
pub struct Optimum {
    /// Location of the best point found.
    pub x: Vec<f64>,
    /// Objective value at `x`.
    pub value: f64,
}

/// An acquisition objective that can score whole candidate batches at once.
///
/// The default [`BatchObjective::eval_batch`] just loops
/// [`BatchObjective::eval`]; implementations backed by a batched GP posterior
/// override it to amortize the `K*` assembly and triangular solves over the
/// whole probe set. Implementations must return one value per candidate,
/// with each value independent of the batch composition — that independence
/// is what lets [`MultiStartMaximizer::maximize_batched`] split a batch
/// across threads without changing any result.
pub trait BatchObjective: Sync {
    /// Scores a single point.
    fn eval(&self, x: &[f64]) -> f64;

    /// Scores a batch of points, one value per input in order.
    fn eval_batch(&self, xs: &[Vec<f64>]) -> Vec<f64> {
        xs.iter().map(|x| self.eval(x)).collect()
    }
}

/// Any thread-safe closure is a (pointwise) batch objective.
impl<F: Fn(&[f64]) -> f64 + Sync> BatchObjective for F {
    fn eval(&self, x: &[f64]) -> f64 {
        self(x)
    }
}

/// `-inf` for non-finite values, so NaN regions lose every comparison.
fn safe(v: f64) -> f64 {
    if v.is_finite() {
        v
    } else {
        f64::NEG_INFINITY
    }
}

/// Pairs candidates with their scores, keeps the best `keep` (stable sort,
/// descending score), preserving probe order among ties.
fn top_starts(candidates: Vec<Vec<f64>>, values: Vec<f64>, keep: usize) -> Vec<(Vec<f64>, f64)> {
    let mut scored: Vec<(Vec<f64>, f64)> = candidates.into_iter().zip(values).collect();
    scored.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
    scored.truncate(keep);
    scored
}

/// Deterministic reduction over the refined starts: begin from the best
/// probe, scan in start order, replace only on a strict improvement — so
/// ties always resolve to the earliest index no matter where each refinement
/// ran.
fn reduce(probe_best: &(Vec<f64>, f64), refined: Vec<(Vec<f64>, f64)>) -> Optimum {
    let mut best = Optimum {
        x: probe_best.0.clone(),
        value: probe_best.1,
    };
    for (x, v) in refined {
        if v > best.value {
            best = Optimum { x, value: v };
        }
    }
    best
}

/// Random-probe + local-refinement **maximizer** for acquisition functions.
///
/// # Example
///
/// ```
/// use easybo_opt::{Bounds, MultiStartMaximizer};
/// use rand::SeedableRng;
///
/// # fn main() -> Result<(), easybo_opt::OptError> {
/// let bounds = Bounds::new(vec![(-3.0, 3.0)])?;
/// let maximizer = MultiStartMaximizer::new(128, 3, 80);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(11);
/// let best = maximizer.maximize(&bounds, &mut rng, |x| -(x[0] - 1.5).powi(2));
/// assert!((best.x[0] - 1.5).abs() < 1e-3);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MultiStartMaximizer {
    probes: usize,
    starts: usize,
    refine_evals: usize,
}

impl MultiStartMaximizer {
    /// Creates a maximizer that scatters `probes` random points, then
    /// refines the best `starts` of them with Nelder–Mead runs of
    /// `refine_evals` evaluations each.
    ///
    /// Zero values are clipped up to 1.
    pub fn new(probes: usize, starts: usize, refine_evals: usize) -> Self {
        MultiStartMaximizer {
            probes: probes.max(1),
            starts: starts.max(1),
            refine_evals: refine_evals.max(1),
        }
    }

    /// A good default for acquisition maximization in `d` dimensions:
    /// `max(512, 100·d)` probes, 5 starts, `40·d` refinement evaluations.
    pub fn for_dim(d: usize) -> Self {
        MultiStartMaximizer::new(512.max(100 * d), 5, 40 * d.max(1))
    }

    /// Number of random probes per call.
    pub fn probes(&self) -> usize {
        self.probes
    }

    /// Probe phase: Latin hypercube for coverage + pure uniform for tails.
    fn candidates<R: Rng + ?Sized>(&self, bounds: &Bounds, rng: &mut R) -> Vec<Vec<f64>> {
        let mut candidates = sampling::latin_hypercube(bounds, self.probes / 2, rng);
        candidates.extend(sampling::uniform(
            bounds,
            self.probes - candidates.len(),
            rng,
        ));
        candidates
    }

    /// The Nelder–Mead refiner shared by every start.
    fn refiner(&self) -> NelderMead {
        NelderMead::new(NelderMeadConfig {
            max_evals: self.refine_evals,
            initial_step: 0.02,
            ..Default::default()
        })
        .expect("static Nelder-Mead config is valid")
    }

    /// Maximizes `f` over `bounds`, returning the best point found.
    ///
    /// Non-finite objective values are treated as `-inf`.
    pub fn maximize<R, F>(&self, bounds: &Bounds, rng: &mut R, mut f: F) -> Optimum
    where
        R: Rng + ?Sized,
        F: FnMut(&[f64]) -> f64,
    {
        let candidates = self.candidates(bounds, rng);
        let values: Vec<f64> = candidates.iter().map(|x| safe(f(x))).collect();
        let starts = top_starts(candidates, values, self.starts);

        // Refinement phase: Nelder-Mead on the negated objective.
        let nm = self.refiner();
        let refined: Vec<(Vec<f64>, f64)> = starts
            .iter()
            .map(|(x0, _)| {
                let (x, neg_v) = nm.minimize(bounds, x0.clone(), |p| -safe(f(p)));
                (x, -neg_v)
            })
            .collect();
        reduce(&starts[0], refined)
    }

    /// Like [`MultiStartMaximizer::maximize`], but scores the probe batch
    /// through [`BatchObjective::eval_batch`] and runs the Nelder–Mead
    /// refinement starts on `parallelism` worker threads.
    ///
    /// Returns the **same `Optimum`, bit for bit, at every parallelism
    /// level** (including the sequential `maximize` path, provided
    /// `eval_batch` agrees with `eval` per point): probe values are
    /// independent of how the batch is chunked, start selection is a stable
    /// sort on those values, and the reduction scans refined starts in index
    /// order with strict-improvement ties.
    pub fn maximize_batched<R, F>(
        &self,
        bounds: &Bounds,
        rng: &mut R,
        parallelism: Parallelism,
        f: &F,
    ) -> Optimum
    where
        R: Rng + ?Sized,
        F: BatchObjective + ?Sized,
    {
        self.maximize_batched_traced(bounds, rng, parallelism, f, &Telemetry::disabled())
    }

    /// [`MultiStartMaximizer::maximize_batched`] with a telemetry
    /// handle: the probe-scoring phase is wrapped in a
    /// `batch_predict` span and the refinement phase in an
    /// `nm_refine` span, both opened on the calling thread (never
    /// inside the worker closures) so span ids stay deterministic at
    /// every parallelism level.
    pub fn maximize_batched_traced<R, F>(
        &self,
        bounds: &Bounds,
        rng: &mut R,
        parallelism: Parallelism,
        f: &F,
        telemetry: &Telemetry,
    ) -> Optimum
    where
        R: Rng + ?Sized,
        F: BatchObjective + ?Sized,
    {
        let candidates = self.candidates(bounds, rng);
        let workers = parallelism.threads();
        let raw: Vec<f64> = {
            let _span = telemetry.span("batch_predict");
            if workers <= 1 || candidates.len() < 2 * workers {
                f.eval_batch(&candidates)
            } else {
                // Chunked probe scoring: each worker gets one contiguous
                // sub-batch; per-point values do not depend on batch
                // composition, so chunking cannot change them.
                let chunk = candidates.len().div_ceil(workers);
                let chunks: Vec<&[Vec<f64>]> = candidates.chunks(chunk).collect();
                parallel::parallel_map(parallelism, chunks, |_, c| f.eval_batch(c))
                    .into_iter()
                    .flatten()
                    .collect()
            }
        };
        assert_eq!(
            raw.len(),
            candidates.len(),
            "eval_batch must return one value per candidate"
        );
        let values: Vec<f64> = raw.into_iter().map(safe).collect();
        let starts = top_starts(candidates, values, self.starts);

        let nm = self.refiner();
        let nm = &nm;
        let refined = {
            let _span = telemetry.span("nm_refine");
            parallel::parallel_map(parallelism, starts.clone(), |_, (x0, _)| {
                let (x, neg_v) = nm.minimize(bounds, x0, |p| -safe(f.eval(p)));
                (x, -neg_v)
            })
        };
        reduce(&starts[0], refined)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    #[test]
    fn finds_global_peak_among_two() {
        let bounds = Bounds::new(vec![(-4.0, 4.0)]).unwrap();
        // Two Gaussian bumps; the taller is at x = 2.
        let f =
            |x: &[f64]| 0.8 * (-(x[0] + 2.0).powi(2)).exp() + 1.0 * (-(x[0] - 2.0).powi(2)).exp();
        let m = MultiStartMaximizer::new(256, 5, 100);
        let best = m.maximize(&bounds, &mut rng(1), f);
        assert!((best.x[0] - 2.0).abs() < 1e-2, "x = {}", best.x[0]);
    }

    #[test]
    fn result_always_inside_bounds() {
        let bounds = Bounds::new(vec![(0.0, 1.0), (5.0, 6.0)]).unwrap();
        let m = MultiStartMaximizer::new(64, 3, 40);
        // Gradient pushes toward the corner (1, 6).
        let best = m.maximize(&bounds, &mut rng(2), |x| x[0] + x[1]);
        assert!(bounds.contains(&best.x));
        assert!((best.x[0] - 1.0).abs() < 1e-6);
        assert!((best.x[1] - 6.0).abs() < 1e-6);
    }

    #[test]
    fn handles_all_nan_objective() {
        let bounds = Bounds::unit_cube(2).unwrap();
        let m = MultiStartMaximizer::new(16, 2, 10);
        let best = m.maximize(&bounds, &mut rng(3), |_| f64::NAN);
        assert!(bounds.contains(&best.x));
        assert_eq!(best.value, f64::NEG_INFINITY);
    }

    #[test]
    fn for_dim_scales_probes() {
        let small = MultiStartMaximizer::for_dim(1);
        let large = MultiStartMaximizer::for_dim(10);
        assert!(large.probes() >= small.probes());
    }

    #[test]
    fn batched_bitwise_matches_sequential_for_all_parallelism() {
        // Multimodal surface with plateaus to exercise tie-breaking.
        let f = |x: &[f64]| {
            (7.0 * x[0]).sin() * (5.0 * x[1]).cos() - (x[0] - 0.3).powi(2) + x[1].floor()
        };
        let bounds = Bounds::unit_cube(2).unwrap();
        let m = MultiStartMaximizer::new(128, 4, 60);
        let reference = m.maximize(&bounds, &mut rng(9), f);
        for k in [1usize, 2, 8] {
            let got = m.maximize_batched(&bounds, &mut rng(9), Parallelism::new(k), &f);
            // Exact equality, not tolerance: parallelism must not change a
            // single bit of the result.
            assert_eq!(got.x, reference.x, "k = {k}");
            assert_eq!(got.value.to_bits(), reference.value.to_bits(), "k = {k}");
        }
    }

    #[test]
    fn batched_uses_eval_batch_for_probes() {
        use std::sync::atomic::{AtomicUsize, Ordering};

        struct Counting {
            batch_calls: AtomicUsize,
        }
        impl BatchObjective for Counting {
            fn eval(&self, x: &[f64]) -> f64 {
                -(x[0] - 0.5).powi(2)
            }
            fn eval_batch(&self, xs: &[Vec<f64>]) -> Vec<f64> {
                self.batch_calls.fetch_add(1, Ordering::Relaxed);
                xs.iter().map(|x| self.eval(x)).collect()
            }
        }
        let bounds = Bounds::unit_cube(1).unwrap();
        let m = MultiStartMaximizer::new(64, 2, 40);
        let obj = Counting {
            batch_calls: AtomicUsize::new(0),
        };
        let best = m.maximize_batched(&bounds, &mut rng(5), Parallelism::sequential(), &obj);
        assert_eq!(obj.batch_calls.load(Ordering::Relaxed), 1);
        assert!((best.x[0] - 0.5).abs() < 1e-3);
    }

    #[test]
    #[should_panic(expected = "one value per candidate")]
    fn batched_rejects_wrong_length_eval_batch() {
        struct Broken;
        impl BatchObjective for Broken {
            fn eval(&self, _: &[f64]) -> f64 {
                0.0
            }
            fn eval_batch(&self, _: &[Vec<f64>]) -> Vec<f64> {
                vec![0.0]
            }
        }
        let bounds = Bounds::unit_cube(1).unwrap();
        MultiStartMaximizer::new(16, 2, 10).maximize_batched(
            &bounds,
            &mut rng(1),
            Parallelism::sequential(),
            &Broken,
        );
    }

    #[test]
    fn refinement_beats_pure_probing() {
        // Very narrow peak: random probing alone rarely lands within 1e-3.
        let bounds = Bounds::new(vec![(0.0, 1.0)]).unwrap();
        let f = |x: &[f64]| -(x[0] - 0.41234).powi(2);
        let m = MultiStartMaximizer::new(64, 3, 120);
        let best = m.maximize(&bounds, &mut rng(4), f);
        assert!(best.value > -1e-8, "refined value {}", best.value);
    }
}
