//! Multi-start acquisition maximizer: dense random probing followed by
//! Nelder–Mead refinement of the top seeds.
//!
//! Acquisition surfaces are cheap to evaluate (a GP posterior lookup) but
//! multimodal; the standard recipe — and the one used throughout this
//! reproduction — is to scatter a large number of probes, keep the best few,
//! and polish each with a local derivative-free search.

use rand::Rng;

use crate::nelder_mead::{NelderMead, NelderMeadConfig};
use crate::sampling;
use crate::Bounds;

/// Result of a maximization: the argmax and the attained value.
#[derive(Debug, Clone, PartialEq)]
pub struct Optimum {
    /// Location of the best point found.
    pub x: Vec<f64>,
    /// Objective value at `x`.
    pub value: f64,
}

/// Random-probe + local-refinement **maximizer** for acquisition functions.
///
/// # Example
///
/// ```
/// use easybo_opt::{Bounds, MultiStartMaximizer};
/// use rand::SeedableRng;
///
/// # fn main() -> Result<(), easybo_opt::OptError> {
/// let bounds = Bounds::new(vec![(-3.0, 3.0)])?;
/// let maximizer = MultiStartMaximizer::new(128, 3, 80);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(11);
/// let best = maximizer.maximize(&bounds, &mut rng, |x| -(x[0] - 1.5).powi(2));
/// assert!((best.x[0] - 1.5).abs() < 1e-3);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MultiStartMaximizer {
    probes: usize,
    starts: usize,
    refine_evals: usize,
}

impl MultiStartMaximizer {
    /// Creates a maximizer that scatters `probes` random points, then
    /// refines the best `starts` of them with Nelder–Mead runs of
    /// `refine_evals` evaluations each.
    ///
    /// Zero values are clipped up to 1.
    pub fn new(probes: usize, starts: usize, refine_evals: usize) -> Self {
        MultiStartMaximizer {
            probes: probes.max(1),
            starts: starts.max(1),
            refine_evals: refine_evals.max(1),
        }
    }

    /// A good default for acquisition maximization in `d` dimensions:
    /// `max(512, 100·d)` probes, 5 starts, `40·d` refinement evaluations.
    pub fn for_dim(d: usize) -> Self {
        MultiStartMaximizer::new(512.max(100 * d), 5, 40 * d.max(1))
    }

    /// Number of random probes per call.
    pub fn probes(&self) -> usize {
        self.probes
    }

    /// Maximizes `f` over `bounds`, returning the best point found.
    ///
    /// Non-finite objective values are treated as `-inf`.
    pub fn maximize<R, F>(&self, bounds: &Bounds, rng: &mut R, mut f: F) -> Optimum
    where
        R: Rng + ?Sized,
        F: FnMut(&[f64]) -> f64,
    {
        let safe = |v: f64| if v.is_finite() { v } else { f64::NEG_INFINITY };

        // Probe phase: Latin hypercube for coverage + pure uniform for tails.
        let mut candidates = sampling::latin_hypercube(bounds, self.probes / 2, rng);
        candidates.extend(sampling::uniform(
            bounds,
            self.probes - candidates.len(),
            rng,
        ));
        let mut scored: Vec<(Vec<f64>, f64)> = candidates
            .into_iter()
            .map(|x| {
                let v = safe(f(&x));
                (x, v)
            })
            .collect();
        scored.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        scored.truncate(self.starts);

        // Refinement phase: Nelder-Mead on the negated objective.
        let nm = NelderMead::new(NelderMeadConfig {
            max_evals: self.refine_evals,
            initial_step: 0.02,
            ..Default::default()
        })
        .expect("static Nelder-Mead config is valid");
        let mut best = Optimum {
            x: scored[0].0.clone(),
            value: scored[0].1,
        };
        for (x0, _) in scored {
            let (x, neg_v) = nm.minimize(bounds, x0, |p| -safe(f(p)));
            let v = -neg_v;
            if v > best.value {
                best = Optimum { x, value: v };
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    #[test]
    fn finds_global_peak_among_two() {
        let bounds = Bounds::new(vec![(-4.0, 4.0)]).unwrap();
        // Two Gaussian bumps; the taller is at x = 2.
        let f =
            |x: &[f64]| 0.8 * (-(x[0] + 2.0).powi(2)).exp() + 1.0 * (-(x[0] - 2.0).powi(2)).exp();
        let m = MultiStartMaximizer::new(256, 5, 100);
        let best = m.maximize(&bounds, &mut rng(1), f);
        assert!((best.x[0] - 2.0).abs() < 1e-2, "x = {}", best.x[0]);
    }

    #[test]
    fn result_always_inside_bounds() {
        let bounds = Bounds::new(vec![(0.0, 1.0), (5.0, 6.0)]).unwrap();
        let m = MultiStartMaximizer::new(64, 3, 40);
        // Gradient pushes toward the corner (1, 6).
        let best = m.maximize(&bounds, &mut rng(2), |x| x[0] + x[1]);
        assert!(bounds.contains(&best.x));
        assert!((best.x[0] - 1.0).abs() < 1e-6);
        assert!((best.x[1] - 6.0).abs() < 1e-6);
    }

    #[test]
    fn handles_all_nan_objective() {
        let bounds = Bounds::unit_cube(2).unwrap();
        let m = MultiStartMaximizer::new(16, 2, 10);
        let best = m.maximize(&bounds, &mut rng(3), |_| f64::NAN);
        assert!(bounds.contains(&best.x));
        assert_eq!(best.value, f64::NEG_INFINITY);
    }

    #[test]
    fn for_dim_scales_probes() {
        let small = MultiStartMaximizer::for_dim(1);
        let large = MultiStartMaximizer::for_dim(10);
        assert!(large.probes() >= small.probes());
    }

    #[test]
    fn refinement_beats_pure_probing() {
        // Very narrow peak: random probing alone rarely lands within 1e-3.
        let bounds = Bounds::new(vec![(0.0, 1.0)]).unwrap();
        let f = |x: &[f64]| -(x[0] - 0.41234).powi(2);
        let m = MultiStartMaximizer::new(64, 3, 120);
        let best = m.maximize(&bounds, &mut rng(4), f);
        assert!(best.value > -1e-8, "refined value {}", best.value);
    }
}
