//! Incremental GP surrogate: cached covariance factor across ask/tell
//! steps plus a pseudo-point factor *stack* for the penalization inner
//! loop.
//!
//! The asynchronous EasyBO loop touches the GP in two very different
//! rhythms:
//!
//! * **per tell** — one new real observation arrives; the kernel and
//!   hyperparameters are unchanged, so the cached Cholesky factor can be
//!   extended in O(n²) instead of rebuilt in O(n³);
//! * **per selection** — the local-penalization scheme hallucinates one
//!   pseudo-point per busy worker, maximizes the acquisition, and then
//!   throws the pseudo-points away again.
//!
//! [`IncrementalGp`] serves both: [`IncrementalGp::append_observation`]
//! reuses the cached factor, and [`IncrementalGp::push_pseudo_mean`] /
//! [`IncrementalGp::pop_pseudo`] maintain an augmented factor stack so
//! the inner loop never refactorizes. Every push records the pre-push
//! weight vector `α`, and the factor extension never touches the existing
//! block, so a pop restores the previous model **bit for bit** — the
//! property that keeps checkpoint/resume byte-identical when the
//! incremental path is enabled. A hyperparameter retrain simply replaces
//! the wrapped [`Gp`] (see `SurrogateManager` upstream), which is the
//! cache-invalidation path back to the blocked full factorization.

use easybo_linalg::Vector;
use easybo_telemetry::Telemetry;

use crate::model::Gp;
use crate::GpError;

/// A [`Gp`] wrapped with an incremental-update API and a pseudo-point
/// factor stack. See the module docs for the design.
///
/// # Example
///
/// ```
/// use easybo_gp::{Gp, GpConfig, IncrementalGp};
///
/// # fn main() -> Result<(), easybo_gp::GpError> {
/// let x = vec![vec![0.0], vec![0.5], vec![1.0]];
/// let y = vec![0.0, 1.0, 0.0];
/// let mut inc = IncrementalGp::new(Gp::fit(x, y, GpConfig::default())?);
/// let before = inc.gp().predict(&[0.25]);
/// inc.push_pseudo_mean(vec![0.25])?;
/// assert!(inc.gp().predict(&[0.25]).variance < before.variance);
/// inc.pop_pseudo();
/// // The pop restored the exact pre-push model.
/// assert_eq!(inc.gp().predict(&[0.25]), before);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct IncrementalGp {
    gp: Gp,
    /// Pre-push `α` snapshots, one per live pseudo-point (stack order).
    saved_alpha: Vec<Vector>,
    telemetry: Telemetry,
}

impl IncrementalGp {
    /// Wraps a fitted model with telemetry disabled.
    pub fn new(gp: Gp) -> Self {
        Self::with_telemetry(gp, Telemetry::disabled())
    }

    /// Wraps a fitted model; incremental updates emit `cholesky_update` /
    /// `cholesky_downdate` spans and counters on `telemetry`.
    pub fn with_telemetry(gp: Gp, telemetry: Telemetry) -> Self {
        IncrementalGp {
            gp,
            saved_alpha: Vec::new(),
            telemetry,
        }
    }

    /// Replaces the telemetry handle.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    /// The wrapped model, including any live pseudo-points.
    pub fn gp(&self) -> &Gp {
        &self.gp
    }

    /// Unwraps the model, popping any live pseudo-points first.
    pub fn into_gp(mut self) -> Gp {
        self.pop_all_pseudo();
        self.gp
    }

    /// Number of live pseudo-points on the stack.
    pub fn n_pseudo(&self) -> usize {
        self.saved_alpha.len()
    }

    /// Number of training points *below* the pseudo-point stack.
    pub fn n_base(&self) -> usize {
        self.gp.n_train() - self.saved_alpha.len()
    }

    /// Appends one *real* observation in place, extending the cached
    /// factor in O(n²) — the per-tell hot path that replaces a full
    /// O(n³) refactorization between scheduled hyperparameter retrains.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Gp::extend_observed`].
    ///
    /// # Panics
    ///
    /// Panics if pseudo-points are live: real data must never be
    /// interleaved into the hallucinated tail.
    pub fn append_observation(&mut self, x: Vec<f64>, y: f64) -> crate::Result<()> {
        assert!(
            self.saved_alpha.is_empty(),
            "append_observation with {} pseudo-points live",
            self.saved_alpha.len()
        );
        validate_point(&x, self.gp.dim())?;
        if !y.is_finite() {
            return Err(GpError::NonFiniteData {
                context: "append_observation target".into(),
            });
        }
        let _span = self.telemetry.span("cholesky_update");
        let z = self.gp.scaler().transform(y);
        let floored = self.gp.push_point_standardized(x, z)?;
        self.gp.mark_all_real();
        self.telemetry.incr("cholesky_update", 1);
        if floored {
            self.telemetry.incr("cholesky_jitter_bumps", 1);
        }
        Ok(())
    }

    /// Pushes a hallucinated pseudo-point whose target is the *current
    /// predictive mean* (the paper's BUCB-style busy-point penalization):
    /// the posterior mean is unchanged while σ̂ collapses around the busy
    /// point. Exactly the per-point operation sequence of [`Gp::augment`],
    /// but on a factor stack instead of a throwaway clone.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Gp::augment`]; on error the model is unchanged.
    pub fn push_pseudo_mean(&mut self, x: Vec<f64>) -> crate::Result<()> {
        validate_point(&x, self.gp.dim())?;
        let (mean_z, _) = self.gp.predict_standardized(&x);
        self.push_standardized(x, mean_z)
    }

    /// Pushes a hallucinated pseudo-point with a fixed raw-space "lie"
    /// target (the constant-liar ablations): `y` is standardized with the
    /// model's scaler, matching [`Gp::extend_observed`]'s transform —
    /// but, unlike the liar-via-`extend_observed` legacy path, the point
    /// stays hallucinated and poppable.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Gp::augment`]; on error the model is unchanged.
    pub fn push_pseudo_lie(&mut self, x: Vec<f64>, y: f64) -> crate::Result<()> {
        validate_point(&x, self.gp.dim())?;
        if !y.is_finite() {
            return Err(GpError::NonFiniteData {
                context: "pseudo-point lie target".into(),
            });
        }
        let z = self.gp.scaler().transform(y);
        self.push_standardized(x, z)
    }

    fn push_standardized(&mut self, x: Vec<f64>, z: f64) -> crate::Result<()> {
        let _span = self.telemetry.span("cholesky_update");
        let alpha_before = self.gp.alpha_vec().clone();
        let floored = self.gp.push_point_standardized(x, z)?;
        self.saved_alpha.push(alpha_before);
        self.telemetry.incr("cholesky_update", 1);
        if floored {
            self.telemetry.incr("cholesky_jitter_bumps", 1);
        }
        Ok(())
    }

    /// Pops the most recent pseudo-point, restoring the pre-push model
    /// bit for bit (factor truncation + saved `α`), in O(n²).
    ///
    /// # Panics
    ///
    /// Panics if no pseudo-point is live.
    pub fn pop_pseudo(&mut self) {
        let alpha = self
            .saved_alpha
            .pop()
            .expect("pop_pseudo: no pseudo-points live");
        let _span = self.telemetry.span("cholesky_downdate");
        self.gp.truncate_to(self.gp.n_train() - 1, alpha);
        self.telemetry.incr("cholesky_downdate", 1);
    }

    /// Pops every live pseudo-point (no-op when none are live).
    pub fn pop_all_pseudo(&mut self) {
        while !self.saved_alpha.is_empty() {
            self.pop_pseudo();
        }
    }

    /// Posterior mean of the **base** model (ignoring live pseudo-points),
    /// raw units — bit-identical to `base.predict_mean(x)` on the model as
    /// it stood before the pushes. Used by the penalized acquisition,
    /// which mixes the base mean with the augmented uncertainty.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != dim()`.
    pub fn predict_mean_base(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.gp.dim(), "query dimension mismatch");
        let base_alpha = self.base_alpha();
        let kernel = self.gp.kernel();
        let theta = self.gp.theta();
        let mean_z: f64 = self.gp.x_rows()[..self.n_base()]
            .iter()
            .zip(base_alpha.iter())
            .map(|(xi, &a)| kernel.eval(theta, x, xi) * a)
            .sum();
        self.gp.scaler().inverse(mean_z)
    }

    /// Batched [`IncrementalGp::predict_mean_base`], bit-identical per
    /// point to `base.predict_mean_batch(xs)`.
    ///
    /// # Panics
    ///
    /// Panics if any point has the wrong dimension.
    pub fn predict_mean_base_batch(&self, xs: &[Vec<f64>]) -> Vec<f64> {
        if xs.is_empty() {
            return Vec::new();
        }
        let n_base = self.n_base();
        let base_alpha = self.base_alpha();
        let kstar =
            self.gp
                .kernel()
                .cross_covariance(self.gp.theta(), &self.gp.x_rows()[..n_base], xs);
        let mut means = vec![0.0; xs.len()];
        for i in 0..n_base {
            let a = base_alpha[i];
            for (mu, &k) in means.iter_mut().zip(kstar.row(i)) {
                *mu += k * a;
            }
        }
        means
            .into_iter()
            .map(|mu| self.gp.scaler().inverse(mu))
            .collect()
    }

    /// The weight vector of the base model: the bottom of the saved-α
    /// stack, or the live α when no pseudo-points are pushed.
    fn base_alpha(&self) -> &Vector {
        self.saved_alpha
            .first()
            .unwrap_or_else(|| self.gp.alpha_vec())
    }
}

fn validate_point(x: &[f64], dim: usize) -> crate::Result<()> {
    if x.len() != dim {
        return Err(GpError::InconsistentData {
            detail: format!("point has {} dims, expected {dim}", x.len()),
        });
    }
    if x.iter().any(|v| !v.is_finite()) {
        return Err(GpError::NonFiniteData {
            context: "incremental point".into(),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::KernelFamily;

    fn fitted() -> Gp {
        let x: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64 / 9.0]).collect();
        let y: Vec<f64> = x.iter().map(|p| (6.0 * p[0]).sin() + 2.0).collect();
        Gp::fit_with_params(
            x,
            y,
            KernelFamily::SquaredExponential,
            vec![-1.0, 0.0],
            (1e-6f64).ln(),
        )
        .unwrap()
    }

    #[test]
    fn push_pop_restores_state_bitwise() {
        let gp = fitted();
        let before = gp.state();
        let mut inc = IncrementalGp::new(gp);
        inc.push_pseudo_mean(vec![0.25]).unwrap();
        inc.push_pseudo_mean(vec![0.85]).unwrap();
        inc.push_pseudo_lie(vec![0.5], 1.5).unwrap();
        assert_eq!(inc.n_pseudo(), 3);
        assert_eq!(inc.gp().n_train(), 13);
        inc.pop_all_pseudo();
        assert_eq!(inc.n_pseudo(), 0);
        assert_eq!(inc.gp().state(), before);
    }

    #[test]
    fn push_pseudo_mean_matches_augment_bitwise() {
        let gp = fitted();
        let busy = vec![vec![0.22], vec![0.71], vec![0.48]];
        let aug = gp.augment(&busy).unwrap();
        let mut inc = IncrementalGp::new(gp);
        for b in &busy {
            inc.push_pseudo_mean(b.clone()).unwrap();
        }
        assert_eq!(inc.gp().state(), aug.state());
        for q in [0.1, 0.48, 0.9] {
            let a = aug.predict_standardized(&[q]);
            let b = inc.gp().predict_standardized(&[q]);
            assert_eq!(a.0.to_bits(), b.0.to_bits());
            assert_eq!(a.1.to_bits(), b.1.to_bits());
        }
    }

    #[test]
    fn append_observation_matches_extend_observed_bitwise() {
        let gp = fitted();
        let legacy = gp
            .extend_observed(vec![0.77], 2.3)
            .unwrap()
            .extend_observed(vec![0.13], 1.8)
            .unwrap();
        let mut inc = IncrementalGp::new(gp);
        inc.append_observation(vec![0.77], 2.3).unwrap();
        inc.append_observation(vec![0.13], 1.8).unwrap();
        assert_eq!(inc.gp().state(), legacy.state());
        assert_eq!(inc.gp().n_real(), 12);
    }

    #[test]
    fn base_mean_ignores_pseudo_points() {
        let gp = fitted();
        let base = gp.clone();
        let mut inc = IncrementalGp::new(gp);
        inc.push_pseudo_mean(vec![0.33]).unwrap();
        inc.push_pseudo_lie(vec![0.66], 9.0).unwrap(); // a lie that WOULD move the mean
        let probes: Vec<Vec<f64>> = (0..7).map(|i| vec![i as f64 / 6.0]).collect();
        let batch = inc.predict_mean_base_batch(&probes);
        let legacy = base.predict_mean_batch(&probes);
        for (i, p) in probes.iter().enumerate() {
            assert_eq!(
                inc.predict_mean_base(p).to_bits(),
                base.predict_mean(p).to_bits(),
                "scalar at {i}"
            );
            assert_eq!(batch[i].to_bits(), legacy[i].to_bits(), "batch at {i}");
        }
        // With no pseudo-points the base mean is just the live mean.
        inc.pop_all_pseudo();
        assert_eq!(
            inc.predict_mean_base(&probes[3]).to_bits(),
            base.predict_mean(&probes[3]).to_bits()
        );
    }

    #[test]
    fn failed_push_leaves_model_unchanged() {
        let gp = fitted();
        let before = gp.state();
        let mut inc = IncrementalGp::new(gp);
        assert!(inc.push_pseudo_mean(vec![0.1, 0.2]).is_err()); // wrong dims
        assert!(inc.push_pseudo_mean(vec![f64::NAN]).is_err());
        assert!(inc.push_pseudo_lie(vec![0.5], f64::INFINITY).is_err());
        assert_eq!(inc.n_pseudo(), 0);
        assert_eq!(inc.gp().state(), before);
    }

    #[test]
    #[should_panic(expected = "append_observation")]
    fn append_with_live_pseudo_points_panics() {
        let mut inc = IncrementalGp::new(fitted());
        inc.push_pseudo_mean(vec![0.5]).unwrap();
        let _ = inc.append_observation(vec![0.6], 1.0);
    }

    #[test]
    fn telemetry_counts_updates_and_downdates() {
        let (telemetry, _recorder) = Telemetry::recording();
        let mut inc = IncrementalGp::with_telemetry(fitted(), telemetry.clone());
        inc.append_observation(vec![0.42], 2.0).unwrap();
        inc.push_pseudo_mean(vec![0.2]).unwrap();
        inc.push_pseudo_mean(vec![0.8]).unwrap();
        inc.pop_all_pseudo();
        let snap = telemetry.metrics_snapshot().unwrap();
        assert_eq!(snap.counter("cholesky_update"), 3);
        assert_eq!(snap.counter("cholesky_downdate"), 2);
    }

    #[test]
    fn into_gp_pops_live_pseudo_points() {
        let gp = fitted();
        let before = gp.state();
        let mut inc = IncrementalGp::new(gp);
        inc.push_pseudo_mean(vec![0.5]).unwrap();
        let unwrapped = inc.into_gp();
        assert_eq!(unwrapped.state(), before);
    }

    #[test]
    fn duplicate_pseudo_point_bumps_jitter_counter() {
        // Near-zero noise: appending an exact duplicate of a training
        // point drives the new pivot to (numerical) zero, so the
        // duplicate-point floor must fire — and be counted, not silent.
        let x: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64 / 9.0]).collect();
        let y: Vec<f64> = x.iter().map(|p| (6.0 * p[0]).sin() + 2.0).collect();
        let gp = Gp::fit_with_params(
            x,
            y,
            KernelFamily::SquaredExponential,
            vec![-1.0, 0.0],
            -45.0,
        )
        .unwrap();
        let (telemetry, _recorder) = Telemetry::recording();
        let mut inc = IncrementalGp::with_telemetry(gp, telemetry.clone());
        inc.push_pseudo_lie(vec![3.0 / 9.0], 2.5).unwrap();
        let snap = telemetry.metrics_snapshot().unwrap();
        assert!(snap.counter("cholesky_jitter_bumps") >= 1);
    }
}
