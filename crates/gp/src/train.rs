//! Hyperparameter training: multi-restart L-BFGS on the penalized negative
//! log marginal likelihood, with analytic gradients.

use easybo_linalg::{Cholesky, Matrix, Vector};
use easybo_opt::Parallelism;
use easybo_telemetry::Telemetry;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::kernel::ArdKernel;
use crate::model::covariance_matrix;

/// Hyperparameter-training schedule for [`crate::Gp::fit`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Number of random restarts beyond the default start (default 2).
    pub restarts: usize,
    /// L-BFGS iterations per restart (default 40).
    pub max_iters: usize,
    /// Seed for restart perturbations (default 0).
    pub seed: u64,
    /// Strength of the Gaussian prior pulling log-hyperparameters toward
    /// their defaults; `0.5/σ²` with σ = 3 by default. Keeps the optimizer
    /// out of degenerate corners (zero noise / infinite length-scale).
    pub prior_strength: f64,
    /// If the training set exceeds this size, hyperparameters are trained
    /// on a random subset of this many points (default 200). Exact GP
    /// training is O(n³) per gradient; on the class-E benchmark n reaches
    /// 470 and full-data training would dominate the runtime without
    /// changing the learned length-scales meaningfully.
    pub max_points: usize,
    /// Warm start: reuse these hyperparameters `[θ…, log σ_n²]` as the
    /// first starting point (used by BO drivers across refits).
    pub warm_start: Option<Vec<f64>>,
    /// Worker threads for the L-BFGS restarts (default: available cores;
    /// 1 = the legacy sequential path). The learned hyperparameters are
    /// bit-identical at any setting: every start is generated before the
    /// fan-out and the reduction scans results in start order.
    pub parallelism: Parallelism,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            restarts: 2,
            max_iters: 40,
            seed: 0,
            prior_strength: 0.5 / 9.0,
            max_points: 200,
            warm_start: None,
            parallelism: Parallelism::default(),
        }
    }
}

/// Trains `(theta, log_noise)` by maximizing the penalized LML.
///
/// Returns the best hyperparameters found; never fails — if every start is
/// numerically hopeless the defaults are returned.
pub(crate) fn train(
    kernel: &ArdKernel,
    x: &[Vec<f64>],
    z: &Vector,
    config: &TrainConfig,
    noise_floor: f64,
    telemetry: &Telemetry,
) -> (Vec<f64>, f64) {
    let n_kernel = kernel.n_theta();
    let n_params = n_kernel + 1; // + log noise
    let mut rng = rand::rngs::StdRng::seed_from_u64(config.seed);

    // Optional subsampling for large training sets.
    let (xs, zs): (Vec<Vec<f64>>, Vector) = if x.len() > config.max_points {
        let mut idx: Vec<usize> = (0..x.len()).collect();
        // Fisher-Yates prefix shuffle.
        for i in 0..config.max_points {
            let j = rng.gen_range(i..idx.len());
            idx.swap(i, j);
        }
        idx.truncate(config.max_points);
        (
            idx.iter().map(|&i| x[i].clone()).collect(),
            Vector::from_iter(idx.iter().map(|&i| z[i])),
        )
    } else {
        (x.to_vec(), z.clone())
    };

    // Default start: moderately short length-scales for unit-cube-ish
    // inputs, unit signal variance, small noise.
    let mut default_start = vec![(0.5f64).ln(); n_params];
    default_start[n_kernel - 1] = 0.0; // log sf2
    default_start[n_kernel] = (1e-4f64).ln(); // log sn2
    let prior_center = default_start.clone();

    let mut starts = Vec::with_capacity(config.restarts + 2);
    if let Some(w) = &config.warm_start {
        if w.len() == n_params {
            starts.push(w.clone());
        }
    }
    starts.push(default_start.clone());
    for _ in 0..config.restarts {
        let s: Vec<f64> = default_start
            .iter()
            .map(|&v| v + rng.gen_range(-1.5..1.5))
            .collect();
        starts.push(s);
    }

    let lbfgs = easybo_opt::Lbfgs::new(easybo_opt::LbfgsConfig {
        max_iters: config.max_iters,
        ..Default::default()
    })
    .expect("static L-BFGS config is valid");

    // Cached metric handles so the hot objective pays one atomic add per
    // call, and nothing at all when telemetry is disabled.
    let nll_evals = telemetry.counter("gp_nll_evals");
    let chol_factorizations = telemetry.counter("gp_cholesky_factorizations");
    let kernel_evals = telemetry.counter("gp_kernel_evals");
    // Per objective call: n(n+1)/2 kernel evaluations for the covariance
    // plus the same again (with gradients) for ∂K/∂θ.
    let kernel_evals_per_nll = (xs.len() * (xs.len() + 1)) as u64;

    // All starts are fixed before the fan-out (the RNG is never touched by
    // a worker), each L-BFGS run is independent, and the reduction below
    // scans results in start order with a strict-improvement test — so the
    // winner is bit-identical at any parallelism level.
    let results = easybo_opt::parallel_map(config.parallelism, starts, |_, start| {
        lbfgs.minimize(start, |params, grad| {
            if let Some(c) = &nll_evals {
                c.incr();
            }
            if let Some(c) = &chol_factorizations {
                c.incr();
            }
            if let Some(c) = &kernel_evals {
                c.add(kernel_evals_per_nll);
            }
            penalized_nll(
                kernel,
                &xs,
                &zs,
                params,
                &prior_center,
                config.prior_strength,
                grad,
            )
        })
    });
    let mut best_params = default_start;
    let mut best_obj = f64::INFINITY;
    for (p, obj) in results {
        if obj < best_obj && p.iter().all(|v| v.is_finite()) {
            best_obj = obj;
            best_params = p;
        }
    }

    // Clamp to sane boxes: length-scales and signal variance within e^±6,
    // noise above the floor.
    let mut theta: Vec<f64> = best_params[..n_kernel]
        .iter()
        .map(|&v| v.clamp(-6.0, 6.0))
        .collect();
    // Signal variance clamps tighter on the low side (targets are z-scored).
    theta[n_kernel - 1] = theta[n_kernel - 1].clamp(-4.0, 4.0);
    let log_noise = best_params[n_kernel].clamp(noise_floor.ln(), 0.0);
    (theta, log_noise)
}

/// Penalized negative LML and its gradient with respect to
/// `params = [θ…, log σ_n²]`.
///
/// `∂LML/∂θⱼ = ½ tr((ααᵀ − K⁻¹) ∂K/∂θⱼ)` (Rasmussen & Williams Eq. 5.9).
fn penalized_nll(
    kernel: &ArdKernel,
    x: &[Vec<f64>],
    z: &Vector,
    params: &[f64],
    prior_center: &[f64],
    prior_strength: f64,
    grad: &mut [f64],
) -> f64 {
    let n = x.len();
    let n_kernel = kernel.n_theta();
    let theta = &params[..n_kernel];
    let log_noise = params[n_kernel];
    if params.iter().any(|v| !v.is_finite() || v.abs() > 20.0) {
        grad.iter_mut().for_each(|g| *g = 0.0);
        return f64::INFINITY;
    }

    let k = covariance_matrix(kernel, theta, log_noise, x);
    let chol = match Cholesky::new(&k) {
        Ok(c) => c,
        Err(_) => {
            grad.iter_mut().for_each(|g| *g = 0.0);
            return f64::INFINITY;
        }
    };
    let alpha = chol.solve_vec(z);
    let lml = -0.5 * z.dot(&alpha)
        - 0.5 * chol.log_det()
        - 0.5 * n as f64 * (2.0 * std::f64::consts::PI).ln();

    // W = ααᵀ − K⁻¹ (symmetric). tr(W ∂K/∂θ) accumulated pairwise.
    let kinv = chol.inverse();
    let mut w = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..n {
            w[(i, j)] = alpha[i] * alpha[j] - kinv[(i, j)];
        }
    }
    let mut kgrad = vec![0.0; n_kernel];
    let mut lml_grad = vec![0.0; n_kernel + 1];
    for i in 0..n {
        for j in 0..=i {
            kernel.eval_with_grad(theta, &x[i], &x[j], &mut kgrad);
            let weight = if i == j { w[(i, j)] } else { 2.0 * w[(i, j)] };
            for (gsum, &kg) in lml_grad[..n_kernel].iter_mut().zip(kgrad.iter()) {
                *gsum += 0.5 * weight * kg;
            }
        }
    }
    // ∂K/∂log σ_n² = σ_n² I.
    let noise = log_noise.exp();
    lml_grad[n_kernel] = 0.5 * noise * w.trace();

    // Negate for minimization and add the Gaussian prior penalty.
    let mut obj = -lml;
    for i in 0..params.len() {
        let d = params[i] - prior_center[i];
        obj += prior_strength * d * d;
        grad[i] = -lml_grad[i] + 2.0 * prior_strength * d;
    }
    obj
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::KernelFamily;

    fn data() -> (Vec<Vec<f64>>, Vector) {
        let x: Vec<Vec<f64>> = (0..15).map(|i| vec![i as f64 / 14.0]).collect();
        let y: Vec<f64> = x.iter().map(|p| (5.0 * p[0]).sin()).collect();
        let scaler = crate::YScaler::fit(&y);
        let z = Vector::from_iter(y.iter().map(|&v| scaler.transform(v)));
        (x, z)
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let (x, z) = data();
        let kernel = ArdKernel::new(KernelFamily::SquaredExponential, 1);
        let params = vec![-0.5, 0.2, -3.0];
        let center = vec![0.0; 3];
        let mut grad = vec![0.0; 3];
        let f0 = penalized_nll(&kernel, &x, &z, &params, &center, 0.05, &mut grad);
        assert!(f0.is_finite());
        let eps = 1e-5;
        for j in 0..3 {
            let mut pp = params.clone();
            pp[j] += eps;
            let mut pm = params.clone();
            pm[j] -= eps;
            let mut scratch = vec![0.0; 3];
            let fp = penalized_nll(&kernel, &x, &z, &pp, &center, 0.05, &mut scratch);
            let fm = penalized_nll(&kernel, &x, &z, &pm, &center, 0.05, &mut scratch);
            let fd = (fp - fm) / (2.0 * eps);
            assert!(
                (grad[j] - fd).abs() < 1e-4 * (1.0 + fd.abs()),
                "param {j}: analytic {} vs fd {fd}",
                grad[j]
            );
        }
    }

    #[test]
    fn gradient_matches_fd_for_matern() {
        let (x, z) = data();
        for fam in [KernelFamily::Matern52, KernelFamily::Matern32] {
            let kernel = ArdKernel::new(fam, 1);
            let params = vec![-0.3, 0.1, -2.5];
            let center = vec![0.0; 3];
            let mut grad = vec![0.0; 3];
            penalized_nll(&kernel, &x, &z, &params, &center, 0.0, &mut grad);
            let eps = 1e-5;
            for j in 0..3 {
                let mut pp = params.clone();
                pp[j] += eps;
                let mut pm = params.clone();
                pm[j] -= eps;
                let mut scratch = vec![0.0; 3];
                let fp = penalized_nll(&kernel, &x, &z, &pp, &center, 0.0, &mut scratch);
                let fm = penalized_nll(&kernel, &x, &z, &pm, &center, 0.0, &mut scratch);
                let fd = (fp - fm) / (2.0 * eps);
                assert!(
                    (grad[j] - fd).abs() < 1e-4 * (1.0 + fd.abs()),
                    "{fam:?} param {j}: {} vs {fd}",
                    grad[j]
                );
            }
        }
    }

    #[test]
    fn training_improves_on_default() {
        let (x, z) = data();
        let kernel = ArdKernel::new(KernelFamily::SquaredExponential, 1);
        let config = TrainConfig::default();
        let (theta, log_noise) = train(&kernel, &x, &z, &config, 1e-8, &Telemetry::disabled());
        let mut grad = vec![0.0; 3];
        let center = vec![(0.5f64).ln(), 0.0, (1e-4f64).ln()];
        let mut params = theta.clone();
        params.push(log_noise);
        let trained = penalized_nll(
            &kernel,
            &x,
            &z,
            &params,
            &center,
            config.prior_strength,
            &mut grad,
        );
        let at_default = penalized_nll(
            &kernel,
            &x,
            &z,
            &center,
            &center,
            config.prior_strength,
            &mut grad,
        );
        assert!(trained <= at_default + 1e-9, "{trained} vs {at_default}");
    }

    #[test]
    fn noise_respects_floor() {
        let (x, z) = data();
        let kernel = ArdKernel::new(KernelFamily::SquaredExponential, 1);
        let (_, log_noise) = train(
            &kernel,
            &x,
            &z,
            &TrainConfig::default(),
            1e-6,
            &Telemetry::disabled(),
        );
        assert!(log_noise >= (1e-6f64).ln() - 1e-12);
        assert!(log_noise <= 0.0);
    }

    #[test]
    fn warm_start_is_used_and_beats_cold_on_budget() {
        let (x, z) = data();
        let kernel = ArdKernel::new(KernelFamily::SquaredExponential, 1);
        // First train normally.
        let (theta, log_noise) = train(
            &kernel,
            &x,
            &z,
            &TrainConfig::default(),
            1e-8,
            &Telemetry::disabled(),
        );
        let mut warm = theta.clone();
        warm.push(log_noise);
        // Retrain with zero restarts and tiny budget using the warm start:
        // must stay at least as good as the warm start itself.
        let cfg = TrainConfig {
            restarts: 0,
            max_iters: 2,
            warm_start: Some(warm),
            ..Default::default()
        };
        let (theta2, _) = train(&kernel, &x, &z, &cfg, 1e-8, &Telemetry::disabled());
        // Warm-started result should be close to the previous optimum.
        for (a, b) in theta.iter().zip(theta2.iter()) {
            assert!(
                (a - b).abs() < 1.0,
                "warm start drifted: {theta:?} vs {theta2:?}"
            );
        }
    }

    #[test]
    fn subsampling_kicks_in_for_large_sets() {
        let x: Vec<Vec<f64>> = (0..60).map(|i| vec![(i as f64) / 59.0]).collect();
        let y: Vec<f64> = x.iter().map(|p| p[0] * p[0]).collect();
        let z = Vector::from(y);
        let kernel = ArdKernel::new(KernelFamily::SquaredExponential, 1);
        let cfg = TrainConfig {
            max_points: 20,
            restarts: 0,
            max_iters: 10,
            ..Default::default()
        };
        // Just checks it runs and produces finite results on the subset path.
        let (theta, log_noise) = train(&kernel, &x, &z, &cfg, 1e-8, &Telemetry::disabled());
        assert!(theta.iter().all(|v| v.is_finite()));
        assert!(log_noise.is_finite());
    }

    #[test]
    fn parallel_training_is_bit_identical_across_parallelism() {
        let (x, z) = data();
        let kernel = ArdKernel::new(KernelFamily::SquaredExponential, 1);
        let base = TrainConfig {
            restarts: 3,
            seed: 17,
            parallelism: Parallelism::sequential(),
            ..Default::default()
        };
        let (theta_ref, noise_ref) = train(&kernel, &x, &z, &base, 1e-8, &Telemetry::disabled());
        for k in [2usize, 8] {
            let cfg = TrainConfig {
                parallelism: Parallelism::new(k),
                ..base.clone()
            };
            let (theta, noise) = train(&kernel, &x, &z, &cfg, 1e-8, &Telemetry::disabled());
            // Exact equality: parallel restarts must not perturb training.
            for (a, b) in theta.iter().zip(&theta_ref) {
                assert_eq!(a.to_bits(), b.to_bits(), "theta differs at k = {k}");
            }
            assert_eq!(
                noise.to_bits(),
                noise_ref.to_bits(),
                "noise differs at k = {k}"
            );
        }
    }

    #[test]
    fn parallel_training_keeps_telemetry_counts() {
        let (x, z) = data();
        let kernel = ArdKernel::new(KernelFamily::SquaredExponential, 1);
        let counts = |k: usize| {
            let t = Telemetry::new();
            let cfg = TrainConfig {
                restarts: 2,
                parallelism: Parallelism::new(k),
                ..Default::default()
            };
            train(&kernel, &x, &z, &cfg, 1e-8, &t);
            t.metrics_snapshot().unwrap().counter("gp_nll_evals")
        };
        let seq = counts(1);
        assert!(seq > 0);
        assert_eq!(seq, counts(4), "eval counts must not depend on threading");
    }

    #[test]
    fn infinite_objective_outside_safe_box() {
        let (x, z) = data();
        let kernel = ArdKernel::new(KernelFamily::SquaredExponential, 1);
        let mut grad = vec![0.0; 3];
        let obj = penalized_nll(
            &kernel,
            &x,
            &z,
            &[50.0, 0.0, -3.0],
            &[0.0; 3],
            0.0,
            &mut grad,
        );
        assert!(obj.is_infinite());
        assert!(grad.iter().all(|&g| g == 0.0));
    }
}
