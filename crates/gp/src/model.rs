use easybo_linalg::{Cholesky, Matrix, Vector};
use easybo_telemetry::{Event, Telemetry};
use serde::{Deserialize, Serialize};

use crate::kernel::{ArdKernel, KernelFamily};
use crate::scaler::YScaler;
use crate::train::{self, TrainConfig};
use crate::GpError;

/// Configuration for fitting a [`Gp`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GpConfig {
    /// Kernel family (the paper uses the squared exponential).
    pub kernel: KernelFamily,
    /// Hyperparameter-training schedule.
    pub train: TrainConfig,
    /// Floor for the noise variance in standardized target space
    /// (default 1e-8). Keeps covariance matrices well conditioned when the
    /// optimizer drives the noise to zero on noise-free circuit data.
    pub noise_floor: f64,
}

impl Default for GpConfig {
    fn default() -> Self {
        GpConfig {
            kernel: KernelFamily::SquaredExponential,
            train: TrainConfig::default(),
            noise_floor: 1e-8,
        }
    }
}

/// A GP posterior at a single point (raw target units, noise-free).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Prediction {
    /// Posterior mean `μ(x)`.
    pub mean: f64,
    /// Posterior variance `σ²(x)` (clamped to be non-negative).
    pub variance: f64,
}

impl Prediction {
    /// Posterior standard deviation `σ(x)`.
    pub fn std(&self) -> f64 {
        self.variance.max(0.0).sqrt()
    }
}

/// Exact raw-parts capture of a fitted [`Gp`], produced by
/// [`Gp::state`] and consumed by [`Gp::from_state`].
///
/// Every float is carried verbatim — including the cached Cholesky
/// factor and `α = K⁻¹ z` — because a model grown incrementally with
/// [`Gp::extend_observed`]/[`Gp::augment`] is *not* bit-identical to
/// one refactorized from scratch, and checkpoint/resume must continue
/// the run bit-for-bit.
#[derive(Debug, Clone, PartialEq)]
pub struct GpState {
    /// Kernel family.
    pub kernel: KernelFamily,
    /// Input dimensionality.
    pub dim: usize,
    /// Kernel hyperparameters `[log ℓ…, log σ_f²]`.
    pub theta: Vec<f64>,
    /// Log noise variance (standardized target space).
    pub log_noise: f64,
    /// Training inputs (raw), including pseudo-points past `n_real`.
    pub x: Vec<Vec<f64>>,
    /// Standardized targets.
    pub z: Vec<f64>,
    /// Target-scaler mean.
    pub scaler_mean: f64,
    /// Target-scaler std.
    pub scaler_std: f64,
    /// Cached Cholesky factor `L`, row-major `n×n`.
    pub chol_factor: Vec<f64>,
    /// Diagonal jitter the factorization settled on.
    pub chol_jitter: f64,
    /// Cached weight vector `α = K⁻¹ z`.
    pub alpha: Vec<f64>,
    /// Number of real (non-hallucinated) observations.
    pub n_real: usize,
}

/// A fitted Gaussian process regression model (Eq. 2 of the paper).
///
/// Construction always succeeds into a usable posterior or fails loudly:
/// after [`Gp::fit`] the covariance Cholesky factor and the weight vector
/// `α = K⁻¹ y` are cached, so predictions are O(n·d) per query.
///
/// # Example
///
/// ```
/// use easybo_gp::{Gp, GpConfig};
///
/// # fn main() -> Result<(), easybo_gp::GpError> {
/// let x = vec![vec![0.0], vec![0.5], vec![1.0]];
/// let y = vec![0.0, 1.0, 0.0];
/// let gp = Gp::fit(x, y, GpConfig::default())?;
/// // Interpolates the training data closely (noise floor is tiny)…
/// assert!((gp.predict(&[0.5]).mean - 1.0).abs() < 0.05);
/// // …and is uncertain far away from it.
/// let far = gp.predict(&[10.0]);
/// assert!(far.variance > 0.1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Gp {
    kernel: ArdKernel,
    /// Kernel hyperparameters `[log ℓ…, log σ_f²]`.
    theta: Vec<f64>,
    /// Log noise variance in standardized target space.
    log_noise: f64,
    /// Training inputs (raw).
    x: Vec<Vec<f64>>,
    /// Standardized targets.
    z: Vector,
    scaler: YScaler,
    chol: Cholesky,
    /// `K⁻¹ z`.
    alpha: Vector,
    /// Number of *real* observations; the tail `x[n_real..]` are
    /// hallucinated pseudo-points added by [`Gp::augment`].
    n_real: usize,
}

impl Gp {
    /// Fits a GP to `(x, y)`, training hyperparameters by maximizing the
    /// log marginal likelihood (multi-restart L-BFGS).
    ///
    /// # Errors
    ///
    /// * [`GpError::EmptyTrainingSet`] for empty data.
    /// * [`GpError::InconsistentData`] for ragged inputs or `x`/`y` length
    ///   mismatch.
    /// * [`GpError::NonFiniteData`] for NaN/inf entries.
    /// * [`GpError::Linalg`] if the covariance cannot be factored.
    pub fn fit(x: Vec<Vec<f64>>, y: Vec<f64>, config: GpConfig) -> crate::Result<Self> {
        Self::fit_traced(x, y, config, &Telemetry::disabled())
    }

    /// [`Gp::fit`] with a telemetry handle: emits a
    /// [`Event::GpRefit`] carrying the training-set size, the learned
    /// `[θ…, log σ_n²]`, and the real seconds spent, and counts negative-
    /// log-likelihood evaluations, Cholesky factorizations, and kernel
    /// evaluations consumed by hyperparameter training.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Gp::fit`].
    pub fn fit_traced(
        x: Vec<Vec<f64>>,
        y: Vec<f64>,
        config: GpConfig,
        telemetry: &Telemetry,
    ) -> crate::Result<Self> {
        let t0 = std::time::Instant::now();
        let _refit_span = telemetry.span("gp_refit");
        let (x, z, scaler, kernel) = Self::prepare(x, &y, config.kernel)?;
        let (theta, log_noise) = {
            let _span = telemetry.span("lbfgs_restarts");
            train::train(
                &kernel,
                &x,
                &z,
                &config.train,
                config.noise_floor,
                telemetry,
            )
        };
        let gp = Self::assemble_traced(kernel, theta, log_noise, x, z, scaler, telemetry)?;
        telemetry.incr("gp_cholesky_factorizations", 1);
        let duration = t0.elapsed().as_secs_f64();
        telemetry.observe("gp_fit_s", duration);
        telemetry.emit_with(|| {
            let mut hyperparams = gp.theta().to_vec();
            hyperparams.push(gp.log_noise());
            Event::GpRefit {
                n: gp.n_train(),
                hyperparams,
                duration,
            }
        });
        Ok(gp)
    }

    /// Fits a GP with fixed, caller-supplied hyperparameters (no training).
    ///
    /// `theta` is the kernel hyperparameter vector `[log ℓ…, log σ_f²]` and
    /// `log_noise` the log noise variance in standardized target space.
    ///
    /// # Errors
    ///
    /// Same as [`Gp::fit`], plus [`GpError::BadHyperParameters`] if `theta`
    /// has the wrong length.
    pub fn fit_with_params(
        x: Vec<Vec<f64>>,
        y: Vec<f64>,
        kernel: KernelFamily,
        theta: Vec<f64>,
        log_noise: f64,
    ) -> crate::Result<Self> {
        let (x, z, scaler, kernel) = Self::prepare(x, &y, kernel)?;
        if theta.len() != kernel.n_theta() {
            return Err(GpError::BadHyperParameters {
                expected: kernel.n_theta(),
                actual: theta.len(),
            });
        }
        Self::assemble(kernel, theta, log_noise, x, z, scaler)
    }

    fn prepare(
        x: Vec<Vec<f64>>,
        y: &[f64],
        family: KernelFamily,
    ) -> crate::Result<(Vec<Vec<f64>>, Vector, YScaler, ArdKernel)> {
        if x.is_empty() {
            return Err(GpError::EmptyTrainingSet);
        }
        if x.len() != y.len() {
            return Err(GpError::InconsistentData {
                detail: format!("{} inputs but {} targets", x.len(), y.len()),
            });
        }
        let dim = x[0].len();
        if dim == 0 {
            return Err(GpError::InconsistentData {
                detail: "inputs must have at least one dimension".into(),
            });
        }
        for (i, row) in x.iter().enumerate() {
            if row.len() != dim {
                return Err(GpError::InconsistentData {
                    detail: format!("input {i} has {} dims, expected {dim}", row.len()),
                });
            }
            if row.iter().any(|v| !v.is_finite()) {
                return Err(GpError::NonFiniteData {
                    context: format!("input row {i}"),
                });
            }
        }
        if y.iter().any(|v| !v.is_finite()) {
            return Err(GpError::NonFiniteData {
                context: "targets".into(),
            });
        }
        let scaler = YScaler::fit(y);
        let z = Vector::from_iter(y.iter().map(|&v| scaler.transform(v)));
        Ok((x, z, scaler, ArdKernel::new(family, dim)))
    }

    fn assemble(
        kernel: ArdKernel,
        theta: Vec<f64>,
        log_noise: f64,
        x: Vec<Vec<f64>>,
        z: Vector,
        scaler: YScaler,
    ) -> crate::Result<Self> {
        Self::assemble_traced(
            kernel,
            theta,
            log_noise,
            x,
            z,
            scaler,
            &Telemetry::disabled(),
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn assemble_traced(
        kernel: ArdKernel,
        theta: Vec<f64>,
        log_noise: f64,
        x: Vec<Vec<f64>>,
        z: Vector,
        scaler: YScaler,
        telemetry: &Telemetry,
    ) -> crate::Result<Self> {
        let k = {
            let _span = telemetry.span("kernel_build");
            covariance_matrix(&kernel, &theta, log_noise, &x)
        };
        // Any well-formed kernel matrix passes the cheap SPD screen; a
        // failure here means the kernel itself is broken and the jitter
        // ladder below would only mask it.
        debug_assert!(
            k.is_spd_hint(),
            "kernel produced a matrix that cannot be positive definite"
        );
        let (chol, alpha) = {
            let _span = telemetry.span("cholesky");
            // Distinct from `gp_cholesky_factorizations`, which also counts
            // the factorization inside every training NLL evaluation: this
            // counts full factorizations of the surrogate itself, the work
            // the rank-1 update path replaces.
            telemetry.incr("cholesky_full", 1);
            let (chol, jitter_bumps) = Cholesky::new_counted(&k)?;
            if jitter_bumps > 0 {
                telemetry.incr("cholesky_jitter_bumps", jitter_bumps as u64);
            }
            let alpha = chol.solve_vec(&z);
            (chol, alpha)
        };
        let n_real = x.len();
        Ok(Gp {
            kernel,
            theta,
            log_noise,
            x,
            z,
            scaler,
            chol,
            alpha,
            n_real,
        })
    }

    /// Number of training points, including hallucinated pseudo-points.
    pub fn n_train(&self) -> usize {
        self.x.len()
    }

    /// Number of *real* (non-hallucinated) observations.
    pub fn n_real(&self) -> usize {
        self.n_real
    }

    /// Input dimensionality.
    pub fn dim(&self) -> usize {
        self.kernel.dim()
    }

    /// The kernel in use.
    pub fn kernel(&self) -> &ArdKernel {
        &self.kernel
    }

    /// Kernel hyperparameters `[log ℓ…, log σ_f²]`.
    pub fn theta(&self) -> &[f64] {
        &self.theta
    }

    /// Log noise variance (standardized target space).
    pub fn log_noise(&self) -> f64 {
        self.log_noise
    }

    /// The target scaler fitted to the training data.
    pub fn scaler(&self) -> &YScaler {
        &self.scaler
    }

    /// Captures the complete model state, bit-for-bit, for
    /// checkpointing. See [`GpState`].
    pub fn state(&self) -> GpState {
        GpState {
            kernel: self.kernel.family(),
            dim: self.kernel.dim(),
            theta: self.theta.clone(),
            log_noise: self.log_noise,
            x: self.x.clone(),
            z: self.z.as_slice().to_vec(),
            scaler_mean: self.scaler.mean(),
            scaler_std: self.scaler.std(),
            chol_factor: self.chol.factor().as_slice().to_vec(),
            chol_jitter: self.chol.jitter(),
            alpha: self.alpha.as_slice().to_vec(),
            n_real: self.n_real,
        }
    }

    /// Rebuilds a model from a captured [`GpState`]. The result
    /// continues every computation (predictions, incremental extends,
    /// augmentation) exactly where the captured model left off.
    ///
    /// # Errors
    ///
    /// * [`GpError::BadHyperParameters`] if `theta` has the wrong
    ///   length for the kernel.
    /// * [`GpError::InconsistentData`] if the part lengths disagree.
    /// * [`GpError::Linalg`] if the Cholesky factor cannot be rebuilt.
    pub fn from_state(state: GpState) -> crate::Result<Self> {
        let kernel = ArdKernel::new(state.kernel, state.dim);
        if state.theta.len() != kernel.n_theta() {
            return Err(GpError::BadHyperParameters {
                expected: kernel.n_theta(),
                actual: state.theta.len(),
            });
        }
        let n = state.x.len();
        if state.z.len() != n || state.alpha.len() != n {
            return Err(GpError::InconsistentData {
                detail: format!(
                    "{} inputs but {} targets / {} alpha entries",
                    n,
                    state.z.len(),
                    state.alpha.len()
                ),
            });
        }
        if state.n_real > n {
            return Err(GpError::InconsistentData {
                detail: format!("n_real {} exceeds {} training points", state.n_real, n),
            });
        }
        if state.x.iter().any(|row| row.len() != state.dim) {
            return Err(GpError::InconsistentData {
                detail: format!("input rows must all have {} dims", state.dim),
            });
        }
        let l = Matrix::from_vec(n, n, state.chol_factor)?;
        let chol = Cholesky::from_parts(l, state.chol_jitter)?;
        Ok(Gp {
            kernel,
            theta: state.theta,
            log_noise: state.log_noise,
            x: state.x,
            z: Vector::from(state.z),
            scaler: YScaler::from_parts(state.scaler_mean, state.scaler_std),
            chol,
            alpha: Vector::from(state.alpha),
            n_real: state.n_real,
        })
    }

    /// Posterior prediction at `x` in raw target units (noise-free latent).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != dim()`.
    pub fn predict(&self, x: &[f64]) -> Prediction {
        let (mean_z, var_z) = self.predict_standardized(x);
        Prediction {
            mean: self.scaler.inverse(mean_z),
            variance: self.scaler.inverse_variance(var_z),
        }
    }

    /// Posterior `(mean, variance)` in standardized target space.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != dim()`.
    pub fn predict_standardized(&self, x: &[f64]) -> (f64, f64) {
        assert_eq!(x.len(), self.dim(), "query dimension mismatch");
        let kstar = Vector::from_iter(self.x.iter().map(|xi| self.kernel.eval(&self.theta, x, xi)));
        let mean = kstar.dot(&self.alpha);
        let v = self.chol.solve_lower(&kstar);
        let prior = self.kernel.eval(&self.theta, x, x);
        let var = (prior - v.dot(&v)).max(0.0);
        (mean, var)
    }

    /// Posterior predictions for a whole batch of query points (raw units).
    ///
    /// Assembles the `n × m` cross-covariance `K*` once and runs a single
    /// multi-RHS forward substitution instead of `m` scalar solves; each
    /// entry is bit-identical to [`Gp::predict`] on the same point.
    ///
    /// # Panics
    ///
    /// Panics if any point has the wrong dimension.
    pub fn predict_batch(&self, xs: &[Vec<f64>]) -> Vec<Prediction> {
        self.predict_standardized_batch(xs)
            .into_iter()
            .map(|(mean_z, var_z)| Prediction {
                mean: self.scaler.inverse(mean_z),
                variance: self.scaler.inverse_variance(var_z),
            })
            .collect()
    }

    /// Batched posterior `(mean, variance)` in standardized target space —
    /// the batch counterpart of [`Gp::predict_standardized`], bit-identical
    /// per point.
    ///
    /// # Panics
    ///
    /// Panics if any point has the wrong dimension.
    pub fn predict_standardized_batch(&self, xs: &[Vec<f64>]) -> Vec<(f64, f64)> {
        if xs.is_empty() {
            return Vec::new();
        }
        let m = xs.len();
        let kstar = self.kernel.cross_covariance(&self.theta, &self.x, xs);
        let v = self.chol.solve_lower_multi(&kstar);
        // Row-wise accumulation: column j sees the same i-ascending order
        // as the scalar `kstar.dot(alpha)` / `v.dot(v)` reductions.
        let mut means = vec![0.0; m];
        let mut vss = vec![0.0; m];
        for i in 0..self.n_train() {
            let a = self.alpha[i];
            for (mu, &k) in means.iter_mut().zip(kstar.row(i)) {
                *mu += k * a;
            }
            for (s, &vij) in vss.iter_mut().zip(v.row(i)) {
                *s += vij * vij;
            }
        }
        // k(x, x) reduces to σ_f² exactly for every stationary family here
        // (the radial factor is exactly 1.0 at r² = 0), matching the scalar
        // path's `kernel.eval(x, x)` prior bit for bit.
        let prior = self.kernel.signal_variance(&self.theta);
        means
            .into_iter()
            .zip(vss)
            .map(|(mu, s)| (mu, (prior - s).max(0.0)))
            .collect()
    }

    /// Batched posterior means only (raw units) — the batch counterpart of
    /// [`Gp::predict_mean`], skipping the triangular solves entirely.
    ///
    /// # Panics
    ///
    /// Panics if any point has the wrong dimension.
    pub fn predict_mean_batch(&self, xs: &[Vec<f64>]) -> Vec<f64> {
        if xs.is_empty() {
            return Vec::new();
        }
        let kstar = self.kernel.cross_covariance(&self.theta, &self.x, xs);
        let mut means = vec![0.0; xs.len()];
        for i in 0..self.n_train() {
            let a = self.alpha[i];
            for (mu, &k) in means.iter_mut().zip(kstar.row(i)) {
                *mu += k * a;
            }
        }
        means
            .into_iter()
            .map(|mu| self.scaler.inverse(mu))
            .collect()
    }

    /// Cross-covariance weights `v = L⁻¹ k*(x)` of a query point.
    ///
    /// Joint posterior covariances follow as
    /// `cov(x, x') = k(x, x') − v(x)·v(x')` (standardized target space) —
    /// the building block for exact finite-dimensional Thompson sampling.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != dim()`.
    pub fn posterior_cross_weights(&self, x: &[f64]) -> Vector {
        assert_eq!(x.len(), self.dim(), "query dimension mismatch");
        let kstar = Vector::from_iter(self.x.iter().map(|xi| self.kernel.eval(&self.theta, x, xi)));
        self.chol.solve_lower(&kstar)
    }

    /// Posterior mean only (skips the triangular solve), raw units.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != dim()`.
    pub fn predict_mean(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.dim(), "query dimension mismatch");
        let mean_z: f64 = self
            .x
            .iter()
            .zip(self.alpha.iter())
            .map(|(xi, &a)| self.kernel.eval(&self.theta, x, xi) * a)
            .sum();
        self.scaler.inverse(mean_z)
    }

    /// Leave-one-out cross-validation residuals in **raw target units**,
    /// computed with the closed-form K⁻¹ identity (Rasmussen & Williams
    /// §5.4.2): for each training point `i`,
    /// `μ₋ᵢ = yᵢ − αᵢ / [K⁻¹]ᵢᵢ` and `σ²₋ᵢ = 1 / [K⁻¹]ᵢᵢ`,
    /// i.e. one O(n³) solve instead of n refits.
    ///
    /// Returns `(residual, predictive_std)` per training point — the
    /// standard calibration diagnostic for a fitted surrogate.
    pub fn loo_residuals(&self) -> Vec<(f64, f64)> {
        let kinv = self.chol.inverse();
        (0..self.n_train())
            .map(|i| {
                let kii = kinv[(i, i)].max(1e-300);
                let resid_z = self.alpha[i] / kii;
                let std_z = (1.0 / kii).sqrt();
                (resid_z * self.scaler.std(), std_z * self.scaler.std())
            })
            .collect()
    }

    /// Log marginal likelihood of the (standardized) training data under the
    /// current hyperparameters.
    pub fn log_marginal_likelihood(&self) -> f64 {
        let n = self.n_train() as f64;
        -0.5 * self.z.dot(&self.alpha)
            - 0.5 * self.chol.log_det()
            - 0.5 * n * (2.0 * std::f64::consts::PI).ln()
    }

    /// Returns a new GP augmented with hallucinated **pseudo-points**: each
    /// point in `points` is added to the training set with its *current
    /// predictive mean* as the observation (§III-C of the paper, following
    /// the BUCB strategy of Desautels et al.).
    ///
    /// The posterior mean is unchanged (in exact arithmetic) but the
    /// predictive uncertainty `σ̂(x)` collapses around the busy points,
    /// which is exactly the penalization EasyBO's acquisition needs. The
    /// update is incremental: O(n²) per appended point.
    ///
    /// # Errors
    ///
    /// Returns [`GpError::Linalg`] if the extended covariance loses positive
    /// definiteness (e.g. many duplicated pseudo-points), and
    /// [`GpError::InconsistentData`] / [`GpError::NonFiniteData`] for bad
    /// input points.
    pub fn augment(&self, points: &[Vec<f64>]) -> crate::Result<Self> {
        let mut out = self.clone();
        for (i, p) in points.iter().enumerate() {
            if p.len() != self.dim() {
                return Err(GpError::InconsistentData {
                    detail: format!(
                        "pseudo-point {i} has {} dims, expected {}",
                        p.len(),
                        self.dim()
                    ),
                });
            }
            if p.iter().any(|v| !v.is_finite()) {
                return Err(GpError::NonFiniteData {
                    context: format!("pseudo-point {i}"),
                });
            }
            let (mean_z, _) = out.predict_standardized(p);
            out.push_point_standardized(p.clone(), mean_z)?;
        }
        Ok(out)
    }

    /// Returns a new GP with one additional *real* observation, updated
    /// incrementally in O(n²) without hyperparameter retraining.
    ///
    /// The target scaler is kept fixed (refit happens on the next full
    /// [`Gp::fit`]), so this is intended for the fast inner loop of batch
    /// BO drivers between scheduled hyperparameter retrainings.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Gp::augment`].
    pub fn extend_observed(&self, x: Vec<f64>, y: f64) -> crate::Result<Self> {
        if x.len() != self.dim() {
            return Err(GpError::InconsistentData {
                detail: format!("new point has {} dims, expected {}", x.len(), self.dim()),
            });
        }
        if x.iter().any(|v| !v.is_finite()) || !y.is_finite() {
            return Err(GpError::NonFiniteData {
                context: "extend_observed".into(),
            });
        }
        let mut out = self.clone();
        let z = out.scaler.transform(y);
        out.push_point_standardized(x, z)?;
        out.n_real = out.x.len();
        Ok(out)
    }

    /// Appends `(x, z)` (z already standardized), extending the Cholesky
    /// factor incrementally and recomputing `α`. Returns `true` when the
    /// duplicate-point pivot floor fired inside the factor extension —
    /// [`crate::IncrementalGp`] surfaces that as a telemetry counter.
    ///
    /// On error the model is left untouched.
    pub(crate) fn push_point_standardized(&mut self, x: Vec<f64>, z: f64) -> crate::Result<bool> {
        let cross = Vector::from_iter(
            self.x
                .iter()
                .map(|xi| self.kernel.eval(&self.theta, &x, xi)),
        );
        let diag = self.kernel.eval(&self.theta, &x, &x) + self.log_noise.exp();
        let floored = self.chol.extend(&cross, diag)?;
        self.x.push(x);
        let mut z_new = self.z.clone();
        z_new.extend([z]);
        self.z = z_new;
        self.alpha = self.chol.solve_vec(&self.z);
        Ok(floored)
    }

    /// Shrinks the model back to its leading `k` training points, restoring
    /// the caller-saved weight vector `α` verbatim.
    ///
    /// Because [`Cholesky::extend`] copies the existing factor block
    /// unchanged and [`Cholesky::truncate`] moves (never recomputes) the
    /// surviving entries, this restores the exact pre-push model bit for
    /// bit — the `pop_pseudo` half of [`crate::IncrementalGp`].
    ///
    /// # Panics
    ///
    /// Panics if `k > n_train()`, `alpha.len() != k`, or the tail being
    /// dropped contains real observations.
    pub(crate) fn truncate_to(&mut self, k: usize, alpha: Vector) {
        assert!(k <= self.x.len(), "truncate_to: {k} > {}", self.x.len());
        assert!(
            k >= self.n_real,
            "truncate_to would drop real observations ({k} < {})",
            self.n_real
        );
        assert_eq!(alpha.len(), k, "truncate_to: alpha length mismatch");
        self.chol.truncate(k);
        self.x.truncate(k);
        let mut z = self.z.as_slice().to_vec();
        z.truncate(k);
        self.z = Vector::from(z);
        self.alpha = alpha;
    }

    /// The cached weight vector `α = K⁻¹ z`.
    pub(crate) fn alpha_vec(&self) -> &Vector {
        &self.alpha
    }

    /// Training inputs, including any hallucinated tail.
    pub(crate) fn x_rows(&self) -> &[Vec<f64>] {
        &self.x
    }

    /// Marks every current training point as a real observation (used after
    /// an in-place [`Gp::push_point_standardized`] of real data).
    pub(crate) fn mark_all_real(&mut self) {
        self.n_real = self.x.len();
    }
}

/// Builds `K = K_f + σ_n² I` for the given inputs via the batched symmetric
/// kernel builder (lower triangle evaluated once, inverse length-scales
/// hoisted out of the pair loop).
pub(crate) fn covariance_matrix(
    kernel: &ArdKernel,
    theta: &[f64],
    log_noise: f64,
    x: &[Vec<f64>],
) -> Matrix {
    let mut k = kernel.covariance(theta, x);
    k.add_diagonal(log_noise.exp());
    k
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_1d() -> (Vec<Vec<f64>>, Vec<f64>) {
        let x: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64 / 9.0]).collect();
        let y: Vec<f64> = x.iter().map(|p| (6.0 * p[0]).sin() + 2.0).collect();
        (x, y)
    }

    fn fixed_gp(x: Vec<Vec<f64>>, y: Vec<f64>) -> Gp {
        let d = x[0].len();
        let mut theta = vec![-1.0; d + 1]; // length-scales e^-1
        theta[d] = 0.0; // unit signal variance
        Gp::fit_with_params(
            x,
            y,
            KernelFamily::SquaredExponential,
            theta,
            (1e-6f64).ln(),
        )
        .unwrap()
    }

    #[test]
    fn rejects_bad_inputs() {
        assert!(matches!(
            Gp::fit(vec![], vec![], GpConfig::default()),
            Err(GpError::EmptyTrainingSet)
        ));
        assert!(matches!(
            Gp::fit(vec![vec![0.0]], vec![1.0, 2.0], GpConfig::default()),
            Err(GpError::InconsistentData { .. })
        ));
        assert!(matches!(
            Gp::fit(
                vec![vec![0.0], vec![1.0, 2.0]],
                vec![1.0, 2.0],
                GpConfig::default()
            ),
            Err(GpError::InconsistentData { .. })
        ));
        assert!(matches!(
            Gp::fit(vec![vec![f64::NAN]], vec![1.0], GpConfig::default()),
            Err(GpError::NonFiniteData { .. })
        ));
        assert!(matches!(
            Gp::fit(vec![vec![0.0]], vec![f64::INFINITY], GpConfig::default()),
            Err(GpError::NonFiniteData { .. })
        ));
    }

    #[test]
    fn fit_with_params_checks_theta_len() {
        assert!(matches!(
            Gp::fit_with_params(
                vec![vec![0.0]],
                vec![1.0],
                KernelFamily::SquaredExponential,
                vec![0.0; 5],
                -10.0
            ),
            Err(GpError::BadHyperParameters {
                expected: 2,
                actual: 5
            })
        ));
    }

    #[test]
    fn state_round_trip_is_bit_identical() {
        let (x, y) = toy_1d();
        // Grow incrementally so the cached factor differs from a
        // from-scratch refactorization — the case resume must preserve.
        let gp = fixed_gp(x, y)
            .extend_observed(vec![0.55], 2.4)
            .unwrap()
            .extend_observed(vec![0.62], 2.1)
            .unwrap();
        let rebuilt = Gp::from_state(gp.state()).unwrap();
        assert_eq!(rebuilt.state(), gp.state());
        for q in [0.0, 0.31, 0.55, 0.97] {
            let a = gp.predict(&[q]);
            let b = rebuilt.predict(&[q]);
            assert_eq!(a.mean.to_bits(), b.mean.to_bits(), "mean at {q}");
            assert_eq!(a.variance.to_bits(), b.variance.to_bits(), "var at {q}");
        }
        // Future incremental growth also continues identically.
        let g1 = gp.extend_observed(vec![0.8], 1.9).unwrap();
        let g2 = rebuilt.extend_observed(vec![0.8], 1.9).unwrap();
        assert_eq!(g1.state(), g2.state());
    }

    #[test]
    fn from_state_rejects_inconsistent_parts() {
        let (x, y) = toy_1d();
        let gp = fixed_gp(x, y);
        let mut s = gp.state();
        s.alpha.pop();
        assert!(matches!(
            Gp::from_state(s),
            Err(GpError::InconsistentData { .. })
        ));
        let mut s = gp.state();
        s.theta.push(0.0);
        assert!(matches!(
            Gp::from_state(s),
            Err(GpError::BadHyperParameters { .. })
        ));
        let mut s = gp.state();
        s.n_real = s.x.len() + 1;
        assert!(matches!(
            Gp::from_state(s),
            Err(GpError::InconsistentData { .. })
        ));
        let mut s = gp.state();
        s.chol_factor.pop();
        assert!(matches!(Gp::from_state(s), Err(GpError::Linalg(_))));
    }

    #[test]
    fn interpolates_training_points() {
        let (x, y) = toy_1d();
        let gp = fixed_gp(x.clone(), y.clone());
        for (xi, yi) in x.iter().zip(y.iter()) {
            let p = gp.predict(xi);
            assert!((p.mean - yi).abs() < 1e-2, "at {xi:?}: {} vs {yi}", p.mean);
            assert!(p.variance < 1e-3);
        }
    }

    #[test]
    fn uncertainty_grows_away_from_data() {
        let (x, y) = toy_1d();
        let gp = fixed_gp(x, y);
        let near = gp.predict(&[0.5]);
        let far = gp.predict(&[5.0]);
        assert!(far.variance > near.variance * 10.0);
    }

    #[test]
    fn far_field_mean_reverts_to_data_mean() {
        let (x, y) = toy_1d();
        let mean_y = easybo_linalg::mean(&y);
        let gp = fixed_gp(x, y);
        let far = gp.predict(&[100.0]);
        assert!((far.mean - mean_y).abs() < 1e-6);
    }

    #[test]
    fn predict_mean_matches_predict() {
        let (x, y) = toy_1d();
        let gp = fixed_gp(x, y);
        for q in [0.1, 0.37, 0.93, 2.0] {
            assert!((gp.predict(&[q]).mean - gp.predict_mean(&[q])).abs() < 1e-12);
        }
    }

    #[test]
    fn trained_fit_beats_bad_fixed_hyperparams() {
        let (x, y) = toy_1d();
        let trained = Gp::fit(x.clone(), y.clone(), GpConfig::default()).unwrap();
        let clumsy = Gp::fit_with_params(
            x,
            y,
            KernelFamily::SquaredExponential,
            vec![3.0, 0.0], // absurdly long length-scale
            (0.5f64).ln(),  // huge noise
        )
        .unwrap();
        assert!(trained.log_marginal_likelihood() > clumsy.log_marginal_likelihood());
    }

    #[test]
    fn predict_batch_bitwise_matches_scalar() {
        let (x, y) = toy_1d();
        let gp = fixed_gp(x, y);
        let queries: Vec<Vec<f64>> = (0..17).map(|i| vec![i as f64 / 16.0 - 0.1]).collect();
        let batch = gp.predict_batch(&queries);
        let mean_batch = gp.predict_mean_batch(&queries);
        assert_eq!(batch.len(), queries.len());
        for (i, q) in queries.iter().enumerate() {
            let scalar = gp.predict(q);
            // Exact equality: the batch path performs the same operations
            // in the same order per query point.
            assert_eq!(batch[i].mean, scalar.mean, "mean at query {i}");
            assert_eq!(batch[i].variance, scalar.variance, "variance at query {i}");
            assert_eq!(mean_batch[i], gp.predict_mean(q), "mean-only at query {i}");
        }
        assert!(gp.predict_batch(&[]).is_empty());
        assert!(gp.predict_mean_batch(&[]).is_empty());
    }

    #[test]
    fn predict_batch_bitwise_matches_scalar_on_augmented_gp() {
        let (x, y) = toy_1d();
        let gp = fixed_gp(x, y);
        let aug = gp.augment(&[vec![0.25], vec![0.85]]).unwrap();
        let queries: Vec<Vec<f64>> = (0..9).map(|i| vec![i as f64 / 8.0]).collect();
        for (pred, q) in aug.predict_batch(&queries).iter().zip(&queries) {
            let scalar = aug.predict(q);
            assert_eq!(pred.mean, scalar.mean);
            assert_eq!(pred.variance, scalar.variance);
        }
    }

    #[test]
    fn augment_shrinks_variance_without_moving_mean() {
        // Sparse design so the gap at 0.55 has real prior uncertainty left.
        let x: Vec<Vec<f64>> = vec![vec![0.0], vec![0.3], vec![0.9], vec![1.3]];
        let y: Vec<f64> = x.iter().map(|p| (6.0 * p[0]).sin() + 2.0).collect();
        let gp = fixed_gp(x, y);
        let busy = vec![vec![0.55]];
        let aug = gp.augment(&busy).unwrap();
        // Variance collapses at the busy point…
        let v0 = gp.predict(&[0.55]).variance;
        let v1 = aug.predict(&[0.55]).variance;
        assert!(v1 < v0 * 0.5 + 1e-12, "v0={v0} v1={v1}");
        // …while the mean is (numerically) unchanged everywhere.
        for q in [0.05, 0.3, 0.55, 0.8, 1.2] {
            let m0 = gp.predict(&[q]).mean;
            let m1 = aug.predict(&[q]).mean;
            assert!((m0 - m1).abs() < 1e-6, "mean moved at {q}: {m0} vs {m1}");
        }
        assert_eq!(aug.n_real(), gp.n_real());
        assert_eq!(aug.n_train(), gp.n_train() + 1);
    }

    #[test]
    fn augment_far_point_does_not_affect_near_field() {
        let (x, y) = toy_1d();
        let gp = fixed_gp(x, y);
        let aug = gp.augment(&[vec![50.0]]).unwrap();
        let v0 = gp.predict(&[0.5]).variance;
        let v1 = aug.predict(&[0.5]).variance;
        assert!((v0 - v1).abs() < 1e-10);
    }

    #[test]
    fn augment_rejects_bad_points() {
        let (x, y) = toy_1d();
        let gp = fixed_gp(x, y);
        assert!(gp.augment(&[vec![0.1, 0.2]]).is_err());
        assert!(gp.augment(&[vec![f64::NAN]]).is_err());
    }

    #[test]
    fn extend_observed_matches_full_refit() {
        let (mut x, mut y) = toy_1d();
        let new_x = vec![0.77];
        let new_y = 2.3;
        let gp = fixed_gp(x.clone(), y.clone());
        let ext = gp.extend_observed(new_x.clone(), new_y).unwrap();
        x.push(new_x);
        y.push(new_y);
        // Full refit with the *same* scaler/hyperparameters for comparison:
        // build via fit_with_params on raw data, then compare predictions
        // (scalers differ slightly, so compare in raw space with tolerance).
        let refit = Gp::fit_with_params(
            x,
            y,
            KernelFamily::SquaredExponential,
            gp.theta().to_vec(),
            gp.log_noise(),
        )
        .unwrap();
        for q in [0.1, 0.5, 0.77, 0.9] {
            let a = ext.predict(&[q]);
            let b = refit.predict(&[q]);
            assert!(
                (a.mean - b.mean).abs() < 5e-2,
                "mean at {q}: {} vs {}",
                a.mean,
                b.mean
            );
        }
        assert_eq!(ext.n_real(), 11);
    }

    #[test]
    fn lml_matches_direct_computation() {
        // 2-point GP with known kernel values: check LML against the
        // closed-form multivariate normal density.
        let x = vec![vec![0.0], vec![1.0]];
        let y = vec![1.0, -1.0];
        let gp = Gp::fit_with_params(
            x,
            y,
            KernelFamily::SquaredExponential,
            vec![0.0, 0.0],
            (0.1f64).ln(),
        )
        .unwrap();
        // Standardized targets: mean 0, std 1 => z = (1, -1).
        // K^{-1} z = (a+b, -(a+b)) / det, so z^T K^{-1} z = 2(a+b)/det.
        let k01 = (-0.5f64).exp();
        let (a, b) = (1.0 + 0.1, k01);
        let det = a * a - b * b;
        let zkz = 2.0 * (a + b) / det;
        let expect = -0.5 * zkz - 0.5 * det.ln() - (2.0 * std::f64::consts::PI).ln();
        assert!(
            (gp.log_marginal_likelihood() - expect).abs() < 1e-9,
            "{} vs {expect}",
            gp.log_marginal_likelihood()
        );
    }

    #[test]
    fn multidimensional_fit_predicts_plane() {
        // Linear-ish surface in 3-d; GP with trained hyperparams should get
        // interior predictions roughly right.
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..4 {
            for j in 0..4 {
                for k in 0..2 {
                    let p = vec![i as f64 / 3.0, j as f64 / 3.0, k as f64];
                    y.push(p[0] + 2.0 * p[1] - 0.5 * p[2]);
                    x.push(p);
                }
            }
        }
        let gp = Gp::fit(x, y, GpConfig::default()).unwrap();
        let q = [0.5, 0.5, 0.5];
        let expect = 0.5 + 1.0 - 0.25;
        assert!((gp.predict(&q).mean - expect).abs() < 0.15);
    }

    #[test]
    fn loo_residuals_match_explicit_refits() {
        // Compare the closed-form LOO against literally removing each point
        // and refitting with the same hyperparameters.
        let (x, y) = toy_1d();
        let gp = fixed_gp(x.clone(), y.clone());
        let loo = gp.loo_residuals();
        assert_eq!(loo.len(), x.len());
        for (i, &(resid, std)) in loo.iter().enumerate() {
            let mut xs = x.clone();
            let mut ys = y.clone();
            let xi = xs.remove(i);
            let yi = ys.remove(i);
            // Refit with identical hyperparameters and scaler-free compare:
            // the scalers differ slightly between full and reduced sets, so
            // allow a proportional tolerance.
            let reduced = Gp::fit_with_params(
                xs,
                ys,
                KernelFamily::SquaredExponential,
                gp.theta().to_vec(),
                gp.log_noise(),
            )
            .unwrap();
            let pred = reduced.predict(&xi);
            let explicit_resid = yi - pred.mean;
            assert!(
                (resid - explicit_resid).abs() < 0.15 * (1.0 + explicit_resid.abs()),
                "point {i}: closed-form {resid} vs explicit {explicit_resid}"
            );
            assert!(std > 0.0);
        }
    }

    #[test]
    fn loo_flags_an_outlier() {
        let mut x: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64 / 9.0]).collect();
        let mut y: Vec<f64> = x.iter().map(|p| p[0]).collect();
        x.push(vec![0.55]);
        y.push(10.0); // gross outlier in an otherwise linear dataset
        let gp = Gp::fit_with_params(
            x,
            y,
            KernelFamily::SquaredExponential,
            vec![-1.0, 0.0],
            (1e-4f64).ln(),
        )
        .unwrap();
        let loo = gp.loo_residuals();
        // The outlier's standardized LOO residual dwarfs everyone else's.
        let zscores: Vec<f64> = loo.iter().map(|(r, s)| (r / s).abs()).collect();
        let max_idx = zscores
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .unwrap();
        assert_eq!(max_idx, 10, "outlier not flagged: {zscores:?}");
    }

    #[test]
    fn prediction_std_accessor() {
        let p = Prediction {
            mean: 1.0,
            variance: 4.0,
        };
        assert_eq!(p.std(), 2.0);
        let neg = Prediction {
            mean: 0.0,
            variance: -1e-18,
        };
        assert_eq!(neg.std(), 0.0);
    }
}
