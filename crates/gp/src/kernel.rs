//! ARD (automatic relevance determination) covariance kernels with analytic
//! gradients in **log-hyperparameter space**.
//!
//! The hyperparameter vector layout shared by every kernel family is
//! `θ = [log ℓ₁, …, log ℓ_d, log σ_f²]`: one log length-scale per input
//! dimension followed by the log signal variance. The observation noise
//! lives in the GP model, not the kernel.

use easybo_linalg::Matrix;
use serde::{Deserialize, Serialize};

/// Fixed shape parameter of the rational-quadratic kernel.
const RQ_ALPHA: f64 = 2.0;

/// Scaled squared distance with precomputed inverse length-scales: the same
/// `(aᵢ-bᵢ)·ℓᵢ⁻¹` arithmetic (and accumulation order) as [`ArdKernel::eval`],
/// so batched builders produce bit-identical kernel values.
fn scaled_r2(a: &[f64], b: &[f64], inv_l: &[f64]) -> f64 {
    let mut r2 = 0.0;
    for ((&ai, &bi), &il) in a.iter().zip(b).zip(inv_l) {
        let d = (ai - bi) * il;
        r2 += d * d;
    }
    r2
}

/// The kernel families available to [`ArdKernel`].
///
/// The EasyBO paper uses the squared-exponential kernel (§II-B); the Matérn
/// variants are provided as drop-in extensions (rougher sample paths, often
/// better-behaved hyperparameter surfaces on real circuit data).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum KernelFamily {
    /// Squared exponential (RBF / Gaussian), infinitely differentiable.
    #[default]
    SquaredExponential,
    /// Matérn ν = 5/2, twice differentiable.
    Matern52,
    /// Matérn ν = 3/2, once differentiable.
    Matern32,
    /// Rational quadratic with fixed shape α = 2 — a scale mixture of SE
    /// kernels, heavier-tailed than SE (extension beyond the paper).
    RationalQuadratic,
}

/// An ARD kernel: a [`KernelFamily`] bound to an input dimension, evaluated
/// under an externally supplied hyperparameter vector.
///
/// # Example
///
/// ```
/// use easybo_gp::kernel::{ArdKernel, KernelFamily};
///
/// let k = ArdKernel::new(KernelFamily::SquaredExponential, 2);
/// let theta = k.default_theta(); // unit length-scales, unit variance
/// let same = k.eval(&theta, &[0.3, 0.4], &[0.3, 0.4]);
/// assert!((same - 1.0).abs() < 1e-12); // k(x, x) = σ_f²
/// let far = k.eval(&theta, &[0.0, 0.0], &[10.0, 10.0]);
/// assert!(far < 1e-10); // decays with distance
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ArdKernel {
    family: KernelFamily,
    dim: usize,
}

impl ArdKernel {
    /// Creates a kernel of the given family over `dim`-dimensional inputs.
    pub fn new(family: KernelFamily, dim: usize) -> Self {
        ArdKernel { family, dim }
    }

    /// The kernel family.
    pub fn family(&self) -> KernelFamily {
        self.family
    }

    /// Input dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of hyperparameters: `dim` log length-scales + log σ_f².
    pub fn n_theta(&self) -> usize {
        self.dim + 1
    }

    /// Default hyperparameters: unit length-scales and unit signal variance
    /// (all zeros in log space) — sensible for unit-cube inputs and z-scored
    /// targets.
    pub fn default_theta(&self) -> Vec<f64> {
        vec![0.0; self.n_theta()]
    }

    /// Signal variance σ_f² encoded in `theta`.
    ///
    /// # Panics
    ///
    /// Panics if `theta.len() != n_theta()`.
    pub fn signal_variance(&self, theta: &[f64]) -> f64 {
        assert_eq!(theta.len(), self.n_theta(), "theta length mismatch");
        theta[self.dim].exp()
    }

    /// Scaled squared distance `r² = Σ ((aᵢ-bᵢ)/ℓᵢ)²` and, via `r = sqrt(r²)`,
    /// the argument of every stationary kernel here.
    fn r2(&self, theta: &[f64], a: &[f64], b: &[f64]) -> f64 {
        let mut r2 = 0.0;
        for i in 0..self.dim {
            let inv_l = (-theta[i]).exp();
            let d = (a[i] - b[i]) * inv_l;
            r2 += d * d;
        }
        r2
    }

    /// Family-specific kernel value from the signal variance and scaled
    /// squared distance — the single place the radial profile is computed,
    /// shared by the scalar and batched evaluation paths.
    fn eval_r2(&self, sf2: f64, r2: f64) -> f64 {
        match self.family {
            KernelFamily::SquaredExponential => sf2 * (-0.5 * r2).exp(),
            KernelFamily::Matern52 => {
                let r = r2.sqrt();
                let s = 5f64.sqrt() * r;
                sf2 * (1.0 + s + s * s / 3.0) * (-s).exp()
            }
            KernelFamily::Matern32 => {
                let r = r2.sqrt();
                let s = 3f64.sqrt() * r;
                sf2 * (1.0 + s) * (-s).exp()
            }
            KernelFamily::RationalQuadratic => sf2 * (1.0 + r2 / (2.0 * RQ_ALPHA)).powf(-RQ_ALPHA),
        }
    }

    /// Inverse length-scales `ℓᵢ⁻¹ = e^{-θᵢ}`, hoisted out of batched builds
    /// so the O(n·m·d) inner loop pays no transcendental calls.
    fn inv_lengthscales(&self, theta: &[f64]) -> Vec<f64> {
        theta[..self.dim].iter().map(|t| (-t).exp()).collect()
    }

    /// Evaluates `k(a, b)` under hyperparameters `theta`.
    ///
    /// # Panics
    ///
    /// Panics if `theta`, `a` or `b` have the wrong length.
    pub fn eval(&self, theta: &[f64], a: &[f64], b: &[f64]) -> f64 {
        assert_eq!(theta.len(), self.n_theta(), "theta length mismatch");
        assert_eq!(a.len(), self.dim, "input a dimension mismatch");
        assert_eq!(b.len(), self.dim, "input b dimension mismatch");
        let sf2 = theta[self.dim].exp();
        let r2 = self.r2(theta, a, b);
        self.eval_r2(sf2, r2)
    }

    /// Symmetric noise-free covariance matrix `K[i,j] = k(xs[i], xs[j])`.
    ///
    /// Only the lower triangle is evaluated (then mirrored), and the inverse
    /// length-scales are hoisted out of the pair loop; every entry is
    /// bit-identical to the corresponding [`ArdKernel::eval`] call.
    ///
    /// # Panics
    ///
    /// Panics if `theta` or any point has the wrong length.
    pub fn covariance(&self, theta: &[f64], xs: &[Vec<f64>]) -> Matrix {
        assert_eq!(theta.len(), self.n_theta(), "theta length mismatch");
        for x in xs {
            assert_eq!(x.len(), self.dim, "input dimension mismatch");
        }
        let inv_l = self.inv_lengthscales(theta);
        let sf2 = theta[self.dim].exp();
        Matrix::symmetric_from_fn(xs.len(), |i, j| {
            self.eval_r2(sf2, scaled_r2(&xs[i], &xs[j], &inv_l))
        })
    }

    /// Cross-covariance block `K[i,j] = k(rows[i], cols[j])` between a
    /// training set and a batch of query points, built in one pass with the
    /// query points packed contiguously. Entries are bit-identical to
    /// per-pair [`ArdKernel::eval`] calls.
    ///
    /// # Panics
    ///
    /// Panics if `theta` or any point has the wrong length.
    pub fn cross_covariance(&self, theta: &[f64], rows: &[Vec<f64>], cols: &[Vec<f64>]) -> Matrix {
        assert_eq!(theta.len(), self.n_theta(), "theta length mismatch");
        for x in rows.iter().chain(cols) {
            assert_eq!(x.len(), self.dim, "input dimension mismatch");
        }
        let inv_l = self.inv_lengthscales(theta);
        let sf2 = theta[self.dim].exp();
        let d = self.dim.max(1);
        // Pack the queries into one contiguous block so the inner loop
        // streams cache lines instead of chasing per-Vec allocations.
        let mut packed = Vec::with_capacity(cols.len() * d);
        for c in cols {
            packed.extend_from_slice(c);
            packed.resize(packed.len() + (d - self.dim), 0.0);
        }
        let mut k = Matrix::zeros(rows.len(), cols.len());
        for (i, a) in rows.iter().enumerate() {
            let out = k.row_mut(i);
            for (o, q) in out.iter_mut().zip(packed.chunks_exact(d)) {
                *o = self.eval_r2(sf2, scaled_r2(a, &q[..self.dim], &inv_l));
            }
        }
        k
    }

    /// Evaluates `k(a, b)` and writes `∂k/∂θᵢ` (log-space gradients) into
    /// `grad`. Returns the kernel value.
    ///
    /// # Panics
    ///
    /// Panics if any slice has the wrong length.
    pub fn eval_with_grad(&self, theta: &[f64], a: &[f64], b: &[f64], grad: &mut [f64]) -> f64 {
        assert_eq!(
            grad.len(),
            self.n_theta(),
            "gradient buffer length mismatch"
        );
        let k = self.eval(theta, a, b);
        let d = self.dim;
        // Per-dimension scaled squared differences u_i = (Δ_i / ℓ_i)².
        // For every family, ∂k/∂log ℓ_i = g(r) · u_i with a family-specific
        // radial factor g(r); ∂k/∂log σ_f² = k.
        let r2 = self.r2(theta, a, b);
        let radial = match self.family {
            // d k / d u_i = -k/2  =>  d k / d log l_i = k * u_i
            KernelFamily::SquaredExponential => k,
            KernelFamily::Matern52 => {
                let sf2 = theta[d].exp();
                let r = r2.sqrt();
                let s5 = 5f64.sqrt();
                // dk/d log l_i = sf2 * (5/3)(1 + √5 r) e^{-√5 r} * u_i
                sf2 * (5.0 / 3.0) * (1.0 + s5 * r) * (-s5 * r).exp()
            }
            KernelFamily::Matern32 => {
                let sf2 = theta[d].exp();
                let r = r2.sqrt();
                let s3 = 3f64.sqrt();
                // dk/d log l_i = sf2 * 3 e^{-√3 r} * u_i
                sf2 * 3.0 * (-s3 * r).exp()
            }
            KernelFamily::RationalQuadratic => {
                // dk/d log l_i = sf2 * (1 + r²/2α)^{-α-1} * u_i
                let sf2 = theta[d].exp();
                sf2 * (1.0 + r2 / (2.0 * RQ_ALPHA)).powf(-RQ_ALPHA - 1.0)
            }
        };
        for i in 0..d {
            let inv_l = (-theta[i]).exp();
            let u = (a[i] - b[i]) * inv_l;
            grad[i] = radial * u * u;
        }
        grad[d] = k;
        k
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    const FAMILIES: [KernelFamily; 4] = [
        KernelFamily::SquaredExponential,
        KernelFamily::Matern52,
        KernelFamily::Matern32,
        KernelFamily::RationalQuadratic,
    ];

    #[test]
    fn diagonal_equals_signal_variance() {
        for fam in FAMILIES {
            let k = ArdKernel::new(fam, 3);
            let mut theta = k.default_theta();
            theta[3] = 0.7; // log sf2
            let x = [0.1, 0.2, 0.3];
            assert!(
                (k.eval(&theta, &x, &x) - 0.7f64.exp()).abs() < 1e-12,
                "{fam:?}"
            );
        }
    }

    #[test]
    fn symmetric_in_arguments() {
        for fam in FAMILIES {
            let k = ArdKernel::new(fam, 2);
            let theta = [0.3, -0.2, 0.1];
            let a = [0.0, 1.0];
            let b = [0.5, -0.3];
            assert_eq!(k.eval(&theta, &a, &b), k.eval(&theta, &b, &a), "{fam:?}");
        }
    }

    #[test]
    fn decays_monotonically_with_distance() {
        for fam in FAMILIES {
            let k = ArdKernel::new(fam, 1);
            let theta = k.default_theta();
            let mut prev = f64::INFINITY;
            for step in 0..20 {
                let v = k.eval(&theta, &[0.0], &[step as f64 * 0.3]);
                assert!(v <= prev + 1e-15, "{fam:?} rose at step {step}");
                assert!(v > 0.0, "{fam:?} must stay positive");
                prev = v;
            }
        }
    }

    #[test]
    fn lengthscale_controls_reach() {
        let k = ArdKernel::new(KernelFamily::SquaredExponential, 1);
        let short = [-1.0f64, 0.0]; // l = e^-1
        let long = [1.0f64, 0.0]; // l = e^1
        let v_short = k.eval(&short, &[0.0], &[1.0]);
        let v_long = k.eval(&long, &[0.0], &[1.0]);
        assert!(v_long > v_short);
    }

    #[test]
    fn ard_dimensions_are_independent() {
        let k = ArdKernel::new(KernelFamily::SquaredExponential, 2);
        // Huge length-scale in dim 1 makes it irrelevant.
        let theta = [0.0, 10.0, 0.0];
        let near = k.eval(&theta, &[0.0, 0.0], &[0.0, 5.0]);
        assert!((near - 1.0).abs() < 1e-3, "irrelevant dim should not decay");
        let far = k.eval(&theta, &[1.0, 0.0], &[0.0, 0.0]);
        assert!(far < 0.7, "relevant dim must decay");
    }

    #[test]
    fn se_matches_closed_form() {
        let k = ArdKernel::new(KernelFamily::SquaredExponential, 2);
        let theta = [0.2f64, -0.3, 0.5];
        let a = [0.4, 0.9];
        let b = [-0.1, 0.2];
        let l0 = 0.2f64.exp();
        let l1 = (-0.3f64).exp();
        let r2 = ((a[0] - b[0]) / l0).powi(2) + ((a[1] - b[1]) / l1).powi(2);
        let expect = 0.5f64.exp() * (-0.5 * r2).exp();
        assert!((k.eval(&theta, &a, &b) - expect).abs() < 1e-14);
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let eps = 1e-6;
        for fam in FAMILIES {
            let k = ArdKernel::new(fam, 3);
            let theta = vec![0.3, -0.5, 0.1, 0.4];
            let a = [0.2, 0.8, -0.4];
            let b = [0.9, 0.1, 0.3];
            let mut grad = vec![0.0; 4];
            k.eval_with_grad(&theta, &a, &b, &mut grad);
            for j in 0..4 {
                let mut tp = theta.clone();
                tp[j] += eps;
                let mut tm = theta.clone();
                tm[j] -= eps;
                let fd = (k.eval(&tp, &a, &b) - k.eval(&tm, &a, &b)) / (2.0 * eps);
                assert!(
                    (grad[j] - fd).abs() < 1e-6 * (1.0 + fd.abs()),
                    "{fam:?} theta[{j}]: analytic {} vs fd {fd}",
                    grad[j]
                );
            }
        }
    }

    #[test]
    fn gradient_at_zero_distance_is_finite() {
        for fam in FAMILIES {
            let k = ArdKernel::new(fam, 2);
            let theta = k.default_theta();
            let mut grad = vec![0.0; 3];
            let x = [0.5, 0.5];
            let v = k.eval_with_grad(&theta, &x, &x, &mut grad);
            assert!((v - 1.0).abs() < 1e-12);
            assert!(grad.iter().all(|g| g.is_finite()), "{fam:?}: {grad:?}");
            assert_eq!(grad[0], 0.0);
            assert_eq!(grad[1], 0.0);
            assert!((grad[2] - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn rational_quadratic_has_heavier_tail_than_se() {
        let theta = [0.0f64, 0.0];
        let se = ArdKernel::new(KernelFamily::SquaredExponential, 1);
        let rq = ArdKernel::new(KernelFamily::RationalQuadratic, 1);
        for r in [2.0, 3.0, 5.0] {
            assert!(
                rq.eval(&theta, &[0.0], &[r]) > se.eval(&theta, &[0.0], &[r]),
                "RQ tail must dominate SE at r = {r}"
            );
        }
        // And both agree at zero distance.
        assert!((rq.eval(&theta, &[0.3], &[0.3]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn smoothness_ordering_near_origin() {
        // At moderate distance: SE decays fastest near r ~ small, Matern32
        // has the heaviest tail at large r.
        let theta = [0.0f64, 0.0];
        let se = ArdKernel::new(KernelFamily::SquaredExponential, 1);
        let m52 = ArdKernel::new(KernelFamily::Matern52, 1);
        let m32 = ArdKernel::new(KernelFamily::Matern32, 1);
        let r = 3.0;
        let v_se = se.eval(&theta, &[0.0], &[r]);
        let v_52 = m52.eval(&theta, &[0.0], &[r]);
        let v_32 = m32.eval(&theta, &[0.0], &[r]);
        assert!(v_se < v_52 && v_52 < v_32, "{v_se} {v_52} {v_32}");
    }

    #[test]
    fn covariance_builders_bitwise_match_eval() {
        let pts: Vec<Vec<f64>> = (0..7)
            .map(|i| {
                (0..3)
                    .map(|j| ((i * 5 + j * 11) as f64 * 0.29).sin())
                    .collect()
            })
            .collect();
        let queries: Vec<Vec<f64>> = (0..4)
            .map(|i| {
                (0..3)
                    .map(|j| ((i * 13 + j * 3) as f64 * 0.41).cos())
                    .collect()
            })
            .collect();
        let theta = [0.3, -0.5, 0.1, 0.4];
        for fam in FAMILIES {
            let k = ArdKernel::new(fam, 3);
            let cov = k.covariance(&theta, &pts);
            for i in 0..pts.len() {
                for j in 0..pts.len() {
                    assert_eq!(
                        cov[(i, j)],
                        k.eval(&theta, &pts[i], &pts[j]),
                        "{fam:?} covariance ({i}, {j})"
                    );
                }
            }
            let cross = k.cross_covariance(&theta, &pts, &queries);
            assert_eq!(cross.shape(), (7, 4));
            for i in 0..pts.len() {
                for j in 0..queries.len() {
                    assert_eq!(
                        cross[(i, j)],
                        k.eval(&theta, &pts[i], &queries[j]),
                        "{fam:?} cross ({i}, {j})"
                    );
                }
            }
        }
    }

    #[test]
    fn covariance_builders_handle_empty_sets() {
        let k = ArdKernel::new(KernelFamily::SquaredExponential, 2);
        let theta = k.default_theta();
        assert_eq!(k.covariance(&theta, &[]).shape(), (0, 0));
        let pts = vec![vec![0.1, 0.2]];
        assert_eq!(k.cross_covariance(&theta, &pts, &[]).shape(), (1, 0));
        assert_eq!(k.cross_covariance(&theta, &[], &pts).shape(), (0, 1));
    }

    proptest! {
        #[test]
        fn prop_bounded_by_signal_variance(
            log_sf2 in -2.0..2.0f64,
            ax in -5.0..5.0f64,
            bx in -5.0..5.0f64
        ) {
            for fam in FAMILIES {
                let k = ArdKernel::new(fam, 1);
                let theta = [0.0, log_sf2];
                let v = k.eval(&theta, &[ax], &[bx]);
                prop_assert!(v <= log_sf2.exp() + 1e-12);
                prop_assert!(v >= 0.0);
            }
        }

        #[test]
        fn prop_psd_3x3(
            x0 in -2.0..2.0f64, x1 in -2.0..2.0f64, x2 in -2.0..2.0f64
        ) {
            // Any 3-point kernel matrix must be PSD: check via the
            // determinant minors (Sylvester).
            for fam in FAMILIES {
                let k = ArdKernel::new(fam, 1);
                let theta = [0.0, 0.0];
                let pts = [[x0], [x1], [x2]];
                let m: Vec<Vec<f64>> = (0..3)
                    .map(|i| (0..3).map(|j| k.eval(&theta, &pts[i], &pts[j])).collect())
                    .collect();
                let d1 = m[0][0];
                let d2 = m[0][0] * m[1][1] - m[0][1] * m[1][0];
                let d3 = m[0][0] * (m[1][1] * m[2][2] - m[1][2] * m[2][1])
                    - m[0][1] * (m[1][0] * m[2][2] - m[1][2] * m[2][0])
                    + m[0][2] * (m[1][0] * m[2][1] - m[1][1] * m[2][0]);
                prop_assert!(d1 >= -1e-9);
                prop_assert!(d2 >= -1e-9);
                prop_assert!(d3 >= -1e-9, "{fam:?} det3 = {d3}");
            }
        }
    }
}
