//! Gaussian process regression for Bayesian optimization.
//!
//! Implements everything §II-B of the EasyBO paper requires, from scratch:
//!
//! * ARD kernels ([`kernel`]): squared-exponential (the paper's choice,
//!   `k_SE(x_i, x_j) = σ_f² exp(-½ (x_i-x_j)ᵀ Λ⁻¹ (x_i-x_j))`), plus
//!   Matérn-5/2 and Matérn-3/2 as extensions.
//! * Exact GP posterior (Eq. 2 of the paper) via Cholesky factorization.
//! * Log marginal likelihood with analytic gradients with respect to the
//!   log hyperparameters, and multi-restart L-BFGS training with a weak
//!   Gaussian prior for regularization.
//! * Hallucinated **pseudo-point augmentation** ([`Gp::augment`]) — the
//!   machinery behind EasyBO's penalization scheme (§III-C): busy points are
//!   appended with their predictive means as observations, shrinking the
//!   predictive uncertainty `σ̂(x)` around them without moving the mean.
//!
//! # Example
//!
//! ```
//! use easybo_gp::{Gp, GpConfig};
//!
//! # fn main() -> Result<(), easybo_gp::GpError> {
//! // Fit a 1-d GP to noisy sine samples and interrogate the posterior.
//! let x: Vec<Vec<f64>> = (0..12).map(|i| vec![i as f64 / 11.0]).collect();
//! let y: Vec<f64> = x.iter().map(|p| (4.0 * p[0]).sin()).collect();
//! let gp = Gp::fit(x, y, GpConfig::default())?;
//! let pred = gp.predict(&[0.5]);
//! assert!((pred.mean - (2.0f64).sin()).abs() < 0.1);
//! assert!(pred.variance >= 0.0);
//! # Ok(())
//! # }
//! ```

mod error;
mod incremental;
pub mod kernel;
mod model;
mod scaler;
mod train;

pub use error::GpError;
pub use incremental::IncrementalGp;
pub use kernel::{ArdKernel, KernelFamily};
pub use model::{Gp, GpConfig, GpState, Prediction};
pub use scaler::YScaler;
pub use train::TrainConfig;

/// Convenience result alias used across the crate.
pub type Result<T> = std::result::Result<T, GpError>;
