use std::error::Error;
use std::fmt;

use easybo_linalg::LinalgError;

/// Error type for Gaussian-process construction and fitting.
#[derive(Debug, Clone, PartialEq)]
pub enum GpError {
    /// The training set was empty.
    EmptyTrainingSet,
    /// Input rows had inconsistent dimensionality, or `x.len() != y.len()`.
    InconsistentData {
        /// Human-readable description of the inconsistency.
        detail: String,
    },
    /// Training targets or inputs contained NaN/inf.
    NonFiniteData {
        /// Where the bad value was found.
        context: String,
    },
    /// The covariance matrix could not be factored (propagated from the
    /// linear algebra layer).
    Linalg(LinalgError),
    /// A hyperparameter vector had the wrong length for the kernel/dim.
    BadHyperParameters {
        /// Expected number of hyperparameters.
        expected: usize,
        /// Supplied number of hyperparameters.
        actual: usize,
    },
}

impl fmt::Display for GpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GpError::EmptyTrainingSet => write!(f, "training set must contain at least one point"),
            GpError::InconsistentData { detail } => {
                write!(f, "inconsistent training data: {detail}")
            }
            GpError::NonFiniteData { context } => {
                write!(f, "non-finite value in training data ({context})")
            }
            GpError::Linalg(e) => write!(f, "linear algebra failure: {e}"),
            GpError::BadHyperParameters { expected, actual } => write!(
                f,
                "hyperparameter vector has length {actual}, kernel expects {expected}"
            ),
        }
    }
}

impl Error for GpError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            GpError::Linalg(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LinalgError> for GpError {
    fn from(e: LinalgError) -> Self {
        GpError::Linalg(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        use std::error::Error as _;
        let e = GpError::from(LinalgError::NotSquare { rows: 1, cols: 2 });
        assert!(e.to_string().contains("linear algebra"));
        assert!(e.source().is_some());
        assert!(GpError::EmptyTrainingSet.source().is_none());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<GpError>();
    }
}
