use serde::{Deserialize, Serialize};

/// Z-score scaler for GP targets.
///
/// Fitting a GP to raw figure-of-merit values (which can live around ~690
/// for the op-amp benchmark) with a unit-variance prior would be hopeless;
/// the model internally standardizes targets and this type performs the
/// round-trip.
///
/// A degenerate (constant) target vector gets `std = 1` so the transform
/// stays invertible.
///
/// # Example
///
/// ```
/// use easybo_gp::YScaler;
///
/// let s = YScaler::fit(&[10.0, 12.0, 14.0]);
/// assert_eq!(s.transform(12.0), 0.0);
/// let z = s.transform(14.0);
/// assert!((s.inverse(z) - 14.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct YScaler {
    mean: f64,
    std: f64,
}

impl YScaler {
    /// Fits mean/std to `ys` (population std; `std = 1` when degenerate).
    pub fn fit(ys: &[f64]) -> Self {
        let mean = easybo_linalg::mean(ys);
        let mut std = easybo_linalg::population_std(ys);
        if std.is_nan() || std <= 1e-12 {
            std = 1.0;
        }
        YScaler { mean, std }
    }

    /// The identity scaler (mean 0, std 1).
    pub fn identity() -> Self {
        YScaler {
            mean: 0.0,
            std: 1.0,
        }
    }

    /// Rebuilds a scaler from its captured ([`YScaler::mean`],
    /// [`YScaler::std`]) pair — the exact inverse used by
    /// checkpoint/resume. No degeneracy guard is applied: the parts
    /// came from a scaler that already passed through [`YScaler::fit`].
    pub fn from_parts(mean: f64, std: f64) -> Self {
        YScaler { mean, std }
    }

    /// Mean removed by the transform.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Scale divided out by the transform.
    pub fn std(&self) -> f64 {
        self.std
    }

    /// Raw value → standardized value.
    pub fn transform(&self, y: f64) -> f64 {
        (y - self.mean) / self.std
    }

    /// Standardized value → raw value.
    pub fn inverse(&self, z: f64) -> f64 {
        z * self.std + self.mean
    }

    /// Standardized *variance* → raw variance.
    pub fn inverse_variance(&self, var: f64) -> f64 {
        var * self.std * self.std
    }
}

impl Default for YScaler {
    fn default() -> Self {
        YScaler::identity()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn identity_is_noop() {
        let s = YScaler::identity();
        assert_eq!(s.transform(3.5), 3.5);
        assert_eq!(s.inverse(3.5), 3.5);
        assert_eq!(s.inverse_variance(2.0), 2.0);
    }

    #[test]
    fn from_parts_is_the_exact_inverse_of_the_accessors() {
        let s = YScaler::fit(&[1.0, 3.0, 5.0, 700.0]);
        let rebuilt = YScaler::from_parts(s.mean(), s.std());
        assert_eq!(rebuilt, s);
        assert_eq!(rebuilt.transform(2.5).to_bits(), s.transform(2.5).to_bits());
    }

    #[test]
    fn constant_targets_do_not_divide_by_zero() {
        let s = YScaler::fit(&[5.0; 8]);
        assert_eq!(s.std(), 1.0);
        assert_eq!(s.transform(5.0), 0.0);
    }

    #[test]
    fn standardizes_to_zero_mean_unit_var() {
        let ys = [1.0, 3.0, 5.0, 7.0];
        let s = YScaler::fit(&ys);
        let zs: Vec<f64> = ys.iter().map(|&y| s.transform(y)).collect();
        assert!(easybo_linalg::mean(&zs).abs() < 1e-12);
        assert!((easybo_linalg::population_std(&zs) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn variance_scales_quadratically() {
        let s = YScaler::fit(&[0.0, 10.0]);
        assert!((s.inverse_variance(1.0) - 25.0).abs() < 1e-12);
    }

    proptest! {
        #[test]
        fn prop_round_trip(ys in proptest::collection::vec(-1e4..1e4f64, 2..30), y in -1e4..1e4f64) {
            let s = YScaler::fit(&ys);
            prop_assert!((s.inverse(s.transform(y)) - y).abs() < 1e-6 * (1.0 + y.abs()));
        }
    }
}
