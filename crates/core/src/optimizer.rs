//! The high-level EasyBO optimizer API for end users.

use std::path::{Path, PathBuf};

use easybo_exec::{
    AsyncPolicy, BlackBox, CheckpointTrigger, CostedFunction, Dataset, HookAction, RetryPolicy,
    RunTrace, Schedule, SessionState, SimTimeModel, ThreadedExecutor, VirtualExecutor,
};
use easybo_opt::{sampling, Bounds, Parallelism};
use easybo_persist::{load_snapshot, PersistError, RunSnapshot};
use easybo_telemetry::{Event, RunReport, Telemetry};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::persistence::{kernel_tag, Fingerprint};
use crate::policies::{AcqOptConfig, EasyBoAsyncPolicy};
use crate::surrogate::SurrogateConfig;
use crate::weight::DEFAULT_LAMBDA;
use crate::EasyBoError;

/// Outcome of an [`EasyBo`] optimization run.
#[derive(Debug, Clone, PartialEq)]
pub struct OptimizationResult {
    /// Best design found.
    pub best_x: Vec<f64>,
    /// Objective value at `best_x`.
    pub best_value: f64,
    /// All evaluations in completion order.
    pub data: Dataset,
    /// Best-so-far timeline (virtual seconds for [`EasyBo::run`] /
    /// [`EasyBo::run_blackbox`], real seconds for [`EasyBo::run_threaded`]).
    pub trace: RunTrace,
    /// Worker occupancy record.
    pub schedule: Schedule,
    /// Where the run's time went: utilization/idle split from the
    /// schedule, plus GP-fit and acquisition overhead shares when the run
    /// had telemetry attached (see [`EasyBo::telemetry`]).
    pub report: RunReport,
}

/// The EasyBO optimizer: asynchronous batch Bayesian optimization with
/// randomized exploration weights and busy-point penalization (the paper's
/// Algorithm 1), wrapped in a builder.
///
/// # Example
///
/// ```
/// use easybo::EasyBo;
/// use easybo_opt::Bounds;
///
/// # fn main() -> Result<(), easybo::EasyBoError> {
/// let bounds = Bounds::new(vec![(0.0, 1.0); 3])?;
/// let result = EasyBo::new(bounds)
///     .batch_size(4)
///     .initial_points(12)
///     .max_evals(40)
///     .seed(1)
///     .run(|x| -(x[0] - 0.2).powi(2) - (x[1] - 0.7).powi(2) - x[2])?;
/// assert!(result.best_value > -0.2);
/// assert_eq!(result.data.len(), 40);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct EasyBo {
    bounds: Bounds,
    batch_size: usize,
    max_evals: usize,
    initial_points: usize,
    seed: u64,
    lambda: f64,
    penalize: bool,
    surrogate: SurrogateConfig,
    acq_opt: AcqOptConfig,
    telemetry: Telemetry,
    retry: RetryPolicy,
    checkpoint_path: Option<PathBuf>,
    checkpoint_every_evals: Option<usize>,
    checkpoint_every_seconds: Option<f64>,
    abort_after: Option<usize>,
}

impl EasyBo {
    /// Creates an optimizer over `bounds` with the paper's defaults:
    /// batch size 5, 20 initial points, 100 total evaluations, λ = 6,
    /// penalization on.
    pub fn new(bounds: Bounds) -> Self {
        let dim = bounds.dim();
        EasyBo {
            bounds,
            batch_size: 5,
            max_evals: 100,
            initial_points: 20,
            seed: 0,
            lambda: DEFAULT_LAMBDA,
            penalize: true,
            surrogate: SurrogateConfig::default(),
            acq_opt: AcqOptConfig::for_dim(dim),
            telemetry: Telemetry::disabled(),
            retry: RetryPolicy::none(),
            checkpoint_path: None,
            checkpoint_every_evals: None,
            checkpoint_every_seconds: None,
            abort_after: None,
        }
    }

    /// Attaches a telemetry handle to the run: the executor, policy, and
    /// GP training all emit structured events and metrics through it, and
    /// the returned [`OptimizationResult::report`] gains the model-
    /// overhead breakdown. Default: disabled (zero overhead).
    pub fn telemetry(&mut self, telemetry: Telemetry) -> &mut Self {
        self.telemetry = telemetry;
        self
    }

    /// Number of parallel workers (batch size B). Default 5.
    pub fn batch_size(&mut self, b: usize) -> &mut Self {
        self.batch_size = b.max(1);
        self
    }

    /// Total evaluation budget, including the initial design. Default 100.
    pub fn max_evals(&mut self, n: usize) -> &mut Self {
        self.max_evals = n;
        self
    }

    /// Size of the Latin-hypercube initial design. Default 20.
    pub fn initial_points(&mut self, n: usize) -> &mut Self {
        self.initial_points = n.max(2);
        self
    }

    /// RNG seed controlling the initial design and all stochastic
    /// selection. Default 0.
    pub fn seed(&mut self, seed: u64) -> &mut Self {
        self.seed = seed;
        self
    }

    /// κ sampling range `[0, λ]` of the acquisition (Eq. 8). Default 6.
    pub fn lambda(&mut self, lambda: f64) -> &mut Self {
        self.lambda = lambda.max(0.0);
        self
    }

    /// Enables/disables the busy-point penalization scheme (Eq. 9).
    /// Default on; disabling gives the EasyBO-A ablation.
    pub fn penalization(&mut self, on: bool) -> &mut Self {
        self.penalize = on;
        self
    }

    /// Overrides the surrogate configuration.
    pub fn surrogate_config(&mut self, config: SurrogateConfig) -> &mut Self {
        self.surrogate = config;
        self
    }

    /// Overrides the acquisition-maximizer sizing.
    pub fn acquisition_config(&mut self, config: AcqOptConfig) -> &mut Self {
        self.acq_opt = config;
        self
    }

    /// Failure handling for black-box evaluations: how often to retry a
    /// crashed/non-finite/timed-out attempt, with what backoff, and what
    /// to do when attempts run out (see [`RetryPolicy`]). The default,
    /// [`RetryPolicy::none`], records every raw value exactly as before
    /// — runs with well-behaved objectives are bit-identical whether or
    /// not this is set. A common robust choice is
    /// `RetryPolicy::default()` (3 attempts, exponential backoff, failed
    /// tasks dropped so non-finite values never reach the GP).
    pub fn retry_policy(&mut self, retry: RetryPolicy) -> &mut Self {
        self.retry = retry;
        self
    }

    /// Worker-thread budget for GP hyperparameter training and acquisition
    /// maximization. Default: available cores; `1` restores the fully
    /// sequential legacy path. Results are bit-identical at any setting —
    /// only wall-clock time changes.
    pub fn parallelism(&mut self, parallelism: impl Into<Parallelism>) -> &mut Self {
        let p = parallelism.into();
        self.surrogate.parallelism = p;
        self.acq_opt.parallelism = p;
        self
    }

    /// Toggles the incremental GP factor path (default: on). When on,
    /// per-observation surrogate updates are rank-1 Cholesky extensions of
    /// the cached factor and the busy-point penalization inner loop
    /// pushes/pops pseudo-points on a factor stack — `O(n²)` per tell
    /// instead of `O(n³)`. When off, the legacy clone-and-refactorize
    /// paths run instead. Results are bit-identical either way — only
    /// wall-clock time changes.
    pub fn incremental_gp(&mut self, on: bool) -> &mut Self {
        self.surrogate.incremental = on;
        self
    }

    /// Enables durable checkpointing: versioned, checksummed snapshots of
    /// the complete run state (dataset, best-so-far trace, committed
    /// schedule, in-flight attempts, retry backoffs, run clock, RNG
    /// stream, GP hyperparameters and scalers) are atomically written to
    /// `path` as the run progresses. A run killed at any point resumes
    /// from its last snapshot via [`EasyBo::resume_from`] and — on the
    /// virtual executor — finishes with a trace byte-identical to the
    /// uninterrupted run.
    ///
    /// Default cadence: after every completed evaluation; tune with
    /// [`EasyBo::checkpoint_every`] and/or [`EasyBo::checkpoint_interval`].
    pub fn checkpoint_to(&mut self, path: impl Into<PathBuf>) -> &mut Self {
        self.checkpoint_path = Some(path.into());
        self
    }

    /// Checkpoints after every `k` completed evaluations (requires
    /// [`EasyBo::checkpoint_to`]). Default 1.
    pub fn checkpoint_every(&mut self, k: usize) -> &mut Self {
        self.checkpoint_every_evals = Some(k.max(1));
        self
    }

    /// Additionally checkpoints whenever `seconds` of run clock pass
    /// since the last snapshot (virtual seconds on [`EasyBo::run`] /
    /// [`EasyBo::run_blackbox`], real seconds on
    /// [`EasyBo::run_threaded`]). Combines with
    /// [`EasyBo::checkpoint_every`]: whichever fires first wins.
    pub fn checkpoint_interval(&mut self, seconds: f64) -> &mut Self {
        self.checkpoint_every_seconds = Some(seconds.max(0.0));
        self
    }

    /// Fault injection for chaos tests and the kill-and-resume recipe:
    /// aborts the run with an executor failure once `n` evaluations have
    /// completed, as if the coordinator process had been killed. The
    /// checkpoint file written before the abort is a valid resume point.
    pub fn abort_after_evals(&mut self, n: usize) -> &mut Self {
        self.abort_after = Some(n);
        self
    }

    pub(crate) fn validate(&self) -> crate::Result<()> {
        if self.max_evals == 0 || self.max_evals <= self.initial_points {
            return Err(EasyBoError::BadBudget {
                max_evals: self.max_evals,
                initial_points: self.initial_points,
            });
        }
        Ok(())
    }

    /// The configured design space.
    pub fn bounds(&self) -> &Bounds {
        &self.bounds
    }

    pub(crate) fn seed_value(&self) -> u64 {
        self.seed
    }

    pub(crate) fn batch_size_value(&self) -> usize {
        self.batch_size
    }

    pub(crate) fn telemetry_handle(&self) -> &Telemetry {
        &self.telemetry
    }

    pub(crate) fn max_evals_value(&self) -> usize {
        self.max_evals
    }

    pub(crate) fn lambda_value(&self) -> f64 {
        self.lambda
    }

    pub(crate) fn surrogate_config_value(&self) -> &SurrogateConfig {
        &self.surrogate
    }

    pub(crate) fn acq_config_value(&self) -> AcqOptConfig {
        self.acq_opt
    }

    /// The configured asynchronous policy as a standalone value — the
    /// same construction every internal entry point uses. External
    /// drivers of `run_session_resilient` (the network session manager,
    /// custom executors) build their policy here so its decision stream
    /// matches an in-process [`EasyBo::run`] bit for bit.
    pub fn build_async_policy(&self) -> EasyBoAsyncPolicy {
        self.build_policy()
    }

    /// The seeded initial design exactly as the internal entry points
    /// draw it — external drivers pass this to their session setup so
    /// the first `initial_points` queries agree with an in-process run.
    pub fn initial_design_points(&self) -> Vec<Vec<f64>> {
        self.initial_design()
    }

    /// The configuration fingerprint stamped into snapshots and checked
    /// on resume (see [`EasyBo::resume`]); external checkpoint writers
    /// stamp the same value so their snapshots interoperate.
    pub fn config_fingerprint(&self) -> u64 {
        self.fingerprint()
    }

    /// The retry policy in force (see [`EasyBo::retry_policy`]).
    pub fn retry(&self) -> &RetryPolicy {
        &self.retry
    }

    fn build_policy(&self) -> EasyBoAsyncPolicy {
        let mut policy = EasyBoAsyncPolicy::with_configs(
            self.bounds.clone(),
            self.penalize,
            self.lambda,
            self.seed,
            self.surrogate.clone(),
            self.acq_opt,
        );
        policy.set_telemetry(self.telemetry.clone());
        policy
    }

    pub(crate) fn initial_design(&self) -> Vec<Vec<f64>> {
        let mut rng = StdRng::seed_from_u64(self.seed.wrapping_mul(0x9e37_79b9));
        sampling::latin_hypercube(&self.bounds, self.initial_points, &mut rng)
    }

    /// FNV-1a fingerprint of every setting that shapes the optimization
    /// trajectory. Stamped into each snapshot and checked on resume, so
    /// a checkpoint cannot silently continue under different bounds,
    /// seeds, budgets, or policy settings. Thread-count knobs
    /// ([`EasyBo::parallelism`]) and the incremental-factor toggle
    /// ([`EasyBo::incremental_gp`]) are deliberately excluded: results
    /// are bit-identical at any setting, so resuming on different
    /// hardware or across the legacy/incremental paths is allowed.
    pub(crate) fn fingerprint(&self) -> u64 {
        use easybo_exec::FailureAction;
        let mut fp = Fingerprint::new();
        fp.push_usize(self.bounds.dim());
        for &(lo, hi) in self.bounds.pairs() {
            fp.push_f64(lo);
            fp.push_f64(hi);
        }
        fp.push_u64(self.seed);
        fp.push_usize(self.batch_size);
        fp.push_usize(self.max_evals);
        fp.push_usize(self.initial_points);
        fp.push_f64(self.lambda);
        fp.push_bool(self.penalize);
        fp.push_u64(u64::from(kernel_tag(self.surrogate.kernel)));
        fp.push_f64(self.surrogate.retrain_growth);
        fp.push_usize(self.surrogate.first_restarts);
        fp.push_usize(self.surrogate.train_iters);
        fp.push_usize(self.surrogate.train_max_points);
        fp.push_usize(self.surrogate.max_gp_points);
        fp.push_u64(self.surrogate.seed);
        fp.push_usize(self.acq_opt.probes);
        fp.push_usize(self.acq_opt.starts);
        fp.push_usize(self.acq_opt.refine_evals);
        fp.push_usize(self.retry.max_attempts);
        fp.push_f64(self.retry.backoff_base);
        fp.push_f64(self.retry.backoff_factor);
        match self.retry.timeout {
            Some(t) => {
                fp.push_bool(true);
                fp.push_f64(t);
            }
            None => fp.push_bool(false),
        }
        match self.retry.on_exhausted {
            FailureAction::Record => fp.push_u64(0),
            FailureAction::Drop => fp.push_u64(1),
            FailureAction::Penalty(p) => {
                fp.push_u64(2);
                fp.push_f64(p);
            }
        }
        fp.finish()
    }

    /// Whether the run needs the hooked session driver at all. When
    /// neither checkpointing nor fault injection is configured, the
    /// legacy entry point is used — bit-identical to earlier releases.
    pub(crate) fn hooks_active(&self) -> bool {
        self.checkpoint_path.is_some() || self.abort_after.is_some()
    }

    /// Builds the per-run session hook stamped with this optimizer's own
    /// configuration fingerprint (the plain-policy entry points).
    #[allow(clippy::type_complexity)]
    fn session_hook(
        &self,
        baseline: Option<(usize, f64)>,
    ) -> Box<dyn FnMut(&SessionState, &dyn AsyncPolicy, f64) -> HookAction> {
        self.session_hook_with(baseline, self.fingerprint())
    }

    /// Builds the per-run session hook: fires the checkpoint trigger
    /// (writing a snapshot + emitting `CheckpointWritten`), then applies
    /// the `abort_after_evals` fault injection. Pure observer of the
    /// session — it never perturbs the optimization trajectory.
    /// `fingerprint` is what snapshots are stamped with; entry points
    /// whose trajectory depends on more than the builder settings (the
    /// constrained path) pass an extended fingerprint here.
    #[allow(clippy::type_complexity)]
    pub(crate) fn session_hook_with(
        &self,
        baseline: Option<(usize, f64)>,
        fingerprint: u64,
    ) -> Box<dyn FnMut(&SessionState, &dyn AsyncPolicy, f64) -> HookAction> {
        let mut trigger = if self.checkpoint_path.is_some() {
            CheckpointTrigger::new(
                Some(self.checkpoint_every_evals.unwrap_or(1)),
                self.checkpoint_every_seconds,
            )
        } else {
            CheckpointTrigger::new(None, None)
        };
        if let Some((completed, clock)) = baseline {
            trigger.rearm(completed, clock);
        }
        let path = self.checkpoint_path.clone();
        let telemetry = self.telemetry.clone();
        let abort_after = self.abort_after;
        Box::new(
            move |session: &SessionState, policy: &dyn AsyncPolicy, now: f64| {
                let completed = session.completed();
                if let Some(path) = &path {
                    if trigger.fire(completed, now) {
                        telemetry.set_now(now);
                        let _ckpt_span = telemetry.span("checkpoint");
                        let snap = RunSnapshot {
                            config_fingerprint: fingerprint,
                            session: session.to_parts(),
                            policy: policy.snapshot_state(),
                        };
                        let t0 = std::time::Instant::now();
                        let bytes = {
                            let _span = telemetry.span("snapshot_encode");
                            easybo_persist::encode_snapshot(&snap)
                        };
                        telemetry.observe("snapshot_encode_ns", t0.elapsed().as_nanos() as f64);
                        let t1 = std::time::Instant::now();
                        let written = {
                            let _span = telemetry.span("snapshot_fsync");
                            easybo_persist::write_snapshot_bytes(path, &bytes)
                        };
                        telemetry.observe("snapshot_fsync_ns", t1.elapsed().as_nanos() as f64);
                        match written {
                            Ok(()) => {
                                telemetry.incr("checkpoints_written", 1);
                                telemetry.emit_at(
                                    now,
                                    Event::CheckpointWritten {
                                        completed,
                                        bytes: bytes.len(),
                                    },
                                );
                            }
                            Err(e) => {
                                // Checkpointing was explicitly requested;
                                // failing loudly beats silently losing
                                // durability for the rest of the run.
                                return HookAction::Stop {
                                    reason: format!("checkpoint write failed: {e}"),
                                };
                            }
                        }
                    }
                }
                if let Some(n) = abort_after {
                    if completed >= n {
                        return HookAction::Stop {
                            reason: format!(
                                "aborted after {completed} completed evaluations \
                                 (abort_after_evals({n}))"
                            ),
                        };
                    }
                }
                HookAction::Continue
            },
        )
    }

    /// Loads a snapshot, checks its configuration fingerprint against
    /// `fingerprint`, and rebuilds the session; the raw policy blob (if
    /// any) is returned for the caller to restore into its own policy.
    pub(crate) fn load_session_parts(
        &self,
        path: &Path,
        fingerprint: u64,
    ) -> crate::Result<(SessionState, Option<Vec<u8>>)> {
        let snap = load_snapshot(path)?;
        if snap.config_fingerprint != fingerprint {
            return Err(PersistError::ConfigMismatch {
                expected: snap.config_fingerprint,
                actual: fingerprint,
            }
            .into());
        }
        Ok((SessionState::from_parts(snap.session), snap.policy))
    }

    /// Rewinds the telemetry clock to the snapshot's and emits
    /// `RunResumed` — called once the restored policy is ready.
    pub(crate) fn announce_resume(&self, session: &SessionState) {
        self.telemetry.set_now(session.clock());
        self.telemetry.incr("resumes", 1);
        self.telemetry.emit_at(
            session.clock(),
            Event::RunResumed {
                completed: session.completed(),
                inflight: session.inflight().len(),
            },
        );
    }

    /// Loads a snapshot, checks its configuration fingerprint, restores
    /// the policy's RNG/surrogate state, and rebuilds the session.
    fn load_session(&self, path: &Path) -> crate::Result<(SessionState, EasyBoAsyncPolicy)> {
        let (session, blob) = self.load_session_parts(path, self.fingerprint())?;
        let mut policy = self.build_policy();
        if let Some(blob) = &blob {
            policy
                .restore_state(blob)
                .map_err(|e| EasyBoError::from(PersistError::decode(e)))?;
        }
        self.announce_resume(&session);
        Ok((session, policy))
    }

    fn finish(&self, result: easybo_exec::RunResult) -> crate::Result<OptimizationResult> {
        let (best_x, best_value) = result
            .data
            .best()
            .map(|(x, y)| (x.to_vec(), y))
            .ok_or(EasyBoError::DegenerateObjective)?;
        if !best_value.is_finite() {
            return Err(EasyBoError::DegenerateObjective);
        }
        self.telemetry.flush();
        let report = RunReport::with_metrics(
            result.schedule.makespan(),
            result.schedule.workers(),
            result.schedule.utilization(),
            result.data.len(),
            self.telemetry.summary(),
            self.telemetry.metrics_snapshot().as_ref(),
        );
        Ok(OptimizationResult {
            best_x,
            best_value,
            data: result.data,
            trace: result.trace,
            schedule: result.schedule,
            report,
        })
    }

    /// Maximizes a plain objective function. Evaluation cost is treated as
    /// uniform (one virtual second per evaluation).
    ///
    /// # Errors
    ///
    /// * [`EasyBoError::BadBudget`] if `max_evals <= initial_points`.
    /// * [`EasyBoError::DegenerateObjective`] if no finite value was seen.
    pub fn run<F>(&self, f: F) -> crate::Result<OptimizationResult>
    where
        F: Fn(&[f64]) -> f64 + Send + Sync,
    {
        self.validate()?;
        let time = SimTimeModel::new(&self.bounds, 1.0, 0.0, self.seed);
        let bb = CostedFunction::new("objective", self.bounds.clone(), time, f);
        self.run_blackbox(&bb)
    }

    /// Maximizes a [`BlackBox`] on the virtual-time executor (deterministic,
    /// instant; the returned trace carries the *virtual* schedule).
    ///
    /// # Errors
    ///
    /// Same conditions as [`EasyBo::run`].
    pub fn run_blackbox(&self, bb: &dyn BlackBox) -> crate::Result<OptimizationResult> {
        self.validate()?;
        let mut policy = self.build_policy();
        let exec = VirtualExecutor::new(self.batch_size);
        let result = if self.hooks_active() {
            let mut hook = self.session_hook(None);
            exec.run_session_resilient(
                bb,
                &self.initial_design(),
                self.max_evals,
                &mut policy,
                &self.retry,
                &self.telemetry,
                Some(&mut *hook),
            )?
        } else {
            exec.run_async_resilient(
                bb,
                &self.initial_design(),
                self.max_evals,
                &mut policy,
                &self.retry,
                &self.telemetry,
            )
        };
        self.finish(result)
    }

    /// Resumes a virtual-executor run from a snapshot written by a
    /// checkpointed [`EasyBo::run_blackbox`] (or [`EasyBo::run`]) under
    /// the *same configuration*. Interrupted in-flight attempts are
    /// re-issued at their recorded worker and start time through the
    /// configured [`RetryPolicy`], pending backoffs are rescheduled, and
    /// the run continues to its original budget — producing a final
    /// best-so-far trace byte-identical to the uninterrupted run.
    /// Checkpointing continues on the resumed run if still configured.
    ///
    /// # Errors
    ///
    /// * [`EasyBoError::Persist`] when the file is missing, corrupt,
    ///   from another format version, or was captured under a different
    ///   configuration fingerprint.
    /// * The same conditions as [`EasyBo::run`] otherwise.
    pub fn resume_from(
        &self,
        path: impl AsRef<Path>,
        bb: &dyn BlackBox,
    ) -> crate::Result<OptimizationResult> {
        self.validate()?;
        let (session, mut policy) = self.load_session(path.as_ref())?;
        let baseline = (session.completed(), session.clock());
        let mut hook = self.session_hook(Some(baseline));
        let result = VirtualExecutor::new(self.batch_size).resume_session_resilient(
            bb,
            session,
            &mut policy,
            &self.retry,
            &self.telemetry,
            Some(&mut *hook),
        )?;
        self.finish(result)
    }

    /// Convenience resume matching [`EasyBo::run`]: rebuilds the same
    /// uniform-cost black box around `f` and delegates to
    /// [`EasyBo::resume_from`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`EasyBo::resume_from`].
    pub fn resume<F>(&self, path: impl AsRef<Path>, f: F) -> crate::Result<OptimizationResult>
    where
        F: Fn(&[f64]) -> f64 + Send + Sync,
    {
        let time = SimTimeModel::new(&self.bounds, 1.0, 0.0, self.seed);
        let bb = CostedFunction::new("objective", self.bounds.clone(), time, f);
        self.resume_from(path, &bb)
    }

    /// Maximizes a [`BlackBox`] on real OS threads — the production path
    /// for genuinely expensive objectives. `time_scale` seconds of real
    /// sleep emulate each virtual second of reported cost (0.0 = no sleep).
    ///
    /// # Errors
    ///
    /// Same conditions as [`EasyBo::run`].
    pub fn run_threaded(
        &self,
        bb: &(dyn BlackBox + Sync),
        time_scale: f64,
    ) -> crate::Result<OptimizationResult> {
        self.validate()?;
        let mut policy = self.build_policy();
        let exec = ThreadedExecutor::new(self.batch_size, time_scale);
        let result = if self.hooks_active() {
            let mut hook = self.session_hook(None);
            exec.run_session_resilient(
                bb,
                &self.initial_design(),
                self.max_evals,
                &mut policy,
                &self.retry,
                &self.telemetry,
                Some(&mut *hook),
            )?
        } else {
            exec.run_async_resilient(
                bb,
                &self.initial_design(),
                self.max_evals,
                &mut policy,
                &self.retry,
                &self.telemetry,
            )?
        };
        self.finish(result)
    }

    /// Resumes a checkpointed [`EasyBo::run_threaded`] run on a fresh
    /// thread pool. Interrupted in-flight attempts are re-enqueued and
    /// pending retry backoffs rebased onto the new run's epoch. Unlike
    /// the virtual path, real-time scheduling is not bit-reproducible —
    /// the guarantee here is *no lost work*: every committed observation
    /// survives and the budget completes exactly once.
    ///
    /// # Errors
    ///
    /// Same conditions as [`EasyBo::resume_from`].
    pub fn resume_threaded(
        &self,
        path: impl AsRef<Path>,
        bb: &(dyn BlackBox + Sync),
        time_scale: f64,
    ) -> crate::Result<OptimizationResult> {
        self.validate()?;
        let (session, mut policy) = self.load_session(path.as_ref())?;
        let baseline = (session.completed(), session.clock());
        let mut hook = self.session_hook(Some(baseline));
        let result = ThreadedExecutor::new(self.batch_size, time_scale).resume_session_resilient(
            bb,
            session,
            &mut policy,
            &self.retry,
            &self.telemetry,
            Some(&mut *hook),
        )?;
        self.finish(result)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_peak_of_smooth_function() {
        let bounds = Bounds::new(vec![(-2.0, 2.0), (-2.0, 2.0)]).unwrap();
        let r = EasyBo::new(bounds)
            .batch_size(4)
            .initial_points(10)
            .max_evals(45)
            .seed(3)
            .run(|x| (-((x[0] - 0.5).powi(2) + (x[1] + 0.5).powi(2))).exp())
            .unwrap();
        assert!(r.best_value > 0.9, "best {}", r.best_value);
        assert!((r.best_x[0] - 0.5).abs() < 0.5);
        assert_eq!(r.data.len(), 45);
    }

    #[test]
    fn rejects_bad_budget() {
        let bounds = Bounds::unit_cube(2).unwrap();
        let mut opt = EasyBo::new(bounds);
        opt.initial_points(20).max_evals(10);
        assert!(matches!(
            opt.run(|_| 0.0),
            Err(EasyBoError::BadBudget { .. })
        ));
    }

    #[test]
    fn degenerate_objective_is_reported() {
        let bounds = Bounds::unit_cube(1).unwrap();
        let r = EasyBo::new(bounds)
            .initial_points(3)
            .max_evals(6)
            .run(|_| f64::NAN);
        assert!(matches!(r, Err(EasyBoError::DegenerateObjective)));
    }

    #[test]
    fn builder_clamps_degenerate_settings() {
        let bounds = Bounds::unit_cube(1).unwrap();
        let mut opt = EasyBo::new(bounds);
        opt.batch_size(0).initial_points(0).lambda(-1.0);
        // batch >= 1, init >= 2, lambda >= 0: the run must still work.
        opt.max_evals(8).seed(1);
        let r = opt.run(|x| -x[0]).unwrap();
        assert_eq!(r.data.len(), 8);
    }

    #[test]
    fn seeded_runs_reproduce() {
        let bounds = Bounds::unit_cube(2).unwrap();
        let run = |seed| {
            let mut opt = EasyBo::new(bounds.clone());
            opt.initial_points(6).max_evals(16).seed(seed);
            opt.run(|x| -(x[0] - 0.3f64).powi(2) - (x[1] - 0.6f64).powi(2))
                .unwrap()
        };
        let a = run(9);
        let b = run(9);
        assert_eq!(a.data, b.data);
        assert_eq!(a.best_x, b.best_x);
    }

    fn snap_path(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!(
            "easybo-opt-test-{}-{name}.snap",
            std::process::id()
        ))
    }

    fn objective(x: &[f64]) -> f64 {
        -(x[0] - 0.3f64).powi(2) - (x[1] - 0.6f64).powi(2)
    }

    #[test]
    fn checkpointed_run_is_bit_identical_to_plain_run() {
        let bounds = Bounds::unit_cube(2).unwrap();
        let mut plain = EasyBo::new(bounds.clone());
        plain.batch_size(3).initial_points(6).max_evals(14).seed(4);
        let a = plain.run(objective).unwrap();

        let path = snap_path("bitident");
        let mut ckpt = EasyBo::new(bounds);
        ckpt.batch_size(3).initial_points(6).max_evals(14).seed(4);
        ckpt.checkpoint_to(&path).checkpoint_every(2);
        let b = ckpt.run(objective).unwrap();
        std::fs::remove_file(&path).ok();

        assert_eq!(a.data, b.data);
        assert_eq!(a.trace.to_csv(), b.trace.to_csv());
    }

    #[test]
    fn kill_and_resume_reproduces_uninterrupted_trace() {
        let bounds = Bounds::unit_cube(2).unwrap();
        let mut opt = EasyBo::new(bounds);
        opt.batch_size(3).initial_points(6).max_evals(16).seed(5);
        let baseline = opt.run(objective).unwrap();

        let path = snap_path("killresume");
        let mut killed = opt.clone();
        killed.checkpoint_to(&path).checkpoint_every(1);
        killed.abort_after_evals(9);
        let err = killed.run(objective).unwrap_err();
        assert!(matches!(err, EasyBoError::Opt(_)), "{err}");

        let mut resumer = opt.clone();
        resumer.checkpoint_to(&path);
        let resumed = resumer.resume(&path, objective).unwrap();
        std::fs::remove_file(&path).ok();

        assert_eq!(resumed.data, baseline.data);
        assert_eq!(resumed.trace.to_csv(), baseline.trace.to_csv());
        assert_eq!(resumed.best_x, baseline.best_x);
    }

    #[test]
    fn resume_rejects_mismatched_config() {
        let bounds = Bounds::unit_cube(2).unwrap();
        let path = snap_path("mismatch");
        let mut opt = EasyBo::new(bounds.clone());
        opt.batch_size(2).initial_points(4).max_evals(10).seed(6);
        opt.checkpoint_to(&path).abort_after_evals(5);
        let _ = opt.run(objective).unwrap_err();

        let mut other = EasyBo::new(bounds);
        other.batch_size(2).initial_points(4).max_evals(10).seed(7); // seed differs
        let err = other.resume(&path, objective).unwrap_err();
        std::fs::remove_file(&path).ok();
        assert!(
            matches!(&err, EasyBoError::Persist(p)
                if matches!(p.as_ref(), easybo_persist::PersistError::ConfigMismatch { .. })),
            "{err}"
        );
    }

    #[test]
    fn threaded_run_matches_api_contract() {
        use easybo_exec::{CostedFunction, SimTimeModel};
        let bounds = Bounds::unit_cube(2).unwrap();
        let time = SimTimeModel::new(&bounds, 5.0, 0.2, 0);
        let bb = CostedFunction::new("toy", bounds.clone(), time, |x: &[f64]| {
            -(x[0] - 0.4f64).powi(2) - (x[1] - 0.6f64).powi(2)
        });
        let mut opt = EasyBo::new(bounds);
        opt.batch_size(3).initial_points(6).max_evals(20).seed(2);
        let r = opt.run_threaded(&bb, 0.0).unwrap();
        assert_eq!(r.data.len(), 20);
        assert!(r.best_value > -0.05, "best {}", r.best_value);
    }
}
