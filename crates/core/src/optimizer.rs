//! The high-level EasyBO optimizer API for end users.

use easybo_exec::{
    BlackBox, CostedFunction, Dataset, RetryPolicy, RunTrace, Schedule, SimTimeModel,
    ThreadedExecutor, VirtualExecutor,
};
use easybo_opt::{sampling, Bounds, Parallelism};
use easybo_telemetry::{RunReport, Telemetry};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::policies::{AcqOptConfig, EasyBoAsyncPolicy};
use crate::surrogate::SurrogateConfig;
use crate::weight::DEFAULT_LAMBDA;
use crate::EasyBoError;

/// Outcome of an [`EasyBo`] optimization run.
#[derive(Debug, Clone, PartialEq)]
pub struct OptimizationResult {
    /// Best design found.
    pub best_x: Vec<f64>,
    /// Objective value at `best_x`.
    pub best_value: f64,
    /// All evaluations in completion order.
    pub data: Dataset,
    /// Best-so-far timeline (virtual seconds for [`EasyBo::run`] /
    /// [`EasyBo::run_blackbox`], real seconds for [`EasyBo::run_threaded`]).
    pub trace: RunTrace,
    /// Worker occupancy record.
    pub schedule: Schedule,
    /// Where the run's time went: utilization/idle split from the
    /// schedule, plus GP-fit and acquisition overhead shares when the run
    /// had telemetry attached (see [`EasyBo::telemetry`]).
    pub report: RunReport,
}

/// The EasyBO optimizer: asynchronous batch Bayesian optimization with
/// randomized exploration weights and busy-point penalization (the paper's
/// Algorithm 1), wrapped in a builder.
///
/// # Example
///
/// ```
/// use easybo::EasyBo;
/// use easybo_opt::Bounds;
///
/// # fn main() -> Result<(), easybo::EasyBoError> {
/// let bounds = Bounds::new(vec![(0.0, 1.0); 3])?;
/// let result = EasyBo::new(bounds)
///     .batch_size(4)
///     .initial_points(12)
///     .max_evals(40)
///     .seed(1)
///     .run(|x| -(x[0] - 0.2).powi(2) - (x[1] - 0.7).powi(2) - x[2])?;
/// assert!(result.best_value > -0.2);
/// assert_eq!(result.data.len(), 40);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct EasyBo {
    bounds: Bounds,
    batch_size: usize,
    max_evals: usize,
    initial_points: usize,
    seed: u64,
    lambda: f64,
    penalize: bool,
    surrogate: SurrogateConfig,
    acq_opt: AcqOptConfig,
    telemetry: Telemetry,
    retry: RetryPolicy,
}

impl EasyBo {
    /// Creates an optimizer over `bounds` with the paper's defaults:
    /// batch size 5, 20 initial points, 100 total evaluations, λ = 6,
    /// penalization on.
    pub fn new(bounds: Bounds) -> Self {
        let dim = bounds.dim();
        EasyBo {
            bounds,
            batch_size: 5,
            max_evals: 100,
            initial_points: 20,
            seed: 0,
            lambda: DEFAULT_LAMBDA,
            penalize: true,
            surrogate: SurrogateConfig::default(),
            acq_opt: AcqOptConfig::for_dim(dim),
            telemetry: Telemetry::disabled(),
            retry: RetryPolicy::none(),
        }
    }

    /// Attaches a telemetry handle to the run: the executor, policy, and
    /// GP training all emit structured events and metrics through it, and
    /// the returned [`OptimizationResult::report`] gains the model-
    /// overhead breakdown. Default: disabled (zero overhead).
    pub fn telemetry(&mut self, telemetry: Telemetry) -> &mut Self {
        self.telemetry = telemetry;
        self
    }

    /// Number of parallel workers (batch size B). Default 5.
    pub fn batch_size(&mut self, b: usize) -> &mut Self {
        self.batch_size = b.max(1);
        self
    }

    /// Total evaluation budget, including the initial design. Default 100.
    pub fn max_evals(&mut self, n: usize) -> &mut Self {
        self.max_evals = n;
        self
    }

    /// Size of the Latin-hypercube initial design. Default 20.
    pub fn initial_points(&mut self, n: usize) -> &mut Self {
        self.initial_points = n.max(2);
        self
    }

    /// RNG seed controlling the initial design and all stochastic
    /// selection. Default 0.
    pub fn seed(&mut self, seed: u64) -> &mut Self {
        self.seed = seed;
        self
    }

    /// κ sampling range `[0, λ]` of the acquisition (Eq. 8). Default 6.
    pub fn lambda(&mut self, lambda: f64) -> &mut Self {
        self.lambda = lambda.max(0.0);
        self
    }

    /// Enables/disables the busy-point penalization scheme (Eq. 9).
    /// Default on; disabling gives the EasyBO-A ablation.
    pub fn penalization(&mut self, on: bool) -> &mut Self {
        self.penalize = on;
        self
    }

    /// Overrides the surrogate configuration.
    pub fn surrogate_config(&mut self, config: SurrogateConfig) -> &mut Self {
        self.surrogate = config;
        self
    }

    /// Overrides the acquisition-maximizer sizing.
    pub fn acquisition_config(&mut self, config: AcqOptConfig) -> &mut Self {
        self.acq_opt = config;
        self
    }

    /// Failure handling for black-box evaluations: how often to retry a
    /// crashed/non-finite/timed-out attempt, with what backoff, and what
    /// to do when attempts run out (see [`RetryPolicy`]). The default,
    /// [`RetryPolicy::none`], records every raw value exactly as before
    /// — runs with well-behaved objectives are bit-identical whether or
    /// not this is set. A common robust choice is
    /// `RetryPolicy::default()` (3 attempts, exponential backoff, failed
    /// tasks dropped so non-finite values never reach the GP).
    pub fn retry_policy(&mut self, retry: RetryPolicy) -> &mut Self {
        self.retry = retry;
        self
    }

    /// Worker-thread budget for GP hyperparameter training and acquisition
    /// maximization. Default: available cores; `1` restores the fully
    /// sequential legacy path. Results are bit-identical at any setting —
    /// only wall-clock time changes.
    pub fn parallelism(&mut self, parallelism: impl Into<Parallelism>) -> &mut Self {
        let p = parallelism.into();
        self.surrogate.parallelism = p;
        self.acq_opt.parallelism = p;
        self
    }

    pub(crate) fn validate(&self) -> crate::Result<()> {
        if self.max_evals == 0 || self.max_evals <= self.initial_points {
            return Err(EasyBoError::BadBudget {
                max_evals: self.max_evals,
                initial_points: self.initial_points,
            });
        }
        Ok(())
    }

    /// The configured design space.
    pub fn bounds(&self) -> &Bounds {
        &self.bounds
    }

    pub(crate) fn seed_value(&self) -> u64 {
        self.seed
    }

    pub(crate) fn batch_size_value(&self) -> usize {
        self.batch_size
    }

    pub(crate) fn telemetry_handle(&self) -> &Telemetry {
        &self.telemetry
    }

    pub(crate) fn max_evals_value(&self) -> usize {
        self.max_evals
    }

    fn build_policy(&self) -> EasyBoAsyncPolicy {
        let mut policy = EasyBoAsyncPolicy::with_configs(
            self.bounds.clone(),
            self.penalize,
            self.lambda,
            self.seed,
            self.surrogate.clone(),
            self.acq_opt,
        );
        policy.set_telemetry(self.telemetry.clone());
        policy
    }

    pub(crate) fn initial_design(&self) -> Vec<Vec<f64>> {
        let mut rng = StdRng::seed_from_u64(self.seed.wrapping_mul(0x9e37_79b9));
        sampling::latin_hypercube(&self.bounds, self.initial_points, &mut rng)
    }

    fn finish(&self, result: easybo_exec::RunResult) -> crate::Result<OptimizationResult> {
        let (best_x, best_value) = result
            .data
            .best()
            .map(|(x, y)| (x.to_vec(), y))
            .ok_or(EasyBoError::DegenerateObjective)?;
        if !best_value.is_finite() {
            return Err(EasyBoError::DegenerateObjective);
        }
        self.telemetry.flush();
        let report = RunReport::new(
            result.schedule.makespan(),
            result.schedule.workers(),
            result.schedule.utilization(),
            result.data.len(),
            self.telemetry.summary(),
        );
        Ok(OptimizationResult {
            best_x,
            best_value,
            data: result.data,
            trace: result.trace,
            schedule: result.schedule,
            report,
        })
    }

    /// Maximizes a plain objective function. Evaluation cost is treated as
    /// uniform (one virtual second per evaluation).
    ///
    /// # Errors
    ///
    /// * [`EasyBoError::BadBudget`] if `max_evals <= initial_points`.
    /// * [`EasyBoError::DegenerateObjective`] if no finite value was seen.
    pub fn run<F>(&self, f: F) -> crate::Result<OptimizationResult>
    where
        F: Fn(&[f64]) -> f64 + Send + Sync,
    {
        self.validate()?;
        let time = SimTimeModel::new(&self.bounds, 1.0, 0.0, self.seed);
        let bb = CostedFunction::new("objective", self.bounds.clone(), time, f);
        self.run_blackbox(&bb)
    }

    /// Maximizes a [`BlackBox`] on the virtual-time executor (deterministic,
    /// instant; the returned trace carries the *virtual* schedule).
    ///
    /// # Errors
    ///
    /// Same conditions as [`EasyBo::run`].
    pub fn run_blackbox(&self, bb: &dyn BlackBox) -> crate::Result<OptimizationResult> {
        self.validate()?;
        let mut policy = self.build_policy();
        let result = VirtualExecutor::new(self.batch_size).run_async_resilient(
            bb,
            &self.initial_design(),
            self.max_evals,
            &mut policy,
            &self.retry,
            &self.telemetry,
        );
        self.finish(result)
    }

    /// Maximizes a [`BlackBox`] on real OS threads — the production path
    /// for genuinely expensive objectives. `time_scale` seconds of real
    /// sleep emulate each virtual second of reported cost (0.0 = no sleep).
    ///
    /// # Errors
    ///
    /// Same conditions as [`EasyBo::run`].
    pub fn run_threaded(
        &self,
        bb: &(dyn BlackBox + Sync),
        time_scale: f64,
    ) -> crate::Result<OptimizationResult> {
        self.validate()?;
        let mut policy = self.build_policy();
        let result = ThreadedExecutor::new(self.batch_size, time_scale).run_async_resilient(
            bb,
            &self.initial_design(),
            self.max_evals,
            &mut policy,
            &self.retry,
            &self.telemetry,
        )?;
        self.finish(result)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_peak_of_smooth_function() {
        let bounds = Bounds::new(vec![(-2.0, 2.0), (-2.0, 2.0)]).unwrap();
        let r = EasyBo::new(bounds)
            .batch_size(4)
            .initial_points(10)
            .max_evals(45)
            .seed(3)
            .run(|x| (-((x[0] - 0.5).powi(2) + (x[1] + 0.5).powi(2))).exp())
            .unwrap();
        assert!(r.best_value > 0.9, "best {}", r.best_value);
        assert!((r.best_x[0] - 0.5).abs() < 0.5);
        assert_eq!(r.data.len(), 45);
    }

    #[test]
    fn rejects_bad_budget() {
        let bounds = Bounds::unit_cube(2).unwrap();
        let mut opt = EasyBo::new(bounds);
        opt.initial_points(20).max_evals(10);
        assert!(matches!(
            opt.run(|_| 0.0),
            Err(EasyBoError::BadBudget { .. })
        ));
    }

    #[test]
    fn degenerate_objective_is_reported() {
        let bounds = Bounds::unit_cube(1).unwrap();
        let r = EasyBo::new(bounds)
            .initial_points(3)
            .max_evals(6)
            .run(|_| f64::NAN);
        assert!(matches!(r, Err(EasyBoError::DegenerateObjective)));
    }

    #[test]
    fn builder_clamps_degenerate_settings() {
        let bounds = Bounds::unit_cube(1).unwrap();
        let mut opt = EasyBo::new(bounds);
        opt.batch_size(0).initial_points(0).lambda(-1.0);
        // batch >= 1, init >= 2, lambda >= 0: the run must still work.
        opt.max_evals(8).seed(1);
        let r = opt.run(|x| -x[0]).unwrap();
        assert_eq!(r.data.len(), 8);
    }

    #[test]
    fn seeded_runs_reproduce() {
        let bounds = Bounds::unit_cube(2).unwrap();
        let run = |seed| {
            let mut opt = EasyBo::new(bounds.clone());
            opt.initial_points(6).max_evals(16).seed(seed);
            opt.run(|x| -(x[0] - 0.3f64).powi(2) - (x[1] - 0.6f64).powi(2))
                .unwrap()
        };
        let a = run(9);
        let b = run(9);
        assert_eq!(a.data, b.data);
        assert_eq!(a.best_x, b.best_x);
    }

    #[test]
    fn threaded_run_matches_api_contract() {
        use easybo_exec::{CostedFunction, SimTimeModel};
        let bounds = Bounds::unit_cube(2).unwrap();
        let time = SimTimeModel::new(&bounds, 5.0, 0.2, 0);
        let bb = CostedFunction::new("toy", bounds.clone(), time, |x: &[f64]| {
            -(x[0] - 0.4f64).powi(2) - (x[1] - 0.6f64).powi(2)
        });
        let mut opt = EasyBo::new(bounds);
        opt.batch_size(3).initial_points(6).max_evals(20).seed(2);
        let r = opt.run_threaded(&bb, 0.0).unwrap();
        assert_eq!(r.data.len(), 20);
        assert!(r.best_value > -0.05, "best {}", r.best_value);
    }
}
