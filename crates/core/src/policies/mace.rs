//! MACE — batch BO via Multi-objective ACquisition Ensemble (Lyu et al.,
//! ICML 2018), the synchronous baseline the paper's §II-C describes as
//! "maintain[ing] diversity for each batch by sampling from the Pareto
//! front of the multi-objective acquisition function ensemble".
//!
//! The ensemble is {EI, PI, UCB}. A candidate pool (space-filling probes
//! plus local refinements of each single-acquisition maximizer) is scored
//! on all three acquisitions; the non-dominated subset is the Pareto
//! front; the batch is drawn uniformly from the front (topping up with the
//! best-crowded dominated candidates if the front is small).

use easybo_exec::{Dataset, SyncBatchPolicy};
use easybo_opt::{sampling, Bounds};
use rand::rngs::StdRng;
use rand::{seq::SliceRandom, Rng, SeedableRng};

use crate::acquisition;
use crate::policies::{AcqMaximizer, AcqOptConfig};
use crate::surrogate::{SurrogateConfig, SurrogateManager};

/// MACE synchronous batch policy.
///
/// # Example
///
/// ```
/// use easybo::policies::MacePolicy;
/// use easybo_exec::{CostedFunction, SimTimeModel, VirtualExecutor};
/// use easybo_opt::{sampling, Bounds};
/// use rand::SeedableRng;
///
/// # fn main() -> Result<(), easybo_opt::OptError> {
/// let bounds = Bounds::new(vec![(0.0, 1.0)])?;
/// let time = SimTimeModel::new(&bounds, 5.0, 0.2, 0);
/// let bb = CostedFunction::new("bump", bounds.clone(), time, |x: &[f64]| {
///     -(x[0] - 0.4) * (x[0] - 0.4)
/// });
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let init = sampling::latin_hypercube(&bounds, 5, &mut rng);
/// let mut policy = MacePolicy::new(bounds, 7);
/// let r = VirtualExecutor::new(3).run_sync(&bb, &init, 20, &mut policy);
/// assert!(r.best_value() > -0.01);
/// # Ok(())
/// # }
/// ```
pub struct MacePolicy {
    surrogate: SurrogateManager,
    maximizer: AcqMaximizer,
    rng: StdRng,
    pool_size: usize,
    fallbacks: usize,
}

impl MacePolicy {
    /// Creates a MACE policy with the default candidate pool size.
    pub fn new(bounds: Bounds, seed: u64) -> Self {
        let dim = bounds.dim();
        Self::with_configs(
            bounds,
            seed,
            SurrogateConfig::default(),
            AcqOptConfig::for_dim(dim),
        )
    }

    /// Full-configuration constructor (pool size still scales with dim).
    pub fn with_configs(
        bounds: Bounds,
        seed: u64,
        surrogate: SurrogateConfig,
        acq_opt: AcqOptConfig,
    ) -> Self {
        let dim = bounds.dim();
        MacePolicy {
            surrogate: SurrogateManager::new(bounds, SurrogateConfig { seed, ..surrogate }),
            maximizer: AcqMaximizer::new(dim, acq_opt),
            rng: StdRng::seed_from_u64(seed ^ 0x3ace_0001),
            pool_size: 256.max(32 * dim),
            fallbacks: 0,
        }
    }

    /// Surrogate-fit fallback count (should stay 0).
    pub fn fallbacks(&self) -> usize {
        self.fallbacks
    }
}

/// Indices of the Pareto-optimal rows of `scores` (maximization in every
/// column).
pub(crate) fn pareto_front(scores: &[[f64; 3]]) -> Vec<usize> {
    let dominates = |a: &[f64; 3], b: &[f64; 3]| {
        a.iter().zip(b.iter()).all(|(x, y)| x >= y) && a.iter().zip(b.iter()).any(|(x, y)| x > y)
    };
    (0..scores.len())
        .filter(|&i| {
            !scores
                .iter()
                .enumerate()
                .any(|(j, s)| j != i && dominates(s, &scores[i]))
        })
        .collect()
}

impl SyncBatchPolicy for MacePolicy {
    fn select_batch(&mut self, data: &Dataset, batch_size: usize) -> Vec<Vec<f64>> {
        if data.is_empty() {
            return (0..batch_size)
                .map(|_| self.surrogate.bounds().sample_uniform(&mut self.rng))
                .collect();
        }
        let gp = match self.surrogate.surrogate(data) {
            Ok(gp) => gp.clone(),
            Err(_) => {
                self.fallbacks += 1;
                return (0..batch_size)
                    .map(|_| self.surrogate.bounds().sample_uniform(&mut self.rng))
                    .collect();
            }
        };
        let best = data.best_value();
        let unit = Bounds::unit_cube(gp.dim()).expect("dim > 0");

        // Candidate pool: LHS probes + the three single-acquisition optima.
        let mut pool = sampling::latin_hypercube(&unit, self.pool_size, &mut self.rng);
        for e in 0..3 {
            let gp_ref = &gp;
            let opt = self.maximizer.maximize(&mut self.rng, move |p| match e {
                0 => acquisition::expected_improvement(gp_ref, p, best),
                1 => acquisition::probability_of_improvement(gp_ref, p, best),
                _ => acquisition::ucb(gp_ref, p, 2.0),
            });
            pool.push(opt);
        }

        // Score the ensemble.
        let scores: Vec<[f64; 3]> = pool
            .iter()
            .map(|p| {
                [
                    acquisition::expected_improvement(&gp, p, best),
                    acquisition::probability_of_improvement(&gp, p, best),
                    acquisition::ucb(&gp, p, 2.0),
                ]
            })
            .collect();
        let mut front = pareto_front(&scores);
        front.shuffle(&mut self.rng);

        // Draw the batch from the front; top up from the rest of the pool
        // if the front is smaller than the batch.
        let mut batch: Vec<Vec<f64>> = front
            .iter()
            .take(batch_size)
            .map(|&i| self.surrogate.from_unit(&pool[i]))
            .collect();
        while batch.len() < batch_size {
            let i = self.rng.gen_range(0..pool.len());
            batch.push(self.surrogate.from_unit(&pool[i]));
        }
        batch
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use easybo_exec::{BlackBox as _, CostedFunction, SimTimeModel, VirtualExecutor};

    #[test]
    fn pareto_front_of_known_points() {
        // (3,1,1) and (1,3,1) and (1,1,3) are mutually non-dominated;
        // (0.5,0.5,0.5) is dominated by all of them.
        let scores = vec![
            [3.0, 1.0, 1.0],
            [1.0, 3.0, 1.0],
            [1.0, 1.0, 3.0],
            [0.5, 0.5, 0.5],
        ];
        let front = pareto_front(&scores);
        assert_eq!(front, vec![0, 1, 2]);
    }

    #[test]
    fn pareto_front_single_dominator() {
        let scores = vec![[1.0, 1.0, 1.0], [2.0, 2.0, 2.0]];
        assert_eq!(pareto_front(&scores), vec![1]);
    }

    #[test]
    fn pareto_front_all_equal_keeps_everything() {
        let scores = vec![[1.0, 1.0, 1.0]; 4];
        assert_eq!(pareto_front(&scores).len(), 4);
    }

    #[test]
    fn mace_reaches_peak() {
        let bounds = Bounds::new(vec![(-2.0, 2.0), (-2.0, 2.0)]).unwrap();
        let time = SimTimeModel::new(&bounds, 10.0, 0.2, 0);
        let bb = CostedFunction::new("peak", bounds.clone(), time, |x: &[f64]| {
            (-((x[0] - 0.5).powi(2) + (x[1] + 0.5).powi(2))).exp()
        });
        let mut rng = StdRng::seed_from_u64(1);
        let init = sampling::latin_hypercube(bb.bounds(), 10, &mut rng);
        let mut policy = MacePolicy::new(bounds, 1);
        let r = VirtualExecutor::new(5).run_sync(&bb, &init, 45, &mut policy);
        assert!(r.best_value() > 0.85, "MACE best {}", r.best_value());
        assert_eq!(policy.fallbacks(), 0);
    }

    #[test]
    fn batch_size_is_always_honored() {
        let bounds = Bounds::new(vec![(0.0, 1.0)]).unwrap();
        let mut data = Dataset::new();
        for i in 0..6 {
            data.push(vec![i as f64 / 5.0], (i as f64).cos());
        }
        let mut policy = MacePolicy::new(bounds.clone(), 2);
        for b in [1usize, 3, 8] {
            let batch = policy.select_batch(&data, b);
            assert_eq!(batch.len(), b);
            assert!(batch.iter().all(|x| bounds.contains(x)));
        }
    }
}
