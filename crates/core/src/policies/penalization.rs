//! Penalization-mode ablation: how busy points are hallucinated.
//!
//! The paper (§III-C, following BUCB) fixes the hallucinated observation of
//! a busy point to the current *predictive mean*. The "constant liar"
//! family (Ginsbourger et al.) instead assumes a fixed pessimistic or
//! optimistic value. DESIGN.md calls this design choice out for ablation;
//! this module implements all three so the benches can compare them.

use easybo_gp::{Gp, IncrementalGp};
use easybo_telemetry::{Event, Telemetry};
use serde::{Deserialize, Serialize};

/// How a busy (in-flight) query point is converted into a pseudo-observation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum PenalizationMode {
    /// Paper behavior: hallucinate the GP's predictive mean (BUCB-style).
    /// Leaves the posterior mean unchanged; only shrinks `σ̂`.
    #[default]
    HallucinateMean,
    /// Constant liar, pessimistic: assume the busy point returns the worst
    /// observation seen so far. Pushes the mean down near busy points in
    /// addition to shrinking `σ̂` — more aggressive repulsion.
    ConstantLiarMin,
    /// Constant liar, optimistic: assume the busy point returns the best
    /// observation seen so far. Pulls the mean up near busy points — keeps
    /// exploiting promising regions while still diversifying via `σ̂`.
    ConstantLiarMax,
}

impl PenalizationMode {
    /// Augments `gp` with `busy_units` (unit-cube coordinates) according to
    /// the mode. `y_lo`/`y_hi` are the worst/best raw observations so far
    /// (used by the constant-liar modes).
    ///
    /// # Errors
    ///
    /// Propagates [`easybo_gp::GpError`] from the underlying augmentation
    /// (degenerate duplicated points).
    pub fn augment(
        &self,
        gp: &Gp,
        busy_units: &[Vec<f64>],
        y_lo: f64,
        y_hi: f64,
    ) -> Result<Gp, easybo_gp::GpError> {
        match self {
            PenalizationMode::HallucinateMean => gp.augment(busy_units),
            PenalizationMode::ConstantLiarMin => lie(gp, busy_units, y_lo),
            PenalizationMode::ConstantLiarMax => lie(gp, busy_units, y_hi),
        }
    }

    /// [`PenalizationMode::augment`] with a telemetry handle: emits one
    /// `PseudoPointAdded` event (with the number of hallucinated points)
    /// per successful augmentation.
    ///
    /// # Errors
    ///
    /// Same conditions as [`PenalizationMode::augment`].
    pub fn augment_traced(
        &self,
        gp: &Gp,
        busy_units: &[Vec<f64>],
        y_lo: f64,
        y_hi: f64,
        telemetry: &Telemetry,
    ) -> Result<Gp, easybo_gp::GpError> {
        let aug = self.augment(gp, busy_units, y_lo, y_hi)?;
        telemetry.emit_with(|| Event::PseudoPointAdded {
            count: busy_units.len(),
        });
        telemetry.incr("pseudo_points_added", busy_units.len() as u64);
        Ok(aug)
    }

    /// Incremental counterpart of [`PenalizationMode::augment_traced`]:
    /// pushes the busy points onto `inc`'s pseudo-point factor stack via
    /// rank-1 Cholesky updates instead of cloning and refactorizing.
    ///
    /// On success the stack holds exactly `busy_units.len()` new
    /// pseudo-points and one `PseudoPointAdded` event is emitted. On error
    /// every push made so far is popped again, leaving `inc` bitwise
    /// unchanged, before the error is returned.
    ///
    /// # Errors
    ///
    /// Same conditions as [`PenalizationMode::augment`].
    pub fn push_traced(
        &self,
        inc: &mut IncrementalGp,
        busy_units: &[Vec<f64>],
        y_lo: f64,
        y_hi: f64,
        telemetry: &Telemetry,
    ) -> Result<(), easybo_gp::GpError> {
        let mut pushed = 0usize;
        for b in busy_units {
            let res = match self {
                PenalizationMode::HallucinateMean => inc.push_pseudo_mean(b.clone()),
                PenalizationMode::ConstantLiarMin => inc.push_pseudo_lie(b.clone(), y_lo),
                PenalizationMode::ConstantLiarMax => inc.push_pseudo_lie(b.clone(), y_hi),
            };
            match res {
                Ok(()) => pushed += 1,
                Err(e) => {
                    for _ in 0..pushed {
                        inc.pop_pseudo();
                    }
                    return Err(e);
                }
            }
        }
        telemetry.emit_with(|| Event::PseudoPointAdded {
            count: busy_units.len(),
        });
        telemetry.incr("pseudo_points_added", busy_units.len() as u64);
        Ok(())
    }

    /// All modes, for ablation sweeps.
    pub fn all() -> [PenalizationMode; 3] {
        [
            PenalizationMode::HallucinateMean,
            PenalizationMode::ConstantLiarMin,
            PenalizationMode::ConstantLiarMax,
        ]
    }

    /// Short label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            PenalizationMode::HallucinateMean => "mean",
            PenalizationMode::ConstantLiarMin => "liar-min",
            PenalizationMode::ConstantLiarMax => "liar-max",
        }
    }
}

/// Augments with a fixed lie value for every busy point.
fn lie(gp: &Gp, busy_units: &[Vec<f64>], y: f64) -> Result<Gp, easybo_gp::GpError> {
    let mut out = gp.clone();
    for b in busy_units {
        out = out.extend_observed(b.clone(), y)?;
        // `extend_observed` counts the point as real; for penalization
        // semantics that distinction only matters for bookkeeping, which
        // the caller discards (the augmented GP lives for one selection).
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use easybo_gp::KernelFamily;

    fn toy_gp() -> Gp {
        let x: Vec<Vec<f64>> = (0..8).map(|i| vec![i as f64 / 7.0]).collect();
        let y: Vec<f64> = x.iter().map(|p| (4.0 * p[0]).sin()).collect();
        Gp::fit_with_params(
            x,
            y,
            KernelFamily::SquaredExponential,
            vec![-1.0, 0.0],
            (1e-6f64).ln(),
        )
        .expect("toy GP fits")
    }

    #[test]
    fn all_modes_shrink_variance_at_busy_point() {
        let gp = toy_gp();
        let busy = vec![vec![0.4]];
        let v0 = gp.predict(&[0.4]).variance;
        for mode in PenalizationMode::all() {
            let aug = mode.augment(&gp, &busy, -1.0, 1.0).expect("augments");
            let v1 = aug.predict(&[0.4]).variance;
            assert!(v1 <= v0 + 1e-12, "{mode:?}: {v0} -> {v1}");
        }
    }

    #[test]
    fn mean_mode_keeps_posterior_mean() {
        let gp = toy_gp();
        let busy = vec![vec![1.5]];
        let aug = PenalizationMode::HallucinateMean
            .augment(&gp, &busy, -1.0, 1.0)
            .expect("augments");
        for q in [0.2, 0.9, 1.5, 2.0] {
            assert!(
                (gp.predict(&[q]).mean - aug.predict(&[q]).mean).abs() < 1e-6,
                "mean moved at {q}"
            );
        }
    }

    #[test]
    fn liar_min_depresses_mean_near_busy_point() {
        let gp = toy_gp();
        let busy = vec![vec![1.5]]; // unexplored region
        let aug = PenalizationMode::ConstantLiarMin
            .augment(&gp, &busy, -5.0, 5.0)
            .expect("augments");
        assert!(
            aug.predict(&[1.5]).mean < gp.predict(&[1.5]).mean,
            "pessimistic lie should pull the mean down"
        );
    }

    #[test]
    fn liar_max_raises_mean_near_busy_point() {
        let gp = toy_gp();
        let busy = vec![vec![1.5]];
        let aug = PenalizationMode::ConstantLiarMax
            .augment(&gp, &busy, -5.0, 5.0)
            .expect("augments");
        assert!(
            aug.predict(&[1.5]).mean > gp.predict(&[1.5]).mean,
            "optimistic lie should pull the mean up"
        );
    }

    #[test]
    fn push_traced_matches_augment_and_pops_clean() {
        let telemetry = Telemetry::disabled();
        let busy = vec![vec![0.3], vec![0.85]];
        for mode in PenalizationMode::all() {
            let gp = toy_gp();
            let aug = mode.augment(&gp, &busy, -5.0, 5.0).expect("augments");
            let mut inc = IncrementalGp::new(toy_gp());
            mode.push_traced(&mut inc, &busy, -5.0, 5.0, &telemetry)
                .expect("pushes");
            assert_eq!(inc.n_pseudo(), busy.len());
            for q in [0.1, 0.4, 0.85, 1.3] {
                let a = aug.predict(&[q]);
                let b = inc.gp().predict(&[q]);
                assert_eq!(a.mean.to_bits(), b.mean.to_bits(), "{mode:?} mean at {q}");
                assert_eq!(
                    a.variance.to_bits(),
                    b.variance.to_bits(),
                    "{mode:?} variance at {q}"
                );
            }
            inc.pop_all_pseudo();
            assert_eq!(inc.n_pseudo(), 0);
            for q in [0.1, 0.4, 0.85, 1.3] {
                let a = toy_gp().predict(&[q]);
                let b = inc.gp().predict(&[q]);
                assert_eq!(
                    a.mean.to_bits(),
                    b.mean.to_bits(),
                    "{mode:?} restore at {q}"
                );
            }
        }
    }

    #[test]
    fn labels_are_distinct() {
        let labels: std::collections::HashSet<_> =
            PenalizationMode::all().iter().map(|m| m.label()).collect();
        assert_eq!(labels.len(), 3);
        assert_eq!(
            PenalizationMode::default(),
            PenalizationMode::HallucinateMean
        );
    }
}
