//! Asynchronous ε-greedy policy (De Ath, Everson & Fieldsend 2020,
//! *"Asynchronous ε-Greedy Bayesian Optimisation"*).
//!
//! Whenever a worker becomes idle, the policy flips a biased coin:
//!
//! * with probability `1 - ε` it **exploits** — maximizes the GP
//!   posterior mean over the design space;
//! * with probability `ε` it **explores** — draws a uniform random
//!   point from the bounds.
//!
//! Busy points are deliberately ignored: De Ath et al. argue that the
//! ε-randomization itself decorrelates concurrent queries, so no
//! hallucination or penalization machinery is needed for async safety —
//! the occasional random interleave breaks the mean-maximizer pile-up
//! that makes plain greedy policies degenerate under parallelism.
//!
//! The coin is flipped *after* the surrogate fit, so the RNG stream (and
//! with it every downstream decision) is bit-identical with the
//! incremental GP path on or off — the same discipline as
//! [`EasyBoAsyncPolicy`](crate::policies::EasyBoAsyncPolicy).

use easybo_exec::{AsyncPolicy, BusyPoint, Dataset};
use easybo_opt::Bounds;
use easybo_telemetry::Telemetry;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::acquisition::WeightedAcq;
use crate::policies::asynchronous::maximize_traced;
use crate::policies::{AcqMaximizer, AcqOptConfig};
use crate::surrogate::{SurrogateConfig, SurrogateManager};

/// Default exploration rate (De Ath et al. recommend ε ≈ 0.1).
pub const DEFAULT_EPSILON: f64 = 0.1;

/// Asynchronous ε-greedy policy: ε-random interleaving of posterior-mean
/// exploitation and uniform exploration, async-safe without busy-point
/// penalization.
///
/// # Example
///
/// ```
/// use easybo::policies::EpsGreedyPolicy;
/// use easybo_exec::{CostedFunction, SimTimeModel, VirtualExecutor};
/// use easybo_opt::{sampling, Bounds};
/// use rand::SeedableRng;
///
/// # fn main() -> Result<(), easybo_opt::OptError> {
/// let bounds = Bounds::new(vec![(-2.0, 2.0)])?;
/// let time = SimTimeModel::new(&bounds, 20.0, 0.3, 1);
/// let bb = CostedFunction::new("bump", bounds.clone(), time, |x: &[f64]| {
///     -(x[0] - 1.1) * (x[0] - 1.1)
/// });
/// let mut rng = rand::rngs::StdRng::seed_from_u64(2);
/// let init = sampling::latin_hypercube(&bounds, 6, &mut rng);
/// let mut policy = EpsGreedyPolicy::new(bounds, 7);
/// let r = VirtualExecutor::new(4).run_async(&bb, &init, 30, &mut policy);
/// assert!(r.best_value() > -0.05);
/// # Ok(())
/// # }
/// ```
pub struct EpsGreedyPolicy {
    surrogate: SurrogateManager,
    maximizer: AcqMaximizer,
    rng: StdRng,
    epsilon: f64,
    fallbacks: usize,
    explores: u64,
    exploits: u64,
    acq_restarts: usize,
    telemetry: Telemetry,
}

impl EpsGreedyPolicy {
    /// Creates the policy with the recommended ε = 0.1.
    pub fn new(bounds: Bounds, seed: u64) -> Self {
        let dim = bounds.dim();
        Self::with_configs(
            bounds,
            DEFAULT_EPSILON,
            seed,
            SurrogateConfig::default(),
            AcqOptConfig::for_dim(dim),
        )
    }

    /// Full-configuration constructor. `epsilon` is clamped to `[0, 1]`.
    pub fn with_configs(
        bounds: Bounds,
        epsilon: f64,
        seed: u64,
        surrogate: SurrogateConfig,
        acq_opt: AcqOptConfig,
    ) -> Self {
        let dim = bounds.dim();
        EpsGreedyPolicy {
            surrogate: SurrogateManager::new(bounds, SurrogateConfig { seed, ..surrogate }),
            maximizer: AcqMaximizer::new(dim, acq_opt),
            rng: StdRng::seed_from_u64(seed ^ 0x0e95_6eed),
            epsilon: epsilon.clamp(0.0, 1.0),
            fallbacks: 0,
            explores: 0,
            exploits: 0,
            acq_restarts: acq_opt.starts,
            telemetry: Telemetry::disabled(),
        }
    }

    /// Attaches a telemetry handle (acquisition + GP-refit events).
    pub fn set_telemetry(&mut self, telemetry: Telemetry) -> &mut Self {
        self.surrogate.set_telemetry(telemetry.clone());
        self.telemetry = telemetry;
        self
    }

    /// The configured exploration rate ε.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// Surrogate-fit fallback count (should stay 0).
    pub fn fallbacks(&self) -> usize {
        self.fallbacks
    }

    /// Number of ε-branch (uniform-random) selections taken so far.
    pub fn explores(&self) -> u64 {
        self.explores
    }

    /// Number of greedy (posterior-mean) selections taken so far.
    pub fn exploits(&self) -> u64 {
        self.exploits
    }
}

impl AsyncPolicy for EpsGreedyPolicy {
    fn select_next(&mut self, data: &Dataset, _busy: &[BusyPoint]) -> Vec<f64> {
        if data.is_empty() {
            // More workers than initial points: nothing observed yet.
            return self.surrogate.bounds().sample_uniform(&mut self.rng);
        }
        // Fit before any RNG draw (bit-identity across the incremental
        // toggle, see the module docs).
        if self.surrogate.surrogate(data).is_err() {
            self.fallbacks += 1;
            return self.surrogate.bounds().sample_uniform(&mut self.rng);
        }
        let coin: f64 = self.rng.gen_range(0.0..1.0);
        if coin < self.epsilon {
            self.explores += 1;
            return self.surrogate.bounds().sample_uniform(&mut self.rng);
        }
        self.exploits += 1;
        let u = if self.surrogate.incremental_enabled() {
            let inc = self
                .surrogate
                .incremental(data)
                .expect("surrogate fitted above");
            maximize_traced(
                &self.maximizer,
                &mut self.rng,
                &self.telemetry,
                self.acq_restarts,
                &WeightedAcq {
                    gp: inc.gp(),
                    w: 0.0,
                },
            )
        } else {
            let gp = self
                .surrogate
                .surrogate(data)
                .expect("surrogate fitted above")
                .clone();
            maximize_traced(
                &self.maximizer,
                &mut self.rng,
                &self.telemetry,
                self.acq_restarts,
                &WeightedAcq { gp: &gp, w: 0.0 },
            )
        };
        self.surrogate.from_unit(&u)
    }

    fn snapshot_state(&self) -> Option<Vec<u8>> {
        Some(crate::persistence::encode_eps_greedy_state(
            self.rng.state(),
            self.fallbacks,
            self.explores,
            self.exploits,
            &self.surrogate.state(),
        ))
    }

    fn restore_state(&mut self, state: &[u8]) -> Result<(), String> {
        let blob = crate::persistence::decode_eps_greedy_state(state).map_err(|e| e.to_string())?;
        self.surrogate
            .restore(blob.core.surrogate)
            .map_err(|e| e.to_string())?;
        self.rng = StdRng::from_state(blob.core.rng);
        self.fallbacks = blob.core.fallbacks;
        self.explores = blob.explores;
        self.exploits = blob.exploits;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use easybo_exec::BlackBox as _;
    use easybo_exec::{CostedFunction, SimTimeModel, VirtualExecutor};
    use easybo_opt::sampling;

    fn bb_2d() -> CostedFunction<impl Fn(&[f64]) -> f64 + Send + Sync> {
        let bounds = Bounds::new(vec![(-2.0, 2.0), (-2.0, 2.0)]).unwrap();
        let time = SimTimeModel::new(&bounds, 10.0, 0.3, 0);
        CostedFunction::new("peak", bounds, time, |x: &[f64]| {
            (-((x[0] - 0.5).powi(2) + (x[1] + 0.5).powi(2))).exp()
        })
    }

    fn init(bounds: &Bounds, n: usize, seed: u64) -> Vec<Vec<f64>> {
        let mut rng = StdRng::seed_from_u64(seed);
        sampling::latin_hypercube(bounds, n, &mut rng)
    }

    #[test]
    fn eps_greedy_reaches_peak() {
        let bb = bb_2d();
        let bounds = bb.bounds().clone();
        let mut policy = EpsGreedyPolicy::new(bounds.clone(), 1);
        let r = VirtualExecutor::new(5).run_async(&bb, &init(&bounds, 10, 1), 45, &mut policy);
        assert!(r.best_value() > 0.85, "eps-greedy best {}", r.best_value());
        assert_eq!(policy.fallbacks(), 0);
        assert_eq!(policy.explores() + policy.exploits(), 35);
    }

    #[test]
    fn epsilon_one_is_pure_random_search() {
        let bb = bb_2d();
        let bounds = bb.bounds().clone();
        let mut policy = EpsGreedyPolicy::with_configs(
            bounds.clone(),
            1.0,
            3,
            SurrogateConfig::default(),
            AcqOptConfig::for_dim(2),
        );
        let r = VirtualExecutor::new(4).run_async(&bb, &init(&bounds, 8, 3), 20, &mut policy);
        assert_eq!(policy.explores(), 12);
        assert_eq!(policy.exploits(), 0);
        for x in r.data.xs() {
            assert!(bounds.contains(x), "{x:?}");
        }
    }

    #[test]
    fn snapshot_restore_continues_decision_stream_bitwise() {
        let bounds = Bounds::new(vec![(0.0, 1.0)]).unwrap();
        let mut data = Dataset::new();
        for i in 0..9 {
            data.push(vec![i as f64 / 8.0], (i as f64 * 0.9).sin());
        }
        let mut policy = EpsGreedyPolicy::new(bounds.clone(), 11);
        let _ = policy.select_next(&data, &[]);
        let blob = policy.snapshot_state().expect("policy supports capture");

        let mut restored = EpsGreedyPolicy::new(bounds, 999); // wrong seed on purpose
        restored.restore_state(&blob).unwrap();
        assert_eq!(restored.explores(), policy.explores());
        assert_eq!(restored.exploits(), policy.exploits());

        data.push(vec![0.55], 0.21);
        for _ in 0..3 {
            let a = policy.select_next(&data, &[]);
            let b = restored.select_next(&data, &[]);
            assert_eq!(a.len(), b.len());
            for (va, vb) in a.iter().zip(&b) {
                assert_eq!(va.to_bits(), vb.to_bits());
            }
        }
    }

    #[test]
    fn restore_rejects_garbage_and_foreign_blobs() {
        let bounds = Bounds::new(vec![(0.0, 1.0)]).unwrap();
        let mut policy = EpsGreedyPolicy::new(bounds.clone(), 0);
        assert!(policy.restore_state(&[1, 2, 3]).is_err());
        // An EasyBO (legacy-layout) blob must be rejected with the
        // kind-tag message, not half-decoded.
        let mut easybo = crate::policies::EasyBoAsyncPolicy::new(bounds, true, 0);
        let mut data = Dataset::new();
        for i in 0..6 {
            data.push(vec![i as f64 / 5.0], (i as f64).cos());
        }
        let _ = easybo.select_next(&data, &[]);
        let foreign = easybo.snapshot_state().unwrap();
        let err = policy.restore_state(&foreign).unwrap_err();
        assert!(err.contains("eps-greedy"), "{err}");
    }
}
