//! Synchronous batch policies: pBO, pHCBO (Hu, Li & Huang, ICCAD'18) and
//! the EasyBO-S / EasyBO-SP ablations.

use std::collections::VecDeque;

use easybo_exec::{Dataset, SyncBatchPolicy};
use easybo_opt::Bounds;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::acquisition::{self, PenalizedAcq, PenalizedAcqInc, WeightedAcq};
use crate::policies::{AcqMaximizer, AcqOptConfig};
use crate::surrogate::{SurrogateConfig, SurrogateManager};
use crate::weight::WeightSchedule;

/// How many past query points per weight index the pHCBO penalty remembers.
const HC_HISTORY: usize = 5;

/// The pBO / pHCBO synchronous batch policy (Eqs. 4–6).
///
/// Each batch member `i` maximizes `(1-w_i)·μ + w_i·σ` with the fixed grid
/// of weights `w_i = (i-1)/(B-1)`. With `high_coverage` the acquisition is
/// additionally penalized by the Eq. 6 distance term against the previous
/// five query points *of the same weight index*, discouraging
/// clustered samples.
///
/// # Example
///
/// ```
/// use easybo::policies::PboPolicy;
/// use easybo_exec::{CostedFunction, SimTimeModel, VirtualExecutor};
/// use easybo_opt::{sampling, Bounds};
/// use rand::SeedableRng;
///
/// # fn main() -> Result<(), easybo_opt::OptError> {
/// let bounds = Bounds::new(vec![(0.0, 1.0)])?;
/// let time = SimTimeModel::new(&bounds, 5.0, 0.2, 0);
/// let bb = CostedFunction::new("bump", bounds.clone(), time, |x: &[f64]| {
///     -(x[0] - 0.3) * (x[0] - 0.3)
/// });
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let init = sampling::latin_hypercube(&bounds, 5, &mut rng);
/// let mut policy = PboPolicy::new(bounds, false, 9);
/// let r = VirtualExecutor::new(3).run_sync(&bb, &init, 20, &mut policy);
/// assert!(r.best_value() > -0.01);
/// # Ok(())
/// # }
/// ```
pub struct PboPolicy {
    surrogate: SurrogateManager,
    maximizer: AcqMaximizer,
    rng: StdRng,
    high_coverage: bool,
    /// Per-weight-index history of recent query points (unit coords).
    history: Vec<VecDeque<Vec<f64>>>,
    /// Eq. 6 reference distance `d` in unit-cube space.
    hc_distance: f64,
    fallbacks: usize,
}

impl PboPolicy {
    /// Creates a pBO (`high_coverage = false`) or pHCBO
    /// (`high_coverage = true`) policy.
    pub fn new(bounds: Bounds, high_coverage: bool, seed: u64) -> Self {
        let dim = bounds.dim();
        Self::with_configs(
            bounds,
            high_coverage,
            seed,
            SurrogateConfig::default(),
            AcqOptConfig::for_dim(dim),
        )
    }

    /// Full-configuration constructor.
    pub fn with_configs(
        bounds: Bounds,
        high_coverage: bool,
        seed: u64,
        surrogate: SurrogateConfig,
        acq_opt: AcqOptConfig,
    ) -> Self {
        let dim = bounds.dim();
        PboPolicy {
            surrogate: SurrogateManager::new(bounds, SurrogateConfig { seed, ..surrogate }),
            maximizer: AcqMaximizer::new(dim, acq_opt),
            rng: StdRng::seed_from_u64(seed ^ 0x70b0_7070),
            high_coverage,
            history: Vec::new(),
            hc_distance: 0.1 * (dim as f64).sqrt(),
            fallbacks: 0,
        }
    }

    /// Surrogate-fit fallback count (should stay 0).
    pub fn fallbacks(&self) -> usize {
        self.fallbacks
    }
}

/// Eq. 6 high-coverage penalty of pHCBO against a weight-index history:
/// `N_HC · (Π_j exp[(d/d_x)^10])^(1/|hist|)` with `N_HC = 1`, evaluated in
/// log space to avoid overflow.
fn hc_penalty(hist: &[Vec<f64>], d: f64, u: &[f64]) -> f64 {
    if hist.is_empty() {
        return 0.0;
    }
    let mut log_sum = 0.0;
    for past in hist {
        let dx: f64 = past
            .iter()
            .zip(u.iter())
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt()
            .max(1e-9);
        log_sum += (d / dx).powi(10).min(700.0);
    }
    (log_sum / hist.len() as f64).min(700.0).exp()
}

impl SyncBatchPolicy for PboPolicy {
    fn select_batch(&mut self, data: &Dataset, batch_size: usize) -> Vec<Vec<f64>> {
        if data.is_empty() {
            return (0..batch_size)
                .map(|_| self.surrogate.bounds().sample_uniform(&mut self.rng))
                .collect();
        }
        let gp = match self.surrogate.surrogate(data) {
            Ok(gp) => gp.clone(),
            Err(_) => {
                self.fallbacks += 1;
                return (0..batch_size)
                    .map(|_| self.surrogate.bounds().sample_uniform(&mut self.rng))
                    .collect();
            }
        };
        if self.history.len() < batch_size {
            self.history.resize_with(batch_size, VecDeque::new);
        }
        let weights = WeightSchedule::UniformGrid.batch(batch_size, &mut self.rng);
        let mut batch = Vec::with_capacity(batch_size);
        for (i, w) in weights.into_iter().enumerate() {
            let hist: Vec<Vec<f64>> = if self.high_coverage {
                self.history[i].iter().cloned().collect()
            } else {
                Vec::new()
            };
            let hc_d = self.hc_distance;
            let gp_ref = &gp;
            let u = self.maximizer.maximize(&mut self.rng, |p| {
                acquisition::weighted(gp_ref, p, w) - hc_penalty(&hist, hc_d, p)
            });
            if self.high_coverage {
                let h = &mut self.history[i];
                if h.len() == HC_HISTORY {
                    h.pop_front();
                }
                h.push_back(u.clone());
            }
            batch.push(self.surrogate.from_unit(&u));
        }
        batch
    }
}

/// The EasyBO-S / EasyBO-SP synchronous batch policy (§IV ablations).
///
/// Every batch member draws its own randomized weight `w = κ/(κ+1)`,
/// `κ ~ U[0, λ]` (Eq. 8). With `penalize = true` (EasyBO-SP) batch members
/// are selected sequentially, each seeing the previously selected members
/// as hallucinated pseudo-points in `σ̂` (Eq. 9); without it (EasyBO-S) all
/// members maximize over the same posterior.
pub struct EasyBoSyncPolicy {
    surrogate: SurrogateManager,
    maximizer: AcqMaximizer,
    rng: StdRng,
    penalize: bool,
    lambda: f64,
    fallbacks: usize,
}

impl EasyBoSyncPolicy {
    /// Creates an EasyBO-S (`penalize = false`) or EasyBO-SP
    /// (`penalize = true`) policy with the paper's λ = 6.
    pub fn new(bounds: Bounds, penalize: bool, seed: u64) -> Self {
        let dim = bounds.dim();
        Self::with_configs(
            bounds,
            penalize,
            crate::weight::DEFAULT_LAMBDA,
            seed,
            SurrogateConfig::default(),
            AcqOptConfig::for_dim(dim),
        )
    }

    /// Full-configuration constructor.
    pub fn with_configs(
        bounds: Bounds,
        penalize: bool,
        lambda: f64,
        seed: u64,
        surrogate: SurrogateConfig,
        acq_opt: AcqOptConfig,
    ) -> Self {
        let dim = bounds.dim();
        EasyBoSyncPolicy {
            surrogate: SurrogateManager::new(bounds, SurrogateConfig { seed, ..surrogate }),
            maximizer: AcqMaximizer::new(dim, acq_opt),
            rng: StdRng::seed_from_u64(seed ^ 0xea5b_0051),
            penalize,
            lambda,
            fallbacks: 0,
        }
    }

    /// Surrogate-fit fallback count (should stay 0).
    pub fn fallbacks(&self) -> usize {
        self.fallbacks
    }
}

impl SyncBatchPolicy for EasyBoSyncPolicy {
    fn select_batch(&mut self, data: &Dataset, batch_size: usize) -> Vec<Vec<f64>> {
        if data.is_empty() {
            return (0..batch_size)
                .map(|_| self.surrogate.bounds().sample_uniform(&mut self.rng))
                .collect();
        }
        if self.surrogate.surrogate(data).is_err() {
            self.fallbacks += 1;
            return (0..batch_size)
                .map(|_| self.surrogate.bounds().sample_uniform(&mut self.rng))
                .collect();
        }
        let units: Vec<Vec<f64>> = if self.surrogate.incremental_enabled() {
            // Hot path: sequential hallucination runs on the cached factor
            // stack — one rank-1 push per batch member, all popped at the
            // end. Bit-identical decisions to the legacy clone-and-augment
            // loop below.
            let inc = self
                .surrogate
                .incremental(data)
                .expect("surrogate fitted above");
            let mut units = Vec::with_capacity(batch_size);
            for _ in 0..batch_size {
                let w = crate::weight::sample_kappa_weight(self.lambda, &mut self.rng);
                let u = if self.penalize {
                    self.maximizer
                        .maximize_batch(&mut self.rng, &PenalizedAcqInc { inc: &*inc, w })
                } else {
                    self.maximizer
                        .maximize_batch(&mut self.rng, &WeightedAcq { gp: inc.gp(), w })
                };
                if self.penalize {
                    // Hallucinate the new member so later members avoid it;
                    // a degenerate (duplicated) push is skipped, matching
                    // the legacy loop's `if let Ok` behavior.
                    let _ = inc.push_pseudo_mean(u.clone());
                }
                units.push(u);
            }
            inc.pop_all_pseudo();
            units
        } else {
            let gp = self
                .surrogate
                .surrogate(data)
                .expect("surrogate fitted above")
                .clone();
            let mut units = Vec::with_capacity(batch_size);
            let mut augmented = gp.clone();
            for _ in 0..batch_size {
                let w = crate::weight::sample_kappa_weight(self.lambda, &mut self.rng);
                let u = if self.penalize {
                    self.maximizer.maximize_batch(
                        &mut self.rng,
                        &PenalizedAcq {
                            base: &gp,
                            augmented: &augmented,
                            w,
                        },
                    )
                } else {
                    self.maximizer
                        .maximize_batch(&mut self.rng, &WeightedAcq { gp: &gp, w })
                };
                if self.penalize {
                    // Hallucinate the new member so later members avoid it.
                    if let Ok(next) = augmented.augment(std::slice::from_ref(&u)) {
                        augmented = next;
                    }
                }
                units.push(u);
            }
            units
        };
        units
            .into_iter()
            .map(|u| self.surrogate.from_unit(&u))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use easybo_exec::BlackBox as _;
    use easybo_exec::{CostedFunction, SimTimeModel, VirtualExecutor};
    use easybo_opt::sampling;

    fn bb_2d() -> CostedFunction<impl Fn(&[f64]) -> f64 + Send + Sync> {
        let bounds = Bounds::new(vec![(-2.0, 2.0), (-2.0, 2.0)]).unwrap();
        let time = SimTimeModel::new(&bounds, 10.0, 0.2, 0);
        CostedFunction::new("peak", bounds, time, |x: &[f64]| {
            (-((x[0] - 0.5).powi(2) + (x[1] + 0.5).powi(2))).exp()
        })
    }

    fn init(bounds: &Bounds, n: usize, seed: u64) -> Vec<Vec<f64>> {
        let mut rng = StdRng::seed_from_u64(seed);
        sampling::latin_hypercube(bounds, n, &mut rng)
    }

    #[test]
    fn pbo_reaches_peak() {
        let bb = bb_2d();
        let bounds = bb.bounds().clone();
        let mut policy = PboPolicy::new(bounds.clone(), false, 1);
        let r = VirtualExecutor::new(5).run_sync(&bb, &init(&bounds, 10, 1), 45, &mut policy);
        assert!(r.best_value() > 0.9, "pBO best {}", r.best_value());
        assert_eq!(policy.fallbacks(), 0);
    }

    #[test]
    fn phcbo_reaches_peak_with_diversity() {
        let bb = bb_2d();
        let bounds = bb.bounds().clone();
        let mut policy = PboPolicy::new(bounds.clone(), true, 2);
        let r = VirtualExecutor::new(5).run_sync(&bb, &init(&bounds, 10, 2), 45, &mut policy);
        assert!(r.best_value() > 0.85, "pHCBO best {}", r.best_value());
    }

    #[test]
    fn easybo_sp_reaches_peak() {
        let bb = bb_2d();
        let bounds = bb.bounds().clone();
        let mut policy = EasyBoSyncPolicy::new(bounds.clone(), true, 3);
        let r = VirtualExecutor::new(5).run_sync(&bb, &init(&bounds, 10, 3), 45, &mut policy);
        assert!(r.best_value() > 0.9, "EasyBO-SP best {}", r.best_value());
        assert_eq!(policy.fallbacks(), 0);
    }

    #[test]
    fn easybo_s_reaches_peak() {
        let bb = bb_2d();
        let bounds = bb.bounds().clone();
        let mut policy = EasyBoSyncPolicy::new(bounds.clone(), false, 4);
        let r = VirtualExecutor::new(5).run_sync(&bb, &init(&bounds, 10, 4), 45, &mut policy);
        assert!(r.best_value() > 0.85, "EasyBO-S best {}", r.best_value());
    }

    #[test]
    fn penalized_batches_are_more_diverse() {
        // Measure the mean pairwise distance of selected batches when the
        // training data covers only the left strip of the domain: the
        // posterior σ is large (and varied) on the unexplored right side, so
        // high-weight members chase it — all to the same argmax without
        // penalization, spread across it with σ̂-penalization.
        let bounds = Bounds::new(vec![(0.0, 1.0), (0.0, 1.0)]).unwrap();
        let strip = Bounds::new(vec![(0.0, 0.45), (0.0, 1.0)]).unwrap();
        let mut data = Dataset::new();
        let mut rng = StdRng::seed_from_u64(7);
        for p in sampling::latin_hypercube(&strip, 10, &mut rng) {
            let y = -(p[0] - 0.5f64).powi(2) - (p[1] - 0.5f64).powi(2);
            data.push(p, y);
        }
        let spread = |batch: &[Vec<f64>]| {
            let mut total = 0.0;
            let mut pairs = 0;
            for i in 0..batch.len() {
                for j in (i + 1)..batch.len() {
                    let d: f64 = batch[i]
                        .iter()
                        .zip(&batch[j])
                        .map(|(a, b)| (a - b) * (a - b))
                        .sum::<f64>()
                        .sqrt();
                    total += d;
                    pairs += 1;
                }
            }
            total / pairs as f64
        };
        // A huge λ drives every weight to w ≈ 1 (pure exploration), so all
        // plain members chase the same σ argmax while penalization must
        // spread them; average a few batches to smooth maximizer noise.
        let policy = |penalize: bool, seed: u64| {
            EasyBoSyncPolicy::with_configs(
                bounds.clone(),
                penalize,
                1e6,
                seed,
                SurrogateConfig::default(),
                AcqOptConfig::for_dim(2),
            )
        };
        let trials = 8;
        let mut pen_total = 0.0;
        let mut plain_total = 0.0;
        for t in 0..trials {
            pen_total += spread(&policy(true, 100 + t).select_batch(&data, 5));
            plain_total += spread(&policy(false, 100 + t).select_batch(&data, 5));
        }
        assert!(
            pen_total > plain_total,
            "penalized spread {pen_total} <= plain spread {plain_total}"
        );
    }

    #[test]
    fn hc_penalty_explodes_near_history() {
        let hist = vec![vec![0.5, 0.5]];
        let d = 0.1 * 2f64.sqrt();
        let near = hc_penalty(&hist, d, &[0.5001, 0.5]);
        let far = hc_penalty(&hist, d, &[0.9, 0.1]);
        assert!(near > 1e10, "near penalty should explode: {near}");
        assert!(far < 2.0, "far penalty should be mild: {far}");
        assert_eq!(hc_penalty(&[], d, &[0.5, 0.5]), 0.0);
    }

    #[test]
    fn batch_points_stay_in_bounds() {
        let bb = bb_2d();
        let bounds = bb.bounds().clone();
        let mut policy = EasyBoSyncPolicy::new(bounds.clone(), true, 5);
        let mut data = Dataset::new();
        for p in init(&bounds, 8, 5) {
            let y = p[0] + p[1];
            data.push(p, y);
        }
        for x in policy.select_batch(&data, 7) {
            assert!(bounds.contains(&x), "{x:?}");
        }
    }
}
