//! Pessimistic asynchronous sampling (Volk et al. 2024, *"Pessimistic
//! asynchronous sampling in high-cost Bayesian optimization"*).
//!
//! Like EasyBO, the policy hallucinates the in-flight ("busy") query
//! points before choosing the next one — but instead of the GP-mean lie
//! (Eq. 9 of the EasyBO paper) it lies **pessimistically**: every busy
//! point is assumed to come back with the *worst observed value so far*.
//! Under maximization that is the constant-liar-min scheme. The
//! pessimistic lie drags the posterior mean down around busy points, so
//! the acquisition actively avoids re-querying near in-flight work even
//! when the exploration weight is small.
//!
//! Volk et al. pair the pessimistic hallucination with a fixed UCB-style
//! acquisition rather than EasyBO's randomized weight; here the weight is
//! the deterministic `w = κ/(1+κ)` with κ configurable (default 2, i.e.
//! w = 2/3 — exploration-leaning, matching the paper's preference for
//! pessimism + exploration). No RNG draw happens for the weight, so the
//! per-selection RNG stream is consumed only by the acquisition
//! maximizer.

use easybo_exec::{AsyncPolicy, BusyPoint, Dataset};
use easybo_opt::Bounds;
use easybo_telemetry::Telemetry;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::acquisition::WeightedAcq;
use crate::policies::asynchronous::maximize_traced;
use crate::policies::penalization::PenalizationMode;
use crate::policies::{AcqMaximizer, AcqOptConfig};
use crate::surrogate::{SurrogateConfig, SurrogateManager};

/// Default κ for the fixed exploration weight `w = κ/(1+κ)`.
pub const DEFAULT_PESSIMISTIC_KAPPA: f64 = 2.0;

/// Pessimistic asynchronous policy: constant-liar-min hallucination of
/// busy points with a fixed exploration weight.
///
/// # Example
///
/// ```
/// use easybo::policies::PessimisticAsyncPolicy;
/// use easybo_exec::{CostedFunction, SimTimeModel, VirtualExecutor};
/// use easybo_opt::{sampling, Bounds};
/// use rand::SeedableRng;
///
/// # fn main() -> Result<(), easybo_opt::OptError> {
/// let bounds = Bounds::new(vec![(-2.0, 2.0)])?;
/// let time = SimTimeModel::new(&bounds, 20.0, 0.3, 1);
/// let bb = CostedFunction::new("bump", bounds.clone(), time, |x: &[f64]| {
///     -(x[0] - 1.1) * (x[0] - 1.1)
/// });
/// let mut rng = rand::rngs::StdRng::seed_from_u64(2);
/// let init = sampling::latin_hypercube(&bounds, 6, &mut rng);
/// let mut policy = PessimisticAsyncPolicy::new(bounds, 7);
/// let r = VirtualExecutor::new(4).run_async(&bb, &init, 30, &mut policy);
/// assert!(r.best_value() > -0.05);
/// # Ok(())
/// # }
/// ```
pub struct PessimisticAsyncPolicy {
    surrogate: SurrogateManager,
    maximizer: AcqMaximizer,
    rng: StdRng,
    w: f64,
    fallbacks: usize,
    lies: u64,
    acq_restarts: usize,
    telemetry: Telemetry,
}

impl PessimisticAsyncPolicy {
    /// Creates the policy with the default κ = 2 (w = 2/3).
    pub fn new(bounds: Bounds, seed: u64) -> Self {
        let dim = bounds.dim();
        Self::with_configs(
            bounds,
            DEFAULT_PESSIMISTIC_KAPPA,
            seed,
            SurrogateConfig::default(),
            AcqOptConfig::for_dim(dim),
        )
    }

    /// Full-configuration constructor. `kappa` must be non-negative; the
    /// exploration weight is the fixed `w = κ/(1+κ)`.
    pub fn with_configs(
        bounds: Bounds,
        kappa: f64,
        seed: u64,
        surrogate: SurrogateConfig,
        acq_opt: AcqOptConfig,
    ) -> Self {
        let dim = bounds.dim();
        let kappa = kappa.max(0.0);
        PessimisticAsyncPolicy {
            surrogate: SurrogateManager::new(bounds, SurrogateConfig { seed, ..surrogate }),
            maximizer: AcqMaximizer::new(dim, acq_opt),
            rng: StdRng::seed_from_u64(seed ^ 0x9e55_1715),
            w: kappa / (1.0 + kappa),
            fallbacks: 0,
            lies: 0,
            acq_restarts: acq_opt.starts,
            telemetry: Telemetry::disabled(),
        }
    }

    /// Attaches a telemetry handle (acquisition + pseudo-point events).
    pub fn set_telemetry(&mut self, telemetry: Telemetry) -> &mut Self {
        self.surrogate.set_telemetry(telemetry.clone());
        self.telemetry = telemetry;
        self
    }

    /// The fixed exploration weight `w = κ/(1+κ)`.
    pub fn weight(&self) -> f64 {
        self.w
    }

    /// Surrogate-fit fallback count (should stay 0).
    pub fn fallbacks(&self) -> usize {
        self.fallbacks
    }

    /// Total number of pessimistic lies hallucinated so far (one per busy
    /// point per selection).
    pub fn lies(&self) -> u64 {
        self.lies
    }
}

impl AsyncPolicy for PessimisticAsyncPolicy {
    fn select_next(&mut self, data: &Dataset, busy: &[BusyPoint]) -> Vec<f64> {
        if data.is_empty() {
            // More workers than initial points: nothing observed yet.
            return self.surrogate.bounds().sample_uniform(&mut self.rng);
        }
        if self.surrogate.surrogate(data).is_err() {
            self.fallbacks += 1;
            return self.surrogate.bounds().sample_uniform(&mut self.rng);
        }
        let busy_units: Vec<Vec<f64>> = busy
            .iter()
            .map(|bp| self.surrogate.to_unit(&bp.x))
            .collect();
        let (y_lo, y_hi) = data
            .ys()
            .iter()
            .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &y| {
                (lo.min(y), hi.max(y))
            });
        let w = self.w;
        let mode = PenalizationMode::ConstantLiarMin;
        let u = if self.surrogate.incremental_enabled() {
            let inc = self
                .surrogate
                .incremental(data)
                .expect("surrogate fitted above");
            if busy_units.is_empty() {
                maximize_traced(
                    &self.maximizer,
                    &mut self.rng,
                    &self.telemetry,
                    self.acq_restarts,
                    &WeightedAcq { gp: inc.gp(), w },
                )
            } else {
                match mode.push_traced(inc, &busy_units, y_lo, y_hi, &self.telemetry) {
                    Ok(()) => {
                        self.lies += busy_units.len() as u64;
                        // The pessimistic lie deliberately biases the mean
                        // near busy points, so both moments come from the
                        // augmented model.
                        let u = maximize_traced(
                            &self.maximizer,
                            &mut self.rng,
                            &self.telemetry,
                            self.acq_restarts,
                            &WeightedAcq { gp: inc.gp(), w },
                        );
                        inc.pop_all_pseudo();
                        u
                    }
                    Err(_) => maximize_traced(
                        &self.maximizer,
                        &mut self.rng,
                        &self.telemetry,
                        self.acq_restarts,
                        &WeightedAcq { gp: inc.gp(), w },
                    ),
                }
            }
        } else {
            let gp = self
                .surrogate
                .surrogate(data)
                .expect("surrogate fitted above")
                .clone();
            if busy_units.is_empty() {
                maximize_traced(
                    &self.maximizer,
                    &mut self.rng,
                    &self.telemetry,
                    self.acq_restarts,
                    &WeightedAcq { gp: &gp, w },
                )
            } else {
                match mode.augment_traced(&gp, &busy_units, y_lo, y_hi, &self.telemetry) {
                    Ok(aug) => {
                        self.lies += busy_units.len() as u64;
                        maximize_traced(
                            &self.maximizer,
                            &mut self.rng,
                            &self.telemetry,
                            self.acq_restarts,
                            &WeightedAcq { gp: &aug, w },
                        )
                    }
                    Err(_) => maximize_traced(
                        &self.maximizer,
                        &mut self.rng,
                        &self.telemetry,
                        self.acq_restarts,
                        &WeightedAcq { gp: &gp, w },
                    ),
                }
            }
        };
        self.surrogate.from_unit(&u)
    }

    fn snapshot_state(&self) -> Option<Vec<u8>> {
        Some(crate::persistence::encode_pessimistic_state(
            self.rng.state(),
            self.fallbacks,
            self.lies,
            &self.surrogate.state(),
        ))
    }

    fn restore_state(&mut self, state: &[u8]) -> Result<(), String> {
        let blob =
            crate::persistence::decode_pessimistic_state(state).map_err(|e| e.to_string())?;
        self.surrogate
            .restore(blob.core.surrogate)
            .map_err(|e| e.to_string())?;
        self.rng = StdRng::from_state(blob.core.rng);
        self.fallbacks = blob.core.fallbacks;
        self.lies = blob.lies;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use easybo_exec::BlackBox as _;
    use easybo_exec::{CostedFunction, SimTimeModel, VirtualExecutor};
    use easybo_opt::sampling;
    use rand::SeedableRng;

    fn bb_2d() -> CostedFunction<impl Fn(&[f64]) -> f64 + Send + Sync> {
        let bounds = Bounds::new(vec![(-2.0, 2.0), (-2.0, 2.0)]).unwrap();
        let time = SimTimeModel::new(&bounds, 10.0, 0.3, 0);
        CostedFunction::new("peak", bounds, time, |x: &[f64]| {
            (-((x[0] - 0.5).powi(2) + (x[1] + 0.5).powi(2))).exp()
        })
    }

    fn init(bounds: &Bounds, n: usize, seed: u64) -> Vec<Vec<f64>> {
        let mut rng = StdRng::seed_from_u64(seed);
        sampling::latin_hypercube(bounds, n, &mut rng)
    }

    #[test]
    fn pessimistic_reaches_peak() {
        let bb = bb_2d();
        let bounds = bb.bounds().clone();
        let mut policy = PessimisticAsyncPolicy::new(bounds.clone(), 1);
        let r = VirtualExecutor::new(5).run_async(&bb, &init(&bounds, 10, 1), 45, &mut policy);
        assert!(r.best_value() > 0.85, "pessimistic best {}", r.best_value());
        assert_eq!(policy.fallbacks(), 0);
        assert!(policy.lies() > 0, "parallel run must hallucinate lies");
    }

    #[test]
    fn pessimism_pushes_queries_away_from_busy_points() {
        // Sparse data with an unexplored gap centered at the busy point:
        // the pessimistic lie must repel the next query from it.
        let bounds = Bounds::new(vec![(0.0, 1.0)]).unwrap();
        let mut data = Dataset::new();
        for x in [0.0, 0.05, 0.1, 0.9, 0.95, 1.0] {
            data.push(vec![x], -(x - 0.5f64).powi(2));
        }
        let busy = vec![BusyPoint {
            x: vec![0.5],
            task: 0,
            worker: 0,
            finish_time: 100.0,
        }];
        let mut with_busy = 0.0;
        let mut without = 0.0;
        let trials = 10;
        for t in 0..trials {
            let mut a = PessimisticAsyncPolicy::new(bounds.clone(), 70 + t);
            let mut b = PessimisticAsyncPolicy::new(bounds.clone(), 70 + t);
            with_busy += (a.select_next(&data, &busy)[0] - 0.5).abs();
            without += (b.select_next(&data, &[])[0] - 0.5).abs();
        }
        assert!(
            with_busy > without,
            "pessimistic mean distance {with_busy} <= unpenalized {without}"
        );
    }

    #[test]
    fn snapshot_restore_continues_decision_stream_bitwise() {
        let bounds = Bounds::new(vec![(0.0, 1.0)]).unwrap();
        let mut data = Dataset::new();
        for i in 0..9 {
            data.push(vec![i as f64 / 8.0], (i as f64 * 0.9).sin());
        }
        let mut policy = PessimisticAsyncPolicy::new(bounds.clone(), 11);
        let _ = policy.select_next(&data, &[]);
        let blob = policy.snapshot_state().expect("policy supports capture");

        let mut restored = PessimisticAsyncPolicy::new(bounds, 999); // wrong seed on purpose
        restored.restore_state(&blob).unwrap();
        assert_eq!(restored.lies(), policy.lies());

        data.push(vec![0.55], 0.21);
        let busy = vec![BusyPoint {
            x: vec![0.3],
            task: 9,
            worker: 1,
            finish_time: 50.0,
        }];
        for _ in 0..3 {
            let a = policy.select_next(&data, &busy);
            let b = restored.select_next(&data, &busy);
            assert_eq!(a.len(), b.len());
            for (va, vb) in a.iter().zip(&b) {
                assert_eq!(va.to_bits(), vb.to_bits());
            }
        }
    }

    #[test]
    fn restore_rejects_garbage_and_foreign_blobs() {
        let bounds = Bounds::new(vec![(0.0, 1.0)]).unwrap();
        let mut policy = PessimisticAsyncPolicy::new(bounds.clone(), 0);
        assert!(policy.restore_state(&[1, 2, 3]).is_err());
        let mut eps = crate::policies::EpsGreedyPolicy::new(bounds, 0);
        let mut data = Dataset::new();
        for i in 0..6 {
            data.push(vec![i as f64 / 5.0], (i as f64).cos());
        }
        let _ = eps.select_next(&data, &[]);
        let foreign = eps.snapshot_state().unwrap();
        let err = policy.restore_state(&foreign).unwrap_err();
        assert!(err.contains("pessimistic"), "{err}");
    }

    #[test]
    fn selections_stay_in_bounds() {
        let bb = bb_2d();
        let bounds = bb.bounds().clone();
        let mut policy = PessimisticAsyncPolicy::new(bounds.clone(), 6);
        let r = VirtualExecutor::new(3).run_async(&bb, &init(&bounds, 8, 6), 25, &mut policy);
        for x in r.data.xs() {
            assert!(bounds.contains(x), "{x:?}");
        }
    }
}
