//! Batch BO baselines beyond the paper's comparison set: BUCB (Desautels,
//! Krause & Burdick, JMLR 2014) and Local Penalization (González et al.,
//! AISTATS 2016). Both are referenced in §II-C as prior synchronous batch
//! strategies; we implement them as extensions for ablation studies.

use easybo_exec::{Dataset, SyncBatchPolicy};
use easybo_opt::Bounds;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::acquisition;
use crate::policies::{AcqMaximizer, AcqOptConfig};
use crate::surrogate::{SurrogateConfig, SurrogateManager};

/// Batch UCB: batch members are selected sequentially, each maximizing
/// `μ(x) + κ·σ̂(x)` where `σ̂` comes from the GP augmented with the
/// already-selected members as hallucinated observations — the origin of
/// the hallucination trick EasyBO's penalization borrows (§III-C cites
/// "the same penalization strategy as \[32\]").
pub struct BucbPolicy {
    surrogate: SurrogateManager,
    maximizer: AcqMaximizer,
    rng: StdRng,
    kappa: f64,
    fallbacks: usize,
}

impl BucbPolicy {
    /// Creates a BUCB policy with exploration multiplier `kappa`
    /// (2.0 is a standard choice).
    pub fn new(bounds: Bounds, kappa: f64, seed: u64) -> Self {
        let dim = bounds.dim();
        Self::with_configs(
            bounds,
            kappa,
            seed,
            SurrogateConfig::default(),
            AcqOptConfig::for_dim(dim),
        )
    }

    /// Full-configuration constructor.
    pub fn with_configs(
        bounds: Bounds,
        kappa: f64,
        seed: u64,
        surrogate: SurrogateConfig,
        acq_opt: AcqOptConfig,
    ) -> Self {
        let dim = bounds.dim();
        BucbPolicy {
            surrogate: SurrogateManager::new(bounds, SurrogateConfig { seed, ..surrogate }),
            maximizer: AcqMaximizer::new(dim, acq_opt),
            rng: StdRng::seed_from_u64(seed ^ 0xbcbc_0001),
            kappa,
            fallbacks: 0,
        }
    }

    /// Surrogate-fit fallback count (should stay 0).
    pub fn fallbacks(&self) -> usize {
        self.fallbacks
    }
}

impl SyncBatchPolicy for BucbPolicy {
    fn select_batch(&mut self, data: &Dataset, batch_size: usize) -> Vec<Vec<f64>> {
        if data.is_empty() {
            return (0..batch_size)
                .map(|_| self.surrogate.bounds().sample_uniform(&mut self.rng))
                .collect();
        }
        let gp = match self.surrogate.surrogate(data) {
            Ok(gp) => gp.clone(),
            Err(_) => {
                self.fallbacks += 1;
                return (0..batch_size)
                    .map(|_| self.surrogate.bounds().sample_uniform(&mut self.rng))
                    .collect();
            }
        };
        let mut batch = Vec::with_capacity(batch_size);
        let mut augmented = gp.clone();
        for _ in 0..batch_size {
            let kappa = self.kappa;
            let (base, aug) = (&gp, &augmented);
            let u = self.maximizer.maximize(&mut self.rng, |p| {
                let (mu, _) = base.predict_standardized(p);
                let (_, var_hat) = aug.predict_standardized(p);
                mu + kappa * var_hat.max(0.0).sqrt()
            });
            if let Ok(next) = augmented.augment(std::slice::from_ref(&u)) {
                augmented = next;
            }
            batch.push(self.surrogate.from_unit(&u));
        }
        batch
    }
}

/// Local Penalization: batch members are selected sequentially; each
/// maximizes the base acquisition (EI) multiplied by penalizer factors
/// `ψ(x; x_j) = Φ(z_j)` around the already-selected members, where
/// `z_j = (L·‖x − x_j‖ − M + μ(x_j)) / (√2·σ(x_j))` and `L` is a Lipschitz
/// estimate from the observed data.
pub struct LocalPenalizationPolicy {
    surrogate: SurrogateManager,
    maximizer: AcqMaximizer,
    rng: StdRng,
    fallbacks: usize,
}

impl LocalPenalizationPolicy {
    /// Creates an LP policy.
    pub fn new(bounds: Bounds, seed: u64) -> Self {
        let dim = bounds.dim();
        Self::with_configs(
            bounds,
            seed,
            SurrogateConfig::default(),
            AcqOptConfig::for_dim(dim),
        )
    }

    /// Full-configuration constructor.
    pub fn with_configs(
        bounds: Bounds,
        seed: u64,
        surrogate: SurrogateConfig,
        acq_opt: AcqOptConfig,
    ) -> Self {
        let dim = bounds.dim();
        LocalPenalizationPolicy {
            surrogate: SurrogateManager::new(bounds, SurrogateConfig { seed, ..surrogate }),
            maximizer: AcqMaximizer::new(dim, acq_opt),
            rng: StdRng::seed_from_u64(seed ^ 0x1b1b_0002),
            fallbacks: 0,
        }
    }

    /// Surrogate-fit fallback count (should stay 0).
    pub fn fallbacks(&self) -> usize {
        self.fallbacks
    }

    /// Lipschitz constant estimate: the largest observed finite-difference
    /// slope between data points, in (unit-cube, standardized-y) space.
    fn lipschitz_estimate(units: &[Vec<f64>], zs: &[f64]) -> f64 {
        let mut l: f64 = 0.0;
        for i in 0..units.len() {
            for j in (i + 1)..units.len() {
                let dx: f64 = units[i]
                    .iter()
                    .zip(&units[j])
                    .map(|(a, b)| (a - b) * (a - b))
                    .sum::<f64>()
                    .sqrt();
                if dx > 1e-9 {
                    l = l.max((zs[i] - zs[j]).abs() / dx);
                }
            }
        }
        l.max(1e-3)
    }
}

impl SyncBatchPolicy for LocalPenalizationPolicy {
    fn select_batch(&mut self, data: &Dataset, batch_size: usize) -> Vec<Vec<f64>> {
        if data.is_empty() {
            return (0..batch_size)
                .map(|_| self.surrogate.bounds().sample_uniform(&mut self.rng))
                .collect();
        }
        let gp = match self.surrogate.surrogate(data) {
            Ok(gp) => gp.clone(),
            Err(_) => {
                self.fallbacks += 1;
                return (0..batch_size)
                    .map(|_| self.surrogate.bounds().sample_uniform(&mut self.rng))
                    .collect();
            }
        };
        let units: Vec<Vec<f64>> = data
            .xs()
            .iter()
            .map(|x| self.surrogate.to_unit(x))
            .collect();
        let zs: Vec<f64> = data
            .ys()
            .iter()
            .map(|&y| gp.scaler().transform(y))
            .collect();
        let lipschitz = Self::lipschitz_estimate(&units, &zs);
        let best = data.best_value();
        let best_z = gp.scaler().transform(best);

        // (location, mean_z, sigma_z) of already-selected members.
        let mut selected: Vec<(Vec<f64>, f64, f64)> = Vec::new();
        let mut batch = Vec::with_capacity(batch_size);
        for _ in 0..batch_size {
            let gp_ref = &gp;
            let sel = &selected;
            let u = self.maximizer.maximize(&mut self.rng, |p| {
                let mut acq = acquisition::expected_improvement(gp_ref, p, best)
                    .max(1e-300)
                    .ln();
                for (xj, mu_j, sigma_j) in sel {
                    let dist: f64 = xj
                        .iter()
                        .zip(p.iter())
                        .map(|(a, b)| (a - b) * (a - b))
                        .sum::<f64>()
                        .sqrt();
                    let z = (lipschitz * dist - best_z + mu_j)
                        / (std::f64::consts::SQRT_2 * sigma_j.max(1e-9));
                    acq += acquisition::normal_cdf(z).max(1e-300).ln();
                }
                acq
            });
            let (mu_z, var_z) = gp.predict_standardized(&u);
            selected.push((u.clone(), mu_z, var_z.max(0.0).sqrt()));
            batch.push(self.surrogate.from_unit(&u));
        }
        batch
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use easybo_exec::BlackBox as _;
    use easybo_exec::{CostedFunction, SimTimeModel, VirtualExecutor};
    use easybo_opt::sampling;

    fn bb_2d() -> CostedFunction<impl Fn(&[f64]) -> f64 + Send + Sync> {
        let bounds = Bounds::new(vec![(-2.0, 2.0), (-2.0, 2.0)]).unwrap();
        let time = SimTimeModel::new(&bounds, 10.0, 0.2, 0);
        CostedFunction::new("peak", bounds, time, |x: &[f64]| {
            (-((x[0] - 0.5).powi(2) + (x[1] + 0.5).powi(2))).exp()
        })
    }

    fn init(bounds: &Bounds, n: usize, seed: u64) -> Vec<Vec<f64>> {
        let mut rng = StdRng::seed_from_u64(seed);
        sampling::latin_hypercube(bounds, n, &mut rng)
    }

    #[test]
    fn bucb_reaches_peak() {
        let bb = bb_2d();
        let bounds = bb.bounds().clone();
        let mut policy = BucbPolicy::new(bounds.clone(), 2.0, 1);
        let r = VirtualExecutor::new(5).run_sync(&bb, &init(&bounds, 10, 1), 45, &mut policy);
        assert!(r.best_value() > 0.9, "BUCB best {}", r.best_value());
        assert_eq!(policy.fallbacks(), 0);
    }

    #[test]
    fn lp_reaches_peak() {
        let bb = bb_2d();
        let bounds = bb.bounds().clone();
        let mut policy = LocalPenalizationPolicy::new(bounds.clone(), 2);
        let r = VirtualExecutor::new(5).run_sync(&bb, &init(&bounds, 10, 2), 45, &mut policy);
        assert!(r.best_value() > 0.85, "LP best {}", r.best_value());
        assert_eq!(policy.fallbacks(), 0);
    }

    #[test]
    fn bucb_batch_members_are_distinct() {
        // Sparse data so posterior uncertainty is meaningful; with the
        // hallucination the batch must not collapse onto one point.
        let bounds = Bounds::new(vec![(0.0, 1.0), (0.0, 1.0)]).unwrap();
        let mut data = Dataset::new();
        let mut rng = StdRng::seed_from_u64(3);
        for p in sampling::latin_hypercube(&bounds, 5, &mut rng) {
            let y = -(p[0] - 0.5f64).powi(2) - (p[1] - 0.5f64).powi(2);
            data.push(p, y);
        }
        let mut policy = BucbPolicy::new(bounds, 3.0, 3);
        let batch = policy.select_batch(&data, 5);
        let mut min_d = f64::INFINITY;
        for i in 0..batch.len() {
            for j in (i + 1)..batch.len() {
                let d: f64 = batch[i]
                    .iter()
                    .zip(&batch[j])
                    .map(|(a, b)| (a - b) * (a - b))
                    .sum::<f64>()
                    .sqrt();
                min_d = min_d.min(d);
            }
        }
        assert!(min_d > 1e-3, "closest pair {min_d}: {batch:?}");
    }

    #[test]
    fn lipschitz_estimate_scales_with_slope() {
        let units = vec![vec![0.0], vec![1.0]];
        let flat = LocalPenalizationPolicy::lipschitz_estimate(&units, &[0.0, 0.1]);
        let steep = LocalPenalizationPolicy::lipschitz_estimate(&units, &[0.0, 5.0]);
        assert!(steep > flat);
        // Coincident points do not blow up the estimate.
        let dup = vec![vec![0.5], vec![0.5]];
        let l = LocalPenalizationPolicy::lipschitz_estimate(&dup, &[0.0, 100.0]);
        assert_eq!(l, 1e-3);
    }
}
