//! Thompson-sampling and portfolio (GP-Hedge) sequential policies — the
//! remaining acquisition families the paper's §II-B surveys (Thompson
//! sampling \[30\] and the acquisition portfolio of Hoffman et al. \[31\]).

use easybo_exec::{AsyncPolicy, BusyPoint, Dataset};
use easybo_gp::Gp;
use easybo_linalg::{Cholesky, Matrix, Vector};
use easybo_opt::{sampling, Bounds};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::acquisition;
use crate::policies::{AcqMaximizer, AcqOptConfig};
use crate::surrogate::{SurrogateConfig, SurrogateManager};

/// Thompson sampling: draw one function from the GP posterior over a
/// random candidate set and query its argmax.
///
/// The joint posterior over `m` candidates is `N(μ, Σ)` with
/// `Σ = K** − K*ᵀ K⁻¹ K*`; we factor `Σ = L Lᵀ` and return
/// `argmax(μ + L·z)`, `z ~ N(0, I)` — an exact finite-dimensional
/// Thompson draw.
///
/// # Example
///
/// ```
/// use easybo::policies::ThompsonSamplingPolicy;
/// use easybo_exec::{CostedFunction, SimTimeModel, VirtualExecutor};
/// use easybo_opt::{sampling, Bounds};
/// use rand::SeedableRng;
///
/// # fn main() -> Result<(), easybo_opt::OptError> {
/// let bounds = Bounds::new(vec![(0.0, 1.0)])?;
/// let time = SimTimeModel::new(&bounds, 5.0, 0.1, 0);
/// let bb = CostedFunction::new("bump", bounds.clone(), time, |x: &[f64]| {
///     -(x[0] - 0.7) * (x[0] - 0.7)
/// });
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let init = sampling::latin_hypercube(&bounds, 6, &mut rng);
/// let mut policy = ThompsonSamplingPolicy::new(bounds, 128, 3);
/// let r = VirtualExecutor::run_sequential(&bb, &init, 30, &mut policy);
/// assert!(r.best_value() > -0.02);
/// # Ok(())
/// # }
/// ```
pub struct ThompsonSamplingPolicy {
    surrogate: SurrogateManager,
    rng: StdRng,
    candidates: usize,
    fallbacks: usize,
}

impl ThompsonSamplingPolicy {
    /// Creates a TS policy drawing over `candidates` random points per
    /// selection (clamped to at least 8).
    pub fn new(bounds: Bounds, candidates: usize, seed: u64) -> Self {
        Self::with_configs(bounds, candidates, seed, SurrogateConfig::default())
    }

    /// Full-configuration constructor (TS has no acquisition maximizer, so
    /// only the surrogate settings apply).
    pub fn with_configs(
        bounds: Bounds,
        candidates: usize,
        seed: u64,
        surrogate: SurrogateConfig,
    ) -> Self {
        ThompsonSamplingPolicy {
            surrogate: SurrogateManager::new(bounds, SurrogateConfig { seed, ..surrogate }),
            rng: StdRng::seed_from_u64(seed ^ 0x7503_0001),
            candidates: candidates.max(8),
            fallbacks: 0,
        }
    }

    /// Surrogate-fit fallback count (should stay 0).
    pub fn fallbacks(&self) -> usize {
        self.fallbacks
    }

    /// One exact Thompson draw over a fresh candidate set; returns the
    /// winning point in unit coordinates.
    fn thompson_argmax(&mut self, gp: &Gp) -> Vec<f64> {
        let unit = Bounds::unit_cube(gp.dim()).expect("dim > 0");
        let cands = sampling::latin_hypercube(&unit, self.candidates, &mut self.rng);
        let m = cands.len();
        // Joint posterior over the candidate set.
        let mut mu = Vector::zeros(m);
        let mut cov = Matrix::zeros(m, m);
        for i in 0..m {
            let (mean_i, _) = gp.predict_standardized(&cands[i]);
            mu[i] = mean_i;
        }
        // Posterior covariance via the joint formula; O(m²·n + m³) — kept
        // affordable by the candidate budget.
        let cross: Vec<Vector> = cands
            .iter()
            .map(|c| gp.posterior_cross_weights(c))
            .collect();
        for i in 0..m {
            for j in 0..=i {
                let prior = gp.kernel().eval(gp.theta(), &cands[i], &cands[j]);
                let v = prior - cross[i].dot(&cross[j]);
                cov[(i, j)] = v;
                cov[(j, i)] = v;
            }
        }
        // Regularize and factor.
        cov.add_diagonal(1e-9);
        let sample = match Cholesky::new(&cov) {
            Ok(chol) => {
                let z = Vector::from_iter((0..m).map(|_| standard_normal(&mut self.rng)));
                let mut draw = mu.clone();
                // draw = mu + L z
                let l = chol.factor();
                for i in 0..m {
                    let mut acc = 0.0;
                    for k in 0..=i {
                        acc += l[(i, k)] * z[k];
                    }
                    draw[i] += acc;
                }
                draw
            }
            Err(_) => mu, // fall back to the mean if Σ is degenerate
        };
        let best = sample.argmax().unwrap_or(0);
        cands[best].clone()
    }
}

/// Box–Muller standard normal draw.
fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(1e-12..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

impl AsyncPolicy for ThompsonSamplingPolicy {
    fn select_next(&mut self, data: &Dataset, _busy: &[BusyPoint]) -> Vec<f64> {
        if data.is_empty() {
            return self.surrogate.bounds().sample_uniform(&mut self.rng);
        }
        let gp = match self.surrogate.surrogate(data) {
            Ok(gp) => gp.clone(),
            Err(_) => {
                self.fallbacks += 1;
                return self.surrogate.bounds().sample_uniform(&mut self.rng);
            }
        };
        let u = self.thompson_argmax(&gp);
        self.surrogate.from_unit(&u)
    }
}

/// GP-Hedge portfolio (Hoffman et al., UAI 2011): maintains multiplicative
/// weights over {EI, PI, UCB}; each round every expert nominates a point,
/// one is sampled by weight, and every expert is rewarded by the posterior
/// mean at *its own* nominee.
pub struct PortfolioPolicy {
    surrogate: SurrogateManager,
    maximizer: AcqMaximizer,
    rng: StdRng,
    /// Log-weights of the experts (EI, PI, UCB).
    log_weights: [f64; 3],
    /// Hedge learning rate.
    eta: f64,
    fallbacks: usize,
}

impl PortfolioPolicy {
    /// Creates a portfolio policy with Hedge learning rate `eta`
    /// (1.0 is a reasonable default for standardized rewards).
    pub fn new(bounds: Bounds, eta: f64, seed: u64) -> Self {
        let dim = bounds.dim();
        Self::with_configs(
            bounds,
            eta,
            seed,
            SurrogateConfig::default(),
            AcqOptConfig::for_dim(dim),
        )
    }

    /// Full-configuration constructor.
    pub fn with_configs(
        bounds: Bounds,
        eta: f64,
        seed: u64,
        surrogate: SurrogateConfig,
        acq_opt: AcqOptConfig,
    ) -> Self {
        let dim = bounds.dim();
        PortfolioPolicy {
            surrogate: SurrogateManager::new(bounds, SurrogateConfig { seed, ..surrogate }),
            maximizer: AcqMaximizer::new(dim, acq_opt),
            rng: StdRng::seed_from_u64(seed ^ 0x90f7_0002),
            log_weights: [0.0; 3],
            eta,
            fallbacks: 0,
        }
    }

    /// Current normalized expert weights (EI, PI, UCB).
    pub fn weights(&self) -> [f64; 3] {
        let max = self
            .log_weights
            .iter()
            .cloned()
            .fold(f64::NEG_INFINITY, f64::max);
        let exps: Vec<f64> = self.log_weights.iter().map(|w| (w - max).exp()).collect();
        let sum: f64 = exps.iter().sum();
        [exps[0] / sum, exps[1] / sum, exps[2] / sum]
    }

    /// Surrogate-fit fallback count (should stay 0).
    pub fn fallbacks(&self) -> usize {
        self.fallbacks
    }
}

impl AsyncPolicy for PortfolioPolicy {
    fn select_next(&mut self, data: &Dataset, _busy: &[BusyPoint]) -> Vec<f64> {
        if data.is_empty() {
            return self.surrogate.bounds().sample_uniform(&mut self.rng);
        }
        let gp = match self.surrogate.surrogate(data) {
            Ok(gp) => gp.clone(),
            Err(_) => {
                self.fallbacks += 1;
                return self.surrogate.bounds().sample_uniform(&mut self.rng);
            }
        };
        let best = data.best_value();
        // Every expert nominates.
        let nominees: Vec<Vec<f64>> = (0..3)
            .map(|e| {
                let gp_ref = &gp;
                self.maximizer.maximize(&mut self.rng, move |p| match e {
                    0 => acquisition::expected_improvement(gp_ref, p, best),
                    1 => acquisition::probability_of_improvement(gp_ref, p, best),
                    _ => acquisition::ucb(gp_ref, p, 2.0),
                })
            })
            .collect();
        // Hedge update: reward = posterior mean at the nominee.
        for (e, nominee) in nominees.iter().enumerate() {
            let (mu, _) = gp.predict_standardized(nominee);
            self.log_weights[e] += self.eta * mu;
        }
        // Sample the expert to follow.
        let w = self.weights();
        let r: f64 = self.rng.gen();
        let chosen = if r < w[0] {
            0
        } else if r < w[0] + w[1] {
            1
        } else {
            2
        };
        self.surrogate.from_unit(&nominees[chosen])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use easybo_exec::BlackBox as _;
    use easybo_exec::{CostedFunction, SimTimeModel, VirtualExecutor};

    fn bb_1d() -> CostedFunction<impl Fn(&[f64]) -> f64 + Send + Sync> {
        let bounds = Bounds::new(vec![(0.0, 1.0)]).unwrap();
        let time = SimTimeModel::new(&bounds, 5.0, 0.1, 0);
        CostedFunction::new("bump", bounds, time, |x: &[f64]| {
            -(x[0] - 0.63) * (x[0] - 0.63)
        })
    }

    fn init_points(bounds: &Bounds, n: usize, seed: u64) -> Vec<Vec<f64>> {
        let mut rng = StdRng::seed_from_u64(seed);
        sampling::latin_hypercube(bounds, n, &mut rng)
    }

    #[test]
    fn thompson_sampling_converges() {
        let bb = bb_1d();
        let bounds = bb.bounds().clone();
        let mut policy = ThompsonSamplingPolicy::new(bounds.clone(), 128, 1);
        let r = VirtualExecutor::run_sequential(&bb, &init_points(&bounds, 6, 1), 35, &mut policy);
        assert!(r.best_value() > -0.005, "TS best {}", r.best_value());
        assert_eq!(policy.fallbacks(), 0);
    }

    #[test]
    fn thompson_draws_are_diverse_early() {
        // With little data, consecutive TS selections should differ (each
        // draw is a different posterior sample).
        let bounds = Bounds::new(vec![(0.0, 1.0)]).unwrap();
        let mut data = Dataset::new();
        data.push(vec![0.2], 0.1);
        data.push(vec![0.8], 0.2);
        let mut policy = ThompsonSamplingPolicy::new(bounds, 64, 2);
        let picks: Vec<f64> = (0..6).map(|_| policy.select_next(&data, &[])[0]).collect();
        let spread = picks.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
            - picks.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(spread > 0.05, "TS collapsed: {picks:?}");
    }

    #[test]
    fn portfolio_converges_and_adapts_weights() {
        let bb = bb_1d();
        let bounds = bb.bounds().clone();
        let mut policy = PortfolioPolicy::new(bounds.clone(), 1.0, 3);
        let r = VirtualExecutor::run_sequential(&bb, &init_points(&bounds, 6, 3), 35, &mut policy);
        assert!(r.best_value() > -0.005, "portfolio best {}", r.best_value());
        let w = policy.weights();
        assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(w.iter().all(|&x| x > 0.0));
        assert_eq!(policy.fallbacks(), 0);
    }

    #[test]
    fn standard_normal_moments() {
        let mut rng = StdRng::seed_from_u64(5);
        let n = 20_000;
        let draws: Vec<f64> = (0..n).map(|_| standard_normal(&mut rng)).collect();
        let mean = draws.iter().sum::<f64>() / n as f64;
        let var = draws.iter().map(|d| (d - mean) * (d - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }
}
