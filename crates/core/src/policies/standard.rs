//! Standard-acquisition asynchronous baseline (Riegler, Odgers & Fortuin,
//! *"Standard Acquisition Is Sufficient for Asynchronous Bayesian
//! Optimization"*).
//!
//! The null hypothesis of the async-batch literature: when a worker goes
//! idle, just maximize a plain sequential acquisition (EI by default)
//! over the *completed* observations and ignore the in-flight points
//! entirely — no hallucination, no penalization, no randomized weights.
//! Riegler et al. argue that with a well-calibrated surrogate the busy
//! points rarely coincide with the acquisition maximizer anyway, so the
//! machinery the other policies add buys little. Running this baseline
//! through the same acceptance matrix is what makes the comparison in
//! Tables I–II an actual test of that claim.
//!
//! Unlike [`SequentialBoPolicy`](crate::policies::SequentialBoPolicy)
//! (which drives one worker and keeps no versioned state), this policy
//! implements the full kill/resume contract via
//! `snapshot_state`/`restore_state` so it can be checkpointed mid-run
//! like the rest of the portfolio.

use easybo_exec::{AsyncPolicy, BusyPoint, Dataset};
use easybo_opt::Bounds;
use easybo_telemetry::Telemetry;
use rand::rngs::StdRng;
use rand::SeedableRng;

use easybo_gp::Gp;

use crate::acquisition::{expected_improvement, normal_cdf, normal_pdf};
use crate::policies::asynchronous::maximize_traced;
use crate::policies::{AcqMaximizer, AcqOptConfig};
use crate::surrogate::{SurrogateConfig, SurrogateManager};

/// Standard-acquisition async baseline: plain sequential EI, busy points
/// invisible.
///
/// # Example
///
/// ```
/// use easybo::policies::StandardAsyncPolicy;
/// use easybo_exec::{CostedFunction, SimTimeModel, VirtualExecutor};
/// use easybo_opt::{sampling, Bounds};
/// use rand::SeedableRng;
///
/// # fn main() -> Result<(), easybo_opt::OptError> {
/// let bounds = Bounds::new(vec![(-2.0, 2.0)])?;
/// let time = SimTimeModel::new(&bounds, 20.0, 0.3, 1);
/// let bb = CostedFunction::new("bump", bounds.clone(), time, |x: &[f64]| {
///     -(x[0] - 1.1) * (x[0] - 1.1)
/// });
/// let mut rng = rand::rngs::StdRng::seed_from_u64(2);
/// let init = sampling::latin_hypercube(&bounds, 6, &mut rng);
/// let mut policy = StandardAsyncPolicy::new(bounds, 7);
/// let r = VirtualExecutor::new(4).run_async(&bb, &init, 30, &mut policy);
/// assert!(r.best_value() > -0.05);
/// # Ok(())
/// # }
/// ```
pub struct StandardAsyncPolicy {
    surrogate: SurrogateManager,
    maximizer: AcqMaximizer,
    rng: StdRng,
    fallbacks: usize,
    acq_restarts: usize,
    telemetry: Telemetry,
}

impl StandardAsyncPolicy {
    /// Creates the baseline with plain EI.
    pub fn new(bounds: Bounds, seed: u64) -> Self {
        let dim = bounds.dim();
        Self::with_configs(
            bounds,
            seed,
            SurrogateConfig::default(),
            AcqOptConfig::for_dim(dim),
        )
    }

    /// Full-configuration constructor.
    pub fn with_configs(
        bounds: Bounds,
        seed: u64,
        surrogate: SurrogateConfig,
        acq_opt: AcqOptConfig,
    ) -> Self {
        let dim = bounds.dim();
        StandardAsyncPolicy {
            surrogate: SurrogateManager::new(bounds, SurrogateConfig { seed, ..surrogate }),
            maximizer: AcqMaximizer::new(dim, acq_opt),
            rng: StdRng::seed_from_u64(seed ^ 0x57d0_ba5e),
            fallbacks: 0,
            acq_restarts: acq_opt.starts,
            telemetry: Telemetry::disabled(),
        }
    }

    /// Attaches a telemetry handle (acquisition + GP-refit events).
    pub fn set_telemetry(&mut self, telemetry: Telemetry) -> &mut Self {
        self.surrogate.set_telemetry(telemetry.clone());
        self.telemetry = telemetry;
        self
    }

    /// Surrogate-fit fallback count (should stay 0).
    pub fn fallbacks(&self) -> usize {
        self.fallbacks
    }
}

/// [`expected_improvement`] packaged as a [`easybo_opt::BatchObjective`]:
/// probe batches score through the GP's batched standardized posterior,
/// bit-identical per point to the scalar call (busy points never enter).
struct EiAcq<'a> {
    gp: &'a Gp,
    /// Incumbent in raw units (the scalar EI transforms it internally).
    best: f64,
}

impl easybo_opt::BatchObjective for EiAcq<'_> {
    fn eval(&self, x: &[f64]) -> f64 {
        expected_improvement(self.gp, x, self.best)
    }

    fn eval_batch(&self, xs: &[Vec<f64>]) -> Vec<f64> {
        let best_z = self.gp.scaler().transform(self.best);
        self.gp
            .predict_standardized_batch(xs)
            .into_iter()
            .map(|(mu_z, var_z)| {
                let sigma = var_z.max(0.0).sqrt();
                if sigma < 1e-12 {
                    (mu_z - best_z).max(0.0)
                } else {
                    let z = (mu_z - best_z) / sigma;
                    sigma * (z * normal_cdf(z) + normal_pdf(z))
                }
            })
            .collect()
    }
}

impl AsyncPolicy for StandardAsyncPolicy {
    fn select_next(&mut self, data: &Dataset, _busy: &[BusyPoint]) -> Vec<f64> {
        if data.is_empty() {
            // More workers than initial points: nothing observed yet.
            return self.surrogate.bounds().sample_uniform(&mut self.rng);
        }
        if self.surrogate.surrogate(data).is_err() {
            self.fallbacks += 1;
            return self.surrogate.bounds().sample_uniform(&mut self.rng);
        }
        // Incumbent in raw units; the EI transforms it through the GP's
        // target scaler internally.
        let best = data.best_value();
        let u = if self.surrogate.incremental_enabled() {
            let inc = self
                .surrogate
                .incremental(data)
                .expect("surrogate fitted above");
            maximize_traced(
                &self.maximizer,
                &mut self.rng,
                &self.telemetry,
                self.acq_restarts,
                &EiAcq { gp: inc.gp(), best },
            )
        } else {
            let gp = self
                .surrogate
                .surrogate(data)
                .expect("surrogate fitted above")
                .clone();
            maximize_traced(
                &self.maximizer,
                &mut self.rng,
                &self.telemetry,
                self.acq_restarts,
                &EiAcq { gp: &gp, best },
            )
        };
        self.surrogate.from_unit(&u)
    }

    fn snapshot_state(&self) -> Option<Vec<u8>> {
        Some(crate::persistence::encode_standard_state(
            self.rng.state(),
            self.fallbacks,
            &self.surrogate.state(),
        ))
    }

    fn restore_state(&mut self, state: &[u8]) -> Result<(), String> {
        let blob = crate::persistence::decode_standard_state(state).map_err(|e| e.to_string())?;
        self.surrogate
            .restore(blob.surrogate)
            .map_err(|e| e.to_string())?;
        self.rng = StdRng::from_state(blob.rng);
        self.fallbacks = blob.fallbacks;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use easybo_exec::BlackBox as _;
    use easybo_exec::{CostedFunction, SimTimeModel, VirtualExecutor};
    use easybo_opt::sampling;
    use rand::SeedableRng;

    fn bb_2d() -> CostedFunction<impl Fn(&[f64]) -> f64 + Send + Sync> {
        let bounds = Bounds::new(vec![(-2.0, 2.0), (-2.0, 2.0)]).unwrap();
        let time = SimTimeModel::new(&bounds, 10.0, 0.3, 0);
        CostedFunction::new("peak", bounds, time, |x: &[f64]| {
            (-((x[0] - 0.5).powi(2) + (x[1] + 0.5).powi(2))).exp()
        })
    }

    fn init(bounds: &Bounds, n: usize, seed: u64) -> Vec<Vec<f64>> {
        let mut rng = StdRng::seed_from_u64(seed);
        sampling::latin_hypercube(bounds, n, &mut rng)
    }

    #[test]
    fn standard_baseline_reaches_peak() {
        let bb = bb_2d();
        let bounds = bb.bounds().clone();
        let mut policy = StandardAsyncPolicy::new(bounds.clone(), 1);
        let r = VirtualExecutor::new(5).run_async(&bb, &init(&bounds, 10, 1), 45, &mut policy);
        assert!(r.best_value() > 0.85, "standard best {}", r.best_value());
        assert_eq!(policy.fallbacks(), 0);
    }

    #[test]
    fn busy_points_are_invisible() {
        // Identical state, with and without busy points → identical
        // selection (the defining property of the baseline).
        let bounds = Bounds::new(vec![(0.0, 1.0)]).unwrap();
        let mut data = Dataset::new();
        for i in 0..8 {
            data.push(vec![i as f64 / 7.0], (i as f64 * 0.7).sin());
        }
        let busy = vec![BusyPoint {
            x: vec![0.5],
            task: 0,
            worker: 0,
            finish_time: 100.0,
        }];
        let mut a = StandardAsyncPolicy::new(bounds.clone(), 42);
        let mut b = StandardAsyncPolicy::new(bounds, 42);
        let xa = a.select_next(&data, &busy);
        let xb = b.select_next(&data, &[]);
        for (va, vb) in xa.iter().zip(&xb) {
            assert_eq!(va.to_bits(), vb.to_bits());
        }
    }

    #[test]
    fn snapshot_restore_continues_decision_stream_bitwise() {
        let bounds = Bounds::new(vec![(0.0, 1.0)]).unwrap();
        let mut data = Dataset::new();
        for i in 0..9 {
            data.push(vec![i as f64 / 8.0], (i as f64 * 0.9).sin());
        }
        let mut policy = StandardAsyncPolicy::new(bounds.clone(), 11);
        let _ = policy.select_next(&data, &[]);
        let blob = policy.snapshot_state().expect("policy supports capture");

        let mut restored = StandardAsyncPolicy::new(bounds, 999); // wrong seed on purpose
        restored.restore_state(&blob).unwrap();

        data.push(vec![0.55], 0.21);
        for _ in 0..3 {
            let a = policy.select_next(&data, &[]);
            let b = restored.select_next(&data, &[]);
            assert_eq!(a.len(), b.len());
            for (va, vb) in a.iter().zip(&b) {
                assert_eq!(va.to_bits(), vb.to_bits());
            }
        }
    }

    #[test]
    fn restore_rejects_garbage_and_foreign_blobs() {
        let bounds = Bounds::new(vec![(0.0, 1.0)]).unwrap();
        let mut policy = StandardAsyncPolicy::new(bounds.clone(), 0);
        assert!(policy.restore_state(&[1, 2, 3]).is_err());
        let mut pess = crate::policies::PessimisticAsyncPolicy::new(bounds, 0);
        let mut data = Dataset::new();
        for i in 0..6 {
            data.push(vec![i as f64 / 5.0], (i as f64).cos());
        }
        let _ = pess.select_next(&data, &[]);
        let foreign = pess.snapshot_state().unwrap();
        let err = policy.restore_state(&foreign).unwrap_err();
        assert!(err.contains("standard-acquisition"), "{err}");
    }

    #[test]
    fn selections_stay_in_bounds() {
        let bb = bb_2d();
        let bounds = bb.bounds().clone();
        let mut policy = StandardAsyncPolicy::new(bounds.clone(), 6);
        let r = VirtualExecutor::new(3).run_async(&bb, &init(&bounds, 8, 6), 25, &mut policy);
        for x in r.data.xs() {
            assert!(bounds.contains(x), "{x:?}");
        }
    }
}
