//! The asynchronous EasyBO policy — the paper's main contribution
//! (Algorithm 1).
//!
//! Whenever a worker becomes idle, the policy:
//!
//! 1. refits/extends the surrogate with all completed observations,
//! 2. hallucinates the still-running ("busy") query points with their
//!    predictive means (`penalize = true`; Eq. 9 / §III-C),
//! 3. draws a fresh exploration weight `w = κ/(κ+1)`, `κ ~ U[0, λ]`
//!    (Eq. 8 / §III-B), and
//! 4. maximizes `α(x, w) = (1-w)·μ(x) + w·σ̂(x)` for the idle worker.
//!
//! `penalize = false` gives the EasyBO-A ablation: same asynchronous
//! scheduling and randomized weights, but the busy points are invisible,
//! so concurrent workers can pile onto the same region.

use std::sync::atomic::{AtomicU64, Ordering};

use easybo_exec::{AsyncPolicy, BusyPoint, Dataset};
use easybo_opt::{BatchObjective, Bounds};
use easybo_telemetry::{Event, Telemetry};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::acquisition::{PenalizedAcq, PenalizedAcqInc, WeightedAcq};
use crate::policies::penalization::PenalizationMode;
use crate::policies::{AcqMaximizer, AcqOptConfig};
use crate::surrogate::{SurrogateConfig, SurrogateManager};
use crate::weight::{sample_kappa_weight, DEFAULT_LAMBDA};

/// Asynchronous EasyBO policy (full EasyBO with `penalize = true`,
/// EasyBO-A ablation with `penalize = false`).
///
/// # Example
///
/// ```
/// use easybo::policies::EasyBoAsyncPolicy;
/// use easybo_exec::{CostedFunction, SimTimeModel, VirtualExecutor};
/// use easybo_opt::{sampling, Bounds};
/// use rand::SeedableRng;
///
/// # fn main() -> Result<(), easybo_opt::OptError> {
/// let bounds = Bounds::new(vec![(-2.0, 2.0)])?;
/// let time = SimTimeModel::new(&bounds, 20.0, 0.3, 1);
/// let bb = CostedFunction::new("bump", bounds.clone(), time, |x: &[f64]| {
///     -(x[0] - 1.1) * (x[0] - 1.1)
/// });
/// let mut rng = rand::rngs::StdRng::seed_from_u64(2);
/// let init = sampling::latin_hypercube(&bounds, 6, &mut rng);
/// let mut policy = EasyBoAsyncPolicy::new(bounds, true, 7);
/// let r = VirtualExecutor::new(4).run_async(&bb, &init, 30, &mut policy);
/// assert!(r.best_value() > -0.01);
/// # Ok(())
/// # }
/// ```
pub struct EasyBoAsyncPolicy {
    surrogate: SurrogateManager,
    maximizer: AcqMaximizer,
    rng: StdRng,
    penalize: bool,
    mode: PenalizationMode,
    lambda: f64,
    fallbacks: usize,
    acq_restarts: usize,
    telemetry: Telemetry,
}

impl EasyBoAsyncPolicy {
    /// Creates the asynchronous policy with the paper's λ = 6.
    pub fn new(bounds: Bounds, penalize: bool, seed: u64) -> Self {
        let dim = bounds.dim();
        Self::with_configs(
            bounds,
            penalize,
            DEFAULT_LAMBDA,
            seed,
            SurrogateConfig::default(),
            AcqOptConfig::for_dim(dim),
        )
    }

    /// Full-configuration constructor.
    pub fn with_configs(
        bounds: Bounds,
        penalize: bool,
        lambda: f64,
        seed: u64,
        surrogate: SurrogateConfig,
        acq_opt: AcqOptConfig,
    ) -> Self {
        let dim = bounds.dim();
        EasyBoAsyncPolicy {
            surrogate: SurrogateManager::new(bounds, SurrogateConfig { seed, ..surrogate }),
            maximizer: AcqMaximizer::new(dim, acq_opt),
            rng: StdRng::seed_from_u64(seed ^ 0xea5b_0a57),
            penalize,
            mode: PenalizationMode::default(),
            lambda,
            fallbacks: 0,
            acq_restarts: acq_opt.starts,
            telemetry: Telemetry::disabled(),
        }
    }

    /// Attaches a telemetry handle: each selection emits `AcqOptimized`
    /// (and `PseudoPointAdded` when penalization hallucinates busy
    /// points), and GP retrainings emit `GpRefit`. Events are stamped
    /// with the run clock the executor advances on the same handle.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) -> &mut Self {
        self.surrogate.set_telemetry(telemetry.clone());
        self.telemetry = telemetry;
        self
    }

    /// Overrides how busy points are hallucinated (default: predictive
    /// mean, the paper's scheme). See [`PenalizationMode`] for the
    /// constant-liar ablations.
    pub fn penalization_mode(&mut self, mode: PenalizationMode) -> &mut Self {
        self.mode = mode;
        self
    }

    /// Whether busy-point penalization is active.
    pub fn penalizes(&self) -> bool {
        self.penalize
    }

    /// Surrogate-fit fallback count (should stay 0).
    pub fn fallbacks(&self) -> usize {
        self.fallbacks
    }
}

impl AsyncPolicy for EasyBoAsyncPolicy {
    fn select_next(&mut self, data: &Dataset, busy: &[BusyPoint]) -> Vec<f64> {
        if data.is_empty() {
            // More workers than initial points: nothing observed yet.
            return self.surrogate.bounds().sample_uniform(&mut self.rng);
        }
        // Fit (or incrementally extend) the surrogate first. The fit comes
        // before the `w` draw in both branches so the RNG stream — and with
        // it every downstream decision — is bit-identical with the
        // incremental path on or off.
        if self.surrogate.surrogate(data).is_err() {
            self.fallbacks += 1;
            return self.surrogate.bounds().sample_uniform(&mut self.rng);
        }
        // Busy-point preprocessing happens before the incremental branch
        // takes its long-lived mutable borrow of the surrogate.
        let penalizing = self.penalize && !busy.is_empty();
        let busy_units: Vec<Vec<f64>> = if penalizing {
            // Hallucinate the busy points (Algorithm 1, lines 5-6).
            busy.iter()
                .map(|bp| self.surrogate.to_unit(&bp.x))
                .collect()
        } else {
            Vec::new()
        };
        let (y_lo, y_hi) = data
            .ys()
            .iter()
            .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &y| {
                (lo.min(y), hi.max(y))
            });
        let u = if self.surrogate.incremental_enabled() {
            let inc = self
                .surrogate
                .incremental(data)
                .expect("surrogate fitted above");
            let w = sample_kappa_weight(self.lambda, &mut self.rng);
            if penalizing {
                match self
                    .mode
                    .push_traced(inc, &busy_units, y_lo, y_hi, &self.telemetry)
                {
                    Ok(()) => {
                        // Eq. 9 (hallucinated mean): μ from the base-alpha
                        // prefix, σ̂ from the augmented factor. Constant-liar
                        // modes *deliberately* bias the mean near busy
                        // points, so they read both moments from the
                        // augmented model.
                        let u = if self.mode != PenalizationMode::HallucinateMean {
                            maximize_traced(
                                &self.maximizer,
                                &mut self.rng,
                                &self.telemetry,
                                self.acq_restarts,
                                &WeightedAcq { gp: inc.gp(), w },
                            )
                        } else {
                            maximize_traced(
                                &self.maximizer,
                                &mut self.rng,
                                &self.telemetry,
                                self.acq_restarts,
                                &PenalizedAcqInc { inc: &*inc, w },
                            )
                        };
                        // Rank-1 downdates restore the base factor exactly;
                        // the next selection starts from a clean stack.
                        inc.pop_all_pseudo();
                        u
                    }
                    Err(_) => {
                        // Numerically degenerate augmentation (duplicated
                        // busy points): fall back to the unpenalized
                        // acquisition. `push_traced` already rolled back.
                        maximize_traced(
                            &self.maximizer,
                            &mut self.rng,
                            &self.telemetry,
                            self.acq_restarts,
                            &WeightedAcq { gp: inc.gp(), w },
                        )
                    }
                }
            } else {
                maximize_traced(
                    &self.maximizer,
                    &mut self.rng,
                    &self.telemetry,
                    self.acq_restarts,
                    &WeightedAcq { gp: inc.gp(), w },
                )
            }
        } else {
            // Legacy clone-and-refactorize path (SurrogateConfig
            // `incremental: false`). Bit-identical decisions, O(n³) per
            // penalized selection instead of O(n²).
            let gp = self
                .surrogate
                .surrogate(data)
                .expect("surrogate fitted above")
                .clone();
            let w = sample_kappa_weight(self.lambda, &mut self.rng);
            if penalizing {
                match self
                    .mode
                    .augment_traced(&gp, &busy_units, y_lo, y_hi, &self.telemetry)
                {
                    Ok(aug) => {
                        if self.mode != PenalizationMode::HallucinateMean {
                            maximize_traced(
                                &self.maximizer,
                                &mut self.rng,
                                &self.telemetry,
                                self.acq_restarts,
                                &WeightedAcq { gp: &aug, w },
                            )
                        } else {
                            maximize_traced(
                                &self.maximizer,
                                &mut self.rng,
                                &self.telemetry,
                                self.acq_restarts,
                                &PenalizedAcq {
                                    base: &gp,
                                    augmented: &aug,
                                    w,
                                },
                            )
                        }
                    }
                    Err(_) => maximize_traced(
                        &self.maximizer,
                        &mut self.rng,
                        &self.telemetry,
                        self.acq_restarts,
                        &WeightedAcq { gp: &gp, w },
                    ),
                }
            } else {
                maximize_traced(
                    &self.maximizer,
                    &mut self.rng,
                    &self.telemetry,
                    self.acq_restarts,
                    &WeightedAcq { gp: &gp, w },
                )
            }
        };
        self.surrogate.from_unit(&u)
    }

    fn snapshot_state(&self) -> Option<Vec<u8>> {
        Some(crate::persistence::encode_policy_state(
            self.rng.state(),
            self.fallbacks,
            &self.surrogate.state(),
        ))
    }

    fn restore_state(&mut self, state: &[u8]) -> Result<(), String> {
        let blob = crate::persistence::decode_policy_state(state).map_err(|e| e.to_string())?;
        self.surrogate
            .restore(blob.surrogate)
            .map_err(|e| e.to_string())?;
        self.rng = StdRng::from_state(blob.rng);
        self.fallbacks = blob.fallbacks;
        Ok(())
    }
}

/// Wraps a [`BatchObjective`] with a thread-safe evaluation counter so the
/// telemetry wrapper can count acquisition evaluations even when probe
/// scoring and refinement run on worker threads.
struct CountedObjective<'a, F: ?Sized> {
    inner: &'a F,
    evals: AtomicU64,
}

impl<F: BatchObjective + ?Sized> BatchObjective for CountedObjective<'_, F> {
    fn eval(&self, x: &[f64]) -> f64 {
        self.evals.fetch_add(1, Ordering::Relaxed);
        self.inner.eval(x)
    }

    fn eval_batch(&self, xs: &[Vec<f64>]) -> Vec<f64> {
        self.evals.fetch_add(xs.len() as u64, Ordering::Relaxed);
        self.inner.eval_batch(xs)
    }
}

/// Runs one acquisition maximization, counting acquisition-function
/// evaluations and timing the search; emits an `AcqOptimized` event plus
/// the `acq_batch_size` (probes scored through the batched GP posterior)
/// and `parallel_starts` (refinement starts fanned out concurrently)
/// counters. On a disabled handle this is a direct call with no wrapper at
/// all. Shared by every async portfolio policy.
pub(crate) fn maximize_traced<F: BatchObjective>(
    maximizer: &AcqMaximizer,
    rng: &mut StdRng,
    telemetry: &Telemetry,
    restarts: usize,
    f: &F,
) -> Vec<f64> {
    if !telemetry.enabled() {
        return maximizer.maximize_batch(rng, f);
    }
    let _span = telemetry.span("acquisition");
    let counted = CountedObjective {
        inner: f,
        evals: AtomicU64::new(0),
    };
    let t0 = std::time::Instant::now();
    let u = maximizer.maximize_batch_traced(rng, &counted, telemetry);
    let duration = t0.elapsed().as_secs_f64();
    let evals = counted.evals.load(Ordering::Relaxed) as usize;
    telemetry.incr("acq_restarts", restarts as u64);
    telemetry.incr("acq_evals", evals as u64);
    telemetry.incr("acq_batch_size", maximizer.probes() as u64);
    telemetry.incr(
        "parallel_starts",
        restarts.min(maximizer.parallelism().threads()) as u64,
    );
    telemetry.observe("acq_opt_s", duration);
    telemetry.emit(Event::AcqOptimized {
        restarts,
        evals,
        duration,
    });
    u
}

#[cfg(test)]
mod tests {
    use super::*;
    use easybo_exec::BlackBox as _;
    use easybo_exec::{CostedFunction, SimTimeModel, VirtualExecutor};
    use easybo_opt::sampling;

    fn bb_2d() -> CostedFunction<impl Fn(&[f64]) -> f64 + Send + Sync> {
        let bounds = Bounds::new(vec![(-2.0, 2.0), (-2.0, 2.0)]).unwrap();
        let time = SimTimeModel::new(&bounds, 10.0, 0.3, 0);
        CostedFunction::new("peak", bounds, time, |x: &[f64]| {
            (-((x[0] - 0.5).powi(2) + (x[1] + 0.5).powi(2))).exp()
        })
    }

    fn init(bounds: &Bounds, n: usize, seed: u64) -> Vec<Vec<f64>> {
        let mut rng = StdRng::seed_from_u64(seed);
        sampling::latin_hypercube(bounds, n, &mut rng)
    }

    #[test]
    fn full_easybo_reaches_peak() {
        let bb = bb_2d();
        let bounds = bb.bounds().clone();
        let mut policy = EasyBoAsyncPolicy::new(bounds.clone(), true, 1);
        let r = VirtualExecutor::new(5).run_async(&bb, &init(&bounds, 10, 1), 45, &mut policy);
        assert!(r.best_value() > 0.9, "EasyBO best {}", r.best_value());
        assert_eq!(policy.fallbacks(), 0);
        assert!(policy.penalizes());
    }

    #[test]
    fn easybo_a_reaches_peak() {
        let bb = bb_2d();
        let bounds = bb.bounds().clone();
        let mut policy = EasyBoAsyncPolicy::new(bounds.clone(), false, 2);
        let r = VirtualExecutor::new(5).run_async(&bb, &init(&bounds, 10, 2), 45, &mut policy);
        assert!(r.best_value() > 0.85, "EasyBO-A best {}", r.best_value());
    }

    #[test]
    fn async_total_time_beats_sync_for_same_budget() {
        // Same black box, same eval budget, same batch width: the async
        // driver must finish sooner on heterogeneous costs.
        let bb = bb_2d();
        let bounds = bb.bounds().clone();
        let exec = VirtualExecutor::new(5);
        let mut async_policy = EasyBoAsyncPolicy::new(bounds.clone(), true, 3);
        let r_async = exec.run_async(&bb, &init(&bounds, 10, 3), 50, &mut async_policy);
        let mut sync_policy = crate::policies::EasyBoSyncPolicy::new(bounds.clone(), true, 3);
        let r_sync = exec.run_sync(&bb, &init(&bounds, 10, 3), 50, &mut sync_policy);
        assert!(
            r_async.total_time() < r_sync.total_time(),
            "async {} vs sync {}",
            r_async.total_time(),
            r_sync.total_time()
        );
    }

    #[test]
    fn penalization_diversifies_concurrent_queries() {
        // Sparse data with a large unexplored gap: the plain policy's
        // highest-uncertainty point sits in the gap center, right where a
        // busy worker already is. Penalization must push the next query
        // away from the busy point.
        let bounds = Bounds::new(vec![(0.0, 1.0)]).unwrap();
        let mut data = Dataset::new();
        for x in [0.0, 0.05, 0.1, 0.9, 0.95, 1.0] {
            data.push(vec![x], -(x - 0.5f64).powi(2));
        }
        let busy = vec![BusyPoint {
            x: vec![0.5],
            task: 0,
            worker: 0,
            finish_time: 100.0,
        }];
        let mut dist_pen = 0.0;
        let mut dist_plain = 0.0;
        let trials = 10;
        for t in 0..trials {
            let mut pen = EasyBoAsyncPolicy::new(bounds.clone(), true, 50 + t);
            let mut plain = EasyBoAsyncPolicy::new(bounds.clone(), false, 50 + t);
            dist_pen += (pen.select_next(&data, &busy)[0] - 0.5).abs();
            dist_plain += (plain.select_next(&data, &busy)[0] - 0.5).abs();
        }
        assert!(
            dist_pen > dist_plain,
            "penalized mean distance {dist_pen} <= plain {dist_plain}"
        );
    }

    #[test]
    fn handles_duplicate_busy_points_gracefully() {
        let bounds = Bounds::new(vec![(0.0, 1.0)]).unwrap();
        let mut data = Dataset::new();
        for i in 0..6 {
            data.push(vec![i as f64 / 5.0], (i as f64).sin());
        }
        let busy: Vec<BusyPoint> = (0..4)
            .map(|w| BusyPoint {
                x: vec![0.5],
                task: w,
                worker: w,
                finish_time: 10.0,
            })
            .collect();
        let mut policy = EasyBoAsyncPolicy::new(bounds.clone(), true, 9);
        let x = policy.select_next(&data, &busy);
        assert!(bounds.contains(&x));
    }

    #[test]
    fn snapshot_restore_continues_decision_stream_bitwise() {
        let bounds = Bounds::new(vec![(0.0, 1.0)]).unwrap();
        let mut data = Dataset::new();
        for i in 0..9 {
            data.push(vec![i as f64 / 8.0], (i as f64 * 0.9).sin());
        }
        let mut policy = EasyBoAsyncPolicy::new(bounds.clone(), true, 11);
        let _ = policy.select_next(&data, &[]); // advance RNG, fit the GP
        let blob = policy.snapshot_state().expect("policy supports capture");

        let mut restored = EasyBoAsyncPolicy::new(bounds, true, 999); // wrong seed on purpose
        restored.restore_state(&blob).unwrap();

        // Both continue with more data (exercises the incremental GP path)
        // and a busy point (exercises penalization) — selections must be
        // bit-identical.
        data.push(vec![0.55], 0.21);
        let busy = vec![BusyPoint {
            x: vec![0.3],
            task: 9,
            worker: 1,
            finish_time: 50.0,
        }];
        for _ in 0..3 {
            let a = policy.select_next(&data, &busy);
            let b = restored.select_next(&data, &busy);
            assert_eq!(a.len(), b.len());
            for (va, vb) in a.iter().zip(&b) {
                assert_eq!(va.to_bits(), vb.to_bits());
            }
        }
    }

    #[test]
    fn restore_rejects_garbage() {
        let bounds = Bounds::new(vec![(0.0, 1.0)]).unwrap();
        let mut policy = EasyBoAsyncPolicy::new(bounds, true, 0);
        assert!(policy.restore_state(&[1, 2, 3]).is_err());
    }

    #[test]
    fn selections_stay_in_bounds() {
        let bb = bb_2d();
        let bounds = bb.bounds().clone();
        let mut policy = EasyBoAsyncPolicy::new(bounds.clone(), true, 6);
        let r = VirtualExecutor::new(3).run_async(&bb, &init(&bounds, 8, 6), 25, &mut policy);
        for x in r.data.xs() {
            assert!(bounds.contains(x), "{x:?}");
        }
    }
}
