//! Sequential (one-point-at-a-time) Bayesian optimization policies: the
//! paper's EI, LCB and sequential-EasyBO baselines.

use easybo_exec::{AsyncPolicy, BusyPoint, Dataset};
use easybo_opt::Bounds;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::acquisition;
use crate::policies::{AcqMaximizer, AcqOptConfig};
use crate::surrogate::{SurrogateConfig, SurrogateManager};
use crate::weight::sample_kappa_weight;

/// Which sequential acquisition to use.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SequentialAcquisition {
    /// Expected improvement (Mockus et al.).
    Ei,
    /// Probability of improvement (Kushner).
    Pi,
    /// GP-UCB, the paper's "LCB" optimistic strategy.
    Ucb {
        /// Exploration multiplier κ.
        kappa: f64,
    },
    /// EasyBO's randomized-weight acquisition (Eq. 8) in sequential mode.
    EasyBo {
        /// κ sampling range `[0, λ]` (paper: 6.0).
        lambda: f64,
    },
}

/// Sequential BO policy: drives [`easybo_exec::VirtualExecutor::run_sequential`]
/// (or any 1-worker executor).
///
/// # Example
///
/// ```
/// use easybo::policies::{SequentialAcquisition, SequentialBoPolicy};
/// use easybo_exec::{CostedFunction, SimTimeModel, VirtualExecutor};
/// use easybo_opt::{sampling, Bounds};
/// use rand::SeedableRng;
///
/// # fn main() -> Result<(), easybo_opt::OptError> {
/// let bounds = Bounds::new(vec![(-2.0, 2.0)])?;
/// let time = SimTimeModel::new(&bounds, 10.0, 0.1, 0);
/// let bb = CostedFunction::new("parabola", bounds.clone(), time, |x: &[f64]| {
///     -(x[0] - 0.7) * (x[0] - 0.7)
/// });
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let init = sampling::latin_hypercube(&bounds, 6, &mut rng);
/// let mut policy = SequentialBoPolicy::new(bounds, SequentialAcquisition::Ei, 42);
/// let result = VirtualExecutor::run_sequential(&bb, &init, 25, &mut policy);
/// assert!(result.best_value() > -0.01);
/// # Ok(())
/// # }
/// ```
pub struct SequentialBoPolicy {
    surrogate: SurrogateManager,
    acquisition: SequentialAcquisition,
    maximizer: AcqMaximizer,
    rng: StdRng,
    fallbacks: usize,
}

impl SequentialBoPolicy {
    /// Creates a sequential policy with default surrogate settings.
    pub fn new(bounds: Bounds, acquisition: SequentialAcquisition, seed: u64) -> Self {
        let dim = bounds.dim();
        Self::with_configs(
            bounds,
            acquisition,
            seed,
            SurrogateConfig::default(),
            AcqOptConfig::for_dim(dim),
        )
    }

    /// Creates a sequential policy with explicit surrogate and acquisition-
    /// optimizer settings.
    pub fn with_configs(
        bounds: Bounds,
        acquisition: SequentialAcquisition,
        seed: u64,
        surrogate: SurrogateConfig,
        acq_opt: AcqOptConfig,
    ) -> Self {
        let dim = bounds.dim();
        let surrogate = SurrogateManager::new(bounds, SurrogateConfig { seed, ..surrogate });
        SequentialBoPolicy {
            surrogate,
            acquisition,
            maximizer: AcqMaximizer::new(dim, acq_opt),
            rng: StdRng::seed_from_u64(seed ^ 0xa5a5_1234),
            fallbacks: 0,
        }
    }

    /// How many times the policy had to fall back to random sampling
    /// because the surrogate could not be fitted (should stay 0).
    pub fn fallbacks(&self) -> usize {
        self.fallbacks
    }
}

impl AsyncPolicy for SequentialBoPolicy {
    fn select_next(&mut self, data: &Dataset, _busy: &[BusyPoint]) -> Vec<f64> {
        if data.is_empty() {
            // More workers than initial points: nothing observed yet.
            return self.surrogate.bounds().sample_uniform(&mut self.rng);
        }
        let gp = match self.surrogate.surrogate(data) {
            Ok(gp) => gp.clone(),
            Err(_) => {
                self.fallbacks += 1;
                return self.surrogate.bounds().sample_uniform(&mut self.rng);
            }
        };
        let best = data.best_value();
        let acq = self.acquisition;
        let w = match acq {
            SequentialAcquisition::EasyBo { lambda } => sample_kappa_weight(lambda, &mut self.rng),
            _ => 0.0,
        };
        let u = self.maximizer.maximize(&mut self.rng, |p| match acq {
            SequentialAcquisition::Ei => acquisition::expected_improvement(&gp, p, best),
            SequentialAcquisition::Pi => acquisition::probability_of_improvement(&gp, p, best),
            SequentialAcquisition::Ucb { kappa } => acquisition::ucb(&gp, p, kappa),
            SequentialAcquisition::EasyBo { .. } => acquisition::weighted(&gp, p, w),
        });
        self.surrogate.from_unit(&u)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use easybo_exec::{CostedFunction, SimTimeModel, VirtualExecutor};
    use easybo_opt::sampling;

    fn run(acq: SequentialAcquisition, seed: u64) -> f64 {
        let bounds = Bounds::new(vec![(-2.0, 2.0), (-2.0, 2.0)]).unwrap();
        let time = SimTimeModel::new(&bounds, 10.0, 0.1, 0);
        let bb = CostedFunction::new("peak", bounds.clone(), time, |x: &[f64]| {
            // Single smooth peak at (0.5, -0.5).
            (-((x[0] - 0.5).powi(2) + (x[1] + 0.5).powi(2))).exp()
        });
        let mut rng = StdRng::seed_from_u64(seed);
        let init = sampling::latin_hypercube(&bounds, 8, &mut rng);
        let mut policy = SequentialBoPolicy::new(bounds, acq, seed);
        let r = VirtualExecutor::run_sequential(&bb, &init, 35, &mut policy);
        assert_eq!(policy.fallbacks(), 0);
        r.best_value()
    }

    #[test]
    fn ei_converges_to_peak() {
        assert!(run(SequentialAcquisition::Ei, 3) > 0.95);
    }

    #[test]
    fn ucb_converges_to_peak() {
        assert!(run(SequentialAcquisition::Ucb { kappa: 2.0 }, 4) > 0.95);
    }

    #[test]
    fn easybo_sequential_converges_to_peak() {
        assert!(run(SequentialAcquisition::EasyBo { lambda: 6.0 }, 5) > 0.95);
    }

    #[test]
    fn pi_makes_progress() {
        // PI is greedier; just require clear improvement over random init.
        assert!(run(SequentialAcquisition::Pi, 6) > 0.8);
    }

    #[test]
    fn bo_beats_random_search_at_equal_budget() {
        let bounds = Bounds::new(vec![(-2.0, 2.0), (-2.0, 2.0)]).unwrap();
        let f = |x: &[f64]| (-((x[0] - 0.5).powi(2) + (x[1] + 0.5).powi(2))).exp();
        let mut rng = StdRng::seed_from_u64(11);
        let random_best = (0..35)
            .map(|_| f(&bounds.sample_uniform(&mut rng)))
            .fold(f64::NEG_INFINITY, f64::max);
        let bo_best = run(SequentialAcquisition::Ei, 11);
        assert!(
            bo_best >= random_best,
            "BO {bo_best} vs random {random_best}"
        );
    }
}
