//! Batch-selection policies: EasyBO and every baseline from the paper.
//!
//! Each policy implements [`easybo_exec::SyncBatchPolicy`] (barrier-
//! synchronized batches) and/or [`easybo_exec::AsyncPolicy`] (one point per
//! idle worker, with busy-point visibility):
//!
//! | Paper label | Type | Mode | Penalization |
//! |---|---|---|---|
//! | EI / LCB / EasyBO (sequential) | [`SequentialBoPolicy`] | 1 worker | – |
//! | pBO | [`PboPolicy`] (`high_coverage = false`) | sync | none |
//! | pHCBO | [`PboPolicy`] (`high_coverage = true`) | sync | Eq. 6 distance term |
//! | EasyBO-S | [`EasyBoSyncPolicy`] (`penalize = false`) | sync | none |
//! | EasyBO-SP | [`EasyBoSyncPolicy`] (`penalize = true`) | sync | hallucinated σ̂ |
//! | EasyBO-A | [`EasyBoAsyncPolicy`] (`penalize = false`) | async | none |
//! | **EasyBO** | [`EasyBoAsyncPolicy`] (`penalize = true`) | async | hallucinated σ̂ |
//! | BUCB (extension) | [`BucbPolicy`] | sync | hallucinated σ̂ |
//! | Local Penalization (extension) | [`LocalPenalizationPolicy`] | sync | Lipschitz cones |
//! | MACE (§II-C baseline) | [`MacePolicy`] | sync | Pareto-front diversity |
//! | ε-greedy (De Ath 2020) | [`EpsGreedyPolicy`] | async | ε-random interleaving |
//! | Pessimistic (Volk 2024) | [`PessimisticAsyncPolicy`] | async | constant-liar-min |
//! | Standard EI (Riegler) | [`StandardAsyncPolicy`] | async | none (busy invisible) |

mod asynchronous;
mod eps_greedy;
mod extensions;
mod mace;
mod penalization;
mod pessimistic;
mod portfolio;
mod sequential;
mod standard;
mod sync;

pub use asynchronous::EasyBoAsyncPolicy;
pub use eps_greedy::{EpsGreedyPolicy, DEFAULT_EPSILON};
pub use extensions::{BucbPolicy, LocalPenalizationPolicy};
pub use mace::MacePolicy;
pub use penalization::PenalizationMode;
pub use pessimistic::{PessimisticAsyncPolicy, DEFAULT_PESSIMISTIC_KAPPA};
pub use portfolio::{PortfolioPolicy, ThompsonSamplingPolicy};
pub use sequential::{SequentialAcquisition, SequentialBoPolicy};
pub use standard::StandardAsyncPolicy;
pub use sync::{EasyBoSyncPolicy, PboPolicy};

use easybo_opt::{BatchObjective, Bounds, MultiStartMaximizer, Parallelism};
use easybo_telemetry::Telemetry;
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};

/// Sizing of the inner acquisition maximization (random probes + local
/// Nelder–Mead refinement over the unit cube).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AcqOptConfig {
    /// Random probe count (default `max(256, 48·d)` via [`AcqOptConfig::for_dim`]).
    pub probes: usize,
    /// Local refinements of the top seeds (default 3).
    pub starts: usize,
    /// Nelder–Mead evaluations per refinement (default 120).
    pub refine_evals: usize,
    /// Worker threads for probe scoring and the refinement starts (default:
    /// available cores; 1 = the legacy sequential path). The selected point
    /// is bit-identical at any setting.
    pub parallelism: Parallelism,
}

impl Default for AcqOptConfig {
    fn default() -> Self {
        AcqOptConfig {
            probes: 384,
            starts: 3,
            refine_evals: 120,
            parallelism: Parallelism::default(),
        }
    }
}

impl AcqOptConfig {
    /// Scales probe count and refinement budget with dimensionality; the
    /// setting every built-in policy constructor uses.
    pub fn for_dim(d: usize) -> Self {
        AcqOptConfig {
            probes: 320.max(44 * d),
            starts: 3,
            refine_evals: 100.max(14 * d),
            parallelism: Parallelism::default(),
        }
    }
}

/// Shared acquisition-maximization helper: all policies optimize over the
/// unit cube the GP is trained on.
pub(crate) struct AcqMaximizer {
    unit: Bounds,
    inner: MultiStartMaximizer,
    parallelism: Parallelism,
}

impl AcqMaximizer {
    pub(crate) fn new(dim: usize, config: AcqOptConfig) -> Self {
        AcqMaximizer {
            unit: Bounds::unit_cube(dim).expect("dim > 0"),
            inner: MultiStartMaximizer::new(config.probes, config.starts, config.refine_evals),
            parallelism: config.parallelism,
        }
    }

    /// Maximizes `f` over the unit cube; returns unit coordinates.
    ///
    /// Closures go through the batched maximizer too (scored pointwise via
    /// the blanket [`BatchObjective`] impl, chunk-parallel across probes).
    pub(crate) fn maximize(&self, rng: &mut StdRng, f: impl Fn(&[f64]) -> f64 + Sync) -> Vec<f64> {
        self.maximize_batch(rng, &f)
    }

    /// Maximizes a [`BatchObjective`] over the unit cube; returns unit
    /// coordinates. Probe scoring runs through `eval_batch` (one GP batch
    /// posterior for the whole probe set) and refinement starts run on the
    /// configured worker threads.
    pub(crate) fn maximize_batch<F: BatchObjective + ?Sized>(
        &self,
        rng: &mut StdRng,
        f: &F,
    ) -> Vec<f64> {
        self.inner
            .maximize_batched(&self.unit, rng, self.parallelism, f)
            .x
    }

    /// [`AcqMaximizer::maximize_batch`] with phase spans
    /// (`batch_predict` / `nm_refine`) opened on the telemetry handle.
    pub(crate) fn maximize_batch_traced<F: BatchObjective + ?Sized>(
        &self,
        rng: &mut StdRng,
        f: &F,
        telemetry: &Telemetry,
    ) -> Vec<f64> {
        self.inner
            .maximize_batched_traced(&self.unit, rng, self.parallelism, f, telemetry)
            .x
    }

    /// Random probe count per maximization (the acquisition batch size).
    pub(crate) fn probes(&self) -> usize {
        self.inner.probes()
    }

    /// The configured worker-thread budget.
    pub(crate) fn parallelism(&self) -> Parallelism {
        self.parallelism
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn acq_opt_config_scales_with_dim() {
        let small = AcqOptConfig::for_dim(2);
        let large = AcqOptConfig::for_dim(12);
        assert!(large.probes > small.probes);
        assert_eq!(small.starts, 3);
    }

    #[test]
    fn maximizer_finds_unit_cube_peak() {
        let m = AcqMaximizer::new(2, AcqOptConfig::default());
        let mut rng = StdRng::seed_from_u64(5);
        let x = m.maximize(&mut rng, |p| -(p[0] - 0.8).powi(2) - (p[1] - 0.2).powi(2));
        assert!((x[0] - 0.8).abs() < 1e-2);
        assert!((x[1] - 0.2).abs() < 1e-2);
    }
}
