use std::error::Error;
use std::fmt;

use easybo_gp::GpError;
use easybo_opt::OptError;

/// Error type for the EasyBO optimizer.
#[derive(Debug, Clone, PartialEq)]
pub enum EasyBoError {
    /// Invalid design space or optimizer configuration.
    Opt(OptError),
    /// Gaussian-process fitting failure.
    Gp(GpError),
    /// Invalid budget: fewer total evaluations than initial points, or zero.
    BadBudget {
        /// Configured maximum evaluations.
        max_evals: usize,
        /// Configured initial design size.
        initial_points: usize,
    },
    /// The objective returned only non-finite values during initialization.
    DegenerateObjective,
}

impl fmt::Display for EasyBoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EasyBoError::Opt(e) => write!(f, "configuration error: {e}"),
            EasyBoError::Gp(e) => write!(f, "surrogate model error: {e}"),
            EasyBoError::BadBudget {
                max_evals,
                initial_points,
            } => write!(
                f,
                "evaluation budget {max_evals} must exceed the initial design size {initial_points}"
            ),
            EasyBoError::DegenerateObjective => {
                write!(
                    f,
                    "objective returned no finite values during initialization"
                )
            }
        }
    }
}

impl Error for EasyBoError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            EasyBoError::Opt(e) => Some(e),
            EasyBoError::Gp(e) => Some(e),
            _ => None,
        }
    }
}

impl From<OptError> for EasyBoError {
    fn from(e: OptError) -> Self {
        EasyBoError::Opt(e)
    }
}

impl From<GpError> for EasyBoError {
    fn from(e: GpError) -> Self {
        EasyBoError::Gp(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        use std::error::Error as _;
        let e = EasyBoError::from(OptError::EmptySpace);
        assert!(e.to_string().contains("configuration"));
        assert!(e.source().is_some());
        let b = EasyBoError::BadBudget {
            max_evals: 10,
            initial_points: 20,
        };
        assert!(b.to_string().contains("10"));
        assert!(b.source().is_none());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<EasyBoError>();
    }
}
