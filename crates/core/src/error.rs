use std::error::Error;
use std::fmt;
use std::sync::Arc;

use easybo_gp::GpError;
use easybo_opt::OptError;
use easybo_persist::PersistError;

/// Error type for the EasyBO optimizer.
#[derive(Debug, Clone)]
pub enum EasyBoError {
    /// Invalid design space or optimizer configuration.
    Opt(OptError),
    /// Gaussian-process fitting failure.
    Gp(GpError),
    /// Invalid budget: fewer total evaluations than initial points, or zero.
    BadBudget {
        /// Configured maximum evaluations.
        max_evals: usize,
        /// Configured initial design size.
        initial_points: usize,
    },
    /// The objective returned only non-finite values during initialization.
    DegenerateObjective,
    /// Snapshot save/load failure during checkpointing or resume
    /// (corrupt file, wrong format version, configuration mismatch, I/O).
    /// Wrapped in [`Arc`] because [`std::io::Error`] is not `Clone`.
    Persist(Arc<PersistError>),
}

impl PartialEq for EasyBoError {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (EasyBoError::Opt(a), EasyBoError::Opt(b)) => a == b,
            (EasyBoError::Gp(a), EasyBoError::Gp(b)) => a == b,
            (
                EasyBoError::BadBudget {
                    max_evals: a,
                    initial_points: b,
                },
                EasyBoError::BadBudget {
                    max_evals: c,
                    initial_points: d,
                },
            ) => a == c && b == d,
            (EasyBoError::DegenerateObjective, EasyBoError::DegenerateObjective) => true,
            // PersistError holds an io::Error (no PartialEq); compare by
            // rendered message, which carries the full classification.
            (EasyBoError::Persist(a), EasyBoError::Persist(b)) => a.to_string() == b.to_string(),
            _ => false,
        }
    }
}

impl fmt::Display for EasyBoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EasyBoError::Opt(e) => write!(f, "configuration error: {e}"),
            EasyBoError::Gp(e) => write!(f, "surrogate model error: {e}"),
            EasyBoError::BadBudget {
                max_evals,
                initial_points,
            } => write!(
                f,
                "evaluation budget {max_evals} must exceed the initial design size {initial_points}"
            ),
            EasyBoError::DegenerateObjective => {
                write!(
                    f,
                    "objective returned no finite values during initialization"
                )
            }
            EasyBoError::Persist(e) => write!(f, "checkpoint error: {e}"),
        }
    }
}

impl Error for EasyBoError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            EasyBoError::Opt(e) => Some(e),
            EasyBoError::Gp(e) => Some(e),
            EasyBoError::Persist(e) => Some(e.as_ref()),
            _ => None,
        }
    }
}

impl From<OptError> for EasyBoError {
    fn from(e: OptError) -> Self {
        EasyBoError::Opt(e)
    }
}

impl From<GpError> for EasyBoError {
    fn from(e: GpError) -> Self {
        EasyBoError::Gp(e)
    }
}

impl From<PersistError> for EasyBoError {
    fn from(e: PersistError) -> Self {
        EasyBoError::Persist(Arc::new(e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        use std::error::Error as _;
        let e = EasyBoError::from(OptError::EmptySpace);
        assert!(e.to_string().contains("configuration"));
        assert!(e.source().is_some());
        let b = EasyBoError::BadBudget {
            max_evals: 10,
            initial_points: 20,
        };
        assert!(b.to_string().contains("10"));
        assert!(b.source().is_none());
    }

    #[test]
    fn persist_conversion_preserves_classification() {
        use std::error::Error as _;
        let e = EasyBoError::from(PersistError::ConfigMismatch {
            expected: 1,
            actual: 2,
        });
        assert!(e.to_string().contains("checkpoint error"));
        assert!(e.to_string().contains("fingerprint"));
        assert!(e.source().is_some());
        assert!(matches!(&e, EasyBoError::Persist(p)
            if matches!(p.as_ref(), PersistError::ConfigMismatch { .. })));
        // Clone + PartialEq still hold with the new variant.
        assert_eq!(e.clone(), e);
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<EasyBoError>();
    }
}
