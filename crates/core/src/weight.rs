//! Exploration-weight schedules for the weighted acquisition (§III-B).
//!
//! pBO distributes `B` weights uniformly over `[0, 1]`
//! (`w_i = (i-1)/(B-1)`); the paper shows this clusters query points once
//! the posterior uncertainty shrinks, because small-`w` acquisitions all
//! collapse onto the predictive-mean maximizer (Fig. 2). EasyBO instead
//! samples `κ ~ U[0, λ]` and sets `w = κ/(κ+1)`, which concentrates the
//! sampling density of `w` near 1 — more exploration early, more diversity
//! always.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// The paper's λ: κ is drawn uniformly from `[0, λ]` (§III-B sets λ = 6).
pub const DEFAULT_LAMBDA: f64 = 6.0;

/// Draws one EasyBO exploration weight `w = κ/(κ+1)`, `κ ~ U[0, lambda]`.
///
/// # Example
///
/// ```
/// use easybo::sample_kappa_weight;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let w = sample_kappa_weight(6.0, &mut rng);
/// assert!((0.0..=6.0 / 7.0).contains(&w));
/// ```
pub fn sample_kappa_weight<R: Rng + ?Sized>(lambda: f64, rng: &mut R) -> f64 {
    let kappa = rng.gen_range(0.0..=lambda.max(0.0));
    kappa / (kappa + 1.0)
}

/// A schedule producing exploration weights for batch members.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum WeightSchedule {
    /// pBO's fixed grid: `w_i = (i-1)/(B-1)` for batch size B
    /// (`w = 0.5` when B = 1).
    UniformGrid,
    /// EasyBO's randomized weights: `w = κ/(κ+1)`, `κ ~ U[0, λ]`.
    KappaSampled {
        /// Upper end of the κ range (paper: 6.0).
        lambda: f64,
    },
}

impl Default for WeightSchedule {
    fn default() -> Self {
        WeightSchedule::KappaSampled {
            lambda: DEFAULT_LAMBDA,
        }
    }
}

impl WeightSchedule {
    /// Weight for batch member `i` of `batch_size`.
    pub fn weight<R: Rng + ?Sized>(&self, i: usize, batch_size: usize, rng: &mut R) -> f64 {
        match *self {
            WeightSchedule::UniformGrid => {
                if batch_size <= 1 {
                    0.5
                } else {
                    i.min(batch_size - 1) as f64 / (batch_size - 1) as f64
                }
            }
            WeightSchedule::KappaSampled { lambda } => sample_kappa_weight(lambda, rng),
        }
    }

    /// All `batch_size` weights at once.
    pub fn batch<R: Rng + ?Sized>(&self, batch_size: usize, rng: &mut R) -> Vec<f64> {
        (0..batch_size)
            .map(|i| self.weight(i, batch_size, rng))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    #[test]
    fn uniform_grid_matches_paper_pattern() {
        // Paper: w = (0, 0.25, 0.5, 0.75, 1) for B = 5.
        let ws = WeightSchedule::UniformGrid.batch(5, &mut rng(0));
        assert_eq!(ws, vec![0.0, 0.25, 0.5, 0.75, 1.0]);
    }

    #[test]
    fn uniform_grid_degenerate_batch() {
        assert_eq!(WeightSchedule::UniformGrid.weight(0, 1, &mut rng(0)), 0.5);
    }

    #[test]
    fn kappa_weights_in_range() {
        let mut r = rng(1);
        let max_w = DEFAULT_LAMBDA / (DEFAULT_LAMBDA + 1.0);
        for _ in 0..1000 {
            let w = sample_kappa_weight(DEFAULT_LAMBDA, &mut r);
            assert!((0.0..=max_w).contains(&w), "{w}");
        }
    }

    #[test]
    fn kappa_sampling_concentrates_near_one() {
        // The density of w increases toward w_max: more than half the draws
        // should land in the upper half of the achievable range (for λ = 6,
        // w > 0.5 ⟺ κ > 1, probability 5/6).
        let mut r = rng(2);
        let n = 4000;
        let hi = (0..n)
            .filter(|_| sample_kappa_weight(6.0, &mut r) > 0.5)
            .count();
        let frac = hi as f64 / n as f64;
        assert!(
            (frac - 5.0 / 6.0).abs() < 0.03,
            "expected ≈0.833 of draws above 0.5, got {frac}"
        );
    }

    #[test]
    fn lambda_zero_is_pure_exploitation() {
        let mut r = rng(3);
        for _ in 0..10 {
            assert_eq!(sample_kappa_weight(0.0, &mut r), 0.0);
        }
    }

    #[test]
    fn larger_lambda_explores_more() {
        let mut r = rng(4);
        let mean = |lambda: f64, r: &mut rand::rngs::StdRng| {
            (0..2000)
                .map(|_| sample_kappa_weight(lambda, r))
                .sum::<f64>()
                / 2000.0
        };
        let small = mean(1.0, &mut r);
        let large = mean(20.0, &mut r);
        assert!(large > small + 0.2, "{small} vs {large}");
    }

    #[test]
    fn default_schedule_is_kappa_with_paper_lambda() {
        match WeightSchedule::default() {
            WeightSchedule::KappaSampled { lambda } => assert_eq!(lambda, 6.0),
            other => panic!("unexpected default {other:?}"),
        }
    }
}
