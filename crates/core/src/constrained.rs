//! Constrained EasyBO — the extension the paper defers to future work
//! (§II-A: "our proposed approach can also be easily extended to handle
//! constrained optimization problem").
//!
//! Design specifications in analog sizing are naturally constraints
//! ("phase margin ≥ 60°", "power ≤ 1mW"). We take the standard
//! probability-of-feasibility route (Gardner et al., 2014): each
//! constraint gets its own GP, and the EasyBO acquisition is multiplied by
//! `Π_j P(c_j(x) ≥ 0)` so infeasible regions are suppressed in proportion
//! to the model's confidence. The best *feasible* observation is tracked
//! as the incumbent.
//!
//! Constrained runs carry the full production surface of the plain
//! optimizer: black-box objectives with real evaluation costs
//! ([`EasyBo::run_constrained_blackbox`]), retry policies, telemetry
//! (`SpecViolated` / `FeasibleIncumbent` events plus the
//! `feasible_points` / `infeasible_points` counters behind
//! `RunReport::feasible_fraction`), and durable checkpoint/resume
//! ([`EasyBo::resume_constrained`]) through the versioned `CNST` policy
//! blob.

use std::path::Path;

use easybo_exec::{AsyncPolicy, BlackBox, BusyPoint, Dataset};
use easybo_gp::Gp;
use easybo_opt::Bounds;
use easybo_persist::PersistError;
use easybo_telemetry::{Event, Telemetry};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::acquisition;
use crate::persistence::Fingerprint;
use crate::policies::{AcqMaximizer, AcqOptConfig};
use crate::surrogate::{SurrogateConfig, SurrogateManager};
use crate::weight::{sample_kappa_weight, DEFAULT_LAMBDA};
use crate::{EasyBo, EasyBoError, OptimizationResult};

/// A borrowed objective or constraint function.
type ObjectiveFn<'a> = &'a (dyn Fn(&[f64]) -> f64 + Sync);

/// A constrained objective: maximize `objective` subject to
/// `constraint_j(x) ≥ 0` for every constraint.
pub struct ConstrainedProblem<'a> {
    objective: ObjectiveFn<'a>,
    constraints: Vec<ObjectiveFn<'a>>,
    names: Vec<String>,
}

impl<'a> ConstrainedProblem<'a> {
    /// Creates a problem from an objective closure.
    pub fn new(objective: &'a (dyn Fn(&[f64]) -> f64 + Sync)) -> Self {
        ConstrainedProblem {
            objective,
            constraints: Vec::new(),
            names: Vec::new(),
        }
    }

    /// Adds a constraint `c(x) ≥ 0` (builder style) under the default
    /// name `c{index}`.
    pub fn subject_to(self, constraint: &'a (dyn Fn(&[f64]) -> f64 + Sync)) -> Self {
        let name = format!("c{}", self.constraints.len());
        self.subject_to_named(name, constraint)
    }

    /// Adds a named design spec `c(x) ≥ 0` (builder style). The name is
    /// carried into `SpecViolated` telemetry events; `"` and `\` are
    /// replaced with `_` so the restricted JSONL encoding round-trips.
    pub fn subject_to_named(
        mut self,
        name: impl Into<String>,
        constraint: &'a (dyn Fn(&[f64]) -> f64 + Sync),
    ) -> Self {
        let name: String = name
            .into()
            .chars()
            .map(|c| if c == '"' || c == '\\' { '_' } else { c })
            .collect();
        self.constraints.push(constraint);
        self.names.push(name);
        self
    }

    /// Number of constraints.
    pub fn n_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// Spec names, parallel to the constraints.
    pub fn spec_names(&self) -> &[String] {
        &self.names
    }

    /// Evaluates objective and all constraints at once.
    pub fn evaluate(&self, x: &[f64]) -> (f64, Vec<f64>) {
        (
            (self.objective)(x),
            self.constraints.iter().map(|c| c(x)).collect(),
        )
    }

    /// Whether `slacks` (constraint values) are all feasible.
    pub fn feasible(slacks: &[f64]) -> bool {
        slacks.iter().all(|&s| s >= 0.0)
    }
}

/// Asynchronous constrained-EasyBO policy: one surrogate for the objective
/// plus one per constraint; acquisition = EasyBO weighted acquisition ×
/// probability of feasibility.
///
/// Normally driven through [`EasyBo::run_constrained`]; public so external
/// session drivers (and the snapshot format tests) can build the exact
/// policy the internal entry points use.
pub struct ConstrainedPolicy<'a> {
    problem: &'a ConstrainedProblem<'a>,
    objective_surrogate: SurrogateManager,
    constraint_surrogates: Vec<SurrogateManager>,
    /// Raw constraint observations, parallel to the dataset.
    slacks: Vec<Vec<f64>>,
    maximizer: AcqMaximizer,
    rng: StdRng,
    lambda: f64,
    fallbacks: usize,
    /// Dataset prefix length already announced to telemetry — persisted
    /// so a resumed run does not re-emit spec events for old points.
    announced: u64,
    /// Feasible observations among the announced prefix.
    feasible: u64,
    /// Best feasible objective announced so far.
    best_feasible: Option<f64>,
    telemetry: Telemetry,
}

impl<'a> ConstrainedPolicy<'a> {
    /// Creates the constrained policy with the paper's λ = 6 and default
    /// surrogate/acquisition sizing.
    pub fn new(problem: &'a ConstrainedProblem<'a>, bounds: Bounds, seed: u64) -> Self {
        let dim = bounds.dim();
        Self::with_configs(
            problem,
            bounds,
            DEFAULT_LAMBDA,
            seed,
            SurrogateConfig::default(),
            AcqOptConfig::for_dim(dim),
        )
    }

    /// Full-configuration constructor — the construction every internal
    /// constrained entry point uses.
    pub fn with_configs(
        problem: &'a ConstrainedProblem<'a>,
        bounds: Bounds,
        lambda: f64,
        seed: u64,
        surrogate: SurrogateConfig,
        acq_opt: AcqOptConfig,
    ) -> Self {
        let dim = bounds.dim();
        let make = |k: u64| {
            SurrogateManager::new(
                bounds.clone(),
                SurrogateConfig {
                    seed: seed ^ k,
                    ..surrogate.clone()
                },
            )
        };
        ConstrainedPolicy {
            problem,
            objective_surrogate: make(0),
            constraint_surrogates: (0..problem.n_constraints())
                .map(|j| make(j as u64 + 1))
                .collect(),
            slacks: Vec::new(),
            maximizer: AcqMaximizer::new(dim, acq_opt),
            rng: StdRng::seed_from_u64(seed ^ 0xc025_0003),
            lambda,
            fallbacks: 0,
            announced: 0,
            feasible: 0,
            best_feasible: None,
            telemetry: Telemetry::disabled(),
        }
    }

    /// Attaches a telemetry handle: completed observations emit
    /// `SpecViolated` / `FeasibleIncumbent` events and bump the
    /// `feasible_points` / `infeasible_points` counters; GP retrainings
    /// emit `GpRefit` for the objective and every constraint surrogate.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) -> &mut Self {
        self.objective_surrogate.set_telemetry(telemetry.clone());
        for sm in &mut self.constraint_surrogates {
            sm.set_telemetry(telemetry.clone());
        }
        self.telemetry = telemetry;
        self
    }

    /// Best feasible objective value observed so far (None until a point
    /// satisfies every spec).
    pub fn best_feasible(&self) -> Option<f64> {
        self.best_feasible
    }

    /// Catches the slack observations up with the dataset (the executor
    /// only reports objective values, so constraints are re-evaluated —
    /// cheap for analytical models; a production integration would carry
    /// them through the evaluation record). Newly seen points are
    /// announced to telemetry exactly once, resume included.
    fn sync_slacks(&mut self, data: &Dataset) {
        while self.slacks.len() < data.len() {
            let idx = self.slacks.len();
            let x = &data.xs()[idx];
            let (_, slack) = self.problem.evaluate(x);
            if idx as u64 >= self.announced {
                self.announce(idx, data.ys()[idx], &slack);
                self.announced = idx as u64 + 1;
            }
            self.slacks.push(slack);
        }
    }

    /// Telemetry for one newly completed observation.
    fn announce(&mut self, idx: usize, y: f64, slack: &[f64]) {
        if ConstrainedProblem::feasible(slack) {
            self.feasible += 1;
            self.telemetry.incr("feasible_points", 1);
            if self.best_feasible.is_none_or(|b| y > b) {
                self.best_feasible = Some(y);
                self.telemetry.emit(Event::FeasibleIncumbent {
                    task: idx,
                    value: y,
                });
            }
        } else {
            self.telemetry.incr("infeasible_points", 1);
            for (name, &s) in self.problem.spec_names().iter().zip(slack) {
                if s < 0.0 {
                    self.telemetry.emit(Event::SpecViolated {
                        task: idx,
                        spec: name.clone(),
                        slack: s,
                    });
                }
            }
        }
    }

    /// Fits the constraint GPs on the current data.
    fn constraint_gps(&mut self, data: &Dataset) -> Vec<Gp> {
        let mut gps = Vec::with_capacity(self.constraint_surrogates.len());
        for (j, sm) in self.constraint_surrogates.iter_mut().enumerate() {
            let mut cdata = Dataset::new();
            for (x, s) in data.xs().iter().zip(self.slacks.iter()) {
                cdata.push(x.clone(), s[j]);
            }
            if let Ok(gp) = sm.surrogate(&cdata) {
                gps.push(gp.clone());
            }
        }
        gps
    }
}

/// Probability that the constraint GP predicts `c(x) ≥ 0`.
fn feasibility_probability(gp: &Gp, u: &[f64]) -> f64 {
    let pred = gp.predict(u);
    let sigma = pred.std();
    if sigma < 1e-12 {
        return if pred.mean >= 0.0 { 1.0 } else { 0.0 };
    }
    acquisition::normal_cdf(pred.mean / sigma)
}

impl AsyncPolicy for ConstrainedPolicy<'_> {
    fn select_next(&mut self, data: &Dataset, busy: &[BusyPoint]) -> Vec<f64> {
        if data.is_empty() {
            return self
                .objective_surrogate
                .bounds()
                .sample_uniform(&mut self.rng);
        }
        self.sync_slacks(data);
        let gp = match self.objective_surrogate.surrogate(data) {
            Ok(gp) => gp.clone(),
            Err(_) => {
                self.fallbacks += 1;
                return self
                    .objective_surrogate
                    .bounds()
                    .sample_uniform(&mut self.rng);
            }
        };
        let cgps = self.constraint_gps(data);
        let w = sample_kappa_weight(self.lambda, &mut self.rng);
        let busy_units: Vec<Vec<f64>> = busy
            .iter()
            .map(|bp| self.objective_surrogate.to_unit(&bp.x))
            .collect();
        let augmented = if busy_units.is_empty() {
            None
        } else {
            gp.augment(&busy_units).ok()
        };
        let gp_ref = &gp;
        let aug_ref = augmented.as_ref();
        let cg = &cgps;
        let u = self.maximizer.maximize(&mut self.rng, move |p| {
            let base = match aug_ref {
                Some(aug) => acquisition::weighted_penalized(gp_ref, aug, p, w),
                None => acquisition::weighted(gp_ref, p, w),
            };
            // Multiply by the probability of joint feasibility (log-space
            // accumulation for numerical hygiene). The weighted acquisition
            // can be negative in standardized space; shift by a constant so
            // multiplication preserves ordering within this maximization.
            let mut log_pof = 0.0;
            for gp_c in cg {
                log_pof += feasibility_probability(gp_c, p).max(1e-12).ln();
            }
            base + log_pof
        });
        self.objective_surrogate.from_unit(&u)
    }

    fn snapshot_state(&self) -> Option<Vec<u8>> {
        let constraints: Vec<_> = self
            .constraint_surrogates
            .iter()
            .map(|sm| sm.state())
            .collect();
        Some(crate::persistence::encode_constrained_state(
            self.rng.state(),
            self.fallbacks,
            self.announced,
            self.feasible,
            self.best_feasible,
            &self.objective_surrogate.state(),
            &constraints,
        ))
    }

    fn restore_state(&mut self, state: &[u8]) -> Result<(), String> {
        let blob =
            crate::persistence::decode_constrained_state(state).map_err(|e| e.to_string())?;
        if blob.constraints.len() != self.constraint_surrogates.len() {
            return Err(format!(
                "constrained policy blob carries {} constraint surrogates, \
                 this problem has {}",
                blob.constraints.len(),
                self.constraint_surrogates.len()
            ));
        }
        let infeasible = blob.announced.checked_sub(blob.feasible).ok_or_else(|| {
            format!(
                "constrained policy blob counts {} feasible of {} announced points",
                blob.feasible, blob.announced
            )
        })?;
        self.objective_surrogate
            .restore(blob.core.surrogate)
            .map_err(|e| e.to_string())?;
        for (sm, st) in self.constraint_surrogates.iter_mut().zip(blob.constraints) {
            sm.restore(st).map_err(|e| e.to_string())?;
        }
        self.rng = StdRng::from_state(blob.core.rng);
        self.fallbacks = blob.core.fallbacks;
        self.announced = blob.announced;
        self.feasible = blob.feasible;
        self.best_feasible = blob.best_feasible;
        // Slacks are re-derived from the restored dataset on the next
        // `sync_slacks`; `announced` keeps the replay silent.
        self.slacks.clear();
        // Re-seed the feasibility counters so `feasible_fraction` covers
        // the whole run, not just the post-resume tail.
        self.telemetry.incr("feasible_points", blob.feasible);
        self.telemetry.incr("infeasible_points", infeasible);
        Ok(())
    }
}

impl EasyBo {
    /// FNV-1a fingerprint for constrained snapshots: the plain
    /// configuration fingerprint extended with a `CNST` marker and the
    /// constraint count, so a constrained checkpoint can never resume as
    /// a plain run (or under a different spec set) and vice versa.
    pub(crate) fn constrained_fingerprint(&self, n_constraints: usize) -> u64 {
        let mut fp = Fingerprint::new();
        fp.push_u64(self.fingerprint());
        fp.push_u64(u64::from(u32::from_le_bytes(*b"CNST")));
        fp.push_usize(n_constraints);
        fp.finish()
    }

    /// The configured constrained policy as a standalone value — the
    /// same construction [`EasyBo::run_constrained`] uses internally.
    pub fn build_constrained_policy<'a>(
        &self,
        problem: &'a ConstrainedProblem<'a>,
    ) -> ConstrainedPolicy<'a> {
        let mut policy = ConstrainedPolicy::with_configs(
            problem,
            self.bounds().clone(),
            self.lambda_value(),
            self.seed_value(),
            self.surrogate_config_value().clone(),
            self.acq_config_value(),
        );
        policy.set_telemetry(self.telemetry_handle().clone());
        policy
    }

    /// Maximizes a [`ConstrainedProblem`] with probability-of-feasibility
    /// weighted EasyBO. Returns the best *feasible* design found.
    /// Evaluation cost is treated as mildly heterogeneous (the same
    /// seeded [`easybo_exec::SimTimeModel`] as [`EasyBo::run`]).
    ///
    /// # Errors
    ///
    /// * [`EasyBoError::BadBudget`] if `max_evals <= initial_points`.
    /// * [`EasyBoError::DegenerateObjective`] if no feasible point was ever
    ///   observed.
    pub fn run_constrained(
        &self,
        problem: &ConstrainedProblem<'_>,
    ) -> crate::Result<OptimizationResult> {
        use easybo_exec::{CostedFunction, SimTimeModel};
        self.validate()?;
        let bounds = self.bounds().clone();
        let time = SimTimeModel::new(&bounds, 1.0, 0.0, self.seed_value());
        let objective = |x: &[f64]| problem.evaluate(x).0;
        let bb = CostedFunction::new("constrained-objective", bounds, time, objective);
        self.run_constrained_blackbox(problem, &bb)
    }

    /// Maximizes a [`ConstrainedProblem`] whose objective values are
    /// produced by `bb` (costs, faults, and retries included) — `problem`
    /// supplies the spec slacks. The two must agree on the design they
    /// evaluate: `bb` reports the objective the executor records, and the
    /// policy re-evaluates `problem`'s constraints at the same points.
    /// Checkpointing ([`EasyBo::checkpoint_to`]) and fault injection
    /// ([`EasyBo::abort_after_evals`]) work exactly as on
    /// [`EasyBo::run_blackbox`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`EasyBo::run_constrained`].
    pub fn run_constrained_blackbox(
        &self,
        problem: &ConstrainedProblem<'_>,
        bb: &dyn BlackBox,
    ) -> crate::Result<OptimizationResult> {
        use easybo_exec::VirtualExecutor;
        self.validate()?;
        let mut policy = self.build_constrained_policy(problem);
        let exec = VirtualExecutor::new(self.batch_size_value());
        let result = if self.hooks_active() {
            let mut hook =
                self.session_hook_with(None, self.constrained_fingerprint(problem.n_constraints()));
            exec.run_session_resilient(
                bb,
                &self.initial_design(),
                self.max_evals_value(),
                &mut policy,
                self.retry(),
                self.telemetry_handle(),
                Some(&mut *hook),
            )?
        } else {
            exec.run_async_resilient(
                bb,
                &self.initial_design(),
                self.max_evals_value(),
                &mut policy,
                self.retry(),
                self.telemetry_handle(),
            )
        };
        self.finish_constrained(result, &mut policy)
    }

    /// Resumes a constrained run from a snapshot written by a
    /// checkpointed [`EasyBo::run_constrained_blackbox`] under the *same
    /// configuration and spec set*. The restored run continues to its
    /// original budget with a best-so-far trace byte-identical to the
    /// uninterrupted run.
    ///
    /// # Errors
    ///
    /// * [`EasyBoError::Persist`] when the file is missing, corrupt, from
    ///   another format version, or was captured under a different
    ///   configuration/spec fingerprint (a plain-run snapshot is rejected
    ///   here, and a constrained snapshot is rejected by
    ///   [`EasyBo::resume_from`]).
    /// * The same conditions as [`EasyBo::run_constrained`] otherwise.
    pub fn resume_constrained(
        &self,
        path: impl AsRef<Path>,
        problem: &ConstrainedProblem<'_>,
        bb: &dyn BlackBox,
    ) -> crate::Result<OptimizationResult> {
        use easybo_exec::VirtualExecutor;
        self.validate()?;
        let fingerprint = self.constrained_fingerprint(problem.n_constraints());
        let (session, blob) = self.load_session_parts(path.as_ref(), fingerprint)?;
        let mut policy = self.build_constrained_policy(problem);
        if let Some(blob) = &blob {
            policy
                .restore_state(blob)
                .map_err(|e| EasyBoError::from(PersistError::decode(e)))?;
        }
        self.announce_resume(&session);
        let baseline = (session.completed(), session.clock());
        let mut hook = self.session_hook_with(Some(baseline), fingerprint);
        let result = VirtualExecutor::new(self.batch_size_value()).resume_session_resilient(
            bb,
            session,
            &mut policy,
            self.retry(),
            self.telemetry_handle(),
            Some(&mut *hook),
        )?;
        self.finish_constrained(result, &mut policy)
    }

    /// Shared epilogue: catch the slack record up with the final dataset
    /// (announcing any tail observations), scan for the best *feasible*
    /// design, and assemble the report.
    fn finish_constrained(
        &self,
        result: easybo_exec::RunResult,
        policy: &mut ConstrainedPolicy<'_>,
    ) -> crate::Result<OptimizationResult> {
        policy.sync_slacks(&result.data);
        // The incumbent must be feasible.
        let mut best: Option<(Vec<f64>, f64)> = None;
        for ((x, &y), s) in result
            .data
            .xs()
            .iter()
            .zip(result.data.ys())
            .zip(policy.slacks.iter())
        {
            if ConstrainedProblem::feasible(s) && best.as_ref().is_none_or(|(_, by)| y > *by) {
                best = Some((x.clone(), y));
            }
        }
        let (best_x, best_value) = best.ok_or(EasyBoError::DegenerateObjective)?;
        if !best_value.is_finite() {
            return Err(EasyBoError::DegenerateObjective);
        }
        let telemetry = self.telemetry_handle();
        telemetry.flush();
        let report = easybo_telemetry::RunReport::with_metrics(
            result.schedule.makespan(),
            result.schedule.workers(),
            result.schedule.utilization(),
            result.data.len(),
            telemetry.summary(),
            telemetry.metrics_snapshot().as_ref(),
        );
        Ok(OptimizationResult {
            best_x,
            best_value,
            data: result.data,
            trace: result.trace,
            schedule: result.schedule,
            report,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn problem_builder_and_evaluation() {
        let obj = |x: &[f64]| x[0] + x[1];
        let c1 = |x: &[f64]| 1.0 - x[0];
        let problem = ConstrainedProblem::new(&obj).subject_to(&c1);
        assert_eq!(problem.n_constraints(), 1);
        assert_eq!(problem.spec_names(), ["c0"]);
        let (v, s) = problem.evaluate(&[0.3, 0.4]);
        assert!((v - 0.7).abs() < 1e-12);
        assert!((s[0] - 0.7).abs() < 1e-12);
        assert!(ConstrainedProblem::feasible(&s));
        assert!(!ConstrainedProblem::feasible(&[-0.1]));
    }

    #[test]
    fn named_specs_are_sanitized_for_jsonl() {
        let obj = |x: &[f64]| x[0];
        let c = |x: &[f64]| x[0];
        let problem = ConstrainedProblem::new(&obj)
            .subject_to_named("pm_deg>=50", &c)
            .subject_to_named("bad\"name\\here", &c);
        assert_eq!(problem.spec_names(), ["pm_deg>=50", "bad_name_here"]);
    }

    #[test]
    fn constrained_optimum_respects_boundary() {
        // Maximize x+y on [0,2]² subject to x + y <= 1.5: the constrained
        // optimum sits on the line x+y = 1.5 (value 1.5), far below the
        // unconstrained corner (value 4).
        let bounds = Bounds::new(vec![(0.0, 2.0), (0.0, 2.0)]).unwrap();
        let obj = |x: &[f64]| x[0] + x[1];
        let c = |x: &[f64]| 1.5 - (x[0] + x[1]);
        let problem = ConstrainedProblem::new(&obj).subject_to(&c);
        let mut opt = EasyBo::new(bounds);
        opt.batch_size(3).initial_points(10).max_evals(45).seed(4);
        let r = opt.run_constrained(&problem).unwrap();
        let slack = 1.5 - (r.best_x[0] + r.best_x[1]);
        assert!(slack >= 0.0, "incumbent must be feasible: slack {slack}");
        assert!(
            r.best_value > 1.3,
            "should approach the constraint boundary: {}",
            r.best_value
        );
    }

    #[test]
    fn infeasible_everywhere_reports_degenerate() {
        let bounds = Bounds::unit_cube(1).unwrap();
        let obj = |x: &[f64]| x[0];
        let c = |_: &[f64]| -1.0; // never feasible
        let problem = ConstrainedProblem::new(&obj).subject_to(&c);
        let mut opt = EasyBo::new(bounds);
        opt.initial_points(4).max_evals(10).seed(1);
        assert!(matches!(
            opt.run_constrained(&problem),
            Err(EasyBoError::DegenerateObjective)
        ));
    }

    #[test]
    fn unconstrained_problem_matches_plain_run_shape() {
        let bounds = Bounds::new(vec![(-1.0, 1.0)]).unwrap();
        let obj = |x: &[f64]| -(x[0] - 0.4) * (x[0] - 0.4);
        let problem = ConstrainedProblem::new(&obj);
        let mut opt = EasyBo::new(bounds);
        opt.batch_size(2).initial_points(6).max_evals(25).seed(2);
        let r = opt.run_constrained(&problem).unwrap();
        assert!(r.best_value > -0.02, "best {}", r.best_value);
    }

    #[test]
    fn feasibility_telemetry_reaches_the_report() {
        let bounds = Bounds::new(vec![(0.0, 2.0), (0.0, 2.0)]).unwrap();
        let obj = |x: &[f64]| x[0] + x[1];
        let c = |x: &[f64]| 1.5 - (x[0] + x[1]);
        let problem = ConstrainedProblem::new(&obj).subject_to_named("sum<=1.5", &c);
        let (telemetry, recorder) = Telemetry::recording();
        let mut opt = EasyBo::new(bounds);
        opt.batch_size(3)
            .initial_points(10)
            .max_evals(30)
            .seed(4)
            .telemetry(telemetry);
        let r = opt.run_constrained(&problem).unwrap();
        let events = recorder.events();
        let violations = events
            .iter()
            .filter(|e| matches!(&e.event, Event::SpecViolated { spec, .. } if spec == "sum<=1.5"))
            .count();
        let incumbents: Vec<f64> = events
            .iter()
            .filter_map(|e| match &e.event {
                Event::FeasibleIncumbent { value, .. } => Some(*value),
                _ => None,
            })
            .collect();
        assert!(
            violations > 0,
            "a 2x2 box vs sum<=1.5 must violate somewhere"
        );
        assert!(
            !incumbents.is_empty(),
            "feasible incumbents must be announced"
        );
        // Incumbent values are strictly improving and end at the winner.
        for w in incumbents.windows(2) {
            assert!(w[1] > w[0], "incumbents not improving: {incumbents:?}");
        }
        assert_eq!(*incumbents.last().unwrap(), r.best_value);
        let frac = r.report.feasible_fraction.expect("counters were attached");
        assert!(frac > 0.0 && frac < 1.0, "feasible fraction {frac}");
    }

    #[test]
    fn constrained_policy_snapshot_restores_bitwise() {
        let obj = |x: &[f64]| -(x[0] - 0.4) * (x[0] - 0.4);
        let c = |x: &[f64]| 0.8 - x[0];
        let problem = ConstrainedProblem::new(&obj).subject_to(&c);
        let bounds = Bounds::new(vec![(0.0, 1.0)]).unwrap();
        let mut data = Dataset::new();
        for i in 0..9 {
            let x = i as f64 / 8.0;
            data.push(vec![x], -(x - 0.4) * (x - 0.4));
        }
        let mut policy = ConstrainedPolicy::new(&problem, bounds.clone(), 11);
        let _ = policy.select_next(&data, &[]); // advance RNG, fit all GPs
        let blob = policy.snapshot_state().expect("policy supports capture");

        let mut restored = ConstrainedPolicy::new(&problem, bounds, 999); // wrong seed on purpose
        restored.restore_state(&blob).unwrap();

        data.push(vec![0.55], -(0.55f64 - 0.4) * (0.55 - 0.4));
        let busy = vec![BusyPoint {
            x: vec![0.3],
            task: 9,
            worker: 1,
            finish_time: 50.0,
        }];
        for _ in 0..3 {
            let a = policy.select_next(&data, &busy);
            let b = restored.select_next(&data, &busy);
            assert_eq!(a.len(), b.len());
            for (va, vb) in a.iter().zip(&b) {
                assert_eq!(va.to_bits(), vb.to_bits());
            }
        }
    }

    #[test]
    fn constrained_restore_rejects_mismatched_spec_sets() {
        let obj = |x: &[f64]| x[0];
        let c = |x: &[f64]| x[0];
        let one = ConstrainedProblem::new(&obj).subject_to(&c);
        let two = ConstrainedProblem::new(&obj).subject_to(&c).subject_to(&c);
        let bounds = Bounds::new(vec![(0.0, 1.0)]).unwrap();
        let policy = ConstrainedPolicy::new(&one, bounds.clone(), 3);
        let blob = policy.snapshot_state().unwrap();
        let mut wrong = ConstrainedPolicy::new(&two, bounds.clone(), 3);
        let err = wrong.restore_state(&blob).unwrap_err();
        assert!(err.contains("constraint surrogates"), "{err}");
        // And garbage is rejected outright.
        let mut policy = ConstrainedPolicy::new(&one, bounds, 3);
        assert!(policy.restore_state(&[1, 2, 3]).is_err());
    }
}
