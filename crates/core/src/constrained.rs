//! Constrained EasyBO — the extension the paper defers to future work
//! (§II-A: "our proposed approach can also be easily extended to handle
//! constrained optimization problem").
//!
//! Design specifications in analog sizing are naturally constraints
//! ("phase margin ≥ 60°", "power ≤ 1mW"). We take the standard
//! probability-of-feasibility route (Gardner et al., 2014): each
//! constraint gets its own GP, and the EasyBO acquisition is multiplied by
//! `Π_j P(c_j(x) ≥ 0)` so infeasible regions are suppressed in proportion
//! to the model's confidence. The best *feasible* observation is tracked
//! as the incumbent.

use easybo_exec::{AsyncPolicy, BusyPoint, Dataset};
use easybo_gp::Gp;
use easybo_opt::Bounds;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::acquisition;
use crate::policies::{AcqMaximizer, AcqOptConfig};
use crate::surrogate::{SurrogateConfig, SurrogateManager};
use crate::weight::{sample_kappa_weight, DEFAULT_LAMBDA};
use crate::{EasyBo, EasyBoError, OptimizationResult};

/// A borrowed objective or constraint function.
type ObjectiveFn<'a> = &'a (dyn Fn(&[f64]) -> f64 + Sync);

/// A constrained objective: maximize `objective` subject to
/// `constraint_j(x) ≥ 0` for every constraint.
pub struct ConstrainedProblem<'a> {
    objective: ObjectiveFn<'a>,
    constraints: Vec<ObjectiveFn<'a>>,
}

impl<'a> ConstrainedProblem<'a> {
    /// Creates a problem from an objective closure.
    pub fn new(objective: &'a (dyn Fn(&[f64]) -> f64 + Sync)) -> Self {
        ConstrainedProblem {
            objective,
            constraints: Vec::new(),
        }
    }

    /// Adds a constraint `c(x) ≥ 0` (builder style).
    pub fn subject_to(mut self, constraint: &'a (dyn Fn(&[f64]) -> f64 + Sync)) -> Self {
        self.constraints.push(constraint);
        self
    }

    /// Number of constraints.
    pub fn n_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// Evaluates objective and all constraints at once.
    pub fn evaluate(&self, x: &[f64]) -> (f64, Vec<f64>) {
        (
            (self.objective)(x),
            self.constraints.iter().map(|c| c(x)).collect(),
        )
    }

    /// Whether `slacks` (constraint values) are all feasible.
    pub fn feasible(slacks: &[f64]) -> bool {
        slacks.iter().all(|&s| s >= 0.0)
    }
}

/// Asynchronous constrained-EasyBO policy: one surrogate for the objective
/// plus one per constraint; acquisition = EasyBO weighted acquisition ×
/// probability of feasibility.
struct ConstrainedPolicy<'a> {
    problem: &'a ConstrainedProblem<'a>,
    objective_surrogate: SurrogateManager,
    constraint_surrogates: Vec<SurrogateManager>,
    /// Raw constraint observations, parallel to the dataset.
    slacks: Vec<Vec<f64>>,
    maximizer: AcqMaximizer,
    rng: StdRng,
    lambda: f64,
}

impl<'a> ConstrainedPolicy<'a> {
    fn new(problem: &'a ConstrainedProblem<'a>, bounds: Bounds, seed: u64) -> Self {
        let dim = bounds.dim();
        let make = |k: u64| {
            SurrogateManager::new(
                bounds.clone(),
                SurrogateConfig {
                    seed: seed ^ k,
                    ..Default::default()
                },
            )
        };
        ConstrainedPolicy {
            problem,
            objective_surrogate: make(0),
            constraint_surrogates: (0..problem.n_constraints())
                .map(|j| make(j as u64 + 1))
                .collect(),
            slacks: Vec::new(),
            maximizer: AcqMaximizer::new(dim, AcqOptConfig::for_dim(dim)),
            rng: StdRng::seed_from_u64(seed ^ 0xc025_0003),
            lambda: DEFAULT_LAMBDA,
        }
    }

    /// Catches the slack observations up with the dataset (the executor
    /// only reports objective values, so constraints are re-evaluated —
    /// cheap for analytical models; a production integration would carry
    /// them through the evaluation record).
    fn sync_slacks(&mut self, data: &Dataset) {
        while self.slacks.len() < data.len() {
            let x = &data.xs()[self.slacks.len()];
            let (_, slack) = self.problem.evaluate(x);
            self.slacks.push(slack);
        }
    }

    /// Fits the constraint GPs on the current data.
    fn constraint_gps(&mut self, data: &Dataset) -> Vec<Gp> {
        let mut gps = Vec::with_capacity(self.constraint_surrogates.len());
        for (j, sm) in self.constraint_surrogates.iter_mut().enumerate() {
            let mut cdata = Dataset::new();
            for (x, s) in data.xs().iter().zip(self.slacks.iter()) {
                cdata.push(x.clone(), s[j]);
            }
            if let Ok(gp) = sm.surrogate(&cdata) {
                gps.push(gp.clone());
            }
        }
        gps
    }
}

/// Probability that the constraint GP predicts `c(x) ≥ 0`.
fn feasibility_probability(gp: &Gp, u: &[f64]) -> f64 {
    let pred = gp.predict(u);
    let sigma = pred.std();
    if sigma < 1e-12 {
        return if pred.mean >= 0.0 { 1.0 } else { 0.0 };
    }
    acquisition::normal_cdf(pred.mean / sigma)
}

impl AsyncPolicy for ConstrainedPolicy<'_> {
    fn select_next(&mut self, data: &Dataset, busy: &[BusyPoint]) -> Vec<f64> {
        if data.is_empty() {
            return self
                .objective_surrogate
                .bounds()
                .sample_uniform(&mut self.rng);
        }
        self.sync_slacks(data);
        let gp = match self.objective_surrogate.surrogate(data) {
            Ok(gp) => gp.clone(),
            Err(_) => {
                return self
                    .objective_surrogate
                    .bounds()
                    .sample_uniform(&mut self.rng)
            }
        };
        let cgps = self.constraint_gps(data);
        let w = sample_kappa_weight(self.lambda, &mut self.rng);
        let busy_units: Vec<Vec<f64>> = busy
            .iter()
            .map(|bp| self.objective_surrogate.to_unit(&bp.x))
            .collect();
        let augmented = if busy_units.is_empty() {
            None
        } else {
            gp.augment(&busy_units).ok()
        };
        let gp_ref = &gp;
        let aug_ref = augmented.as_ref();
        let cg = &cgps;
        let u = self.maximizer.maximize(&mut self.rng, move |p| {
            let base = match aug_ref {
                Some(aug) => acquisition::weighted_penalized(gp_ref, aug, p, w),
                None => acquisition::weighted(gp_ref, p, w),
            };
            // Multiply by the probability of joint feasibility (log-space
            // accumulation for numerical hygiene). The weighted acquisition
            // can be negative in standardized space; shift by a constant so
            // multiplication preserves ordering within this maximization.
            let mut log_pof = 0.0;
            for gp_c in cg {
                log_pof += feasibility_probability(gp_c, p).max(1e-12).ln();
            }
            base + log_pof
        });
        self.objective_surrogate.from_unit(&u)
    }
}

impl EasyBo {
    /// Maximizes a [`ConstrainedProblem`] with probability-of-feasibility
    /// weighted EasyBO. Returns the best *feasible* design found.
    ///
    /// # Errors
    ///
    /// * [`EasyBoError::BadBudget`] if `max_evals <= initial_points`.
    /// * [`EasyBoError::DegenerateObjective`] if no feasible point was ever
    ///   observed.
    pub fn run_constrained(
        &self,
        problem: &ConstrainedProblem<'_>,
    ) -> crate::Result<OptimizationResult> {
        use easybo_exec::{CostedFunction, SimTimeModel, VirtualExecutor};
        self.validate()?;
        let bounds = self.bounds().clone();
        let time = SimTimeModel::new(&bounds, 1.0, 0.0, self.seed_value());
        let objective = |x: &[f64]| problem.evaluate(x).0;
        let bb = CostedFunction::new("constrained-objective", bounds.clone(), time, objective);
        let mut policy = ConstrainedPolicy::new(problem, bounds, self.seed_value());
        let result = VirtualExecutor::new(self.batch_size_value()).run_async_with(
            &bb,
            &self.initial_design(),
            self.max_evals_value(),
            &mut policy,
            self.telemetry_handle(),
        );
        policy.sync_slacks(&result.data);
        // The incumbent must be feasible.
        let mut best: Option<(Vec<f64>, f64)> = None;
        for ((x, &y), s) in result
            .data
            .xs()
            .iter()
            .zip(result.data.ys())
            .zip(policy.slacks.iter())
        {
            if ConstrainedProblem::feasible(s) && best.as_ref().is_none_or(|(_, by)| y > *by) {
                best = Some((x.clone(), y));
            }
        }
        let (best_x, best_value) = best.ok_or(EasyBoError::DegenerateObjective)?;
        let telemetry = self.telemetry_handle();
        telemetry.flush();
        let report = easybo_telemetry::RunReport::new(
            result.schedule.makespan(),
            result.schedule.workers(),
            result.schedule.utilization(),
            result.data.len(),
            telemetry.summary(),
        );
        Ok(OptimizationResult {
            best_x,
            best_value,
            data: result.data,
            trace: result.trace,
            schedule: result.schedule,
            report,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn problem_builder_and_evaluation() {
        let obj = |x: &[f64]| x[0] + x[1];
        let c1 = |x: &[f64]| 1.0 - x[0];
        let problem = ConstrainedProblem::new(&obj).subject_to(&c1);
        assert_eq!(problem.n_constraints(), 1);
        let (v, s) = problem.evaluate(&[0.3, 0.4]);
        assert!((v - 0.7).abs() < 1e-12);
        assert!((s[0] - 0.7).abs() < 1e-12);
        assert!(ConstrainedProblem::feasible(&s));
        assert!(!ConstrainedProblem::feasible(&[-0.1]));
    }

    #[test]
    fn constrained_optimum_respects_boundary() {
        // Maximize x+y on [0,2]² subject to x + y <= 1.5: the constrained
        // optimum sits on the line x+y = 1.5 (value 1.5), far below the
        // unconstrained corner (value 4).
        let bounds = Bounds::new(vec![(0.0, 2.0), (0.0, 2.0)]).unwrap();
        let obj = |x: &[f64]| x[0] + x[1];
        let c = |x: &[f64]| 1.5 - (x[0] + x[1]);
        let problem = ConstrainedProblem::new(&obj).subject_to(&c);
        let mut opt = EasyBo::new(bounds);
        opt.batch_size(3).initial_points(10).max_evals(45).seed(4);
        let r = opt.run_constrained(&problem).unwrap();
        let slack = 1.5 - (r.best_x[0] + r.best_x[1]);
        assert!(slack >= 0.0, "incumbent must be feasible: slack {slack}");
        assert!(
            r.best_value > 1.3,
            "should approach the constraint boundary: {}",
            r.best_value
        );
    }

    #[test]
    fn infeasible_everywhere_reports_degenerate() {
        let bounds = Bounds::unit_cube(1).unwrap();
        let obj = |x: &[f64]| x[0];
        let c = |_: &[f64]| -1.0; // never feasible
        let problem = ConstrainedProblem::new(&obj).subject_to(&c);
        let mut opt = EasyBo::new(bounds);
        opt.initial_points(4).max_evals(10).seed(1);
        assert!(matches!(
            opt.run_constrained(&problem),
            Err(EasyBoError::DegenerateObjective)
        ));
    }

    #[test]
    fn unconstrained_problem_matches_plain_run_shape() {
        let bounds = Bounds::new(vec![(-1.0, 1.0)]).unwrap();
        let obj = |x: &[f64]| -(x[0] - 0.4) * (x[0] - 0.4);
        let problem = ConstrainedProblem::new(&obj);
        let mut opt = EasyBo::new(bounds);
        opt.batch_size(2).initial_points(6).max_evals(25).seed(2);
        let r = opt.run_constrained(&problem).unwrap();
        assert!(r.best_value > -0.02, "best {}", r.best_value);
    }
}
