//! Acquisition functions over a fitted Gaussian process.
//!
//! All acquisitions operate in the GP's **standardized target space** so
//! that the predictive mean and standard deviation are commensurate — the
//! weighted combination `(1-w)·μ + w·σ` of Eqs. (4)/(8)/(9) is meaningless
//! if μ lives around 690 while σ is O(1).

use easybo_gp::{Gp, IncrementalGp};
use easybo_opt::BatchObjective;

/// `Φ(z)`: standard normal CDF via the Abramowitz–Stegun erf approximation
/// (max absolute error ≈ 1.5e-7, ample for acquisition ranking).
pub fn normal_cdf(z: f64) -> f64 {
    0.5 * (1.0 + erf(z / std::f64::consts::SQRT_2))
}

/// `φ(z)`: standard normal PDF.
pub fn normal_pdf(z: f64) -> f64 {
    (-0.5 * z * z).exp() / (2.0 * std::f64::consts::PI).sqrt()
}

/// Error function, Abramowitz–Stegun 7.1.26.
fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let poly = t
        * (0.254829592
            + t * (-0.284496736 + t * (1.421413741 + t * (-1.453152027 + t * 1.061405429))));
    sign * (1.0 - poly * (-x * x).exp())
}

/// Expected improvement over the incumbent `best` (both in raw units):
/// `EI(x) = σ·[z·Φ(z) + φ(z)]` with `z = (μ - best)/σ`.
///
/// # Example
///
/// ```
/// use easybo::acquisition::expected_improvement;
/// use easybo_gp::{Gp, GpConfig};
///
/// # fn main() -> Result<(), easybo_gp::GpError> {
/// let x = vec![vec![0.0], vec![1.0]];
/// let y = vec![0.0, 1.0];
/// let gp = Gp::fit(x, y, GpConfig::default())?;
/// // Unvisited territory has positive EI; the incumbent itself near zero.
/// assert!(expected_improvement(&gp, &[0.5], 1.0) >= 0.0);
/// # Ok(())
/// # }
/// ```
pub fn expected_improvement(gp: &Gp, x: &[f64], best: f64) -> f64 {
    let (mu_z, var_z) = gp.predict_standardized(x);
    let best_z = gp.scaler().transform(best);
    let sigma = var_z.max(0.0).sqrt();
    if sigma < 1e-12 {
        return (mu_z - best_z).max(0.0);
    }
    let z = (mu_z - best_z) / sigma;
    sigma * (z * normal_cdf(z) + normal_pdf(z))
}

/// Probability of improvement over the incumbent `best` (raw units).
pub fn probability_of_improvement(gp: &Gp, x: &[f64], best: f64) -> f64 {
    let (mu_z, var_z) = gp.predict_standardized(x);
    let best_z = gp.scaler().transform(best);
    let sigma = var_z.max(0.0).sqrt();
    if sigma < 1e-12 {
        return if mu_z > best_z { 1.0 } else { 0.0 };
    }
    normal_cdf((mu_z - best_z) / sigma)
}

/// Upper confidence bound `μ + κ·σ` in standardized space (Eq. 3). For
/// maximization this is the "optimistic" strategy the paper calls LCB
/// (after the minimization convention of Srinivas et al.).
pub fn ucb(gp: &Gp, x: &[f64], kappa: f64) -> f64 {
    let (mu_z, var_z) = gp.predict_standardized(x);
    mu_z + kappa * var_z.max(0.0).sqrt()
}

/// The weighted acquisition of pBO/EasyBO (Eqs. 4 and 8):
/// `α(x, w) = (1-w)·μ(x) + w·σ(x)` in standardized space.
pub fn weighted(gp: &Gp, x: &[f64], w: f64) -> f64 {
    let (mu_z, var_z) = gp.predict_standardized(x);
    (1.0 - w) * mu_z + w * var_z.max(0.0).sqrt()
}

/// The penalized EasyBO acquisition (Eq. 9): mean from the *base* GP,
/// uncertainty `σ̂` from the *augmented* GP (busy points hallucinated).
///
/// The base mean uses the O(n·d) mean-only path (no triangular solve);
/// only the augmented model pays for a variance query.
pub fn weighted_penalized(base: &Gp, augmented: &Gp, x: &[f64], w: f64) -> f64 {
    let mu_z = base.scaler().transform(base.predict_mean(x));
    let (_, var_hat) = augmented.predict_standardized(x);
    (1.0 - w) * mu_z + w * var_hat.max(0.0).sqrt()
}

/// Batched [`weighted`] over a whole candidate set: one `K*` assembly and
/// one multi-RHS triangular solve for the entire batch. Each value is
/// bit-identical to the scalar call on the same point.
pub fn weighted_batch(gp: &Gp, xs: &[Vec<f64>], w: f64) -> Vec<f64> {
    gp.predict_standardized_batch(xs)
        .into_iter()
        .map(|(mu_z, var_z)| (1.0 - w) * mu_z + w * var_z.max(0.0).sqrt())
        .collect()
}

/// Batched [`weighted_penalized`]: base means via the mean-only batch path,
/// `σ̂` via the augmented GP's batched posterior. Bit-identical per point to
/// the scalar call.
pub fn weighted_penalized_batch(base: &Gp, augmented: &Gp, xs: &[Vec<f64>], w: f64) -> Vec<f64> {
    let means = base.predict_mean_batch(xs);
    augmented
        .predict_standardized_batch(xs)
        .into_iter()
        .zip(means)
        .map(|((_, var_hat), mean)| {
            let mu_z = base.scaler().transform(mean);
            (1.0 - w) * mu_z + w * var_hat.max(0.0).sqrt()
        })
        .collect()
}

/// [`weighted`] packaged as a [`BatchObjective`]: the multi-start maximizer
/// scores its probe batch through [`weighted_batch`] and falls back to the
/// scalar path inside Nelder–Mead refinement.
pub struct WeightedAcq<'a> {
    /// The fitted surrogate.
    pub gp: &'a Gp,
    /// Exploration weight `w ∈ [0, 1]`.
    pub w: f64,
}

impl BatchObjective for WeightedAcq<'_> {
    fn eval(&self, x: &[f64]) -> f64 {
        weighted(self.gp, x, self.w)
    }

    fn eval_batch(&self, xs: &[Vec<f64>]) -> Vec<f64> {
        weighted_batch(self.gp, xs, self.w)
    }
}

/// [`weighted_penalized`] packaged as a [`BatchObjective`].
pub struct PenalizedAcq<'a> {
    /// The un-augmented surrogate supplying the predictive mean.
    pub base: &'a Gp,
    /// The pseudo-point-augmented surrogate supplying `σ̂`.
    pub augmented: &'a Gp,
    /// Exploration weight `w ∈ [0, 1]`.
    pub w: f64,
}

impl BatchObjective for PenalizedAcq<'_> {
    fn eval(&self, x: &[f64]) -> f64 {
        weighted_penalized(self.base, self.augmented, x, self.w)
    }

    fn eval_batch(&self, xs: &[Vec<f64>]) -> Vec<f64> {
        weighted_penalized_batch(self.base, self.augmented, xs, self.w)
    }
}

/// [`weighted_penalized`] over an [`IncrementalGp`] whose pseudo-point
/// stack currently holds the hallucinated busy points: the *base* mean
/// comes from the cached base-alpha prefix ([`IncrementalGp::predict_mean_base`])
/// and `σ̂` from the augmented model — no cloned GP anywhere. Bit-identical
/// to [`PenalizedAcq`] over `(base, base.augment(busy))`.
pub struct PenalizedAcqInc<'a> {
    /// Surrogate with the busy points pushed as pseudo-points.
    pub inc: &'a IncrementalGp,
    /// Exploration weight `w ∈ [0, 1]`.
    pub w: f64,
}

impl BatchObjective for PenalizedAcqInc<'_> {
    fn eval(&self, x: &[f64]) -> f64 {
        let gp = self.inc.gp();
        let mu_z = gp.scaler().transform(self.inc.predict_mean_base(x));
        let (_, var_hat) = gp.predict_standardized(x);
        (1.0 - self.w) * mu_z + self.w * var_hat.max(0.0).sqrt()
    }

    fn eval_batch(&self, xs: &[Vec<f64>]) -> Vec<f64> {
        let gp = self.inc.gp();
        let means = self.inc.predict_mean_base_batch(xs);
        gp.predict_standardized_batch(xs)
            .into_iter()
            .zip(means)
            .map(|((_, var_hat), mean)| {
                let mu_z = gp.scaler().transform(mean);
                (1.0 - self.w) * mu_z + self.w * var_hat.max(0.0).sqrt()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use easybo_gp::{GpConfig, KernelFamily};

    fn toy_gp() -> Gp {
        let x = vec![vec![0.0], vec![0.25], vec![0.5], vec![0.75], vec![1.0]];
        let y = vec![0.0, 0.7, 1.0, 0.7, 0.0];
        let mut theta = vec![-1.2, 0.0];
        theta[1] = 0.0;
        Gp::fit_with_params(
            x,
            y,
            KernelFamily::SquaredExponential,
            theta,
            (1e-6f64).ln(),
        )
        .unwrap()
    }

    #[test]
    fn normal_cdf_reference_values() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-7);
        assert!((normal_cdf(1.0) - 0.841_344_7).abs() < 1e-6);
        assert!((normal_cdf(-1.0) - 0.158_655_3).abs() < 1e-6);
        assert!((normal_cdf(3.0) - 0.998_650_1).abs() < 1e-6);
        assert!(normal_cdf(8.0) > 0.999_999);
        assert!(normal_cdf(-8.0) < 1e-6);
    }

    #[test]
    fn normal_pdf_reference_values() {
        assert!((normal_pdf(0.0) - 0.398_942_28).abs() < 1e-8);
        assert!((normal_pdf(1.0) - 0.241_970_72).abs() < 1e-8);
        assert_eq!(normal_pdf(1.5), normal_pdf(-1.5));
    }

    #[test]
    fn ei_nonnegative_and_zero_at_interpolated_points() {
        let gp = toy_gp();
        let best = 1.0;
        for q in [0.0, 0.1, 0.33, 0.5, 0.9, 1.3] {
            let ei = expected_improvement(&gp, &[q], best);
            assert!(ei >= 0.0, "EI({q}) = {ei}");
        }
        // At the incumbent with ~zero variance EI is ~0.
        assert!(expected_improvement(&gp, &[0.5], best) < 1e-3);
    }

    #[test]
    fn ei_prefers_unexplored_over_known_bad() {
        let gp = toy_gp();
        let far = expected_improvement(&gp, &[2.0], 1.0);
        let known_bad = expected_improvement(&gp, &[0.0], 1.0);
        assert!(far > known_bad);
    }

    #[test]
    fn pi_bounded_and_monotone_in_mean() {
        let gp = toy_gp();
        for q in [0.0, 0.5, 1.0, 2.0] {
            let pi = probability_of_improvement(&gp, &[q], 0.5);
            assert!((0.0..=1.0).contains(&pi), "PI({q}) = {pi}");
        }
        // Near the peak, improving over a low bar is more likely than at the
        // valley.
        let at_peak = probability_of_improvement(&gp, &[0.5], 0.5);
        let at_valley = probability_of_improvement(&gp, &[0.0], 0.5);
        assert!(at_peak > at_valley);
    }

    #[test]
    fn ucb_increases_with_kappa_where_uncertain() {
        let gp = toy_gp();
        let q = [3.0]; // far from data: high sigma
        assert!(ucb(&gp, &q, 2.0) > ucb(&gp, &q, 0.1));
        // With kappa=0, UCB is the standardized mean.
        let (mu, _) = gp.predict_standardized(&q);
        assert!((ucb(&gp, &q, 0.0) - mu).abs() < 1e-12);
    }

    #[test]
    fn weighted_interpolates_exploitation_and_exploration() {
        let gp = toy_gp();
        let q = [0.5];
        let (mu, var) = gp.predict_standardized(&q);
        assert!((weighted(&gp, &q, 0.0) - mu).abs() < 1e-12);
        assert!((weighted(&gp, &q, 1.0) - var.max(0.0).sqrt()).abs() < 1e-12);
        // w=1 prefers the unexplored region; w=0 prefers the peak.
        assert!(weighted(&gp, &[3.0], 1.0) > weighted(&gp, &[0.5], 1.0));
        assert!(weighted(&gp, &[0.5], 0.0) > weighted(&gp, &[0.0], 0.0));
    }

    #[test]
    fn penalized_acquisition_avoids_busy_point() {
        let gp = toy_gp();
        let busy = vec![vec![1.6]];
        let aug = gp.augment(&busy).unwrap();
        // Pure exploration (w=1): the busy point loses attractiveness.
        let at_busy = weighted_penalized(&gp, &aug, &[1.6], 1.0);
        let un_pen = weighted(&gp, &[1.6], 1.0);
        assert!(at_busy < un_pen * 0.5, "{at_busy} vs {un_pen}");
        // Elsewhere, far from the busy point, nothing changes.
        let elsewhere_pen = weighted_penalized(&gp, &aug, &[-1.0], 1.0);
        let elsewhere = weighted(&gp, &[-1.0], 1.0);
        assert!((elsewhere_pen - elsewhere).abs() < 1e-6);
    }

    #[test]
    fn penalized_mean_comes_from_base_gp() {
        let gp = toy_gp();
        let aug = gp.augment(&[vec![0.3]]).unwrap();
        // With w=0 the penalized acquisition equals the base mean (up to
        // the scaler round-trip of the mean-only fast path).
        let q = [0.3];
        let (mu, _) = gp.predict_standardized(&q);
        assert!((weighted_penalized(&gp, &aug, &q, 0.0) - mu).abs() < 1e-10);
    }

    #[test]
    fn batch_acquisitions_bitwise_match_scalar() {
        let gp = toy_gp();
        let aug = gp.augment(&[vec![0.4], vec![1.2]]).unwrap();
        let queries: Vec<Vec<f64>> = (0..11).map(|i| vec![i as f64 * 0.17 - 0.3]).collect();
        for w in [0.0, 0.35, 1.0] {
            let wb = weighted_batch(&gp, &queries, w);
            let pb = weighted_penalized_batch(&gp, &aug, &queries, w);
            let wa = WeightedAcq { gp: &gp, w };
            let pa = PenalizedAcq {
                base: &gp,
                augmented: &aug,
                w,
            };
            let wa_batch = wa.eval_batch(&queries);
            let pa_batch = pa.eval_batch(&queries);
            for (i, q) in queries.iter().enumerate() {
                // Exact equality: the batch path must not perturb a bit.
                assert_eq!(wb[i], weighted(&gp, q, w), "weighted at {i}, w = {w}");
                assert_eq!(
                    pb[i],
                    weighted_penalized(&gp, &aug, q, w),
                    "penalized at {i}, w = {w}"
                );
                assert_eq!(wa_batch[i], wa.eval(q));
                assert_eq!(pa_batch[i], pa.eval(q));
            }
        }
    }

    #[test]
    fn incremental_penalized_acq_bitwise_matches_cloned() {
        let gp = toy_gp();
        let busy = vec![vec![0.4], vec![1.2]];
        let aug = gp.augment(&busy).unwrap();
        let mut inc = IncrementalGp::new(toy_gp());
        for b in &busy {
            inc.push_pseudo_mean(b.clone()).unwrap();
        }
        let queries: Vec<Vec<f64>> = (0..11).map(|i| vec![i as f64 * 0.17 - 0.3]).collect();
        for w in [0.0, 0.35, 1.0] {
            let legacy = PenalizedAcq {
                base: &gp,
                augmented: &aug,
                w,
            };
            let fast = PenalizedAcqInc { inc: &inc, w };
            let legacy_batch = legacy.eval_batch(&queries);
            let fast_batch = fast.eval_batch(&queries);
            for (i, q) in queries.iter().enumerate() {
                assert_eq!(
                    legacy.eval(q).to_bits(),
                    fast.eval(q).to_bits(),
                    "scalar at {i}, w = {w}"
                );
                assert_eq!(
                    legacy_batch[i].to_bits(),
                    fast_batch[i].to_bits(),
                    "batch at {i}, w = {w}"
                );
            }
        }
    }

    #[test]
    fn trained_gp_works_with_acquisitions() {
        let x: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64 / 9.0]).collect();
        let y: Vec<f64> = x.iter().map(|p| -(p[0] - 0.6).powi(2)).collect();
        let gp = Gp::fit(x, y, GpConfig::default()).unwrap();
        let ei = expected_improvement(&gp, &[0.55], 0.0);
        assert!(ei.is_finite());
    }
}
