//! Core-side snapshot payloads.
//!
//! The `easybo-persist` container stores the policy's state as an opaque
//! byte section so executors stay free of persistence concerns; this
//! module defines what those bytes *are* for [`EasyBoAsyncPolicy`]: a
//! versioned little-endian blob carrying the RNG stream, the fallback
//! counter, and the surrogate manager's exact cached state (GP
//! factorization included). It also provides the FNV-1a configuration
//! fingerprint that guards resume against mismatched optimizer settings.
//!
//! [`EasyBoAsyncPolicy`]: crate::policies::EasyBoAsyncPolicy

use easybo_gp::{GpState, KernelFamily};
use easybo_persist::{ByteReader, ByteWriter, PersistError};

use crate::surrogate::SurrogateState;

/// Version stamp of the policy blob layout. Bump on any layout change;
/// resume refuses blobs from other versions.
pub(crate) const POLICY_BLOB_VERSION: u32 = 1;

/// Decoded contents of an [`EasyBoAsyncPolicy`] state blob.
///
/// [`EasyBoAsyncPolicy`]: crate::policies::EasyBoAsyncPolicy
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct PolicyStateBlob {
    /// xoshiro256** word state of the policy's RNG.
    pub rng: [u64; 4],
    /// Surrogate-fit fallback counter.
    pub fallbacks: usize,
    /// Surrogate manager state.
    pub surrogate: SurrogateState,
}

pub(crate) fn kernel_tag(k: KernelFamily) -> u8 {
    match k {
        KernelFamily::SquaredExponential => 0,
        KernelFamily::Matern52 => 1,
        KernelFamily::Matern32 => 2,
        KernelFamily::RationalQuadratic => 3,
    }
}

fn kernel_from_tag(tag: u8) -> Result<KernelFamily, PersistError> {
    Ok(match tag {
        0 => KernelFamily::SquaredExponential,
        1 => KernelFamily::Matern52,
        2 => KernelFamily::Matern32,
        3 => KernelFamily::RationalQuadratic,
        t => return Err(PersistError::decode(format!("unknown kernel tag {t}"))),
    })
}

fn put_gp_state(w: &mut ByteWriter, s: &GpState) {
    w.put_u8(kernel_tag(s.kernel));
    w.put_usize(s.dim);
    w.put_f64s(&s.theta);
    w.put_f64(s.log_noise);
    w.put_usize(s.x.len());
    for row in &s.x {
        w.put_f64s(row);
    }
    w.put_f64s(&s.z);
    w.put_f64(s.scaler_mean);
    w.put_f64(s.scaler_std);
    w.put_f64s(&s.chol_factor);
    w.put_f64(s.chol_jitter);
    w.put_f64s(&s.alpha);
    w.put_usize(s.n_real);
}

fn get_gp_state(r: &mut ByteReader<'_>) -> Result<GpState, PersistError> {
    let kernel = kernel_from_tag(r.get_u8()?)?;
    let dim = r.get_usize()?;
    let theta = r.get_f64s()?;
    let log_noise = r.get_f64()?;
    let n = r.get_len(8)?;
    let mut x = Vec::with_capacity(n);
    for _ in 0..n {
        x.push(r.get_f64s()?);
    }
    Ok(GpState {
        kernel,
        dim,
        theta,
        log_noise,
        x,
        z: r.get_f64s()?,
        scaler_mean: r.get_f64()?,
        scaler_std: r.get_f64()?,
        chol_factor: r.get_f64s()?,
        chol_jitter: r.get_f64()?,
        alpha: r.get_f64s()?,
        n_real: r.get_usize()?,
    })
}

/// Serializes one surrogate manager state (shared by every blob layout).
fn put_surrogate_state(w: &mut ByteWriter, s: &SurrogateState) {
    w.put_usize(s.fitted_n);
    w.put_usize(s.last_trained_n);
    w.put_f64(s.fence);
    match &s.warm {
        Some(warm) => {
            w.put_bool(true);
            w.put_f64s(warm);
        }
        None => w.put_bool(false),
    }
    match &s.gp {
        Some(gp) => {
            w.put_bool(true);
            put_gp_state(w, gp);
        }
        None => w.put_bool(false),
    }
}

fn get_surrogate_state(r: &mut ByteReader<'_>) -> Result<SurrogateState, PersistError> {
    let fitted_n = r.get_usize()?;
    let last_trained_n = r.get_usize()?;
    let fence = r.get_f64()?;
    let warm = if r.get_bool()? {
        Some(r.get_f64s()?)
    } else {
        None
    };
    let gp = if r.get_bool()? {
        Some(get_gp_state(r)?)
    } else {
        None
    };
    Ok(SurrogateState {
        fitted_n,
        last_trained_n,
        warm,
        fence,
        gp,
    })
}

/// Encodes the policy's mutable state into the opaque snapshot blob.
pub(crate) fn encode_policy_state(
    rng: [u64; 4],
    fallbacks: usize,
    surrogate: &SurrogateState,
) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_u32(POLICY_BLOB_VERSION);
    for word in rng {
        w.put_u64(word);
    }
    w.put_usize(fallbacks);
    put_surrogate_state(&mut w, surrogate);
    w.into_bytes()
}

/// Decodes a blob written by [`encode_policy_state`].
pub(crate) fn decode_policy_state(bytes: &[u8]) -> Result<PolicyStateBlob, PersistError> {
    let mut r = ByteReader::new(bytes);
    let version = r.get_u32()?;
    if version != POLICY_BLOB_VERSION {
        return Err(PersistError::decode(format!(
            "policy blob version {version} is not supported (this build reads \
             version {POLICY_BLOB_VERSION})"
        )));
    }
    let mut rng = [0u64; 4];
    for word in &mut rng {
        *word = r.get_u64()?;
    }
    let fallbacks = r.get_usize()?;
    let surrogate = get_surrogate_state(&mut r)?;
    r.finish("policy state blob")?;
    Ok(PolicyStateBlob {
        rng,
        fallbacks,
        surrogate,
    })
}

// ---------------------------------------------------------------------
// Portfolio policy blobs: kind-tagged, independently versioned layouts.
//
// The legacy EasyBO blob above starts directly with its version word (a
// small integer). Every portfolio policy added since starts with a
// four-byte ASCII kind tag instead, so a blob handed to the wrong
// policy's `restore_state` fails loudly with a message naming both the
// expected policy and what was found — it can never be half-decoded as
// a different policy's state. Each layout carries its own version
// constant; bump it on any layout change and keep the failure message
// (pinned by `tests/tests/resume.rs`) in sync.
// ---------------------------------------------------------------------

/// Kind tag of [`EpsGreedyPolicy`] blobs (`"EPSG"` little-endian).
///
/// [`EpsGreedyPolicy`]: crate::policies::EpsGreedyPolicy
pub(crate) const EPS_GREEDY_BLOB_TAG: u32 = u32::from_le_bytes(*b"EPSG");
/// Layout version of [`EpsGreedyPolicy`] blobs.
///
/// [`EpsGreedyPolicy`]: crate::policies::EpsGreedyPolicy
pub(crate) const EPS_GREEDY_BLOB_VERSION: u32 = 1;
/// Kind tag of [`PessimisticAsyncPolicy`] blobs (`"PESS"` little-endian).
///
/// [`PessimisticAsyncPolicy`]: crate::policies::PessimisticAsyncPolicy
pub(crate) const PESSIMISTIC_BLOB_TAG: u32 = u32::from_le_bytes(*b"PESS");
/// Layout version of [`PessimisticAsyncPolicy`] blobs.
///
/// [`PessimisticAsyncPolicy`]: crate::policies::PessimisticAsyncPolicy
pub(crate) const PESSIMISTIC_BLOB_VERSION: u32 = 1;
/// Kind tag of [`StandardAsyncPolicy`] blobs (`"STDB"` little-endian).
///
/// [`StandardAsyncPolicy`]: crate::policies::StandardAsyncPolicy
pub(crate) const STANDARD_BLOB_TAG: u32 = u32::from_le_bytes(*b"STDB");
/// Layout version of [`StandardAsyncPolicy`] blobs.
///
/// [`StandardAsyncPolicy`]: crate::policies::StandardAsyncPolicy
pub(crate) const STANDARD_BLOB_VERSION: u32 = 1;

/// Shared core of every portfolio policy blob: RNG words, fallback
/// counter, surrogate manager state.
fn put_policy_core(w: &mut ByteWriter, rng: [u64; 4], fallbacks: usize, s: &SurrogateState) {
    for word in rng {
        w.put_u64(word);
    }
    w.put_usize(fallbacks);
    put_surrogate_state(w, s);
}

fn get_policy_core(r: &mut ByteReader<'_>) -> Result<PolicyStateBlob, PersistError> {
    let mut rng = [0u64; 4];
    for word in &mut rng {
        *word = r.get_u64()?;
    }
    let fallbacks = r.get_usize()?;
    let surrogate = get_surrogate_state(r)?;
    Ok(PolicyStateBlob {
        rng,
        fallbacks,
        surrogate,
    })
}

/// Checks a portfolio blob's kind tag and layout version; the error
/// messages are part of the kill/resume contract and pinned by tests.
fn check_tag_and_version(
    r: &mut ByteReader<'_>,
    policy: &str,
    tag: u32,
    version: u32,
) -> Result<(), PersistError> {
    let found = r.get_u32()?;
    if found != tag {
        return Err(PersistError::decode(format!(
            "not a {policy} policy blob (found tag {found:#010x}, expected {tag:#010x})"
        )));
    }
    let v = r.get_u32()?;
    if v != version {
        return Err(PersistError::decode(format!(
            "{policy} policy blob version {v} is not supported (this build reads \
             version {version})"
        )));
    }
    Ok(())
}

/// Decoded state of an [`EpsGreedyPolicy`] blob.
///
/// [`EpsGreedyPolicy`]: crate::policies::EpsGreedyPolicy
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct EpsGreedyStateBlob {
    /// Shared core (RNG, fallbacks, surrogate).
    pub core: PolicyStateBlob,
    /// Number of ε-branch (uniform-random) selections taken so far.
    pub explores: u64,
    /// Number of greedy (posterior-mean) selections taken so far.
    pub exploits: u64,
}

/// Encodes [`EpsGreedyPolicy`] state (layout `EPSG` v1).
///
/// [`EpsGreedyPolicy`]: crate::policies::EpsGreedyPolicy
pub(crate) fn encode_eps_greedy_state(
    rng: [u64; 4],
    fallbacks: usize,
    explores: u64,
    exploits: u64,
    surrogate: &SurrogateState,
) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_u32(EPS_GREEDY_BLOB_TAG);
    w.put_u32(EPS_GREEDY_BLOB_VERSION);
    w.put_u64(explores);
    w.put_u64(exploits);
    put_policy_core(&mut w, rng, fallbacks, surrogate);
    w.into_bytes()
}

/// Decodes a blob written by [`encode_eps_greedy_state`].
pub(crate) fn decode_eps_greedy_state(bytes: &[u8]) -> Result<EpsGreedyStateBlob, PersistError> {
    let mut r = ByteReader::new(bytes);
    check_tag_and_version(
        &mut r,
        "eps-greedy",
        EPS_GREEDY_BLOB_TAG,
        EPS_GREEDY_BLOB_VERSION,
    )?;
    let explores = r.get_u64()?;
    let exploits = r.get_u64()?;
    let core = get_policy_core(&mut r)?;
    r.finish("eps-greedy policy state blob")?;
    Ok(EpsGreedyStateBlob {
        core,
        explores,
        exploits,
    })
}

/// Decoded state of a [`PessimisticAsyncPolicy`] blob.
///
/// [`PessimisticAsyncPolicy`]: crate::policies::PessimisticAsyncPolicy
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct PessimisticStateBlob {
    /// Shared core (RNG, fallbacks, surrogate).
    pub core: PolicyStateBlob,
    /// Number of pessimistic lies hallucinated onto busy points so far.
    pub lies: u64,
}

/// Encodes [`PessimisticAsyncPolicy`] state (layout `PESS` v1).
///
/// [`PessimisticAsyncPolicy`]: crate::policies::PessimisticAsyncPolicy
pub(crate) fn encode_pessimistic_state(
    rng: [u64; 4],
    fallbacks: usize,
    lies: u64,
    surrogate: &SurrogateState,
) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_u32(PESSIMISTIC_BLOB_TAG);
    w.put_u32(PESSIMISTIC_BLOB_VERSION);
    w.put_u64(lies);
    put_policy_core(&mut w, rng, fallbacks, surrogate);
    w.into_bytes()
}

/// Decodes a blob written by [`encode_pessimistic_state`].
pub(crate) fn decode_pessimistic_state(bytes: &[u8]) -> Result<PessimisticStateBlob, PersistError> {
    let mut r = ByteReader::new(bytes);
    check_tag_and_version(
        &mut r,
        "pessimistic",
        PESSIMISTIC_BLOB_TAG,
        PESSIMISTIC_BLOB_VERSION,
    )?;
    let lies = r.get_u64()?;
    let core = get_policy_core(&mut r)?;
    r.finish("pessimistic policy state blob")?;
    Ok(PessimisticStateBlob { core, lies })
}

/// Encodes [`StandardAsyncPolicy`] state (layout `STDB` v1).
///
/// [`StandardAsyncPolicy`]: crate::policies::StandardAsyncPolicy
pub(crate) fn encode_standard_state(
    rng: [u64; 4],
    fallbacks: usize,
    surrogate: &SurrogateState,
) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_u32(STANDARD_BLOB_TAG);
    w.put_u32(STANDARD_BLOB_VERSION);
    put_policy_core(&mut w, rng, fallbacks, surrogate);
    w.into_bytes()
}

/// Decodes a blob written by [`encode_standard_state`].
pub(crate) fn decode_standard_state(bytes: &[u8]) -> Result<PolicyStateBlob, PersistError> {
    let mut r = ByteReader::new(bytes);
    check_tag_and_version(
        &mut r,
        "standard-acquisition",
        STANDARD_BLOB_TAG,
        STANDARD_BLOB_VERSION,
    )?;
    let core = get_policy_core(&mut r)?;
    r.finish("standard-acquisition policy state blob")?;
    Ok(core)
}

/// Kind tag of [`ConstrainedPolicy`] blobs (`"CNST"` little-endian).
///
/// [`ConstrainedPolicy`]: crate::constrained::ConstrainedPolicy
pub(crate) const CONSTRAINED_BLOB_TAG: u32 = u32::from_le_bytes(*b"CNST");
/// Layout version of [`ConstrainedPolicy`] blobs.
///
/// [`ConstrainedPolicy`]: crate::constrained::ConstrainedPolicy
pub(crate) const CONSTRAINED_BLOB_VERSION: u32 = 1;

/// Decoded state of a [`ConstrainedPolicy`] blob. Slack observations are
/// *not* serialized: they are a pure deterministic function of the
/// dataset (re-derived by `sync_slacks` on resume), so persisting them
/// would only create a second source of truth.
///
/// [`ConstrainedPolicy`]: crate::constrained::ConstrainedPolicy
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct ConstrainedStateBlob {
    /// Shared core (RNG, fallbacks, objective surrogate).
    pub core: PolicyStateBlob,
    /// Completed observations whose spec telemetry was already emitted
    /// (prevents duplicate events after a resume).
    pub announced: u64,
    /// Feasible completed observations seen so far.
    pub feasible: u64,
    /// Best feasible objective value seen so far.
    pub best_feasible: Option<f64>,
    /// One surrogate manager state per constraint, in constraint order.
    pub constraints: Vec<SurrogateState>,
}

/// Encodes [`ConstrainedPolicy`] state (layout `CNST` v1).
///
/// [`ConstrainedPolicy`]: crate::constrained::ConstrainedPolicy
pub(crate) fn encode_constrained_state(
    rng: [u64; 4],
    fallbacks: usize,
    announced: u64,
    feasible: u64,
    best_feasible: Option<f64>,
    surrogate: &SurrogateState,
    constraints: &[SurrogateState],
) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_u32(CONSTRAINED_BLOB_TAG);
    w.put_u32(CONSTRAINED_BLOB_VERSION);
    w.put_u64(announced);
    w.put_u64(feasible);
    match best_feasible {
        Some(v) => {
            w.put_bool(true);
            w.put_f64(v);
        }
        None => w.put_bool(false),
    }
    w.put_u32(constraints.len() as u32);
    for c in constraints {
        put_surrogate_state(&mut w, c);
    }
    put_policy_core(&mut w, rng, fallbacks, surrogate);
    w.into_bytes()
}

/// Decodes a blob written by [`encode_constrained_state`].
pub(crate) fn decode_constrained_state(bytes: &[u8]) -> Result<ConstrainedStateBlob, PersistError> {
    let mut r = ByteReader::new(bytes);
    check_tag_and_version(
        &mut r,
        "constrained",
        CONSTRAINED_BLOB_TAG,
        CONSTRAINED_BLOB_VERSION,
    )?;
    let announced = r.get_u64()?;
    let feasible = r.get_u64()?;
    let best_feasible = if r.get_bool()? {
        Some(r.get_f64()?)
    } else {
        None
    };
    let k = r.get_u32()? as usize;
    let mut constraints = Vec::with_capacity(k.min(1024));
    for _ in 0..k {
        constraints.push(get_surrogate_state(&mut r)?);
    }
    let core = get_policy_core(&mut r)?;
    r.finish("constrained policy state blob")?;
    Ok(ConstrainedStateBlob {
        core,
        announced,
        feasible,
        best_feasible,
        constraints,
    })
}

/// Streaming FNV-1a (64-bit) hasher for the snapshot's configuration
/// fingerprint. Deterministic across platforms: everything is hashed as
/// little-endian `u64` words, floats by exact bit pattern.
#[derive(Debug, Clone)]
pub(crate) struct Fingerprint(u64);

impl Fingerprint {
    pub(crate) fn new() -> Self {
        Fingerprint(0xcbf2_9ce4_8422_2325)
    }

    pub(crate) fn push_u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x100_0000_01b3);
        }
    }

    pub(crate) fn push_usize(&mut self, v: usize) {
        self.push_u64(v as u64);
    }

    pub(crate) fn push_f64(&mut self, v: f64) {
        self.push_u64(v.to_bits());
    }

    pub(crate) fn push_bool(&mut self, v: bool) {
        self.push_u64(u64::from(v));
    }

    pub(crate) fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_surrogate_state() -> SurrogateState {
        SurrogateState {
            fitted_n: 12,
            last_trained_n: 10,
            warm: Some(vec![0.1, -0.2, f64::NAN]),
            fence: f64::NEG_INFINITY,
            gp: Some(GpState {
                kernel: KernelFamily::Matern52,
                dim: 2,
                theta: vec![0.5, -0.5, 1.5],
                log_noise: -6.0,
                x: vec![vec![0.1, 0.2], vec![0.3, 0.4]],
                z: vec![-1.0, 1.0],
                scaler_mean: 0.25,
                scaler_std: 2.0,
                chol_factor: vec![1.0, 0.0, 0.5, 0.9],
                chol_jitter: 1e-10,
                alpha: vec![0.7, -0.3],
                n_real: 2,
            }),
        }
    }

    #[test]
    fn policy_blob_round_trips() {
        let state = sample_surrogate_state();
        let bytes = encode_policy_state([1, 2, 3, 4], 7, &state);
        let blob = decode_policy_state(&bytes).unwrap();
        assert_eq!(blob.rng, [1, 2, 3, 4]);
        assert_eq!(blob.fallbacks, 7);
        // NaN breaks PartialEq; compare via re-encoding.
        let re = encode_policy_state(blob.rng, blob.fallbacks, &blob.surrogate);
        assert_eq!(re, bytes);
    }

    #[test]
    fn empty_surrogate_round_trips() {
        let state = SurrogateState {
            fitted_n: 0,
            last_trained_n: 0,
            warm: None,
            fence: f64::NEG_INFINITY,
            gp: None,
        };
        let bytes = encode_policy_state([9, 9, 9, 9], 0, &state);
        let blob = decode_policy_state(&bytes).unwrap();
        assert_eq!(blob.surrogate, state);
    }

    #[test]
    fn wrong_version_is_rejected() {
        let state = sample_surrogate_state();
        let mut bytes = encode_policy_state([0, 0, 0, 1], 0, &state);
        bytes[0] = 0xfe;
        assert!(decode_policy_state(&bytes).is_err());
    }

    #[test]
    fn truncated_blob_is_rejected() {
        let state = sample_surrogate_state();
        let bytes = encode_policy_state([1, 1, 1, 1], 0, &state);
        assert!(decode_policy_state(&bytes[..bytes.len() - 3]).is_err());
    }

    #[test]
    fn unknown_kernel_tag_is_rejected() {
        assert!(kernel_from_tag(200).is_err());
        for k in [
            KernelFamily::SquaredExponential,
            KernelFamily::Matern52,
            KernelFamily::Matern32,
            KernelFamily::RationalQuadratic,
        ] {
            assert_eq!(kernel_from_tag(kernel_tag(k)).unwrap(), k);
        }
    }

    #[test]
    fn eps_greedy_blob_round_trips() {
        let state = sample_surrogate_state();
        let bytes = encode_eps_greedy_state([4, 3, 2, 1], 2, 9, 31, &state);
        let blob = decode_eps_greedy_state(&bytes).unwrap();
        assert_eq!(blob.core.rng, [4, 3, 2, 1]);
        assert_eq!(blob.core.fallbacks, 2);
        assert_eq!(blob.explores, 9);
        assert_eq!(blob.exploits, 31);
        let re = encode_eps_greedy_state(
            blob.core.rng,
            blob.core.fallbacks,
            blob.explores,
            blob.exploits,
            &blob.core.surrogate,
        );
        assert_eq!(re, bytes);
    }

    #[test]
    fn pessimistic_blob_round_trips() {
        let state = sample_surrogate_state();
        let bytes = encode_pessimistic_state([7, 7, 7, 7], 0, 12, &state);
        let blob = decode_pessimistic_state(&bytes).unwrap();
        assert_eq!(blob.lies, 12);
        let re = encode_pessimistic_state(
            blob.core.rng,
            blob.core.fallbacks,
            blob.lies,
            &blob.core.surrogate,
        );
        assert_eq!(re, bytes);
    }

    #[test]
    fn standard_blob_round_trips() {
        let state = sample_surrogate_state();
        let bytes = encode_standard_state([5, 6, 7, 8], 1, &state);
        let blob = decode_standard_state(&bytes).unwrap();
        assert_eq!(blob.rng, [5, 6, 7, 8]);
        assert_eq!(blob.fallbacks, 1);
        let re = encode_standard_state(blob.rng, blob.fallbacks, &blob.surrogate);
        assert_eq!(re, bytes);
    }

    #[test]
    fn constrained_blob_round_trips() {
        let state = sample_surrogate_state();
        let cons = vec![
            sample_surrogate_state(),
            SurrogateState {
                fitted_n: 0,
                last_trained_n: 0,
                warm: None,
                fence: f64::NEG_INFINITY,
                gp: None,
            },
        ];
        let bytes = encode_constrained_state([8, 6, 7, 5], 3, 14, 9, Some(101.5), &state, &cons);
        let blob = decode_constrained_state(&bytes).unwrap();
        assert_eq!(blob.core.rng, [8, 6, 7, 5]);
        assert_eq!(blob.core.fallbacks, 3);
        assert_eq!(blob.announced, 14);
        assert_eq!(blob.feasible, 9);
        assert_eq!(blob.best_feasible, Some(101.5));
        assert_eq!(blob.constraints.len(), 2);
        let re = encode_constrained_state(
            blob.core.rng,
            blob.core.fallbacks,
            blob.announced,
            blob.feasible,
            blob.best_feasible,
            &blob.core.surrogate,
            &blob.constraints,
        );
        assert_eq!(re, bytes);

        // No constraints, no feasible point yet.
        let bytes = encode_constrained_state([1; 4], 0, 0, 0, None, &state, &[]);
        let blob = decode_constrained_state(&bytes).unwrap();
        assert_eq!(blob.best_feasible, None);
        assert!(blob.constraints.is_empty());
    }

    #[test]
    fn constrained_blob_rejects_other_policies_and_truncation() {
        let state = sample_surrogate_state();
        let std_blob = encode_standard_state([1, 2, 3, 4], 0, &state);
        let err = decode_constrained_state(&std_blob).unwrap_err().to_string();
        assert!(err.contains("constrained"), "{err}");
        let bytes = encode_constrained_state([1; 4], 0, 2, 1, None, &state, &[]);
        assert!(decode_constrained_state(&bytes[..bytes.len() - 2]).is_err());
        let mut bad = bytes.clone();
        bad[4] = 0xfe;
        let err = decode_constrained_state(&bad).unwrap_err().to_string();
        assert!(err.contains("constrained policy blob version"), "{err}");
    }

    #[test]
    fn portfolio_blobs_reject_cross_policy_and_legacy_confusion() {
        let state = sample_surrogate_state();
        let eps = encode_eps_greedy_state([1, 2, 3, 4], 0, 1, 2, &state);
        let pess = encode_pessimistic_state([1, 2, 3, 4], 0, 1, &state);
        let std_blob = encode_standard_state([1, 2, 3, 4], 0, &state);
        let legacy = encode_policy_state([1, 2, 3, 4], 0, &state);
        // Every decoder refuses every other policy's blob, with a
        // message naming the expected kind.
        let err = decode_eps_greedy_state(&pess).unwrap_err().to_string();
        assert!(err.contains("eps-greedy"), "{err}");
        let err = decode_pessimistic_state(&std_blob).unwrap_err().to_string();
        assert!(err.contains("pessimistic"), "{err}");
        let err = decode_standard_state(&eps).unwrap_err().to_string();
        assert!(err.contains("standard-acquisition"), "{err}");
        // Legacy EasyBO blobs (version-first layout) are rejected too, in
        // both directions.
        assert!(decode_eps_greedy_state(&legacy).is_err());
        assert!(decode_policy_state(&eps).is_err());
    }

    #[test]
    fn portfolio_blob_version_mismatch_messages_name_the_policy() {
        let state = sample_surrogate_state();
        for (bytes, name) in [
            (
                encode_eps_greedy_state([0; 4], 0, 0, 0, &state),
                "eps-greedy",
            ),
            (
                encode_pessimistic_state([0; 4], 0, 0, &state),
                "pessimistic",
            ),
            (
                encode_standard_state([0; 4], 0, &state),
                "standard-acquisition",
            ),
        ] {
            // Corrupt the version word (bytes 4..8) but keep the tag.
            let mut bad = bytes.clone();
            bad[4] = 0xfe;
            let err = match name {
                "eps-greedy" => decode_eps_greedy_state(&bad).unwrap_err().to_string(),
                "pessimistic" => decode_pessimistic_state(&bad).unwrap_err().to_string(),
                _ => decode_standard_state(&bad).unwrap_err().to_string(),
            };
            assert!(
                err.contains(&format!("{name} policy blob version")),
                "{name}: {err}"
            );
            assert!(err.contains("is not supported"), "{name}: {err}");
        }
    }

    #[test]
    fn truncated_portfolio_blobs_are_rejected() {
        let state = sample_surrogate_state();
        let bytes = encode_eps_greedy_state([1; 4], 0, 5, 6, &state);
        assert!(decode_eps_greedy_state(&bytes[..bytes.len() - 2]).is_err());
        let bytes = encode_pessimistic_state([1; 4], 0, 5, &state);
        assert!(decode_pessimistic_state(&bytes[..bytes.len() - 2]).is_err());
        let bytes = encode_standard_state([1; 4], 0, &state);
        assert!(decode_standard_state(&bytes[..bytes.len() - 2]).is_err());
    }

    #[test]
    fn fingerprint_is_order_sensitive() {
        let mut a = Fingerprint::new();
        a.push_u64(1);
        a.push_u64(2);
        let mut b = Fingerprint::new();
        b.push_u64(2);
        b.push_u64(1);
        assert_ne!(a.finish(), b.finish());
        // FNV-1a of empty input is the offset basis.
        assert_eq!(Fingerprint::new().finish(), 0xcbf2_9ce4_8422_2325);
    }
}
