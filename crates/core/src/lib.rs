//! EasyBO — Efficient ASYnchronous batch Bayesian Optimization for analog
//! circuit synthesis.
//!
//! This crate is a from-scratch reproduction of the DAC 2020 paper
//! *"An Efficient Asynchronous Batch Bayesian Optimization Approach for
//! Analog Circuit Synthesis"* (Zhang, Yang, Zhou, Zeng). It provides:
//!
//! * The **EasyBO algorithm** (§III): asynchronous batch BO with the
//!   randomized-weight acquisition `α(x, w) = (1-w)·μ(x) + w·σ̂(x)`,
//!   `w = κ/(κ+1)`, `κ ~ U[0, λ]` (Eq. 8), and the hallucinated-pseudo-point
//!   penalization scheme (Eq. 9) that collapses predictive uncertainty
//!   around busy points.
//! * Every baseline the paper compares against: sequential [EI], [PI],
//!   LCB/[UCB] BO, the synchronous batch algorithms pBO and pHCBO (Hu, Li &
//!   Huang, ICCAD'18), and the EasyBO ablations (EasyBO-S, EasyBO-A,
//!   EasyBO-SP).
//! * Extensions beyond the paper: BUCB (Desautels et al.) and Local
//!   Penalization (González et al.) synchronous batch policies.
//! * A high-level [`EasyBo`] optimizer API for end users, and an
//!   [`Algorithm`] registry used by the benchmark harness to regenerate the
//!   paper's tables and figures.
//!
//! # Quickstart
//!
//! ```
//! use easybo::EasyBo;
//! use easybo_opt::Bounds;
//!
//! # fn main() -> Result<(), easybo::EasyBoError> {
//! let bounds = Bounds::new(vec![(-3.0, 3.0), (-2.0, 2.0)])?;
//! let result = EasyBo::new(bounds)
//!     .batch_size(4)
//!     .max_evals(40)
//!     .initial_points(10)
//!     .seed(7)
//!     .run(|x| -(x[0].powi(2) + x[1].powi(2)))?; // maximize
//! assert!(result.best_value > -0.5);
//! # Ok(())
//! # }
//! ```
//!
//! [EI]: acquisition::expected_improvement
//! [PI]: acquisition::probability_of_improvement
//! [UCB]: acquisition::ucb

pub mod acquisition;
mod algorithms;
mod constrained;
mod error;
mod optimizer;
mod persistence;
pub mod policies;
mod surrogate;
mod weight;

pub use algorithms::{Algorithm, AlgorithmMode, RunSetup};
pub use constrained::{ConstrainedPolicy, ConstrainedProblem};
pub use easybo_exec::{FailureAction, FaultPlan, FaultyBlackBox, RetryPolicy};
pub use easybo_opt::Parallelism;
pub use easybo_persist::{load_snapshot, PersistError, RunSnapshot, FORMAT_VERSION};
pub use easybo_telemetry::{
    chrome_trace_json, gate, parse_aggregate, parse_baseline, render_span_tree, span_tree,
    AggregateReport, ChromeTraceSink, Event, GateBound, JsonlSink, Recorder, Regression, ReportSet,
    RunReport, ScrapeServer, SessionStatus, SpanGuard, SpanNode, Stat, StatusBoard, Telemetry,
    TimedEvent, TraceCsvSink,
};
pub use error::EasyBoError;
pub use optimizer::{EasyBo, OptimizationResult};
pub use surrogate::{SurrogateConfig, SurrogateManager, SurrogateState};
pub use weight::{sample_kappa_weight, WeightSchedule, DEFAULT_LAMBDA};

/// Convenience result alias used across the crate.
pub type Result<T> = std::result::Result<T, EasyBoError>;
