//! The benchmark algorithm registry: every optimizer evaluated in the
//! paper's Tables I/II (plus the BUCB/LP extensions and the asynchronous
//! portfolio from the wider literature), behind a single dispatcher so
//! the benchmark harness can sweep the full matrix.
//!
//! # Exhaustiveness invariant
//!
//! Every `match` over [`Algorithm`] in this module — [`Algorithm::index`],
//! [`Algorithm::key`], [`Algorithm::mode`], [`Algorithm::label`],
//! [`Algorithm::async_policy`], [`Algorithm::sync_policy`] and the
//! metaheuristic dispatcher — is written **without a `_` arm** on
//! purpose. Adding a variant without wiring its index, key, label, mode
//! and policy constructor is a compile error, not a silently missing
//! bench row; the registry tests then force `COUNT`, `all()` and
//! `from_key` to agree. Keep it that way: a new algorithm that compiles
//! is a new algorithm the bench tables and acceptance matrix actually
//! cover.

use easybo_exec::{
    AsyncPolicy, BlackBox, Dataset, RetryPolicy, RunResult, RunTrace, Schedule, SyncBatchPolicy,
    VirtualExecutor,
};
use easybo_opt::{sampling, Bounds, DeConfig, DifferentialEvolution, Parallelism};
use easybo_telemetry::Telemetry;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::policies::{
    AcqOptConfig, BucbPolicy, EasyBoAsyncPolicy, EasyBoSyncPolicy, EpsGreedyPolicy,
    LocalPenalizationPolicy, MacePolicy, PboPolicy, PessimisticAsyncPolicy, PortfolioPolicy,
    SequentialAcquisition, SequentialBoPolicy, StandardAsyncPolicy, ThompsonSamplingPolicy,
};
use crate::surrogate::SurrogateConfig;

/// Scheduling mode of an [`Algorithm`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AlgorithmMode {
    /// Population-based metaheuristic, evaluated one point at a time.
    Evolutionary,
    /// Model-based, one query per completed evaluation, single worker.
    Sequential,
    /// Barrier-synchronized batches of `B` queries.
    SyncBatch,
    /// A new query the moment any of the `B` workers idles.
    AsyncBatch,
}

/// Every optimization algorithm in the benchmark matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Algorithm {
    /// Differential evolution baseline (Liu et al., ref. \[13\]).
    De,
    /// Sequential BO with expected improvement.
    Ei,
    /// Sequential BO with the optimistic confidence bound (paper: "LCB").
    Lcb,
    /// Sequential EasyBO (randomized-weight acquisition, one worker).
    EasyBoSeq,
    /// pBO: synchronous batch with the uniform weight grid (ref. \[23\]).
    Pbo,
    /// pHCBO: pBO plus the high-coverage distance penalty (ref. \[23\]).
    Phcbo,
    /// EasyBO-S: synchronous, randomized weights, no penalization.
    EasyBoS,
    /// EasyBO-A: asynchronous, randomized weights, no penalization.
    EasyBoA,
    /// EasyBO-SP: synchronous, randomized weights, hallucination penalty.
    EasyBoSp,
    /// EasyBO: asynchronous + hallucination penalty — the paper's method.
    EasyBo,
    /// Batch UCB extension (Desautels et al., ref. \[32\]).
    Bucb,
    /// Local Penalization extension (González et al., ref. \[33\]).
    Lp,
    /// Thompson sampling extension (sequential; paper ref. \[30\]).
    Ts,
    /// GP-Hedge acquisition portfolio extension (sequential; ref. \[31\]).
    Portfolio,
    /// Particle swarm optimization baseline (paper refs. \[14\]-\[17\]).
    Pso,
    /// Simulated annealing baseline (paper refs. \[10\]-\[12\]).
    Sa,
    /// CMA-ES baseline (modern evolutionary representative).
    CmaEs,
    /// MACE: multi-objective acquisition ensemble batch BO (§II-C, ref. \[22\]).
    Mace,
    /// Asynchronous ε-greedy (De Ath et al. 2020, arXiv:2010.07615).
    EpsGreedy,
    /// Pessimistic asynchronous sampling (Volk et al. 2024, arXiv:2406.15291).
    PessimisticBo,
    /// Standard-acquisition async baseline (Riegler et al., arXiv:2603.13501).
    StandardBo,
}

/// Everything [`Algorithm::run_with`] needs beyond the black box: budgets,
/// seed, worker-thread knob, retry policy and telemetry sink.
///
/// [`Algorithm::run`] is `run_with` at the defaults (no retries, disabled
/// telemetry, default thread pool) and reproduces the legacy dispatcher
/// bit for bit.
pub struct RunSetup {
    /// Worker count for batch algorithms (ignored otherwise).
    pub batch: usize,
    /// Total evaluation budget for BO algorithms, including `n_init`.
    pub max_evals: usize,
    /// Initial Latin-hypercube design size.
    pub n_init: usize,
    /// Evaluation budget for the metaheuristic baselines.
    pub de_evals: usize,
    /// Controls the initial design, all stochastic selection, and the
    /// surrogate training restarts.
    pub seed: u64,
    /// Worker threads for GP training and acquisition maximization.
    /// Results are bit-identical at any setting.
    pub parallelism: Parallelism,
    /// Task retry policy for the resilient async driver. Ignored by
    /// sync-batch and evolutionary algorithms (their drivers have no
    /// retry machinery).
    pub retry: RetryPolicy,
    /// Telemetry handle threaded through the executor. Evolutionary
    /// baselines emit no executor events.
    pub telemetry: Telemetry,
}

impl RunSetup {
    /// The defaults [`Algorithm::run`] uses: no retries, disabled
    /// telemetry, default thread pool.
    pub fn new(batch: usize, max_evals: usize, n_init: usize, de_evals: usize, seed: u64) -> Self {
        RunSetup {
            batch,
            max_evals,
            n_init,
            de_evals,
            seed,
            parallelism: Parallelism::default(),
            retry: RetryPolicy::none(),
            telemetry: Telemetry::disabled(),
        }
    }
}

impl Algorithm {
    /// Number of registered algorithms; [`Algorithm::all`] has exactly
    /// this many entries and [`Algorithm::index`] is a bijection onto
    /// `0..COUNT` (checked by the registry tests).
    pub const COUNT: usize = 21;

    /// The algorithms appearing in the paper's tables, in table order.
    pub fn paper_set() -> [Algorithm; 10] {
        [
            Algorithm::De,
            Algorithm::Lcb,
            Algorithm::Ei,
            Algorithm::EasyBoSeq,
            Algorithm::Pbo,
            Algorithm::Phcbo,
            Algorithm::EasyBoS,
            Algorithm::EasyBoA,
            Algorithm::EasyBoSp,
            Algorithm::EasyBo,
        ]
    }

    /// All implemented algorithms (paper set + extensions + the async
    /// portfolio), ordered by [`Algorithm::index`].
    pub fn all() -> [Algorithm; Self::COUNT] {
        [
            Algorithm::De,
            Algorithm::Lcb,
            Algorithm::Ei,
            Algorithm::EasyBoSeq,
            Algorithm::Pbo,
            Algorithm::Phcbo,
            Algorithm::EasyBoS,
            Algorithm::EasyBoA,
            Algorithm::EasyBoSp,
            Algorithm::EasyBo,
            Algorithm::Bucb,
            Algorithm::Lp,
            Algorithm::Ts,
            Algorithm::Portfolio,
            Algorithm::Pso,
            Algorithm::Sa,
            Algorithm::CmaEs,
            Algorithm::Mace,
            Algorithm::EpsGreedy,
            Algorithm::PessimisticBo,
            Algorithm::StandardBo,
        ]
    }

    /// Stable position in [`Algorithm::all`]. Exhaustive on purpose — see
    /// the module docs.
    pub const fn index(self) -> usize {
        match self {
            Algorithm::De => 0,
            Algorithm::Lcb => 1,
            Algorithm::Ei => 2,
            Algorithm::EasyBoSeq => 3,
            Algorithm::Pbo => 4,
            Algorithm::Phcbo => 5,
            Algorithm::EasyBoS => 6,
            Algorithm::EasyBoA => 7,
            Algorithm::EasyBoSp => 8,
            Algorithm::EasyBo => 9,
            Algorithm::Bucb => 10,
            Algorithm::Lp => 11,
            Algorithm::Ts => 12,
            Algorithm::Portfolio => 13,
            Algorithm::Pso => 14,
            Algorithm::Sa => 15,
            Algorithm::CmaEs => 16,
            Algorithm::Mace => 17,
            Algorithm::EpsGreedy => 18,
            Algorithm::PessimisticBo => 19,
            Algorithm::StandardBo => 20,
        }
    }

    /// Stable kebab-case wire key (used by the service's `OpenSession`
    /// request and the CLI). Exhaustive on purpose — see the module docs.
    pub const fn key(self) -> &'static str {
        match self {
            Algorithm::De => "de",
            Algorithm::Lcb => "lcb",
            Algorithm::Ei => "ei",
            Algorithm::EasyBoSeq => "easybo-seq",
            Algorithm::Pbo => "pbo",
            Algorithm::Phcbo => "phcbo",
            Algorithm::EasyBoS => "easybo-s",
            Algorithm::EasyBoA => "easybo-a",
            Algorithm::EasyBoSp => "easybo-sp",
            Algorithm::EasyBo => "easybo",
            Algorithm::Bucb => "bucb",
            Algorithm::Lp => "lp",
            Algorithm::Ts => "ts",
            Algorithm::Portfolio => "portfolio",
            Algorithm::Pso => "pso",
            Algorithm::Sa => "sa",
            Algorithm::CmaEs => "cma-es",
            Algorithm::Mace => "mace",
            Algorithm::EpsGreedy => "eps-greedy",
            Algorithm::PessimisticBo => "pessimistic",
            Algorithm::StandardBo => "standard",
        }
    }

    /// Inverse of [`Algorithm::key`].
    pub fn from_key(key: &str) -> Option<Algorithm> {
        Algorithm::all().into_iter().find(|a| a.key() == key)
    }

    /// Scheduling mode.
    pub fn mode(&self) -> AlgorithmMode {
        match self {
            Algorithm::De | Algorithm::Pso | Algorithm::Sa | Algorithm::CmaEs => {
                AlgorithmMode::Evolutionary
            }
            Algorithm::Ei
            | Algorithm::Lcb
            | Algorithm::EasyBoSeq
            | Algorithm::Ts
            | Algorithm::Portfolio => AlgorithmMode::Sequential,
            Algorithm::Pbo
            | Algorithm::Phcbo
            | Algorithm::EasyBoS
            | Algorithm::EasyBoSp
            | Algorithm::Bucb
            | Algorithm::Lp
            | Algorithm::Mace => AlgorithmMode::SyncBatch,
            Algorithm::EasyBoA
            | Algorithm::EasyBo
            | Algorithm::EpsGreedy
            | Algorithm::PessimisticBo
            | Algorithm::StandardBo => AlgorithmMode::AsyncBatch,
        }
    }

    /// Whether the algorithm uses a batch of parallel workers.
    pub fn is_batch(&self) -> bool {
        matches!(
            self.mode(),
            AlgorithmMode::SyncBatch | AlgorithmMode::AsyncBatch
        )
    }

    /// The label used in the paper's tables (`EasyBO-SP-5` style: batch
    /// size appended for batch algorithms).
    pub fn label(&self, batch: usize) -> String {
        let base = match self {
            Algorithm::De => "DE",
            Algorithm::Ei => "EI",
            Algorithm::Lcb => "LCB",
            Algorithm::EasyBoSeq => "EasyBO",
            Algorithm::Pbo => "pBO",
            Algorithm::Phcbo => "pHCBO",
            Algorithm::EasyBoS => "EasyBO-S",
            Algorithm::EasyBoA => "EasyBO-A",
            Algorithm::EasyBoSp => "EasyBO-SP",
            Algorithm::EasyBo => "EasyBO",
            Algorithm::Bucb => "BUCB",
            Algorithm::Lp => "LP",
            Algorithm::Ts => "TS",
            Algorithm::Portfolio => "Portfolio",
            Algorithm::Pso => "PSO",
            Algorithm::Sa => "SA",
            Algorithm::CmaEs => "CMA-ES",
            Algorithm::Mace => "MACE",
            Algorithm::EpsGreedy => "EpsGreedy",
            Algorithm::PessimisticBo => "PessBO",
            Algorithm::StandardBo => "StdBO",
        };
        if self.is_batch() {
            format!("{base}-{batch}")
        } else {
            base.to_string()
        }
    }

    /// Constructs the boxed [`AsyncPolicy`] for a sequential or
    /// async-batch algorithm (the two modes the async driver — and with
    /// it the service's remote worker pool — can host). `None` for
    /// sync-batch and evolutionary algorithms.
    ///
    /// `parallelism` threads the worker-thread knob into GP training and
    /// acquisition maximization; decisions are bit-identical at any
    /// setting.
    pub fn async_policy(
        &self,
        bounds: Bounds,
        seed: u64,
        parallelism: Parallelism,
    ) -> Option<Box<dyn AsyncPolicy + Send>> {
        let dim = bounds.dim();
        let scfg = SurrogateConfig {
            parallelism,
            ..SurrogateConfig::default()
        };
        let acfg = AcqOptConfig {
            parallelism,
            ..AcqOptConfig::for_dim(dim)
        };
        match self {
            Algorithm::Ei => Some(Box::new(SequentialBoPolicy::with_configs(
                bounds,
                SequentialAcquisition::Ei,
                seed,
                scfg,
                acfg,
            ))),
            Algorithm::Lcb => Some(Box::new(SequentialBoPolicy::with_configs(
                bounds,
                SequentialAcquisition::Ucb { kappa: 2.0 },
                seed,
                scfg,
                acfg,
            ))),
            Algorithm::EasyBoSeq => Some(Box::new(SequentialBoPolicy::with_configs(
                bounds,
                SequentialAcquisition::EasyBo {
                    lambda: crate::weight::DEFAULT_LAMBDA,
                },
                seed,
                scfg,
                acfg,
            ))),
            Algorithm::Ts => Some(Box::new(ThompsonSamplingPolicy::with_configs(
                bounds, 192, seed, scfg,
            ))),
            Algorithm::Portfolio => Some(Box::new(PortfolioPolicy::with_configs(
                bounds, 1.0, seed, scfg, acfg,
            ))),
            Algorithm::EasyBoA => Some(Box::new(EasyBoAsyncPolicy::with_configs(
                bounds,
                false,
                crate::weight::DEFAULT_LAMBDA,
                seed,
                scfg,
                acfg,
            ))),
            Algorithm::EasyBo => Some(Box::new(EasyBoAsyncPolicy::with_configs(
                bounds,
                true,
                crate::weight::DEFAULT_LAMBDA,
                seed,
                scfg,
                acfg,
            ))),
            Algorithm::EpsGreedy => Some(Box::new(EpsGreedyPolicy::with_configs(
                bounds,
                crate::policies::DEFAULT_EPSILON,
                seed,
                scfg,
                acfg,
            ))),
            Algorithm::PessimisticBo => Some(Box::new(PessimisticAsyncPolicy::with_configs(
                bounds,
                crate::policies::DEFAULT_PESSIMISTIC_KAPPA,
                seed,
                scfg,
                acfg,
            ))),
            Algorithm::StandardBo => Some(Box::new(StandardAsyncPolicy::with_configs(
                bounds, seed, scfg, acfg,
            ))),
            Algorithm::De
            | Algorithm::Pso
            | Algorithm::Sa
            | Algorithm::CmaEs
            | Algorithm::Pbo
            | Algorithm::Phcbo
            | Algorithm::EasyBoS
            | Algorithm::EasyBoSp
            | Algorithm::Bucb
            | Algorithm::Lp
            | Algorithm::Mace => None,
        }
    }

    /// Constructs the boxed [`SyncBatchPolicy`] for a sync-batch
    /// algorithm; `None` otherwise. Same `parallelism` semantics as
    /// [`Algorithm::async_policy`].
    pub fn sync_policy(
        &self,
        bounds: Bounds,
        seed: u64,
        parallelism: Parallelism,
    ) -> Option<Box<dyn SyncBatchPolicy + Send>> {
        let dim = bounds.dim();
        let scfg = SurrogateConfig {
            parallelism,
            ..SurrogateConfig::default()
        };
        let acfg = AcqOptConfig {
            parallelism,
            ..AcqOptConfig::for_dim(dim)
        };
        match self {
            Algorithm::Pbo => Some(Box::new(PboPolicy::with_configs(
                bounds, false, seed, scfg, acfg,
            ))),
            Algorithm::Phcbo => Some(Box::new(PboPolicy::with_configs(
                bounds, true, seed, scfg, acfg,
            ))),
            Algorithm::EasyBoS => Some(Box::new(EasyBoSyncPolicy::with_configs(
                bounds,
                false,
                crate::weight::DEFAULT_LAMBDA,
                seed,
                scfg,
                acfg,
            ))),
            Algorithm::EasyBoSp => Some(Box::new(EasyBoSyncPolicy::with_configs(
                bounds,
                true,
                crate::weight::DEFAULT_LAMBDA,
                seed,
                scfg,
                acfg,
            ))),
            Algorithm::Bucb => Some(Box::new(BucbPolicy::with_configs(
                bounds, 2.0, seed, scfg, acfg,
            ))),
            Algorithm::Lp => Some(Box::new(LocalPenalizationPolicy::with_configs(
                bounds, seed, scfg, acfg,
            ))),
            Algorithm::Mace => Some(Box::new(MacePolicy::with_configs(bounds, seed, scfg, acfg))),
            Algorithm::De
            | Algorithm::Pso
            | Algorithm::Sa
            | Algorithm::CmaEs
            | Algorithm::Ei
            | Algorithm::Lcb
            | Algorithm::EasyBoSeq
            | Algorithm::Ts
            | Algorithm::Portfolio
            | Algorithm::EasyBoA
            | Algorithm::EasyBo
            | Algorithm::EpsGreedy
            | Algorithm::PessimisticBo
            | Algorithm::StandardBo => None,
        }
    }

    /// Runs the algorithm against `bb` with the default [`RunSetup`]
    /// knobs (no retries, disabled telemetry, default thread pool).
    ///
    /// * `batch` — worker count for batch algorithms (ignored otherwise).
    /// * `max_evals` — total evaluation budget for BO algorithms,
    ///   including the `n_init` initial points.
    /// * `de_evals` — evaluation budget when `self` is [`Algorithm::De`].
    /// * `seed` — controls the initial design, all stochastic selection,
    ///   and the surrogate training restarts.
    pub fn run(
        &self,
        bb: &dyn BlackBox,
        batch: usize,
        max_evals: usize,
        n_init: usize,
        de_evals: usize,
        seed: u64,
    ) -> RunResult {
        self.run_with(bb, &RunSetup::new(batch, max_evals, n_init, de_evals, seed))
    }

    /// Runs the algorithm with explicit chaos/parallelism/telemetry
    /// knobs. With the [`RunSetup::new`] defaults this is bit-identical
    /// to the legacy dispatcher ([`Algorithm::run`]): the async driver's
    /// resilient path with `RetryPolicy::none()` *is* the plain path.
    pub fn run_with(&self, bb: &dyn BlackBox, setup: &RunSetup) -> RunResult {
        let bounds = bb.bounds().clone();
        let mut rng = StdRng::seed_from_u64(setup.seed.wrapping_mul(0x9e37_79b9));
        let init = sampling::latin_hypercube(&bounds, setup.n_init, &mut rng);

        match self.mode() {
            // Metaheuristics drive their own loop: retry, parallelism and
            // executor telemetry do not apply.
            AlgorithmMode::Evolutionary => run_metaheuristic(*self, bb, setup.de_evals, setup.seed),
            AlgorithmMode::Sequential => {
                let mut p = self
                    .async_policy(bounds, setup.seed, setup.parallelism)
                    .expect("sequential algorithms expose an async policy");
                VirtualExecutor::new(1).run_async_resilient(
                    bb,
                    &init,
                    setup.max_evals,
                    p.as_mut(),
                    &setup.retry,
                    &setup.telemetry,
                )
            }
            AlgorithmMode::AsyncBatch => {
                let mut p = self
                    .async_policy(bounds, setup.seed, setup.parallelism)
                    .expect("async-batch algorithms expose an async policy");
                VirtualExecutor::new(setup.batch).run_async_resilient(
                    bb,
                    &init,
                    setup.max_evals,
                    p.as_mut(),
                    &setup.retry,
                    &setup.telemetry,
                )
            }
            // The barrier driver has no retry machinery; `setup.retry` is
            // ignored here by design.
            AlgorithmMode::SyncBatch => {
                let mut p = self
                    .sync_policy(bounds, setup.seed, setup.parallelism)
                    .expect("sync-batch algorithms expose a sync policy");
                VirtualExecutor::new(setup.batch).run_sync_with(
                    bb,
                    &init,
                    setup.max_evals,
                    p.as_mut(),
                    &setup.telemetry,
                )
            }
        }
    }
}

/// Runs a metaheuristic baseline (DE/PSO/SA/CMA-ES) sequentially,
/// accounting virtual time per evaluation exactly as a single simulator
/// worker would.
fn run_metaheuristic(algo: Algorithm, bb: &dyn BlackBox, budget: usize, seed: u64) -> RunResult {
    use easybo_opt::{CmaEs, CmaEsConfig, ParticleSwarm, PsoConfig, SaConfig, SimulatedAnnealing};
    let bounds = bb.bounds().clone();
    let mut rng = StdRng::seed_from_u64(seed ^ 0xdede_dede);
    let mut data = Dataset::new();
    let mut trace = RunTrace::new();
    let mut schedule = Schedule::new(1);
    let mut t = 0.0f64;
    let mut task = 0usize;
    {
        let mut objective = |x: &[f64]| {
            let e = bb.evaluate(x);
            schedule.add(0, task, t, t + e.cost);
            t += e.cost;
            task += 1;
            data.push(x.to_vec(), e.value);
            trace.record(t, e.value);
            e.value
        };
        match algo {
            Algorithm::De => {
                let de = DifferentialEvolution::new(DeConfig {
                    max_evals: budget.max(DeConfig::default().population),
                    ..Default::default()
                })
                .expect("static DE config is valid");
                let _ = de.maximize(&bounds, &mut rng, &mut objective);
            }
            Algorithm::Pso => {
                let pso = ParticleSwarm::new(PsoConfig {
                    max_evals: budget.max(PsoConfig::default().particles),
                    ..Default::default()
                })
                .expect("static PSO config is valid");
                let _ = pso.maximize(&bounds, &mut rng, &mut objective);
            }
            Algorithm::Sa => {
                let sa = SimulatedAnnealing::new(SaConfig {
                    max_evals: budget.max(2),
                    ..Default::default()
                })
                .expect("static SA config is valid");
                let _ = sa.maximize(&bounds, &mut rng, &mut objective);
            }
            Algorithm::CmaEs => {
                let cma = CmaEs::new(CmaEsConfig {
                    max_evals: budget.max(4),
                    ..Default::default()
                })
                .expect("static CMA-ES config is valid");
                let _ = cma.maximize(&bounds, &mut rng, &mut objective);
            }
            Algorithm::Ei
            | Algorithm::Lcb
            | Algorithm::EasyBoSeq
            | Algorithm::Pbo
            | Algorithm::Phcbo
            | Algorithm::EasyBoS
            | Algorithm::EasyBoA
            | Algorithm::EasyBoSp
            | Algorithm::EasyBo
            | Algorithm::Bucb
            | Algorithm::Lp
            | Algorithm::Ts
            | Algorithm::Portfolio
            | Algorithm::Mace
            | Algorithm::EpsGreedy
            | Algorithm::PessimisticBo
            | Algorithm::StandardBo => unreachable!("not a metaheuristic"),
        }
    }
    RunResult {
        data,
        trace,
        schedule,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    use easybo_exec::{CostedFunction, SimTimeModel};
    use easybo_opt::Bounds;

    fn bb() -> CostedFunction<impl Fn(&[f64]) -> f64 + Send + Sync> {
        let bounds = Bounds::new(vec![(-2.0, 2.0), (-2.0, 2.0)]).unwrap();
        let time = SimTimeModel::new(&bounds, 10.0, 0.25, 0);
        CostedFunction::new("peak", bounds, time, |x: &[f64]| {
            (-((x[0] - 0.5).powi(2) + (x[1] + 0.5).powi(2))).exp()
        })
    }

    #[test]
    fn labels_match_paper_convention() {
        assert_eq!(Algorithm::De.label(5), "DE");
        assert_eq!(Algorithm::EasyBoSeq.label(5), "EasyBO");
        assert_eq!(Algorithm::Pbo.label(5), "pBO-5");
        assert_eq!(Algorithm::EasyBoSp.label(10), "EasyBO-SP-10");
        assert_eq!(Algorithm::EasyBo.label(15), "EasyBO-15");
        assert_eq!(Algorithm::EpsGreedy.label(8), "EpsGreedy-8");
        assert_eq!(Algorithm::PessimisticBo.label(8), "PessBO-8");
        assert_eq!(Algorithm::StandardBo.label(8), "StdBO-8");
    }

    #[test]
    fn modes_are_consistent() {
        assert_eq!(Algorithm::De.mode(), AlgorithmMode::Evolutionary);
        assert_eq!(Algorithm::Ei.mode(), AlgorithmMode::Sequential);
        assert_eq!(Algorithm::Pbo.mode(), AlgorithmMode::SyncBatch);
        assert_eq!(Algorithm::EasyBo.mode(), AlgorithmMode::AsyncBatch);
        assert_eq!(Algorithm::EpsGreedy.mode(), AlgorithmMode::AsyncBatch);
        assert_eq!(Algorithm::PessimisticBo.mode(), AlgorithmMode::AsyncBatch);
        assert_eq!(Algorithm::StandardBo.mode(), AlgorithmMode::AsyncBatch);
        assert!(!Algorithm::Lcb.is_batch());
        assert!(Algorithm::Bucb.is_batch());
    }

    #[test]
    fn index_is_a_bijection_onto_all() {
        let all = Algorithm::all();
        assert_eq!(all.len(), Algorithm::COUNT);
        for (i, a) in all.iter().enumerate() {
            assert_eq!(a.index(), i, "{a:?} out of place in all()");
        }
    }

    #[test]
    fn keys_round_trip_and_are_unique() {
        for a in Algorithm::all() {
            assert_eq!(Algorithm::from_key(a.key()), Some(a));
        }
        let mut keys: Vec<&str> = Algorithm::all().iter().map(|a| a.key()).collect();
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(keys.len(), Algorithm::COUNT, "duplicate wire key");
        assert_eq!(Algorithm::from_key("no-such-algo"), None);
    }

    #[test]
    fn policy_constructors_match_modes() {
        let bounds = Bounds::new(vec![(0.0, 1.0)]).unwrap();
        for a in Algorithm::all() {
            let has_async = a
                .async_policy(bounds.clone(), 1, Parallelism::default())
                .is_some();
            let has_sync = a
                .sync_policy(bounds.clone(), 1, Parallelism::default())
                .is_some();
            match a.mode() {
                AlgorithmMode::Evolutionary => assert!(!has_async && !has_sync, "{a:?}"),
                AlgorithmMode::Sequential | AlgorithmMode::AsyncBatch => {
                    assert!(has_async && !has_sync, "{a:?}")
                }
                AlgorithmMode::SyncBatch => assert!(!has_async && has_sync, "{a:?}"),
            }
        }
    }

    #[test]
    fn paper_set_is_subset_of_all() {
        let all = Algorithm::all();
        for a in Algorithm::paper_set() {
            assert!(all.contains(&a));
        }
    }

    #[test]
    fn every_algorithm_runs_and_respects_budget() {
        let bb = bb();
        for algo in Algorithm::all() {
            let r = algo.run(&bb, 3, 24, 8, 60, 1);
            let expected = if algo.mode() == AlgorithmMode::Evolutionary {
                60
            } else {
                24
            };
            assert_eq!(r.data.len(), expected, "{algo:?}");
            assert!(r.best_value().is_finite(), "{algo:?}");
            assert!(r.total_time() > 0.0, "{algo:?}");
        }
    }

    #[test]
    fn async_variants_finish_faster_than_sync_counterparts() {
        let bb = bb();
        let sync = Algorithm::EasyBoSp.run(&bb, 4, 32, 8, 0, 3);
        let asyn = Algorithm::EasyBo.run(&bb, 4, 32, 8, 0, 3);
        assert!(
            asyn.total_time() < sync.total_time(),
            "async {} vs sync {}",
            asyn.total_time(),
            sync.total_time()
        );
    }

    #[test]
    fn seeds_reproduce_runs_exactly() {
        let bb = bb();
        let a = Algorithm::EasyBo.run(&bb, 3, 20, 6, 0, 7);
        let b = Algorithm::EasyBo.run(&bb, 3, 20, 6, 0, 7);
        assert_eq!(a.data, b.data);
        let c = Algorithm::EasyBo.run(&bb, 3, 20, 6, 0, 8);
        assert_ne!(a.data, c.data, "different seeds must differ");
    }

    #[test]
    fn portfolio_policies_reproduce_across_thread_counts() {
        // The Parallelism knob must not perturb a single decision bit.
        let bb = bb();
        for algo in [
            Algorithm::EpsGreedy,
            Algorithm::PessimisticBo,
            Algorithm::StandardBo,
        ] {
            let mut lone = RunSetup::new(3, 16, 6, 0, 5);
            lone.parallelism = Parallelism::sequential();
            let mut wide = RunSetup::new(3, 16, 6, 0, 5);
            wide.parallelism = Parallelism::new(8);
            let a = algo.run_with(&bb, &lone);
            let b = algo.run_with(&bb, &wide);
            assert_eq!(a.data, b.data, "{algo:?} diverged across thread counts");
        }
    }

    #[test]
    fn de_uses_its_own_budget() {
        let bb = bb();
        let r = Algorithm::De.run(&bb, 1, 10, 5, 200, 2);
        assert_eq!(r.data.len(), 200);
        // Sequential DE time = sum of costs ≈ 200 × 10s.
        assert!(r.total_time() > 150.0 * 10.0);
    }
}
