//! The benchmark algorithm registry: every optimizer evaluated in the
//! paper's Tables I/II (plus the BUCB/LP extensions), behind a single
//! dispatcher so the benchmark harness can sweep the full matrix.

use easybo_exec::{BlackBox, Dataset, RunResult, RunTrace, Schedule, VirtualExecutor};
use easybo_opt::{sampling, DeConfig, DifferentialEvolution};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::policies::{
    BucbPolicy, EasyBoAsyncPolicy, EasyBoSyncPolicy, LocalPenalizationPolicy, PboPolicy,
    SequentialAcquisition, SequentialBoPolicy,
};

/// Scheduling mode of an [`Algorithm`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AlgorithmMode {
    /// Population-based metaheuristic, evaluated one point at a time.
    Evolutionary,
    /// Model-based, one query per completed evaluation, single worker.
    Sequential,
    /// Barrier-synchronized batches of `B` queries.
    SyncBatch,
    /// A new query the moment any of the `B` workers idles.
    AsyncBatch,
}

/// Every optimization algorithm in the benchmark matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Algorithm {
    /// Differential evolution baseline (Liu et al., ref. \[13\]).
    De,
    /// Sequential BO with expected improvement.
    Ei,
    /// Sequential BO with the optimistic confidence bound (paper: "LCB").
    Lcb,
    /// Sequential EasyBO (randomized-weight acquisition, one worker).
    EasyBoSeq,
    /// pBO: synchronous batch with the uniform weight grid (ref. \[23\]).
    Pbo,
    /// pHCBO: pBO plus the high-coverage distance penalty (ref. \[23\]).
    Phcbo,
    /// EasyBO-S: synchronous, randomized weights, no penalization.
    EasyBoS,
    /// EasyBO-A: asynchronous, randomized weights, no penalization.
    EasyBoA,
    /// EasyBO-SP: synchronous, randomized weights, hallucination penalty.
    EasyBoSp,
    /// EasyBO: asynchronous + hallucination penalty — the paper's method.
    EasyBo,
    /// Batch UCB extension (Desautels et al., ref. \[32\]).
    Bucb,
    /// Local Penalization extension (González et al., ref. \[33\]).
    Lp,
    /// Thompson sampling extension (sequential; paper ref. \[30\]).
    Ts,
    /// GP-Hedge acquisition portfolio extension (sequential; ref. \[31\]).
    Portfolio,
    /// Particle swarm optimization baseline (paper refs. \[14\]-\[17\]).
    Pso,
    /// Simulated annealing baseline (paper refs. \[10\]-\[12\]).
    Sa,
    /// CMA-ES baseline (modern evolutionary representative).
    CmaEs,
    /// MACE: multi-objective acquisition ensemble batch BO (§II-C, ref. \[22\]).
    Mace,
}

impl Algorithm {
    /// The algorithms appearing in the paper's tables, in table order.
    pub fn paper_set() -> [Algorithm; 10] {
        [
            Algorithm::De,
            Algorithm::Lcb,
            Algorithm::Ei,
            Algorithm::EasyBoSeq,
            Algorithm::Pbo,
            Algorithm::Phcbo,
            Algorithm::EasyBoS,
            Algorithm::EasyBoA,
            Algorithm::EasyBoSp,
            Algorithm::EasyBo,
        ]
    }

    /// All implemented algorithms (paper set + extensions).
    pub fn all() -> [Algorithm; 18] {
        [
            Algorithm::De,
            Algorithm::Lcb,
            Algorithm::Ei,
            Algorithm::EasyBoSeq,
            Algorithm::Pbo,
            Algorithm::Phcbo,
            Algorithm::EasyBoS,
            Algorithm::EasyBoA,
            Algorithm::EasyBoSp,
            Algorithm::EasyBo,
            Algorithm::Bucb,
            Algorithm::Lp,
            Algorithm::Ts,
            Algorithm::Portfolio,
            Algorithm::Pso,
            Algorithm::Sa,
            Algorithm::CmaEs,
            Algorithm::Mace,
        ]
    }

    /// Scheduling mode.
    pub fn mode(&self) -> AlgorithmMode {
        match self {
            Algorithm::De | Algorithm::Pso | Algorithm::Sa | Algorithm::CmaEs => {
                AlgorithmMode::Evolutionary
            }
            Algorithm::Ei
            | Algorithm::Lcb
            | Algorithm::EasyBoSeq
            | Algorithm::Ts
            | Algorithm::Portfolio => AlgorithmMode::Sequential,
            Algorithm::Pbo
            | Algorithm::Phcbo
            | Algorithm::EasyBoS
            | Algorithm::EasyBoSp
            | Algorithm::Bucb
            | Algorithm::Lp
            | Algorithm::Mace => AlgorithmMode::SyncBatch,
            Algorithm::EasyBoA | Algorithm::EasyBo => AlgorithmMode::AsyncBatch,
        }
    }

    /// Whether the algorithm uses a batch of parallel workers.
    pub fn is_batch(&self) -> bool {
        matches!(
            self.mode(),
            AlgorithmMode::SyncBatch | AlgorithmMode::AsyncBatch
        )
    }

    /// The label used in the paper's tables (`EasyBO-SP-5` style: batch
    /// size appended for batch algorithms).
    pub fn label(&self, batch: usize) -> String {
        let base = match self {
            Algorithm::De => "DE",
            Algorithm::Ei => "EI",
            Algorithm::Lcb => "LCB",
            Algorithm::EasyBoSeq => "EasyBO",
            Algorithm::Pbo => "pBO",
            Algorithm::Phcbo => "pHCBO",
            Algorithm::EasyBoS => "EasyBO-S",
            Algorithm::EasyBoA => "EasyBO-A",
            Algorithm::EasyBoSp => "EasyBO-SP",
            Algorithm::EasyBo => "EasyBO",
            Algorithm::Bucb => "BUCB",
            Algorithm::Lp => "LP",
            Algorithm::Ts => "TS",
            Algorithm::Portfolio => "Portfolio",
            Algorithm::Pso => "PSO",
            Algorithm::Sa => "SA",
            Algorithm::CmaEs => "CMA-ES",
            Algorithm::Mace => "MACE",
        };
        if self.is_batch() {
            format!("{base}-{batch}")
        } else {
            base.to_string()
        }
    }

    /// Runs the algorithm against `bb`.
    ///
    /// * `batch` — worker count for batch algorithms (ignored otherwise).
    /// * `max_evals` — total evaluation budget for BO algorithms,
    ///   including the `n_init` initial points.
    /// * `de_evals` — evaluation budget when `self` is [`Algorithm::De`].
    /// * `seed` — controls the initial design, all stochastic selection,
    ///   and the surrogate training restarts.
    pub fn run(
        &self,
        bb: &dyn BlackBox,
        batch: usize,
        max_evals: usize,
        n_init: usize,
        de_evals: usize,
        seed: u64,
    ) -> RunResult {
        let bounds = bb.bounds().clone();
        let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x9e37_79b9));
        let init = sampling::latin_hypercube(&bounds, n_init, &mut rng);

        match self {
            Algorithm::De | Algorithm::Pso | Algorithm::Sa | Algorithm::CmaEs => {
                run_metaheuristic(*self, bb, de_evals, seed)
            }
            Algorithm::Ei => {
                let mut p = SequentialBoPolicy::new(bounds, SequentialAcquisition::Ei, seed);
                VirtualExecutor::run_sequential(bb, &init, max_evals, &mut p)
            }
            Algorithm::Lcb => {
                let mut p = SequentialBoPolicy::new(
                    bounds,
                    SequentialAcquisition::Ucb { kappa: 2.0 },
                    seed,
                );
                VirtualExecutor::run_sequential(bb, &init, max_evals, &mut p)
            }
            Algorithm::EasyBoSeq => {
                let mut p = SequentialBoPolicy::new(
                    bounds,
                    SequentialAcquisition::EasyBo {
                        lambda: crate::weight::DEFAULT_LAMBDA,
                    },
                    seed,
                );
                VirtualExecutor::run_sequential(bb, &init, max_evals, &mut p)
            }
            Algorithm::Pbo => {
                let mut p = PboPolicy::new(bounds, false, seed);
                VirtualExecutor::new(batch).run_sync(bb, &init, max_evals, &mut p)
            }
            Algorithm::Phcbo => {
                let mut p = PboPolicy::new(bounds, true, seed);
                VirtualExecutor::new(batch).run_sync(bb, &init, max_evals, &mut p)
            }
            Algorithm::EasyBoS => {
                let mut p = EasyBoSyncPolicy::new(bounds, false, seed);
                VirtualExecutor::new(batch).run_sync(bb, &init, max_evals, &mut p)
            }
            Algorithm::EasyBoSp => {
                let mut p = EasyBoSyncPolicy::new(bounds, true, seed);
                VirtualExecutor::new(batch).run_sync(bb, &init, max_evals, &mut p)
            }
            Algorithm::EasyBoA => {
                let mut p = EasyBoAsyncPolicy::new(bounds, false, seed);
                VirtualExecutor::new(batch).run_async(bb, &init, max_evals, &mut p)
            }
            Algorithm::EasyBo => {
                let mut p = EasyBoAsyncPolicy::new(bounds, true, seed);
                VirtualExecutor::new(batch).run_async(bb, &init, max_evals, &mut p)
            }
            Algorithm::Bucb => {
                let mut p = BucbPolicy::new(bounds, 2.0, seed);
                VirtualExecutor::new(batch).run_sync(bb, &init, max_evals, &mut p)
            }
            Algorithm::Lp => {
                let mut p = LocalPenalizationPolicy::new(bounds, seed);
                VirtualExecutor::new(batch).run_sync(bb, &init, max_evals, &mut p)
            }
            Algorithm::Ts => {
                let mut p = crate::policies::ThompsonSamplingPolicy::new(bounds, 192, seed);
                VirtualExecutor::run_sequential(bb, &init, max_evals, &mut p)
            }
            Algorithm::Portfolio => {
                let mut p = crate::policies::PortfolioPolicy::new(bounds, 1.0, seed);
                VirtualExecutor::run_sequential(bb, &init, max_evals, &mut p)
            }
            Algorithm::Mace => {
                let mut p = crate::policies::MacePolicy::new(bounds, seed);
                VirtualExecutor::new(batch).run_sync(bb, &init, max_evals, &mut p)
            }
        }
    }
}

/// Runs a metaheuristic baseline (DE/PSO/SA/CMA-ES) sequentially,
/// accounting virtual time per evaluation exactly as a single simulator
/// worker would.
fn run_metaheuristic(algo: Algorithm, bb: &dyn BlackBox, budget: usize, seed: u64) -> RunResult {
    use easybo_opt::{CmaEs, CmaEsConfig, ParticleSwarm, PsoConfig, SaConfig, SimulatedAnnealing};
    let bounds = bb.bounds().clone();
    let mut rng = StdRng::seed_from_u64(seed ^ 0xdede_dede);
    let mut data = Dataset::new();
    let mut trace = RunTrace::new();
    let mut schedule = Schedule::new(1);
    let mut t = 0.0f64;
    let mut task = 0usize;
    {
        let mut objective = |x: &[f64]| {
            let e = bb.evaluate(x);
            schedule.add(0, task, t, t + e.cost);
            t += e.cost;
            task += 1;
            data.push(x.to_vec(), e.value);
            trace.record(t, e.value);
            e.value
        };
        match algo {
            Algorithm::De => {
                let de = DifferentialEvolution::new(DeConfig {
                    max_evals: budget.max(DeConfig::default().population),
                    ..Default::default()
                })
                .expect("static DE config is valid");
                let _ = de.maximize(&bounds, &mut rng, &mut objective);
            }
            Algorithm::Pso => {
                let pso = ParticleSwarm::new(PsoConfig {
                    max_evals: budget.max(PsoConfig::default().particles),
                    ..Default::default()
                })
                .expect("static PSO config is valid");
                let _ = pso.maximize(&bounds, &mut rng, &mut objective);
            }
            Algorithm::Sa => {
                let sa = SimulatedAnnealing::new(SaConfig {
                    max_evals: budget.max(2),
                    ..Default::default()
                })
                .expect("static SA config is valid");
                let _ = sa.maximize(&bounds, &mut rng, &mut objective);
            }
            Algorithm::CmaEs => {
                let cma = CmaEs::new(CmaEsConfig {
                    max_evals: budget.max(4),
                    ..Default::default()
                })
                .expect("static CMA-ES config is valid");
                let _ = cma.maximize(&bounds, &mut rng, &mut objective);
            }
            _ => unreachable!("not a metaheuristic"),
        }
    }
    RunResult {
        data,
        trace,
        schedule,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    use easybo_exec::{CostedFunction, SimTimeModel};
    use easybo_opt::Bounds;

    fn bb() -> CostedFunction<impl Fn(&[f64]) -> f64 + Send + Sync> {
        let bounds = Bounds::new(vec![(-2.0, 2.0), (-2.0, 2.0)]).unwrap();
        let time = SimTimeModel::new(&bounds, 10.0, 0.25, 0);
        CostedFunction::new("peak", bounds, time, |x: &[f64]| {
            (-((x[0] - 0.5).powi(2) + (x[1] + 0.5).powi(2))).exp()
        })
    }

    #[test]
    fn labels_match_paper_convention() {
        assert_eq!(Algorithm::De.label(5), "DE");
        assert_eq!(Algorithm::EasyBoSeq.label(5), "EasyBO");
        assert_eq!(Algorithm::Pbo.label(5), "pBO-5");
        assert_eq!(Algorithm::EasyBoSp.label(10), "EasyBO-SP-10");
        assert_eq!(Algorithm::EasyBo.label(15), "EasyBO-15");
    }

    #[test]
    fn modes_are_consistent() {
        assert_eq!(Algorithm::De.mode(), AlgorithmMode::Evolutionary);
        assert_eq!(Algorithm::Ei.mode(), AlgorithmMode::Sequential);
        assert_eq!(Algorithm::Pbo.mode(), AlgorithmMode::SyncBatch);
        assert_eq!(Algorithm::EasyBo.mode(), AlgorithmMode::AsyncBatch);
        assert!(!Algorithm::Lcb.is_batch());
        assert!(Algorithm::Bucb.is_batch());
    }

    #[test]
    fn paper_set_is_subset_of_all() {
        let all = Algorithm::all();
        for a in Algorithm::paper_set() {
            assert!(all.contains(&a));
        }
    }

    #[test]
    fn every_algorithm_runs_and_respects_budget() {
        let bb = bb();
        for algo in Algorithm::all() {
            let r = algo.run(&bb, 3, 24, 8, 60, 1);
            let expected = if algo.mode() == AlgorithmMode::Evolutionary {
                60
            } else {
                24
            };
            assert_eq!(r.data.len(), expected, "{algo:?}");
            assert!(r.best_value().is_finite(), "{algo:?}");
            assert!(r.total_time() > 0.0, "{algo:?}");
        }
    }

    #[test]
    fn async_variants_finish_faster_than_sync_counterparts() {
        let bb = bb();
        let sync = Algorithm::EasyBoSp.run(&bb, 4, 32, 8, 0, 3);
        let asyn = Algorithm::EasyBo.run(&bb, 4, 32, 8, 0, 3);
        assert!(
            asyn.total_time() < sync.total_time(),
            "async {} vs sync {}",
            asyn.total_time(),
            sync.total_time()
        );
    }

    #[test]
    fn seeds_reproduce_runs_exactly() {
        let bb = bb();
        let a = Algorithm::EasyBo.run(&bb, 3, 20, 6, 0, 7);
        let b = Algorithm::EasyBo.run(&bb, 3, 20, 6, 0, 7);
        assert_eq!(a.data, b.data);
        let c = Algorithm::EasyBo.run(&bb, 3, 20, 6, 0, 8);
        assert_ne!(a.data, c.data, "different seeds must differ");
    }

    #[test]
    fn de_uses_its_own_budget() {
        let bb = bb();
        let r = Algorithm::De.run(&bb, 1, 10, 5, 200, 2);
        assert_eq!(r.data.len(), 200);
        // Sequential DE time = sum of costs ≈ 200 × 10s.
        assert!(r.total_time() > 150.0 * 10.0);
    }
}
