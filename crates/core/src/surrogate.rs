//! Surrogate-model lifecycle management shared by all BO policies.
//!
//! The GP operates on unit-cube inputs (the design space is mapped through
//! [`Bounds::to_unit`]) and z-scored targets. Hyperparameters are retrained
//! on a geometric schedule (every time the dataset grows ~25% past the last
//! training point) with warm starts, so the per-observation cost of the BO
//! inner loop stays at the O(n²)–O(n³) of a single covariance refactorize
//! rather than a full marginal-likelihood optimization.

use easybo_exec::Dataset;
use easybo_gp::{Gp, GpConfig, GpState, IncrementalGp, KernelFamily, TrainConfig};
use easybo_opt::{Bounds, Parallelism};
use easybo_telemetry::Telemetry;
use serde::{Deserialize, Serialize};

/// Configuration for [`SurrogateManager`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SurrogateConfig {
    /// Kernel family (paper: squared exponential).
    pub kernel: KernelFamily,
    /// Growth factor between hyperparameter retrainings (default 1.4).
    pub retrain_growth: f64,
    /// Random restarts for the *first* hyperparameter training (default 2);
    /// subsequent retrainings warm-start and use one restart.
    pub first_restarts: usize,
    /// L-BFGS iterations per training (default 40).
    pub train_iters: usize,
    /// Subsample cap for hyperparameter training (default 160).
    pub train_max_points: usize,
    /// Active-set cap for the GP itself (default 260): past this size the
    /// surrogate keeps the best quarter of observations plus the most
    /// recent rest (classic subset-of-data scalability — required here
    /// because exact-GP variance queries are O(n²) and the class-E
    /// benchmark reaches n = 470).
    pub max_gp_points: usize,
    /// RNG seed for training restarts.
    pub seed: u64,
    /// Worker threads for the L-BFGS training restarts (default: available
    /// cores; 1 = legacy sequential). Bit-identical results at any setting.
    pub parallelism: Parallelism,
    /// Use the incremental factor path (default true): per-tell appends
    /// mutate the cached Cholesky factor in place, and the penalization
    /// inner loop pushes/pops pseudo-points on a factor stack instead of
    /// cloning the GP. `false` selects the legacy clone-and-extend paths.
    /// Bit-identical results either way — the incremental path performs
    /// the same floating-point operations in the same order.
    pub incremental: bool,
}

impl Default for SurrogateConfig {
    fn default() -> Self {
        SurrogateConfig {
            kernel: KernelFamily::SquaredExponential,
            retrain_growth: 1.4,
            first_restarts: 2,
            train_iters: 40,
            train_max_points: 160,
            max_gp_points: 260,
            seed: 0,
            parallelism: Parallelism::default(),
            incremental: true,
        }
    }
}

/// Owns the GP for one optimization run: refits on demand, retrains
/// hyperparameters on schedule, and maps between raw and unit coordinates.
///
/// # Example
///
/// ```
/// use easybo::{SurrogateConfig, SurrogateManager};
/// use easybo_exec::Dataset;
/// use easybo_opt::Bounds;
///
/// # fn main() -> Result<(), easybo::EasyBoError> {
/// let bounds = Bounds::new(vec![(0.0, 10.0)])?;
/// let mut sm = SurrogateManager::new(bounds, SurrogateConfig::default());
/// let mut data = Dataset::new();
/// for i in 0..8 {
///     let x = i as f64 * 10.0 / 7.0;
///     data.push(vec![x], (x - 4.0).powi(2) * -1.0);
/// }
/// // The GP speaks unit coordinates: query through the manager.
/// let query = sm.to_unit(&[4.0]);
/// let gp = sm.surrogate(&data)?;
/// let pred = gp.predict(&query);
/// assert!(pred.mean > -3.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SurrogateManager {
    bounds: Bounds,
    config: SurrogateConfig,
    gp: Option<IncrementalGp>,
    fitted_n: usize,
    last_trained_n: usize,
    warm: Option<Vec<f64>>,
    /// Lower winsorization fence for targets (set at each retraining).
    fence: f64,
    telemetry: Telemetry,
}

impl SurrogateManager {
    /// Creates a manager for the given design space.
    pub fn new(bounds: Bounds, config: SurrogateConfig) -> Self {
        SurrogateManager {
            bounds,
            config,
            gp: None,
            fitted_n: 0,
            last_trained_n: 0,
            warm: None,
            fence: f64::NEG_INFINITY,
            telemetry: Telemetry::disabled(),
        }
    }

    /// Attaches a telemetry handle: every hyperparameter retraining emits
    /// a `GpRefit` event and feeds the GP training counters, and the
    /// incremental factor path emits `cholesky_update` /
    /// `cholesky_downdate` spans and counters.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        if let Some(inc) = self.gp.as_mut() {
            inc.set_telemetry(telemetry.clone());
        }
        self.telemetry = telemetry;
    }

    /// Whether the incremental factor path is enabled (see
    /// [`SurrogateConfig::incremental`]).
    pub fn incremental_enabled(&self) -> bool {
        self.config.incremental
    }

    /// The design space.
    pub fn bounds(&self) -> &Bounds {
        &self.bounds
    }

    /// Maps a raw design point to unit-cube coordinates.
    pub fn to_unit(&self, x: &[f64]) -> Vec<f64> {
        self.bounds.to_unit(&self.bounds.clamp(x))
    }

    /// Maps unit-cube coordinates back to a raw design point.
    pub fn from_unit(&self, u: &[f64]) -> Vec<f64> {
        self.bounds.from_unit(u)
    }

    /// Returns a GP fitted to `data`, retraining hyperparameters when the
    /// dataset has grown past the schedule, or incrementally extending the
    /// cached model otherwise.
    ///
    /// # Errors
    ///
    /// Propagates [`easybo_gp::GpError`] on numerically hopeless data
    /// (should not occur with finite objectives).
    pub fn surrogate(&mut self, data: &Dataset) -> crate::Result<&Gp> {
        let n = data.len();
        assert!(n > 0, "surrogate requested with no observations");
        let need_retrain = self.gp.is_none()
            || n < self.fitted_n // dataset restarted
            || n as f64 >= self.last_trained_n as f64 * self.config.retrain_growth;

        if need_retrain {
            let active = self.active_set(data);
            let xs: Vec<Vec<f64>> = active
                .iter()
                .map(|&i| self.to_unit(&data.xs()[i]))
                .collect();
            // Winsorize catastrophic outliers from the low side (heavily
            // penalized infeasible designs can sit orders of magnitude below
            // the bulk and would wreck the GP's standardization and
            // length-scale fit). Tukey fence: q25 - 3*(q75 - q25).
            self.fence = lower_fence(data.ys());
            let fence = self.fence;
            let ys: Vec<f64> = active.iter().map(|&i| data.ys()[i].max(fence)).collect();
            let restarts = if self.warm.is_some() {
                1
            } else {
                self.config.first_restarts
            };
            let gp_config = GpConfig {
                kernel: self.config.kernel,
                train: TrainConfig {
                    restarts,
                    max_iters: self.config.train_iters,
                    seed: self.config.seed ^ n as u64,
                    max_points: self.config.train_max_points,
                    warm_start: self.warm.clone(),
                    parallelism: self.config.parallelism,
                    ..Default::default()
                },
                ..Default::default()
            };
            // A hyperparameter retrain invalidates the cached factor: the
            // replacement model comes out of the blocked full
            // factorization inside `fit_traced`.
            let gp = Gp::fit_traced(xs, ys, gp_config, &self.telemetry)?;
            let mut warm = gp.theta().to_vec();
            warm.push(gp.log_noise());
            self.warm = Some(warm);
            self.last_trained_n = n;
            self.fitted_n = n;
            self.gp = Some(IncrementalGp::with_telemetry(gp, self.telemetry.clone()));
        } else if n > self.fitted_n {
            // Incrementally absorb the new observations with fixed
            // hyperparameters (O(n²) per point).
            let mut inc = self.gp.take().expect("cached GP exists");
            if self.config.incremental {
                // Hot path: extend the cached factor in place — no clone.
                for i in self.fitted_n..n {
                    let u = self.to_unit(&data.xs()[i]);
                    inc.append_observation(u, data.ys()[i].max(self.fence))?;
                }
            } else {
                // Legacy path: clone-and-extend per point. Bit-identical
                // to the in-place path (same ops, same order).
                let mut gp = inc.into_gp();
                for i in self.fitted_n..n {
                    let u = self.to_unit(&data.xs()[i]);
                    gp = gp.extend_observed(u, data.ys()[i].max(self.fence))?;
                }
                inc = IncrementalGp::with_telemetry(gp, self.telemetry.clone());
            }
            self.fitted_n = n;
            self.gp = Some(inc);
        }
        Ok(self.gp.as_ref().expect("GP fitted above").gp())
    }

    /// Like [`SurrogateManager::surrogate`], but hands back the mutable
    /// [`IncrementalGp`] wrapper so the caller can push/pop pseudo-points
    /// on the cached factor stack (the penalization inner loop).
    ///
    /// # Errors
    ///
    /// Same conditions as [`SurrogateManager::surrogate`].
    pub fn incremental(&mut self, data: &Dataset) -> crate::Result<&mut IncrementalGp> {
        self.surrogate(data)?;
        Ok(self.gp.as_mut().expect("GP fitted above"))
    }

    /// Number of observations in the cached fit (0 before the first fit).
    pub fn fitted_n(&self) -> usize {
        self.fitted_n
    }

    /// Number of observations at the last hyperparameter training.
    pub fn last_trained_n(&self) -> usize {
        self.last_trained_n
    }

    /// Current lower winsorization fence applied to targets.
    pub fn fence(&self) -> f64 {
        self.fence
    }

    /// Captures the manager's mutable state — the fit/retrain schedule
    /// bookkeeping, warm-start vector, winsorization fence, and the
    /// cached GP itself — for checkpointing. Configuration (bounds,
    /// [`SurrogateConfig`]) is *not* captured: it is re-derived from the
    /// resuming optimizer and guarded by the snapshot's config
    /// fingerprint.
    pub fn state(&self) -> SurrogateState {
        SurrogateState {
            fitted_n: self.fitted_n,
            last_trained_n: self.last_trained_n,
            warm: self.warm.clone(),
            fence: self.fence,
            gp: self.gp.as_ref().map(|inc| {
                // Snapshots fire between selections; the pseudo-point
                // stack is strictly selection-scoped and must be empty.
                debug_assert_eq!(
                    inc.n_pseudo(),
                    0,
                    "snapshot with live pseudo-points on the factor stack"
                );
                inc.gp().state()
            }),
        }
    }

    /// Restores state captured by [`SurrogateManager::state`]. The GP is
    /// rebuilt from its exact cached factorization, so subsequent
    /// predictions and incremental extensions are bit-identical to the
    /// uninterrupted run.
    ///
    /// # Errors
    ///
    /// Propagates [`easybo_gp::GpError`] when the captured GP state is
    /// internally inconsistent (wrong dimensions).
    pub fn restore(&mut self, state: SurrogateState) -> crate::Result<()> {
        self.gp = match state.gp {
            Some(s) => Some(IncrementalGp::with_telemetry(
                Gp::from_state(s)?,
                self.telemetry.clone(),
            )),
            None => None,
        };
        self.fitted_n = state.fitted_n;
        self.last_trained_n = state.last_trained_n;
        self.warm = state.warm;
        self.fence = state.fence;
        Ok(())
    }

    /// Indices of the observations the GP is built on: everything while
    /// `n <= max_gp_points`; beyond that, the best quarter by objective
    /// value plus the most recent remainder.
    fn active_set(&self, data: &Dataset) -> Vec<usize> {
        let n = data.len();
        let cap = self.config.max_gp_points.max(8);
        if n <= cap {
            return (0..n).collect();
        }
        let n_best = cap / 4;
        let mut by_value: Vec<usize> = (0..n).collect();
        by_value.sort_by(|&a, &b| data.ys()[b].total_cmp(&data.ys()[a]));
        let mut chosen: Vec<bool> = vec![false; n];
        for &i in by_value.iter().take(n_best) {
            chosen[i] = true;
        }
        let mut remaining = cap - n_best;
        for i in (0..n).rev() {
            if remaining == 0 {
                break;
            }
            if !chosen[i] {
                chosen[i] = true;
                remaining -= 1;
            }
        }
        (0..n).filter(|&i| chosen[i]).collect()
    }
}

/// Plain-data capture of a [`SurrogateManager`]'s mutable state, produced
/// by [`SurrogateManager::state`] and consumed by
/// [`SurrogateManager::restore`].
#[derive(Debug, Clone, PartialEq)]
pub struct SurrogateState {
    /// Observations absorbed into the cached fit.
    pub fitted_n: usize,
    /// Observations at the last hyperparameter training.
    pub last_trained_n: usize,
    /// Warm-start hyperparameter vector `[θ…, log σ_n²]`.
    pub warm: Option<Vec<f64>>,
    /// Lower winsorization fence applied to targets.
    pub fence: f64,
    /// The cached GP, exact factorization included.
    pub gp: Option<GpState>,
}

/// Tukey-style lower fence `q25 - 3*(q75 - q25)` (no clipping when the
/// spread is degenerate or the sample is tiny).
fn lower_fence(ys: &[f64]) -> f64 {
    if ys.len() < 8 {
        return f64::NEG_INFINITY;
    }
    let mut sorted: Vec<f64> = ys.iter().copied().filter(|v| v.is_finite()).collect();
    if sorted.len() < 8 {
        return f64::NEG_INFINITY;
    }
    sorted.sort_by(|a, b| a.total_cmp(b));
    let q = |p: f64| sorted[((sorted.len() - 1) as f64 * p).round() as usize];
    let (q25, q75) = (q(0.25), q(0.75));
    let iqr = q75 - q25;
    if iqr <= 0.0 {
        return f64::NEG_INFINITY;
    }
    q25 - 3.0 * iqr
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dataset(n: usize) -> Dataset {
        let mut d = Dataset::new();
        for i in 0..n {
            let x = i as f64 / n.max(1) as f64;
            d.push(vec![x * 10.0], (x * 6.0).sin());
        }
        d
    }

    fn manager() -> SurrogateManager {
        SurrogateManager::new(
            Bounds::new(vec![(0.0, 10.0)]).unwrap(),
            SurrogateConfig::default(),
        )
    }

    #[test]
    fn first_call_trains() {
        let mut sm = manager();
        assert_eq!(sm.fitted_n(), 0);
        let d = dataset(10);
        let gp = sm.surrogate(&d).unwrap();
        assert_eq!(gp.n_train(), 10);
        assert_eq!(sm.fitted_n(), 10);
        assert_eq!(sm.last_trained_n(), 10);
    }

    #[test]
    fn small_growth_extends_incrementally() {
        let mut sm = manager();
        let mut d = dataset(10);
        sm.surrogate(&d).unwrap();
        d.push(vec![9.5], 0.1);
        let gp = sm.surrogate(&d).unwrap();
        assert_eq!(gp.n_train(), 11);
        // No retraining happened: schedule point unchanged.
        assert_eq!(sm.last_trained_n(), 10);
    }

    #[test]
    fn large_growth_triggers_retraining() {
        let mut sm = manager();
        let d10 = dataset(10);
        sm.surrogate(&d10).unwrap();
        let d14 = dataset(14); // 40% growth > 25% threshold
        sm.surrogate(&d14).unwrap();
        assert_eq!(sm.last_trained_n(), 14);
    }

    #[test]
    fn unit_mapping_round_trip() {
        let sm = manager();
        let u = sm.to_unit(&[2.5]);
        assert_eq!(u, vec![0.25]);
        assert_eq!(sm.from_unit(&u), vec![2.5]);
        // Out-of-bounds raw points are clamped into the cube.
        assert_eq!(sm.to_unit(&[99.0]), vec![1.0]);
    }

    #[test]
    fn predictions_are_sane_after_incremental_updates() {
        let mut sm = manager();
        let mut d = dataset(12);
        sm.surrogate(&d).unwrap();
        // Add two points without hitting the retrain threshold.
        d.push(vec![3.33], (2.0f64).sin());
        d.push(vec![6.66], (4.0f64).sin());
        let query = sm.to_unit(&[3.33]);
        let gp = sm.surrogate(&d).unwrap();
        let pred = gp.predict(&query);
        assert!((pred.mean - (2.0f64).sin()).abs() < 0.3);
    }

    #[test]
    fn winsorization_clips_catastrophic_outliers() {
        let mut sm = manager();
        let mut d = Dataset::new();
        // Bulk in [0, 1], one catastrophic penalty point at -5000.
        for i in 0..15 {
            d.push(vec![i as f64 / 2.0], (i as f64 * 0.7).sin());
        }
        d.push(vec![9.9], -5000.0);
        let query = sm.to_unit(&[9.9]);
        // The GP's picture of the outlier point is the clipped value, so
        // predictions near it stay on the bulk's scale.
        let pred = sm.surrogate(&d).unwrap().predict(&query);
        assert!(sm.fence().is_finite());
        assert!(sm.fence() > -100.0, "fence {}", sm.fence());
        assert!(pred.mean > -100.0, "prediction dragged to {}", pred.mean);
    }

    #[test]
    fn fence_infinite_for_clean_small_data() {
        let mut sm = manager();
        let d = dataset(6);
        sm.surrogate(&d).unwrap();
        assert_eq!(sm.fence(), f64::NEG_INFINITY);
    }

    #[test]
    fn state_round_trip_continues_bit_identically() {
        let mut sm = manager();
        let mut d = dataset(12);
        sm.surrogate(&d).unwrap();
        let state = sm.state();

        let mut restored = manager();
        restored.restore(state).unwrap();
        assert_eq!(restored.fitted_n(), sm.fitted_n());
        assert_eq!(restored.last_trained_n(), sm.last_trained_n());

        // Extend both managers past the checkpoint: the incremental path
        // must produce bitwise-equal predictions.
        d.push(vec![7.7], 0.3);
        let q = sm.to_unit(&[4.2]);
        let p1 = sm.surrogate(&d).unwrap().predict(&q);
        let p2 = restored.surrogate(&d).unwrap().predict(&q);
        assert_eq!(p1.mean.to_bits(), p2.mean.to_bits());
        assert_eq!(p1.variance.to_bits(), p2.variance.to_bits());
    }

    #[test]
    fn unfitted_state_restores_to_unfitted() {
        let sm = manager();
        let state = sm.state();
        assert!(state.gp.is_none());
        let mut restored = manager();
        restored.restore(state).unwrap();
        assert_eq!(restored.fitted_n(), 0);
    }

    #[test]
    #[should_panic(expected = "no observations")]
    fn empty_dataset_panics() {
        let mut sm = manager();
        let _ = sm.surrogate(&Dataset::new());
    }
}
