//! Structured events on the run timeline.

use std::borrow::Cow;

/// One structured occurrence inside an optimization run.
///
/// Variants cover the places where async-BO behaviour is won or lost:
/// scheduling (`QueryIssued`/`EvalStarted`/`EvalFinished`/`WorkerIdle`),
/// model overhead (`GpRefit`/`AcqOptimized`/`PseudoPointAdded`), fault
/// handling (`EvalFailed`/`EvalRetried`/`WorkerCrashed`), and phase
/// structure (`SpanStart`/`SpanEnd`, see [`crate::SpanGuard`]).
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// The policy proposed a query; `worker` is the worker it was
    /// issued toward (for the threaded executor this is refined by the
    /// matching [`Event::EvalStarted`], which reports the worker that
    /// actually picked the job up).
    QueryIssued {
        /// Monotone task id of the query.
        task: usize,
        /// Worker the query was issued toward.
        worker: usize,
    },
    /// A worker began evaluating a query.
    EvalStarted {
        /// Task id of the query.
        task: usize,
        /// Worker performing the evaluation.
        worker: usize,
    },
    /// An evaluation completed with the observed objective value.
    EvalFinished {
        /// Task id of the query.
        task: usize,
        /// Worker that performed the evaluation.
        worker: usize,
        /// Observed objective value.
        value: f64,
    },
    /// The GP surrogate was (re)fit from scratch.
    GpRefit {
        /// Number of training points.
        n: usize,
        /// Trained hyperparameters (kernel params then log-noise).
        hyperparams: Vec<f64>,
        /// Real seconds spent fitting.
        duration: f64,
    },
    /// The acquisition function was maximized for one proposal.
    AcqOptimized {
        /// Multi-start restarts used.
        restarts: usize,
        /// Acquisition-function evaluations consumed.
        evals: usize,
        /// Real seconds spent optimizing.
        duration: f64,
    },
    /// Busy points were hallucinated into the surrogate before
    /// selection (the paper's §III-C penalization step).
    PseudoPointAdded {
        /// Number of pseudo-points added for this selection.
        count: usize,
    },
    /// A worker sat idle between finishing one task and starting the
    /// next (run-clock seconds).
    WorkerIdle {
        /// The idle worker.
        worker: usize,
        /// Idle gap in run-clock seconds.
        gap: f64,
    },
    /// One evaluation attempt failed: simulator crash, non-finite FOM,
    /// timeout, or worker crash. `reason` is a short label that must
    /// stay free of `"` and `\` so the restricted JSONL encoding
    /// round-trips.
    EvalFailed {
        /// Task id of the query.
        task: usize,
        /// Worker that ran the failed attempt.
        worker: usize,
        /// 1-based attempt number that failed.
        attempt: usize,
        /// Short failure label (e.g. `timeout`, `non-finite`).
        reason: String,
    },
    /// A failed attempt was requeued with backoff.
    EvalRetried {
        /// Task id of the query.
        task: usize,
        /// 1-based attempt number that will run next.
        attempt: usize,
        /// Backoff delay before the retry, in run-clock seconds.
        delay: f64,
    },
    /// A worker died mid-evaluation and left the pool for good.
    WorkerCrashed {
        /// The dead worker.
        worker: usize,
        /// Task it was evaluating when it died.
        task: usize,
    },
    /// A durable run snapshot was written to disk.
    CheckpointWritten {
        /// Completed observations captured in the snapshot.
        completed: usize,
        /// Size of the snapshot file in bytes.
        bytes: usize,
    },
    /// A run was rebuilt from a snapshot and is continuing.
    RunResumed {
        /// Completed observations restored from the snapshot.
        completed: usize,
        /// Interrupted in-flight tasks that will be re-issued.
        inflight: usize,
    },
    /// The session manager serialized a resident session to a snapshot
    /// and released its in-memory state (LRU bound or explicit admin
    /// request).
    SessionEvicted {
        /// Manager-assigned session id.
        session: u64,
        /// Resident sessions remaining after the eviction.
        resident: usize,
    },
    /// The session manager rebuilt an evicted session from its
    /// snapshot and re-issued its interrupted in-flight attempts.
    SessionRehydrated {
        /// Manager-assigned session id.
        session: u64,
        /// Interrupted in-flight attempts re-issued by the rehydration.
        inflight: usize,
    },
    /// A completed evaluation violated a named design spec (constrained
    /// runs only). `spec` must stay free of `"` and `\` so the
    /// restricted JSONL encoding round-trips.
    SpecViolated {
        /// Task id of the evaluation.
        task: usize,
        /// Name of the violated spec (e.g. `pm_deg>=50`).
        spec: String,
        /// Signed slack of the spec at the point (negative = violated).
        slack: f64,
    },
    /// A completed evaluation satisfied every spec and improved on the
    /// best feasible objective seen so far (constrained runs only).
    FeasibleIncumbent {
        /// Task id of the evaluation.
        task: usize,
        /// Feasible objective value that became the incumbent.
        value: f64,
    },
    /// A named phase opened on the run timeline (RAII: paired with the
    /// [`Event::SpanEnd`] carrying the same id). Spans nest — `parent`
    /// is the id of the enclosing open span on the same thread, or `0`
    /// for a root span. Ids are assigned from a per-run counter
    /// starting at 1, so a deterministic run emits a deterministic
    /// span tree. `name` must stay free of `"` and `\` so the
    /// restricted JSONL encoding round-trips (instrumentation sites
    /// use static literals, which satisfies this by construction).
    SpanStart {
        /// Unique (per run) span id, starting at 1.
        id: u64,
        /// Id of the enclosing span, `0` for roots.
        parent: u64,
        /// Phase name (e.g. `gp_refit`, `cholesky`). Borrowed statics
        /// at emission sites; owned after JSONL replay.
        name: Cow<'static, str>,
    },
    /// The span with this id closed.
    SpanEnd {
        /// Id from the matching [`Event::SpanStart`].
        id: u64,
    },
}

impl Event {
    /// Stable variant name used by the JSONL encoding.
    pub fn kind(&self) -> &'static str {
        match self {
            Event::QueryIssued { .. } => "QueryIssued",
            Event::EvalStarted { .. } => "EvalStarted",
            Event::EvalFinished { .. } => "EvalFinished",
            Event::GpRefit { .. } => "GpRefit",
            Event::AcqOptimized { .. } => "AcqOptimized",
            Event::PseudoPointAdded { .. } => "PseudoPointAdded",
            Event::WorkerIdle { .. } => "WorkerIdle",
            Event::EvalFailed { .. } => "EvalFailed",
            Event::EvalRetried { .. } => "EvalRetried",
            Event::WorkerCrashed { .. } => "WorkerCrashed",
            Event::CheckpointWritten { .. } => "CheckpointWritten",
            Event::RunResumed { .. } => "RunResumed",
            Event::SessionEvicted { .. } => "SessionEvicted",
            Event::SessionRehydrated { .. } => "SessionRehydrated",
            Event::SpecViolated { .. } => "SpecViolated",
            Event::FeasibleIncumbent { .. } => "FeasibleIncumbent",
            Event::SpanStart { .. } => "SpanStart",
            Event::SpanEnd { .. } => "SpanEnd",
        }
    }
}

/// An [`Event`] stamped with the run clock at emission.
#[derive(Debug, Clone, PartialEq)]
pub struct TimedEvent {
    /// Run-clock seconds (virtual or real depending on the executor).
    pub time: f64,
    /// The event payload.
    pub event: Event,
}
