//! Live scrape endpoint: a std-only background TCP listener serving
//! the metrics registry in Prometheus text exposition format plus a
//! JSON snapshot of per-session state.
//!
//! This is the observability seam the ROADMAP's multi-session server
//! will mount: a [`StatusBoard`] holds any number of named session
//! telemetry handles, and one [`ScrapeServer`] exposes them all. The
//! listener follows the persist crate's zero-dependency discipline —
//! `std::net::TcpListener`, a hand-written response path, and nothing
//! else — because an HTTP framework would be the workspace's first
//! real network dependency for what is ultimately `printf` over a
//! socket.
//!
//! Routes:
//!
//! - `GET /metrics` — every counter/gauge/histogram of every
//!   registered session, Prometheus text exposition v0.0.4, one
//!   `session="<name>"` label per series.
//! - `GET /sessions` — JSON array of per-session state: run clock,
//!   evaluations started/finished, in-flight count, best FOM,
//!   failures/retries, checkpoints, utilization.
//! - `GET /healthz` — liveness probe.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use crate::telemetry::Telemetry;

/// Registry of named, live telemetry handles — the thing a scrape
/// actually reads. Cloning shares the registry.
#[derive(Debug, Clone, Default)]
pub struct StatusBoard {
    sessions: Arc<Mutex<BTreeMap<String, Telemetry>>>,
}

/// Point-in-time state of one registered session, as served by
/// `/sessions`.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionStatus {
    /// Registration name.
    pub name: String,
    /// Run-clock seconds at scrape time.
    pub clock: f64,
    /// Evaluations started.
    pub evals_started: usize,
    /// Evaluations finished.
    pub evals_finished: usize,
    /// Started minus finished: attempts currently in flight.
    pub inflight: usize,
    /// Best objective value so far (`None` before first completion).
    pub best_fom: Option<f64>,
    /// Failed attempts so far.
    pub failures: usize,
    /// Retried attempts so far.
    pub retries: usize,
    /// Durable checkpoints written.
    pub checkpoints: usize,
    /// Final utilization once the run publishes it (the
    /// `run_utilization` gauge), `None` mid-run.
    pub utilization: Option<f64>,
}

fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

fn escape_json(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Prometheus metric names are `[a-zA-Z_:][a-zA-Z0-9_:]*`; our
/// registry names are snake_case already, but sanitize defensively.
fn sanitize_metric(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

impl StatusBoard {
    /// An empty board.
    pub fn new() -> Self {
        StatusBoard::default()
    }

    /// Registers (or replaces) a session under `name`. Disabled
    /// handles are accepted but serve no metrics.
    pub fn register(&self, name: impl Into<String>, telemetry: Telemetry) {
        self.sessions.lock().unwrap().insert(name.into(), telemetry);
    }

    /// Removes a session.
    pub fn deregister(&self, name: &str) {
        self.sessions.lock().unwrap().remove(name);
    }

    /// Names of registered sessions.
    pub fn names(&self) -> Vec<String> {
        self.sessions.lock().unwrap().keys().cloned().collect()
    }

    /// Point-in-time status of every registered session.
    pub fn statuses(&self) -> Vec<SessionStatus> {
        let sessions = self.sessions.lock().unwrap();
        sessions
            .iter()
            .map(|(name, t)| {
                let summary = t.summary().unwrap_or_default();
                let utilization = t
                    .metrics_snapshot()
                    .and_then(|m| m.gauge("run_utilization"));
                SessionStatus {
                    name: name.clone(),
                    clock: t.now(),
                    evals_started: summary.evals_started,
                    evals_finished: summary.evals_finished,
                    inflight: summary.evals_started.saturating_sub(summary.evals_finished),
                    best_fom: summary.best_value,
                    failures: summary.evals_failed,
                    retries: summary.evals_retried,
                    checkpoints: summary.checkpoints_written,
                    utilization,
                }
            })
            .collect()
    }

    /// Renders every session's metrics in Prometheus text exposition
    /// format (v0.0.4).
    pub fn prometheus(&self) -> String {
        // metric name -> (type, sample lines); BTreeMap keeps the
        // output deterministic.
        let mut families: BTreeMap<String, (&'static str, Vec<String>)> = BTreeMap::new();
        let sample = |families: &mut BTreeMap<String, (&'static str, Vec<String>)>,
                      family: String,
                      kind: &'static str,
                      suffix: &str,
                      session: &str,
                      value: String| {
            let entry = families.entry(family.clone()).or_insert((kind, Vec::new()));
            entry.1.push(format!(
                "{family}{suffix}{{session=\"{}\"}} {value}",
                escape_label(session)
            ));
        };
        let sessions = self.sessions.lock().unwrap();
        for (name, t) in sessions.iter() {
            let Some(snap) = t.metrics_snapshot() else {
                continue;
            };
            for (metric, v) in &snap.counters {
                let family = format!("easybo_{}", sanitize_metric(metric));
                sample(&mut families, family, "counter", "", name, v.to_string());
            }
            for (metric, v) in &snap.gauges {
                if !v.is_finite() {
                    continue;
                }
                let family = format!("easybo_{}", sanitize_metric(metric));
                sample(&mut families, family, "gauge", "", name, v.to_string());
            }
            for (metric, h) in &snap.histograms {
                let family = format!("easybo_{}", sanitize_metric(metric));
                sample(
                    &mut families,
                    family.clone(),
                    "summary",
                    "_sum",
                    name,
                    h.sum.to_string(),
                );
                sample(
                    &mut families,
                    family,
                    "summary",
                    "_count",
                    name,
                    h.count.to_string(),
                );
            }
            // Session-level series derived from the event aggregate.
            if let Some(s) = t.summary() {
                let pairs: [(&str, f64); 7] = [
                    ("easybo_session_evals_started", s.evals_started as f64),
                    ("easybo_session_evals_finished", s.evals_finished as f64),
                    ("easybo_session_failures", s.evals_failed as f64),
                    ("easybo_session_retries", s.evals_retried as f64),
                    ("easybo_session_checkpoints", s.checkpoints_written as f64),
                    ("easybo_session_spans", s.spans as f64),
                    (
                        "easybo_session_inflight",
                        s.evals_started.saturating_sub(s.evals_finished) as f64,
                    ),
                ];
                for (family, v) in pairs {
                    let kind = if family == "easybo_session_inflight" {
                        "gauge"
                    } else {
                        "counter"
                    };
                    sample(
                        &mut families,
                        family.to_string(),
                        kind,
                        "",
                        name,
                        v.to_string(),
                    );
                }
                if let Some(best) = s.best_value {
                    if best.is_finite() {
                        sample(
                            &mut families,
                            "easybo_session_best_fom".to_string(),
                            "gauge",
                            "",
                            name,
                            best.to_string(),
                        );
                    }
                }
                sample(
                    &mut families,
                    "easybo_session_clock_seconds".to_string(),
                    "gauge",
                    "",
                    name,
                    t.now().to_string(),
                );
            }
        }
        let mut out = String::new();
        for (family, (kind, lines)) in families {
            let _ = writeln!(out, "# TYPE {family} {kind}");
            for line in lines {
                out.push_str(&line);
                out.push('\n');
            }
        }
        out
    }

    /// Renders `/sessions` as JSON.
    pub fn sessions_json(&self) -> String {
        let mut out = String::from("{\"sessions\":[");
        for (i, s) in self.statuses().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"name\":\"{}\",\"clock\":{},\"evals_started\":{},\"evals_finished\":{},\"inflight\":{},\"best_fom\":{},\"failures\":{},\"retries\":{},\"checkpoints\":{},\"utilization\":{}}}",
                escape_json(&s.name),
                if s.clock.is_finite() { s.clock } else { 0.0 },
                s.evals_started,
                s.evals_finished,
                s.inflight,
                s.best_fom
                    .filter(|v| v.is_finite())
                    .map_or("null".to_string(), |v| v.to_string()),
                s.failures,
                s.retries,
                s.checkpoints,
                s.utilization
                    .filter(|v| v.is_finite())
                    .map_or("null".to_string(), |v| v.to_string()),
            );
        }
        out.push_str("]}\n");
        out
    }
}

/// Background HTTP listener over a [`StatusBoard`]. The accept loop
/// runs on its own thread until [`ScrapeServer::shutdown`] (or drop).
#[derive(Debug)]
pub struct ScrapeServer {
    board: StatusBoard,
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl ScrapeServer {
    /// Binds `addr` (e.g. `"127.0.0.1:9184"`; port 0 picks a free
    /// port) with a fresh empty board.
    ///
    /// # Errors
    ///
    /// Propagates the bind/spawn failure.
    pub fn bind(addr: &str) -> std::io::Result<Self> {
        ScrapeServer::with_board(addr, StatusBoard::new())
    }

    /// Binds `addr` serving an existing board (shared with the caller
    /// and with other servers, if any).
    ///
    /// # Errors
    ///
    /// Propagates the bind/spawn failure.
    pub fn with_board(addr: &str, board: StatusBoard) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let loop_board = board.clone();
        let loop_stop = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("easybo-scrape".to_string())
            .spawn(move || accept_loop(&listener, &loop_board, &loop_stop))?;
        Ok(ScrapeServer {
            board,
            addr: local,
            stop,
            handle: Some(handle),
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The board this server reads; register sessions here.
    pub fn board(&self) -> &StatusBoard {
        &self.board
    }

    /// Stops the listener and joins the serving thread.
    pub fn shutdown(mut self) {
        self.stop_now();
    }

    fn stop_now(&mut self) {
        if let Some(handle) = self.handle.take() {
            self.stop.store(true, Ordering::SeqCst);
            // Wake the blocking accept with a throwaway connection.
            let _ = TcpStream::connect_timeout(&self.addr, Duration::from_secs(1));
            let _ = handle.join();
        }
    }
}

impl Drop for ScrapeServer {
    fn drop(&mut self) {
        self.stop_now();
    }
}

fn accept_loop(listener: &TcpListener, board: &StatusBoard, stop: &AtomicBool) {
    for stream in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        if let Ok(stream) = stream {
            let _ = handle_conn(stream, board);
        }
    }
}

fn handle_conn(mut stream: TcpStream, board: &StatusBoard) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_secs(2)))?;
    stream.set_write_timeout(Some(Duration::from_secs(2)))?;
    let mut head = Vec::with_capacity(512);
    let mut buf = [0u8; 512];
    // Read until the end of the request head; cap the head size so a
    // hostile peer can't grow the buffer unboundedly.
    while !head.windows(4).any(|w| w == b"\r\n\r\n") && head.len() < 8192 {
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => head.extend_from_slice(&buf[..n]),
            Err(_) => break,
        }
    }
    let request = String::from_utf8_lossy(&head);
    let mut parts = request.lines().next().unwrap_or("").split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    let (status, content_type, body) = if method != "GET" {
        (
            "405 Method Not Allowed",
            "text/plain; charset=utf-8",
            "method not allowed\n".to_string(),
        )
    } else {
        match path {
            "/metrics" => (
                "200 OK",
                "text/plain; version=0.0.4; charset=utf-8",
                board.prometheus(),
            ),
            "/sessions" => ("200 OK", "application/json", board.sessions_json()),
            "/healthz" => ("200 OK", "text/plain; charset=utf-8", "ok\n".to_string()),
            _ => (
                "404 Not Found",
                "text/plain; charset=utf-8",
                "not found\n".to_string(),
            ),
        }
    };
    let response = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(response.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Event;

    fn http_get(addr: SocketAddr, path: &str) -> String {
        let mut stream = TcpStream::connect(addr).unwrap();
        let req = format!("GET {path} HTTP/1.1\r\nHost: localhost\r\n\r\n");
        stream.write_all(req.as_bytes()).unwrap();
        let mut out = String::new();
        stream.read_to_string(&mut out).unwrap();
        out
    }

    fn sample_session() -> Telemetry {
        let t = Telemetry::new();
        t.set_now(12.5);
        t.incr("gp_nll_evals", 40);
        t.gauge_set("run_utilization", 0.875);
        t.observe("gp_fit_s", 0.25);
        t.emit(Event::EvalStarted { task: 0, worker: 0 });
        t.emit(Event::EvalFinished {
            task: 0,
            worker: 0,
            value: 1.5,
        });
        t.emit(Event::EvalStarted { task: 1, worker: 1 });
        t
    }

    #[test]
    fn board_renders_prometheus_and_json() {
        let board = StatusBoard::new();
        board.register("opamp", sample_session());
        let text = board.prometheus();
        assert!(text.contains("# TYPE easybo_gp_nll_evals counter"));
        assert!(text.contains("easybo_gp_nll_evals{session=\"opamp\"} 40"));
        assert!(text.contains("# TYPE easybo_run_utilization gauge"));
        assert!(text.contains("# TYPE easybo_gp_fit_s summary"));
        assert!(text.contains("easybo_gp_fit_s_count{session=\"opamp\"} 1"));
        assert!(text.contains("easybo_session_inflight{session=\"opamp\"} 1"));
        assert!(text.contains("easybo_session_best_fom{session=\"opamp\"} 1.5"));

        let json = board.sessions_json();
        assert!(json.contains("\"name\":\"opamp\""));
        assert!(json.contains("\"inflight\":1"));
        assert!(json.contains("\"best_fom\":1.5"));
        assert!(json.contains("\"utilization\":0.875"));

        let status = &board.statuses()[0];
        assert_eq!(status.clock, 12.5);
        assert_eq!(status.evals_started, 2);

        board.deregister("opamp");
        assert!(board.names().is_empty());
        assert_eq!(board.sessions_json(), "{\"sessions\":[]}\n");
    }

    #[test]
    fn disabled_sessions_serve_no_metrics() {
        let board = StatusBoard::new();
        board.register("off", Telemetry::disabled());
        assert_eq!(board.prometheus(), "");
        // Still listed, with default state.
        let json = board.sessions_json();
        assert!(json.contains("\"name\":\"off\""));
        assert!(json.contains("\"best_fom\":null"));
    }

    #[test]
    fn server_serves_all_routes_and_shuts_down() {
        let server = ScrapeServer::bind("127.0.0.1:0").unwrap();
        server.board().register("s1", sample_session());
        let addr = server.local_addr();

        let metrics = http_get(addr, "/metrics");
        assert!(metrics.starts_with("HTTP/1.1 200 OK"), "{metrics}");
        assert!(metrics.contains("version=0.0.4"));
        assert!(metrics.contains("easybo_gp_nll_evals{session=\"s1\"} 40"));

        let sessions = http_get(addr, "/sessions");
        assert!(sessions.contains("application/json"));
        assert!(sessions.contains("\"name\":\"s1\""));

        assert!(http_get(addr, "/healthz").contains("ok"));
        assert!(http_get(addr, "/nope").starts_with("HTTP/1.1 404"));

        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(b"POST /metrics HTTP/1.1\r\n\r\n").unwrap();
        let mut resp = String::new();
        stream.read_to_string(&mut resp).unwrap();
        assert!(resp.starts_with("HTTP/1.1 405"));

        server.shutdown();
    }

    #[test]
    fn label_escaping_keeps_exposition_parseable() {
        let board = StatusBoard::new();
        let t = Telemetry::new();
        t.incr("x", 1);
        board.register("we\"ird\\name", t);
        let text = board.prometheus();
        assert!(text.contains("session=\"we\\\"ird\\\\name\""));
    }
}
