//! Structured run telemetry for the EasyBO stack.
//!
//! The paper's headline claims are *timeline* claims — asynchronous
//! batching wins because it overlaps simulations and keeps workers busy
//! (Fig. 1, Figs. 4/6, Tables I/II wall-clock columns). This crate is
//! the observability substrate that makes those timelines visible
//! inside a run rather than only after it:
//!
//! - [`Event`] — a structured event log (queries issued, evaluations
//!   started/finished, GP refits, acquisition optimizations,
//!   pseudo-point penalization, worker idle gaps), timestamped with the
//!   run's own clock: virtual seconds under the discrete-event
//!   executor, real seconds under the threaded executor.
//! - [`Metrics`] — a lightweight registry of counters, gauges, and
//!   streaming histograms (Cholesky solves, kernel evaluations,
//!   acquisition restarts, queue wait, per-worker utilization) with
//!   RAII [`ScopedTimer`] guards.
//! - Pluggable sinks — the disabled handle compiles to an `Option`
//!   check with **no heap allocation per event**; [`Recorder`] captures
//!   events in memory for tests; [`JsonlSink`] / [`TraceCsvSink`]
//!   stream JSONL / Fig. 4-style CSV that can regenerate the paper's
//!   traces and timing columns directly from the event stream (see
//!   [`replay`]).
//! - [`RunReport`] — an end-of-run summary (utilization, idle
//!   fraction, GP-fit and acquisition share of makespan) attached to
//!   optimization results upstream.
//!
//! The crate is `std`-only by design: the workspace builds in an
//! offline environment, and instrumentation this central must not pull
//! in dependencies.
//!
//! # Example
//!
//! ```
//! use easybo_telemetry::{Event, Telemetry};
//!
//! let (telemetry, recorder) = Telemetry::recording();
//! telemetry.set_now(12.5);
//! telemetry.emit(Event::EvalFinished { task: 0, worker: 1, value: 0.8 });
//! telemetry.incr("cholesky_solves", 3);
//! assert_eq!(recorder.events().len(), 1);
//! assert_eq!(telemetry.metrics_snapshot().unwrap().counter("cholesky_solves"), 3);
//! ```

mod aggregate;
mod chrome_trace;
mod event;
mod json;
mod metrics;
mod report;
mod serve;
mod sink;
mod span;
mod telemetry;

pub mod replay;

pub use aggregate::{
    gate, parse_aggregate, parse_baseline, AggregateReport, GateBound, Regression, ReportSet, Stat,
};
pub use chrome_trace::{chrome_trace_json, ChromeTraceSink};
pub use event::{Event, TimedEvent};
pub use json::{parse_json, JsonValue};
pub use metrics::{
    CounterHandle, GaugeHandle, HistogramHandle, HistogramSummary, Metrics, MetricsSnapshot,
    ScopedTimer,
};
pub use report::{RunReport, SummaryData};
pub use serve::{ScrapeServer, SessionStatus, StatusBoard};
pub use sink::{to_json_line, EventSink, JsonlSink, Recorder, TraceCsvSink};
pub use span::{render_span_tree, span_tree, SpanGuard, SpanNode};
pub use telemetry::Telemetry;
