//! Lightweight metrics registry: counters, gauges, streaming
//! histograms, and RAII scoped timers.
//!
//! Handles returned by the registry are cheap `Arc` clones, so hot
//! loops (e.g. the NLL evaluations inside GP training) can look a
//! metric up once and increment lock-free afterwards.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Registry of named metrics. Names are `&'static str` by convention —
/// instrumentation sites use literal names, so registration never
/// allocates after first use.
#[derive(Debug, Default)]
pub struct Metrics {
    counters: Mutex<BTreeMap<&'static str, Arc<AtomicU64>>>,
    gauges: Mutex<BTreeMap<&'static str, Arc<AtomicU64>>>,
    histograms: Mutex<BTreeMap<&'static str, Arc<Mutex<HistogramSummary>>>>,
}

/// Cloneable handle to one counter.
#[derive(Debug, Clone)]
pub struct CounterHandle(Arc<AtomicU64>);

/// Cloneable handle to one gauge (an `f64` stored as bits).
#[derive(Debug, Clone)]
pub struct GaugeHandle(Arc<AtomicU64>);

/// Cloneable handle to one streaming histogram.
#[derive(Debug, Clone)]
pub struct HistogramHandle(Arc<Mutex<HistogramSummary>>);

/// Streaming summary of observed samples (no buckets are kept; the
/// run-level reports only need totals and extremes).
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSummary {
    /// Number of observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: f64,
    /// Smallest observation.
    pub min: f64,
    /// Largest observation.
    pub max: f64,
}

impl Default for HistogramSummary {
    fn default() -> Self {
        HistogramSummary {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }
}

impl HistogramSummary {
    /// Mean of observations (`None` when empty).
    pub fn mean(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.sum / self.count as f64)
        }
    }

    fn observe(&mut self, v: f64) {
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }
}

impl Metrics {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Metrics::default()
    }

    /// Returns (registering on first use) the counter named `name`.
    pub fn counter(&self, name: &'static str) -> CounterHandle {
        let mut map = self.counters.lock().unwrap();
        CounterHandle(Arc::clone(map.entry(name).or_default()))
    }

    /// Returns (registering on first use) the gauge named `name`.
    pub fn gauge(&self, name: &'static str) -> GaugeHandle {
        let mut map = self.gauges.lock().unwrap();
        GaugeHandle(Arc::clone(map.entry(name).or_default()))
    }

    /// Returns (registering on first use) the histogram named `name`.
    pub fn histogram(&self, name: &'static str) -> HistogramHandle {
        let mut map = self.histograms.lock().unwrap();
        HistogramHandle(Arc::clone(map.entry(name).or_default()))
    }

    /// Point-in-time copy of every metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .counters
                .lock()
                .unwrap()
                .iter()
                .map(|(&k, v)| (k, v.load(Ordering::Relaxed)))
                .collect(),
            gauges: self
                .gauges
                .lock()
                .unwrap()
                .iter()
                .map(|(&k, v)| (k, f64::from_bits(v.load(Ordering::Relaxed))))
                .collect(),
            histograms: self
                .histograms
                .lock()
                .unwrap()
                .iter()
                .map(|(&k, v)| (k, v.lock().unwrap().clone()))
                .collect(),
        }
    }
}

impl CounterHandle {
    /// Adds `n` to the counter.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Increments the counter by one.
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

impl GaugeHandle {
    /// Sets the gauge.
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

impl HistogramHandle {
    /// Records one observation.
    pub fn observe(&self, v: f64) {
        self.0.lock().unwrap().observe(v);
    }

    /// Current summary.
    pub fn summary(&self) -> HistogramSummary {
        self.0.lock().unwrap().clone()
    }
}

/// RAII guard that observes its elapsed real time (seconds) into a
/// histogram when dropped. Obtained from
/// [`Telemetry::timer`](crate::Telemetry::timer); the disabled handle
/// yields an inert guard.
#[derive(Debug)]
pub struct ScopedTimer {
    target: Option<(Instant, HistogramHandle)>,
}

impl ScopedTimer {
    pub(crate) fn started(histogram: HistogramHandle) -> Self {
        ScopedTimer {
            target: Some((Instant::now(), histogram)),
        }
    }

    pub(crate) fn inert() -> Self {
        ScopedTimer { target: None }
    }

    /// Stops the timer early, returning the elapsed seconds it
    /// recorded (`None` for an inert guard).
    pub fn stop(mut self) -> Option<f64> {
        self.finish()
    }

    fn finish(&mut self) -> Option<f64> {
        self.target.take().map(|(start, histogram)| {
            let secs = start.elapsed().as_secs_f64();
            histogram.observe(secs);
            secs
        })
    }
}

impl Drop for ScopedTimer {
    fn drop(&mut self) {
        self.finish();
    }
}

/// Point-in-time copy of a [`Metrics`] registry.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<&'static str, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<&'static str, f64>,
    /// Histogram summaries by name.
    pub histograms: BTreeMap<&'static str, HistogramSummary>,
}

impl MetricsSnapshot {
    /// Counter value, `0` if never touched.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Gauge value, `None` if never set.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Histogram summary, `None` if never observed.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSummary> {
        self.histograms.get(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_across_handles() {
        let m = Metrics::new();
        let a = m.counter("solves");
        let b = m.counter("solves");
        a.incr();
        b.add(4);
        assert_eq!(m.snapshot().counter("solves"), 5);
        assert_eq!(m.snapshot().counter("untouched"), 0);
    }

    #[test]
    fn gauges_hold_last_value() {
        let m = Metrics::new();
        m.gauge("utilization").set(0.75);
        m.gauge("utilization").set(0.5);
        assert_eq!(m.snapshot().gauge("utilization"), Some(0.5));
        assert_eq!(m.snapshot().gauge("missing"), None);
    }

    #[test]
    fn histograms_track_extremes_and_mean() {
        let m = Metrics::new();
        let h = m.histogram("queue_wait");
        for v in [2.0, 4.0, 9.0] {
            h.observe(v);
        }
        let s = h.summary();
        assert_eq!(s.count, 3);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
        assert_eq!(s.mean(), Some(5.0));
        assert_eq!(HistogramSummary::default().mean(), None);
    }

    #[test]
    fn scoped_timer_records_on_drop() {
        let m = Metrics::new();
        {
            let _t = ScopedTimer::started(m.histogram("span"));
            std::hint::black_box(0u64);
        }
        let s = m.histogram("span").summary();
        assert_eq!(s.count, 1);
        assert!(s.sum >= 0.0);
        // Inert guards record nothing.
        drop(ScopedTimer::inert());
        assert_eq!(m.histogram("span").summary().count, 1);
    }

    #[test]
    fn scoped_timer_stop_returns_elapsed() {
        let m = Metrics::new();
        let t = ScopedTimer::started(m.histogram("span"));
        let secs = t.stop().expect("live timer reports elapsed");
        assert!(secs >= 0.0);
        assert_eq!(m.histogram("span").summary().count, 1);
        assert_eq!(ScopedTimer::inert().stop(), None);
    }
}
