//! End-of-run summaries: the built-in event aggregate and the
//! `RunReport` attached to optimization results.

use std::fmt;

use crate::event::{Event, TimedEvent};
use crate::metrics::{HistogramSummary, MetricsSnapshot};

/// Running aggregate over every emitted event, maintained by the
/// telemetry handle itself so a report is available regardless of which
/// sinks (if any) were attached.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SummaryData {
    /// Total events emitted.
    pub events: usize,
    /// `QueryIssued` count.
    pub queries_issued: usize,
    /// `EvalStarted` count.
    pub evals_started: usize,
    /// `EvalFinished` count.
    pub evals_finished: usize,
    /// `GpRefit` count.
    pub gp_refits: usize,
    /// Real seconds spent in GP refits.
    pub gp_fit_seconds: f64,
    /// `AcqOptimized` count.
    pub acq_optimizations: usize,
    /// Real seconds spent maximizing the acquisition.
    pub acq_seconds: f64,
    /// Acquisition-function evaluations consumed.
    pub acq_evals: usize,
    /// Pseudo-points hallucinated across all selections.
    pub pseudo_points: usize,
    /// Run-clock seconds of reported worker idleness.
    pub worker_idle_seconds: f64,
    /// `EvalFailed` count (failed attempts, not failed tasks).
    pub evals_failed: usize,
    /// `EvalRetried` count (requeued attempts).
    pub evals_retried: usize,
    /// `WorkerCrashed` count (workers permanently lost).
    pub worker_crashes: usize,
    /// `CheckpointWritten` count (durable snapshots on disk).
    pub checkpoints_written: usize,
    /// `RunResumed` count (snapshot restores feeding this run).
    pub resumes: usize,
    /// `SpanStart` count (phases opened on the run timeline).
    pub spans: usize,
    /// `SpecViolated` count (spec × evaluation violations, constrained
    /// runs only).
    pub spec_violations: usize,
    /// `FeasibleIncumbent` count (feasible best-so-far improvements,
    /// constrained runs only).
    pub feasible_incumbents: usize,
    /// Best objective value observed so far (max over
    /// `EvalFinished`), `None` before the first completion.
    pub best_value: Option<f64>,
    /// Best *feasible* objective value (max over `FeasibleIncumbent`),
    /// `None` for unconstrained runs or before any feasible point.
    pub best_feasible: Option<f64>,
}

impl SummaryData {
    pub(crate) fn absorb(&mut self, ev: &TimedEvent) {
        self.events += 1;
        match &ev.event {
            Event::QueryIssued { .. } => self.queries_issued += 1,
            Event::EvalStarted { .. } => self.evals_started += 1,
            Event::EvalFinished { value, .. } => {
                self.evals_finished += 1;
                self.best_value = Some(self.best_value.map_or(*value, |b| b.max(*value)));
            }
            Event::GpRefit { duration, .. } => {
                self.gp_refits += 1;
                self.gp_fit_seconds += duration;
            }
            Event::AcqOptimized {
                evals, duration, ..
            } => {
                self.acq_optimizations += 1;
                self.acq_evals += evals;
                self.acq_seconds += duration;
            }
            Event::PseudoPointAdded { count } => self.pseudo_points += count,
            Event::WorkerIdle { gap, .. } => self.worker_idle_seconds += gap,
            Event::EvalFailed { .. } => self.evals_failed += 1,
            Event::EvalRetried { .. } => self.evals_retried += 1,
            Event::WorkerCrashed { .. } => self.worker_crashes += 1,
            Event::CheckpointWritten { .. } => self.checkpoints_written += 1,
            Event::RunResumed { .. } => self.resumes += 1,
            // Service-level events describe the multi-session manager,
            // not any single run; they stay out of per-run summaries.
            Event::SessionEvicted { .. } | Event::SessionRehydrated { .. } => {}
            Event::SpecViolated { .. } => self.spec_violations += 1,
            Event::FeasibleIncumbent { value, .. } => {
                self.feasible_incumbents += 1;
                self.best_feasible = Some(self.best_feasible.map_or(*value, |b| b.max(*value)));
            }
            Event::SpanStart { .. } => self.spans += 1,
            Event::SpanEnd { .. } => {}
        }
    }
}

/// Where the run's time went: scheduling quality from the executor's
/// `Schedule` plus model overhead from telemetry (when enabled).
///
/// `gp_fit_share`/`acq_share` divide *real* seconds of model overhead
/// by the run's makespan. Under the threaded executor both sides are
/// real seconds; under the virtual executor the makespan is virtual
/// simulation seconds, so the shares compare actual BO overhead against
/// the simulated simulator cost — exactly the comparison behind the
/// paper's claim that model overhead is negligible next to circuit
/// simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct RunReport {
    /// Run makespan in run-clock seconds.
    pub makespan: f64,
    /// Workers in the executor.
    pub workers: usize,
    /// Fraction of `workers × makespan` spent evaluating, in [0, 1].
    pub utilization: f64,
    /// `1 − utilization`.
    pub idle_fraction: f64,
    /// Completed evaluations.
    pub completed: usize,
    /// Telemetry aggregate (`None` when the run had telemetry
    /// disabled; the scheduling fields above are always available).
    pub summary: Option<SummaryData>,
    /// GP-fit real seconds / makespan (`None` without telemetry or
    /// with a zero makespan).
    pub gp_fit_share: Option<f64>,
    /// Acquisition real seconds / makespan (`None` without telemetry
    /// or with a zero makespan).
    pub acq_share: Option<f64>,
    /// Checkpoint real seconds (snapshot encode + durable write) /
    /// makespan (`None` without the snapshot histograms or with a
    /// zero makespan).
    pub checkpoint_share: Option<f64>,
    /// `snapshot_encode_ns` histogram: per-checkpoint time spent
    /// encoding the snapshot payload (`None` when never observed).
    pub snapshot_encode: Option<HistogramSummary>,
    /// `snapshot_fsync_ns` histogram: per-checkpoint time spent on
    /// the durable write (tmp file + fsync + rename; `None` when
    /// never observed).
    pub snapshot_fsync: Option<HistogramSummary>,
    /// Rank-1 Cholesky extensions of the cached factor (per-tell
    /// appends and pseudo-point pushes; `None` without metrics).
    pub cholesky_updates: Option<u64>,
    /// Rank-1 Cholesky downdates (pseudo-point pops; `None` without
    /// metrics).
    pub cholesky_downdates: Option<u64>,
    /// Full `O(n³)` Cholesky factorizations of the surrogate itself —
    /// the `cholesky_full` counter, which excludes the factorizations
    /// inside training NLL evaluations (hyperparameter retrainings
    /// only on the incremental path; `None` without metrics).
    pub gp_factorizations: Option<u64>,
    /// Jitter-ladder escalations and rank-1 pivot floors (`None`
    /// without metrics).
    pub cholesky_jitter_bumps: Option<u64>,
    /// `updates / (updates + full factorizations)`: fraction of factor
    /// work served by rank-1 updates instead of full refactorizes
    /// (`None` without metrics or before any factor work).
    pub incremental_update_share: Option<f64>,
    /// `feasible_points / (feasible_points + infeasible_points)` from
    /// the metrics counters — the fraction of completed evaluations
    /// that satisfied every spec (`None` for unconstrained runs or
    /// without metrics).
    pub feasible_fraction: Option<f64>,
}

impl RunReport {
    /// Builds a report from schedule-level facts plus the optional
    /// telemetry aggregate.
    pub fn new(
        makespan: f64,
        workers: usize,
        utilization: f64,
        completed: usize,
        summary: Option<SummaryData>,
    ) -> Self {
        RunReport::with_metrics(makespan, workers, utilization, completed, summary, None)
    }

    /// Like [`RunReport::new`], but additionally mines a metrics
    /// snapshot for the checkpoint write-path histograms
    /// (`snapshot_encode_ns` / `snapshot_fsync_ns`) and derives the
    /// checkpoint share of makespan from them.
    pub fn with_metrics(
        makespan: f64,
        workers: usize,
        utilization: f64,
        completed: usize,
        summary: Option<SummaryData>,
        metrics: Option<&MetricsSnapshot>,
    ) -> Self {
        let share = |secs: f64| {
            if makespan > 0.0 {
                Some(secs / makespan)
            } else {
                None
            }
        };
        let gp_fit_share = summary.as_ref().and_then(|s| share(s.gp_fit_seconds));
        let acq_share = summary.as_ref().and_then(|s| share(s.acq_seconds));
        let snapshot_encode = metrics
            .and_then(|m| m.histogram("snapshot_encode_ns"))
            .filter(|h| h.count > 0)
            .cloned();
        let snapshot_fsync = metrics
            .and_then(|m| m.histogram("snapshot_fsync_ns"))
            .filter(|h| h.count > 0)
            .cloned();
        let checkpoint_ns = snapshot_encode.as_ref().map_or(0.0, |h| h.sum)
            + snapshot_fsync.as_ref().map_or(0.0, |h| h.sum);
        let checkpoint_share = if snapshot_encode.is_some() || snapshot_fsync.is_some() {
            share(checkpoint_ns / 1e9)
        } else {
            None
        };
        let counter = |name: &str| metrics.map(|m| m.counter(name));
        let cholesky_updates = counter("cholesky_update");
        let cholesky_downdates = counter("cholesky_downdate");
        let gp_factorizations = counter("cholesky_full");
        let cholesky_jitter_bumps = counter("cholesky_jitter_bumps");
        let incremental_update_share = match (cholesky_updates, gp_factorizations) {
            (Some(up), Some(full)) if up + full > 0 => Some(up as f64 / (up + full) as f64),
            _ => None,
        };
        let feasible_fraction = match (counter("feasible_points"), counter("infeasible_points")) {
            (Some(feas), Some(infeas)) if feas + infeas > 0 => {
                Some(feas as f64 / (feas + infeas) as f64)
            }
            _ => None,
        };
        RunReport {
            makespan,
            workers,
            utilization,
            idle_fraction: (1.0 - utilization).max(0.0),
            completed,
            summary,
            gp_fit_share,
            acq_share,
            checkpoint_share,
            snapshot_encode,
            snapshot_fsync,
            cholesky_updates,
            cholesky_downdates,
            gp_factorizations,
            cholesky_jitter_bumps,
            incremental_update_share,
            feasible_fraction,
        }
    }
}

impl fmt::Display for RunReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "run report: {} evals over {:.1}s on {} workers",
            self.completed, self.makespan, self.workers
        )?;
        writeln!(
            f,
            "  utilization {:.1}%  idle {:.1}%",
            100.0 * self.utilization,
            100.0 * self.idle_fraction
        )?;
        match &self.summary {
            Some(s) => {
                writeln!(
                    f,
                    "  gp refits {} ({:.3}s real{})",
                    s.gp_refits,
                    s.gp_fit_seconds,
                    self.gp_fit_share
                        .map(|v| format!(", {:.2}% of makespan", 100.0 * v))
                        .unwrap_or_default()
                )?;
                writeln!(
                    f,
                    "  acq optimizations {} ({} evals, {:.3}s real{})",
                    s.acq_optimizations,
                    s.acq_evals,
                    s.acq_seconds,
                    self.acq_share
                        .map(|v| format!(", {:.2}% of makespan", 100.0 * v))
                        .unwrap_or_default()
                )?;
                if s.checkpoints_written > 0 {
                    let ms = |h: &Option<HistogramSummary>| {
                        h.as_ref()
                            .and_then(|h| h.mean())
                            .map(|ns| format!("{:.3}ms", ns / 1e6))
                            .unwrap_or_else(|| "-".to_string())
                    };
                    writeln!(
                        f,
                        "  checkpoints {} (encode {} fsync {} mean{})",
                        s.checkpoints_written,
                        ms(&self.snapshot_encode),
                        ms(&self.snapshot_fsync),
                        self.checkpoint_share
                            .map(|v| format!(", {:.2}% of makespan", 100.0 * v))
                            .unwrap_or_default()
                    )?;
                }
                if let (Some(up), Some(down), Some(full)) = (
                    self.cholesky_updates,
                    self.cholesky_downdates,
                    self.gp_factorizations,
                ) {
                    if up + down + full > 0 {
                        writeln!(
                            f,
                            "  cholesky updates {up}  downdates {down}  full factorizations {full}{}",
                            self.incremental_update_share
                                .map(|v| format!("  ({:.1}% incremental)", 100.0 * v))
                                .unwrap_or_default()
                        )?;
                    }
                }
                if s.spec_violations + s.feasible_incumbents > 0 {
                    writeln!(
                        f,
                        "  spec violations {}  feasible incumbents {}{}{}",
                        s.spec_violations,
                        s.feasible_incumbents,
                        s.best_feasible
                            .map(|v| format!("  best feasible {v:.4}"))
                            .unwrap_or_default(),
                        self.feasible_fraction
                            .map(|v| format!("  ({:.1}% feasible)", 100.0 * v))
                            .unwrap_or_default()
                    )?;
                }
                if s.evals_failed + s.evals_retried + s.worker_crashes > 0 {
                    writeln!(
                        f,
                        "  failed attempts {}  retries {}  worker crashes {}",
                        s.evals_failed, s.evals_retried, s.worker_crashes
                    )?;
                }
                write!(f, "  pseudo-points {}", s.pseudo_points)
            }
            None => write!(f, "  (telemetry disabled: no model-overhead breakdown)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at(time: f64, event: Event) -> TimedEvent {
        TimedEvent { time, event }
    }

    #[test]
    fn summary_aggregates_by_variant() {
        let mut s = SummaryData::default();
        s.absorb(&at(0.0, Event::QueryIssued { task: 0, worker: 0 }));
        s.absorb(&at(0.0, Event::EvalStarted { task: 0, worker: 0 }));
        s.absorb(&at(
            1.0,
            Event::GpRefit {
                n: 9,
                hyperparams: vec![0.0],
                duration: 0.5,
            },
        ));
        s.absorb(&at(
            1.0,
            Event::AcqOptimized {
                restarts: 3,
                evals: 100,
                duration: 0.25,
            },
        ));
        s.absorb(&at(1.0, Event::PseudoPointAdded { count: 2 }));
        s.absorb(&at(
            2.0,
            Event::EvalFinished {
                task: 0,
                worker: 0,
                value: 1.0,
            },
        ));
        s.absorb(&at(
            2.0,
            Event::WorkerIdle {
                worker: 1,
                gap: 3.5,
            },
        ));
        assert_eq!(s.events, 7);
        assert_eq!(s.queries_issued, 1);
        assert_eq!(s.evals_started, 1);
        assert_eq!(s.evals_finished, 1);
        assert_eq!(s.gp_refits, 1);
        assert_eq!(s.gp_fit_seconds, 0.5);
        assert_eq!(s.acq_optimizations, 1);
        assert_eq!(s.acq_evals, 100);
        assert_eq!(s.acq_seconds, 0.25);
        assert_eq!(s.pseudo_points, 2);
        assert_eq!(s.worker_idle_seconds, 3.5);
    }

    #[test]
    fn summary_counts_failure_events() {
        let mut s = SummaryData::default();
        s.absorb(&at(
            1.0,
            Event::EvalFailed {
                task: 0,
                worker: 0,
                attempt: 1,
                reason: "injected".to_string(),
            },
        ));
        s.absorb(&at(
            1.5,
            Event::EvalRetried {
                task: 0,
                attempt: 2,
                delay: 1.0,
            },
        ));
        s.absorb(&at(2.0, Event::WorkerCrashed { worker: 1, task: 3 }));
        assert_eq!(s.evals_failed, 1);
        assert_eq!(s.evals_retried, 1);
        assert_eq!(s.worker_crashes, 1);

        let report = RunReport::new(10.0, 2, 0.5, 4, Some(s));
        let text = report.to_string();
        assert!(text.contains("failed attempts 1"), "report text: {text}");
        assert!(text.contains("worker crashes 1"), "report text: {text}");
    }

    #[test]
    fn report_shares_need_telemetry_and_positive_makespan() {
        let bare = RunReport::new(100.0, 3, 0.8, 18, None);
        assert_eq!(bare.gp_fit_share, None);
        assert!((bare.idle_fraction - 0.2).abs() < 1e-12);

        let s = SummaryData {
            gp_fit_seconds: 2.0,
            acq_seconds: 1.0,
            ..SummaryData::default()
        };
        let full = RunReport::new(100.0, 3, 0.8, 18, Some(s.clone()));
        assert_eq!(full.gp_fit_share, Some(0.02));
        assert_eq!(full.acq_share, Some(0.01));

        let degenerate = RunReport::new(0.0, 3, 1.0, 0, Some(s));
        assert_eq!(degenerate.gp_fit_share, None);
        assert_eq!(degenerate.idle_fraction, 0.0);
    }

    #[test]
    fn report_mines_incremental_factor_counters() {
        let (t, _r) = crate::Telemetry::recording();
        t.incr("cholesky_update", 40);
        t.incr("cholesky_downdate", 30);
        t.incr("cholesky_full", 10);
        t.incr("cholesky_jitter_bumps", 2);
        let snap = t.metrics_snapshot().unwrap();
        let report =
            RunReport::with_metrics(50.0, 2, 0.9, 10, Some(SummaryData::default()), Some(&snap));
        assert_eq!(report.cholesky_updates, Some(40));
        assert_eq!(report.cholesky_downdates, Some(30));
        assert_eq!(report.gp_factorizations, Some(10));
        assert_eq!(report.cholesky_jitter_bumps, Some(2));
        assert_eq!(report.incremental_update_share, Some(0.8));
        let text = report.to_string();
        assert!(
            text.contains("cholesky updates 40  downdates 30  full factorizations 10"),
            "report text: {text}"
        );
        assert!(text.contains("(80.0% incremental)"), "report text: {text}");

        // No metrics snapshot: the factor fields stay unpopulated.
        let bare = RunReport::new(50.0, 2, 0.9, 10, Some(SummaryData::default()));
        assert_eq!(bare.cholesky_updates, None);
        assert_eq!(bare.incremental_update_share, None);

        // Metrics present but no factor work yet: counters are zero and
        // the share is undefined.
        let (t2, _r2) = crate::Telemetry::recording();
        let snap2 = t2.metrics_snapshot().unwrap();
        let idle = RunReport::with_metrics(50.0, 2, 0.9, 10, None, Some(&snap2));
        assert_eq!(idle.cholesky_updates, Some(0));
        assert_eq!(idle.incremental_update_share, None);
    }

    #[test]
    fn report_renders_both_modes() {
        let with = RunReport::new(
            50.0,
            2,
            0.9,
            10,
            Some(SummaryData {
                gp_refits: 4,
                gp_fit_seconds: 0.5,
                ..SummaryData::default()
            }),
        );
        let text = with.to_string();
        assert!(text.contains("utilization 90.0%"));
        assert!(text.contains("gp refits 4"));
        let without = RunReport::new(50.0, 2, 0.9, 10, None).to_string();
        assert!(without.contains("telemetry disabled"));
    }
}
