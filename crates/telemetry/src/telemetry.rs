//! The shared telemetry handle threaded through optimizer, policies,
//! GP training, and executors.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

use crate::event::{Event, TimedEvent};
use crate::metrics::{CounterHandle, Metrics, MetricsSnapshot, ScopedTimer};
use crate::report::SummaryData;
use crate::sink::{EventSink, Recorder};

/// Cheap, cloneable, thread-safe telemetry handle.
///
/// The disabled handle ([`Telemetry::disabled`], also `Default`) is a
/// `None` — every emission and metric call is a branch on an `Option`
/// with no allocation, locking, or event construction (use
/// [`Telemetry::emit_with`] so even the event payload is never built).
/// An enabled handle carries a run clock, a [`Metrics`] registry, a
/// built-in [`SummaryData`] aggregate, and any number of sinks.
///
/// The run clock is advanced by the executors via [`Telemetry::set_now`]
/// (virtual seconds under `VirtualExecutor`, real seconds under
/// `ThreadedExecutor`) so that components with no clock access of their
/// own — policies, GP training — stamp events consistently.
#[derive(Debug, Clone, Default)]
pub struct Telemetry {
    inner: Option<Arc<Inner>>,
}

struct Inner {
    sinks: RwLock<Vec<Box<dyn EventSink>>>,
    metrics: Metrics,
    summary: Mutex<SummaryData>,
    /// Run-clock seconds as `f64` bits.
    now_bits: AtomicU64,
    /// Next span id minus one (ids start at 1; see `crate::span`).
    span_ids: AtomicU64,
}

impl std::fmt::Debug for Inner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Inner")
            .field("sinks", &self.sinks.read().unwrap().len())
            .field(
                "now",
                &f64::from_bits(self.now_bits.load(Ordering::Relaxed)),
            )
            .finish_non_exhaustive()
    }
}

impl Telemetry {
    /// The no-op handle: every call short-circuits.
    pub fn disabled() -> Self {
        Telemetry { inner: None }
    }

    /// An enabled handle with metrics and summary but no sinks yet.
    pub fn new() -> Self {
        Telemetry {
            inner: Some(Arc::new(Inner {
                sinks: RwLock::new(Vec::new()),
                metrics: Metrics::new(),
                summary: Mutex::new(SummaryData::default()),
                now_bits: AtomicU64::new(0f64.to_bits()),
                span_ids: AtomicU64::new(0),
            })),
        }
    }

    /// An enabled handle with an attached in-memory [`Recorder`]
    /// (convenience for tests).
    pub fn recording() -> (Self, Recorder) {
        let t = Telemetry::new();
        let r = Recorder::new();
        t.add_sink(r.clone());
        (t, r)
    }

    /// Whether events are being collected.
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Attaches a sink; no-op on a disabled handle.
    pub fn add_sink<S: EventSink + 'static>(&self, sink: S) {
        if let Some(inner) = &self.inner {
            inner.sinks.write().unwrap().push(Box::new(sink));
        }
    }

    /// Advances the run clock (seconds). Called by the executors.
    pub fn set_now(&self, t: f64) {
        if let Some(inner) = &self.inner {
            inner.now_bits.store(t.to_bits(), Ordering::Release);
        }
    }

    /// Current run-clock seconds (`0.0` when disabled).
    pub fn now(&self) -> f64 {
        self.inner
            .as_ref()
            .map_or(0.0, |i| f64::from_bits(i.now_bits.load(Ordering::Acquire)))
    }

    /// Emits `event` at the current run-clock time.
    pub fn emit(&self, event: Event) {
        if self.inner.is_some() {
            self.emit_at(self.now(), event);
        }
    }

    /// Emits `event` at an explicit run-clock time.
    pub fn emit_at(&self, time: f64, event: Event) {
        if let Some(inner) = &self.inner {
            let ev = TimedEvent { time, event };
            inner.summary.lock().unwrap().absorb(&ev);
            for sink in inner.sinks.read().unwrap().iter() {
                sink.record(&ev);
            }
        }
    }

    /// Emits the event built by `f` at the current run-clock time —
    /// when disabled, `f` is never called, so hot paths pay only the
    /// `Option` check (no payload construction, no allocation).
    pub fn emit_with<F: FnOnce() -> Event>(&self, f: F) {
        if self.inner.is_some() {
            self.emit(f());
        }
    }

    /// Emits the event built by `f` at an explicit run-clock time;
    /// like [`Telemetry::emit_with`], `f` is never called when
    /// disabled.
    pub fn emit_at_with<F: FnOnce() -> Event>(&self, time: f64, f: F) {
        if self.inner.is_some() {
            self.emit_at(time, f());
        }
    }

    /// Adds `n` to counter `name`; no-op when disabled.
    pub fn incr(&self, name: &'static str, n: u64) {
        if let Some(inner) = &self.inner {
            inner.metrics.counter(name).add(n);
        }
    }

    /// Cached counter handle for hot loops (`None` when disabled).
    pub fn counter(&self, name: &'static str) -> Option<CounterHandle> {
        self.inner.as_ref().map(|i| i.metrics.counter(name))
    }

    /// Sets gauge `name`; no-op when disabled.
    pub fn gauge_set(&self, name: &'static str, v: f64) {
        if let Some(inner) = &self.inner {
            inner.metrics.gauge(name).set(v);
        }
    }

    /// Records one observation into histogram `name`; no-op when
    /// disabled.
    pub fn observe(&self, name: &'static str, v: f64) {
        if let Some(inner) = &self.inner {
            inner.metrics.histogram(name).observe(v);
        }
    }

    /// RAII timer that observes its elapsed real seconds into
    /// histogram `name` on drop; inert when disabled.
    pub fn timer(&self, name: &'static str) -> ScopedTimer {
        match &self.inner {
            Some(inner) => ScopedTimer::started(inner.metrics.histogram(name)),
            None => ScopedTimer::inert(),
        }
    }

    /// Claims the next span id (`None` when disabled). Ids start at 1
    /// so `0` can mean "no parent" in span events.
    pub(crate) fn alloc_span_id(&self) -> Option<u64> {
        self.inner
            .as_ref()
            .map(|i| i.span_ids.fetch_add(1, Ordering::Relaxed) + 1)
    }

    /// Snapshot of the metrics registry (`None` when disabled).
    pub fn metrics_snapshot(&self) -> Option<MetricsSnapshot> {
        self.inner.as_ref().map(|i| i.metrics.snapshot())
    }

    /// Copy of the built-in event aggregate (`None` when disabled).
    pub fn summary(&self) -> Option<SummaryData> {
        self.inner
            .as_ref()
            .map(|i| i.summary.lock().unwrap().clone())
    }

    /// Flushes every attached sink.
    pub fn flush(&self) {
        if let Some(inner) = &self.inner {
            for sink in inner.sinks.read().unwrap().iter() {
                sink.flush();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_short_circuits() {
        let t = Telemetry::disabled();
        assert!(!t.enabled());
        t.set_now(99.0);
        assert_eq!(t.now(), 0.0);
        t.emit_with(|| unreachable!("closure must not run when disabled"));
        t.emit_at_with(1.0, || unreachable!("closure must not run when disabled"));
        t.incr("anything", 5);
        assert!(t.counter("anything").is_none());
        assert!(t.metrics_snapshot().is_none());
        assert!(t.summary().is_none());
        assert!(!Telemetry::default().enabled());
    }

    #[test]
    fn clock_is_shared_across_clones() {
        let (t, r) = Telemetry::recording();
        let t2 = t.clone();
        t.set_now(42.5);
        assert_eq!(t2.now(), 42.5);
        t2.emit(Event::QueryIssued { task: 0, worker: 0 });
        let evs = r.events();
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].time, 42.5);
    }

    #[test]
    fn emit_at_overrides_clock_and_feeds_summary() {
        let (t, r) = Telemetry::recording();
        t.set_now(5.0);
        t.emit_at(
            2.0,
            Event::EvalFinished {
                task: 0,
                worker: 0,
                value: 1.0,
            },
        );
        t.emit_with(|| Event::PseudoPointAdded { count: 3 });
        assert_eq!(r.events()[0].time, 2.0);
        assert_eq!(r.events()[1].time, 5.0);
        let s = t.summary().unwrap();
        assert_eq!(s.events, 2);
        assert_eq!(s.evals_finished, 1);
        assert_eq!(s.pseudo_points, 3);
    }

    #[test]
    fn handle_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync + Clone>() {}
        assert_send_sync::<Telemetry>();
    }

    #[test]
    fn metrics_through_handle() {
        let t = Telemetry::new();
        t.incr("solves", 2);
        t.counter("solves").unwrap().incr();
        t.gauge_set("util", 0.9);
        t.observe("wait", 1.5);
        {
            let _timer = t.timer("fit");
        }
        let snap = t.metrics_snapshot().unwrap();
        assert_eq!(snap.counter("solves"), 3);
        assert_eq!(snap.gauge("util"), Some(0.9));
        assert_eq!(snap.histogram("wait").unwrap().count, 1);
        assert_eq!(snap.histogram("fit").unwrap().count, 1);
    }
}
