//! Reconstructing run artifacts from a recorded event stream — parse
//! the JSONL emitted by [`crate::JsonlSink`] back into events, and
//! regenerate the Fig. 4/6 best-so-far CSV exactly as
//! `RunTrace::to_csv()` would have produced it.

use crate::event::{Event, TimedEvent};

/// Parses text produced by [`crate::JsonlSink`] (one event per line,
/// blank lines ignored) back into events.
///
/// This is a reader for this crate's own restricted encoding, not a
/// general JSON parser.
///
/// # Errors
///
/// Returns a description of the first malformed line.
pub fn parse_jsonl(text: &str) -> Result<Vec<TimedEvent>, String> {
    text.lines()
        .enumerate()
        .filter(|(_, line)| !line.trim().is_empty())
        .map(|(i, line)| parse_line(line).map_err(|e| format!("line {}: {e}", i + 1)))
        .collect()
}

/// Rebuilds the best-so-far timeline CSV from `EvalFinished` events,
/// byte-identical to `RunTrace::to_csv()` for the same run: same
/// header, same shortest-roundtrip float formatting, same
/// `best = prev_best.max(value)` clamping.
pub fn best_so_far_csv(events: &[TimedEvent]) -> String {
    let mut out = String::from("time_s,completed,value,best_so_far\n");
    let mut completed = 0usize;
    let mut best: Option<f64> = None;
    for ev in events {
        let Event::EvalFinished { value, .. } = ev.event else {
            continue;
        };
        completed += 1;
        let b = best.map_or(value, |b| b.max(value));
        best = Some(b);
        out.push_str(&format!("{},{},{},{}\n", ev.time, completed, value, b));
    }
    out
}

fn parse_line(line: &str) -> Result<TimedEvent, String> {
    let time = num_field(line, "t")?;
    let kind = str_field(line, "event")?;
    let event = match kind {
        "QueryIssued" => Event::QueryIssued {
            task: usize_field(line, "task")?,
            worker: usize_field(line, "worker")?,
        },
        "EvalStarted" => Event::EvalStarted {
            task: usize_field(line, "task")?,
            worker: usize_field(line, "worker")?,
        },
        "EvalFinished" => Event::EvalFinished {
            task: usize_field(line, "task")?,
            worker: usize_field(line, "worker")?,
            value: num_field(line, "value")?,
        },
        "GpRefit" => Event::GpRefit {
            n: usize_field(line, "n")?,
            hyperparams: array_field(line, "hyperparams")?,
            duration: num_field(line, "duration")?,
        },
        "AcqOptimized" => Event::AcqOptimized {
            restarts: usize_field(line, "restarts")?,
            evals: usize_field(line, "evals")?,
            duration: num_field(line, "duration")?,
        },
        "PseudoPointAdded" => Event::PseudoPointAdded {
            count: usize_field(line, "count")?,
        },
        "WorkerIdle" => Event::WorkerIdle {
            worker: usize_field(line, "worker")?,
            gap: num_field(line, "gap")?,
        },
        "EvalFailed" => Event::EvalFailed {
            task: usize_field(line, "task")?,
            worker: usize_field(line, "worker")?,
            attempt: usize_field(line, "attempt")?,
            reason: str_field(line, "reason")?.to_string(),
        },
        "EvalRetried" => Event::EvalRetried {
            task: usize_field(line, "task")?,
            attempt: usize_field(line, "attempt")?,
            delay: num_field(line, "delay")?,
        },
        "WorkerCrashed" => Event::WorkerCrashed {
            worker: usize_field(line, "worker")?,
            task: usize_field(line, "task")?,
        },
        "CheckpointWritten" => Event::CheckpointWritten {
            completed: usize_field(line, "completed")?,
            bytes: usize_field(line, "bytes")?,
        },
        "RunResumed" => Event::RunResumed {
            completed: usize_field(line, "completed")?,
            inflight: usize_field(line, "inflight")?,
        },
        "SessionEvicted" => Event::SessionEvicted {
            session: u64_field(line, "session")?,
            resident: usize_field(line, "resident")?,
        },
        "SessionRehydrated" => Event::SessionRehydrated {
            session: u64_field(line, "session")?,
            inflight: usize_field(line, "inflight")?,
        },
        "SpecViolated" => Event::SpecViolated {
            task: usize_field(line, "task")?,
            spec: str_field(line, "spec")?.to_string(),
            slack: num_field(line, "slack")?,
        },
        "FeasibleIncumbent" => Event::FeasibleIncumbent {
            task: usize_field(line, "task")?,
            value: num_field(line, "value")?,
        },
        "SpanStart" => Event::SpanStart {
            id: u64_field(line, "id")?,
            parent: u64_field(line, "parent")?,
            name: std::borrow::Cow::Owned(str_field(line, "name")?.to_string()),
        },
        "SpanEnd" => Event::SpanEnd {
            id: u64_field(line, "id")?,
        },
        other => return Err(format!("unknown event kind {other:?}")),
    };
    Ok(TimedEvent { time, event })
}

/// Raw text of `"key":<value>`; arrays yield their bracket interior,
/// strings their quote interior.
fn raw_field<'a>(line: &'a str, key: &str) -> Result<&'a str, String> {
    let pat = format!("\"{key}\":");
    let start = line
        .find(&pat)
        .ok_or_else(|| format!("missing field {key:?}"))?
        + pat.len();
    let rest = &line[start..];
    if let Some(inner) = rest.strip_prefix('[') {
        let end = inner
            .find(']')
            .ok_or_else(|| format!("unterminated array for {key:?}"))?;
        Ok(&inner[..end])
    } else if let Some(inner) = rest.strip_prefix('"') {
        let end = inner
            .find('"')
            .ok_or_else(|| format!("unterminated string for {key:?}"))?;
        Ok(&inner[..end])
    } else {
        let end = rest.find([',', '}']).unwrap_or(rest.len());
        Ok(&rest[..end])
    }
}

fn str_field<'a>(line: &'a str, key: &str) -> Result<&'a str, String> {
    raw_field(line, key)
}

fn num_field(line: &str, key: &str) -> Result<f64, String> {
    let raw = raw_field(line, key)?;
    raw.parse()
        .map_err(|_| format!("bad number {raw:?} for {key:?}"))
}

fn usize_field(line: &str, key: &str) -> Result<usize, String> {
    let raw = raw_field(line, key)?;
    raw.parse()
        .map_err(|_| format!("bad integer {raw:?} for {key:?}"))
}

fn u64_field(line: &str, key: &str) -> Result<u64, String> {
    let raw = raw_field(line, key)?;
    raw.parse()
        .map_err(|_| format!("bad integer {raw:?} for {key:?}"))
}

fn array_field(line: &str, key: &str) -> Result<Vec<f64>, String> {
    let raw = raw_field(line, key)?;
    if raw.trim().is_empty() {
        return Ok(Vec::new());
    }
    raw.split(',')
        .map(|s| {
            s.trim()
                .parse()
                .map_err(|_| format!("bad array element {s:?} for {key:?}"))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::to_json_line;

    fn roundtrip(ev: TimedEvent) {
        let line = to_json_line(&ev);
        let parsed = parse_jsonl(&line).expect("parses own output");
        assert_eq!(parsed, vec![ev], "line was {line}");
    }

    #[test]
    fn every_variant_roundtrips_through_jsonl() {
        roundtrip(TimedEvent {
            time: 0.1 + 0.2, // deliberately non-representable sum
            event: Event::QueryIssued { task: 7, worker: 2 },
        });
        roundtrip(TimedEvent {
            time: 1e-9,
            event: Event::EvalStarted { task: 0, worker: 0 },
        });
        roundtrip(TimedEvent {
            time: 38.7,
            event: Event::EvalFinished {
                task: 3,
                worker: 1,
                value: -0.123456789,
            },
        });
        roundtrip(TimedEvent {
            time: 2.0,
            event: Event::GpRefit {
                n: 40,
                hyperparams: vec![-1.5, 0.333333333333, 2.0],
                duration: 0.015,
            },
        });
        roundtrip(TimedEvent {
            time: 2.0,
            event: Event::GpRefit {
                n: 0,
                hyperparams: vec![],
                duration: 0.0,
            },
        });
        roundtrip(TimedEvent {
            time: 3.5,
            event: Event::AcqOptimized {
                restarts: 3,
                evals: 1234,
                duration: 0.25,
            },
        });
        roundtrip(TimedEvent {
            time: 4.0,
            event: Event::PseudoPointAdded { count: 5 },
        });
        roundtrip(TimedEvent {
            time: 5.0,
            event: Event::WorkerIdle {
                worker: 1,
                gap: 12.75,
            },
        });
        roundtrip(TimedEvent {
            time: 6.25,
            event: Event::EvalFailed {
                task: 9,
                worker: 2,
                attempt: 1,
                reason: "timeout".to_string(),
            },
        });
        roundtrip(TimedEvent {
            time: 6.5,
            event: Event::EvalRetried {
                task: 9,
                attempt: 2,
                delay: 2.0,
            },
        });
        roundtrip(TimedEvent {
            time: 7.0,
            event: Event::WorkerCrashed { worker: 0, task: 4 },
        });
        roundtrip(TimedEvent {
            time: 8.0,
            event: Event::CheckpointWritten {
                completed: 12,
                bytes: 4096,
            },
        });
        roundtrip(TimedEvent {
            time: 0.0,
            event: Event::RunResumed {
                completed: 12,
                inflight: 3,
            },
        });
        roundtrip(TimedEvent {
            time: 9.0,
            event: Event::SpecViolated {
                task: 17,
                spec: "pm_deg>=50".to_string(),
                slack: -3.25,
            },
        });
        roundtrip(TimedEvent {
            time: 9.5,
            event: Event::FeasibleIncumbent {
                task: 18,
                value: 123.456789,
            },
        });
        roundtrip(TimedEvent {
            time: 1.25,
            event: Event::SpanStart {
                id: 7,
                parent: 3,
                name: std::borrow::Cow::Borrowed("gp_refit"),
            },
        });
        roundtrip(TimedEvent {
            time: 1.5,
            event: Event::SpanEnd { id: 7 },
        });
    }

    #[test]
    fn malformed_lines_are_reported() {
        assert!(parse_jsonl("{\"t\":1.0}").is_err());
        assert!(parse_jsonl("{\"t\":1.0,\"event\":\"Nope\"}").is_err());
        assert!(parse_jsonl("{\"t\":x,\"event\":\"PseudoPointAdded\",\"count\":1}").is_err());
        assert!(parse_jsonl("").unwrap().is_empty());
    }

    #[test]
    fn best_so_far_matches_trace_semantics() {
        let evs = vec![
            TimedEvent {
                time: 10.0,
                event: Event::EvalFinished {
                    task: 0,
                    worker: 0,
                    value: 1.0,
                },
            },
            TimedEvent {
                time: 12.0,
                event: Event::QueryIssued { task: 4, worker: 0 },
            },
            TimedEvent {
                time: 20.0,
                event: Event::EvalFinished {
                    task: 1,
                    worker: 1,
                    value: 0.5,
                },
            },
            TimedEvent {
                time: 30.0,
                event: Event::EvalFinished {
                    task: 2,
                    worker: 0,
                    value: 2.0,
                },
            },
        ];
        assert_eq!(
            best_so_far_csv(&evs),
            "time_s,completed,value,best_so_far\n\
             10,1,1,1\n\
             20,2,0.5,1\n\
             30,3,2,2\n"
        );
        assert_eq!(best_so_far_csv(&[]), "time_s,completed,value,best_so_far\n");
    }
}
