//! Multi-run report aggregation and baseline regression gating.
//!
//! The paper's efficiency claims (Tables I/II) are statements about
//! *distributions* over repeated runs, not single seeds — and the
//! ROADMAP's multi-session server needs exactly the same machinery to
//! watch a fleet. [`ReportSet`] merges N [`RunReport`]s into mean±std
//! summaries per metric; [`AggregateReport::to_json`] emits them in a
//! machine-readable form; and [`gate`] diffs an aggregate against a
//! committed baseline so `check.sh` can fail on phase-share
//! regressions (GP/acquisition/checkpoint share of makespan creeping
//! up, utilization dropping) the same way it fails on broken tests.

use std::collections::BTreeMap;
use std::fmt;
use std::fmt::Write as _;

use crate::json::parse_json;
use crate::report::RunReport;

/// Mean/std/extremes of one metric over a set of runs.
#[derive(Debug, Clone, PartialEq)]
pub struct Stat {
    /// Number of samples (runs that reported this metric).
    pub n: usize,
    /// Sample mean.
    pub mean: f64,
    /// Population standard deviation (0 for a single sample).
    pub std: f64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
}

impl Stat {
    /// Computes the summary (`None` for an empty sample set).
    pub fn from_samples(samples: &[f64]) -> Option<Stat> {
        if samples.is_empty() {
            return None;
        }
        let n = samples.len();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / n as f64;
        let min = samples.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = samples.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        Some(Stat {
            n,
            mean,
            std: var.sqrt(),
            min,
            max,
        })
    }
}

/// A collection of per-run reports awaiting aggregation.
#[derive(Debug, Clone, Default)]
pub struct ReportSet {
    reports: Vec<RunReport>,
}

impl ReportSet {
    /// An empty set.
    pub fn new() -> Self {
        ReportSet::default()
    }

    /// Adds one run's report.
    pub fn push(&mut self, report: RunReport) {
        self.reports.push(report);
    }

    /// Builds a set from existing reports.
    pub fn from_reports(reports: Vec<RunReport>) -> Self {
        ReportSet { reports }
    }

    /// Number of runs collected.
    pub fn len(&self) -> usize {
        self.reports.len()
    }

    /// Whether no runs were collected.
    pub fn is_empty(&self) -> bool {
        self.reports.is_empty()
    }

    /// Merges the collected reports into per-metric mean±std
    /// summaries. Metrics that only exist with telemetry enabled
    /// (shares, event counts) aggregate over the runs that reported
    /// them and are omitted when no run did.
    pub fn aggregate(&self) -> AggregateReport {
        let mut samples: BTreeMap<&'static str, Vec<f64>> = BTreeMap::new();
        let mut put = |key: &'static str, v: Option<f64>| {
            if let Some(v) = v {
                samples.entry(key).or_default().push(v);
            }
        };
        for r in &self.reports {
            put("makespan", Some(r.makespan));
            put("workers", Some(r.workers as f64));
            put("utilization", Some(r.utilization));
            put("idle_fraction", Some(r.idle_fraction));
            put("completed", Some(r.completed as f64));
            put("gp_fit_share", r.gp_fit_share);
            put("acq_share", r.acq_share);
            put("checkpoint_share", r.checkpoint_share);
            put("cholesky_updates", r.cholesky_updates.map(|v| v as f64));
            put("cholesky_downdates", r.cholesky_downdates.map(|v| v as f64));
            put("gp_factorizations", r.gp_factorizations.map(|v| v as f64));
            put(
                "cholesky_jitter_bumps",
                r.cholesky_jitter_bumps.map(|v| v as f64),
            );
            put("incremental_update_share", r.incremental_update_share);
            if let Some(s) = &r.summary {
                put("gp_refits", Some(s.gp_refits as f64));
                put("acq_optimizations", Some(s.acq_optimizations as f64));
                put("pseudo_points", Some(s.pseudo_points as f64));
                put("evals_failed", Some(s.evals_failed as f64));
                put("evals_retried", Some(s.evals_retried as f64));
                put("worker_crashes", Some(s.worker_crashes as f64));
                put("checkpoints_written", Some(s.checkpoints_written as f64));
                put("resumes", Some(s.resumes as f64));
                put("spans", Some(s.spans as f64));
                put("best_value", s.best_value);
            }
        }
        AggregateReport {
            runs: self.reports.len(),
            metrics: samples
                .into_iter()
                .filter_map(|(k, v)| Stat::from_samples(&v).map(|s| (k.to_string(), s)))
                .collect(),
        }
    }
}

/// Mean±std of every metric over a [`ReportSet`].
#[derive(Debug, Clone, PartialEq)]
pub struct AggregateReport {
    /// Number of runs merged.
    pub runs: usize,
    /// Per-metric summaries, keyed by metric name.
    pub metrics: BTreeMap<String, Stat>,
}

impl AggregateReport {
    /// Summary for one metric.
    pub fn metric(&self, name: &str) -> Option<&Stat> {
        self.metrics.get(name)
    }

    /// Machine-readable JSON form:
    /// `{"runs": N, "metrics": {name: {n, mean, std, min, max}}}`.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{{\n  \"runs\": {},", self.runs);
        out.push_str("  \"metrics\": {\n");
        for (i, (name, s)) in self.metrics.iter().enumerate() {
            let _ = write!(
                out,
                "    \"{name}\": {{\"n\": {}, \"mean\": {}, \"std\": {}, \"min\": {}, \"max\": {}}}",
                s.n, s.mean, s.std, s.min, s.max
            );
            out.push_str(if i + 1 < self.metrics.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("  }\n}\n");
        out
    }
}

/// Parses the JSON produced by [`AggregateReport::to_json`] back.
///
/// # Errors
///
/// Returns a description of the first structural problem.
pub fn parse_aggregate(text: &str) -> Result<AggregateReport, String> {
    let doc = parse_json(text)?;
    let runs = doc
        .get("runs")
        .and_then(|v| v.as_f64())
        .ok_or("missing numeric \"runs\"")? as usize;
    let metrics_obj = doc
        .get("metrics")
        .and_then(|v| v.as_object())
        .ok_or("missing object \"metrics\"")?;
    let mut metrics = BTreeMap::new();
    for (name, m) in metrics_obj {
        let num = |key: &str| {
            m.get(key)
                .and_then(|v| v.as_f64())
                .ok_or_else(|| format!("metric {name:?}: missing numeric {key:?}"))
        };
        metrics.insert(
            name.clone(),
            Stat {
                n: num("n")? as usize,
                mean: num("mean")?,
                std: num("std")?,
                min: num("min")?,
                max: num("max")?,
            },
        );
    }
    Ok(AggregateReport { runs, metrics })
}

/// One baseline bound: the committed expected mean and the allowed
/// absolute deviation.
#[derive(Debug, Clone, PartialEq)]
pub struct GateBound {
    /// Expected mean.
    pub mean: f64,
    /// Allowed absolute deviation of the observed mean.
    pub tol: f64,
}

/// One gate violation.
#[derive(Debug, Clone, PartialEq)]
pub struct Regression {
    /// Metric that moved.
    pub metric: String,
    /// Committed bound.
    pub expected: GateBound,
    /// Observed mean (`NaN` when the metric is missing entirely).
    pub actual: f64,
}

impl fmt::Display for Regression {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.actual.is_nan() {
            write!(
                f,
                "{}: missing from aggregate (baseline {} ± {})",
                self.metric, self.expected.mean, self.expected.tol
            )
        } else {
            write!(
                f,
                "{}: observed mean {} outside {} ± {}",
                self.metric, self.actual, self.expected.mean, self.expected.tol
            )
        }
    }
}

/// Parses a committed baseline document:
/// `{"metric": {"mean": M, "tol": T}, ...}`.
///
/// # Errors
///
/// Returns a description of the first structural problem.
pub fn parse_baseline(text: &str) -> Result<BTreeMap<String, GateBound>, String> {
    let doc = parse_json(text)?;
    let obj = doc.as_object().ok_or("baseline must be a JSON object")?;
    let mut bounds = BTreeMap::new();
    for (name, m) in obj {
        let num = |key: &str| {
            m.get(key)
                .and_then(|v| v.as_f64())
                .ok_or_else(|| format!("baseline {name:?}: missing numeric {key:?}"))
        };
        bounds.insert(
            name.clone(),
            GateBound {
                mean: num("mean")?,
                tol: num("tol")?,
            },
        );
    }
    Ok(bounds)
}

/// Diffs an aggregate against a baseline: every baseline metric must
/// be present with `|observed mean − expected mean| ≤ tol`. Metrics in
/// the aggregate but not the baseline are ignored (new metrics don't
/// fail old gates). Returns the violations, empty when the gate
/// passes.
pub fn gate(actual: &AggregateReport, baseline: &BTreeMap<String, GateBound>) -> Vec<Regression> {
    let mut regressions = Vec::new();
    for (name, bound) in baseline {
        match actual.metric(name) {
            Some(stat) if (stat.mean - bound.mean).abs() <= bound.tol => {}
            Some(stat) => regressions.push(Regression {
                metric: name.clone(),
                expected: bound.clone(),
                actual: stat.mean,
            }),
            None => regressions.push(Regression {
                metric: name.clone(),
                expected: bound.clone(),
                actual: f64::NAN,
            }),
        }
    }
    regressions
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(utilization: f64, completed: usize) -> RunReport {
        RunReport::new(100.0, 4, utilization, completed, None)
    }

    #[test]
    fn stats_cover_mean_std_extremes() {
        let s = Stat::from_samples(&[2.0, 4.0, 6.0]).unwrap();
        assert_eq!(s.n, 3);
        assert_eq!(s.mean, 4.0);
        assert!((s.std - (8.0f64 / 3.0).sqrt()).abs() < 1e-12);
        assert_eq!((s.min, s.max), (2.0, 6.0));
        assert_eq!(Stat::from_samples(&[]), None);
        let single = Stat::from_samples(&[7.0]).unwrap();
        assert_eq!(single.std, 0.0);
    }

    #[test]
    fn aggregate_merges_and_roundtrips_json() {
        let mut set = ReportSet::new();
        set.push(report(0.8, 10));
        set.push(report(0.9, 12));
        assert_eq!(set.len(), 2);
        let agg = set.aggregate();
        assert_eq!(agg.runs, 2);
        let util = agg.metric("utilization").unwrap();
        assert!((util.mean - 0.85).abs() < 1e-12);
        // Telemetry-only metrics are absent when no run had a summary.
        assert!(agg.metric("gp_refits").is_none());
        let parsed = parse_aggregate(&agg.to_json()).unwrap();
        assert_eq!(parsed, agg);
    }

    #[test]
    fn gate_flags_drift_and_missing_metrics() {
        let mut set = ReportSet::new();
        set.push(report(0.5, 10));
        let agg = set.aggregate();
        let baseline = parse_baseline(
            r#"{
                "utilization": {"mean": 0.9, "tol": 0.05},
                "completed": {"mean": 10, "tol": 0},
                "gp_fit_share": {"mean": 0.0, "tol": 0.2}
            }"#,
        )
        .unwrap();
        let regressions = gate(&agg, &baseline);
        assert_eq!(regressions.len(), 2, "{regressions:?}");
        assert_eq!(regressions[0].metric, "gp_fit_share");
        assert!(regressions[0].actual.is_nan());
        assert!(regressions[0].to_string().contains("missing"));
        assert_eq!(regressions[1].metric, "utilization");
        assert_eq!(regressions[1].actual, 0.5);

        let ok_baseline = parse_baseline(r#"{"utilization": {"mean": 0.5, "tol": 0.01}}"#).unwrap();
        assert!(gate(&agg, &ok_baseline).is_empty());
    }

    #[test]
    fn baseline_parse_errors_are_described() {
        assert!(parse_baseline("[1,2]").is_err());
        assert!(parse_baseline(r#"{"x": {"mean": 1}}"#)
            .unwrap_err()
            .contains("tol"));
    }
}
