//! Pluggable event sinks: in-memory recorder, JSONL writer, and a
//! Fig. 4-style best-so-far CSV writer.

use std::fmt::Write as _;
use std::io::Write;
use std::sync::{Arc, Mutex};

use crate::event::{Event, TimedEvent};

/// Destination for emitted events. Implementations take `&self` (the
/// telemetry handle is shared across threads) and use interior
/// mutability as needed.
pub trait EventSink: Send + Sync {
    /// Receives one timestamped event.
    fn record(&self, ev: &TimedEvent);

    /// Flushes any buffered output.
    fn flush(&self) {}
}

/// In-memory sink for tests: a cloneable handle onto the recorded
/// event vector.
#[derive(Debug, Clone, Default)]
pub struct Recorder {
    events: Arc<Mutex<Vec<TimedEvent>>>,
}

impl Recorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Recorder::default()
    }

    /// Copy of every recorded event, in emission order.
    pub fn events(&self) -> Vec<TimedEvent> {
        self.events.lock().unwrap().clone()
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.lock().unwrap().len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl EventSink for Recorder {
    fn record(&self, ev: &TimedEvent) {
        self.events.lock().unwrap().push(ev.clone());
    }
}

/// Encodes one event as a single JSON line.
///
/// Numbers are formatted with Rust's shortest-roundtrip `Display`, so
/// parsing them back with `str::parse::<f64>` reproduces the emitted
/// value bit-for-bit — the property behind [`crate::replay`]'s exact
/// trace reconstruction. Non-finite floats (which valid runs never
/// emit) would fall outside strict JSON.
pub fn to_json_line(ev: &TimedEvent) -> String {
    let mut s = String::with_capacity(96);
    let _ = write!(s, "{{\"t\":{},\"event\":\"{}\"", ev.time, ev.event.kind());
    match &ev.event {
        Event::QueryIssued { task, worker } | Event::EvalStarted { task, worker } => {
            let _ = write!(s, ",\"task\":{task},\"worker\":{worker}");
        }
        Event::EvalFinished {
            task,
            worker,
            value,
        } => {
            let _ = write!(s, ",\"task\":{task},\"worker\":{worker},\"value\":{value}");
        }
        Event::GpRefit {
            n,
            hyperparams,
            duration,
        } => {
            let _ = write!(s, ",\"n\":{n},\"hyperparams\":[");
            for (i, h) in hyperparams.iter().enumerate() {
                if i > 0 {
                    s.push(',');
                }
                let _ = write!(s, "{h}");
            }
            let _ = write!(s, "],\"duration\":{duration}");
        }
        Event::AcqOptimized {
            restarts,
            evals,
            duration,
        } => {
            let _ = write!(
                s,
                ",\"restarts\":{restarts},\"evals\":{evals},\"duration\":{duration}"
            );
        }
        Event::PseudoPointAdded { count } => {
            let _ = write!(s, ",\"count\":{count}");
        }
        Event::WorkerIdle { worker, gap } => {
            let _ = write!(s, ",\"worker\":{worker},\"gap\":{gap}");
        }
        Event::EvalFailed {
            task,
            worker,
            attempt,
            reason,
        } => {
            let _ = write!(
                s,
                ",\"task\":{task},\"worker\":{worker},\"attempt\":{attempt},\"reason\":\"{reason}\""
            );
        }
        Event::EvalRetried {
            task,
            attempt,
            delay,
        } => {
            let _ = write!(
                s,
                ",\"task\":{task},\"attempt\":{attempt},\"delay\":{delay}"
            );
        }
        Event::WorkerCrashed { worker, task } => {
            let _ = write!(s, ",\"worker\":{worker},\"task\":{task}");
        }
        Event::CheckpointWritten { completed, bytes } => {
            let _ = write!(s, ",\"completed\":{completed},\"bytes\":{bytes}");
        }
        Event::RunResumed {
            completed,
            inflight,
        } => {
            let _ = write!(s, ",\"completed\":{completed},\"inflight\":{inflight}");
        }
        Event::SessionEvicted { session, resident } => {
            let _ = write!(s, ",\"session\":{session},\"resident\":{resident}");
        }
        Event::SessionRehydrated { session, inflight } => {
            let _ = write!(s, ",\"session\":{session},\"inflight\":{inflight}");
        }
        Event::SpecViolated { task, spec, slack } => {
            let _ = write!(s, ",\"task\":{task},\"spec\":\"{spec}\",\"slack\":{slack}");
        }
        Event::FeasibleIncumbent { task, value } => {
            let _ = write!(s, ",\"task\":{task},\"value\":{value}");
        }
        Event::SpanStart { id, parent, name } => {
            let _ = write!(s, ",\"id\":{id},\"parent\":{parent},\"name\":\"{name}\"");
        }
        Event::SpanEnd { id } => {
            let _ = write!(s, ",\"id\":{id}");
        }
    }
    s.push('}');
    s
}

/// Streams events as JSON lines to any [`Write`] target.
pub struct JsonlSink<W: Write + Send> {
    writer: Mutex<W>,
}

impl<W: Write + Send> JsonlSink<W> {
    /// Wraps `writer`; one JSON object per event, newline-terminated.
    pub fn new(writer: W) -> Self {
        JsonlSink {
            writer: Mutex::new(writer),
        }
    }

    /// Consumes the sink, returning the inner writer.
    pub fn into_inner(self) -> W {
        self.writer.into_inner().unwrap()
    }
}

impl<W: Write + Send> EventSink for JsonlSink<W> {
    fn record(&self, ev: &TimedEvent) {
        let line = to_json_line(ev);
        let mut w = self.writer.lock().unwrap();
        let _ = writeln!(w, "{line}");
    }

    fn flush(&self) {
        let _ = self.writer.lock().unwrap().flush();
    }
}

/// Streams the best-so-far timeline as CSV — the same
/// `time_s,completed,value,best_so_far` format as
/// `RunTrace::to_csv()`, regenerated live from `EvalFinished` events
/// (the data behind the paper's Figs. 4/6).
pub struct TraceCsvSink<W: Write + Send> {
    state: Mutex<TraceCsvState<W>>,
}

struct TraceCsvState<W> {
    writer: W,
    completed: usize,
    best: Option<f64>,
}

impl<W: Write + Send> TraceCsvSink<W> {
    /// Wraps `writer`; the header row is written on the first event.
    pub fn new(writer: W) -> Self {
        TraceCsvSink {
            state: Mutex::new(TraceCsvState {
                writer,
                completed: 0,
                best: None,
            }),
        }
    }

    /// Consumes the sink, returning the inner writer.
    pub fn into_inner(self) -> W {
        self.state.into_inner().unwrap().writer
    }
}

impl<W: Write + Send> EventSink for TraceCsvSink<W> {
    fn record(&self, ev: &TimedEvent) {
        let Event::EvalFinished { value, .. } = ev.event else {
            return;
        };
        let mut st = self.state.lock().unwrap();
        if st.completed == 0 {
            let _ = writeln!(st.writer, "time_s,completed,value,best_so_far");
        }
        st.completed += 1;
        let best = st.best.map_or(value, |b| b.max(value));
        st.best = Some(best);
        let completed = st.completed;
        let _ = writeln!(st.writer, "{},{},{},{}", ev.time, completed, value, best);
    }

    fn flush(&self) {
        let _ = self.state.lock().unwrap().writer.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finished(time: f64, task: usize, value: f64) -> TimedEvent {
        TimedEvent {
            time,
            event: Event::EvalFinished {
                task,
                worker: task % 2,
                value,
            },
        }
    }

    #[test]
    fn json_lines_cover_every_variant() {
        let cases = [
            TimedEvent {
                time: 1.5,
                event: Event::QueryIssued { task: 3, worker: 1 },
            },
            TimedEvent {
                time: 1.5,
                event: Event::EvalStarted { task: 3, worker: 1 },
            },
            finished(40.25, 3, -0.125),
            TimedEvent {
                time: 2.0,
                event: Event::GpRefit {
                    n: 12,
                    hyperparams: vec![-0.5, 1.25, -9.0],
                    duration: 0.03125,
                },
            },
            TimedEvent {
                time: 2.0,
                event: Event::AcqOptimized {
                    restarts: 3,
                    evals: 420,
                    duration: 0.0625,
                },
            },
            TimedEvent {
                time: 2.0,
                event: Event::PseudoPointAdded { count: 2 },
            },
            TimedEvent {
                time: 9.0,
                event: Event::WorkerIdle {
                    worker: 2,
                    gap: 7.5,
                },
            },
        ];
        for ev in &cases {
            let line = to_json_line(ev);
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
            assert!(line.contains(&format!("\"event\":\"{}\"", ev.event.kind())));
        }
        assert_eq!(
            to_json_line(&cases[2]),
            "{\"t\":40.25,\"event\":\"EvalFinished\",\"task\":3,\"worker\":1,\"value\":-0.125}"
        );
    }

    #[test]
    fn recorder_preserves_order() {
        let r = Recorder::new();
        assert!(r.is_empty());
        r.record(&finished(1.0, 0, 0.5));
        r.record(&finished(2.0, 1, 0.25));
        let evs = r.events();
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[0].time, 1.0);
        assert_eq!(evs[1].time, 2.0);
    }

    #[test]
    fn trace_csv_matches_run_trace_format() {
        let sink = TraceCsvSink::new(Vec::new());
        sink.record(&finished(10.0, 0, 1.0));
        sink.record(&TimedEvent {
            time: 12.0,
            event: Event::QueryIssued { task: 9, worker: 0 },
        });
        sink.record(&finished(20.0, 1, 0.5));
        sink.record(&finished(30.0, 2, 2.0));
        let csv = String::from_utf8(sink.into_inner()).unwrap();
        assert_eq!(
            csv,
            "time_s,completed,value,best_so_far\n\
             10,1,1,1\n\
             20,2,0.5,1\n\
             30,3,2,2\n"
        );
    }
}
