//! Hierarchical phase spans on the run clock.
//!
//! A span marks one named phase of the run — a GP refit, a Cholesky
//! factorization, a checkpoint fsync — as a `[start, end]` interval on
//! the same run clock that stamps every other event. Spans nest:
//! opening a span while another is open on the same thread records the
//! enclosing span as its parent, so a run yields a phase *tree*
//! (session step → GP refit → kernel build / Cholesky / L-BFGS), not a
//! flat list. The tree is what the Chrome trace exporter
//! ([`crate::chrome_trace_json`]) renders as a flamegraph.
//!
//! Design constraints inherited from the rest of the crate:
//!
//! - **Zero cost when disabled.** `Telemetry::span` on a disabled
//!   handle returns an inert guard without touching thread-local
//!   state, allocating, or constructing an event — the same discipline
//!   as `emit_with`.
//! - **Deterministic ids.** Span ids come from a per-run atomic
//!   counter starting at 1. Instrumentation sites only open spans on
//!   the coordinator thread (never inside `parallel_map` workers), so
//!   a bit-reproducible run emits a bit-identical span tree at any
//!   parallelism setting.
//! - **Run-clock timestamps only.** Spans are stamped with
//!   `Telemetry::now`; no wall-clock durations leak into the events,
//!   which is what keeps replayed traces byte-identical.

use std::borrow::Cow;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::event::{Event, TimedEvent};
use crate::telemetry::Telemetry;

thread_local! {
    /// Stack of open span ids on this thread; the top is the parent
    /// of the next span opened here.
    static SPAN_STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

/// RAII guard for one open span: emits `SpanEnd` when dropped.
/// Obtained from [`Telemetry::span`]; inert (id 0) when the handle is
/// disabled.
#[derive(Debug)]
pub struct SpanGuard {
    telemetry: Telemetry,
    id: u64,
}

impl SpanGuard {
    /// The span's id (`0` for an inert guard from a disabled handle).
    pub fn id(&self) -> u64 {
        self.id
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if self.id == 0 {
            return;
        }
        SPAN_STACK.with(|s| {
            let mut stack = s.borrow_mut();
            // Guards normally drop in LIFO order; tolerate out-of-order
            // drops (early returns holding several guards) by removing
            // the id wherever it sits.
            if stack.last() == Some(&self.id) {
                stack.pop();
            } else {
                stack.retain(|&open| open != self.id);
            }
        });
        self.telemetry.emit(Event::SpanEnd { id: self.id });
    }
}

impl Telemetry {
    /// Opens a named span at the current run-clock time and returns
    /// the RAII guard that closes it. On a disabled handle this is a
    /// single branch: no id is allocated, no thread-local state is
    /// touched, and nothing is emitted.
    #[must_use = "dropping the guard immediately closes the span"]
    pub fn span(&self, name: &'static str) -> SpanGuard {
        let Some(id) = self.alloc_span_id() else {
            return SpanGuard {
                telemetry: Telemetry::disabled(),
                id: 0,
            };
        };
        let parent = SPAN_STACK.with(|s| {
            let mut stack = s.borrow_mut();
            let parent = stack.last().copied().unwrap_or(0);
            stack.push(id);
            parent
        });
        self.emit(Event::SpanStart {
            id,
            parent,
            name: Cow::Borrowed(name),
        });
        SpanGuard {
            telemetry: self.clone(),
            id,
        }
    }
}

/// One node of the reconstructed span tree.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanNode {
    /// Span id from the event stream.
    pub id: u64,
    /// Phase name.
    pub name: String,
    /// Run-clock seconds at `SpanStart`.
    pub start: f64,
    /// Run-clock seconds at `SpanEnd` (`None` if the stream ended
    /// with the span still open, e.g. a truncated log).
    pub end: Option<f64>,
    /// Nested spans, in opening order.
    pub children: Vec<SpanNode>,
}

struct SpanRec {
    name: String,
    start: f64,
    end: Option<f64>,
    children: Vec<u64>,
}

/// Rebuilds the span forest from an event stream (recorded live or
/// replayed from JSONL). Spans whose parent never appears in the
/// stream are treated as roots; unmatched `SpanEnd`s are ignored.
pub fn span_tree(events: &[TimedEvent]) -> Vec<SpanNode> {
    let mut recs: BTreeMap<u64, SpanRec> = BTreeMap::new();
    let mut roots: Vec<u64> = Vec::new();
    for ev in events {
        match &ev.event {
            Event::SpanStart { id, parent, name } => {
                if recs.contains_key(id) {
                    continue; // duplicate id: keep the first opening
                }
                recs.insert(
                    *id,
                    SpanRec {
                        name: name.to_string(),
                        start: ev.time,
                        end: None,
                        children: Vec::new(),
                    },
                );
                match recs.get_mut(parent) {
                    Some(p) if *parent != *id => p.children.push(*id),
                    _ => roots.push(*id),
                }
            }
            Event::SpanEnd { id } => {
                if let Some(rec) = recs.get_mut(id) {
                    if rec.end.is_none() {
                        rec.end = Some(ev.time);
                    }
                }
            }
            _ => {}
        }
    }
    fn build(id: u64, recs: &BTreeMap<u64, SpanRec>) -> SpanNode {
        let rec = &recs[&id];
        SpanNode {
            id,
            name: rec.name.clone(),
            start: rec.start,
            end: rec.end,
            children: rec.children.iter().map(|&c| build(c, recs)).collect(),
        }
    }
    roots.into_iter().map(|id| build(id, &recs)).collect()
}

/// Renders the forest as indented text, one span per line
/// (`name [start..end]`), with shortest-roundtrip float formatting so
/// two bit-identical runs render byte-identical trees.
pub fn render_span_tree(roots: &[SpanNode]) -> String {
    fn walk(node: &SpanNode, depth: usize, out: &mut String) {
        for _ in 0..depth {
            out.push_str("  ");
        }
        match node.end {
            Some(end) => {
                let _ = writeln!(out, "{} [{}..{}]", node.name, node.start, end);
            }
            None => {
                let _ = writeln!(out, "{} [{}..)", node.name, node.start);
            }
        }
        for child in &node.children {
            walk(child, depth + 1, out);
        }
    }
    let mut out = String::new();
    for root in roots {
        walk(root, 0, &mut out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_yields_inert_guard() {
        let t = Telemetry::disabled();
        let g = t.span("nothing");
        assert_eq!(g.id(), 0);
        drop(g);
        // Still no thread-local residue: an enabled span after an
        // inert one sees no parent.
        let (t, r) = Telemetry::recording();
        let g = t.span("root");
        drop(g);
        let evs = r.events();
        assert_eq!(
            evs[0].event,
            Event::SpanStart {
                id: 1,
                parent: 0,
                name: Cow::Borrowed("root"),
            }
        );
    }

    #[test]
    fn spans_nest_and_ids_are_sequential() {
        let (t, r) = Telemetry::recording();
        t.set_now(1.0);
        {
            let _a = t.span("step");
            t.set_now(2.0);
            {
                let _b = t.span("refit");
                t.set_now(3.0);
                let _c = t.span("cholesky");
            }
            t.set_now(4.0);
            let _d = t.span("acq");
        }
        let evs = r.events();
        let tree = span_tree(&evs);
        assert_eq!(tree.len(), 1);
        let step = &tree[0];
        assert_eq!(step.name, "step");
        assert_eq!(step.id, 1);
        assert_eq!((step.start, step.end), (1.0, Some(4.0)));
        assert_eq!(step.children.len(), 2);
        assert_eq!(step.children[0].name, "refit");
        assert_eq!(step.children[0].children[0].name, "cholesky");
        assert_eq!(step.children[1].name, "acq");
        assert_eq!(step.children[1].id, 4);
        let text = render_span_tree(&tree);
        assert_eq!(
            text,
            "step [1..4]\n  refit [2..3]\n    cholesky [3..3]\n  acq [4..4]\n"
        );
    }

    #[test]
    fn out_of_order_drops_keep_the_stack_sane() {
        let (t, r) = Telemetry::recording();
        let a = t.span("a");
        let b = t.span("b");
        drop(a); // dropped before its child
        let c = t.span("c"); // parent should be b, not the dead a
        drop(c);
        drop(b);
        let tree = span_tree(&r.events());
        assert_eq!(tree.len(), 1);
        assert_eq!(tree[0].name, "a");
        assert_eq!(tree[0].children[0].name, "b");
        assert_eq!(tree[0].children[0].children[0].name, "c");
    }

    #[test]
    fn truncated_streams_leave_open_spans() {
        let (t, r) = Telemetry::recording();
        let _a = t.span("open_forever");
        let evs = r.events(); // snapshot before the guard drops
        let tree = span_tree(&evs);
        assert_eq!(tree[0].end, None);
        assert!(render_span_tree(&tree).contains("open_forever [0..)"));
    }

    #[test]
    fn orphan_parents_become_roots() {
        use crate::event::TimedEvent;
        let evs = vec![
            TimedEvent {
                time: 5.0,
                event: Event::SpanStart {
                    id: 9,
                    parent: 4, // never opened in this stream
                    name: Cow::Borrowed("orphan"),
                },
            },
            TimedEvent {
                time: 6.0,
                event: Event::SpanEnd { id: 9 },
            },
            TimedEvent {
                time: 7.0,
                event: Event::SpanEnd { id: 123 }, // unmatched
            },
        ];
        let tree = span_tree(&evs);
        assert_eq!(tree.len(), 1);
        assert_eq!(tree[0].name, "orphan");
        assert_eq!(tree[0].end, Some(6.0));
    }
}
