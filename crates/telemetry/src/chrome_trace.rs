//! Chrome trace-event export: render a recorded event stream as a
//! `chrome://tracing` / Perfetto-loadable JSON document.
//!
//! The export maps the run onto trace lanes:
//!
//! - **tid 0, "coordinator"** — the span tree (session step, GP
//!   refit, Cholesky, acquisition, checkpoint, …) as `"X"` complete
//!   events, nested by the span hierarchy.
//! - **tid 1+, "worker N"** — each evaluation attempt as an `"X"`
//!   slice from `EvalStarted` to `EvalFinished`/`EvalFailed` on the
//!   worker that ran it.
//! - Instant (`"i"`) markers for failures, retries, crashes,
//!   checkpoints, and resumes.
//!
//! Timestamps are the run clock converted to microseconds. The export
//! deliberately carries **no wall-clock durations** (the `duration`
//! payloads of `GpRefit`/`AcqOptimized` are machine-dependent), so a
//! bit-reproducible run produces a byte-identical trace file at any
//! parallelism setting — the same determinism contract as the JSONL
//! replay path.

use std::fmt::Write as _;
use std::io::Write;
use std::path::PathBuf;
use std::sync::Mutex;

use crate::event::{Event, TimedEvent};
use crate::sink::EventSink;

const PID: u32 = 0;

fn us(t: f64) -> f64 {
    t * 1e6
}

fn push_meta(out: &mut String, tid: usize, name: &str) {
    let _ = writeln!(
        out,
        "{{\"ph\":\"M\",\"pid\":{PID},\"tid\":{tid},\"name\":\"thread_name\",\"args\":{{\"name\":\"{name}\"}}}},"
    );
}

fn push_complete(out: &mut String, tid: usize, name: &str, start: f64, end: f64, args: &str) {
    let _ = writeln!(
        out,
        "{{\"ph\":\"X\",\"pid\":{PID},\"tid\":{tid},\"ts\":{},\"dur\":{},\"name\":\"{name}\"{args}}},",
        us(start),
        us(end - start).max(0.0),
    );
}

fn push_instant(out: &mut String, tid: usize, name: &str, t: f64, args: &str) {
    let _ = writeln!(
        out,
        "{{\"ph\":\"i\",\"pid\":{PID},\"tid\":{tid},\"ts\":{},\"s\":\"t\",\"name\":\"{name}\"{args}}},",
        us(t),
    );
}

/// Renders `events` as a Chrome trace-event JSON document (the
/// `{"traceEvents": [...]}` object form). Open spans and in-flight
/// evaluations are closed at the last event's timestamp so truncated
/// streams still load.
pub fn chrome_trace_json(events: &[TimedEvent]) -> String {
    let horizon = events.last().map_or(0.0, |ev| ev.time);
    let mut workers = 0usize;
    for ev in events {
        let w = match ev.event {
            Event::QueryIssued { worker, .. }
            | Event::EvalStarted { worker, .. }
            | Event::EvalFinished { worker, .. }
            | Event::EvalFailed { worker, .. }
            | Event::WorkerIdle { worker, .. }
            | Event::WorkerCrashed { worker, .. } => worker + 1,
            _ => 0,
        };
        workers = workers.max(w);
    }

    let mut out = String::with_capacity(events.len() * 96 + 256);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
    let _ = writeln!(
        out,
        "{{\"ph\":\"M\",\"pid\":{PID},\"name\":\"process_name\",\"args\":{{\"name\":\"easybo\"}}}},"
    );
    push_meta(&mut out, 0, "coordinator");
    for w in 0..workers {
        push_meta(&mut out, w + 1, &format!("worker {w}"));
    }

    // Open span id -> (name, start); open task id -> (worker, start).
    let mut open_spans: Vec<(u64, String, f64)> = Vec::new();
    let mut open_evals: Vec<(usize, usize, f64)> = Vec::new();
    for ev in events {
        match &ev.event {
            Event::SpanStart { id, parent, name } => {
                open_spans.push((*id, name.to_string(), ev.time));
                // Record nesting for the viewer via explicit args; the
                // slice stacking itself comes from ts/dur containment.
                let _ = parent;
            }
            Event::SpanEnd { id } => {
                if let Some(pos) = open_spans.iter().rposition(|(sid, _, _)| sid == id) {
                    let (sid, name, start) = open_spans.remove(pos);
                    let args = format!(",\"args\":{{\"id\":{sid}}}");
                    push_complete(&mut out, 0, &name, start, ev.time, &args);
                }
            }
            Event::EvalStarted { task, worker } => {
                open_evals.push((*task, *worker, ev.time));
            }
            Event::EvalFinished {
                task,
                worker,
                value,
            } => {
                if let Some(pos) = open_evals.iter().rposition(|(t, _, _)| t == task) {
                    let (_, w, start) = open_evals.remove(pos);
                    let args = format!(",\"args\":{{\"task\":{task},\"value\":{value}}}");
                    push_complete(
                        &mut out,
                        w + 1,
                        &format!("eval {task}"),
                        start,
                        ev.time,
                        &args,
                    );
                } else {
                    let args = format!(",\"args\":{{\"task\":{task},\"value\":{value}}}");
                    push_instant(&mut out, worker + 1, "eval (recorded)", ev.time, &args);
                }
            }
            Event::EvalFailed {
                task,
                worker,
                attempt,
                reason,
            } => {
                if let Some(pos) = open_evals.iter().rposition(|(t, _, _)| t == task) {
                    let (_, w, start) = open_evals.remove(pos);
                    let args = format!(",\"args\":{{\"task\":{task},\"attempt\":{attempt},\"reason\":\"{reason}\"}}");
                    push_complete(
                        &mut out,
                        w + 1,
                        &format!("eval {task} (failed)"),
                        start,
                        ev.time,
                        &args,
                    );
                }
                let args = format!(
                    ",\"args\":{{\"task\":{task},\"attempt\":{attempt},\"reason\":\"{reason}\"}}"
                );
                push_instant(&mut out, worker + 1, "EvalFailed", ev.time, &args);
            }
            Event::EvalRetried {
                task,
                attempt,
                delay,
            } => {
                let args = format!(
                    ",\"args\":{{\"task\":{task},\"attempt\":{attempt},\"delay\":{delay}}}"
                );
                push_instant(&mut out, 0, "EvalRetried", ev.time, &args);
            }
            Event::WorkerCrashed { worker, task } => {
                let args = format!(",\"args\":{{\"task\":{task}}}");
                push_instant(&mut out, worker + 1, "WorkerCrashed", ev.time, &args);
            }
            Event::CheckpointWritten { completed, bytes } => {
                let args = format!(",\"args\":{{\"completed\":{completed},\"bytes\":{bytes}}}");
                push_instant(&mut out, 0, "CheckpointWritten", ev.time, &args);
            }
            Event::RunResumed {
                completed,
                inflight,
            } => {
                let args =
                    format!(",\"args\":{{\"completed\":{completed},\"inflight\":{inflight}}}");
                push_instant(&mut out, 0, "RunResumed", ev.time, &args);
            }
            Event::SessionEvicted { session, resident } => {
                let args = format!(",\"args\":{{\"session\":{session},\"resident\":{resident}}}");
                push_instant(&mut out, 0, "SessionEvicted", ev.time, &args);
            }
            Event::SessionRehydrated { session, inflight } => {
                let args = format!(",\"args\":{{\"session\":{session},\"inflight\":{inflight}}}");
                push_instant(&mut out, 0, "SessionRehydrated", ev.time, &args);
            }
            // GpRefit / AcqOptimized carry wall-clock durations that
            // differ between machines and parallelism settings; the
            // coordinator spans already cover those phases on the
            // run clock, so they are intentionally not exported.
            _ => {}
        }
    }
    // Close anything the stream left open so the file still loads.
    while let Some((sid, name, start)) = open_spans.pop() {
        let args = format!(",\"args\":{{\"id\":{sid},\"truncated\":true}}");
        push_complete(&mut out, 0, &name, start, horizon, &args);
    }
    while let Some((task, w, start)) = open_evals.pop() {
        let args = format!(",\"args\":{{\"task\":{task},\"truncated\":true}}");
        push_complete(
            &mut out,
            w + 1,
            &format!("eval {task}"),
            start,
            horizon,
            &args,
        );
    }

    // Strip the trailing ",\n" left by the last element.
    if out.ends_with(",\n") {
        out.truncate(out.len() - 2);
        out.push('\n');
    }
    out.push_str("]}\n");
    out
}

/// Sink that buffers the event stream and writes the complete Chrome
/// trace JSON file on [`EventSink::flush`] (the stream must be seen in
/// full before slices can be paired, so incremental writes are not
/// possible). `Telemetry::flush` at end of run triggers the write.
pub struct ChromeTraceSink {
    path: PathBuf,
    events: Mutex<Vec<TimedEvent>>,
}

impl ChromeTraceSink {
    /// Will write the trace to `path` on flush.
    pub fn new(path: impl Into<PathBuf>) -> Self {
        ChromeTraceSink {
            path: path.into(),
            events: Mutex::new(Vec::new()),
        }
    }
}

impl EventSink for ChromeTraceSink {
    fn record(&self, ev: &TimedEvent) {
        self.events.lock().unwrap().push(ev.clone());
    }

    fn flush(&self) {
        let events = self.events.lock().unwrap();
        let json = chrome_trace_json(&events);
        if let Ok(mut f) = std::fs::File::create(&self.path) {
            let _ = f.write_all(json.as_bytes());
        }
    }
}

#[cfg(test)]
mod tests {
    use std::borrow::Cow;

    use super::*;
    use crate::telemetry::Telemetry;

    fn at(time: f64, event: Event) -> TimedEvent {
        TimedEvent { time, event }
    }

    #[test]
    fn spans_and_evals_become_complete_events() {
        let (t, r) = Telemetry::recording();
        t.set_now(1.0);
        t.emit(Event::EvalStarted { task: 0, worker: 1 });
        {
            let _s = t.span("gp_refit");
            t.set_now(2.0);
        }
        t.set_now(3.0);
        t.emit(Event::EvalFinished {
            task: 0,
            worker: 1,
            value: 0.5,
        });
        let json = chrome_trace_json(&r.events());
        assert!(json.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n"));
        assert!(json.ends_with("]}\n"));
        assert!(json.contains("\"name\":\"coordinator\""));
        assert!(json.contains("\"name\":\"worker 1\""));
        assert!(
            json.contains("\"ph\":\"X\",\"pid\":0,\"tid\":0,\"ts\":1000000,\"dur\":1000000,\"name\":\"gp_refit\""),
            "trace was: {json}"
        );
        assert!(
            json.contains("\"ph\":\"X\",\"pid\":0,\"tid\":2,\"ts\":1000000,\"dur\":2000000,\"name\":\"eval 0\""),
            "trace was: {json}"
        );
        // No dangling comma before the closing bracket.
        assert!(!json.contains(",\n]"));
    }

    #[test]
    fn failures_and_checkpoints_become_instants() {
        let evs = vec![
            at(1.0, Event::EvalStarted { task: 4, worker: 0 }),
            at(
                2.0,
                Event::EvalFailed {
                    task: 4,
                    worker: 0,
                    attempt: 1,
                    reason: "timeout".to_string(),
                },
            ),
            at(
                2.5,
                Event::EvalRetried {
                    task: 4,
                    attempt: 2,
                    delay: 1.0,
                },
            ),
            at(
                3.0,
                Event::CheckpointWritten {
                    completed: 7,
                    bytes: 512,
                },
            ),
        ];
        let json = chrome_trace_json(&evs);
        assert!(json.contains("\"name\":\"eval 4 (failed)\""));
        assert!(json.contains("\"ph\":\"i\"") && json.contains("\"name\":\"EvalRetried\""));
        assert!(json.contains("\"name\":\"CheckpointWritten\""));
    }

    #[test]
    fn truncated_streams_close_at_horizon() {
        let evs = vec![
            at(
                1.0,
                Event::SpanStart {
                    id: 1,
                    parent: 0,
                    name: Cow::Borrowed("session_step"),
                },
            ),
            at(2.0, Event::EvalStarted { task: 0, worker: 0 }),
            at(5.0, Event::PseudoPointAdded { count: 1 }),
        ];
        let json = chrome_trace_json(&evs);
        assert!(json.contains("\"truncated\":true"));
        assert!(json.contains("\"name\":\"session_step\""));
        assert!(json.contains("\"name\":\"eval 0\""));
    }

    #[test]
    fn empty_stream_is_still_valid() {
        let json = chrome_trace_json(&[]);
        assert!(json.contains("\"traceEvents\":["));
        assert!(json.ends_with("]}\n"));
    }

    #[test]
    fn sink_writes_on_flush() {
        let dir = std::env::temp_dir().join("easybo_chrome_trace_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.json");
        let _ = std::fs::remove_file(&path);
        let (t, _r) = Telemetry::recording();
        t.add_sink(ChromeTraceSink::new(&path));
        t.set_now(1.0);
        {
            let _s = t.span("step");
        }
        assert!(!path.exists(), "must not write before flush");
        t.flush();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"name\":\"step\""));
        let _ = std::fs::remove_file(&path);
    }
}
