//! Minimal recursive-descent JSON parser (std-only, like everything
//! else in this crate).
//!
//! The telemetry layer both *writes* JSON (JSONL events, Chrome
//! traces, aggregate reports) and must *read* it back (committed
//! baselines for the regression gate, self-tests that validate the
//! exporters' output). Pulling a JSON dependency into the most central
//! crate of the workspace is off the table, and the hand-rolled
//! field-scanning in [`crate::replay`] is deliberately restricted to
//! this crate's flat event lines — so nested documents get this small
//! full parser instead.
//!
//! Supports the complete JSON grammar (objects, arrays, strings with
//! escapes, numbers, booleans, null). Numbers are `f64`, matching the
//! rest of the workspace. Object keys keep insertion order.

use std::collections::BTreeMap;

/// One parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number, as `f64`.
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object, in document order.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Member of an object by key (`None` for non-objects).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Number payload.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// String payload.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Array payload.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Object payload, as an ordered key/value slice.
    pub fn as_object(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Obj(members) => Some(members),
            _ => None,
        }
    }

    /// Object payload as a map (later duplicate keys win).
    pub fn to_map(&self) -> Option<BTreeMap<String, JsonValue>> {
        self.as_object()
            .map(|m| m.iter().cloned().collect::<BTreeMap<_, _>>())
    }
}

/// Parses `text` as one JSON document.
///
/// # Errors
///
/// Returns a description with a byte offset for the first syntax
/// error, including trailing garbage after the document.
pub fn parse_json(text: &str) -> Result<JsonValue, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing characters at byte {}", p.pos));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", char::from(b), self.pos))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(format!(
                "unexpected character {:?} at byte {}",
                char::from(other),
                self.pos
            )),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(members));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| "unterminated escape".to_string())?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return Err("truncated \\u escape".to_string());
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                .map_err(|_| "bad \\u escape".to_string())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape {hex:?}"))?;
                            self.pos += 4;
                            // Surrogate pairs are not needed by any of
                            // our own documents; map lone surrogates to
                            // the replacement character.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => {
                            return Err(format!("bad escape {:?}", char::from(other)));
                        }
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (the input is a &str,
                    // so boundaries are valid).
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && (self.bytes[self.pos] & 0xC0) == 0x80 {
                        self.pos += 1;
                    }
                    out.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).unwrap());
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(JsonValue::Num)
            .map_err(|_| format!("bad number {text:?} at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_documents() {
        let doc = r#"{"a": [1, 2.5, -3e2], "b": {"c": "x\ny", "d": null}, "e": true}"#;
        let v = parse_json(doc).unwrap();
        assert_eq!(
            v.get("a").unwrap().as_array().unwrap()[2],
            JsonValue::Num(-300.0)
        );
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("x\ny"));
        assert_eq!(v.get("b").unwrap().get("d"), Some(&JsonValue::Null));
        assert_eq!(v.get("e"), Some(&JsonValue::Bool(true)));
    }

    #[test]
    fn roundtrips_own_jsonl_lines() {
        let line = r#"{"t":40.25,"event":"EvalFinished","task":3,"worker":1,"value":-0.125}"#;
        let v = parse_json(line).unwrap();
        assert_eq!(v.get("t").unwrap().as_f64(), Some(40.25));
        assert_eq!(v.get("event").unwrap().as_str(), Some("EvalFinished"));
        assert_eq!(v.get("value").unwrap().as_f64(), Some(-0.125));
    }

    #[test]
    fn handles_escapes_and_unicode() {
        let v = parse_json(r#""tab\tquote\"uA""#).unwrap();
        assert_eq!(v.as_str(), Some("tab\tquote\"uA"));
        let v = parse_json("\"naïve λ\"").unwrap();
        assert_eq!(v.as_str(), Some("naïve λ"));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\" 1}",
            "{\"a\":1,}",
            "nul",
            "\"open",
            "1 2",
            "{\"a\":1} x",
            "[00x]",
        ] {
            assert!(parse_json(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn preserves_object_order_and_maps() {
        let v = parse_json(r#"{"z": 1, "a": 2}"#).unwrap();
        let keys: Vec<_> = v
            .as_object()
            .unwrap()
            .iter()
            .map(|(k, _)| k.as_str())
            .collect();
        assert_eq!(keys, ["z", "a"]);
        let map = v.to_map().unwrap();
        assert_eq!(map["a"], JsonValue::Num(2.0));
    }
}
