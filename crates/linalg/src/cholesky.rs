use serde::{Deserialize, Serialize};

use crate::{LinalgError, Matrix, Vector};

/// Jitter ladder: relative jitter magnitudes tried in order when the plain
/// factorization fails (covariance matrices from clustered GP inputs are
/// frequently on the edge of positive definiteness).
const JITTER_LADDER: [f64; 7] = [0.0, 1e-10, 1e-9, 1e-8, 1e-7, 1e-6, 1e-4];

/// Lower-triangular Cholesky factorization `A = L L^T` of a symmetric
/// positive-definite matrix.
///
/// This is the single most important kernel in the Gaussian-process stack:
/// posterior means/variances, log marginal likelihood, log-determinants and
/// the pseudo-point augmentation of the EasyBO penalization scheme all run
/// through it.
///
/// # Example
///
/// ```
/// use easybo_linalg::{Cholesky, Matrix, Vector};
///
/// # fn main() -> Result<(), easybo_linalg::LinalgError> {
/// let a = Matrix::from_rows(&[&[4.0, 2.0], &[2.0, 3.0]])?;
/// let chol = Cholesky::new(&a)?;
/// let x = chol.solve_vec(&Vector::from(vec![2.0, 1.0]));
/// assert!((a.matvec(&x)[0] - 2.0).abs() < 1e-12);
/// assert!((chol.log_det() - (4.0f64 * 3.0 - 4.0).ln()).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Cholesky {
    l: Matrix,
    jitter: f64,
}

impl Cholesky {
    /// Factorizes `a`, escalating the diagonal jitter if the plain
    /// factorization breaks down numerically.
    ///
    /// # Errors
    ///
    /// * [`LinalgError::NotSquare`] if `a` is not square.
    /// * [`LinalgError::NonFinite`] if `a` contains NaN/inf.
    /// * [`LinalgError::NotPositiveDefinite`] if the factorization fails even
    ///   with the maximum jitter.
    pub fn new(a: &Matrix) -> crate::Result<Self> {
        Self::new_counted(a).map(|(c, _)| c)
    }

    /// Like [`Cholesky::new`], but also reports how many rungs of the
    /// jitter ladder were climbed before the factorization succeeded
    /// (0 = the plain factorization worked). Callers use this to surface
    /// jitter escalation as a telemetry counter instead of a silent retry.
    ///
    /// # Errors
    ///
    /// Same as [`Cholesky::new`].
    pub fn new_counted(a: &Matrix) -> crate::Result<(Self, usize)> {
        if !a.is_square() {
            return Err(LinalgError::NotSquare {
                rows: a.rows(),
                cols: a.cols(),
            });
        }
        a.ensure_finite("Cholesky input")?;
        let n = a.rows();
        let diag_scale = if n == 0 {
            1.0
        } else {
            ((0..n).map(|i| a[(i, i)].abs()).sum::<f64>() / n as f64).max(1e-300)
        };
        let mut last_err = LinalgError::NotPositiveDefinite {
            pivot: 0,
            value: 0.0,
        };
        for (bumps, &rel) in JITTER_LADDER.iter().enumerate() {
            let jitter = rel * diag_scale;
            match Self::factorize(a, jitter) {
                Ok(l) => return Ok((Cholesky { l, jitter }, bumps)),
                Err(e) => last_err = e,
            }
        }
        Err(last_err)
    }

    /// Factorizes without any jitter escalation; fails on the first bad pivot.
    ///
    /// # Errors
    ///
    /// Same as [`Cholesky::new`], except no jitter ladder is attempted.
    pub fn new_exact(a: &Matrix) -> crate::Result<Self> {
        if !a.is_square() {
            return Err(LinalgError::NotSquare {
                rows: a.rows(),
                cols: a.cols(),
            });
        }
        a.ensure_finite("Cholesky input")?;
        Self::factorize(a, 0.0).map(|l| Cholesky { l, jitter: 0.0 })
    }

    /// Rebuilds a factorization from a previously computed factor `l`
    /// and the `jitter` that produced it — the exact inverse of
    /// ([`Cholesky::factor`], [`Cholesky::jitter`]). Used by
    /// checkpoint/resume, where re-running the factorization is not
    /// bit-identical to a factor that was grown incrementally with
    /// [`Cholesky::extend`].
    ///
    /// # Errors
    ///
    /// * [`LinalgError::NotSquare`] if `l` is not square.
    /// * [`LinalgError::NonFinite`] if `l` or `jitter` is NaN/inf.
    pub fn from_parts(l: Matrix, jitter: f64) -> crate::Result<Self> {
        if !l.is_square() {
            return Err(LinalgError::NotSquare {
                rows: l.rows(),
                cols: l.cols(),
            });
        }
        l.ensure_finite("Cholesky factor")?;
        if !jitter.is_finite() {
            return Err(LinalgError::NonFinite {
                context: "Cholesky jitter".to_string(),
            });
        }
        Ok(Cholesky { l, jitter })
    }

    /// Column-block width of the blocked factorization. 32 columns of f64
    /// keep the panel + a tile of the trailing matrix inside L1/L2 while
    /// making the trailing update (the O(n³) bulk of the work) stream
    /// contiguous rows.
    const BLOCK: usize = 32;

    /// Blocked (tiled) left-looking Cholesky factorization.
    ///
    /// The restructuring is bitwise identical to the textbook scalar
    /// triple loop (kept as `factorize_scalar` for the equivalence test):
    /// every element of `L` is produced by one accumulator that starts at
    /// `a[(i, j)]` (plus jitter on the diagonal), subtracts the `k`-terms
    /// in ascending order, and is divided/square-rooted last. Splitting
    /// the `k` range across blocks only inserts exact f64 store/load
    /// round-trips between subtractions, so the value sequence — and
    /// therefore any error surfaced by a bad pivot — is unchanged. The
    /// speedup comes purely from memory traffic: the trailing update
    /// walks contiguous row slices instead of strided columns.
    fn factorize(a: &Matrix, jitter: f64) -> crate::Result<Matrix> {
        let n = a.rows();
        // Working matrix: lower triangle of `a` with jitter added to the
        // diagonal; the strict upper triangle stays explicitly zero to
        // match the scalar algorithm's output layout.
        let mut l = Matrix::zeros(n, n);
        for i in 0..n {
            let src = a.row(i);
            let dst = l.row_mut(i);
            dst[..=i].copy_from_slice(&src[..=i]);
            dst[i] += jitter;
        }
        let data = l.as_mut_slice();
        let mut jb = 0;
        while jb < n {
            let jend = (jb + Self::BLOCK).min(n);
            // Panel factorization: columns jb..jend, all rows below.
            for j in jb..jend {
                let (head, tail) = data.split_at_mut((j + 1) * n);
                let row_j = &mut head[j * n..];
                let mut diag = row_j[j];
                for &ljk in &row_j[jb..j] {
                    diag -= ljk * ljk;
                }
                if diag <= 0.0 || !diag.is_finite() {
                    return Err(LinalgError::NotPositiveDefinite {
                        pivot: j,
                        value: diag,
                    });
                }
                let ljj = diag.sqrt();
                row_j[j] = ljj;
                for row_i in tail.chunks_exact_mut(n) {
                    let mut v = row_i[j];
                    for (&lik, &ljk) in row_i[jb..j].iter().zip(&row_j[jb..j]) {
                        v -= lik * ljk;
                    }
                    row_i[j] = v / ljj;
                }
            }
            // Trailing update: fold this block's k-terms into every
            // element of the remaining lower triangle.
            for i in jend..n {
                let (head, tail) = data.split_at_mut(i * n);
                let row_i = &mut tail[..n];
                for c in jend..i {
                    let row_c = &head[c * n + jb..c * n + jend];
                    let mut v = row_i[c];
                    for (&lik, &lck) in row_i[jb..jend].iter().zip(row_c) {
                        v -= lik * lck;
                    }
                    row_i[c] = v;
                }
                let mut v = row_i[i];
                for &lik in &row_i[jb..jend] {
                    v -= lik * lik;
                }
                row_i[i] = v;
            }
            jb = jend;
        }
        Ok(l)
    }

    /// The reference scalar factorization the blocked [`Cholesky::factorize`]
    /// must reproduce bit for bit. Kept only for the equivalence test.
    #[cfg(test)]
    fn factorize_scalar(a: &Matrix, jitter: f64) -> crate::Result<Matrix> {
        let n = a.rows();
        let mut l = Matrix::zeros(n, n);
        for j in 0..n {
            let mut diag = a[(j, j)] + jitter;
            for k in 0..j {
                diag -= l[(j, k)] * l[(j, k)];
            }
            if diag <= 0.0 || !diag.is_finite() {
                return Err(LinalgError::NotPositiveDefinite {
                    pivot: j,
                    value: diag,
                });
            }
            let ljj = diag.sqrt();
            l[(j, j)] = ljj;
            for i in (j + 1)..n {
                let mut v = a[(i, j)];
                for k in 0..j {
                    v -= l[(i, k)] * l[(j, k)];
                }
                l[(i, j)] = v / ljj;
            }
        }
        Ok(l)
    }

    /// The lower-triangular factor `L`.
    pub fn factor(&self) -> &Matrix {
        &self.l
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.l.rows()
    }

    /// Diagonal jitter that was added to achieve positive definiteness
    /// (0.0 when the plain factorization succeeded).
    pub fn jitter(&self) -> f64 {
        self.jitter
    }

    /// Solves `L y = b` (forward substitution).
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != dim()`.
    pub fn solve_lower(&self, b: &Vector) -> Vector {
        let n = self.dim();
        assert_eq!(b.len(), n, "solve_lower dimension mismatch");
        let mut y = Vector::zeros(n);
        for i in 0..n {
            let mut v = b[i];
            let row = self.l.row(i);
            for k in 0..i {
                v -= row[k] * y[k];
            }
            y[i] = v / row[i];
        }
        y
    }

    /// Solves `L^T x = b` (backward substitution).
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != dim()`.
    pub fn solve_lower_transpose(&self, b: &Vector) -> Vector {
        let n = self.dim();
        assert_eq!(b.len(), n, "solve_lower_transpose dimension mismatch");
        let mut x = Vector::zeros(n);
        for i in (0..n).rev() {
            let mut v = b[i];
            for k in (i + 1)..n {
                v -= self.l[(k, i)] * x[k];
            }
            x[i] = v / self.l[(i, i)];
        }
        x
    }

    /// Solves `A x = b` where `A = L L^T`.
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != dim()`.
    pub fn solve_vec(&self, b: &Vector) -> Vector {
        self.solve_lower_transpose(&self.solve_lower(b))
    }

    /// Solves `L Y = B` for all columns of `B` in one forward-substitution
    /// sweep. Each column gets exactly the operations of
    /// [`Cholesky::solve_lower`] in the same order, so the result is
    /// bit-identical to solving column by column — but the inner loop streams
    /// contiguous rows instead of strided columns, which is what makes the
    /// batched GP posterior fast.
    ///
    /// # Panics
    ///
    /// Panics if `b.rows() != dim()`.
    pub fn solve_lower_multi(&self, b: &Matrix) -> Matrix {
        let n = self.dim();
        assert_eq!(b.rows(), n, "solve_lower_multi dimension mismatch");
        let m = b.cols();
        let mut y = b.clone();
        let data = y.as_mut_slice();
        for i in 0..n {
            let li = self.l.row(i);
            let (done, rest) = data.split_at_mut(i * m);
            let yi = &mut rest[..m];
            for (k, &lik) in li[..i].iter().enumerate() {
                let yk = &done[k * m..(k + 1) * m];
                for (a, &v) in yi.iter_mut().zip(yk) {
                    *a -= lik * v;
                }
            }
            let lii = li[i];
            for a in yi.iter_mut() {
                *a /= lii;
            }
        }
        y
    }

    /// Solves `L^T X = B` for all columns of `B` in one backward-substitution
    /// sweep; the multi-RHS counterpart of [`Cholesky::solve_lower_transpose`]
    /// with the same bit-identical-per-column guarantee as
    /// [`Cholesky::solve_lower_multi`].
    ///
    /// # Panics
    ///
    /// Panics if `b.rows() != dim()`.
    pub fn solve_lower_transpose_multi(&self, b: &Matrix) -> Matrix {
        let n = self.dim();
        assert_eq!(
            b.rows(),
            n,
            "solve_lower_transpose_multi dimension mismatch"
        );
        let m = b.cols();
        let mut x = b.clone();
        let data = x.as_mut_slice();
        for i in (0..n).rev() {
            let (head, tail) = data.split_at_mut((i + 1) * m);
            let xi = &mut head[i * m..];
            for k in (i + 1)..n {
                let lki = self.l[(k, i)];
                let xk = &tail[(k - i - 1) * m..(k - i) * m];
                for (a, &v) in xi.iter_mut().zip(xk) {
                    *a -= lki * v;
                }
            }
            let lii = self.l[(i, i)];
            for a in xi.iter_mut() {
                *a /= lii;
            }
        }
        x
    }

    /// Solves `A X = B` where `A = L L^T`, all columns at once.
    ///
    /// # Panics
    ///
    /// Panics if `b.rows() != dim()`.
    pub fn solve_mat(&self, b: &Matrix) -> Matrix {
        assert_eq!(b.rows(), self.dim(), "solve_mat dimension mismatch");
        self.solve_lower_transpose_multi(&self.solve_lower_multi(b))
    }

    /// Log-determinant of the factored matrix: `2 * sum(log L_ii)`.
    pub fn log_det(&self) -> f64 {
        (0..self.dim()).map(|i| self.l[(i, i)].ln()).sum::<f64>() * 2.0
    }

    /// Explicit inverse `A^{-1}`. O(n^3); used only for the log marginal
    /// likelihood gradient where the full inverse is genuinely needed.
    pub fn inverse(&self) -> Matrix {
        self.solve_mat(&Matrix::identity(self.dim()))
    }

    /// Quadratic form `b^T A^{-1} b` without forming the inverse.
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != dim()`.
    pub fn quad_form(&self, b: &Vector) -> f64 {
        let y = self.solve_lower(b);
        y.dot(&y)
    }

    /// Extends the factorization with one appended row/column of the
    /// underlying matrix (an O(n^2) incremental update).
    ///
    /// If `A' = [[A, c], [c^T, d]]` then `L' = [[L, 0], [w^T, s]]` with
    /// `w = L^{-1} c` and `s = sqrt(d - w^T w)`. This powers the EasyBO
    /// penalization scheme, which appends hallucinated pseudo-points to the
    /// GP one at a time. The existing factor block is copied verbatim, so
    /// [`Cholesky::truncate`] can later restore it bit for bit.
    ///
    /// Returns `true` when the pragmatic duplicate-point floor was applied
    /// to the new pivot — i.e. the appended point was numerically on top
    /// of an existing one. Callers surface this as the
    /// `cholesky_jitter_bumps` telemetry counter.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::NotPositiveDefinite`] if the Schur complement
    /// `d - w^T w` is not positive (after retrying with the stored jitter).
    ///
    /// # Panics
    ///
    /// Panics if `cross.len() != dim()`.
    pub fn extend(&mut self, cross: &Vector, diag: f64) -> crate::Result<bool> {
        let n = self.dim();
        assert_eq!(cross.len(), n, "extend: cross-covariance length mismatch");
        let w = self.solve_lower(cross);
        let mut s2 = diag + self.jitter - w.dot(&w);
        let mut floored = false;
        if s2 <= 0.0 || !s2.is_finite() {
            // One more chance with a pragmatic floor: the pseudo-point is
            // numerically on top of an existing point.
            let floor = 1e-10 * diag.abs().max(1.0);
            if s2 > -floor {
                s2 = floor;
                floored = true;
            } else {
                return Err(LinalgError::NotPositiveDefinite {
                    pivot: n,
                    value: s2,
                });
            }
        }
        let mut grown = Matrix::zeros(n + 1, n + 1);
        for i in 0..n {
            for j in 0..=i {
                grown[(i, j)] = self.l[(i, j)];
            }
        }
        for j in 0..n {
            grown[(n, j)] = w[j];
        }
        grown[(n, n)] = s2.sqrt();
        self.l = grown;
        Ok(floored)
    }

    /// Shrinks the factorization to the leading `k`×`k` block of the
    /// factored matrix — the O(n²) *trailing downdate*.
    ///
    /// Because [`Cholesky::extend`] never touches the existing block, a
    /// `truncate` back to a previous dimension restores that factor
    /// **bit for bit**: this is the `pop_pseudo` half of the penalization
    /// inner loop, which pushes hallucinated points and must return to the
    /// exact pre-push state.
    ///
    /// # Panics
    ///
    /// Panics if `k > dim()`.
    pub fn truncate(&mut self, k: usize) {
        assert!(
            k <= self.dim(),
            "truncate: {k} exceeds factored dimension {}",
            self.dim()
        );
        self.l.truncate_square(k);
    }

    /// Removes row/column `k` of the factored matrix — the O((n-k)²)
    /// *interior downdate*.
    ///
    /// Deleting row `k` of `L` leaves an `(n-1)×n` matrix `M` with
    /// `M Mᵀ = A` (row/col `k` removed) whose trailing part is lower
    /// Hessenberg. A sweep of Givens rotations applied from the right
    /// restores lower-triangular form without changing `M Mᵀ`, and the
    /// last (annihilated) column is dropped. Rows above `k` are untouched,
    /// so the leading `k`×`k` factor block is preserved bit for bit.
    /// Removing the trailing row degenerates to [`Cholesky::truncate`].
    ///
    /// # Panics
    ///
    /// Panics if `k >= dim()`.
    pub fn remove_row(&mut self, k: usize) {
        let n = self.dim();
        assert!(k < n, "remove_row: index {k} out of range for dim {n}");
        if k == n - 1 {
            self.truncate(n - 1);
            return;
        }
        let mut m = Matrix::zeros(n - 1, n);
        for i in 0..k {
            m.row_mut(i)[..=i].copy_from_slice(&self.l.row(i)[..=i]);
        }
        for i in k..(n - 1) {
            m.row_mut(i)[..=i + 1].copy_from_slice(&self.l.row(i + 1)[..=i + 1]);
        }
        for j in k..(n - 1) {
            // Rotate columns (j, j+1) to annihilate the superdiagonal
            // entry m[(j, j+1)]; rows above j already have zeros in both
            // columns. The sign choice keeps the new diagonal `r >= 0`.
            let x = m[(j, j)];
            let y = m[(j, j + 1)];
            let r = x.hypot(y);
            if r == 0.0 {
                continue;
            }
            let (c, s) = (x / r, y / r);
            for i in j..(n - 1) {
                let xi = m[(i, j)];
                let yi = m[(i, j + 1)];
                m[(i, j)] = c * xi + s * yi;
                m[(i, j + 1)] = c * yi - s * xi;
            }
        }
        let mut l = Matrix::zeros(n - 1, n - 1);
        for i in 0..(n - 1) {
            l.row_mut(i)[..=i].copy_from_slice(&m.row(i)[..=i]);
        }
        self.l = l;
    }

    /// Reconstructs `L L^T` (for tests and diagnostics).
    pub fn reconstruct(&self) -> Matrix {
        self.l.matmul(&self.l.transpose())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Builds a random SPD matrix `M M^T + n*I` from a deterministic seed.
    fn spd(n: usize, seed: u64) -> Matrix {
        let m = Matrix::from_fn(n, n, |i, j| {
            let h = (i as u64)
                .wrapping_mul(6364136223846793005)
                .wrapping_add(j as u64)
                .wrapping_add(seed)
                .wrapping_mul(1442695040888963407);
            ((h >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        });
        let mut a = m.matmul(&m.transpose());
        a.add_diagonal(n as f64);
        a
    }

    #[test]
    fn factorizes_known_matrix() {
        let a = Matrix::from_rows(&[&[25.0, 15.0, -5.0], &[15.0, 18.0, 0.0], &[-5.0, 0.0, 11.0]])
            .unwrap();
        let c = Cholesky::new_exact(&a).unwrap();
        let l = c.factor();
        assert_eq!(l[(0, 0)], 5.0);
        assert_eq!(l[(1, 0)], 3.0);
        assert_eq!(l[(1, 1)], 3.0);
        assert_eq!(l[(2, 0)], -1.0);
        assert_eq!(l[(2, 1)], 1.0);
        assert_eq!(l[(2, 2)], 3.0);
        assert_eq!(c.jitter(), 0.0);
    }

    #[test]
    fn rejects_non_square() {
        let a = Matrix::zeros(2, 3);
        assert!(matches!(
            Cholesky::new(&a),
            Err(LinalgError::NotSquare { .. })
        ));
    }

    #[test]
    fn rejects_non_finite() {
        let mut a = Matrix::identity(2);
        a[(0, 1)] = f64::NAN;
        assert!(matches!(
            Cholesky::new(&a),
            Err(LinalgError::NonFinite { .. })
        ));
    }

    #[test]
    fn rejects_indefinite_matrix() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]).unwrap();
        // Eigenvalues 3 and -1: no reasonable jitter can fix this.
        assert!(matches!(
            Cholesky::new(&a),
            Err(LinalgError::NotPositiveDefinite { .. })
        ));
    }

    #[test]
    fn jitter_recovers_near_singular() {
        // Rank-1 matrix: plain factorization fails, jitter ladder succeeds.
        let a = Matrix::from_rows(&[&[1.0, 1.0], &[1.0, 1.0]]).unwrap();
        let c = Cholesky::new(&a).unwrap();
        assert!(c.jitter() > 0.0);
        assert!(Cholesky::new_exact(&a).is_err());
    }

    #[test]
    fn solve_recovers_solution() {
        let a = spd(6, 42);
        let c = Cholesky::new(&a).unwrap();
        let x_true = Vector::from_iter((0..6).map(|i| (i as f64) - 2.5));
        let b = a.matvec(&x_true);
        let x = c.solve_vec(&b);
        assert!((&x - &x_true).norm() < 1e-9);
    }

    #[test]
    fn solve_mat_matches_columnwise() {
        let a = spd(4, 7);
        let c = Cholesky::new(&a).unwrap();
        let b = Matrix::from_fn(4, 2, |i, j| (i + 2 * j) as f64);
        let x = c.solve_mat(&b);
        for j in 0..2 {
            let col = c.solve_vec(&b.col(j));
            for i in 0..4 {
                assert!((x[(i, j)] - col[i]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn solve_lower_multi_bitwise_matches_scalar() {
        let a = spd(8, 23);
        let c = Cholesky::new(&a).unwrap();
        let b = Matrix::from_fn(8, 5, |i, j| ((i * 3 + j * 7) as f64 * 0.37).sin());
        let y = c.solve_lower_multi(&b);
        let x = c.solve_lower_transpose_multi(&b);
        for j in 0..5 {
            let col = b.col(j);
            let y_col = c.solve_lower(&col);
            let x_col = c.solve_lower_transpose(&col);
            for i in 0..8 {
                // Exact equality: the multi-RHS sweep performs the same
                // floating-point operations in the same order per column.
                assert_eq!(y[(i, j)], y_col[i], "forward ({i}, {j})");
                assert_eq!(x[(i, j)], x_col[i], "backward ({i}, {j})");
            }
        }
    }

    #[test]
    fn solve_multi_handles_empty_rhs() {
        let c = Cholesky::new(&spd(3, 1)).unwrap();
        assert_eq!(c.solve_lower_multi(&Matrix::zeros(3, 0)).shape(), (3, 0));
        let e = Cholesky::new(&Matrix::zeros(0, 0)).unwrap();
        assert_eq!(e.solve_mat(&Matrix::zeros(0, 4)).shape(), (0, 4));
    }

    #[test]
    fn log_det_matches_2x2_analytic() {
        let a = Matrix::from_rows(&[&[4.0, 2.0], &[2.0, 3.0]]).unwrap();
        let c = Cholesky::new_exact(&a).unwrap();
        assert!((c.log_det() - 8f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn inverse_times_matrix_is_identity() {
        let a = spd(5, 3);
        let c = Cholesky::new(&a).unwrap();
        let inv = c.inverse();
        let prod = a.matmul(&inv);
        assert!((&prod - &Matrix::identity(5)).frobenius_norm() < 1e-8);
    }

    #[test]
    fn quad_form_matches_solve() {
        let a = spd(5, 11);
        let c = Cholesky::new(&a).unwrap();
        let b = Vector::from_iter((0..5).map(|i| i as f64 * 0.3 - 1.0));
        let direct = b.dot(&c.solve_vec(&b));
        assert!((c.quad_form(&b) - direct).abs() < 1e-10);
    }

    #[test]
    fn extend_matches_full_factorization() {
        let big = spd(7, 19);
        // Factor the leading 6x6 block, then extend by the last row/col.
        let lead = Matrix::from_fn(6, 6, |i, j| big[(i, j)]);
        let mut c = Cholesky::new_exact(&lead).unwrap();
        let cross = Vector::from_iter((0..6).map(|i| big[(i, 6)]));
        c.extend(&cross, big[(6, 6)]).unwrap();
        let full = Cholesky::new_exact(&big).unwrap();
        assert!((&c.reconstruct() - &full.reconstruct()).frobenius_norm() < 1e-9);
        assert!((c.log_det() - full.log_det()).abs() < 1e-9);
    }

    #[test]
    fn from_parts_round_trips_exactly() {
        let a = spd(6, 23);
        let mut c = Cholesky::new(&a).unwrap();
        // Grow incrementally so the factor is NOT reproducible by
        // refactorizing — exactly the case resume has to handle.
        let cross = Vector::from_iter((0..6).map(|i| a[(i, 0)] * 0.5));
        c.extend(&cross, a[(0, 0)] + 1.0).unwrap();
        let rebuilt = Cholesky::from_parts(c.factor().clone(), c.jitter()).unwrap();
        assert_eq!(rebuilt, c);
        let b = Vector::from_iter((0..7).map(|i| i as f64 - 3.0));
        assert_eq!(rebuilt.solve_vec(&b).as_slice(), c.solve_vec(&b).as_slice());
    }

    #[test]
    fn from_parts_rejects_bad_input() {
        assert!(Cholesky::from_parts(Matrix::zeros(2, 3), 0.0).is_err());
        assert!(Cholesky::from_parts(Matrix::zeros(2, 2), f64::NAN).is_err());
        let mut m = Matrix::identity(2);
        m[(1, 1)] = f64::INFINITY;
        assert!(Cholesky::from_parts(m, 0.0).is_err());
    }

    #[test]
    fn extend_handles_duplicate_point() {
        // Extending with an identical row makes the Schur complement ~0;
        // the floor should keep the factorization alive.
        let a = spd(3, 5);
        let mut c = Cholesky::new(&a).unwrap();
        let cross = Vector::from_iter((0..3).map(|i| a[(i, 0)]));
        c.extend(&cross, a[(0, 0)]).unwrap();
        assert_eq!(c.dim(), 4);
        assert!(c.factor()[(3, 3)] > 0.0);
    }

    #[test]
    fn blocked_factorize_bitwise_matches_scalar_reference() {
        // Sizes straddling the block width, including multi-block tails.
        for &n in &[0usize, 1, 2, 5, 31, 32, 33, 63, 64, 65, 97] {
            let a = spd(n, n as u64 + 3);
            for &jitter in &[0.0, 1e-6] {
                let blocked = Cholesky::factorize(&a, jitter).unwrap();
                let scalar = Cholesky::factorize_scalar(&a, jitter).unwrap();
                for (b, s) in blocked.as_slice().iter().zip(scalar.as_slice()) {
                    assert_eq!(b.to_bits(), s.to_bits(), "n={n} jitter={jitter}");
                }
            }
        }
    }

    #[test]
    fn blocked_factorize_fails_like_scalar() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]).unwrap();
        let b = Cholesky::factorize(&a, 0.0).unwrap_err();
        let s = Cholesky::factorize_scalar(&a, 0.0).unwrap_err();
        match (b, s) {
            (
                LinalgError::NotPositiveDefinite {
                    pivot: pb,
                    value: vb,
                },
                LinalgError::NotPositiveDefinite {
                    pivot: ps,
                    value: vs,
                },
            ) => {
                assert_eq!(pb, ps);
                assert_eq!(vb.to_bits(), vs.to_bits());
            }
            other => panic!("expected matching NotPositiveDefinite, got {other:?}"),
        }
    }

    #[test]
    fn new_counted_reports_jitter_ladder_bumps() {
        let (c, bumps) = Cholesky::new_counted(&spd(4, 9)).unwrap();
        assert_eq!(bumps, 0);
        assert_eq!(c.jitter(), 0.0);
        // Rank-1 matrix needs the ladder.
        let a = Matrix::from_rows(&[&[1.0, 1.0], &[1.0, 1.0]]).unwrap();
        let (c, bumps) = Cholesky::new_counted(&a).unwrap();
        assert!(bumps > 0);
        assert!(c.jitter() > 0.0);
    }

    #[test]
    fn truncate_restores_pre_extend_factor_bitwise() {
        let a = spd(5, 31);
        let c0 = Cholesky::new_exact(&a).unwrap();
        let mut c = c0.clone();
        for step in 0..3 {
            let cross = Vector::from_iter((0..c.dim()).map(|i| a[(i % 5, step % 5)] * 0.4));
            c.extend(&cross, a[(step, step)] + 2.0).unwrap();
        }
        assert_eq!(c.dim(), 8);
        c.truncate(5);
        assert_eq!(c, c0);
        for (x, y) in c.factor().as_slice().iter().zip(c0.factor().as_slice()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn remove_trailing_row_is_exact_truncation() {
        let a = spd(6, 17);
        let mut c = Cholesky::new_exact(&a).unwrap();
        let lead = Matrix::from_fn(5, 5, |i, j| a[(i, j)]);
        c.remove_row(5);
        let direct = Cholesky::new_exact(&lead).unwrap();
        for (x, y) in c.factor().as_slice().iter().zip(direct.factor().as_slice()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn remove_interior_row_matches_refactorization() {
        let a = spd(7, 29);
        for k in 0..7 {
            let mut c = Cholesky::new_exact(&a).unwrap();
            c.remove_row(k);
            let keep: Vec<usize> = (0..7).filter(|&i| i != k).collect();
            let sub = Matrix::from_fn(6, 6, |i, j| a[(keep[i], keep[j])]);
            let full = Cholesky::new_exact(&sub).unwrap();
            let rel = (&c.reconstruct() - &sub).frobenius_norm() / sub.frobenius_norm();
            assert!(rel < 1e-12, "k={k}: reconstruction error {rel}");
            assert!((c.log_det() - full.log_det()).abs() < 1e-9, "k={k}");
            // Diagonal must stay strictly positive for downstream solves.
            for i in 0..6 {
                assert!(c.factor()[(i, i)] > 0.0, "k={k} i={i}");
            }
        }
    }

    #[test]
    fn remove_row_to_empty() {
        let a = Matrix::from_rows(&[&[4.0]]).unwrap();
        let mut c = Cholesky::new_exact(&a).unwrap();
        c.remove_row(0);
        assert_eq!(c.dim(), 0);
    }

    #[test]
    fn extend_reports_duplicate_floor() {
        let a = spd(3, 5);
        let mut c = Cholesky::new(&a).unwrap();
        let fresh = Vector::from_iter((0..3).map(|i| a[(i, 0)] * 0.2));
        assert!(!c.extend(&fresh, a[(0, 0)] + 3.0).unwrap());
        // Re-appending row 0 exactly: Schur complement ~0, floor applies.
        let dup = Vector::from_iter((0..3).map(|i| a[(i, 0)]));
        let mut d = Cholesky::new(&a).unwrap();
        assert!(d.extend(&dup, a[(0, 0)]).unwrap());
    }

    #[test]
    fn empty_matrix_is_factored() {
        let a = Matrix::zeros(0, 0);
        let c = Cholesky::new(&a).unwrap();
        assert_eq!(c.dim(), 0);
        assert_eq!(c.log_det(), 0.0);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn prop_reconstruction_accuracy(n in 1usize..12, seed in 0u64..500) {
            let a = spd(n, seed);
            let c = Cholesky::new(&a).unwrap();
            let rel = (&c.reconstruct() - &a).frobenius_norm() / a.frobenius_norm();
            prop_assert!(rel < 1e-10, "relative reconstruction error {rel}");
        }

        #[test]
        fn prop_solve_residual_small(n in 1usize..12, seed in 0u64..500) {
            let a = spd(n, seed);
            let c = Cholesky::new(&a).unwrap();
            let b = Vector::from_iter((0..n).map(|i| (i as f64 * 1.7).sin()));
            let x = c.solve_vec(&b);
            let r = (&a.matvec(&x) - &b).norm();
            prop_assert!(r < 1e-8 * (1.0 + b.norm()));
        }

        #[test]
        fn prop_log_det_positive_for_dominant(n in 1usize..10, seed in 0u64..200) {
            // spd() adds n*I so eigenvalues exceed ~1 for n >= 1; log det > 0.
            let a = spd(n, seed);
            let c = Cholesky::new(&a).unwrap();
            prop_assert!(c.log_det() > 0.0);
        }

        #[test]
        fn prop_update_downdate_composition_matches_from_scratch(
            n in 1usize..64,
            seed in 0u64..500,
            removals in 0usize..4,
        ) {
            // Grow a factor one appended row at a time, then delete rows at
            // seed-derived (trailing AND interior) positions. The composed
            // factor must reconstruct the same principal submatrix a
            // from-scratch factorization does, to 1e-10 relative error.
            let total = n + removals;
            let a = spd(total, seed);
            let mut active: Vec<usize> = vec![0];
            let mut c =
                Cholesky::new_exact(&Matrix::from_fn(1, 1, |_, _| a[(0, 0)])).unwrap();
            for next in 1..total {
                let cross =
                    Vector::from_iter(active.iter().map(|&i| a[(i, next)]));
                c.extend(&cross, a[(next, next)]).unwrap();
                active.push(next);
                // Interleave removals with appends, position driven by the
                // seed so trailing (k = len-1) and interior cases both occur.
                if removals > 0 && active.len() > n && active.len() % 5 == 4 {
                    let k = (seed as usize).wrapping_mul(31).wrapping_add(next) % active.len();
                    c.remove_row(k);
                    active.remove(k);
                }
            }
            while active.len() > n {
                let k = (seed as usize).wrapping_add(active.len()) % active.len();
                c.remove_row(k);
                active.remove(k);
            }
            let m = active.len();
            let sub = Matrix::from_fn(m, m, |i, j| a[(active[i], active[j])]);
            let rel = (&c.reconstruct() - &sub).frobenius_norm()
                / sub.frobenius_norm().max(1e-300);
            prop_assert!(rel < 1e-10, "n={n} removals={removals}: error {rel}");
            let full = Cholesky::new_exact(&sub).unwrap();
            prop_assert!((c.log_det() - full.log_det()).abs() < 1e-8 * (1.0 + full.log_det().abs()));
        }

        #[test]
        fn prop_blocked_factorize_is_bitwise_scalar(n in 1usize..64, seed in 0u64..300) {
            let a = spd(n, seed);
            let blocked = Cholesky::factorize(&a, 0.0).unwrap();
            let scalar = Cholesky::factorize_scalar(&a, 0.0).unwrap();
            for (b, s) in blocked.as_slice().iter().zip(scalar.as_slice()) {
                prop_assert_eq!(b.to_bits(), s.to_bits());
            }
        }

        #[test]
        fn prop_extend_chain_matches_batch(n in 2usize..9, seed in 0u64..200) {
            let a = spd(n, seed);
            let lead = Matrix::from_fn(1, 1, |_, _| a[(0, 0)]);
            let mut c = Cholesky::new_exact(&lead).unwrap();
            for k in 1..n {
                let cross = Vector::from_iter((0..k).map(|i| a[(i, k)]));
                c.extend(&cross, a[(k, k)]).unwrap();
            }
            let full = Cholesky::new_exact(&a).unwrap();
            prop_assert!((c.log_det() - full.log_det()).abs() < 1e-8);
        }
    }
}
