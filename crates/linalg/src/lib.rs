//! Dense linear algebra substrate for the EasyBO Gaussian-process stack.
//!
//! This crate hand-rolls exactly the numerical kernels that Gaussian process
//! regression needs — dense row-major matrices, Cholesky factorization with
//! adaptive jitter, triangular solves, and incremental Cholesky updates for
//! appending pseudo-points — with no external BLAS/LAPACK dependency.
//!
//! # Example
//!
//! ```
//! use easybo_linalg::{Matrix, Vector, Cholesky};
//!
//! # fn main() -> Result<(), easybo_linalg::LinalgError> {
//! // Solve the SPD system A x = b via a Cholesky factorization.
//! let a = Matrix::from_rows(&[&[4.0, 2.0], &[2.0, 3.0]])?;
//! let b = Vector::from(vec![1.0, 2.0]);
//! let chol = Cholesky::new(&a)?;
//! let x = chol.solve_vec(&b);
//! let r = &a.matvec(&x) - &b;
//! assert!(r.norm() < 1e-12);
//! # Ok(())
//! # }
//! ```

mod cholesky;
mod error;
mod matrix;
mod stats;
mod vector;

pub use cholesky::Cholesky;
pub use error::LinalgError;
pub use matrix::Matrix;
pub use stats::{mean, population_std, sample_std};
pub use vector::Vector;

/// Convenience result alias used across the crate.
pub type Result<T> = std::result::Result<T, LinalgError>;
