//! Small statistics helpers shared by the GP normalizers and the benchmark
//! report code.

/// Arithmetic mean of a slice; `0.0` for an empty slice.
///
/// ```
/// assert_eq!(easybo_linalg::mean(&[1.0, 2.0, 3.0]), 2.0);
/// assert_eq!(easybo_linalg::mean(&[]), 0.0);
/// ```
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Population standard deviation (divide by `n`); `0.0` for fewer than one
/// element.
///
/// ```
/// let s = easybo_linalg::population_std(&[2.0, 4.0]);
/// assert!((s - 1.0).abs() < 1e-12);
/// ```
pub fn population_std(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64).sqrt()
}

/// Sample standard deviation (divide by `n - 1`); `0.0` for fewer than two
/// elements. This is the statistic reported in the paper's Tables I/II.
///
/// ```
/// let s = easybo_linalg::sample_std(&[2.0, 4.0]);
/// assert!((s - std::f64::consts::SQRT_2).abs() < 1e-12);
/// ```
pub fn sample_std(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn mean_of_constants() {
        assert_eq!(mean(&[5.0; 10]), 5.0);
    }

    #[test]
    fn stds_of_constant_are_zero() {
        assert_eq!(population_std(&[3.0; 4]), 0.0);
        assert_eq!(sample_std(&[3.0; 4]), 0.0);
    }

    #[test]
    fn single_element_edge_cases() {
        assert_eq!(mean(&[7.0]), 7.0);
        assert_eq!(population_std(&[7.0]), 0.0);
        assert_eq!(sample_std(&[7.0]), 0.0);
    }

    #[test]
    fn sample_std_exceeds_population_std() {
        let xs = [1.0, 2.0, 3.0, 8.0];
        assert!(sample_std(&xs) > population_std(&xs));
    }

    proptest! {
        #[test]
        fn prop_mean_bounded_by_extremes(xs in proptest::collection::vec(-1e6..1e6f64, 1..50)) {
            let m = mean(&xs);
            let lo = xs.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(m >= lo - 1e-9 && m <= hi + 1e-9);
        }

        #[test]
        fn prop_shift_invariance_of_std(
            xs in proptest::collection::vec(-1e3..1e3f64, 2..40),
            shift in -1e3..1e3f64
        ) {
            let shifted: Vec<f64> = xs.iter().map(|x| x + shift).collect();
            prop_assert!((sample_std(&xs) - sample_std(&shifted)).abs() < 1e-6);
        }
    }
}
